package mdabt_test

import (
	"fmt"
	"log"

	"mdabt"
)

// Example runs a misaligned hot loop under the paper's exception-handling
// mechanism: the first misalignment trap patches the site, and the rest of
// the run proceeds at full speed.
func Example() {
	img, err := mdabt.Assemble(`
	        mov     ebx, 0x10000000
	        mov     ecx, 0
	        mov     eax, 0
	loop:   mov     edx, dword [ebx+2]    ; always misaligned
	        add     eax, edx
	        add     ecx, 1
	        cmp     ecx, 1000
	        jl      loop
	        halt
	`, mdabt.GuestCodeBase)
	if err != nil {
		log.Fatal(err)
	}
	sys := mdabt.NewSystem(mdabt.MechanismOptions(mdabt.ExceptionHandling))
	sys.LoadImage(mdabt.GuestCodeBase, img)
	if err := sys.Run(mdabt.GuestCodeBase, 1<<26); err != nil {
		log.Fatal(err)
	}
	c := sys.Machine.Counters()
	fmt.Printf("misaligned accesses executed: 1000\n")
	fmt.Printf("misalignment traps taken:     %d\n", c.MisalignTraps)
	fmt.Printf("sites patched:                %d\n", sys.Engine.Stats().Patches)
	// Output:
	// misaligned accesses executed: 1000
	// misalignment traps taken:     2
	// sites patched:                2
}

// ExampleMechanismOptions compares the direct method against exception
// handling on an aligned-heavy workload, where translating every memory
// operation into the misalignment-safe sequence is pure overhead.
func ExampleMechanismOptions() {
	img, _ := mdabt.Assemble(`
	        mov     ebx, 0x10000000
	        mov     ecx, 0
	        mov     eax, 0
	loop:   mov     edx, dword [ebx]      ; aligned
	        add     eax, edx
	        mov     dword [ebx+4], eax    ; aligned
	        add     ecx, 1
	        cmp     ecx, 5000
	        jl      loop
	        halt
	`, mdabt.GuestCodeBase)
	cycles := func(mech mdabt.Mechanism) uint64 {
		sys := mdabt.NewSystem(mdabt.MechanismOptions(mech))
		sys.LoadImage(mdabt.GuestCodeBase, img)
		if err := sys.Run(mdabt.GuestCodeBase, 1<<28); err != nil {
			log.Fatal(err)
		}
		return sys.Machine.Counters().Cycles
	}
	direct := cycles(mdabt.Direct)
	eh := cycles(mdabt.ExceptionHandling)
	fmt.Printf("direct slower than exception handling: %v\n", direct > eh)
	// Output:
	// direct slower than exception handling: true
}

// ExampleRunCensus measures a program's misalignment census — the data
// behind the paper's Table I.
func ExampleRunCensus() {
	img, _ := mdabt.Assemble(`
	        mov     ebx, 0x10000000
	        mov     ecx, 0
	loop:   mov     eax, dword [ebx+2]    ; misaligned
	        mov     edx, dword [ebx+8]    ; aligned
	        add     ecx, 1
	        cmp     ecx, 50
	        jl      loop
	        halt
	`, mdabt.GuestCodeBase)
	sys := mdabt.NewSystem(mdabt.MechanismOptions(mdabt.ExceptionHandling))
	sys.LoadImage(mdabt.GuestCodeBase, img)
	census, err := mdabt.RunCensus(sys.Mem, mdabt.GuestCodeBase, 1<<24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MDA sites (NMI): %d\n", census.NMI())
	fmt.Printf("MDAs:            %d\n", census.MDAs)
	fmt.Printf("MDA ratio:       %.0f%%\n", 100*census.Ratio())
	// Output:
	// MDA sites (NMI): 1
	// MDAs:            50
	// MDA ratio:       50%
}
