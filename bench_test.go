package mdabt

// One benchmark per paper artifact: each regenerates the corresponding
// table/figure on a reduced-scale session and reports its headline numbers
// as custom metrics. The full-scale regeneration (as recorded in
// EXPERIMENTS.md) is `go run ./cmd/mdaeval`.

import (
	"sync"
	"testing"

	"mdabt/internal/experiments"
)

var (
	benchOnce sync.Once
	benchSess *experiments.Session
)

func benchSession() *experiments.Session {
	benchOnce.Do(func() {
		benchSess = experiments.NewSession()
		benchSess.Shrink = 40
		benchSess.IterFloor = 800
	})
	return benchSess
}

// runArtifact runs one experiment per bench iteration (cached after the
// first) and reports the requested series' summary statistics.
func runArtifact(b *testing.B, id string, geomeans []string, means []string) {
	b.Helper()
	run, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("no experiment %q", id)
	}
	var r *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = run(benchSession())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range geomeans {
		b.ReportMetric(r.Geomean(s), "geomean-"+s)
	}
	for _, s := range means {
		b.ReportMetric(r.Mean(s), "mean-"+s)
	}
}

// BenchmarkTableI regenerates Table I (the MDA census of all 54 benchmarks).
func BenchmarkTableI(b *testing.B) {
	runArtifact(b, "table1", nil, []string{"Ratio%"})
}

// BenchmarkFigure1 regenerates Figure 1 (alignment-flag speedup on native x86).
func BenchmarkFigure1(b *testing.B) {
	runArtifact(b, "fig1", nil, []string{"pathscale%", "icc%"})
}

// BenchmarkFigure10 regenerates Figure 10 (heating-threshold sweep).
func BenchmarkFigure10(b *testing.B) {
	runArtifact(b, "fig10", []string{"TH=50", "TH=500", "TH=5000"}, nil)
}

// BenchmarkFigure11 regenerates Figure 11 (code rearrangement gain/loss).
func BenchmarkFigure11(b *testing.B) {
	runArtifact(b, "fig11", nil, []string{"gain%"})
}

// BenchmarkFigure12 regenerates Figure 12 (DPEH vs exception handling).
func BenchmarkFigure12(b *testing.B) {
	runArtifact(b, "fig12", nil, []string{"gain%"})
}

// BenchmarkFigure13 regenerates Figure 13 (retranslation gain/loss).
func BenchmarkFigure13(b *testing.B) {
	runArtifact(b, "fig13", nil, []string{"gain%"})
}

// BenchmarkFigure14 regenerates Figure 14 (multi-version code gain/loss).
func BenchmarkFigure14(b *testing.B) {
	runArtifact(b, "fig14", nil, []string{"gain%"})
}

// BenchmarkFigure15 regenerates Figure 15 (per-site misalignment classes).
func BenchmarkFigure15(b *testing.B) {
	runArtifact(b, "fig15", nil, []string{"ratio=100%", "ratio<50%"})
}

// BenchmarkFigure16 regenerates Figure 16 (the overall mechanism comparison).
func BenchmarkFigure16(b *testing.B) {
	runArtifact(b, "fig16",
		[]string{"DPEH", "DynamicProfiling", "StaticProfiling", "Direct"}, nil)
}

// BenchmarkTableIII regenerates Table III (MDAs undetected by dynamic profiling).
func BenchmarkTableIII(b *testing.B) {
	runArtifact(b, "table3", nil, []string{"undetected"})
}

// BenchmarkTableIV regenerates Table IV (MDAs remaining with a train profile).
func BenchmarkTableIV(b *testing.B) {
	runArtifact(b, "table4", nil, []string{"remaining"})
}
