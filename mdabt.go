// Package mdabt is a reproduction of "An Evaluation of Misaligned Data
// Access Handling Mechanisms in Dynamic Binary Translation Systems"
// (Li, Wu, Hsu — CGO 2009): a complete dynamic binary translator from a
// 32-bit x86-like guest ISA (misaligned data accesses allowed) to a 64-bit
// Alpha-like host ISA (misaligned accesses trap), running on a simulated
// Alpha ES40 with a cycle cost model, together with the five MDA handling
// mechanisms the paper evaluates and the full experiment harness that
// regenerates its tables and figures.
//
// The package is a facade over the implementation packages:
//
//   - internal/guest — the source ISA: registers, variable-length
//     encoding, reference interpreter, program builder.
//   - internal/guestasm — a text assembler for the guest ISA.
//   - internal/host — the target ISA: Alpha-style encodings including the
//     LDQ_U/EXT/INS/MSK unaligned-access support instructions.
//   - internal/machine — the simulated host processor: cycle accounting,
//     ES40 cache hierarchy, misalignment traps, code patching.
//   - internal/core — the translator: two-phase interpretation and
//     translation, code cache, block linking, and the glue that drives the
//     configured MDA mechanism.
//   - internal/policy — the pluggable MDA mechanism layer: a registry of
//     strategy objects (Direct, StaticProfile, DynamicProfile,
//     ExceptionHandling, DPEH, SPEH) plus the rearrangement/retranslation/
//     multi-version/adaptive/static-align decorators.
//   - internal/workload — 54 SPEC CPU2000/2006 benchmark models dialed to
//     the paper's Table I/III/IV and Figure 15 measurements.
//   - internal/experiments — one runner per paper table/figure.
//
// # Quick start
//
//	img, _ := mdabt.Assemble(`
//	        mov     ebx, 0x10000000
//	        mov     eax, dword [ebx+2]   ; misaligned!
//	        halt
//	`, mdabt.GuestCodeBase)
//	sys := mdabt.NewSystem(mdabt.MechanismOptions(mdabt.ExceptionHandling))
//	sys.LoadImage(mdabt.GuestCodeBase, img)
//	_ = sys.Run(mdabt.GuestCodeBase, 1<<24)
//	fmt.Println(sys.Machine.Counters().MisalignTraps) // 1: patched after the first trap
package mdabt

import (
	"context"
	"io"

	"mdabt/internal/core"
	"mdabt/internal/experiments"
	"mdabt/internal/guest"
	"mdabt/internal/guestasm"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
	"mdabt/internal/serve"
	"mdabt/internal/workload"
)

// Mechanism selects an MDA handling mechanism.
type Mechanism = core.Mechanism

// The five mechanisms of the paper's evaluation, plus the SPEH hybrid
// (static profiling + exception handling) registered through the policy
// layer.
const (
	Direct            = core.Direct
	StaticProfile     = core.StaticProfile
	DynamicProfile    = core.DynamicProfile
	ExceptionHandling = core.ExceptionHandling
	DPEH              = core.DPEH
	SPEH              = core.SPEH
)

// MechanismByName resolves a policy-registry mechanism name or alias
// ("direct", "eh", "dpeh", "speh", ...), including mechanisms registered
// outside this module.
func MechanismByName(name string) (Mechanism, bool) { return core.MechanismByName(name) }

// Mechanisms lists every registered mechanism in registry (ID) order.
func Mechanisms() []Mechanism { return core.Mechanisms() }

// Options configures the translator (see core.Options).
type Options = core.Options

// MechanismOptions returns the paper-default configuration for a mechanism.
func MechanismOptions(m Mechanism) Options { return core.DefaultOptions(m) }

// Guest address-space constants.
const (
	GuestCodeBase  = guest.CodeBase
	GuestDataBase  = guest.DataBase
	GuestSharedLib = guest.SharedLib
	GuestStackTop  = guest.StackTop
)

// MachineParams is the host cycle cost model.
type MachineParams = machine.Params

// DefaultMachineParams returns the ES40-flavored cost model.
func DefaultMachineParams() MachineParams { return machine.DefaultParams() }

// System bundles one simulated machine with one translator instance.
type System struct {
	Mem     *mem.Memory
	Machine *machine.Machine
	Engine  *core.Engine
}

// NewSystem builds a fresh machine (default cost model) and translator.
func NewSystem(opt Options) *System {
	return NewSystemWithParams(opt, machine.DefaultParams())
}

// NewSystemWithParams builds a system with an explicit cost model.
func NewSystemWithParams(opt Options, params MachineParams) *System {
	m := mem.New()
	mach := machine.New(m, params)
	eng := core.NewEngine(m, mach, opt)
	return &System{Mem: m, Machine: mach, Engine: eng}
}

// LoadImage places a guest binary image at base.
func (s *System) LoadImage(base uint32, image []byte) { s.Engine.LoadImage(base, image) }

// Run executes the guest program until HALT or until maxHostInsts host
// instructions have been simulated (core.ErrBudget on exhaustion).
func (s *System) Run(entry uint32, maxHostInsts uint64) error {
	return s.Engine.Run(entry, maxHostInsts)
}

// RunContext is Run with cooperative cancellation: execution proceeds in
// bounded budget slices and aborts shortly after ctx is cancelled or its
// deadline passes (errors.Is(err, ctx.Err()) reports the cause).
func (s *System) RunContext(ctx context.Context, entry uint32, maxHostInsts uint64) error {
	return s.Engine.RunContext(ctx, entry, maxHostInsts)
}

// Reset recycles the system for another program under a (possibly
// different) configuration: guest memory is zeroed and every engine and
// machine structure returns to its initial state, reusing the allocated
// arenas. A reset system is behaviourally indistinguishable from a new
// one.
func (s *System) Reset(opt Options) { s.Engine.Reset(opt) }

// Error taxonomy of the engine and serving layer (see core.ErrClass):
// Permanent errors are the request's own fault (bad program, exhausted
// budget, cancelled context), Transient errors are momentary conditions
// worth retrying (injected faults, overload shedding), and Internal
// errors are engine bugs (recovered panics, bad emitted host code).
type ErrClass = core.ErrClass

const (
	ErrPermanent = core.Permanent
	ErrTransient = core.Transient
	ErrInternal  = core.Internal
)

// ClassifyError reports an error's class (Permanent for unclassified).
func ClassifyError(err error) ErrClass { return core.Classify(err) }

// Serving layer: a pool of reusable engines running many guest programs
// concurrently with deadlines, retries, circuit breaking, and graceful
// drain (see internal/serve).
type (
	// Server runs guest programs over pooled, recycled engines.
	Server = serve.Server
	// ServerOptions configures NewServer.
	ServerOptions = serve.ServerOptions
	// ServeRequest describes one guest program execution.
	ServeRequest = serve.Request
	// ServeResult is a completed execution's state and statistics.
	ServeResult = serve.Result
	// PoolOptions tunes the worker pool inside a Server.
	PoolOptions = serve.Options
	// PoolHealth is a point-in-time serving health snapshot.
	PoolHealth = serve.Health
)

// Serving-layer sentinel errors.
var (
	ErrServeOverloaded = serve.ErrOverloaded
	ErrServeDraining   = serve.ErrDraining
	ErrServeCircuit    = serve.ErrCircuitOpen
)

// NewServer starts a serving pool (see Server.Do, Server.Drain).
func NewServer(opt ServerOptions) *Server { return serve.NewServer(opt) }

// GuestCPU returns the final guest architectural state.
func (s *System) GuestCPU() guest.CPU { return s.Engine.FinalCPU() }

// Assemble translates guest assembly text into a loadable image.
func Assemble(src string, base uint32) ([]byte, error) {
	return guestasm.Assemble(src, base)
}

// DisassembleGuest renders a guest image as assembly text.
func DisassembleGuest(img []byte, base uint32) (string, error) {
	return guestasm.DisasmImage(img, base)
}

// Census is a pure-interpretation misalignment census (Table I / Fig. 15
// data for a program).
type Census = core.Census

// RunCensus interprets the program at entry in m and returns its census.
func RunCensus(m *mem.Memory, entry uint32, maxInsts uint64) (*Census, error) {
	return core.RunCensus(m, entry, maxInsts)
}

// ProfileDB is a persistent misalignment profile (the FX!32-style profile
// database behind the static-profiling mechanism).
type ProfileDB = core.ProfileDB

// TrainProfile censuses the program at entry (a training pre-execution)
// and returns its profile database.
func TrainProfile(m *mem.Memory, program, input string, entry uint32, maxInsts uint64) (*ProfileDB, error) {
	return core.TrainProfile(m, program, input, entry, maxInsts)
}

// LoadProfileDB reads a profile database written by ProfileDB.Save.
func LoadProfileDB(r io.Reader) (*ProfileDB, error) { return core.LoadProfileDB(r) }

// BenchmarkSpec models one SPEC benchmark's MDA behaviour.
type BenchmarkSpec = workload.Spec

// Benchmarks returns all 54 Table I benchmark models.
func Benchmarks() []BenchmarkSpec { return workload.Specs() }

// SelectedBenchmarks returns the 21 benchmarks of the performance
// experiments.
func SelectedBenchmarks() []BenchmarkSpec { return workload.SelectedSpecs() }

// BenchmarkByName looks up one benchmark model.
func BenchmarkByName(name string) (BenchmarkSpec, bool) { return workload.SpecByName(name) }

// Workload is a generated benchmark program.
type Workload = workload.Program

// Input selects a benchmark input set.
type Input = workload.Input

// Benchmark input sets.
const (
	TrainInput = workload.Train
	RefInput   = workload.Ref
)

// GenerateWorkload builds the guest program modelling spec.
func GenerateWorkload(spec BenchmarkSpec) (*Workload, error) { return workload.Generate(spec) }

// ExperimentSession caches programs and runs across experiments.
type ExperimentSession = experiments.Session

// ExperimentResult is one regenerated table or figure.
type ExperimentResult = experiments.Result

// NewExperimentSession returns a full-scale experiment session.
func NewExperimentSession() *ExperimentSession { return experiments.NewSession() }

// RunExperiment regenerates one paper artifact by ID ("table1", "fig1",
// "fig10".."fig16", "table3", "table4").
func RunExperiment(s *ExperimentSession, id string) (*ExperimentResult, error) {
	run, ok := experiments.Lookup(id)
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return run(s)
}

// ExperimentIDs lists the available experiment IDs in paper order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range experiments.Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// UnknownExperimentError reports an unrecognized experiment ID.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "mdabt: unknown experiment " + e.ID
}
