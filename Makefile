# Convenience targets; everything is plain `go` underneath.

GO ?= go
BENCH_COUNT ?= 10

.PHONY: all build test race bench bench-smoke bench-json trace-bench golden-matrix fmt vet lint mech-smoke serve-chaos fault-chaos store-chaos

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# benchstat-ready output: repeated runs of the per-layer microbenchmarks.
#   make bench > new.txt   (then: benchstat old.txt new.txt)
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) ./internal/perfbench/

# One iteration per benchmark across the repo — the CI smoke job. The
# perfbench suite includes the traced dispatch-loop config
# (BenchmarkDispatchLoopTraced), so the trace tier is exercised here too.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...
	$(GO) test -run '^TestSteadyStateAllocs$$|^TestSuiteRuns$$' ./internal/perfbench/

# Pool chaos suite under the race detector: ≥8 concurrent sessions with
# faults firing at every injection point, results checked bit-identical
# against serial replays (fixed seed; see internal/serve/chaos_test.go).
serve-chaos:
	$(GO) test -race -short -v ./internal/serve
	$(GO) test -race -short ./cmd/dbtserve

# Guest-fault suite under the race detector: the three fault workload
# kinds (page-straddling MDA, self-modifying, multi-context) across every
# registry mechanism, with and without fixed-seed fault injection; fault
# delivery must be precise and interpreter-identical (DESIGN.md §12).
fault-chaos:
	$(GO) test -race -run 'TestFaultCosimAllMechanisms|TestChaosGuestFaults|TestSelfModifyingInvalidates|TestMultiContextReset' -v ./internal/core
	$(GO) test -race -run 'TestServeGuestFaults' ./internal/serve

# Persistent-store crash/corruption suite under the race detector: the
# full internal/store suite (atomic-write protocol, SIGKILL-mid-write
# recovery, every store.* injection point against concurrent writers),
# the warm-from-store golden matrix (144 entries bit-identical to cold,
# injected corruption quarantined with cold fallback), and the
# serve/dbtserve warm-restart round trips.
store-chaos:
	$(GO) test -race -v ./internal/store
	$(GO) test -race -run 'TestStoreWarmGoldenMatrix' ./internal/core
	$(GO) test -race -run 'TestWarmStart|TestStoreCorruptionDegradesToCold|TestProfilesMergeAcrossDrains|TestLoaderRequestWithoutStoreKeyBypassesStore|TestStoreWarmRestart' ./internal/serve ./cmd/dbtserve

# One experiment run per registered mechanism (policy registry) — the CI
# mechanism-smoke job.
mech-smoke:
	$(GO) test -run '^TestRegistryMechanismSmoke$$' -v ./internal/experiments

# Machine-readable summary (guest MIPS, ns/guest-inst, allocs) → BENCH_2.json.
bench-json:
	$(GO) run ./cmd/mdaeval -benchjson BENCH_2.json

# Dispatch-tax measurement: the generic dispatch loop vs the direct-chaining
# trace tier, back to back in one process (the only fair comparison on a
# shared machine) → BENCH_3.json.
trace-bench:
	$(GO) run ./cmd/mdaeval -tracebench BENCH_3.json

# The golden equivalence matrix under the race detector: the 144 pinned
# fingerprints, the engine-reuse replay, and the trace-tier parity sweep
# (every matrix config re-run with Options.Traces — fingerprints must match
# the untraced goldens bit for bit).
golden-matrix:
	$(GO) test -race -run 'TestMechanismEquivalence|TestEngineReuseEquivalence|TestTraceTierFingerprintParity' -v ./internal/core

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# Static analysis: go vet always; staticcheck when the binary is on PATH
# (CI installs it, local runs degrade gracefully).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
