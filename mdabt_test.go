package mdabt

import (
	"strings"
	"testing"

	"mdabt/internal/mem"
)

func TestQuickstartFlow(t *testing.T) {
	// The doc-comment example, verified.
	img, err := Assemble(`
	        mov     ebx, 0x10000000
	        mov     eax, dword [ebx+2]   ; misaligned!
	        halt
	`, GuestCodeBase)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(MechanismOptions(ExceptionHandling))
	sys.LoadImage(GuestCodeBase, img)
	sys.Mem.Write64(GuestDataBase, 0xAABBCCDDEEFF0011)
	if err := sys.Run(GuestCodeBase, 1<<24); err != nil {
		t.Fatal(err)
	}
	if traps := sys.Machine.Counters().MisalignTraps; traps != 1 {
		t.Errorf("traps = %d, want 1", traps)
	}
	// Memory bytes at DataBase: 11 00 FF EE DD CC BB AA; the 4-byte load at
	// +2 reads FF EE DD CC little-endian.
	if got := sys.GuestCPU().R[0]; got != 0xCCDDEEFF {
		t.Errorf("eax = %#x, want 0xCCDDEEFF", got)
	}
}

func TestDisassembleGuestRoundTrip(t *testing.T) {
	img, err := Assemble("mov eax, 42\nhalt\n", GuestCodeBase)
	if err != nil {
		t.Fatal(err)
	}
	text, err := DisassembleGuest(img, GuestCodeBase)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "mov\teax, 42") || !strings.Contains(text, "halt") {
		t.Errorf("disassembly:\n%s", text)
	}
}

func TestMechanismsProduceSameArchitecturalState(t *testing.T) {
	img, err := Assemble(`
	        mov     ebx, 0x10000000
	        mov     ecx, 0
	        mov     eax, 0
	loop:   mov     edx, dword [ebx+3]
	        add     eax, edx
	        mov     dword [ebx+9], eax
	        add     ecx, 1
	        cmp     ecx, 300
	        jl      loop
	        halt
	`, GuestCodeBase)
	if err != nil {
		t.Fatal(err)
	}
	var want uint32
	for i, mech := range []Mechanism{Direct, DynamicProfile, ExceptionHandling, DPEH} {
		sys := NewSystem(MechanismOptions(mech))
		sys.LoadImage(GuestCodeBase, img)
		sys.Mem.Write64(GuestDataBase, 0x1234567890ABCDEF)
		if err := sys.Run(GuestCodeBase, 1<<28); err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		got := sys.GuestCPU().R[0]
		if i == 0 {
			want = got
		} else if got != want {
			t.Errorf("%v: eax = %#x, want %#x", mech, got, want)
		}
	}
}

func TestBenchmarkAccessors(t *testing.T) {
	if len(Benchmarks()) != 54 {
		t.Error("Benchmarks() != 54")
	}
	if len(SelectedBenchmarks()) != 21 {
		t.Error("SelectedBenchmarks() != 21")
	}
	spec, ok := BenchmarkByName("188.ammp")
	if !ok || spec.PaperNMI != 1134 {
		t.Errorf("BenchmarkByName(188.ammp) = %+v, %v", spec, ok)
	}
	spec.PaperMDAs /= 200
	w, err := GenerateWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	w.Load(m, RefInput)
	c, err := RunCensus(m, w.Entry(), 1<<28)
	if err != nil || !c.Halted {
		t.Fatalf("census: %v (halted=%v)", err, c != nil && c.Halted)
	}
	if c.Ratio() < 0.1 {
		t.Errorf("ammp census ratio = %v, want large", c.Ratio())
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 22 {
		t.Fatalf("ExperimentIDs = %v, want 22 entries", ids)
	}
	if ids[0] != "table1" {
		t.Errorf("first experiment %q, want table1", ids[0])
	}
	if _, err := RunExperiment(NewExperimentSession(), "nope"); err == nil {
		t.Error("unknown experiment: want error")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error %q should name the ID", err)
	}
}

func TestRunExperimentSmall(t *testing.T) {
	s := NewExperimentSession()
	s.Shrink = 400
	s.IterFloor = 300
	r, err := RunExperiment(s, "fig15")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) != 21 {
		t.Errorf("fig15 rows = %d, want 21", len(r.Names))
	}
	if !strings.Contains(r.Render(), "FIG15") {
		t.Error("render missing title")
	}
}

func TestCustomMachineParams(t *testing.T) {
	img, err := Assemble(`
	        mov     ebx, 0x10000000
	        mov     eax, dword [ebx+1]
	        halt
	`, GuestCodeBase)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultMachineParams()
	params.MisalignTrapCycles = 5000
	sys := NewSystemWithParams(MechanismOptions(StaticProfile), params)
	sys.LoadImage(GuestCodeBase, img)
	if err := sys.Run(GuestCodeBase, 1<<24); err != nil {
		t.Fatal(err)
	}
	if c := sys.Machine.Counters(); c.TrapCycles < 5000 {
		t.Errorf("trap cycles = %d, want ≥ 5000 (custom trap cost)", c.TrapCycles)
	}
}

func TestFacadeProfileWorkflow(t *testing.T) {
	img, err := Assemble(`
	        mov     ebx, 0x10000000
	        mov     ecx, 0
	loop:   mov     eax, dword [ebx+6]
	        add     ecx, 1
	        cmp     ecx, 100
	        jl      loop
	        halt
	`, GuestCodeBase)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	m.WriteBytes(GuestCodeBase, img)
	db, err := TrainProfile(m, "p", "train", GuestCodeBase, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadProfileDB(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	opt := MechanismOptions(StaticProfile)
	opt.StaticSites = db2.StaticSites()
	sys := NewSystem(opt)
	sys.LoadImage(GuestCodeBase, img)
	if err := sys.Run(GuestCodeBase, 1<<26); err != nil {
		t.Fatal(err)
	}
	if traps := sys.Machine.Counters().MisalignTraps; traps != 0 {
		t.Fatalf("traps = %d with stored profile", traps)
	}
}
