// Serving layer: run many guest programs concurrently on a pool of
// reusable engines, with deadlines, retries on injected transient
// faults, and a health snapshot at the end.
//
//	go run ./examples/serve
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"mdabt"
	"mdabt/internal/faultinject"
)

const program = `
        ; Sum a word-misaligned field out of %d records.
        mov     ebx, 0x10000000
        mov     ecx, 0
        mov     eax, 0
loop:   mov     edx, dword [ebx+2]     ; always misaligned
        add     eax, edx
        add     ecx, 1
        cmp     ecx, %d
        jl      loop
        halt
`

func main() {
	// A chaos plan makes the resilience visible: ~20% of attempts fail
	// with a transient serving fault, absorbed by the pool's retries.
	chaos := faultinject.New(7).Rate(faultinject.ServeTransient, 0.2)

	srv := mdabt.NewServer(mdabt.ServerOptions{
		Pool: mdabt.PoolOptions{Workers: 4, Retries: 3, Chaos: chaos},
	})
	defer srv.Close()

	mechs := []mdabt.Mechanism{
		mdabt.Direct, mdabt.DynamicProfile, mdabt.ExceptionHandling, mdabt.DPEH,
	}
	type answer struct {
		mech  mdabt.Mechanism
		iters int
		res   *mdabt.ServeResult
		err   error
	}
	results := make(chan answer)

	// 12 concurrent sessions: every mechanism × three problem sizes, each
	// with a one-second deadline.
	for _, mech := range mechs {
		for _, iters := range []int{1000, 5000, 20000} {
			go func(mech mdabt.Mechanism, iters int) {
				src := fmt.Sprintf(program, iters, iters)
				img, err := mdabt.Assemble(src, mdabt.GuestCodeBase)
				if err != nil {
					log.Fatal(err)
				}
				opt := mdabt.MechanismOptions(mech)
				res, err := srv.Do(context.Background(), mdabt.ServeRequest{
					Key:     fmt.Sprintf("sum-%v", mech),
					Image:   img,
					Options: &opt,
					Timeout: time.Second,
				})
				results <- answer{mech, iters, res, err}
			}(mech, iters)
		}
	}

	fmt.Println("12 concurrent sessions on a 4-engine pool (20% injected transient faults):")
	fmt.Println()
	for i := 0; i < len(mechs)*3; i++ {
		a := <-results
		switch {
		case errors.Is(a.err, context.DeadlineExceeded):
			fmt.Printf("%-20v n=%-6d deadline exceeded\n", a.mech, a.iters)
		case a.err != nil:
			fmt.Printf("%-20v n=%-6d failed (%v): %v\n",
				a.mech, a.iters, mdabt.ClassifyError(a.err), a.err)
		default:
			fmt.Printf("%-20v n=%-6d cycles=%-9d traps=%-3d attempts=%d worker=%d\n",
				a.mech, a.iters, a.res.Counters.Cycles,
				a.res.Counters.MisalignTraps, a.res.Attempts, a.res.Worker)
		}
	}

	h := srv.Health()
	fmt.Println()
	fmt.Printf("pool: %d workers, %d completed, %d failed, %d transient retries\n",
		h.Workers, h.Completed, h.Failed, h.Retries)
}
