// Quickstart: assemble a small guest program with a misaligned hot loop,
// run it under two MDA handling mechanisms, and compare what happens.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mdabt"
)

const program = `
        ; Sum a word-misaligned field out of 10000 records.
        mov     ebx, 0x10000000        ; record array (aligned base)
        mov     ecx, 0                 ; i
        mov     eax, 0                 ; sum
loop:   mov     edx, dword [ebx+2]     ; 4-byte load at +2: always misaligned
        add     eax, edx
        movzx   esi, word [ebx+7]      ; 2-byte load at +7: always misaligned
        add     eax, esi
        add     ecx, 1
        cmp     ecx, 10000
        jl      loop
        halt
`

func run(mech mdabt.Mechanism) {
	img, err := mdabt.Assemble(program, mdabt.GuestCodeBase)
	if err != nil {
		log.Fatal(err)
	}
	sys := mdabt.NewSystem(mdabt.MechanismOptions(mech))
	sys.LoadImage(mdabt.GuestCodeBase, img)
	// Seed the record so the sums are recognizable.
	sys.Mem.Write64(mdabt.GuestDataBase, 0x0102030405060708)
	sys.Mem.Write64(mdabt.GuestDataBase+8, 0x1112131415161718)

	if err := sys.Run(mdabt.GuestCodeBase, 1<<28); err != nil {
		log.Fatal(err)
	}
	c := sys.Machine.Counters()
	s := sys.Engine.Stats()
	cpu := sys.GuestCPU()
	fmt.Printf("%-20v cycles=%-9d traps=%-3d patches=%-2d sum=%#x\n",
		mech, c.Cycles, c.MisalignTraps, s.Patches, cpu.R[0])
}

func main() {
	fmt.Println("20000 misaligned accesses under each mechanism:")
	fmt.Println()
	// Direct inlines the misalignment-safe sequence everywhere; exception
	// handling runs at full speed and patches each site after its first
	// (and only) trap — the paper's §IV proposal.
	for _, mech := range []mdabt.Mechanism{
		mdabt.Direct,
		mdabt.DynamicProfile,
		mdabt.ExceptionHandling,
		mdabt.DPEH,
	} {
		run(mech)
	}
	fmt.Println()
	fmt.Println("Every mechanism computes the same sum; they differ only in cycles")
	fmt.Println("and in how many 1000-cycle misalignment traps they take.")
}
