// Thresholds: reproduce the paper's Figure 10 trade-off on one benchmark —
// the dynamic-profiling heating threshold balances profiling overhead
// against undetected-MDA traps.
//
//	go run ./examples/thresholds [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"mdabt"
)

func main() {
	name := "400.perlbench" // the paper's "definitely needs a threshold greater than 10"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, ok := mdabt.BenchmarkByName(name)
	if !ok {
		log.Fatalf("unknown benchmark %q", name)
	}
	spec.PaperMDAs /= 10 // keep the example snappy
	prog, err := mdabt.GenerateWorkload(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: dynamic profiling at different heating thresholds\n", name)
	fmt.Printf("(%d iterations, %d MDA sites)\n\n", prog.Iterations, prog.MDASites)
	fmt.Printf("%-10s %-12s %-12s %-10s %s\n", "threshold", "cycles", "interp-insts", "traps", "runtime vs TH=10")

	var base uint64
	for _, th := range []uint64{10, 50, 500, 5000} {
		opt := mdabt.MechanismOptions(mdabt.DynamicProfile)
		opt.HeatThreshold = th
		sys := mdabt.NewSystem(opt)
		prog.Load(sys.Mem, mdabt.RefInput)
		if err := sys.Run(prog.Entry(), 1<<33); err != nil {
			log.Fatal(err)
		}
		c := sys.Machine.Counters()
		s := sys.Engine.Stats()
		if th == 10 {
			base = c.Cycles
		}
		fmt.Printf("%-10d %-12d %-12d %-10d %.3fx\n",
			th, c.Cycles, s.InterpretedInsts, c.MisalignTraps,
			float64(c.Cycles)/float64(base))
	}
	fmt.Println()
	fmt.Println("A low threshold stops profiling before late-settling sites misalign")
	fmt.Println("(traps!); a high threshold pays interpreter overhead on every block.")
}
