// Adaptive: the paper's §IV-D "truly adaptive method", which it analyzed on
// paper and rejected ("may not be worth pursuing") without building. We
// built it — this example shows both sides of the trade:
//
//  1. on a stable, always-misaligned workload the streak-counting
//     instrumentation is pure overhead (the paper's prediction), and
//
//  2. on a workload whose hot site genuinely realigns mid-run, the adaptive
//     monitor reverts the MDA sequence back to a plain load and wins.
//
//     go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"mdabt"
)

const stable = `
        mov     ebx, 0x10000002        ; misaligned for the whole run
        mov     ecx, 0
        mov     eax, 0
        jmp     loop
loop:   mov     edx, dword [ebx+4]
        add     eax, edx
        add     ecx, 1
        cmp     ecx, 30000
        jl      loop
        halt
`

const realigning = `
        mov     ebx, 0x10000002        ; misaligned …
        mov     ecx, 0
        mov     eax, 0
        jmp     loop
loop:   mov     edx, dword [ebx+4]
        add     eax, edx
        add     ecx, 1
        cmp     ecx, 500
        je      fix                    ; … until iteration 500
        cmp     ecx, 30000
        jl      loop
        halt
fix:    add     ebx, 2                 ; aligned from here on
        jmp     loop
`

func run(src string, adaptive bool) (cycles uint64, reverts uint64) {
	img, err := mdabt.Assemble(src, mdabt.GuestCodeBase)
	if err != nil {
		log.Fatal(err)
	}
	opt := mdabt.MechanismOptions(mdabt.DPEH)
	opt.Adaptive = adaptive
	sys := mdabt.NewSystem(opt)
	sys.LoadImage(mdabt.GuestCodeBase, img)
	if err := sys.Run(mdabt.GuestCodeBase, 1<<30); err != nil {
		log.Fatal(err)
	}
	return sys.Machine.Counters().Cycles, sys.Engine.Stats().AdaptiveReverts
}

func main() {
	fmt.Println("The §IV-D truly-adaptive method, measured:")
	fmt.Println()
	for _, c := range []struct {
		name string
		src  string
	}{
		{"stable (always misaligned)", stable},
		{"realigning at iteration 500", realigning},
	} {
		base, _ := run(c.src, false)
		adapt, reverts := run(c.src, true)
		delta := 100 * (float64(base)/float64(adapt) - 1)
		fmt.Printf("%-30s DPEH=%-9d adaptive=%-9d (%+.1f%%, %d reverts)\n",
			c.name, base, adapt, delta, reverts)
	}
	fmt.Println()
	fmt.Println("On the stable workload the ~10-instruction instrumentation loses —")
	fmt.Println("exactly the paper's argument for not building it. It only pays off")
	fmt.Println("when sites genuinely realign, which SPEC-like workloads rarely do.")
}
