// Sharedlib: the paper's §II observation that most MDAs in several SPEC
// benchmarks come from shared libraries (libc etc.) — so even binaries
// compiled with alignment flags still misalign at runtime. This example
// uses the 164.gzip model, whose MDA groups live behind a call into a
// separately loaded "shared library" image, takes a census, and then shows
// that the translator's exception handler patches library code exactly
// like application code.
//
//	go run ./examples/sharedlib
package main

import (
	"fmt"
	"log"

	"mdabt"
	"mdabt/internal/mem"
)

func main() {
	spec, _ := mdabt.BenchmarkByName("164.gzip")
	spec.PaperMDAs /= 20 // keep the example snappy
	prog, err := mdabt.GenerateWorkload(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Census: where do the MDAs come from?
	m := mem.New()
	prog.Load(m, mdabt.RefInput)
	census, err := mdabt.RunCensus(m, prog.Entry(), 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	var appMDAs, libMDAs uint64
	var appSites, libSites int
	for pc, s := range census.Sites {
		if s.MDA == 0 {
			continue
		}
		if pc >= mdabt.GuestSharedLib {
			libMDAs += s.MDA
			libSites++
		} else {
			appMDAs += s.MDA
			appSites++
		}
	}
	fmt.Printf("164.gzip model census (%d memory refs, %.2f%% misaligned):\n",
		census.MemRefs, 100*census.Ratio())
	fmt.Printf("  application image: %3d MDA sites, %8d MDAs\n", appSites, appMDAs)
	fmt.Printf("  shared library:    %3d MDA sites, %8d MDAs (%.0f%% of all MDAs)\n",
		libSites, libMDAs, 100*float64(libMDAs)/float64(libMDAs+appMDAs))
	fmt.Println()

	// Run under the exception-handling translator: library sites get
	// patched the same way.
	sys := mdabt.NewSystem(mdabt.MechanismOptions(mdabt.ExceptionHandling))
	prog.Load(sys.Mem, mdabt.RefInput)
	if err := sys.Run(prog.Entry(), 1<<33); err != nil {
		log.Fatal(err)
	}
	c := sys.Machine.Counters()
	s := sys.Engine.Stats()
	fmt.Printf("exception-handling run: %d traps, %d sites patched, %d cycles\n",
		c.MisalignTraps, s.Patches, c.Cycles)
	fmt.Println()
	fmt.Println("Even if an ISV ships the application aligned, the library traffic")
	fmt.Println("still misaligns — the BT must handle MDAs it cannot see coming.")
}
