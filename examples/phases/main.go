// Phases: a program whose memory behaviour changes mid-run — the scenario
// behind the paper's exception-handling proposal (§IV) and its
// retranslation extension (§IV-C). A pointer is aligned for the first half
// of the run and misaligned afterwards, so any profile gathered early is
// wrong later.
//
//	go run ./examples/phases
package main

import (
	"fmt"
	"log"

	"mdabt"
)

const program = `
        ; Phase-changing workload: base pointer flips alignment halfway.
        mov     ebx, 0x10000000
        mov     ecx, 0
        mov     eax, 0
        jmp     loop
loop:   mov     edx, dword [ebx+4]
        add     eax, edx
        mov     edx, dword [ebx+8]
        add     eax, edx
        fld     f0, qword [ebx+16]
        fadd    f1, f0
        add     ecx, 1
        cmp     ecx, 4000
        je      flip
        cmp     ecx, 8000
        jl      loop
        halt
flip:   add     ebx, 1                 ; now every access misaligns
        jmp     loop
`

type result struct {
	label  string
	cycles uint64
	traps  uint64
}

func main() {
	img, err := mdabt.Assemble(program, mdabt.GuestCodeBase)
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		label string
		opt   mdabt.Options
	}{
		{"dynamic profiling (TH=50)", withThreshold(mdabt.MechanismOptions(mdabt.DynamicProfile), 50)},
		{"exception handling", mdabt.MechanismOptions(mdabt.ExceptionHandling)},
		{"DPEH", mdabt.MechanismOptions(mdabt.DPEH)},
		{"DPEH + retranslation", withRetranslate(mdabt.MechanismOptions(mdabt.DPEH))},
	}

	var results []result
	for _, cfg := range configs {
		sys := mdabt.NewSystem(cfg.opt)
		sys.LoadImage(mdabt.GuestCodeBase, img)
		if err := sys.Run(mdabt.GuestCodeBase, 1<<31); err != nil {
			log.Fatal(err)
		}
		c := sys.Machine.Counters()
		results = append(results, result{cfg.label, c.Cycles, c.MisalignTraps})
	}

	fmt.Println("12000 accesses turn misaligned after iteration 4000:")
	fmt.Println()
	base := results[0].cycles
	for _, r := range results {
		fmt.Printf("%-28s cycles=%-9d traps=%-6d (%.2fx vs dynamic profiling)\n",
			r.label, r.cycles, r.traps, float64(r.cycles)/float64(base))
	}
	fmt.Println()
	fmt.Println("Dynamic profiling translated the loop while the pointer was still")
	fmt.Println("aligned, so every post-flip access traps (~1000 cycles each).")
	fmt.Println("The exception-handling mechanisms patch the sites after one trap.")
}

func withThreshold(o mdabt.Options, th uint64) mdabt.Options {
	o.HeatThreshold = th
	return o
}

func withRetranslate(o mdabt.Options) mdabt.Options {
	o.Retranslate = true
	return o
}
