package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mdabt/internal/core"
	"mdabt/internal/serve"
	"mdabt/internal/store"
)

func testApp(t *testing.T) (*app, *httptest.Server) {
	t.Helper()
	srv := serve.NewServer(serve.ServerOptions{
		Pool:   serve.Options{Workers: 2, Retries: -1},
		Budget: 200_000_000,
	})
	a := newApp(srv, nil, core.ExceptionHandling, 10*time.Second)
	ts := httptest.NewServer(a.mux())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return a, ts
}

func postRun(t *testing.T, ts *httptest.Server, body runRequest) (*http.Response, []byte) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

const testAsm = `
        mov     ebx, 0x10000000
        mov     ecx, 0
        mov     eax, 0
loop:   mov     edx, dword [ebx+2]
        add     eax, edx
        add     ecx, 1
        cmp     ecx, 100
        jl      loop
        halt
`

func TestRunAsm(t *testing.T) {
	_, ts := testApp(t)
	resp, body := postRun(t, ts, runRequest{Asm: testAsm})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var r runResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if r.Cycles == 0 || r.HostInsts == 0 {
		t.Errorf("empty counters: %+v", r)
	}
	if r.MisalignTraps == 0 {
		t.Errorf("misaligned loop reported no traps: %+v", r)
	}
	if r.Mechanism != core.ExceptionHandling.String() {
		t.Errorf("mechanism = %q", r.Mechanism)
	}
}

func TestRunMechanismOverride(t *testing.T) {
	_, ts := testApp(t)
	resp, body := postRun(t, ts, runRequest{Asm: testAsm, Mech: "direct"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var r runResponse
	json.Unmarshal(body, &r)
	if r.MisalignTraps != 0 {
		t.Errorf("direct mechanism trapped %d times", r.MisalignTraps)
	}
}

func TestRunBench(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark model generation is slow")
	}
	_, ts := testApp(t)
	resp, body := postRun(t, ts, runRequest{Bench: "429.mcf", Input: "train", Mech: "dpeh"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var r runResponse
	json.Unmarshal(body, &r)
	if r.Program != "429.mcf" || r.Cycles == 0 {
		t.Errorf("response %+v", r)
	}
}

// TestRunFaultProg: a guest program that takes a memory fault gets a
// distinct 422 response carrying the faulting PC and address, while the
// success-expected fault workload completes normally.
func TestRunFaultProg(t *testing.T) {
	_, ts := testApp(t)

	resp, body := postRun(t, ts, runRequest{FaultProg: "straddle-store-fault", Mech: "eh"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d (%s), want 422", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("bad body %s: %v", body, err)
	}
	if e.Class != "permanent" {
		t.Errorf("class = %q, want permanent", e.Class)
	}
	if e.GuestFault == nil {
		t.Fatalf("no guest_fault in 422 body: %s", body)
	}
	if e.GuestFault.Addr != "0x10006000" || !e.GuestFault.Write || e.GuestFault.PC == "" {
		t.Errorf("guest_fault = %+v, want write fault at 0x10006000 with a PC", e.GuestFault)
	}

	resp, body = postRun(t, ts, runRequest{FaultProg: "straddle-ok", Mech: "dpeh"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("straddle-ok: status %d (%s), want 200", resp.StatusCode, body)
	}
	var r runResponse
	json.Unmarshal(body, &r)
	if r.Program != "straddle-ok" || r.Cycles == 0 {
		t.Errorf("response %+v", r)
	}

	resp, body = postRun(t, ts, runRequest{FaultProg: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown faultprog: status %d (%s), want 400", resp.StatusCode, body)
	}
}

func TestRunErrors(t *testing.T) {
	_, ts := testApp(t)
	cases := []struct {
		name string
		body runRequest
		want int
	}{
		{"empty", runRequest{}, http.StatusBadRequest},
		{"both", runRequest{Asm: "halt", Bench: "429.mcf"}, http.StatusBadRequest},
		{"bad asm", runRequest{Asm: "notanop eax"}, http.StatusBadRequest},
		{"bad mech", runRequest{Asm: "halt", Mech: "nope"}, http.StatusBadRequest},
		{"bad bench", runRequest{Bench: "999.nope"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postRun(t, ts, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d (%s), want %d", c.name, resp.StatusCode, body, c.want)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: malformed error body %s", c.name, body)
		}
	}
}

func TestRunDeadline(t *testing.T) {
	_, ts := testApp(t)
	resp, body := postRun(t, ts, runRequest{
		Asm: `
        mov     ecx, 0
spin:   add     ecx, 1
        cmp     ecx, 2000000000
        jl      spin
        halt
`,
		DeadlineMS: 10,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	var e errorResponse
	json.Unmarshal(body, &e)
	if e.Class != "permanent" {
		t.Errorf("class = %q, want permanent", e.Class)
	}
}

func TestHealthz(t *testing.T) {
	a, ts := testApp(t)
	// Concurrent traffic, then a health read.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); postRun(t, ts, runRequest{Asm: testAsm}) }()
	}
	wg.Wait()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Workers != 2 || h.Completed < 4 {
		t.Errorf("health = %+v", h)
	}
	_ = a
}

func TestHealthzDraining(t *testing.T) {
	a, ts := testApp(t)
	if err := a.srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
	// New runs are rejected with a serving error.
	runResp, body := postRun(t, ts, runRequest{Asm: "halt"})
	if runResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run while draining: status %d (%s), want 503", runResp.StatusCode, body)
	}
}

// storeApp is testApp backed by a persistent artifact store.
func storeApp(t *testing.T, st *store.Store) (*app, *httptest.Server) {
	t.Helper()
	srv := serve.NewServer(serve.ServerOptions{
		Pool:   serve.Options{Workers: 2, Retries: -1},
		Budget: 200_000_000,
		Store:  st,
	})
	a := newApp(srv, st, core.ExceptionHandling, 10*time.Second)
	ts := httptest.NewServer(a.mux())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return a, ts
}

// TestStoreWarmRestart is the -store contract over HTTP: a process runs a
// program cold, drains (flushing its trap profile into the store), and a
// second process on the same store directory serves the same program with
// strictly fewer traps and identical guest results, with the store
// counters visible under "store" in GET /statsz.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a1, ts1 := storeApp(t, st1)
	resp, body := postRun(t, ts1, runRequest{Asm: testAsm, Mech: "speh"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run: status %d: %s", resp.StatusCode, body)
	}
	var cold runResponse
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.MisalignTraps == 0 {
		t.Fatalf("cold speh run trapped 0 times: %+v", cold)
	}
	if err := a1.srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := storeApp(t, st2)
	resp, body = postRun(t, ts2, runRequest{Asm: testAsm, Mech: "speh"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm run: status %d: %s", resp.StatusCode, body)
	}
	var warm runResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.EAX != cold.EAX || warm.Regs != cold.Regs {
		t.Fatalf("warm guest result diverged: cold %+v warm %+v", cold.Regs, warm.Regs)
	}
	if warm.MisalignTraps >= cold.MisalignTraps {
		t.Fatalf("restart did not warm-start: cold %d traps, warm %d", cold.MisalignTraps, warm.MisalignTraps)
	}

	sr, err := http.Get(ts2.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Store == nil {
		t.Fatalf("statsz missing store counters: %+v", stats)
	}
	if stats.Store.Hits == 0 {
		t.Fatalf("warm process never hit the store: %+v", stats.Store)
	}
}

// TestRunAOTWarmup is the serving half of the AOT acceptance check: on a
// known image every /run with the aot mechanism adopts the cached offline
// image, so even the first request — and certainly every warm one —
// performs zero dynamic block translations, and /statsz exposes the
// hits-vs-fallbacks ratio.
func TestRunAOTWarmup(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark model generation is slow")
	}
	_, ts := testApp(t)
	for i := 0; i < 2; i++ {
		resp, body := postRun(t, ts, runRequest{Bench: "429.mcf", Mech: "aot"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		var r runResponse
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatalf("bad response %s: %v", body, err)
		}
		if r.Translated != 0 {
			t.Errorf("request %d: %d dynamic translations, want 0 (image adopted)", i, r.Translated)
		}
		if r.AOTBlocks == 0 || r.AOTHits == 0 {
			t.Errorf("request %d: aot counters empty: %+v", i, r)
		}
		if r.JITFallbacks != 0 {
			t.Errorf("request %d: %d JIT fallbacks, want 0", i, r.JITFallbacks)
		}
	}

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Runs != 2 || s.AOTRuns != 2 {
		t.Errorf("statsz runs=%d aot_runs=%d, want 2/2", s.Runs, s.AOTRuns)
	}
	if s.AOTHits == 0 || s.JITFallbacks != 0 {
		t.Errorf("statsz = %+v, want hits with zero fallbacks", s)
	}
}
