// Command dbtserve exposes the DBT engine pool over HTTP: many guest
// programs run concurrently on a fixed set of reusable engines, with
// per-request deadlines, retry on transient faults, per-program circuit
// breaking, and graceful drain on shutdown.
//
// Usage:
//
//	dbtserve -addr :8437 -workers 8 -mech eh
//
// Endpoints:
//
//	POST /run     — execute a guest program; JSON body:
//	                  {"asm": "<guest assembly>"}          assemble and run, or
//	                  {"bench": "164.gzip", "input":"ref"} run a benchmark model, or
//	                  {"faultprog": "straddle-store-fault"} run a guest-fault workload
//	                optional fields: "mech" (policy name), "budget",
//	                "deadline_ms", "threshold", "traces" (enable the
//	                direct-chaining trace tier; simulated results are
//	                bit-identical, the response gains trace counters). A run ending in a
//	                guest-visible memory fault returns HTTP 422 with the
//	                faulting guest PC and address in "guest_fault".
//	GET  /healthz — pool health snapshot (503 while draining).
//	GET  /statsz  — cumulative serving counters, including AOT cache hits
//	                vs JIT fallbacks (cold-start observability) and
//	                trace-tier totals (traces_formed, chain_follows,
//	                trace_invalidations) across "traces":true runs.
//
// Requests running the "aot" mechanism on a benchmark adopt a cached
// ahead-of-time image (built once per benchmark): the engine pre-seeds its
// code cache from the image at Reset/Run, so repeat requests for a known
// binary perform zero dynamic block translations.
//
// With -store DIR the pool is backed by the crash-safe persistent
// artifact store (internal/store): AOT images and aggregated trap
// profiles survive restarts, so a fresh process warm-starts instead of
// rediscovering every MDA site, and a store started by dbtrun warms
// dbtserve (and vice versa). Corrupt or stale artifacts are quarantined
// and the affected request degrades to a cold translation — the "store"
// object in GET /statsz exposes hits, misses, corruption, and quarantine
// counts.
//
// SIGINT/SIGTERM drains in-flight requests (bounded) before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mdabt/internal/aot"
	"mdabt/internal/core"
	"mdabt/internal/faultinject"
	"mdabt/internal/guest"
	"mdabt/internal/guestasm"
	"mdabt/internal/mem"
	"mdabt/internal/policy"
	"mdabt/internal/serve"
	"mdabt/internal/store"
	"mdabt/internal/workload"
)

// runRequest is the POST /run body.
type runRequest struct {
	Asm        string `json:"asm,omitempty"`
	Bench      string `json:"bench,omitempty"`
	FaultProg  string `json:"faultprog,omitempty"` // built-in guest-fault workload
	Input      string `json:"input,omitempty"`     // "train" or "ref" (default)
	Mech       string `json:"mech,omitempty"`
	Traces     bool   `json:"traces,omitempty"` // enable the direct-chaining trace tier
	Threshold  uint64 `json:"threshold,omitempty"`
	Budget     uint64 `json:"budget,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
}

// runResponse is the POST /run success body.
type runResponse struct {
	Program       string    `json:"program"`
	Mechanism     string    `json:"mechanism"`
	Cycles        uint64    `json:"cycles"`
	HostInsts     uint64    `json:"host_insts"`
	MisalignTraps uint64    `json:"misalign_traps"`
	Translated    uint64    `json:"translated_blocks"`
	Interpreted   uint64    `json:"interpreted_insts"`
	CodeBytes     uint64    `json:"code_cache_bytes"`
	EAX           uint32    `json:"eax"`
	Attempts      int       `json:"attempts"`
	Worker        int       `json:"worker"`
	ElapsedMS     float64   `json:"elapsed_ms"`
	Regs          [8]uint32 `json:"regs"`
	// AOT tier counters (present on "aot"-mechanism runs): blocks
	// pre-translated offline, dispatches served from them, and dynamic
	// translations the engine still performed. A warm request on a known
	// image reports translated_blocks and jit_fallbacks of zero.
	AOTBlocks    uint64 `json:"aot_blocks,omitempty"`
	AOTHits      uint64 `json:"aot_hits,omitempty"`
	JITFallbacks uint64 `json:"jit_fallbacks,omitempty"`
	// Trace-tier telemetry (present on "traces":true runs). Host-side
	// only: the simulated counters above are bit-identical with the tier
	// on or off.
	TracesFormed       uint64 `json:"traces_formed,omitempty"`
	ChainFollows       uint64 `json:"chain_follows,omitempty"`
	TraceInvalidations uint64 `json:"trace_invalidations,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	Class string `json:"class"`
	// GuestFault is set (with HTTP 422) when the guest program itself took
	// a memory fault: the run was served correctly, the program faulted.
	GuestFault *guestFaultBody `json:"guest_fault,omitempty"`
}

// guestFaultBody pins the faulting guest PC and access in the 422 body.
type guestFaultBody struct {
	PC       string `json:"pc"`
	Addr     string `json:"addr"`
	Size     int    `json:"size"`
	Write    bool   `json:"write"`
	Unmapped bool   `json:"unmapped"`
}

// app binds the HTTP handlers to one serving pool.
type app struct {
	srv      *serve.Server
	store    *store.Store // persistent artifact store (nil = memory-only)
	mech     core.Mechanism
	deadline time.Duration

	mu     sync.Mutex
	progs  map[string]*workload.Program // benchmark model cache
	images map[string]*aot.Image        // ahead-of-time image cache, per benchmark
	saved  map[store.Key]bool           // artifacts already persisted this process

	// Cumulative serving counters (GET /statsz), updated atomically.
	runs         atomic.Uint64 // successful /run executions
	aotRuns      atomic.Uint64 // runs served under the aot mechanism
	aotHits      atomic.Uint64 // dispatches into pre-translated blocks
	jitFallbacks atomic.Uint64 // dynamic translations despite AOT

	// Trace-tier counters, summed across "traces":true runs.
	tracesFormed       atomic.Uint64 // step-list traces built
	chainFollows       atomic.Uint64 // direct trace-to-trace transfers
	traceInvalidations atomic.Uint64 // traces dropped (SMC, flush, reset)
}

func newApp(srv *serve.Server, st *store.Store, mech core.Mechanism, deadline time.Duration) *app {
	return &app{
		srv: srv, store: st, mech: mech, deadline: deadline,
		progs:  make(map[string]*workload.Program),
		images: make(map[string]*aot.Image),
		saved:  make(map[store.Key]bool),
	}
}

// benchStoreKey is the persistent-store program identity for a benchmark
// request. dbtrun derives the same identity, so artifacts trained by one
// front end warm the other.
func benchStoreKey(bench, input string) string {
	if input != "train" {
		input = "ref"
	}
	return "bench-" + bench + "-" + input
}

// mux returns the HTTP routing table (shared by main and the tests).
func (a *app) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/run", a.handleRun)
	m.HandleFunc("/healthz", a.handleHealth)
	m.HandleFunc("/statsz", a.handleStats)
	return m
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errStatus maps the error taxonomy onto HTTP statuses.
func errStatus(err error) int {
	switch {
	case errors.Is(err, serve.ErrOverloaded), errors.Is(err, serve.ErrCircuitOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case core.IsInternal(err):
		return http.StatusInternalServerError
	case core.IsTransient(err):
		return http.StatusServiceUnavailable
	default:
		if _, ok := core.AsGuestFault(err); ok {
			// The serving layer did its job; the guest program faulted.
			return http.StatusUnprocessableEntity
		}
		return http.StatusBadRequest // Permanent: the request's own fault
	}
}

// errBody builds the JSON error body, attaching the precise guest fault
// (PC, address, access) when the run ended in one.
func errBody(err error) errorResponse {
	resp := errorResponse{Error: err.Error(), Class: core.Classify(err).String()}
	if gf, ok := core.AsGuestFault(err); ok {
		resp.GuestFault = &guestFaultBody{
			PC:       fmt.Sprintf("%#x", gf.PC),
			Addr:     fmt.Sprintf("%#x", gf.Mem.Addr),
			Size:     gf.Mem.Size,
			Write:    gf.Mem.Write,
			Unmapped: gf.Mem.Unmapped,
		}
	}
	return resp
}

func (a *app) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var body runRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error(), Class: "permanent"})
		return
	}

	mech := a.mech
	if body.Mech != "" {
		m, ok := core.MechanismByName(body.Mech)
		if !ok {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("unknown mechanism %q (have %s)", body.Mech, strings.Join(policy.AllNames(), ", ")),
				Class: "permanent",
			})
			return
		}
		mech = m
	}
	opt := core.DefaultOptions(mech)
	if body.Threshold != 0 {
		opt.HeatThreshold = body.Threshold
	}
	opt.Traces = body.Traces

	req := serve.Request{Options: &opt, Budget: body.Budget, Timeout: a.deadline}
	if body.DeadlineMS > 0 {
		req.Timeout = time.Duration(body.DeadlineMS) * time.Millisecond
	}
	var name string
	given := 0
	for _, s := range []string{body.Asm, body.Bench, body.FaultProg} {
		if s != "" {
			given++
		}
	}
	switch {
	case given > 1:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "give exactly one of asm, bench, faultprog", Class: "permanent"})
		return
	case body.FaultProg != "":
		progs, err := workload.FaultPrograms()
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error(), Class: "internal"})
			return
		}
		var fp *workload.FaultProgram
		var names []string
		for _, p := range progs {
			names = append(names, p.Name)
			if p.Name == body.FaultProg {
				fp = p
			}
		}
		if fp == nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("unknown fault workload %q (have %s)", body.FaultProg, strings.Join(names, ", ")),
				Class: "permanent",
			})
			return
		}
		name = fp.Name
		req.Load = func(m *mem.Memory) uint32 { fp.Load(m); return fp.Entry() }
	case body.Asm != "":
		img, err := guestasm.Assemble(body.Asm, guest.CodeBase)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Class: "permanent"})
			return
		}
		name = "asm"
		req.Image = img
	case body.Bench != "":
		prog, err := a.program(body.Bench)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Class: "permanent"})
			return
		}
		in := workload.Ref
		if body.Input == "train" {
			in = workload.Train
		}
		name = body.Bench
		req.Key = body.Bench
		req.StoreKey = benchStoreKey(body.Bench, body.Input)
		req.Load = func(m *mem.Memory) uint32 { prog.Load(m, in); return prog.Entry() }
		if opt.AOT {
			// Adopt the benchmark's cached ahead-of-time image: the engine
			// pre-seeds its code cache from the image's block schedule, so
			// the run performs zero dynamic translations on full coverage.
			// With a persistent store the image is saved there instead and
			// the serving layer's warm path adopts it (surviving restarts).
			a.ensureImage(&opt, req.StoreKey, body.Bench, prog)
		}
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "need asm, bench, or faultprog", Class: "permanent"})
		return
	}

	start := time.Now()
	res, err := a.srv.Do(r.Context(), req)
	if err != nil {
		writeJSON(w, errStatus(err), errBody(err))
		return
	}
	resp := runResponse{
		Program:       name,
		Mechanism:     opt.Mechanism.String(),
		Cycles:        res.Counters.Cycles,
		HostInsts:     res.Counters.Insts,
		MisalignTraps: res.Counters.MisalignTraps,
		Translated:    res.Stats.BlocksTranslated,
		Interpreted:   res.Stats.InterpretedInsts,
		CodeBytes:     res.CodeUsed,
		EAX:           res.CPU.R[guest.EAX],
		Attempts:      res.Attempts,
		Worker:        res.Worker,
		ElapsedMS:     float64(time.Since(start).Microseconds()) / 1000,
		AOTBlocks:     res.Stats.AOTBlocks,
		AOTHits:       res.Stats.AOTHits,
		JITFallbacks:  res.Stats.AOTFallbacks,

		TracesFormed:       res.Traces.Formed,
		ChainFollows:       res.Traces.ChainFollows,
		TraceInvalidations: res.Traces.Invalidations,
	}
	for i := range resp.Regs {
		resp.Regs[i] = res.CPU.R[guest.Reg(i)]
	}
	a.runs.Add(1)
	if opt.Traces {
		a.tracesFormed.Add(res.Traces.Formed)
		a.chainFollows.Add(res.Traces.ChainFollows)
		a.traceInvalidations.Add(res.Traces.Invalidations)
	}
	if opt.AOT {
		a.aotRuns.Add(1)
		a.aotHits.Add(res.Stats.AOTHits)
		a.jitFallbacks.Add(res.Stats.AOTFallbacks)
		fmt.Fprintf(os.Stderr, "dbtserve: aot %s: %d blocks pre-translated, %d hits, %d jit fallbacks\n",
			name, res.Stats.AOTBlocks, res.Stats.AOTHits, res.Stats.AOTFallbacks)
	}
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse is the GET /statsz body: cumulative serving counters. The
// aot_hits vs jit_fallbacks ratio is the cold-start win made observable —
// a warmed pool serving known images reports growing hits with zero
// fallbacks.
type statsResponse struct {
	Runs         uint64 `json:"runs"`
	AOTRuns      uint64 `json:"aot_runs"`
	AOTHits      uint64 `json:"aot_hits"`
	JITFallbacks uint64 `json:"jit_fallbacks"`
	// Trace-tier totals across "traces":true runs: how much dispatch tax
	// the pool's engines avoided, and how often invalidation severed the
	// chains (SMC, flushes, engine resets).
	TracesFormed       uint64 `json:"traces_formed"`
	ChainFollows       uint64 `json:"chain_follows"`
	TraceInvalidations uint64 `json:"trace_invalidations"`
	// Store is the persistent artifact store's counter snapshot, present
	// only when the server runs with -store. hits vs misses is the
	// cross-restart warm-start win; corrupt/quarantined is the
	// degraded-but-correct path (every corrupt artifact was isolated and
	// its request served cold).
	Store *storeStatsBody `json:"store,omitempty"`
}

// storeStatsBody mirrors store.Stats with wire-stable snake_case keys.
type storeStatsBody struct {
	Saves         uint64 `json:"saves"`
	SaveErrors    uint64 `json:"save_errors"`
	Loads         uint64 `json:"loads"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Corrupt       uint64 `json:"corrupt"`
	VersionSkew   uint64 `json:"version_skew"`
	Foreign       uint64 `json:"foreign"`
	Quarantined   uint64 `json:"quarantined"`
	ReadErrors    uint64 `json:"read_errors"`
	LockConflicts uint64 `json:"lock_conflicts"`
	Merges        uint64 `json:"merges"`
}

func (a *app) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Runs:         a.runs.Load(),
		AOTRuns:      a.aotRuns.Load(),
		AOTHits:      a.aotHits.Load(),
		JITFallbacks: a.jitFallbacks.Load(),

		TracesFormed:       a.tracesFormed.Load(),
		ChainFollows:       a.chainFollows.Load(),
		TraceInvalidations: a.traceInvalidations.Load(),
	}
	if st, ok := a.srv.StoreStats(); ok {
		resp.Store = &storeStatsBody{
			Saves:         st.Saves,
			SaveErrors:    st.SaveErrors,
			Loads:         st.Loads,
			Hits:          st.Hits,
			Misses:        st.Misses,
			Corrupt:       st.Corrupt,
			VersionSkew:   st.VersionSkew,
			Foreign:       st.Foreign,
			Quarantined:   st.Quarantined,
			ReadErrors:    st.ReadErrors,
			LockConflicts: st.LockConflicts,
			Merges:        st.Merges,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ensureImage routes the benchmark's ahead-of-time image to the request:
// without a persistent store it adopts the in-memory cached image
// directly; with one it persists the image under (program key, options
// fingerprint) and leaves adoption to the serving layer's warm-start
// path, so the artifact outlives this process. A failed save only costs
// warmth — the request runs cold and correct.
func (a *app) ensureImage(opt *core.Options, storeKey, bench string, prog *workload.Program) {
	im := a.image(bench, prog)
	if a.store == nil {
		im.Apply(opt)
		return
	}
	k := store.Key{Program: storeKey, Fingerprint: opt.Fingerprint(), Kind: store.KindAOTImage}
	a.mu.Lock()
	done := a.saved[k]
	a.mu.Unlock()
	if done {
		return
	}
	if err := a.store.Save(k, im); err != nil {
		fmt.Fprintf(os.Stderr, "dbtserve: store save %s: %v\n", storeKey, err)
		return
	}
	a.mu.Lock()
	a.saved[k] = true
	a.mu.Unlock()
}

// image returns the (cached) ahead-of-time image for a benchmark, built
// once by loading the program into a scratch memory and running CFG
// recovery over it — the offline half of the AOT tier.
func (a *app) image(name string, prog *workload.Program) *aot.Image {
	a.mu.Lock()
	defer a.mu.Unlock()
	if im, ok := a.images[name]; ok {
		return im
	}
	m := mem.New()
	prog.Load(m, workload.Ref)
	im := aot.BuildFromMemory(m, prog.Entry())
	a.images[name] = im
	return im
}

func (a *app) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := a.srv.Health()
	status := http.StatusOK
	if h.Draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// program returns the (cached) benchmark model.
func (a *app) program(name string) (*workload.Program, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if p, ok := a.progs[name]; ok {
		return p, nil
	}
	spec, ok := workload.SpecByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", name)
	}
	p, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	a.progs[name] = p
	return p, nil
}

func main() {
	addr := flag.String("addr", ":8437", "listen address")
	workers := flag.Int("workers", 0, "engine pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue bound (0 = 2×workers)")
	retries := flag.Int("retries", 2, "retries on transient failures (-1 disables)")
	budget := flag.Uint64("budget", 4_000_000_000, "default host-instruction budget per request")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline (0 = none)")
	mechName := flag.String("mech", "eh", "default MDA mechanism, by policy-registry name")
	chaosRate := flag.Float64("chaos-rate", 0, "arm every serving fault point with this probability")
	chaosSeed := flag.Int64("chaos-seed", 1, "serving fault-injection seed (with -chaos-rate)")
	drainWait := flag.Duration("drain", 30*time.Second, "max time to drain in-flight requests at shutdown")
	storeDir := flag.String("store", "", "persistent artifact store directory: AOT images and trap profiles survive restarts (empty = memory-only)")
	flag.Parse()

	mech, ok := core.MechanismByName(*mechName)
	if !ok {
		fmt.Fprintf(os.Stderr, "dbtserve: unknown mechanism %q (have %s)\n", *mechName, strings.Join(policy.AllNames(), ", "))
		os.Exit(1)
	}
	var chaos *faultinject.Plan
	if *chaosRate > 0 {
		chaos = faultinject.New(*chaosSeed).
			Rate(faultinject.ServeTransient, *chaosRate).
			Rate(faultinject.ServePanic, *chaosRate)
	}
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbtserve: open store: %v\n", err)
			os.Exit(1)
		}
	}
	srv := serve.NewServer(serve.ServerOptions{
		Pool: serve.Options{
			Workers: *workers,
			Queue:   *queue,
			Retries: *retries,
			Chaos:   chaos,
		},
		Budget: *budget,
		Store:  st,
	})
	a := newApp(srv, st, mech, *deadline)

	httpSrv := &http.Server{Addr: *addr, Handler: a.mux()}
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "dbtserve: draining...")
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "dbtserve: %v\n", err)
		}
		httpSrv.Shutdown(ctx)
		srv.Close()
		close(done)
	}()

	fmt.Printf("dbtserve: listening on %s (%d workers, mechanism %v)\n",
		*addr, srv.Health().Workers, mech)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "dbtserve: %v\n", err)
		os.Exit(1)
	}
	<-done
}
