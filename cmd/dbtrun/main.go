// Command dbtrun executes a guest program under the binary translator with
// a chosen MDA handling mechanism and reports execution statistics.
//
// Usage:
//
//	dbtrun -mechanism eh [-rearrange] [-retranslate] [-multiversion] [-threshold N] prog.gasm
//	dbtrun -bench 410.bwaves -mech dynprof -threshold 50
//
// The positional argument is a guest assembly file (see internal/guestasm
// for the syntax). Alternatively -bench runs one of the built-in SPEC
// benchmark models. Mechanisms are selected by policy-registry name (or
// alias): direct, static-profile, dynamic-profile, exception-handling,
// dpeh, speh — newly registered mechanisms are selectable with no CLI
// changes.
//
// With -store DIR runs warm-start from the crash-safe persistent
// artifact store (internal/store) — stored AOT images and trap profiles
// keyed by (program, options fingerprint) — and merge their own
// alignment history back for the next run. The store directory is shared
// with dbtserve -store; corrupt artifacts are quarantined and the run
// proceeds cold.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"mdabt/internal/aot"
	"mdabt/internal/core"
	"mdabt/internal/faultinject"
	"mdabt/internal/guest"
	"mdabt/internal/guestasm"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
	"mdabt/internal/policy"
	"mdabt/internal/profiling"
	"mdabt/internal/store"
	"mdabt/internal/workload"
)

func main() {
	mechName := flag.String("mechanism", "eh",
		"MDA mechanism, by policy-registry name or alias ("+strings.Join(policy.Names(), ", ")+")")
	flag.StringVar(mechName, "mech", *mechName, "shorthand for -mechanism")
	threshold := flag.Uint64("threshold", 0, "heating threshold (0 = mechanism default)")
	rearrange := flag.Bool("rearrange", false, "enable code rearrangement (EH)")
	retranslate := flag.Bool("retranslate", false, "enable block retranslation (DPEH)")
	multiversion := flag.Bool("multiversion", false, "enable multi-version code (DPEH)")
	mvblock := flag.Bool("mvblock", false, "multi-version at block granularity (with -multiversion)")
	bench := flag.String("bench", "", "run a built-in benchmark model instead of a file")
	faultProg := flag.String("faultprog", "",
		"run a built-in guest-fault workload (straddle-ok, straddle-store-fault, straddle-load-unmapped, smc-rewrite)")
	expectFault := flag.Bool("expect-fault", false,
		"succeed only if the run ends in a guest-visible memory fault (printed with the stats)")
	input := flag.String("input", "ref", "benchmark input set: train or ref")
	budget := flag.Uint64("budget", 4_000_000_000, "host-instruction budget")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline for the run (0 = none)")
	dump := flag.Bool("dump", false, "disassemble every translated block after the run")
	events := flag.Int("events", 0, "print the last N translator events")
	ibtc := flag.Bool("ibtc", false, "enable the indirect-branch translation cache")
	adaptive := flag.Bool("adaptive", false, "enable §IV-D adaptive sites (DPEH)")
	superblocks := flag.Bool("superblocks", false, "enable phase-2 trace formation (DPEH/dynprof)")
	traces := flag.Bool("traces", false, "enable the IR-less direct-chaining trace execution tier (simulation-invisible; see -dump for annotations)")
	staticalign := flag.Bool("staticalign", false, "layer the static alignment analysis over the mechanism")
	aotFlag := flag.Bool("aot", false, "pre-translate the whole binary ahead of time from the recovered CFG (implies -staticalign)")
	lint := flag.Bool("lint", false, "run the translation verifier over every emitted block after the run")
	profileOut := flag.String("profile-out", "", "run a training census and write the profile database (JSON) here, then exit")
	profileIn := flag.String("profile-in", "", "load a stored profile database for the static mechanism")
	storeDir := flag.String("store", "", "persistent artifact store directory: warm-start from stored AOT images and trap profiles, merge this run's history back (shared with dbtserve -store)")
	selfcheck := flag.Bool("selfcheck", false, "validate engine invariants after every structural mutation and at exit")
	faultRate := flag.Float64("fault-rate", 0, "inject faults at every injection point with this probability (chaos mode)")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection PRNG seed (with -fault-rate)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail("%v", err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fail("%v", err)
		}
	}()

	mech, ok := core.MechanismByName(*mechName)
	if !ok {
		fail("unknown mechanism %q (have %s)", *mechName, strings.Join(policy.AllNames(), ", "))
	}
	opt := core.DefaultOptions(mech)
	if *threshold != 0 {
		opt.HeatThreshold = *threshold
	}
	opt.Rearrange = *rearrange
	opt.Retranslate = *retranslate
	opt.MultiVersion = *multiversion
	opt.MVBlockGranularity = *mvblock
	opt.IBTC = *ibtc
	opt.Adaptive = *adaptive
	opt.Superblocks = *superblocks
	opt.Traces = *traces
	// The aot mechanism's DefaultOptions pre-sets AOT and StaticAlign; the
	// flags add the layers over other bases without clearing those.
	opt.StaticAlign = *staticalign || opt.StaticAlign
	if *aotFlag {
		opt.AOT = true
		opt.StaticAlign = true
	}
	opt.SelfCheck = *selfcheck
	if *faultRate < 0 || *faultRate > 1 {
		fail("-fault-rate must be in [0,1]")
	}
	if *faultRate > 0 {
		opt.FaultPlan = faultinject.New(*faultSeed).RateAll(*faultRate)
	}
	if err := opt.Validate(); err != nil {
		fail("%v", err)
	}

	var st *store.Store
	if *storeDir != "" {
		var serr error
		st, serr = store.Open(*storeDir)
		if serr != nil {
			fail("open store: %v", serr)
		}
	}

	m := mem.New()
	entry := uint32(guest.CodeBase)

	progName := "program"
	storeProg := "" // persistent-store program identity ("" = no store traffic)
	var benchProg *workload.Program
	switch {
	case *bench != "" && *faultProg != "":
		fail("give either -bench or -faultprog, not both")
	case *faultProg != "":
		progs, err := workload.FaultPrograms()
		if err != nil {
			fail("faultprog: %v", err)
		}
		var fp *workload.FaultProgram
		var names []string
		for _, p := range progs {
			names = append(names, p.Name)
			if p.Name == *faultProg {
				fp = p
			}
		}
		if fp == nil {
			fail("unknown fault workload %q (have %s)", *faultProg, strings.Join(names, ", "))
		}
		progName = fp.Name
		fp.Load(m) // code + data images plus the page-protection plan
		entry = fp.Entry()
	case *bench != "":
		spec, ok := workload.SpecByName(*bench)
		if !ok {
			fail("unknown benchmark %q", *bench)
		}
		progName = *bench
		prog, err := workload.Generate(spec)
		if err != nil {
			fail("generate: %v", err)
		}
		in, inName := workload.Ref, "ref"
		if *input == "train" {
			in, inName = workload.Train, "train"
		}
		prog.Load(m, in)
		entry = prog.Entry()
		benchProg = prog
		// Matches dbtserve's benchStoreKey: artifacts trained by one front
		// end warm the other.
		storeProg = "bench-" + *bench + "-" + inName
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail("%v", err)
		}
		progName = flag.Arg(0)
		img, err := guestasm.Assemble(string(src), guest.CodeBase)
		if err != nil {
			fail("%v", err)
		}
		m.WriteBytes(guest.CodeBase, img)
		storeProg = store.HashProgram(img)
	default:
		fail("need a guest assembly file or -bench")
	}

	if *profileOut != "" {
		// FX!32-style pre-execution: census the program and persist the
		// profile database for later static-profiling runs.
		db, err := core.TrainProfile(m, progName, *input, entry, *budget)
		if err != nil {
			fail("train: %v", err)
		}
		f, err := os.Create(*profileOut)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		if err := db.Save(f); err != nil {
			fail("%v", err)
		}
		fmt.Printf("%s: %d MDA sites profiled\n", *profileOut, len(db.Sites))
		return
	}
	if *profileIn != "" {
		f, err := os.Open(*profileIn)
		if err != nil {
			fail("%v", err)
		}
		db, err := core.LoadProfileDB(f)
		f.Close()
		if err != nil {
			fail("%v", err)
		}
		opt.StaticSites = db.StaticSites()
	}

	// Warm-start from the persistent store: adopt the stored AOT block
	// schedule and trap profile keyed by (program identity, options
	// fingerprint). Anything the store cannot supply cleanly — a miss, a
	// quarantined corrupt artifact, a foreign fingerprint — leaves the run
	// cold; for benchmarks, a training census fills the gap and is
	// persisted so the next run (either front end) skips it.
	fingerprint := opt.Fingerprint()
	if st != nil && storeProg != "" && opt.AOT && opt.AOTBlocks == nil {
		k := store.Key{Program: storeProg, Fingerprint: fingerprint, Kind: store.KindAOTImage}
		var im aot.Image
		if err := st.Load(k, &im); err == nil && im.Verify() == nil {
			im.Apply(&opt)
		} else {
			built := aot.BuildFromMemory(m, entry)
			built.Apply(&opt)
			if serr := st.Save(k, built); serr != nil {
				fmt.Fprintf(os.Stderr, "dbtrun: store save aot image: %v\n", serr)
			}
		}
	}
	if p, ok := policy.ByID(int(mech)); ok && p.UsesStaticProfile() && *profileIn == "" && opt.StaticSites == nil {
		profKey := store.Key{Program: storeProg, Fingerprint: fingerprint, Kind: store.KindTrapProfile}
		warmed := false
		if st != nil && storeProg != "" {
			var tp store.TrapProfile
			if st.Load(profKey, &tp) == nil {
				// A stored profile with zero MDA sites is still knowledge —
				// "the census found nothing" — so it suppresses retraining.
				opt.StaticSites = tp.StaticSites()
				warmed = true
			}
		}
		if !warmed && benchProg != nil {
			opt.StaticSites = trainProfile(benchProg)
			if st != nil && storeProg != "" {
				delta := &store.TrapProfile{Sessions: 1}
				for pc := range opt.StaticSites {
					delta.Add(pc, 1, 0)
				}
				if serr := st.MergeTrapProfile(profKey, delta); serr != nil {
					fmt.Fprintf(os.Stderr, "dbtrun: store save trap profile: %v\n", serr)
				}
			}
		}
	}

	mach := machine.New(m, machine.DefaultParams())
	eng := core.NewEngine(m, mach, opt)
	if *events > 0 {
		eng.EnableEventLog()
	}
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	runErr := eng.RunContext(ctx, entry, *budget)
	var gf *guest.Fault
	if runErr != nil {
		g, ok := core.AsGuestFault(runErr)
		if !ok || !*expectFault {
			stopProfiles() // a budget- or deadline-exhausted run is still worth profiling
			fail("run: %v", runErr)
		}
		gf = g
	} else if *expectFault {
		fail("run halted cleanly; -expect-fault required a guest-visible memory fault")
	}

	// Merge this session's per-site alignment history back into the store:
	// the next run of this (program, options) pair warm-starts from it. A
	// failed merge costs future warmth, never this run's result.
	if st != nil && storeProg != "" {
		delta := &store.TrapProfile{Sessions: 1}
		for pc, h := range eng.SiteHistory() {
			delta.Add(pc, h.MDA, h.Aligned)
		}
		k := store.Key{Program: storeProg, Fingerprint: fingerprint, Kind: store.KindTrapProfile}
		if serr := st.MergeTrapProfile(k, delta); serr != nil {
			fmt.Fprintf(os.Stderr, "dbtrun: store merge trap profile: %v\n", serr)
		}
	}

	c := mach.Counters()
	s := eng.Stats()
	fmt.Printf("mechanism:        %v\n", opt.Mechanism)
	fmt.Printf("cycles:           %d\n", c.Cycles)
	fmt.Printf("host insts:       %d\n", c.Insts)
	fmt.Printf("loads/stores:     %d / %d\n", c.Loads, c.Stores)
	fmt.Printf("misalign traps:   %d (%d cycles)\n", c.MisalignTraps, c.TrapCycles)
	fmt.Printf("translated:       %d units (%d retrans, %d rearranged, %d multi-version, %d traces/%d blocks)\n",
		s.BlocksTranslated, s.Retranslations, s.Rearrangements, s.MultiVersion, s.Superblocks, s.TraceBlocks)
	fmt.Printf("patches/stubs:    %d / %d\n", s.Patches, s.MDAStubs)
	fmt.Printf("interpreted:      %d guest insts (%d MDAs handled softly)\n",
		s.InterpretedInsts, s.InterpretedMDAs)
	fmt.Printf("dispatches/links: %d / %d\n", s.NativeBlockRuns, s.Links)
	fmt.Printf("code cache:       %d bytes\n", eng.CodeCacheUsed())
	if gf != nil {
		fmt.Printf("guest fault:      pc=%#x %v\n", gf.PC, &gf.Mem)
	}
	if *faultRate > 0 || s.StubZoneFull+s.UnpatchableSites+s.InterpFallbacks+s.TrapStormDemotions > 0 {
		fmt.Printf("degraded:         stub-full=%d unpatchable=%d interp-fallbacks=%d demotions=%d flushes=%d\n",
			s.StubZoneFull, s.UnpatchableSites, s.InterpFallbacks, s.TrapStormDemotions, s.Flushes)
	}
	if opt.FaultPlan != nil {
		fmt.Printf("injected faults:  %d (%s)\n", s.InjectedFaults, opt.FaultPlan)
	}
	if opt.StaticAlign {
		fmt.Printf("static-align:     analyzed=%d sites aligned=%d misaligned=%d unknown=%d violations=%d\n",
			s.StaticAnalyzedInsts, s.StaticAlignedSites, s.StaticMisalignedSites,
			s.StaticUnknownSites, s.StaticAlignViolations)
	}
	if opt.AOT {
		fmt.Printf("aot:              %d blocks pre-translated, %d hits, %d jit fallbacks\n",
			s.AOTBlocks, s.AOTHits, s.AOTFallbacks)
	}
	if st != nil {
		ss := st.Stats()
		fmt.Printf("store:            hits=%d misses=%d saves=%d merges=%d corrupt=%d quarantined=%d\n",
			ss.Hits, ss.Misses, ss.Saves, ss.Merges, ss.Corrupt, ss.Quarantined)
	}
	if opt.Traces {
		ts := eng.TraceStats()
		fmt.Printf("trace tier:       %d formed, %d chain follows, %d invalidations, %d host insts traced\n",
			ts.Formed, ts.ChainFollows, ts.Invalidations, ts.TracedInsts)
	}
	if *lint {
		findings := eng.Lint()
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "dbtrun: lint: %s\n", f)
		}
		if len(findings) > 0 {
			os.Exit(1)
		}
		fmt.Printf("lint:             ok (%d blocks clean)\n", len(eng.TranslatedPCs()))
	}
	if *selfcheck {
		if err := eng.CheckInvariants(); err != nil {
			fail("selfcheck: %v", err)
		}
		fmt.Printf("selfcheck:        ok\n")
	}

	cpu := eng.FinalCPU()
	fmt.Printf("guest state:      eax=%#x ecx=%#x edx=%#x ebx=%#x esi=%#x edi=%#x\n",
		cpu.R[guest.EAX], cpu.R[guest.ECX], cpu.R[guest.EDX],
		cpu.R[guest.EBX], cpu.R[guest.ESI], cpu.R[guest.EDI])

	if *dump {
		fmt.Println()
		for _, pc := range eng.TranslatedPCs() {
			out, err := eng.DumpBlock(pc)
			if err != nil {
				fail("dump %#x: %v", pc, err)
			}
			fmt.Print(out)
		}
		if out := eng.DumpTraces(); out != "" {
			fmt.Println()
			fmt.Print(out)
		}
	}
	if *events > 0 {
		evs, dropped := eng.Events()
		if len(evs) > *events {
			evs = evs[len(evs)-*events:]
		}
		fmt.Println()
		for _, ev := range evs {
			fmt.Println(ev)
		}
		if dropped > 0 {
			fmt.Printf("(%d older events dropped)\n", dropped)
		}
	}
}

// trainProfile runs the train input through the census interpreter and
// collects the MDA site set (the FX!32-style profile).
func trainProfile(prog *workload.Program) map[uint32]bool {
	m := mem.New()
	prog.Load(m, workload.Train)
	c, err := core.RunCensus(m, prog.Entry(), 300_000_000)
	if err != nil {
		fail("train profile: %v", err)
	}
	sites := make(map[uint32]bool)
	for pc, site := range c.Sites {
		if site.MDA > 0 {
			sites[pc] = true
		}
	}
	return sites
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dbtrun: "+format+"\n", args...)
	os.Exit(1)
}
