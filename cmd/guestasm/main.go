// Command guestasm assembles guest (x86-like) assembly into a binary image,
// or disassembles an image back to text.
//
// Usage:
//
//	guestasm [-base 0x400000] [-o prog.gbin] prog.gasm
//	guestasm -d [-base 0x400000] prog.gbin
package main

import (
	"flag"
	"fmt"
	"os"

	"mdabt/internal/guest"
	"mdabt/internal/guestasm"
)

func main() {
	disasm := flag.Bool("d", false, "disassemble a binary image instead of assembling")
	base := flag.Uint("base", guest.CodeBase, "image load address")
	out := flag.String("o", "", "output file (default: stdout for -d, input with .gbin suffix otherwise)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: guestasm [-d] [-base addr] [-o out] file")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}

	if *disasm {
		text, err := guestasm.DisasmImage(data, uint32(*base))
		if err != nil {
			fail("%v", err)
		}
		if *out == "" {
			fmt.Print(text)
			return
		}
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fail("%v", err)
		}
		return
	}

	img, err := guestasm.Assemble(string(data), uint32(*base))
	if err != nil {
		fail("%v", err)
	}
	dest := *out
	if dest == "" {
		dest = flag.Arg(0) + ".gbin"
	}
	if err := os.WriteFile(dest, img, 0o644); err != nil {
		fail("%v", err)
	}
	fmt.Printf("%s: %d bytes at %#x\n", dest, len(img), *base)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "guestasm: "+format+"\n", args...)
	os.Exit(1)
}
