// Command mdaeval regenerates the paper's tables and figures on the
// simulated Alpha host.
//
// Usage:
//
//	mdaeval [-exp table1,fig16] [-quick] [-par N] [-budget N]
//
// With no -exp flag every experiment runs in paper order. -quick shrinks
// the workloads (~10x) for a fast sanity pass; the full run regenerates the
// scaled experiments exactly as reported in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mdabt/internal/experiments"
	"mdabt/internal/perfbench"
	"mdabt/internal/profiling"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs (table1, fig1, fig10..fig16, table3, table4, speh, aot, faults, ...) or 'all'")
	quick := flag.Bool("quick", false, "shrink workloads ~10x for a fast pass")
	par := flag.Int("par", 0, "max concurrent benchmark runs (0 = NumCPU)")
	budget := flag.Uint64("budget", 0, "per-run host-instruction budget (0 = default)")
	csvDir := flag.String("csv", "", "also write each result as CSV into this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	benchJSON := flag.String("benchjson", "", "run the perfbench suite and write its JSON summary here, then exit")
	traceBench := flag.String("tracebench", "", "measure the dispatch-loop speedup from the trace tier and write the JSON summary here, then exit")
	sitehist := flag.Bool("sitehist", false, "shorthand for -exp sitehist (per-benchmark alignment verdict histogram)")
	flag.Parse()
	if *sitehist {
		*exp = "sitehist"
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdaeval: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "mdaeval: %v\n", err)
		}
	}()

	if *traceBench != "" {
		sum, err := perfbench.CollectTraceComparison("")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdaeval: %v\n", err)
			os.Exit(1)
		}
		if err := sum.WriteFile(*traceBench); err != nil {
			fmt.Fprintf(os.Stderr, "mdaeval: %v\n", err)
			os.Exit(1)
		}
		for _, w := range sum.WallClocks {
			fmt.Printf("%s: before=%.1fus after=%.1fus speedup=%.2fx\n",
				w.Name, w.BeforeSec*1e6, w.AfterSec*1e6, w.Speedup)
		}
		return
	}

	if *benchJSON != "" {
		sum, err := perfbench.Collect("")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdaeval: %v\n", err)
			os.Exit(1)
		}
		if err := sum.WriteFile(*benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "mdaeval: %v\n", err)
			os.Exit(1)
		}
		for _, r := range sum.Results {
			fmt.Printf("%-18s %12.1f ns/op  %6d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
			if r.GuestMIPS > 0 {
				fmt.Printf("  %8.1f guest-MIPS", r.GuestMIPS)
			}
			fmt.Println()
		}
		return
	}

	s := experiments.NewSession()
	s.Parallelism = *par
	if *quick {
		s.Shrink = 10
		s.IterFloor = 1500
	}
	if *budget > 0 {
		s.Budget = *budget
	}

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		run, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "mdaeval: unknown experiment %q (have %s)\n",
				id, strings.Join(allIDs(), ", "))
			os.Exit(2)
		}
		start := time.Now()
		r, err := run(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdaeval: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(r.Render())
		fmt.Printf("(%s took %.1fs)\n\n", id, time.Since(start).Seconds())
		if *csvDir != "" {
			path := fmt.Sprintf("%s/%s.csv", *csvDir, id)
			if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "mdaeval: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func allIDs() []string {
	var ids []string
	for _, e := range experiments.Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}
