package core

import (
	"fmt"

	"mdabt/internal/align"
	"mdabt/internal/host"
)

// This file wires the static alignment analysis and the translation
// verifier (internal/align) into the engine. The analysis side runs once
// per program at Run entry and feeds verdicts into sitePolicies and
// memAccessSub; the verifier side lints every live translation from
// CheckInvariants, Engine.Lint, and `dbtrun -lint`.

// buildAlignDB runs the whole-program alignment analysis from entry,
// through the engine's decode cache, and charges its modeled cost. It goes
// through the watching decode wrapper: every page the analysis touches can
// later be translated from its cached entry, so it must be armed for
// self-modifying stores like any other decoded code page.
func (e *Engine) buildAlignDB(entry uint32) {
	e.alignDB = align.Analyze(e.alignDecoder(), entry)
	e.alignEntry = entry
	e.stats.StaticAnalyzedInsts = uint64(e.alignDB.Insts())
	if !e.Opt.AOT {
		// Under the AOT tier the analysis is part of the offline build, like
		// the pre-translation pass itself: no simulated cycles.
		e.Mach.AddCycles(e.Opt.AnalyzeCyclesPerInst * uint64(e.alignDB.Insts()))
	}
}

// noteAlignViolation records a misalignment trap arriving at a host PC the
// translator emitted under a proven-aligned claim — a lattice soundness
// bug. Execution still recovers through the software fixup; the counter
// makes the bug visible to the soundness cosim test.
func (e *Engine) noteAlignViolation(pc uint64) {
	for _, b := range e.blocks {
		if pc >= b.hostEntry && pc < b.hostEntry+b.hostSize {
			if b.alignedPCs[pc] {
				e.stats.StaticAlignViolations++
				e.event(EvDegrade, b.guestPC, pc, "static-align violation: proven-aligned site trapped")
			}
			return
		}
	}
}

// checkBrkPayload validates a BRKBT service payload against the engine's
// exit and adaptive tables (the verifier's CheckBrk policy).
func (e *Engine) checkBrkPayload(pc uint64, payload uint32) error {
	switch {
	case payload == svcHalt, payload == svcIndirect:
		return nil
	case payload&svcAdaptiveFlag != 0:
		if id := payload &^ svcAdaptiveFlag; int(id) >= len(e.adaptives) {
			return fmt.Errorf("adaptive id %d out of range (%d registered)", id, len(e.adaptives))
		}
		return nil
	case payload >= svcExitBase:
		idx := payload - svcExitBase
		if int(idx) >= len(e.exits) {
			return fmt.Errorf("exit id %d out of range (%d registered)", idx, len(e.exits))
		}
		if ex := e.exits[idx]; ex.hostPC != pc {
			return fmt.Errorf("exit %d is registered at %#x", idx, ex.hostPC)
		}
		return nil
	}
	return fmt.Errorf("unassigned service payload")
}

// verifyBlock lints one live translation: it reads the block's words back
// out of simulated memory and hands them to align.Verify together with the
// engine-side metadata (trap sites, alignment claims, patches) and the
// link policies for out-of-block branches and BRKBT payloads.
func (e *Engine) verifyBlock(b *block) []align.Finding {
	words := make([]uint32, b.hostSize/host.InstBytes)
	for i := range words {
		words[i] = e.Mem.Read32(b.hostEntry + uint64(i)*host.InstBytes)
	}
	trap := make(map[uint64]bool)
	patched := make(map[uint64]bool)
	for _, s := range b.sites {
		for _, hpc := range s.hostPCs {
			trap[hpc] = true
		}
		for hpc := range s.patched {
			patched[hpc] = true
		}
	}
	exits := make(map[uint64]*exit, len(b.exits))
	for _, ex := range b.exits {
		exits[ex.hostPC] = ex
	}
	bounds := make([]uint64, len(b.bounds))
	for i, bd := range b.bounds {
		bounds[i] = bd.hostPC
	}
	return align.Verify(align.HostBlock{
		Entry:     b.hostEntry,
		Words:     words,
		TrapSites: trap,
		Proven:    b.alignedPCs,
		Guarded:   b.guardedPCs,
		Patched:   patched,
		Bounds:    bounds,
		CheckBranch: func(pc, target uint64) error {
			if ex, ok := exits[pc]; ok {
				// A chained exit must branch to its target's current entry.
				if !ex.linked {
					return fmt.Errorf("exit %d is unlinked but holds an out-of-block branch", ex.id)
				}
				tb := e.blocks[ex.targetGuest]
				if tb == nil {
					return fmt.Errorf("exit %d is linked to untranslated guest %#x", ex.id, ex.targetGuest)
				}
				if target != tb.hostEntry {
					return fmt.Errorf("exit %d branches to %#x, want block entry %#x", ex.id, target, tb.hostEntry)
				}
				return nil
			}
			if patched[pc] {
				// A patched trap site must branch into the MDA stub zone.
				lo, hi := e.cc.stubNext, e.cc.base+e.cc.size
				if target < lo || target >= hi {
					return fmt.Errorf("patched site branches to %#x, outside the stub zone [%#x,%#x)", target, lo, hi)
				}
				return nil
			}
			return fmt.Errorf("no exit or patch record for this branch")
		},
		CheckBrk: e.checkBrkPayload,
	})
}

// Lint runs the static translation verifier over every live translation,
// returning one line per finding (`dbtrun -lint`; the experiment sessions
// call it after every run). Under Options.AOT it also reports the
// pre-translation pass's image-coverage findings — recovered blocks or
// indirect targets the pass failed to account for — so AOT output faces
// the same CI gate as JIT output.
func (e *Engine) Lint() []string {
	var out []string
	for _, pc := range e.TranslatedPCs() {
		for _, f := range e.verifyBlock(e.blocks[pc]) {
			out = append(out, fmt.Sprintf("block %#x: %s", pc, f))
		}
	}
	for _, f := range e.aotCoverage {
		out = append(out, fmt.Sprintf("aot coverage: %s", f))
	}
	if e.aotPreseedSkips > 0 {
		// A stale or foreign adopted schedule (e.g. a store artifact that
		// validated but was built for another build of the program) is a
		// degraded warm start, not an error: the skipped entries fall back
		// to dynamic discovery. Surface it so operators see the cold spots.
		out = append(out, fmt.Sprintf(
			"aot preseed: %d schedule entries left to dynamic discovery (adopted image does not match the loaded program)",
			e.aotPreseedSkips))
	}
	return out
}
