package core

import (
	"mdabt/internal/guest"
	"mdabt/internal/mem"
)

// decEntry caches one decoded guest instruction together with its alignment
// profile. Fusing the profile pointer into the decode entry removes the
// separate per-memory-op profile map lookup from the interpreter's inner
// loop: the entry is already in hand when the profile is updated.
type decEntry struct {
	inst guest.Inst
	len  int          // 0 = not decoded yet
	prof *siteProfile // lazily created on first profiled execution
}

// profile returns the entry's alignment profile, creating it on first use.
func (de *decEntry) profile() *siteProfile {
	if de.prof == nil {
		de.prof = &siteProfile{}
	}
	return de.prof
}

// Guest code is loaded contiguously at guest.CodeBase, so the decode cache
// is PC-indexed: a dense window of decDenseLimit bytes starting at the code
// base, grown on demand, with a map fallback for the rare instruction
// outside it (tests placing code elsewhere). One entry per byte address —
// the guest ISA is variable-length, so any byte can start an instruction.
const (
	decDenseBase  = uint32(guest.CodeBase)
	decDenseLimit = uint32(4 << 20)
)

// decodeCache is a PC-indexed cache of decoded guest instructions. The zero
// value is ready to use. Entries stay valid until a guest store overlaps
// their encoded bytes (self-modifying code): the owner routes such stores
// through invalidateWrite, which drops every decode the write could have
// changed. Per-site profiles can also be reset individually (retranslation
// restarts profiling).
type decodeCache struct {
	dense []decEntry // indexed by pc - decDenseBase
	far   map[uint32]*decEntry
}

// entry returns the cache slot for pc, allocating backing storage as needed.
func (c *decodeCache) entry(pc uint32) *decEntry {
	if off := pc - decDenseBase; off < decDenseLimit {
		if off >= uint32(len(c.dense)) {
			newLen := uint32(2 * len(c.dense))
			if newLen < off+64 {
				newLen = off + 64
			}
			if newLen > decDenseLimit {
				newLen = decDenseLimit
			}
			nd := make([]decEntry, newLen)
			copy(nd, c.dense)
			c.dense = nd
		}
		return &c.dense[off]
	}
	if c.far == nil {
		c.far = make(map[uint32]*decEntry)
	}
	de := c.far[pc]
	if de == nil {
		de = new(decEntry)
		c.far[pc] = de
	}
	return de
}

// peek returns the slot for pc without allocating, or nil if none exists.
func (c *decodeCache) peek(pc uint32) *decEntry {
	if off := pc - decDenseBase; off < decDenseLimit {
		if off < uint32(len(c.dense)) {
			return &c.dense[off]
		}
		return nil
	}
	return c.far[pc]
}

// decoded returns the decoded instruction entry for pc, decoding from m on a
// cache miss. fresh reports a miss that actually decoded (the caller may
// want to watch the underlying code pages for self-modification).
func (c *decodeCache) decoded(pc uint32, m *mem.Memory) (de *decEntry, fresh bool, err error) {
	de = c.entry(pc)
	if de.len == 0 {
		var buf [guest.MaxInstLen]byte
		m.ReadBytes(uint64(pc), buf[:])
		inst, n, derr := guest.Decode(buf[:])
		if derr != nil {
			return nil, false, derr
		}
		de.inst, de.len = inst, n
		fresh = true
	}
	return de, fresh, nil
}

// invalidateWrite drops every cached decode a guest store to [addr,
// addr+size) could have changed: any entry whose encoded bytes overlap the
// write, i.e. entries starting as far back as MaxInstLen-1 bytes before it.
// Profiles go with the decode — the site is a different instruction now.
// It returns the number of entries dropped.
func (c *decodeCache) invalidateWrite(addr uint64, size int) int {
	n := 0
	lo := addr - (guest.MaxInstLen - 1)
	if addr < guest.MaxInstLen-1 {
		lo = 0
	}
	for a := lo; a < addr+uint64(size) && a <= 0xFFFF_FFFF; a++ {
		if de := c.peek(uint32(a)); de != nil && de.len != 0 {
			de.len = 0
			de.prof = nil
			n++
		}
	}
	return n
}

// mayContain reports whether any cached decode could overlap a write to
// [addr, addr+size) — a cheap bounds test that keeps invalidateWrite off
// the path of ordinary data stores.
func (c *decodeCache) mayContain(addr uint64, size int) bool {
	if len(c.far) > 0 {
		return true
	}
	lo := uint64(decDenseBase)
	hi := lo + uint64(len(c.dense))
	return addr+uint64(size) > lo && addr < hi+guest.MaxInstLen
}

// profAt returns the alignment profile recorded for pc, or nil if the site
// has never been profiled.
func (c *decodeCache) profAt(pc uint32) *siteProfile {
	if de := c.peek(pc); de != nil {
		return de.prof
	}
	return nil
}

// clearProf drops pc's alignment profile (block retranslation restarts
// profiling from scratch, §IV-C).
func (c *decodeCache) clearProf(pc uint32) {
	if de := c.peek(pc); de != nil {
		de.prof = nil
	}
}

// forEachProf calls fn for every site with a recorded alignment profile.
func (c *decodeCache) forEachProf(fn func(pc uint32, p *siteProfile)) {
	for i := range c.dense {
		if p := c.dense[i].prof; p != nil {
			fn(decDenseBase+uint32(i), p)
		}
	}
	for pc, de := range c.far {
		if de.prof != nil {
			fn(pc, de.prof)
		}
	}
}
