package core

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"mdabt/internal/guest"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
	"mdabt/internal/workload"
)

// The direct-chaining trace tier's contract is simulation invisibility:
// Options.Traces may change only the wall clock, never a counter, a stat,
// a register, or a delivered fault. These tests hold every golden-matrix
// configuration to that contract, with the tier layered on top.

// tracedOpt returns opt with the trace tier armed (trace on first native
// dispatch, so even short matrix programs exercise it).
func tracedOpt(opt Options) Options {
	opt.Traces = true
	opt.TraceHeat = 1
	return opt
}

// TestTraceTierFingerprintParity re-runs the entire golden equivalence
// matrix — every program under every configuration, clean and
// fault-workload halves — with Options.Traces enabled, on ONE engine
// recycled with Engine.Reset between entries. Every fingerprint must match
// the untraced golden file bit for bit: the tier is invisible across
// mechanisms, across engine reuse, and across the precise-fault rewind
// path (the fault half of the matrix ends each run in a delivered guest
// fault that the machine hands back to the interpreter mid-trace).
func TestTraceTierFingerprintParity(t *testing.T) {
	raw, err := os.ReadFile(equivalenceGoldenPath)
	if err != nil {
		t.Fatalf("golden file missing: %v", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		k, v, ok := strings.Cut(line, "\t")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		want[k] = v
	}

	programs := []struct {
		name string
		img  []byte
	}{
		{"misloop", mdaLoopImg(t, 300)},
		{"lateonset", lateOnsetImg(t, 100, 400)},
		{"multiblock", multiBlockLoopImg(t, 800)},
		{"mixedgroup", mixedGroupImg(t, 300)},
	}
	data := patternData(256)

	m := mem.New()
	mach := machine.New(m, machine.DefaultParams())
	var e *Engine
	ran := 0
	engaged := 0
	for _, p := range programs {
		static := censusSites(t, p.img, data)
		for _, cfg := range equivalenceConfigs(static) {
			key := p.name + "|" + cfg.name
			opt := tracedOpt(cfg.opt)
			if e == nil {
				e = NewEngine(m, mach, opt)
			} else {
				e.Reset(opt)
			}
			e.LoadImage(guest.CodeBase, p.img)
			m.WriteBytes(guest.DataBase, data)
			if err := e.Run(guest.CodeBase, 500_000_000); err != nil {
				t.Fatalf("%s: traced run: %v", key, err)
			}
			w, ok := want[key]
			if !ok {
				t.Fatalf("%s: no golden entry", key)
			}
			if got := equivalenceFingerprint(e); got != w {
				t.Errorf("%s: trace tier perturbed the simulation\n got %s\nwant %s", key, got, w)
			}
			if e.TraceStats().TracedInsts > 0 {
				engaged++
			}
			ran++
		}
	}
	for _, fp := range faultEquivalencePrograms(t) {
		static := faultCensusSites(t, fp)
		for _, cfg := range equivalenceConfigs(static) {
			key := "fault:" + fp.Name + "|" + cfg.name
			e.Reset(tracedOpt(cfg.opt))
			fp.Load(m)
			rerr := e.Run(fp.Entry(), 500_000_000)
			if fp.ExpectFault != (rerr != nil) {
				t.Fatalf("%s: traced run err %v, expect-fault %v", key, rerr, fp.ExpectFault)
			}
			w, ok := want[key]
			if !ok {
				t.Fatalf("%s: no golden entry", key)
			}
			if got := equivalenceFingerprint(e); got != w {
				t.Errorf("%s: trace tier perturbed the fault path\n got %s\nwant %s", key, got, w)
			}
			ran++
		}
	}
	if ran != len(want) {
		t.Errorf("traced matrix ran %d entries, golden has %d", ran, len(want))
	}
	if engaged == 0 {
		t.Error("trace tier never engaged across the matrix (TracedInsts always 0)")
	}
}

// TestChainBoundaryCounterParity pins the stats accounting at chain
// boundaries: a chained trace-to-trace transfer must increment
// NativeBlockRuns — and every other engine counter — exactly as dispatched
// execution does, and both must land on the interpreter census's
// architectural state. The program is a multi-block loop, so the hot path
// crosses block boundaries every iteration and the traced run resolves
// them through memoized chain links rather than the dispatcher.
func TestChainBoundaryCounterParity(t *testing.T) {
	img := multiBlockLoopImg(t, 2000)
	data := patternData(256)

	// Interpreter census: the mechanism-free architectural reference.
	m := mem.New()
	m.WriteBytes(guest.CodeBase, img)
	m.WriteBytes(guest.DataBase, data)
	census, err := RunCensus(m, guest.CodeBase, 500_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !census.Halted {
		t.Fatal("census did not halt")
	}

	// Plain per-block translation (no superblock folding), so every loop
	// iteration crosses translation boundaries and the traced run must
	// resolve them through chain links.
	opt := DefaultOptions(DPEH)
	opt.HeatThreshold = 4

	baseCPU, _, baseEng := runDBT(t, img, data, opt)
	traceCPU, _, traceEng := runDBT(t, img, data, tracedOpt(opt))

	if bs, ts := baseEng.Stats(), traceEng.Stats(); bs != ts {
		t.Errorf("engine stats diverged at chain boundaries:\n dispatched %+v\n     traced %+v", bs, ts)
	}
	if bc, tc := baseEng.Mach.Counters(), traceEng.Mach.Counters(); bc != tc {
		t.Errorf("machine counters diverged:\n dispatched %+v\n     traced %+v", bc, tc)
	}
	if runs := traceEng.Stats().NativeBlockRuns; runs == 0 {
		t.Error("traced run recorded no native dispatches")
	}
	if follows := traceEng.TraceStats().ChainFollows; follows == 0 {
		t.Error("no chain follows: the parity claim was not exercised")
	}
	for r := guest.EAX; r <= guest.EDI; r++ {
		if traceCPU.R[r] != census.FinalCPU.R[r] {
			t.Errorf("reg %v: traced %#x, census %#x", r, traceCPU.R[r], census.FinalCPU.R[r])
		}
		if baseCPU.R[r] != census.FinalCPU.R[r] {
			t.Errorf("reg %v: dispatched %#x, census %#x", r, baseCPU.R[r], census.FinalCPU.R[r])
		}
	}
}

// TestValidateTraceCombos pins the actionable-error contract for unsound
// trace-related option combinations: each must fail Validate with a
// message that names the offending knobs and the way out, rather than
// failing deep inside translate.
func TestValidateTraceCombos(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Options)
		frag string // the error must mention this
	}{
		{"traceheat-without-traces", func(o *Options) { o.TraceHeat = 4 }, "Traces"},
		{"negative-traceheat", func(o *Options) { o.Traces = true; o.TraceHeat = -1 }, "negative"},
		{"superblocks-mvblock", func(o *Options) {
			o.Superblocks = true
			o.MultiVersion = true
			o.MVBlockGranularity = true
		}, "MVBlockGranularity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := DefaultOptions(DPEH)
			tc.mut(&opt)
			err := opt.Validate()
			if err == nil {
				t.Fatal("Validate accepted an unsound combination")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
			// The same error must surface from Run, not a translate panic.
			e := engineFor(t, mdaLoopImg(t, 50), opt)
			if rerr := e.Run(guest.CodeBase, 1<<20); rerr == nil {
				t.Error("Run accepted what Validate rejects")
			}
		})
	}
	// And the sound combinations stay accepted.
	for _, mut := range []func(*Options){
		func(o *Options) { o.Traces = true },
		func(o *Options) { o.Traces = true; o.TraceHeat = 16 },
		func(o *Options) { o.Traces = true; o.Superblocks = true; o.IBTC = true },
	} {
		opt := DefaultOptions(DPEH)
		mut(&opt)
		if err := opt.Validate(); err != nil {
			t.Errorf("Validate rejected a sound trace combination: %v", err)
		}
	}
	// AOT+Superblocks is now lifted (static traces): must validate.
	opt := DefaultOptions(AOT)
	opt.Superblocks = true
	if err := opt.Validate(); err != nil {
		t.Errorf("AOT+Superblocks rejected despite static-trace support: %v", err)
	}
	_ = fmt.Sprintf // keep fmt for future debugging additions
}

// TestTraceTierSelfModifying extends the SMC story to the trace tier: a
// guest that rewrites its own code mid-run must sever the chains through
// the stale trace, invalidate it, and retranslate — and the run's
// simulated outcome must be bit-identical to the untraced one.
func TestTraceTierSelfModifying(t *testing.T) {
	p, err := workload.GenerateSelfModifying()
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range []Mechanism{Direct, ExceptionHandling, DPEH} {
		opt := DefaultOptions(mech)
		opt.HeatThreshold = 3
		baseCPU, berr, baseMem, baseEng := runFaultDBT(t, p, opt)
		if berr != nil {
			t.Fatalf("%v: %v", mech, berr)
		}
		gotCPU, rerr, gotMem, e := runFaultDBT(t, p, tracedOpt(opt))
		if rerr != nil {
			t.Fatalf("%v traced: %v", mech, rerr)
		}
		compareFaultState(t, fmt.Sprintf("smc-traced/%v", mech), p, baseCPU, gotCPU, baseMem, gotMem)
		if bs, ts := baseEng.Stats(), e.Stats(); bs != ts {
			t.Errorf("%v: SMC stats diverged under traces:\n dispatched %+v\n     traced %+v", mech, bs, ts)
		}
		ts := e.TraceStats()
		if ts.Formed == 0 {
			t.Errorf("%v: no traces formed over the SMC guest", mech)
		}
		if ts.Invalidations == 0 {
			t.Errorf("%v: SMC rewrite severed no traces (Invalidations = 0)", mech)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Errorf("%v: invariants after SMC trace invalidation: %v", mech, err)
		}
	}
}
