package core

import (
	"fmt"

	"mdabt/internal/host"
)

// This file emits the two code shapes a memory operation can translate to:
// a plain (trap-prone) host memory instruction, and the Alpha "MDA code
// sequence" built from LDQ_U/STQ_U and the EXT/INS/MSK families (paper
// §III-A, Fig. 2 for loads; the classic handbook sequence for stores).
// Both the translator and the misalignment exception handler use these.

// kindInfo describes the host code shape for a memKind.
func (k memKind) size() int {
	switch k {
	case kindLD2Z, kindLD2S, kindST2:
		return 2
	case kindFLD8, kindFST8:
		return 8
	default:
		return 4
	}
}

func (k memKind) isStore() bool {
	switch k {
	case kindST2, kindST4, kindFST8:
		return true
	}
	return false
}

// plainMemOp returns the host opcode of the plain translation of k.
func plainMemOp(k memKind) host.Op {
	switch k {
	case kindLD4:
		return host.LDL
	case kindLD2Z, kindLD2S:
		return host.LDWU
	case kindST4:
		return host.STL
	case kindST2:
		return host.STW
	case kindFLD8:
		return host.LDQ
	case kindFST8:
		return host.STQ
	}
	panic(fmt.Sprintf("core: plainMemOp: bad kind %d", k))
}

// emitPlain emits the plain translation of kind: the single trap-prone
// memory instruction plus any extension fixup. It returns the address of
// the memory instruction itself (the patchable/faulting one).
func emitPlain(a *host.Asm, k memKind, data host.Reg, base host.Reg, disp int32) uint64 {
	memPC := a.PC()
	a.Mem(plainMemOp(k), data, disp, base)
	if k == kindLD2S {
		// LDWU zero-extends; sign-extend 16→64.
		a.OprLit(host.SLL, data, 48, data)
		a.OprLit(host.SRA, data, 48, data)
	}
	return memPC
}

// extOps returns the low/high extract opcodes for an access size.
func extOps(size int) (lo, hi host.Op) {
	switch size {
	case 2:
		return host.EXTWL, host.EXTWH
	case 4:
		return host.EXTLL, host.EXTLH
	case 8:
		return host.EXTQL, host.EXTQH
	}
	panic(fmt.Sprintf("core: extOps: bad size %d", size))
}

// insMskOps returns the insert/mask opcodes for an access size.
func insMskOps(size int) (insL, insH, mskL, mskH host.Op) {
	switch size {
	case 2:
		return host.INSWL, host.INSWH, host.MSKWL, host.MSKWH
	case 4:
		return host.INSLL, host.INSLH, host.MSKLL, host.MSKLH
	case 8:
		return host.INSQL, host.INSQH, host.MSKQL, host.MSKQH
	}
	panic(fmt.Sprintf("core: insMskOps: bad size %d", size))
}

// emitMDALoad emits the misalignment-safe load sequence (paper Fig. 2).
// base+disp is the effective address; disp+size-1 must fit the 16-bit
// memory displacement (the addressing helper guarantees it).
func emitMDALoad(a *host.Asm, k memKind, data host.Reg, base host.Reg, disp int32) {
	size := k.size()
	lo, hi := extOps(size)
	a.Mem(host.LDQU, tmpD, disp, base)               // low quadword
	a.Mem(host.LDQU, tmpC, disp+int32(size)-1, base) // high quadword
	a.Mem(host.LDA, tmpEA, disp, base)               // effective address
	a.Opr(lo, tmpD, tmpEA, tmpD)
	a.Opr(hi, tmpC, tmpEA, tmpC)
	a.Opr(host.BIS, tmpC, tmpD, data)
	switch k {
	case kindLD4:
		a.Opr(host.ADDL, host.Zero, data, data) // sign-extend longword
	case kindLD2S:
		a.OprLit(host.SLL, data, 48, data)
		a.OprLit(host.SRA, data, 48, data)
	}
}

// emitMDAStore emits the misalignment-safe store sequence: read-merge-write
// of the covering quadwords, high quadword stored first so the aliased
// (aligned) case resolves to the complete low merge.
func emitMDAStore(a *host.Asm, k memKind, data host.Reg, base host.Reg, disp int32) {
	size := k.size()
	insL, insH, mskL, mskH := insMskOps(size)
	hiDisp := disp + int32(size) - 1
	a.Mem(host.LDA, tmpEA, disp, base)
	a.Mem(host.LDQU, tmpC, hiDisp, base) // high quadword
	a.Mem(host.LDQU, tmpD, disp, base)   // low quadword
	a.Opr(insH, data, tmpEA, tmpA)
	a.Opr(insL, data, tmpEA, tmpB)
	a.Opr(mskH, tmpC, tmpEA, tmpC)
	a.Opr(mskL, tmpD, tmpEA, tmpD)
	a.Opr(host.BIS, tmpC, tmpA, tmpC)
	a.Opr(host.BIS, tmpD, tmpB, tmpD)
	a.Mem(host.STQU, tmpC, hiDisp, base)
	a.Mem(host.STQU, tmpD, disp, base)
}

// emitMDA dispatches to the load or store sequence.
func emitMDA(a *host.Asm, k memKind, data host.Reg, base host.Reg, disp int32) {
	if k.isStore() {
		emitMDAStore(a, k, data, base, disp)
	} else {
		emitMDALoad(a, k, data, base, disp)
	}
}

// mdaSeqLen returns the instruction count of the MDA sequence for kind
// (used for stub sizing and cost accounting).
func mdaSeqLen(k memKind) int {
	if k.isStore() {
		return 11
	}
	switch k {
	case kindLD4, kindLD2S:
		return 8 // 6 + sign extension (LD4: 7, LD2S: 8; use the max)
	default:
		return 6
	}
}
