package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"mdabt/internal/align"
	"mdabt/internal/faultinject"
	"mdabt/internal/guest"
	"mdabt/internal/host"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
	"mdabt/internal/policy"
)

// ErrBudget is returned by Run when the host-instruction budget is
// exhausted before the guest program halts.
var ErrBudget = errors.New("core: execution budget exhausted")

// ErrBlockTooLarge reports a translation unit that does not fit the code
// cache even when empty. Run does not fail on it: the block is routed to
// the interpreter-fallback blacklist (degradation ladder, DESIGN.md §7).
var ErrBlockTooLarge = errors.New("core: block exceeds code cache capacity")

// errInjectedTranslate marks a fault-injected translation failure; like
// ErrBlockTooLarge it degrades to the interpreter blacklist when it
// persists through the retry.
var errInjectedTranslate = errors.New("core: injected translation fault")

// siteRef resolves a faulting host PC back to its block and memory site.
type siteRef struct {
	b    *block
	site *memSite
}

// Engine is the dynamic binary translator (DigitalBridge-like, paper Fig.
// 9): interpreter + translator + code cache + dynamic monitor + BT
// misalignment exception handler, configured with one MDA handling
// mechanism.
type Engine struct {
	Mem  *mem.Memory
	Mach *machine.Machine
	Opt  Options
	CPU  guest.CPU

	// mech is the strategy object driving every mechanism decision (base
	// mechanism + option decorators, built once from Opt); the engine only
	// runs the hook protocol (see internal/policy). profiled caches
	// mech.WantsInterpProfiling for the dispatch hot path.
	mech     policy.Mechanism
	profiled bool
	// optErr latches an Options validation or mechanism lookup failure;
	// Run reports it immediately (NewEngine keeps its error-free
	// signature).
	optErr error

	cc       *codeCache
	blocks   map[uint32]*block
	exits    []*exit
	sites    map[uint64]siteRef
	profiles map[uint32]*blockProfile
	// dec is the PC-indexed decode cache; its entries also carry the
	// per-instruction alignment profiles (formerly separate maps).
	dec decodeCache
	// blockLUT is a direct-mapped, PC-indexed front for the blocks map on
	// the dispatch path. Entries are filled on lookup and evicted when the
	// block they name is invalidated (or wholesale on flush); CheckInvariants
	// cross-checks every entry against the authoritative map.
	blockLUT [blockLUTSize]blockLUTEntry
	// retainedMDA records, per block start PC, the instruction indices the
	// exception handler has seen trap; it survives block invalidation and
	// cache flushes so retranslations inline the discovered sequences.
	retainedMDA map[uint32]map[int]bool
	// trapSites counts delivered misalignment traps per guest instruction
	// address (registered sites only). Together with the decode cache's
	// interpreter profiles it forms SiteHistory, the per-session trap
	// record the persistent store aggregates across sessions.
	trapSites map[uint32]uint64
	// aotPreseedSkips counts schedule entries the preseed pass had to
	// leave to dynamic discovery (adopted image not matching the loaded
	// program); surfaced through Lint as a degraded-adoption finding.
	aotPreseedSkips int
	// reverted records sites the adaptive monitor (§IV-D) has demoted back
	// to plain operations, per block start PC.
	reverted map[uint32]map[int]bool
	// blacklist holds guest PCs whose blocks failed translation even after
	// the flush ladder; the dispatcher executes them with the interpreter
	// forever instead of failing the run.
	blacklist map[uint32]bool
	// softEmu holds guest instruction addresses demoted by the trap-storm
	// limiter: the exception handler fixes their traps up in software
	// without further patch attempts.
	softEmu map[uint32]bool
	// invariantErr latches the first self-check violation (Opt.SelfCheck);
	// Run aborts with it at the next dispatch.
	invariantErr error
	// adaptives indexes adaptive-site BRKBT payloads.
	adaptives   []adaptiveRef
	counterNext uint64
	// alignDB holds the whole-program static alignment analysis
	// (Options.StaticAlign), built at Run entry and consulted by
	// sitePolicies/memAccessSub for verdict overrides.
	alignDB    *align.Analysis
	alignEntry uint32
	// AOT pre-translation state (Options.AOT; core/aot.go). aotPass marks
	// translations performed by the offline pass (they charge no simulated
	// cycles and count as Stats.AOTBlocks); aotDone/aotEntry memoize the
	// pass per entry point; aotCoverage stashes the image-coverage lint
	// findings for Engine.Lint.
	aotPass     bool
	aotDone     bool
	aotEntry    uint32
	aotCoverage []align.Finding
	// blockSpans and stubRanges attribute trapped host PCs back to guest
	// instructions for precise fault delivery (fault.go). Both are
	// append-only within a cache generation and cleared only on flush:
	// invalidated blocks keep their spans because stale code can still
	// execute (and trap) until the next dispatch boundary.
	blockSpans []blockSpan
	stubRanges []stubRange
	// pendingFault carries a detected guest fault from the in-machine trap
	// handlers to the dispatcher's deliverFault.
	pendingFault *pendingFault
	// codePages tracks the guest code pages the engine has armed store
	// watches on (self-modification detection).
	codePages map[uint64]bool
	// ibtc mirrors the in-memory indirect-branch cache so invalidation can
	// evict entries pointing into discarded translations.
	ibtc [ibtcEntries]ibtcEntry

	stats       Stats
	events      *eventLog
	hostCurrent bool // guest state lives in host registers (vs e.CPU)
	halted      bool
	// curTarget is the guest PC the dispatcher is currently working on; a
	// panic recovered at the RunContext boundary stamps it into the
	// Internal error as block context.
	curTarget uint32
}

// ibtcEntry is the engine-side mirror of one IBTC slot.
type ibtcEntry struct {
	guest uint32
	host  uint64
	valid bool
}

// NewEngine builds a translator over the shared memory and host machine.
// It registers itself as the machine's misalignment handler.
func NewEngine(m *mem.Memory, mach *machine.Machine, opt Options) *Engine {
	e := &Engine{Mem: m, Mach: mach}
	e.configure(opt)
	return e
}

// configure (re)initializes every piece of translator state for opt. The
// decode cache's dense arena and the code cache's address range are reused
// in place; everything else is rebuilt, so a configured engine is
// indistinguishable from a fresh one.
func (e *Engine) configure(opt Options) {
	opt.normalize()
	e.Opt = opt
	if e.cc == nil {
		e.cc = newCodeCache(opt.CodeCacheBytes, opt.FaultPlan)
	} else {
		e.cc.reconfigure(opt.CodeCacheBytes, opt.FaultPlan)
	}
	e.blocks = make(map[uint32]*block)
	e.exits = nil
	e.sites = make(map[uint64]siteRef)
	e.profiles = make(map[uint32]*blockProfile)
	clear(e.dec.dense) // keep the arena; every entry back to undecoded
	clear(e.dec.far)
	e.lutClear()
	e.retainedMDA = make(map[uint32]map[int]bool)
	e.trapSites = make(map[uint32]uint64)
	e.aotPreseedSkips = 0
	e.reverted = make(map[uint32]map[int]bool)
	e.blacklist = make(map[uint32]bool)
	e.softEmu = make(map[uint32]bool)
	e.invariantErr = nil
	e.adaptives = nil
	e.counterNext = counterBase
	e.alignDB, e.alignEntry = nil, 0
	e.aotPass, e.aotDone, e.aotEntry, e.aotCoverage = false, false, 0, nil
	e.blockSpans = nil
	e.stubRanges = nil
	e.pendingFault = nil
	e.codePages = make(map[uint64]bool)
	e.ibtc = [ibtcEntries]ibtcEntry{}
	e.stats = Stats{}
	e.CPU = guest.CPU{}
	e.hostCurrent = false
	e.halted = false
	e.curTarget = 0
	e.mech, e.profiled, e.optErr = nil, false, nil
	if err := opt.Validate(); err != nil {
		e.optErr = err
	} else if e.mech, err = opt.buildMechanism(); err != nil {
		e.optErr = err
	} else {
		e.profiled = e.mech.WantsInterpProfiling()
	}
	e.Mach.SetMisalignHandler(e.handleMisalign)
	e.Mach.SetAccessFaultHandler(e.handleAccessFault)
	// The trace tier is machine state, so (re)configuration — including
	// Engine.Reset reuse — re-arms or drops it to match the options.
	e.Mach.EnableTraces(opt.Traces)
	e.writeFaultPad()
	e.Mach.SetFaultPlan(nil)
	if opt.FaultPlan != nil {
		// Trap-delivery faults (spurious/duplicate traps) fire inside the
		// machine; every fired point also lands in the engine's event log.
		e.Mach.SetFaultPlan(opt.FaultPlan)
		opt.FaultPlan.Observe(func(pt faultinject.Point) {
			e.event(EvFault, 0, 0, string(pt))
		})
	}
}

// Reset returns the engine — and its machine and memory — to a
// just-constructed state under opt, so one System can execute program after
// program with fresh statistics and a cold simulated machine. It is the
// cheap-reuse primitive of the serving layer (internal/serve): the memory's
// page arena, the machine's decode-cache window, the guest decode cache,
// and the code-cache address range are all retained, only their contents
// cleared. A reset engine produces bit-identical results and statistics to
// a freshly built one.
func (e *Engine) Reset(opt Options) {
	e.Mem.Reset()
	e.Mach.Reset()
	if e.events != nil {
		e.events = &eventLog{buf: make([]Event, 0, eventLogCap)}
	}
	e.configure(opt)
}

// Stats returns the BT-level statistics. InjectedFaults reflects the fault
// plan's total at the time of the call (all points, engine and machine).
func (e *Engine) Stats() Stats {
	s := e.stats
	s.InjectedFaults = e.Opt.FaultPlan.Total()
	return s
}

// Blocks returns the number of live translations.
func (e *Engine) Blocks() int { return len(e.blocks) }

// TraceStats returns the host-side trace-tier telemetry (traces formed,
// chain follows, invalidations, traced host instructions). All zero when
// Options.Traces is off. Deliberately not part of Stats: the tier is
// simulation-invisible and its counters must never enter the simulated
// fingerprint.
func (e *Engine) TraceStats() machine.TraceStats { return e.Mach.TraceStats() }

// TraceInfos returns every live machine trace (dump annotations and the
// translation lint), ordered by start address.
func (e *Engine) TraceInfos() []machine.TraceInfo { return e.Mach.TraceInfos() }

// Block lookup table geometry: 4096 direct-mapped entries indexed by the
// low bits of the guest PC.
const (
	blockLUTBits = 12
	blockLUTSize = 1 << blockLUTBits
	blockLUTMask = blockLUTSize - 1
)

// blockLUTEntry caches one blocks-map binding: guest PC → live block.
type blockLUTEntry struct {
	pc uint32
	b  *block
}

// lookupBlock resolves pc to its live translation, consulting the
// direct-mapped LUT before the map and filling the LUT on a map hit.
func (e *Engine) lookupBlock(pc uint32) *block {
	ent := &e.blockLUT[pc&blockLUTMask]
	if ent.b != nil && ent.pc == pc {
		return ent.b
	}
	b := e.blocks[pc]
	if b != nil {
		ent.pc, ent.b = pc, b
	}
	return b
}

// lutEvict drops b's LUT entry if present (block invalidation).
func (e *Engine) lutEvict(b *block) {
	ent := &e.blockLUT[b.guestPC&blockLUTMask]
	if ent.b == b {
		ent.b = nil
	}
}

// lutClear empties the whole LUT (code cache flush).
func (e *Engine) lutClear() {
	for i := range e.blockLUT {
		e.blockLUT[i] = blockLUTEntry{}
	}
}

// CodeCacheUsed returns bytes allocated in the code cache.
func (e *Engine) CodeCacheUsed() uint64 { return e.cc.used() }

// LoadImage copies a guest binary image into memory at base.
func (e *Engine) LoadImage(base uint32, image []byte) {
	e.Mem.WriteBytes(uint64(base), image)
}

// adaptiveRef resolves an adaptive BRKBT payload to its site.
type adaptiveRef struct {
	b       *block
	instIdx int
	counter uint64
}

// newAdaptive registers an adaptive site and returns its BRKBT payload id.
func (e *Engine) newAdaptive(b *block, instIdx int, counter uint64) uint32 {
	id := uint32(len(e.adaptives))
	e.adaptives = append(e.adaptives, adaptiveRef{b: b, instIdx: instIdx, counter: counter})
	return id
}

// allocCounter reserves a 4-byte adaptive streak counter.
func (e *Engine) allocCounter() uint64 {
	addr := e.counterNext
	e.counterNext += 4
	return addr
}

// ibtcFill installs an IBTC entry for a resolved indirect target.
func (e *Engine) ibtcFill(guestPC uint32, hostEntry uint64) {
	idx := (guestPC >> ibtcShift) & (ibtcEntries - 1)
	addr := uint64(ibtcBase) + uint64(idx)*16
	e.Mem.Write64(addr, uint64(guestPC))
	e.Mem.Write64(addr+8, hostEntry)
	e.ibtc[idx] = ibtcEntry{guestPC, hostEntry, true}
	e.event(EvIBTCFill, guestPC, hostEntry, "")
	e.stats.IBTCFills++
	e.Mach.AddCycles(20) // table update in the monitor
}

// ibtcEvict clears entries whose host target lies in [lo, hi) — called when
// a translation is invalidated.
func (e *Engine) ibtcEvict(lo, hi uint64) {
	for i := range e.ibtc {
		if e.ibtc[i].valid && e.ibtc[i].host >= lo && e.ibtc[i].host < hi {
			addr := uint64(ibtcBase) + uint64(i)*16
			e.Mem.Write64(addr, 0)
			e.Mem.Write64(addr+8, 0)
			e.ibtc[i].valid = false
		}
	}
}

// ibtcClear empties the whole table (code cache flush).
func (e *Engine) ibtcClear() {
	for i := range e.ibtc {
		if e.ibtc[i].valid {
			addr := uint64(ibtcBase) + uint64(i)*16
			e.Mem.Write64(addr, 0)
			e.Mem.Write64(addr+8, 0)
			e.ibtc[i].valid = false
		}
	}
}

// handleAdaptiveRevert services an adaptive site's BRKBT: the site has been
// aligned for a full streak, so the block is retranslated with it reverted
// to a plain memory operation (§IV-D).
func (e *Engine) handleAdaptiveRevert(id uint32) error {
	if int(id) >= len(e.adaptives) {
		return fmt.Errorf("core: bad adaptive payload %d", id)
	}
	ref := e.adaptives[id]
	set := e.reverted[ref.b.guestPC]
	if set == nil {
		set = make(map[int]bool)
		e.reverted[ref.b.guestPC] = set
	}
	set[ref.instIdx] = true
	e.event(EvRevert, ref.b.guestPC, 0, fmt.Sprintf("site #%d", ref.instIdx))
	// Reverting wins over the trap-discovered record, else the next
	// translation would immediately re-inline the sequence. The streak
	// counter resets so the stale code cannot refire before its block
	// exits.
	delete(e.retained(ref.b.guestPC), ref.instIdx)
	e.Mem.Write32(ref.counter, 0)
	if !ref.b.invalid {
		e.invalidateBlock(ref.b)
	}
	e.stats.AdaptiveReverts++
	return nil
}

// newExit registers a new patchable exit stub.
func (e *Engine) newExit(from *block, target uint32, hostPC uint64) *exit {
	ex := &exit{id: uint32(len(e.exits)), from: from, targetGuest: target, hostPC: hostPC}
	e.exits = append(e.exits, ex)
	from.exits = append(from.exits, ex)
	return ex
}

// syncToHost copies the guest architectural state into the host register
// file (GPRs sign-extended, per the translation invariant).
func (e *Engine) syncToHost() {
	if e.hostCurrent {
		return
	}
	for r := guest.Reg(0); r < guest.NumRegs; r++ {
		e.Mach.SetReg(hostGPR(r), uint64(int64(int32(e.CPU.R[r]))))
	}
	for f := guest.FReg(0); f < guest.NumFRegs; f++ {
		e.Mach.SetReg(hostFR(f), e.CPU.F[f])
	}
	e.hostCurrent = true
}

// syncToCPU copies the host register file back into the guest state.
func (e *Engine) syncToCPU() {
	if !e.hostCurrent {
		return
	}
	for r := guest.Reg(0); r < guest.NumRegs; r++ {
		e.CPU.R[r] = uint32(e.Mach.Reg(hostGPR(r)))
	}
	for f := guest.FReg(0); f < guest.NumFRegs; f++ {
		e.CPU.F[f] = e.Mach.Reg(hostFR(f))
	}
	e.hostCurrent = false
}

// FinalCPU returns the guest architectural state (for co-simulation
// checks). Valid after Run returns.
func (e *Engine) FinalCPU() guest.CPU {
	e.syncToCPU()
	return e.CPU
}

// retained returns the persistent trap-discovered MDA set for a block.
func (e *Engine) retained(pc uint32) map[int]bool {
	m := e.retainedMDA[pc]
	if m == nil {
		m = make(map[int]bool)
		e.retainedMDA[pc] = m
	}
	return m
}

// invalidateBlock removes b's translation: unmaps it, unlinks every direct
// branch into it, and marks it so in-flight execution of the stale code is
// handled conservatively by the exception handler.
func (e *Engine) invalidateBlock(b *block) {
	e.event(EvInvalidate, b.guestPC, b.hostEntry, "")
	b.invalid = true
	delete(e.blocks, b.guestPC)
	e.lutEvict(b)
	if e.Opt.IBTC {
		e.ibtcEvict(b.hostEntry, b.hostEntry+b.hostSize)
	}
	for _, ex := range b.incoming {
		if ex.linked {
			e.Mach.Patch(ex.hostPC, host.MustEncode(host.Inst{
				Op: host.BRKBT, Payload: svcExitBase + ex.id,
			}))
			ex.linked = false
		}
	}
	b.incoming = nil
}

// flushAll empties the code cache (Dynamo-style full flush) when an
// allocation fails or a forced flush is injected. Both zones are reclaimed
// — block bodies and the exception handler's MDA stubs. Heating profiles,
// trap-discovered MDA sites, the interpreter blacklist, and soft-emulation
// demotions survive.
//
// Flushing clears the exit table, so it is only safe at a dispatch
// boundary (never from inside the trap handler, where stale code holding
// live BRKBT exit payloads is still executing).
func (e *Engine) flushAll() {
	for _, b := range e.blocks {
		b.invalid = true
	}
	e.blocks = make(map[uint32]*block)
	e.lutClear()
	e.exits = nil
	e.sites = make(map[uint64]siteRef)
	// A flush is only reached at a dispatch boundary, so no stale code (and
	// no stale trap) can outlive it: the attribution tables reset with the
	// allocator whose addresses they describe.
	e.blockSpans = nil
	e.stubRanges = nil
	e.cc.reset()
	e.Mach.IMB()
	if e.Opt.IBTC {
		e.ibtcClear()
	}
	e.event(EvFlush, 0, 0, "")
	e.stats.Flushes++
	e.selfCheck("flush")
}

// ensureTranslated translates pc, walking the recovery ladder: a full
// cache flushes and retries once; a block that still does not fit reports
// ErrBlockTooLarge (the caller blacklists it to the interpreter); an
// injected transient fault gets one retry before degrading the same way.
func (e *Engine) ensureTranslated(pc uint32) (*block, error) {
	b, err := e.translate(pc)
	switch err {
	case errCodeCacheFull:
		e.flushAll()
		b, err = e.translate(pc)
		if err == errCodeCacheFull {
			err = fmt.Errorf("%w: block %#x", ErrBlockTooLarge, pc)
		}
	case errInjectedTranslate:
		b, err = e.translate(pc)
		if err == errCodeCacheFull {
			e.flushAll()
			b, err = e.translate(pc)
		}
	}
	return b, err
}

// blacklistBlock permanently routes pc to the interpreter: the bottom rung
// of the translation ladder (translate → flush → interpreter).
func (e *Engine) blacklistBlock(pc uint32, cause error) {
	e.blacklist[pc] = true
	e.event(EvDegrade, pc, 0, "interpreter fallback: "+cause.Error())
}

// Run executes the guest program from entry until it halts or the machine
// has retired maxHostInsts host instructions (interpreted guest
// instructions count 1:1 against the same budget). It returns ErrBudget on
// exhaustion.
func (e *Engine) Run(entry uint32, maxHostInsts uint64) error {
	return e.RunContext(context.Background(), entry, maxHostInsts)
}

// RunContext is Run with cooperative cancellation: execution proceeds in
// bounded budget slices (Options.SliceInsts host instructions at most) and
// the context is checked between slices, so a deadline or cancellation
// aborts within one slice rather than one full budget. The returned error
// satisfies errors.Is against ctx.Err() when the context caused the abort.
//
// Every failure escaping the translate/dispatch/trap paths — including
// recovered panics, which surface as Internal ClassifiedErrors carrying
// the in-flight block PC and host PC — is classified (see ErrClass), so
// callers can distinguish a bad program from a transient fault from an
// engine bug. Slicing is invisible to simulated results and statistics.
func (e *Engine) RunContext(ctx context.Context, entry uint32, maxHostInsts uint64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			// The guest register state in the host register file is not
			// trustworthy mid-panic; keep the last synced CPU snapshot.
			e.hostCurrent = false
			err = &ClassifiedError{
				Class:   Internal,
				BlockPC: e.curTarget,
				HostPC:  e.Mach.PC(),
				Err:     fmt.Errorf("recovered panic: %v\n%s", r, debug.Stack()),
			}
		}
	}()
	if e.optErr != nil {
		return WithClass(Permanent, e.optErr)
	}
	e.CPU.Reset(entry)
	e.hostCurrent = false
	e.halted = false
	if e.Opt.StaticAlign && (e.alignDB == nil || e.alignEntry != entry) {
		e.buildAlignDB(entry)
	}
	if e.Opt.AOT && (!e.aotDone || e.aotEntry != entry) {
		e.preseedAOT(entry)
	}
	slice := e.Opt.SliceInsts
	target := entry
	e.curTarget = entry
	resume := false // re-enter the machine at its current PC (adaptive
	// revert, or a budget slice that ended mid-block)
	sliceEnd := false // this re-entry resumes an interrupted slice, not a
	// fresh dispatch: NativeBlockRuns must not recount it
	for !e.halted {
		e.curTarget = target
		if cerr := ctx.Err(); cerr != nil {
			e.syncToCPU()
			return &ClassifiedError{Class: Permanent, BlockPC: target, Err: cerr}
		}
		budgetUsed := e.Mach.Counters().Insts + e.stats.InterpretedInsts
		if budgetUsed >= maxHostInsts {
			e.syncToCPU()
			return WithClass(Permanent, ErrBudget)
		}
		if !resume {
			if e.invariantErr != nil {
				e.syncToCPU()
				return WithClass(Internal, e.invariantErr)
			}
			// A dispatch boundary is the only point where flushing is safe
			// (no stale exit payloads in flight), so the injected forced
			// flush fires here and nowhere else.
			if e.Opt.FaultPlan.Should(faultinject.ForcedFlush) {
				e.flushAll()
			}
			if e.blacklist[target] {
				// Bottom rung of the ladder: the block failed translation
				// permanently, so it runs on the interpreter forever.
				e.syncToCPU()
				e.stats.InterpFallbacks++
				next, err := e.interpretBlock(target)
				if err != nil {
					// Interpretation fails only on undecodable or
					// inexecutable guest code, or on a precise guest
					// memory fault: the program (or its input) is bad.
					return e.guestError(target, err)
				}
				target = next
				continue
			}
			b := e.lookupBlock(target)
			if b == nil {
				if e.profiled {
					if p := e.profile(target); p.heat < e.Opt.HeatThreshold {
						e.syncToCPU()
						p.heat++
						next, err := e.interpretBlock(target)
						if err != nil {
							return e.guestError(target, err)
						}
						p.succ[next]++
						target = next
						continue
					}
				}
				e.mech.OnBlockHot(target)
				var err error
				b, err = e.ensureTranslated(target)
				if err != nil {
					if errors.Is(err, ErrBlockTooLarge) || errors.Is(err, errInjectedTranslate) {
						e.blacklistBlock(target, err)
						continue
					}
					// Translation failures that survive the recovery ladder
					// are bad guest code (undecodable instructions, or a
					// fetch-protection fault found while decoding).
					return e.guestError(target, err)
				}
			}
			if b.aot {
				e.stats.AOTHits++
			}
			if e.Opt.Traces {
				e.maybeTrace(b)
			}
			e.syncToHost()
			e.Mach.SetPC(b.hostEntry)
		}
		if !sliceEnd {
			e.stats.NativeBlockRuns++
		}
		resume, sliceEnd = false, false
		// Nothing on the paths from the loop top to here retires host or
		// interpreted instructions, so the budget snapshot is still exact.
		remaining := maxHostInsts - budgetUsed
		if slice > 0 && remaining > slice {
			remaining = slice
		}
		reason, payload, err := e.Mach.Run(remaining)
		if err != nil {
			// The machine failed to decode code the translator emitted —
			// an engine bug, not a property of the guest program.
			return &ClassifiedError{Class: Internal, BlockPC: target, HostPC: e.Mach.PC(), Err: err}
		}
		switch reason {
		case machine.StopHalt:
			e.halted = true
		case machine.StopLimit:
			// Either the slice or the whole budget ran out mid-block; the
			// loop top tells them apart (and re-checks the context). Resume
			// at the machine's current PC without recounting the dispatch.
			resume, sliceEnd = true, true
		case machine.StopBrk:
			e.Mach.AddCycles(e.Opt.DispatchCycles)
			if payload == svcFault {
				// A trap handler parked the machine on the fault pad: rewind
				// to the faulting guest instruction and re-execute it under
				// the interpreter — a precise guest fault aborts the run, a
				// self-modifying store completes and invalidates stale code.
				next, ferr := e.deliverFault()
				if ferr != nil {
					return ferr
				}
				target = next
				continue
			}
			if payload == svcIndirect {
				target = uint32(e.Mach.Reg(tmpIndirect))
				if e.Opt.IBTC {
					if tb := e.lookupBlock(target); tb != nil {
						e.ibtcFill(target, tb.hostEntry)
					}
				}
				continue
			}
			if payload&svcAdaptiveFlag != 0 {
				if err := e.handleAdaptiveRevert(payload &^ svcAdaptiveFlag); err != nil {
					return err
				}
				// Resume in place: the machine's PC already points past the
				// BRKBT, into the (stale but still correct) aligned path of
				// the adaptive site.
				resume = true
				continue
			}
			idx := payload - svcExitBase
			if int(idx) >= len(e.exits) {
				return fmt.Errorf("core: run: bad exit payload %d", payload)
			}
			ex := e.exits[idx]
			target = ex.targetGuest
			e.maybeLink(ex)
		}
	}
	e.syncToCPU()
	if e.invariantErr != nil {
		return e.invariantErr
	}
	return nil
}

// maybeLink patches an exit stub into a direct branch when its target is
// translated and in branch range (translation chaining).
func (e *Engine) maybeLink(ex *exit) {
	if e.Opt.NoChain || ex.linked || ex.from.invalid {
		return
	}
	tb := e.lookupBlock(ex.targetGuest)
	if tb == nil {
		return
	}
	d, fits := host.BrDispFor(ex.hostPC, tb.hostEntry)
	if !fits {
		return
	}
	e.Mach.Patch(ex.hostPC, host.MustEncode(host.Inst{Op: host.BR, Ra: host.Zero, Disp: d}))
	ex.linked = true
	tb.incoming = append(tb.incoming, ex)
	e.event(EvLink, ex.targetGuest, ex.hostPC, "")
	e.stats.Links++
	if e.Opt.Traces {
		// The patch just severed any trace covering the exiting unit (the
		// stub sits inside its host span). Links happen once per edge, so
		// reseeding immediately — with the exit now a direct branch the new
		// trace chains straight into the target — is cheap and bounded.
		e.maybeTrace(ex.from)
	}
}

// maybeTrace seeds the machine's direct-chaining trace tier over a
// translated unit once it has absorbed Options.TraceHeat native
// dispatches. Purely a host-side accelerator: success or failure never
// changes simulated state. A failed build (an instruction form the tier
// does not pre-resolve) is latched so the dispatcher stops retrying.
func (e *Engine) maybeTrace(b *block) {
	if b.notrace || b.invalid || e.Mach.HasTrace(b.hostEntry) {
		return
	}
	b.runs++
	if b.runs < e.Opt.TraceHeat {
		return
	}
	if !e.Mach.BuildTrace(b.hostEntry, b.hostEntry+b.hostSize) {
		b.notrace = true
	}
}

// stubKind maps a faulting host memory opcode to the MDA sequence the
// exception handler must emit. Sign-extension fixups that follow the
// faulting instruction in the original code still execute, so a 2-byte
// sequence is always the zero-extending one.
func stubKind(op host.Op) (memKind, bool) {
	switch op {
	case host.LDL:
		return kindLD4, true
	case host.LDWU:
		return kindLD2Z, true
	case host.LDQ:
		return kindFLD8, true
	case host.STW:
		return kindST2, true
	case host.STL:
		return kindST4, true
	case host.STQ:
		return kindFST8, true
	}
	return 0, false
}

// handleMisalign is the BT's misalignment exception handler (paper §IV,
// Fig. 5): registered with the machine, called after the architectural trap
// cost is charged.
func (e *Engine) handleMisalign(m *machine.Machine, pc uint64, inst host.Inst, ea uint64) uint64 {
	// Guest-fault pre-check: before any path below emulates the access
	// (which would commit a store the guest is not allowed to make), test
	// the guest access range against the page protections. A violating or
	// code-watched access is rerouted to the fault pad for precise
	// delivery, exactly like an access-protection trap (fault.go).
	if e.Mem.Armed() {
		if b, idx, ok := e.resolveFaultSite(pc); ok && isGuestAccess(inst) &&
			e.faultsGuest(b, idx, inst.Op.IsStore()) {
			e.pendingFault = &pendingFault{b: b, idx: idx}
			return btFaultBase
		}
	}
	ref, known := e.sites[pc]
	// The mechanism decides the reaction; Fixup means it has no exception
	// handler and the OS-style software fixup is the permanent cost.
	act := policy.Fixup
	if known {
		e.trapSites[ref.site.guestPC]++
		act = e.mech.OnMisalignTrap(policy.TrapCtx{
			GuestPC:    ref.site.guestPC,
			BlockPC:    ref.b.guestPC,
			BlockTraps: ref.b.trapCount + 1,
		})
	}
	if !known || act == policy.Fixup || ref.b.invalid {
		// OS-style fixup: emulate the access and continue. This is the
		// every-time cost that Direct/Static/Dynamic mechanisms pay for
		// sites they failed to convert, and the conservative path for
		// stale code. Traps in stale (invalidated) code still teach the
		// translator about the site, so the pending retranslation inlines
		// it instead of rediscovering it one trap at a time.
		if known && act != policy.Fixup && ref.b.invalid {
			e.retained(ref.b.guestPC)[ref.site.instIdx] = true
		}
		if !known && e.Opt.StaticAlign {
			// Proven-aligned emissions carry no site registration, so a trap
			// at one of their PCs lands here — flag the soundness violation.
			e.noteAlignViolation(pc)
		}
		m.EmulateAccess(inst, ea)
		return pc + host.InstBytes
	}
	b, site := ref.b, ref.site
	e.event(EvTrap, site.guestPC, pc, fmt.Sprintf("ea=%#x", ea))
	b.trapCount++
	b.knownMDA[site.instIdx] = true
	e.retained(b.guestPC)[site.instIdx] = true
	m.AddTrapCycles(e.Opt.EHHandlerCycles)

	if e.softEmu[site.guestPC] {
		// Demoted by the trap-storm limiter: fix the access up in software
		// permanently, without further patch or retranslation attempts.
		m.EmulateAccess(inst, ea)
		return pc + host.InstBytes
	}

	// Retranslation policy (§IV-C, Fig. 7): too many traps in one block ⇒
	// discard the translation and restart profiling for it.
	if act == policy.Retranslate {
		m.EmulateAccess(inst, ea)
		e.invalidateBlock(b)
		e.profiles[b.guestPC] = newBlockProfile() // restart dynamic profiling
		for _, ipc := range b.instPCs {
			e.dec.clearProf(ipc) // restart the per-site profiles too
		}
		e.mech.OnRetranslate(b.guestPC)
		e.event(EvRetranslate, b.guestPC, 0, "")
		e.stats.Retranslations++
		e.selfCheck("retranslate")
		return pc + host.InstBytes
	}

	// Code rearrangement (§IV-A, Fig. 6): retranslate the block in place
	// with the MDA sequence inline, preserving locality, instead of
	// patching in a branch to a distant stub.
	if act == policy.Rearrange {
		m.EmulateAccess(inst, ea)
		e.invalidateBlock(b)
		// Repositioning reuses the block's existing IR and relocates code
		// (Fig. 6), so it is cheaper than a from-scratch translation:
		// charge the discounted per-instruction rate for this pass.
		saved := e.Opt.TranslateCyclesPerInst
		e.Opt.TranslateCyclesPerInst = e.Opt.RearrangePerInstCycles
		// Translate directly — never through ensureTranslated: flushing
		// clears the exit table, and the stale code we resume into still
		// carries live exit payloads. If the cache is full the block simply
		// stays invalid and the dispatcher retranslates it at the next
		// entry, where flushing is safe.
		_, terr := e.translate(b.guestPC)
		if terr == errInjectedTranslate {
			_, terr = e.translate(b.guestPC)
		}
		e.Opt.TranslateCyclesPerInst = saved
		if terr == nil {
			e.event(EvRearrange, b.guestPC, 0, "")
			e.stats.Rearrangements++
			m.AddTrapCycles(e.Opt.RearrangeFixedCycles)
			e.selfCheck("rearrange")
		}
		return pc + host.InstBytes
	}

	// Default exception-handling: emit an MDA sequence stub in the code
	// cache and patch the faulting instruction into a branch to it
	// (Fig. 5).
	k, ok := stubKind(inst.Op)
	if !ok {
		e.stats.UnpatchableSites++
		e.patchFailed(b, site, pc, fmt.Sprintf("unpatchable op %v", inst.Op))
		m.EmulateAccess(inst, ea)
		return pc + host.InstBytes
	}
	stubLen := uint64(mdaSeqLen(k)+1) * host.InstBytes
	addr, err := e.cc.allocStub(stubLen + 3*host.InstBytes)
	if err != nil {
		// Stub zone full: fall back to fixing up every time (and let the
		// trap-storm limiter demote the site if this keeps happening).
		e.stats.StubZoneFull++
		e.patchFailed(b, site, pc, "stub zone full")
		m.EmulateAccess(inst, ea)
		return pc + host.InstBytes
	}
	a := host.NewAsm(addr)
	emitMDA(a, k, inst.Ra, inst.Rb, inst.Disp)
	a.BrTo(host.BR, host.Zero, pc+host.InstBytes)
	words, aerr := a.Finish()
	if aerr != nil {
		e.stats.UnpatchableSites++
		e.patchFailed(b, site, pc, "assembler: "+aerr.Error())
		m.EmulateAccess(inst, ea)
		return pc + host.InstBytes
	}
	m.WriteCode(addr, words)
	d, fits := host.BrDispFor(pc, addr)
	if fits && e.Opt.FaultPlan.Should(faultinject.PatchRange) {
		fits = false // injected: pretend the stub is out of branch range
	}
	if !fits {
		e.stats.UnpatchableSites++
		e.patchFailed(b, site, pc, "stub out of branch range")
		m.EmulateAccess(inst, ea)
		return pc + host.InstBytes
	}
	m.Patch(pc, host.MustEncode(host.Inst{Op: host.BR, Ra: host.Zero, Disp: d}))
	site.patched[pc] = true
	// The stub now carries live guest accesses: register its range so a
	// protection trap inside it attributes back to the site's instruction.
	e.stubRanges = append(e.stubRanges, stubRange{
		lo: addr, hi: addr + stubLen, b: b, idx: site.instIdx,
	})
	e.event(EvPatch, site.guestPC, pc, fmt.Sprintf("stub=%#x", addr))
	e.stats.Patches++
	e.stats.MDAStubs++
	e.selfCheck("patch")
	// Resume at the faulting PC: the freshly patched branch executes and
	// the MDA sequence completes the access natively.
	return pc
}

// patchFailed records one failed attempt to convert a trapping site and,
// once the failures reach Options.PatchRetryLimit, demotes the site to
// permanent soft emulation (the trap-storm limiter). The demotion also
// invalidates the block: its retained-MDA record makes the retranslation
// inline the sequence, so the storm usually ends there and soft emulation
// only carries traps from code the translator cannot improve.
func (e *Engine) patchFailed(b *block, site *memSite, hostPC uint64, why string) {
	site.patchFails++
	e.event(EvDegrade, site.guestPC, hostPC, "patch failed: "+why)
	if site.patchFails < e.Opt.PatchRetryLimit || e.softEmu[site.guestPC] {
		return
	}
	e.softEmu[site.guestPC] = true
	e.stats.TrapStormDemotions++
	e.event(EvDegrade, site.guestPC, hostPC, "trap-storm demotion: soft emulation")
	if !b.invalid {
		e.invalidateBlock(b)
	}
}
