package core

// The crash-safe persistent store's core-level acceptance test: every
// entry of the golden equivalence matrix runs on a reused engine whose
// warm-start inputs — static trap profiles and AOT block schedules — are
// routed through a real on-disk store (save, then load-validate-adopt)
// instead of being handed over in memory. Every fingerprint must match
// the fresh-engine golden file bit for bit: persistence is invisible to
// the simulation. A rotating subset of artifacts is saved with a latent
// injected corruption (bit flip or torn write); those loads must
// quarantine and the run must fall back to its cold inputs — and still
// match the golden file, because the cold path IS the golden path.
//
// This test lives in package core (not core_test) to reuse the golden
// matrix helpers; internal/aot cannot be imported from here (it imports
// core), so the schedule artifact is a local payload carrying the part
// the engine adopts, produced by the same align.RecoverCFG call
// internal/aot wraps.

import (
	"errors"
	"os"
	"strings"
	"testing"

	"mdabt/internal/align"
	"mdabt/internal/faultinject"
	"mdabt/internal/guest"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
	"mdabt/internal/store"
)

// warmSchedule is the block-schedule payload this test persists under
// store.KindAOTImage — the subset of aot.Image the engine adopts.
type warmSchedule struct {
	Entry  uint32   `json:"entry"`
	Blocks []uint32 `json:"blocks"`
}

// memBlockSchedule recovers the CFG block schedule for a loaded memory,
// the offline front-end half of the AOT tier (what aot.BuildFromMemory
// produces, minus the image envelope).
func memBlockSchedule(m *mem.Memory, entry uint32) []uint32 {
	dec := func(pc uint32) (guest.Inst, int, error) {
		var buf [16]byte
		for i := range buf {
			buf[i] = m.Read8(uint64(pc) + uint64(i))
		}
		return guest.Decode(buf[:])
	}
	return align.RecoverCFG(dec, entry, maxBlockInsts).BlockPCs()
}

// warmStore mediates every artifact round trip of the matrix test and
// tracks how many artifacts it poisoned with latent corruption.
type warmStore struct {
	t       *testing.T
	st      *store.Store
	saves   int
	poisons int
}

// roundTrip saves payload at k — every 7th artifact with a latent
// injected corruption, alternating bit flips and torn writes — then
// loads it back into out. It reports whether the load validated cleanly;
// a poisoned artifact must come back store.ErrCorrupt (quarantined), so
// the caller keeps its cold inputs.
func (w *warmStore) roundTrip(k store.Key, payload, out any) bool {
	w.t.Helper()
	w.saves++
	poison := w.saves%7 == 3
	if poison {
		pt := faultinject.StoreBitFlip
		if w.poisons%2 == 1 {
			pt = faultinject.StoreTornWrite
		}
		w.st.SetFaultPlan(faultinject.New(int64(1000+w.saves)).At(pt, 1))
		w.poisons++
	}
	if err := w.st.Save(k, payload); err != nil {
		w.t.Fatalf("save %v: %v", k, err)
	}
	w.st.SetFaultPlan(nil)
	err := w.st.Load(k, out)
	if poison {
		if !errors.Is(err, store.ErrCorrupt) {
			w.t.Fatalf("poisoned artifact %v loaded with err %v, want ErrCorrupt", k, err)
		}
		return false
	}
	if err != nil {
		w.t.Fatalf("load %v: %v", k, err)
	}
	return true
}

// warmOptions routes cfg's warm-start inputs through the store for one
// (program, config) matrix entry and returns the options the engine
// should run with. On a clean round trip the store's copy replaces the
// in-memory input; on a corrupt one the original (cold) input stays.
func (w *warmStore) warmOptions(opt Options, program string, m *mem.Memory, entry uint32) Options {
	w.t.Helper()
	fp := opt.Fingerprint()
	if opt.StaticSites != nil {
		delta := &store.TrapProfile{Sessions: 1}
		for pc := range opt.StaticSites {
			delta.Add(pc, 1, 0)
		}
		var tp store.TrapProfile
		k := store.Key{Program: program, Fingerprint: fp, Kind: store.KindTrapProfile}
		if w.roundTrip(k, delta, &tp) {
			sites := tp.StaticSites()
			if sites == nil {
				// An empty profile round-trips to nil; keep lookup
				// semantics identical to the golden run's empty map.
				sites = make(map[uint32]bool)
			}
			opt.StaticSites = sites
		}
	}
	if opt.AOT && opt.AOTBlocks == nil {
		sched := warmSchedule{Entry: entry, Blocks: memBlockSchedule(m, entry)}
		var got warmSchedule
		k := store.Key{Program: program, Fingerprint: fp, Kind: store.KindAOTImage}
		if w.roundTrip(k, &sched, &got) {
			opt.AOTBlocks = got.Blocks
		}
	}
	return opt
}

func TestStoreWarmGoldenMatrix(t *testing.T) {
	raw, err := os.ReadFile(equivalenceGoldenPath)
	if err != nil {
		t.Fatalf("golden file missing: %v", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		k, v, ok := strings.Cut(line, "\t")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		want[k] = v
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ws := &warmStore{t: t, st: st}

	programs := []struct {
		name string
		img  []byte
	}{
		{"misloop", mdaLoopImg(t, 300)},
		{"lateonset", lateOnsetImg(t, 100, 400)},
		{"multiblock", multiBlockLoopImg(t, 800)},
		{"mixedgroup", mixedGroupImg(t, 300)},
	}
	data := patternData(256)

	m := mem.New()
	mach := machine.New(m, machine.DefaultParams())
	var e *Engine
	ran := 0
	check := func(key string, e *Engine) {
		t.Helper()
		w, ok := want[key]
		if !ok {
			t.Fatalf("%s: no golden entry", key)
		}
		if got := equivalenceFingerprint(e); got != w {
			t.Errorf("%s: warm-from-store run diverged from golden\n got %s\nwant %s", key, got, w)
		}
		ran++
	}
	for _, p := range programs {
		static := censusSites(t, p.img, data)
		program := store.HashProgram(p.img, data)
		for _, cfg := range equivalenceConfigs(static) {
			key := p.name + "|" + cfg.name
			// Stage the program once so the offline schedule recovery sees
			// the same bytes the run will.
			m.Reset()
			m.WriteBytes(guest.CodeBase, p.img)
			m.WriteBytes(guest.DataBase, data)
			opt := ws.warmOptions(cfg.opt, program, m, guest.CodeBase)
			if e == nil {
				e = NewEngine(m, mach, opt)
			} else {
				e.Reset(opt)
			}
			e.LoadImage(guest.CodeBase, p.img)
			m.WriteBytes(guest.DataBase, data)
			if err := e.Run(guest.CodeBase, 500_000_000); err != nil {
				t.Fatalf("%s: warm engine: %v", key, err)
			}
			check(key, e)
		}
	}
	for _, fp := range faultEquivalencePrograms(t) {
		static := faultCensusSites(t, fp)
		program := "fault-" + fp.Name
		for _, cfg := range equivalenceConfigs(static) {
			key := "fault:" + fp.Name + "|" + cfg.name
			m.Reset()
			fp.Load(m)
			opt := ws.warmOptions(cfg.opt, program, m, fp.Entry())
			e.Reset(opt)
			fp.Load(m)
			rerr := e.Run(fp.Entry(), 500_000_000)
			if fp.ExpectFault != (rerr != nil) {
				t.Fatalf("%s: warm engine err %v, expect-fault %v", key, rerr, fp.ExpectFault)
			}
			check(key, e)
		}
	}
	if ran != len(want) {
		t.Errorf("warm matrix ran %d entries, golden has %d", ran, len(want))
	}

	// The corruption side of the contract: some artifacts were poisoned,
	// every one of them was quarantined (never served), and the clean rest
	// were actually adopted from disk.
	ss := st.Stats()
	if ws.poisons == 0 {
		t.Fatalf("matrix poisoned no artifacts; widen the rotation")
	}
	if ss.Corrupt != uint64(ws.poisons) || ss.Quarantined != uint64(ws.poisons) {
		t.Errorf("corrupt/quarantined = %d/%d, want %d poisoned artifacts isolated",
			ss.Corrupt, ss.Quarantined, ws.poisons)
	}
	if wantHits := uint64(ws.saves - ws.poisons); ss.Hits != wantHits {
		t.Errorf("hits = %d, want %d (every clean artifact adopted once)", ss.Hits, wantHits)
	}
	if ss.Loads != ss.Hits+ss.Misses+ss.Corrupt+ss.ReadErrors {
		t.Errorf("load ledger does not reconcile: %+v", ss)
	}
}
