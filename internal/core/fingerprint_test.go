package core

import (
	"testing"

	"mdabt/internal/faultinject"
)

// TestFingerprintIdentity: the fingerprint is deterministic, equates a
// zero-value knob with its mechanism default, and ignores artifact
// payloads and harness knobs — the inputs that must NOT fragment the
// persistent store's key space.
func TestFingerprintIdentity(t *testing.T) {
	base := DefaultOptions(ExceptionHandling)
	fp := base.Fingerprint()
	if fp == "" || fp != base.Fingerprint() {
		t.Fatalf("fingerprint not deterministic: %q vs %q", fp, base.Fingerprint())
	}

	// Normalization: leaving a knob zero fingerprints like its default.
	zeroed := base
	zeroed.HeatThreshold = 0
	zeroed.CodeCacheBytes = 0
	if zeroed.Fingerprint() != fp {
		t.Errorf("zero-value knobs fingerprint differently from defaults")
	}

	// Excluded inputs: payloads and harness knobs.
	excl := base
	excl.StaticSites = map[uint32]bool{0x1000: true}
	excl.AOTBlocks = []uint32{0x1000}
	excl.FaultPlan = faultinject.New(1)
	excl.SelfCheck = true
	excl.SliceInsts = 123
	excl.Traces = true
	excl.TraceHeat = 7
	if excl.Fingerprint() != fp {
		t.Errorf("excluded inputs changed the fingerprint")
	}

	// Included inputs: anything translation-relevant must separate.
	for name, mutate := range map[string]func(*Options){
		"mechanism":   func(o *Options) { *o = DefaultOptions(DPEH) },
		"heat":        func(o *Options) { o.HeatThreshold = 999 },
		"rearrange":   func(o *Options) { o.Rearrange = true },
		"staticalign": func(o *Options) { o.StaticAlign = true },
		"aot":         func(o *Options) { o.AOT = true; o.StaticAlign = true },
		"cachesize":   func(o *Options) { o.CodeCacheBytes = 1 << 16 },
		"ehcycles":    func(o *Options) { o.EHHandlerCycles = 42 },
	} {
		o := base
		mutate(&o)
		if o.Fingerprint() == fp {
			t.Errorf("%s change did not change the fingerprint", name)
		}
	}
}

// TestSiteHistoryRecordsTrapsAndProfiles: the session history carries
// both exception-handler trap counts (EH: translate-first, no interp
// profiling) and interpreter profile counts (DPEH: heated profiling), at
// real site granularity — the raw material the store aggregates.
func TestSiteHistoryRecordsTrapsAndProfiles(t *testing.T) {
	eh := engineFor(t, mdaLoopImg(t, 1000), DefaultOptions(ExceptionHandling))
	mustRun(t, eh)
	hist := eh.SiteHistory()
	mda := 0
	for _, h := range hist {
		if h.MDA > 0 {
			mda++
		}
	}
	if mda == 0 {
		t.Fatalf("EH run recorded no MDA sites in history: %v", hist)
	}

	dp := engineFor(t, lateOnsetImg(t, 500, 1000), DefaultOptions(DPEH))
	mustRun(t, dp)
	var mdaN, alignedN uint64
	for _, h := range dp.SiteHistory() {
		mdaN += h.MDA
		alignedN += h.Aligned
	}
	if mdaN == 0 || alignedN == 0 {
		t.Fatalf("DPEH history missing profile counts: mda=%d aligned=%d", mdaN, alignedN)
	}

	// Reset clears the history with the rest of the session state.
	eh.Reset(DefaultOptions(ExceptionHandling))
	if got := eh.SiteHistory(); len(got) != 0 {
		t.Fatalf("history survived Reset: %v", got)
	}
}
