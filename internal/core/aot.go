package core

import (
	"errors"
	"fmt"

	"mdabt/internal/align"
	"mdabt/internal/guest"
)

// This file is the engine half of the ahead-of-time tier (DESIGN.md §13):
// before the first guest instruction of a run executes, every block of the
// recovered whole-binary CFG is translated into the code cache, so the
// simulated program starts against a warm cache exactly as if a serialized
// translated image had been loaded. The analysis half — CFG recovery and
// the image format — lives in internal/align and internal/aot.

// alignDecoder adapts the engine's decode cache to the analysis Decoder
// shape. Decoding through the cache matters twice over: translations later
// reuse the cached entries, and every code page the offline pass touches
// gets its self-modification write watch armed like dynamically discovered
// code, so PR 6's SMC machinery covers pre-translated blocks unchanged.
func (e *Engine) alignDecoder() align.Decoder {
	return func(pc uint32) (guest.Inst, int, error) {
		de, err := e.decoded(pc)
		if err != nil {
			return guest.Inst{}, 0, err
		}
		return de.inst, de.len, nil
	}
}

// preseedAOT runs the offline pre-translation pass for entry: recover the
// CFG (or adopt the Options.AOTBlocks image schedule) and translate every
// block in ascending address order. The pass is modeled as offline work —
// no simulated cycles are charged and the translations count in
// Stats.AOTBlocks — so a run over a self-recovered schedule is
// bit-identical to one adopting the equivalent serialized image.
//
// Failures degrade instead of aborting, mirroring the dynamic ladder: a
// block the cache cannot hold is blacklisted to the interpreter, and a
// block the engine cannot decode (possible only under a mismatched adopted
// image) is left to dynamic discovery. Every recovered block is accounted
// one way or another; VerifyCoverage findings — there should be none —
// surface through Engine.Lint alongside the per-block verifier.
func (e *Engine) preseedAOT(entry uint32) {
	schedule := e.Opt.AOTBlocks
	var cfg *align.CFG
	if schedule == nil {
		cfg = align.RecoverCFG(e.alignDecoder(), entry, maxBlockInsts)
		schedule = cfg.BlockPCs()
	}
	covered := make(map[uint32]bool, len(schedule))
	e.aotPass = true
	for _, pc := range schedule {
		covered[pc] = true
		if e.blocks[pc] != nil || e.blacklist[pc] {
			continue
		}
		e.mech.OnBlockHot(pc)
		if _, err := e.ensureTranslated(pc); err != nil {
			if errors.Is(err, ErrBlockTooLarge) || errors.Is(err, errInjectedTranslate) {
				e.blacklistBlock(pc, err)
			} else {
				// Undecodable at pc: the recovery would not have scheduled it,
				// so this is an adopted image that does not match the loaded
				// program. Leave the block to dynamic discovery (which will
				// fail it properly only if it is ever reached).
				e.aotPreseedSkips++
				e.event(EvDegrade, pc, 0, "aot: left to dynamic discovery: "+err.Error())
			}
		}
	}
	e.aotPass = false
	e.aotDone, e.aotEntry = true, entry
	e.aotCoverage = nil
	if cfg != nil {
		e.aotCoverage = cfg.VerifyCoverage(func(pc uint32) bool { return covered[pc] })
	}
	e.event(EvTranslate, entry, 0, fmt.Sprintf("aot preseed: %d blocks", e.stats.AOTBlocks))
	e.selfCheck("aot preseed")
}

// RecoverCFG runs whole-binary CFG recovery from entry over the engine's
// loaded guest image, with the dynamic translator's own block bound. This
// is the seam internal/aot builds serializable images through, and what
// the cosim soundness tests cross-check against dynamic block discovery.
func (e *Engine) RecoverCFG(entry uint32) *align.CFG {
	return align.RecoverCFG(e.alignDecoder(), entry, maxBlockInsts)
}
