package core

import (
	"fmt"
	"testing"

	"mdabt/internal/faultinject"
	"mdabt/internal/guest"
)

// chaosRates are the injection probabilities every mechanism must survive:
// none (control), rare, and frequent.
var chaosRates = []float64{0, 1e-4, 1e-2}

// chaosPlan builds the deterministic fault plan for one chaos run. On top
// of the uniform rate, count triggers guarantee that each recovery path
// fires at least once per run even at low rates: two forced flushes, one
// transient translation failure, one stub-allocation failure, one spurious
// trap, and one duplicate trap delivery.
func chaosPlan(seed int64, rate float64) *faultinject.Plan {
	p := faultinject.New(seed).RateAll(rate)
	if rate > 0 {
		p.At(faultinject.ForcedFlush, 2, 7).
			At(faultinject.Translate, 3).
			At(faultinject.AllocStub, 1).
			At(faultinject.SpuriousTrap, 5).
			At(faultinject.DuplicateTrap, 1)
	}
	return p
}

// chaosCosim runs the program under every mechanism configuration at every
// chaos rate with self-checking on, asserting that injected faults degrade
// cost but never correctness: final architectural state must match the
// reference interpreter and every engine invariant must hold afterwards.
func chaosCosim(t *testing.T, name string, img []byte, dataInit []byte) {
	t.Helper()
	refCPU, refArena := reference(t, img, dataInit)
	static := censusSites(t, img, dataInit)
	for _, rate := range chaosRates {
		for _, opt := range allConfigs(static) {
			opt := opt
			plan := chaosPlan(11, rate)
			opt.FaultPlan = plan
			opt.SelfCheck = true
			label := fmt.Sprintf("%s/%v(re=%v,rt=%v,mv=%v)/rate=%g",
				name, opt.Mechanism, opt.Rearrange, opt.Retranslate, opt.MultiVersion, rate)
			gotCPU, gotArena, e := runDBT(t, img, dataInit, opt)
			compareState(t, label, refCPU, gotCPU, refArena, gotArena)
			if err := e.CheckInvariants(); err != nil {
				t.Errorf("%s: %v", label, err)
			}
			if got := e.Stats().InjectedFaults; got != plan.Total() {
				t.Errorf("%s: Stats().InjectedFaults = %d, plan total %d", label, got, plan.Total())
			}
			if rate == 0 && plan.Total() != 0 {
				t.Errorf("%s: control run fired %d faults", label, plan.Total())
			}
			if rate > 0 && plan.Total() == 0 {
				t.Errorf("%s: chaos run fired no faults", label)
			}
		}
	}
}

// TestChaosMisalignedLoop drives the canonical misaligned hot loop through
// the full chaos matrix.
func TestChaosMisalignedLoop(t *testing.T) {
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Label("loop")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 2})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 8})
		b.ALU(guest.XORrr, guest.EAX, guest.EDX)
		b.Load(guest.LD2S, guest.ESI, guest.MemRef{Base: guest.EBX, Disp: 5})
		b.ALU(guest.ADDrr, guest.EAX, guest.ESI)
		b.Store(guest.ST2, guest.MemRef{Base: guest.EBX, Disp: 17}, guest.EAX)
		b.FLoad(guest.F0, guest.MemRef{Base: guest.EBX, Disp: 20})
		b.FAdd(guest.F1, guest.F0)
		b.FStore(guest.MemRef{Base: guest.EBX, Disp: 36}, guest.F1)
		b.Store(guest.ST4, guest.MemRef{Base: guest.EBX, Disp: 49}, guest.EAX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 200)
		b.Jcc(guest.L, "loop")
		b.Halt()
	})
	chaosCosim(t, "chaos-misloop", img, patternData(256))
}

// TestChaosCallsAndStack adds CALL/RET/PUSH/POP traffic (indirect
// dispatch, IBTC) to the chaos matrix.
func TestChaosCallsAndStack(t *testing.T) {
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Label("loop")
		b.Push(guest.ECX)
		b.Call("work")
		b.Pop(guest.ECX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 100)
		b.Jcc(guest.L, "loop")
		b.Halt()
		b.Label("work")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 6})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.Store(guest.ST4, guest.MemRef{Base: guest.EBX, Disp: 32}, guest.EAX)
		b.Ret()
	})
	chaosCosim(t, "chaos-calls", img, patternData(64))
}

// TestChaosRandomPrograms pushes randomized programs through the chaos
// matrix (skipped in -short mode).
func TestChaosRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			img := randomProgram(t, seed)
			chaosCosim(t, fmt.Sprintf("chaos-rand%d", seed), img, patternData(4096))
		})
	}
}
