package core

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"mdabt/internal/guest"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
	"mdabt/internal/workload"
)

// The golden file pins the exact simulated behaviour (machine counters and
// engine statistics) of every mechanism configuration on a set of
// deterministic guest programs. It was generated on the pre-refactor seed
// (before the policy-registry extraction) with
//
//	go test ./internal/core -run TestMechanismEquivalence -update_equivalence
//
// so the test proves the strategy-object refactor is bit-identical to the
// original switch-based implementation: same cycles, same traps, same Stats
// counters, per configuration.
var updateEquivalence = flag.Bool("update_equivalence", false,
	"rewrite testdata/equivalence_golden.txt from the current implementation")

const equivalenceGoldenPath = "testdata/equivalence_golden.txt"

// equivalenceConfigs mirrors the cosim configuration matrix with stable
// names for golden-file keys.
func equivalenceConfigs(static map[uint32]bool) []struct {
	name string
	opt  Options
} {
	var out []struct {
		name string
		opt  Options
	}
	add := func(name string, o Options) {
		out = append(out, struct {
			name string
			opt  Options
		}{name, o})
	}

	add("direct", DefaultOptions(Direct))
	st := DefaultOptions(StaticProfile)
	st.StaticSites = static
	add("static-profile", st)
	dp := DefaultOptions(DynamicProfile)
	dp.HeatThreshold = 3
	add("dynamic-profile/th3", dp)
	add("dynamic-profile/default", DefaultOptions(DynamicProfile))
	add("exception-handling", DefaultOptions(ExceptionHandling))
	ehr := DefaultOptions(ExceptionHandling)
	ehr.Rearrange = true
	add("eh+rearrange", ehr)
	dpeh := DefaultOptions(DPEH)
	dpeh.HeatThreshold = 3
	add("dpeh/th3", dpeh)
	add("dpeh/default", DefaultOptions(DPEH))
	dpehR := dpeh
	dpehR.Retranslate = true
	dpehR.RetransThreshold = 2
	add("dpeh+retrans", dpehR)
	dpehM := dpeh
	dpehM.MultiVersion = true
	add("dpeh+mv", dpehM)
	dpehMB := dpehM
	dpehMB.MVBlockGranularity = true
	add("dpeh+mvblock", dpehMB)
	dpehAd := dpeh
	dpehAd.Adaptive = true
	dpehAd.AdaptiveStreak = 8
	add("dpeh+adaptive", dpehAd)
	dSA := DefaultOptions(Direct)
	dSA.StaticAlign = true
	add("direct+staticalign", dSA)
	ehSA := DefaultOptions(ExceptionHandling)
	ehSA.StaticAlign = true
	add("eh+staticalign", ehSA)
	dpehSA := dpeh
	dpehSA.Retranslate = true
	dpehSA.MultiVersion = true
	dpehSA.StaticAlign = true
	add("dpeh+retrans+mv+staticalign", dpehSA)
	sb := DefaultOptions(DPEH)
	sb.HeatThreshold = 6
	sb.Superblocks = true
	sb.IBTC = true
	add("dpeh+superblocks+ibtc", sb)
	add("aot", DefaultOptions(AOT))
	spehAOT := DefaultOptions(SPEH)
	spehAOT.StaticSites = static
	spehAOT.AOT = true
	spehAOT.StaticAlign = true
	add("speh+aot", spehAOT)
	return out
}

// equivalenceFingerprint reduces one run to a canonical line: every machine
// counter and every Stats field, in declaration order via %+v.
func equivalenceFingerprint(e *Engine) string {
	c := e.Mach.Counters()
	return fmt.Sprintf("counters=%+v stats=%+v", c, e.Stats())
}

// faultEquivalencePrograms returns the guest-fault workload set for the
// golden matrix (keys "fault:<program>|<config>"). Fault-expected runs end
// in a delivered guest fault; the fingerprint pins the exact trap, fault,
// and SMC counter behaviour of every mechanism on them.
func faultEquivalencePrograms(t *testing.T) []*workload.FaultProgram {
	t.Helper()
	progs, err := workload.FaultPrograms()
	if err != nil {
		t.Fatal(err)
	}
	return progs
}

// faultCensusSites is censusSites for a FaultProgram (protections applied;
// a fault-terminated census still yields its sites).
func faultCensusSites(t *testing.T, p *workload.FaultProgram) map[uint32]bool {
	t.Helper()
	m := mem.New()
	p.Load(m)
	c, _ := RunCensus(m, p.Entry(), 50_000_000)
	sites := make(map[uint32]bool)
	for pc, s := range c.Sites {
		if s.MDA > 0 {
			sites[pc] = true
		}
	}
	return sites
}

func TestMechanismEquivalence(t *testing.T) {
	programs := []struct {
		name string
		img  []byte
	}{
		{"misloop", mdaLoopImg(t, 300)},
		{"lateonset", lateOnsetImg(t, 100, 400)},
		{"multiblock", multiBlockLoopImg(t, 800)},
		{"mixedgroup", mixedGroupImg(t, 300)},
	}
	data := patternData(256)

	got := make(map[string]string)
	var keys []string
	for _, p := range programs {
		static := censusSites(t, p.img, data)
		for _, cfg := range equivalenceConfigs(static) {
			key := p.name + "|" + cfg.name
			_, _, e := runDBT(t, p.img, data, cfg.opt)
			got[key] = equivalenceFingerprint(e)
			keys = append(keys, key)
		}
	}
	for _, fp := range faultEquivalencePrograms(t) {
		static := faultCensusSites(t, fp)
		for _, cfg := range equivalenceConfigs(static) {
			key := "fault:" + fp.Name + "|" + cfg.name
			m := mem.New()
			fp.Load(m)
			mach := machine.New(m, machine.DefaultParams())
			e := NewEngine(m, mach, cfg.opt)
			rerr := e.Run(fp.Entry(), 500_000_000)
			if fp.ExpectFault != (rerr != nil) {
				t.Fatalf("%s: run err %v, expect-fault %v", key, rerr, fp.ExpectFault)
			}
			got[key] = equivalenceFingerprint(e)
			keys = append(keys, key)
		}
	}

	if *updateEquivalence {
		var sb strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s\t%s\n", k, got[k])
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(equivalenceGoldenPath, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden fingerprints", len(keys))
		return
	}

	raw, err := os.ReadFile(equivalenceGoldenPath)
	if err != nil {
		t.Fatalf("golden file missing (run with -update_equivalence on the seed): %v", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		k, v, ok := strings.Cut(line, "\t")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		want[k] = v
	}
	for _, k := range keys {
		w, ok := want[k]
		if !ok {
			t.Errorf("%s: no golden entry (regenerate the golden file)", k)
			continue
		}
		if got[k] != w {
			t.Errorf("%s: behaviour diverged from pre-refactor seed\n got %s\nwant %s", k, got[k], w)
		}
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("%s: golden entry no longer exercised", k)
		}
	}
}

// TestEngineReuseEquivalence drives the entire golden matrix through ONE
// engine recycled with Engine.Reset between runs — the serving layer's
// reuse path. Every fingerprint must match the fresh-engine golden file
// bit for bit: a reset engine is behaviourally indistinguishable from a
// new one, across programs AND mechanism configurations. A fault-heavy
// guest (page protections armed, run ending in a delivered guest fault) is
// interleaved between matrix entries: its protection tables, watch pages,
// attribution state, and pending fault must all vanish at Reset without
// perturbing the next fingerprint.
func TestEngineReuseEquivalence(t *testing.T) {
	raw, err := os.ReadFile(equivalenceGoldenPath)
	if err != nil {
		t.Fatalf("golden file missing: %v", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		k, v, ok := strings.Cut(line, "\t")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		want[k] = v
	}

	programs := []struct {
		name string
		img  []byte
	}{
		{"misloop", mdaLoopImg(t, 300)},
		{"lateonset", lateOnsetImg(t, 100, 400)},
		{"multiblock", multiBlockLoopImg(t, 800)},
		{"mixedgroup", mixedGroupImg(t, 300)},
	}
	data := patternData(256)

	faulty, err := workload.GenerateStraddle(workload.StraddleStoreFault)
	if err != nil {
		t.Fatal(err)
	}

	m := mem.New()
	mach := machine.New(m, machine.DefaultParams())
	var e *Engine
	ran := 0
	for _, p := range programs {
		static := censusSites(t, p.img, data)
		for _, cfg := range equivalenceConfigs(static) {
			key := p.name + "|" + cfg.name
			if e == nil {
				e = NewEngine(m, mach, cfg.opt)
			} else {
				e.Reset(cfg.opt)
			}
			e.LoadImage(guest.CodeBase, p.img)
			m.WriteBytes(guest.DataBase, data)
			if err := e.Run(guest.CodeBase, 500_000_000); err != nil {
				t.Fatalf("%s: reused engine: %v", key, err)
			}
			w, ok := want[key]
			if !ok {
				t.Fatalf("%s: no golden entry", key)
			}
			if got := equivalenceFingerprint(e); got != w {
				t.Errorf("%s: reused engine diverged from fresh-engine golden\n got %s\nwant %s", key, got, w)
			}
			ran++
			// Dirty the engine with a fault-heavy guest before every few
			// matrix entries: the run must end in a delivered guest fault,
			// and the following Reset must scrub every trace of it.
			if ran%5 == 0 {
				e.Reset(cfg.opt)
				faulty.Load(m)
				ferr := e.Run(faulty.Entry(), 500_000_000)
				if gf, ok := AsGuestFault(ferr); !ok || gf.Mem.Addr != faulty.FaultAddr {
					t.Fatalf("%s: interleaved fault guest ended with %v, want fault at %#x", key, ferr, faulty.FaultAddr)
				}
			}
		}
	}
	// The fault-workload half of the matrix through the same reused engine.
	for _, fp := range faultEquivalencePrograms(t) {
		static := faultCensusSites(t, fp)
		for _, cfg := range equivalenceConfigs(static) {
			key := "fault:" + fp.Name + "|" + cfg.name
			e.Reset(cfg.opt)
			fp.Load(m)
			rerr := e.Run(fp.Entry(), 500_000_000)
			if fp.ExpectFault != (rerr != nil) {
				t.Fatalf("%s: reused engine err %v, expect-fault %v", key, rerr, fp.ExpectFault)
			}
			w, ok := want[key]
			if !ok {
				t.Fatalf("%s: no golden entry", key)
			}
			if got := equivalenceFingerprint(e); got != w {
				t.Errorf("%s: reused engine diverged from fresh-engine golden\n got %s\nwant %s", key, got, w)
			}
			ran++
		}
	}
	if ran != len(want) {
		t.Errorf("reuse matrix ran %d entries, golden has %d", ran, len(want))
	}
}
