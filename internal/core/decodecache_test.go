package core

import (
	"testing"

	"mdabt/internal/guest"
	"mdabt/internal/mem"
)

// TestDecodeCacheDenseAndFar exercises both storage tiers of the PC-indexed
// decode cache: the dense window anchored at guest.CodeBase and the map
// fallback for out-of-window PCs.
func TestDecodeCacheDenseAndFar(t *testing.T) {
	m := mem.New()
	var b guest.Builder
	b.MovImm(guest.EAX, 7)
	b.Halt()
	img, err := b.Build(uint32(guest.CodeBase))
	if err != nil {
		t.Fatal(err)
	}
	farPC := decDenseBase + decDenseLimit + 0x100
	m.WriteBytes(guest.CodeBase, img)
	m.WriteBytes(uint64(farPC), img)

	var c decodeCache
	densePC := uint32(guest.CodeBase)

	for _, pc := range []uint32{densePC, farPC} {
		de, fresh, err := c.decoded(pc, m)
		if err != nil {
			t.Fatalf("decoded(%#x): %v", pc, err)
		}
		if de.inst.Op != guest.MOVri || de.len == 0 {
			t.Fatalf("decoded(%#x) = op %v len %d, want MOVri", pc, de.inst.Op, de.len)
		}
		if !fresh {
			t.Fatalf("decoded(%#x) not fresh on first lookup", pc)
		}
		// Repeat lookups must hand back the same slot (profiles attach to it).
		if again, fresh2, _ := c.decoded(pc, m); again != de || fresh2 {
			t.Fatalf("decoded(%#x) returned a different or fresh slot on repeat", pc)
		}
	}
	if uint32(len(c.dense)) > decDenseLimit {
		t.Fatalf("dense window grew to %d entries, past the %d limit", len(c.dense), decDenseLimit)
	}
	if c.far[farPC] == nil {
		t.Fatalf("far PC %#x not in the map tier", farPC)
	}

	// peek never allocates: an untouched PC inside the window but past the
	// grown prefix, and an untouched far PC, both report nil.
	if de := c.peek(densePC + uint32(len(c.dense))); de != nil {
		t.Fatal("peek past the grown dense prefix allocated a slot")
	}
	if de := c.peek(farPC + 0x1000); de != nil {
		t.Fatal("peek of an unseen far PC allocated a slot")
	}
}

// TestDecodeCacheProfiles covers the fused per-site alignment profiles:
// lazy creation, profAt/clearProf, and forEachProf across both tiers.
func TestDecodeCacheProfiles(t *testing.T) {
	m := mem.New()
	var b guest.Builder
	b.MovImm(guest.EAX, 7)
	b.Halt()
	img, err := b.Build(uint32(guest.CodeBase))
	if err != nil {
		t.Fatal(err)
	}
	densePC := uint32(guest.CodeBase)
	farPC := decDenseBase + decDenseLimit + 0x40
	m.WriteBytes(guest.CodeBase, img)
	m.WriteBytes(uint64(farPC), img)

	var c decodeCache
	for _, pc := range []uint32{densePC, farPC} {
		if got := c.profAt(pc); got != nil {
			t.Fatalf("profAt(%#x) = %p before any profiling", pc, got)
		}
		de, _, err := c.decoded(pc, m)
		if err != nil {
			t.Fatal(err)
		}
		p := de.profile()
		if p == nil || de.profile() != p {
			t.Fatalf("profile() for %#x not stable", pc)
		}
		p.mda = 5
		if got := c.profAt(pc); got != p {
			t.Fatalf("profAt(%#x) = %p, want %p", pc, got, p)
		}
	}

	seen := map[uint32]bool{}
	c.forEachProf(func(pc uint32, p *siteProfile) {
		if p.mda != 5 {
			t.Errorf("forEachProf(%#x): mda = %d, want 5", pc, p.mda)
		}
		seen[pc] = true
	})
	if !seen[densePC] || !seen[farPC] {
		t.Fatalf("forEachProf visited %v, want both %#x and %#x", seen, densePC, farPC)
	}

	// Retranslation resets a site's profile without touching the decode.
	c.clearProf(densePC)
	if got := c.profAt(densePC); got != nil {
		t.Fatalf("profAt after clearProf = %p, want nil", got)
	}
	if de := c.peek(densePC); de == nil || de.len == 0 {
		t.Fatal("clearProf dropped the decoded instruction")
	}
}
