package core

import (
	"testing"

	"mdabt/internal/guest"
	"mdabt/internal/host"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
)

// TestStubZoneExhaustionFallsBack fills the stub zone so the exception
// handler must fall back to per-trap OS fixup — correctness must survive.
func TestStubZoneExhaustionFallsBack(t *testing.T) {
	// Many distinct always-MDA sites in a loop: each wants a stub.
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Jmp("loop")
		b.Label("loop")
		for i := 0; i < 24; i++ {
			b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: int32(2 + 8*i)})
			b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		}
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 40)
		b.Jcc(guest.L, "loop")
		b.Halt()
	})
	refCPU, refArena := reference(t, img, patternData(512))
	opt := DefaultOptions(ExceptionHandling)
	opt.CodeCacheBytes = 1 << 10 // 1KB: only a few stubs fit
	gotCPU, gotArena, e := runDBT(t, img, patternData(512), opt)
	compareState(t, "stub-exhaustion", refCPU, gotCPU, refArena, gotArena)
	if e.Stats().Flushes == 0 && e.Stats().Patches == 0 {
		t.Error("test exercised neither flush nor patching")
	}
	// Some traps repeated (OS-fixup fallback) — more traps than sites.
	if e.Mach.Counters().MisalignTraps <= 24 {
		t.Errorf("traps = %d, expected repeats under stub exhaustion", e.Mach.Counters().MisalignTraps)
	}
}

// TestFlushUnderLoadKeepsState: a tiny code cache forces repeated full
// flushes while MDA patching is active; final state must stay correct.
func TestFlushUnderLoadKeepsState(t *testing.T) {
	// The multi-block loop body exceeds an 80-byte cache, so every
	// iteration cycle forces flushes while MDA patching stays active.
	img := multiBlockLoopImg(t, 400)
	refCPU, refArena := reference(t, img, patternData(256))
	for _, mech := range []Mechanism{ExceptionHandling, DPEH} {
		opt := DefaultOptions(mech)
		opt.HeatThreshold = 3
		opt.CodeCacheBytes = 80
		gotCPU, gotArena, e := runDBT(t, img, patternData(256), opt)
		compareState(t, "flush/"+mech.String(), refCPU, gotCPU, refArena, gotArena)
		if e.Stats().Flushes == 0 {
			t.Errorf("%v: no flushes with an 80-byte cache", mech)
		}
	}
}

// TestRunTwiceIsDeterministic: two engines over the same program produce
// identical cycle counts (the simulator has no hidden nondeterminism).
func TestRunTwiceIsDeterministic(t *testing.T) {
	img := multiBlockLoopImg(t, 2000)
	opt := DefaultOptions(DPEH)
	opt.Retranslate = true
	opt.MultiVersion = true
	opt.Superblocks = true
	run := func() (uint64, uint64) {
		e := engineFor(t, img, opt)
		mustRun(t, e)
		return e.Mach.Counters().Cycles, e.Mach.Counters().Insts
	}
	c1, i1 := run()
	c2, i2 := run()
	if c1 != c2 || i1 != i2 {
		t.Fatalf("nondeterministic: run1=%d/%d run2=%d/%d", c1, i1, c2, i2)
	}
}

// TestEngineReRunAfterHalt: the same engine can run a second program image
// region (a fresh entry) after halting.
func TestEngineReRunAfterHalt(t *testing.T) {
	e := engineFor(t, mdaLoopImg(t, 50), DefaultOptions(ExceptionHandling))
	mustRun(t, e)
	first := e.FinalCPU().R[guest.EAX]
	// Run again from the same entry: state resets, result identical.
	mustRun(t, e)
	if got := e.FinalCPU().R[guest.EAX]; got != first {
		t.Fatalf("second run eax=%#x, first=%#x", got, first)
	}
}

// TestTrapInUnknownCodeFallsBackToFixup: a trap at a host PC outside the
// side table (e.g. hand-written host code) uses the OS-style fixup even
// under the patching mechanisms.
func TestTrapInUnknownCodeFallsBackToFixup(t *testing.T) {
	m := mem.New()
	mach := machine.New(m, machine.DefaultParams())
	NewEngine(m, mach, DefaultOptions(ExceptionHandling)) // registers the handler
	m.Write64(0x2000, 0x1122334455667788)
	a := host.NewAsm(0x100000)
	a.MovImm(host.R2, 0x2002)
	a.Mem(host.LDL, host.R1, 0, host.R2) // misaligned: not in any side table
	a.Brk(machine.HaltService)
	words, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mach.WriteCode(0x100000, words)
	mach.SetPC(0x100000)
	if _, _, err := mach.Run(100); err != nil {
		t.Fatal(err)
	}
	if mach.Counters().MisalignTraps != 1 {
		t.Fatalf("traps = %d, want 1", mach.Counters().MisalignTraps)
	}
	// Bytes at 0x2002..0x2005 little-endian: 0x66,0x55,0x44,0x33.
	if got := uint32(mach.Reg(host.R1)); got != 0x33445566 {
		t.Fatalf("fixup value %#x, want 0x33445566", got)
	}
}
