package core

import (
	"errors"
	"fmt"

	"mdabt/internal/align"
	"mdabt/internal/faultinject"
	"mdabt/internal/guest"
)

// CodeCacheBase is the host virtual address of the translation cache. It
// sits above the 32-bit guest address space.
const CodeCacheBase = 0x0000_0000_8000_0000

// ErrCodeCacheFull is returned when an allocation does not fit; the engine
// responds with a full flush.
var errCodeCacheFull = errors.New("core: code cache full")

// codeCache is a bump allocator over the translation cache region. Block
// bodies are allocated from the bottom up and exception-handler MDA stubs
// from the top down: stubs land far from the code that branches to them,
// which is exactly the instruction-locality loss that the paper's code
// rearrangement optimization (§IV-A, Fig. 6) recovers.
type codeCache struct {
	base, size uint64
	blockNext  uint64 // next free address for block bodies (grows up)
	stubNext   uint64 // next free address past the stub zone (grows down)
	// faults, when non-nil, injects deterministic allocation failures so
	// the flush and stub-exhaustion recovery ladders are testable.
	faults *faultinject.Plan
}

func newCodeCache(size uint64, faults *faultinject.Plan) *codeCache {
	cc := &codeCache{base: CodeCacheBase, size: size, faults: faults}
	cc.reset()
	return cc
}

// reset reclaims both zones — block bodies and exception-handler stubs —
// restoring the cache to empty (full flush).
func (cc *codeCache) reset() {
	cc.blockNext = cc.base
	cc.stubNext = cc.base + cc.size
}

// reconfigure re-arms the cache for a new run: fresh size and fault plan,
// both zones empty. The cache is a bump allocator over simulated memory,
// so the "arena" — the address range — is reused as-is.
func (cc *codeCache) reconfigure(size uint64, faults *faultinject.Plan) {
	cc.size = size
	cc.faults = faults
	cc.reset()
}

// allocBlock reserves nbytes for a translated block body.
func (cc *codeCache) allocBlock(nbytes uint64) (uint64, error) {
	if cc.faults.Should(faultinject.AllocBlock) {
		return 0, errCodeCacheFull
	}
	nbytes = (nbytes + 3) &^ 3
	if cc.blockNext+nbytes > cc.stubNext {
		return 0, errCodeCacheFull
	}
	addr := cc.blockNext
	cc.blockNext += nbytes
	return addr, nil
}

// allocStub reserves nbytes in the stub zone (top of the cache).
func (cc *codeCache) allocStub(nbytes uint64) (uint64, error) {
	if cc.faults.Should(faultinject.AllocStub) {
		return 0, errCodeCacheFull
	}
	nbytes = (nbytes + 3) &^ 3
	if cc.stubNext-nbytes < cc.blockNext {
		return 0, errCodeCacheFull
	}
	cc.stubNext -= nbytes
	return cc.stubNext, nil
}

// stubZoneBytes reports the bytes currently allocated to MDA stubs.
func (cc *codeCache) stubZoneBytes() uint64 {
	return cc.base + cc.size - cc.stubNext
}

// used reports the bytes currently allocated (both zones).
func (cc *codeCache) used() uint64 {
	return (cc.blockNext - cc.base) + (cc.base + cc.size - cc.stubNext)
}

// exit is one control-flow exit of a translated block: a patchable BRKBT
// stub that either names a static guest target or dispatches indirectly.
type exit struct {
	id          uint32
	from        *block
	targetGuest uint32
	hostPC      uint64 // address of the BRKBT (or patched BR) instruction
	linked      bool
}

// memSite is the translation-time record of one guest memory operation
// inside a block. The exception handler uses it to regenerate code for a
// faulting host instruction.
type memSite struct {
	instIdx int    // index into block.insts
	sub     int    // sub-access within the instruction (string copies)
	guestPC uint32 // address of the guest instruction
	size    int
	isStore bool
	// How the access is reached on the host side: base register + disp
	// (either the guest base register directly, or tmpEA with disp 0 when
	// the address needed materialization).
	kind memKind
	// hostPCs lists every trap-prone host memory instruction emitted for
	// this site (guarded multi-version arms are omitted — they cannot
	// trap; block-granularity copies contribute one entry per plain arm).
	hostPCs []uint64
	// patched marks host PCs already redirected to an MDA stub.
	patched map[uint64]bool
	// patchFails counts failed patch attempts (stub zone full, assembler
	// error, branch out of range); past Options.PatchRetryLimit the trap-
	// storm limiter demotes the site (see Engine.patchFailed).
	patchFails int
}

// instBound maps the host address where a guest instruction's emission
// starts to that instruction's index in block.insts. Recorded on the
// translation's recording pass, in emission order (host PCs strictly
// increase), so the access-fault handler can binary-search any in-block
// host PC back to the guest instruction it implements. Block-granularity
// multi-version bodies record each instruction once per emitted copy.
type instBound struct {
	hostPC uint64
	idx    int
}

// memKind describes which MDA sequence a site needs.
type memKind uint8

const (
	kindLD4 memKind = iota
	kindLD2Z
	kindLD2S
	kindST4
	kindST2
	kindFLD8
	kindFST8
)

// block is one translated unit: a basic block, or (with superblocks
// enabled) a trace of basic blocks laid out fall-through along the hot
// path. instPCs carries each instruction's guest address explicitly —
// trace instructions are not contiguous in guest memory.
type block struct {
	guestPC   uint32
	guestLen  uint32
	insts     []guest.Inst
	instLens  []int
	instPCs   []uint32
	nblocks   int // basic blocks in this unit (1 unless a trace)
	hostEntry uint64
	hostSize  uint64
	exits     []*exit
	sites     []*memSite
	// bounds maps in-block host PCs back to guest instruction indices
	// (precise fault attribution; see instBound).
	bounds []instBound
	// knownMDA marks inst indices known to do MDAs: from the profiling
	// phase at translation time plus every site the exception handler has
	// seen trap. It survives retranslation (§IV-C) so the new code inlines
	// the discovered sequences.
	knownMDA map[int]bool
	// mixed marks inst indices classified as sometimes-aligned (multi-
	// version sites, §IV-D).
	mixed map[int]bool
	// sitePol and averdict record the translation-time policy and static
	// alignment verdict per memory-inst index (dump annotations; averdict
	// is populated only under Options.StaticAlign).
	sitePol  map[int]sitePolicy
	averdict map[int]align.Verdict
	// alignedPCs marks host memory ops emitted under a proven-aligned
	// claim: static Aligned verdicts plus BT-internal data at constructed-
	// aligned addresses (adaptive streak counters, IBTC entries). The
	// verifier accepts them without a trap-site registration; a trap at one
	// of these PCs is a soundness violation (Stats.StaticAlignViolations).
	alignedPCs map[uint64]bool
	// guardedPCs marks plain memory ops inside alignment-guarded arms
	// (multi-version and adaptive aligned paths): unreachable when the
	// address misaligns, so they carry no trap-site registration either.
	guardedPCs map[uint64]bool
	// incoming lists exits of other blocks linked directly to this block,
	// so invalidation can unlink them.
	incoming []*exit
	// trapCount counts misalignment exceptions in this translation
	// generation (retranslation trigger, Fig. 7).
	trapCount int
	invalid   bool
	// twoVer marks units containing multi-version sites (statistics).
	twoVer bool
	// aot marks translations produced by the offline pre-translation pass
	// (Options.AOT); dispatches into them count as Stats.AOTHits.
	aot bool
	// Trace-tier seeding state (Options.Traces; host-side only, never
	// visible to the simulation): runs counts native dispatches absorbed
	// while the unit has no machine trace, so the dispatcher seeds one at
	// Options.TraceHeat; notrace latches a failed build (unsupported host
	// instruction) so the dispatcher stops retrying.
	runs    int
	notrace bool
}

func (b *block) String() string {
	return fmt.Sprintf("block@%#x(%d insts, host %#x)", b.guestPC, len(b.insts), b.hostEntry)
}

// siteProfile is the per-site alignment profile accumulated by the
// interpreter (phase 1) and, for Figure 15, by the census interpreter.
type siteProfile struct {
	mda     uint64 // misaligned executions
	aligned uint64 // aligned executions
}

func (p siteProfile) total() uint64 { return p.mda + p.aligned }

// blockProfile aggregates a block's heating count and successor counts
// during the interpretation phase. Per-site alignment profiles are engine-
// global (Engine.siteProf), keyed by instruction address, so trace
// translation sees the profiles of every block it folds in.
type blockProfile struct {
	heat uint64
	succ map[uint32]uint64 // successor-block counts (trace formation)
}

func newBlockProfile() *blockProfile {
	return &blockProfile{succ: make(map[uint32]uint64)}
}
