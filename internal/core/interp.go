package core

import (
	"fmt"

	"mdabt/internal/guest"
	"mdabt/internal/mem"
)

// interpretBlock interprets one execution of the basic block starting at
// pc: it steps the reference CPU until a block-ending instruction has
// executed (or the block-length cap is hit), collecting the MDA profile and
// charging interpreter cycles. It returns the guest PC after the block.
func (e *Engine) interpretBlock(pc uint32) (uint32, error) {
	e.CPU.EIP = pc
	for n := 0; n < maxBlockInsts; n++ {
		cur := e.CPU.EIP
		de, err := e.decoded(cur)
		if err != nil {
			return 0, fmt.Errorf("core: interpret at %#x: %w", cur, err)
		}
		info, err := e.CPU.Exec(e.Mem, cur, &de.inst, de.len)
		if err != nil {
			return 0, err
		}
		e.stats.InterpretedInsts++
		e.Mach.AddCycles(e.Opt.InterpCyclesPerInst)
		// Self-modifying code: an interpreted store into a watched code page
		// invalidates the stale translations and decode entries it covers.
		// Translated stores reach here too — the write trap reroutes them to
		// this interpreter, so this hook is the single SMC choke point.
		if e.Mem.Armed() {
			if info.IsMem && info.IsStore && e.Mem.WatchedRange(uint64(info.EA), info.Size) {
				e.smcWrite(uint64(info.EA), info.Size)
			}
			if info.IsMem2 && info.IsStore2 && e.Mem.WatchedRange(uint64(info.EA2), info.Size2) {
				e.smcWrite(uint64(info.EA2), info.Size2)
			}
		}
		if info.IsMem && info.Size > 1 {
			s := de.profile()
			if info.MDA {
				s.mda++
				e.stats.InterpretedMDAs++
			} else {
				s.aligned++
			}
		}
		if info.IsMem2 {
			s := de.profile()
			if info.MDA2 {
				s.mda++
				e.stats.InterpretedMDAs++
			} else {
				s.aligned++
			}
		}
		if e.CPU.Halted {
			e.halted = true
			return e.CPU.EIP, nil
		}
		if de.inst.Op.EndsBlock() {
			break
		}
	}
	return e.CPU.EIP, nil
}

// profile returns (creating if needed) the block profile for pc.
func (e *Engine) profile(pc uint32) *blockProfile {
	p := e.profiles[pc]
	if p == nil {
		p = newBlockProfile()
		e.profiles[pc] = p
	}
	return p
}

// CensusSite is one static memory instruction's alignment census.
type CensusSite struct {
	PC      uint32
	MDA     uint64
	Aligned uint64
}

// Census is a pure-interpretation measurement of a guest program: the data
// behind Table I (NMI, MDA counts, MDA ratio) and Figure 15 (per-site
// misalignment ratio classes). No host machine is involved.
type Census struct {
	Insts    uint64 // guest instructions executed
	MemRefs  uint64 // data memory accesses (all sizes)
	MDAs     uint64 // misaligned accesses
	Sites    map[uint32]*CensusSite
	Halted   bool
	FinalCPU guest.CPU
}

// NMI returns the number of distinct static instructions that performed at
// least one MDA (Table I's NMI column).
func (c *Census) NMI() int {
	n := 0
	for _, s := range c.Sites {
		if s.MDA > 0 {
			n++
		}
	}
	return n
}

// Ratio returns MDAs / memory references (Table I's Ratio column).
func (c *Census) Ratio() float64 {
	if c.MemRefs == 0 {
		return 0
	}
	return float64(c.MDAs) / float64(c.MemRefs)
}

// RatioClasses buckets MDA sites by per-site misalignment ratio, matching
// Figure 15's categories. The four counts are sites with ratio <50%, =50%,
// >50% (but below 100%), and =100%.
func (c *Census) RatioClasses() (lt, eq, gt, always int) {
	for _, s := range c.Sites {
		if s.MDA == 0 {
			continue
		}
		total := s.MDA + s.Aligned
		switch {
		case s.Aligned == 0:
			always++
		case s.MDA*2 == total:
			eq++
		case s.MDA*2 < total:
			lt++
		default:
			gt++
		}
	}
	return lt, eq, gt, always
}

// RunCensus interprets the program at entry until HALT (or maxInsts) and
// returns its alignment census. When the memory has page protections armed
// and the program faults, the census collected so far is returned alongside
// the *guest.Fault (the engine cosim tests compare this partial state
// against the DBT's rewound state).
func RunCensus(m *mem.Memory, entry uint32, maxInsts uint64) (*Census, error) {
	cpu := &guest.CPU{}
	cpu.Reset(entry)
	c := &Census{Sites: make(map[uint32]*CensusSite)}
	// Per-site counts accumulate in the decode-cache entries (no map hit per
	// memory reference); the Sites map is materialized once at the end.
	var dec decodeCache
	finish := func(err error) (*Census, error) {
		dec.forEachProf(func(pc uint32, p *siteProfile) {
			c.Sites[pc] = &CensusSite{PC: pc, MDA: p.mda, Aligned: p.aligned}
		})
		c.Halted = cpu.Halted
		c.FinalCPU = *cpu
		return c, err
	}
	for c.Insts < maxInsts && !cpu.Halted {
		pc := cpu.EIP
		de, _, err := dec.decoded(pc, m)
		if err != nil {
			return nil, fmt.Errorf("core: census at %#x: %w", pc, err)
		}
		if m.Armed() {
			if f := m.CheckFetch(uint64(pc), de.len); f != nil {
				return finish(&guest.Fault{PC: pc, Mem: *f})
			}
		}
		info, err := cpu.Exec(m, pc, &de.inst, de.len)
		if err != nil {
			return finish(err)
		}
		// Self-modifying code: drop decode entries a store overwrote so the
		// next visit re-decodes the new bytes.
		if info.IsMem && info.IsStore && dec.mayContain(uint64(info.EA), info.Size) {
			dec.invalidateWrite(uint64(info.EA), info.Size)
		}
		if info.IsMem2 && info.IsStore2 && dec.mayContain(uint64(info.EA2), info.Size2) {
			dec.invalidateWrite(uint64(info.EA2), info.Size2)
		}
		c.Insts++
		if info.IsMem {
			c.MemRefs++
			if info.Size > 1 {
				s := de.profile()
				if info.MDA {
					s.mda++
					c.MDAs++
				} else {
					s.aligned++
				}
			}
		}
		if info.IsMem2 {
			c.MemRefs++
			if info.Size2 > 1 {
				s := de.profile()
				if info.MDA2 {
					s.mda++
					c.MDAs++
				} else {
					s.aligned++
				}
			}
		}
	}
	return finish(nil)
}
