package core

import (
	"strings"
	"testing"

	"mdabt/internal/guest"
)

// invariantEngine runs a small program to populate a real engine state.
func invariantEngine(t *testing.T) *Engine {
	t.Helper()
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Label("loop")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 2})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.Call("work")
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 40)
		b.Jcc(guest.L, "loop")
		b.Halt()
		b.Label("work")
		b.Push(guest.EAX)
		b.Pop(guest.EAX)
		b.Ret()
	})
	opt := DefaultOptions(ExceptionHandling)
	opt.IBTC = true
	_, _, e := runDBT(t, img, patternData(64), opt)
	if len(e.blocks) == 0 {
		t.Fatal("engine has no live translations to corrupt")
	}
	return e
}

// TestCheckInvariantsCleanEngine: a healthy post-run engine passes.
func TestCheckInvariantsCleanEngine(t *testing.T) {
	e := invariantEngine(t)
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("clean engine fails self-check: %v", err)
	}
}

// TestCheckInvariantsDetectsCorruption plants one corruption of each class
// the checker covers and asserts each is caught with a matching message.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	anyBlock := func(e *Engine) *block {
		for _, b := range e.blocks {
			return b
		}
		return nil
	}
	cases := []struct {
		name    string
		corrupt func(t *testing.T, e *Engine)
		want    string
	}{
		{
			name:    "cache pointers crossed",
			corrupt: func(t *testing.T, e *Engine) { e.cc.blockNext = e.cc.stubNext + 4 },
			want:    "cache pointers out of order",
		},
		{
			name:    "live block marked invalid",
			corrupt: func(t *testing.T, e *Engine) { anyBlock(e).invalid = true },
			want:    "marked invalid",
		},
		{
			name:    "block map key mismatch",
			corrupt: func(t *testing.T, e *Engine) { anyBlock(e).guestPC++ },
			want:    "block map key",
		},
		{
			name:    "block outside allocated zone",
			corrupt: func(t *testing.T, e *Engine) { anyBlock(e).hostEntry = e.cc.base + e.cc.size },
			want:    "outside allocated zone",
		},
		{
			name: "side table entry dropped",
			corrupt: func(t *testing.T, e *Engine) {
				for hpc := range e.sites {
					delete(e.sites, hpc)
					break
				}
			},
			want: "side table",
		},
		{
			name: "exit id mismatch",
			corrupt: func(t *testing.T, e *Engine) {
				if len(e.exits) == 0 {
					t.Skip("no exits")
				}
				e.exits[0].id++
			},
			want: "exit 0 carries id",
		},
		{
			name: "ibtc mirror diverges from memory",
			corrupt: func(t *testing.T, e *Engine) {
				for i := range e.ibtc {
					if e.ibtc[i].valid {
						e.Mem.Write64(uint64(ibtcBase)+uint64(i)*16+8, 0xdead)
						return
					}
				}
				t.Skip("no valid ibtc entries")
			},
			want: "ibtc",
		},
		{
			name: "blacklisted block translated",
			corrupt: func(t *testing.T, e *Engine) {
				e.blacklist[anyBlock(e).guestPC] = true
			},
			want: "blacklisted",
		},
		{
			name: "block LUT entry in wrong slot",
			corrupt: func(t *testing.T, e *Engine) {
				b := anyBlock(e)
				e.blockLUT[(b.guestPC+1)&blockLUTMask] = blockLUTEntry{pc: b.guestPC + 1, b: b}
			},
			want: "block LUT",
		},
		{
			name: "block LUT holds invalidated block",
			corrupt: func(t *testing.T, e *Engine) {
				b := anyBlock(e)
				stale := &block{guestPC: b.guestPC, hostEntry: b.hostEntry, hostSize: b.hostSize, invalid: true}
				e.blockLUT[b.guestPC&blockLUTMask] = blockLUTEntry{pc: b.guestPC, b: stale}
			},
			want: "block LUT",
		},
		{
			name: "block LUT disagrees with block map",
			corrupt: func(t *testing.T, e *Engine) {
				b := anyBlock(e)
				ghost := *b // live-looking copy the block map does not own
				e.blockLUT[b.guestPC&blockLUTMask] = blockLUTEntry{pc: b.guestPC, b: &ghost}
			},
			want: "disagrees with the block map",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := invariantEngine(t)
			tc.corrupt(t, e)
			err := e.CheckInvariants()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSelfCheckLatchesIntoRun: with SelfCheck on, a corruption introduced
// mid-run surfaces as a Run error instead of silent state divergence.
func TestSelfCheckLatchesIntoRun(t *testing.T) {
	e := invariantEngine(t)
	e.Opt.SelfCheck = true
	anyB := func() *block {
		for _, b := range e.blocks {
			return b
		}
		return nil
	}
	anyB().guestPC++ // plant corruption
	e.selfCheck("test")
	if e.invariantErr == nil {
		t.Fatal("selfCheck did not latch the violation")
	}
	if err := e.Run(uint32(guest.CodeBase), 1_000_000); err == nil ||
		!strings.Contains(err.Error(), "block map key") {
		t.Fatalf("Run = %v, want latched invariant error", err)
	}
}
