// Package core implements the dynamic binary translator the paper evaluates
// MDA-handling mechanisms on: a DigitalBridge-like two-phase X86→Alpha DBT
// (paper §V-B, Fig. 4/9) running on the machine simulator.
//
// The engine executes a guest (x86-like) program by interpretation and/or
// translation to host (Alpha-like) code placed in a code cache in simulated
// memory. Which memory operations are translated to the inline "MDA code
// sequence" (ldq_u/ext…, paper Fig. 2) versus plain, trap-prone memory
// instructions is decided by the configured Mechanism:
//
//   - Direct: every non-byte memory operation becomes the MDA code sequence
//     (QEMU-style, §III-A).
//   - StaticProfile: sites marked by a prior train-input profiling run get
//     the MDA sequence (FX!32-style, §III-B).
//   - DynamicProfile: blocks are interpreted with MDA instrumentation until
//     a heating threshold; sites that did an MDA during profiling get the
//     sequence (IA-32 EL-style, §III-C). Undetected MDA sites trap to the
//     OS fixup on every occurrence.
//   - ExceptionHandling: translate everything as plain memory operations;
//     the BT's misalignment handler patches a faulting operation into a
//     branch to a freshly emitted MDA sequence on its first trap (§IV).
//   - DPEH: dynamic profiling with a low threshold plus the exception
//     handler for the leftovers (§IV-B), optionally with block
//     retranslation (§IV-C) and multi-version code (§IV-D).
package core

import (
	"fmt"
	"strings"

	"mdabt/internal/faultinject"
	"mdabt/internal/guest"
	"mdabt/internal/host"
	"mdabt/internal/policy"
)

// Mechanism selects the MDA handling mechanism (paper Table II). It is a
// compatibility shim over the internal/policy registry: the value is the
// registry ID, and the named constants below mirror the built-in
// registration order. Out-of-tree mechanisms registered with
// policy.Register are addressable as Mechanism(id) or via MechanismByName.
type Mechanism int

// Mechanisms under evaluation. SPEH (static profiling + exception
// handling) is the composite the paper implies but never measures.
const (
	Direct Mechanism = iota
	StaticProfile
	DynamicProfile
	ExceptionHandling
	DPEH
	SPEH
	AOT
)

// String returns the mechanism's registry name.
func (m Mechanism) String() string {
	if s, ok := policy.NameOf(int(m)); ok {
		return s
	}
	return "mechanism?"
}

// MechanismByName resolves a registry name or alias ("eh", "dynprof", …)
// to its mechanism ID.
func MechanismByName(name string) (Mechanism, bool) {
	id, ok := policy.ID(name)
	return Mechanism(id), ok
}

// Mechanisms returns every registered mechanism in registry order.
func Mechanisms() []Mechanism {
	names := policy.Names()
	out := make([]Mechanism, len(names))
	for i := range names {
		out[i] = Mechanism(i)
	}
	return out
}

// newMechanism builds a fresh strategy instance for the mechanism ID.
func (m Mechanism) newMechanism() (policy.Mechanism, error) {
	p, ok := policy.ByID(int(m))
	if !ok {
		return nil, fmt.Errorf("core: unknown mechanism id %d (have %s)",
			int(m), strings.Join(policy.Names(), ", "))
	}
	return p, nil
}

// Options configures the translator: the mechanism, its tuning knobs
// (paper Table II), and the BT software cost model (DESIGN.md §5).
type Options struct {
	Mechanism Mechanism

	// HeatThreshold is the two-phase heating threshold: a block is
	// interpreted this many times before being translated (DynamicProfile
	// and DPEH; the paper sweeps 10..5000 in Fig. 10 and uses 50 overall).
	HeatThreshold uint64

	// Rearrange enables code rearrangement (§IV-A): after the exception
	// handler has patched a site, the block is retranslated in place with
	// the MDA sequence inline, restoring I-cache locality.
	Rearrange bool

	// Retranslate enables block retranslation (§IV-C): when
	// RetransThreshold misalignment exceptions have hit one block, its
	// translation is invalidated and profiling restarts for it.
	Retranslate      bool
	RetransThreshold int

	// MultiVersion enables two-shape code (§IV-D) for sites that are
	// misaligned only part of the time. The default granularity is
	// per-site (Fig. 8 left): each mixed site checks its own address and
	// runs either the plain instruction or the MDA sequence.
	MultiVersion bool
	// MVBlockGranularity switches to the paper's preferred block
	// granularity ("generating multi-version code on basic-block
	// granularity can help to decrease the runtime overhead"): one
	// alignment check at the first mixed site selects between two copies
	// of the remainder of the block — an optimistic all-plain copy and a
	// pessimistic all-sequence copy. The check runs once per block
	// execution instead of once per site execution.
	MVBlockGranularity bool
	// MixedSiteMin/Max bound the per-site misalignment ratio (observed
	// during profiling) classifying a site as "mixed" for multi-version.
	MixedSiteMin, MixedSiteMax float64

	// Adaptive enables the "truly adaptive method" the paper describes but
	// rejects on cost grounds (§IV-D, Fig. 8 right): MDA-sequence sites are
	// instrumented with an aligned-streak counter, and when a site stays
	// aligned for AdaptiveStreak consecutive executions the block is
	// retranslated with that site reverted to a plain memory operation.
	// The instrumentation itself costs ~10 instructions (3 memory, 2
	// branches) per execution — implemented here to measure the paper's
	// claim that it is not worth pursuing.
	Adaptive       bool
	AdaptiveStreak uint8

	// NoChain disables translation chaining (exit stubs are never patched
	// into direct branches), for the ablation experiment: every block exit
	// then pays the BRKBT dispatch round trip.
	NoChain bool

	// Superblocks enables trace formation in the second translation phase
	// (DynamicProfile/DPEH): a hot block is translated together with its
	// dominant successors, laid out fall-through, with cold side exits.
	// This is the "hot regions … retranslated and further optimized" step
	// of the paper's two-phase framework (§III-C, Fig. 9). Under AOT the
	// dominant-successor profile does not exist, so formation falls back
	// to static traces: only always-taken edges (direct jumps and block
	// splits) are folded, never conditional branches.
	Superblocks bool

	// Traces enables the IR-less direct-chaining execution tier (DESIGN.md
	// §14): once a translated block is dispatched natively, the host
	// machine pre-resolves its instructions into a flat step list and
	// subsequent executions run the steps directly — no per-instruction
	// fetch/decode — chaining through patched exit branches into successor
	// traces without returning to the dispatcher. The tier is
	// simulation-invisible: guest state, machine counters, and engine
	// statistics are bit-identical with it on or off; only wall-clock
	// simulation speed changes. Host-side telemetry (traces formed, chain
	// follows, invalidations) is reported separately via Engine.TraceStats.
	Traces bool
	// TraceHeat is the number of native dispatches a translated block
	// absorbs before a trace is built over it. The default (1) traces on
	// the first native dispatch; larger values skip trace-building work
	// for blocks that never get hot. Requires Traces.
	TraceHeat int

	// IBTC enables an inline indirect-branch translation cache for RET
	// targets: a 256-entry direct-mapped guest-PC→host-PC table probed in
	// translated code, filled by the dispatcher on misses. This is the
	// content-associative lookup the DigitalBridge authors describe in
	// their companion paper (the paper's reference [19]); without it every
	// indirect transfer pays the BRKBT round trip into the monitor.
	IBTC bool

	// StaticSites is the train-run profile for StaticProfile: the set of
	// guest instruction addresses to translate into MDA sequences.
	StaticSites map[uint32]bool

	// StaticAlign layers the static alignment analysis (internal/align)
	// over the base mechanism: at Run entry the whole guest program is
	// analyzed with a per-register alignment lattice, and decisive verdicts
	// override the mechanism's site policy — proven-aligned sites emit
	// plain operations with no MDA sequence, trap hook, or adaptive
	// bookkeeping; proven-misaligned sites inline the MDA sequence eagerly
	// (zero first-trap cost). Unknown sites keep the base mechanism.
	// Verdicts are advisory for performance only: a wrong aligned verdict
	// degrades to the OS-style trap fixup, never to a wrong result.
	StaticAlign bool
	// AnalyzeCyclesPerInst is the modeled cost of the alignment analysis,
	// charged once per analyzed guest instruction at Run entry.
	AnalyzeCyclesPerInst uint64

	// AOT enables the ahead-of-time tier (DESIGN.md §13): at Run entry the
	// engine recovers the whole-binary CFG (or adopts AOTBlocks) and
	// pre-translates every reachable block before the first guest
	// instruction executes. Pre-translation is offline work — it charges no
	// simulated cycles and counts in Stats.AOTBlocks, not BlocksTranslated —
	// so the simulated run starts with a warm code cache. Indirect-target
	// misses and SMC invalidations fall back to the ordinary dynamic
	// translator (Stats.AOTFallbacks). AOT implies StaticAlign: the align
	// verdicts are what select plain / eager-sequence / trap-guarded shapes
	// per site during the offline pass.
	AOT bool
	// AOTBlocks, when non-nil, is a pre-recovered block-entry schedule (an
	// internal/aot image) adopted instead of running CFG recovery in-engine:
	// the serializable-image seam. Engine.Reset with these options re-adopts
	// the image into the fresh code cache at the next Run. Requires AOT.
	AOTBlocks []uint32

	// BT software costs, in host cycles (DESIGN.md §5).
	InterpCyclesPerInst    uint64
	TranslateCyclesPerInst uint64
	TranslateFixedCycles   uint64
	DispatchCycles         uint64
	EHHandlerCycles        uint64
	RearrangeFixedCycles   uint64
	RearrangePerInstCycles uint64

	// CodeCacheBytes bounds the code cache; on exhaustion the whole cache
	// is flushed (Dynamo-style, §IV-C) and translation restarts.
	CodeCacheBytes uint64

	// SliceInsts bounds one uninterrupted burst of host execution inside
	// RunContext: the machine runs at most this many instructions before
	// control returns to the dispatcher, which checks the context between
	// slices. Cancellation and deadlines therefore abort within one slice
	// rather than one full budget. Slicing is invisible to results and
	// statistics; it only bounds cancellation latency. Zero selects
	// DefaultSliceInsts.
	SliceInsts uint64

	// PatchRetryLimit bounds the exception handler's failed patch attempts
	// per site (stub zone full, assembler error, branch out of range).
	// Past the limit the trap-storm limiter demotes the site: the block is
	// invalidated so the retained-MDA record inlines the sequence on
	// retranslation, and the site falls back to permanent soft emulation
	// in the meantime.
	PatchRetryLimit int

	// FaultPlan, when non-nil, enables deterministic fault injection at
	// the points defined in internal/faultinject. The engine propagates
	// the plan to the machine for trap-delivery faults.
	FaultPlan *faultinject.Plan

	// SelfCheck runs Engine.CheckInvariants after every flush, patch,
	// translation, and retranslation; the first violation aborts Run.
	SelfCheck bool
}

// DefaultOptions returns the configuration used by the experiments for the
// given mechanism, with per-mechanism defaults matching the paper's §VI
// settings (DynamicProfile threshold 50; DPEH low threshold; retranslation
// threshold 4).
func DefaultOptions(m Mechanism) Options {
	heat := uint64(50)
	if p, ok := policy.ByID(int(m)); ok {
		heat = p.HeatThreshold()
	}
	o := Options{
		Mechanism:              m,
		HeatThreshold:          heat,
		RetransThreshold:       4,
		MixedSiteMin:           0.05,
		MixedSiteMax:           0.95,
		AdaptiveStreak:         200,
		InterpCyclesPerInst:    45,
		TranslateCyclesPerInst: 250,
		TranslateFixedCycles:   500,
		DispatchCycles:         60,
		EHHandlerCycles:        1500,
		RearrangeFixedCycles:   800,
		RearrangePerInstCycles: 120,
		AnalyzeCyclesPerInst:   40,
		CodeCacheBytes:         4 << 20,
		SliceInsts:             DefaultSliceInsts,
		PatchRetryLimit:        8,
	}
	if name, ok := policy.NameOf(int(m)); ok && name == "aot" {
		// The aot mechanism is the AOT tier: pre-translate everything from
		// the recovered CFG, with align verdicts choosing the site shapes.
		o.AOT = true
		o.StaticAlign = true
	}
	return o
}

// DefaultSliceInsts is the default cancellation-check granularity of
// RunContext, in host instructions: small enough that a deadline aborts in
// well under a millisecond of wall clock, large enough that the per-slice
// dispatch overhead vanishes against the simulated work.
const DefaultSliceInsts = 1 << 20

// normalize fills zero-valued tuning fields with the mechanism defaults, so
// hand-built Options behave sensibly.
func (o *Options) normalize() {
	d := DefaultOptions(o.Mechanism)
	if o.HeatThreshold == 0 {
		o.HeatThreshold = d.HeatThreshold
	}
	if o.RetransThreshold == 0 {
		o.RetransThreshold = d.RetransThreshold
	}
	if o.MixedSiteMin == 0 && o.MixedSiteMax == 0 {
		o.MixedSiteMin, o.MixedSiteMax = d.MixedSiteMin, d.MixedSiteMax
	}
	if o.AdaptiveStreak == 0 {
		o.AdaptiveStreak = d.AdaptiveStreak
	}
	if o.InterpCyclesPerInst == 0 {
		o.InterpCyclesPerInst = d.InterpCyclesPerInst
	}
	if o.TranslateCyclesPerInst == 0 {
		o.TranslateCyclesPerInst = d.TranslateCyclesPerInst
	}
	if o.TranslateFixedCycles == 0 {
		o.TranslateFixedCycles = d.TranslateFixedCycles
	}
	if o.DispatchCycles == 0 {
		o.DispatchCycles = d.DispatchCycles
	}
	if o.EHHandlerCycles == 0 {
		o.EHHandlerCycles = d.EHHandlerCycles
	}
	if o.RearrangeFixedCycles == 0 {
		o.RearrangeFixedCycles = d.RearrangeFixedCycles
	}
	if o.RearrangePerInstCycles == 0 {
		o.RearrangePerInstCycles = d.RearrangePerInstCycles
	}
	if o.AnalyzeCyclesPerInst == 0 {
		o.AnalyzeCyclesPerInst = d.AnalyzeCyclesPerInst
	}
	if o.CodeCacheBytes == 0 {
		o.CodeCacheBytes = d.CodeCacheBytes
	}
	if o.SliceInsts == 0 {
		o.SliceInsts = d.SliceInsts
	}
	if o.PatchRetryLimit == 0 {
		o.PatchRetryLimit = d.PatchRetryLimit
	}
	if o.Traces && o.TraceHeat == 0 {
		o.TraceHeat = 1
	}
}

// buildMechanism constructs the strategy object for the options: the base
// mechanism from the registry, wrapped in the §IV extension decorators the
// options enable. Decorators are capability-gated on the *base* strategy —
// profile-driven shapes (multi-version, adaptive) need a two-phase
// patching base, trap-driven reactions (retranslate, rearrange) a patching
// base — so the same Options work over any registered mechanism with the
// extensions it can actually honor. Validate rejects combinations the base
// cannot honor before this is reached.
//
// Wrap order encodes the engine's historical priorities: WithRetranslate
// sits inside WithRearrange (a block over the retranslation threshold is
// retranslated, not rearranged), and WithStaticAlign is outermost (a
// decisive analysis verdict outranks every profile- and trap-driven
// shape).
func (o *Options) buildMechanism() (policy.Mechanism, error) {
	m, err := o.Mechanism.newMechanism()
	if err != nil {
		return nil, err
	}
	profiled, patching := m.WantsInterpProfiling(), policy.Patches(m)
	if o.MultiVersion && profiled && patching {
		m = policy.WithMultiVersion(m, o.MixedSiteMin, o.MixedSiteMax)
	}
	if o.Adaptive && profiled && patching {
		m = policy.WithAdaptive(m)
	}
	if o.Retranslate && patching {
		m = policy.WithRetranslate(m, o.RetransThreshold)
	}
	if o.Rearrange && patching {
		m = policy.WithRearrange(m)
	}
	if o.StaticAlign {
		m = policy.WithStaticAlign(m)
	}
	return m, nil
}

// Validate rejects contradictory option combinations that previously
// no-opped silently. It checks the effective configuration — a normalized
// copy with mechanism defaults filled in — so a zero HeatThreshold only
// fails when the mechanism's own default is zero too. NewEngine validates
// automatically (the error surfaces from Run); CLIs call it up front for
// early diagnostics.
func (o Options) Validate() error {
	o.normalize()
	base, err := o.Mechanism.newMechanism()
	if err != nil {
		return err
	}
	profiled, patching := base.WantsInterpProfiling(), policy.Patches(base)
	name := base.Name()
	switch {
	case o.Rearrange && !patching:
		return fmt.Errorf("core: Rearrange needs an exception-patching mechanism, not %s", name)
	case o.Retranslate && !patching:
		return fmt.Errorf("core: Retranslate needs an exception-patching mechanism, not %s", name)
	case o.MultiVersion && !(profiled && patching):
		return fmt.Errorf("core: MultiVersion needs a profiling exception-patching mechanism (dpeh), not %s", name)
	case o.Adaptive && !(profiled && patching):
		return fmt.Errorf("core: Adaptive needs a profiling exception-patching mechanism (dpeh), not %s", name)
	case o.MVBlockGranularity && !o.MultiVersion:
		return fmt.Errorf("core: MVBlockGranularity requires MultiVersion")
	case o.MixedSiteMin > o.MixedSiteMax:
		return fmt.Errorf("core: MixedSiteMin %g > MixedSiteMax %g", o.MixedSiteMin, o.MixedSiteMax)
	case profiled && o.HeatThreshold == 0:
		return fmt.Errorf("core: %s is two-phase but the heating threshold is zero", name)
	case o.AOT && !o.StaticAlign:
		return fmt.Errorf("core: AOT needs StaticAlign: the offline pass has no profiles, align verdicts pick the site shapes")
	case o.AOT && profiled:
		return fmt.Errorf("core: AOT pre-translation is single-phase; %s interprets first to profile", name)
	case o.AOT && o.MultiVersion:
		return fmt.Errorf("core: MultiVersion needs interpretation profiles, which AOT pre-translation never gathers")
	case o.AOT && o.Adaptive:
		return fmt.Errorf("core: Adaptive needs interpretation profiles, which AOT pre-translation never gathers")
	case o.Superblocks && o.MVBlockGranularity:
		return fmt.Errorf("core: Superblocks cannot splice block-granularity multi-version code: the one alignment check at the first mixed site would guard sites of every folded block; use per-site MultiVersion with Superblocks, or drop MVBlockGranularity")
	case o.TraceHeat < 0:
		return fmt.Errorf("core: TraceHeat %d is negative; use a positive dispatch count (1 traces on first native dispatch)", o.TraceHeat)
	case o.TraceHeat != 0 && !o.Traces:
		return fmt.Errorf("core: TraceHeat tunes the trace tier but Traces is off; set Traces to enable the direct-chaining tier")
	case o.AOTBlocks != nil && !o.AOT:
		return fmt.Errorf("core: AOTBlocks is an AOT image schedule; set AOT to adopt it")
	}
	return nil
}

// Guest→host register mapping (paper Fig. 2: "register %eax and %ebx in X86
// are mapped to register R1 and R2 in the Alpha binary respectively, and
// register 21-30 of Alpha are used as temporal registers").
//
// Guest GPRs live in host registers sign-extended to 64 bits; guest
// quadword (F) registers live in host registers raw. Guest addresses are
// assumed to stay below 2^31 (standard 32-bit user space), so the
// sign-extended values are also valid host addresses.
func hostGPR(r guest.Reg) host.Reg { return host.R1 + host.Reg(r) }

func hostFR(f guest.FReg) host.Reg { return host.R9 + host.Reg(f) }

// BT temporaries.
const (
	tmpIndirect = host.R0  // indirect-exit guest target
	tmpA        = host.R21 // MDA sequence scratch
	tmpB        = host.R22
	tmpEA       = host.R23 // effective address
	tmpC        = host.R24
	tmpD        = host.R25
	tmpImm      = host.R27 // immediate materialization
	tmpCond     = host.R28 // branch condition materialization
)

// BRKBT service payloads.
const (
	svcHalt     = 0 // machine.HaltService
	svcIndirect = 1 // dispatch to guest PC in tmpIndirect
	// svcFault is the fault pad's payload: the access-fault handler parks
	// the machine on the pad after recording a pending guest fault, and the
	// dispatcher delivers it precisely through the interpreter.
	svcFault    = 2
	svcExitBase = 8 // payload-svcExitBase indexes the engine's exit table
	// svcAdaptiveFlag marks an adaptive-revert request; the low bits index
	// the engine's adaptive-site table. Exit IDs stay below the flag.
	svcAdaptiveFlag = 1 << 24
)

// btFaultBase is the host address of the fault pad: a single BRKBT(svcFault)
// written by configure. Trap handlers that detect a guest-visible fault
// resume the machine here instead of at the faulting access, so the machine
// stops at a dispatch boundary with no further memory traffic and the
// engine can rewind to the faulting guest instruction (DESIGN.md §12).
const btFaultBase = 0x7E00_0000

// counterBase is the host address of the BT's adaptive streak counters
// (guest-invisible data, kept below 2^31 so a single LDAH/LDA pair
// materializes any counter address).
const counterBase = 0x7C00_0000

// IBTC geometry: a direct-mapped table of (guest PC, host PC) quadword
// pairs in BT-private memory.
const (
	ibtcBase    = 0x7D00_0000
	ibtcEntries = 256
	ibtcShift   = 2 // index = (guestPC >> ibtcShift) & (ibtcEntries-1)
)

// Stats counts BT-level events (machine-level counters such as cycles and
// traps live in machine.Counters).
type Stats struct {
	BlocksTranslated uint64 // translations performed (incl. re-translations)
	Retranslations   uint64 // §IV-C invalidate-and-retranslate events
	Rearrangements   uint64 // §IV-A repositioning events
	Patches          uint64 // exception-handler branch patches
	MDAStubs         uint64 // MDA sequences emitted by the handler
	InterpretedInsts uint64 // guest instructions interpreted (phase 1)
	NativeBlockRuns  uint64 // dispatches into translated code
	Links            uint64 // exit stubs patched into direct branches
	Flushes          uint64 // full code cache flushes
	InterpretedMDAs  uint64 // MDAs handled softly during interpretation
	MultiVersion     uint64 // blocks containing per-site multi-version code
	AdaptiveSites    uint64 // sites emitted with adaptive instrumentation
	AdaptiveReverts  uint64 // sites reverted to plain operations
	IBTCFills        uint64 // indirect-branch cache entries installed
	Superblocks      uint64 // multi-block traces formed
	TraceBlocks      uint64 // basic blocks folded into traces

	// Static alignment analysis (Options.StaticAlign).
	StaticAnalyzedInsts   uint64 // guest instructions the analysis visited
	StaticAlignedSites    uint64 // translated sites proven aligned (plain, no trap hook)
	StaticMisalignedSites uint64 // translated sites proven misaligned (eager MDA)
	StaticUnknownSites    uint64 // translated sites left to the base mechanism
	StaticAlignViolations uint64 // traps at host PCs claimed proven-aligned (soundness bug)

	// Degradation-ladder counters (failure modes that previously degraded
	// silently; see DESIGN.md §7).
	StubZoneFull       uint64 // stub allocations refused by the exception handler
	UnpatchableSites   uint64 // patch attempts abandoned (assembler error, branch out of range, unpatchable op)
	InterpFallbacks    uint64 // executions of blacklisted blocks via the interpreter
	TrapStormDemotions uint64 // sites demoted to soft emulation by the retry limiter
	InjectedFaults     uint64 // faults fired by the injection plan (all points)

	// Guest-visible memory faults and self-modifying code (DESIGN.md §12).
	GuestFaults        uint64 // precise guest faults delivered (page-protection violations)
	GuestFaultResumes  uint64 // translated-code traps handed to the interpreter for precise delivery
	SMCInvalidations   uint64 // translations discarded because the guest wrote its own code
	SMCDecodeFlushes   uint64 // decode-cache entries dropped by guest code writes
	UnattributedFaults uint64 // access traps outside any translation, re-executed raw

	// Ahead-of-time tier (Options.AOT; DESIGN.md §13).
	AOTBlocks    uint64 // blocks pre-translated offline from the recovered CFG
	AOTHits      uint64 // dispatches that landed in a pre-translated block
	AOTFallbacks uint64 // dynamic (JIT) translations performed despite AOT (indirect miss, SMC, flush)
}
