package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mdabt/internal/guest"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
)

// mdaLoopImg builds a hot loop with one always-misaligned 4-byte load,
// iterating n times.
func mdaLoopImg(t *testing.T, n int32) []byte {
	return buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		// Enter the loop with a jump so the loop head is a block entry and
		// the loop body is translated exactly once (no block replication).
		b.Jmp("loop")
		b.Label("loop")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 2})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, n)
		b.Jcc(guest.L, "loop")
		b.Halt()
	})
}

// lateOnsetImg builds a loop whose memory site is aligned for the first
// `flip` iterations and misaligned afterwards (Table III behaviour).
func lateOnsetImg(t *testing.T, flip, total int32) []byte {
	return buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Label("loop")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 4})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, flip)
		b.Jcc(guest.E, "flip")
		b.CmpImm(guest.ECX, total)
		b.Jcc(guest.L, "loop")
		b.Halt()
		b.Label("flip")
		b.ALUImm(guest.ADDri, guest.EBX, 2)
		b.Jmp("loop")
	})
}

func engineFor(t *testing.T, img []byte, opt Options) *Engine {
	t.Helper()
	m := mem.New()
	m.WriteBytes(guest.CodeBase, img)
	m.WriteBytes(guest.DataBase, patternData(256))
	mach := machine.New(m, machine.DefaultParams())
	return NewEngine(m, mach, opt)
}

func mustRun(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Run(guest.CodeBase, 500_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestExceptionHandlingPatchesOnce(t *testing.T) {
	e := engineFor(t, mdaLoopImg(t, 1000), DefaultOptions(ExceptionHandling))
	mustRun(t, e)
	c := e.Mach.Counters()
	if c.MisalignTraps != 1 {
		t.Errorf("traps = %d, want 1 (patched after first)", c.MisalignTraps)
	}
	s := e.Stats()
	if s.Patches != 1 || s.MDAStubs != 1 {
		t.Errorf("patches/stubs = %d/%d, want 1/1", s.Patches, s.MDAStubs)
	}
	if s.InterpretedInsts != 0 {
		t.Errorf("EH interpreted %d insts, want 0 (translate-on-first-touch)", s.InterpretedInsts)
	}
}

func TestDirectNeverTraps(t *testing.T) {
	e := engineFor(t, mdaLoopImg(t, 1000), DefaultOptions(Direct))
	mustRun(t, e)
	if traps := e.Mach.Counters().MisalignTraps; traps != 0 {
		t.Errorf("direct method trapped %d times, want 0", traps)
	}
}

// alignedLoopImg is a loop whose memory traffic is entirely aligned — the
// common case where the Direct method's indiscriminate MDA sequences are
// pure overhead (paper §VI-C: "generally worse than all others").
func alignedLoopImg(t *testing.T, n int32) []byte {
	return buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Jmp("loop")
		b.Label("loop")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX})
		b.Load(guest.LD4, guest.ESI, guest.MemRef{Base: guest.EBX, Disp: 4})
		b.Load(guest.LD2Z, guest.EDI, guest.MemRef{Base: guest.EBX, Disp: 8})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.Store(guest.ST4, guest.MemRef{Base: guest.EBX, Disp: 12}, guest.EAX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, n)
		b.Jcc(guest.L, "loop")
		b.Halt()
	})
}

func TestDirectOverheadOnAlignedCode(t *testing.T) {
	direct := engineFor(t, alignedLoopImg(t, 1000), DefaultOptions(Direct))
	mustRun(t, direct)
	eh := engineFor(t, alignedLoopImg(t, 1000), DefaultOptions(ExceptionHandling))
	mustRun(t, eh)
	di, ei := direct.Mach.Counters().Insts, eh.Mach.Counters().Insts
	if di <= ei {
		t.Errorf("direct insts %d not greater than EH insts %d on aligned code", di, ei)
	}
	dc, ec := direct.Mach.Counters().Cycles, eh.Mach.Counters().Cycles
	if dc <= ec {
		t.Errorf("direct cycles %d not greater than EH cycles %d on aligned code", dc, ec)
	}
}

// TestDirectWinsOnAlwaysMisaligned documents the inverse case: when every
// access is misaligned, inlining the sequence up front beats EH's
// stub-and-branch code shape (the paper's Fig. 16 outliers).
func TestDirectWinsOnAlwaysMisaligned(t *testing.T) {
	direct := engineFor(t, mdaLoopImg(t, 1000), DefaultOptions(Direct))
	mustRun(t, direct)
	eh := engineFor(t, mdaLoopImg(t, 1000), DefaultOptions(ExceptionHandling))
	mustRun(t, eh)
	if direct.Mach.Counters().Insts >= eh.Mach.Counters().Insts {
		t.Errorf("direct insts %d not smaller than EH insts %d on always-MDA loop",
			direct.Mach.Counters().Insts, eh.Mach.Counters().Insts)
	}
}

func TestDynamicProfilingCatchesHotSite(t *testing.T) {
	opt := DefaultOptions(DynamicProfile)
	opt.HeatThreshold = 5
	e := engineFor(t, mdaLoopImg(t, 1000), opt)
	mustRun(t, e)
	// Site does MDAs during profiling, so the translation inlines the
	// sequence: zero traps.
	if traps := e.Mach.Counters().MisalignTraps; traps != 0 {
		t.Errorf("traps = %d, want 0 (site caught by profiling)", traps)
	}
	if e.Stats().InterpretedInsts == 0 {
		t.Error("no interpretation happened")
	}
}

func TestDynamicProfilingMissesLateOnset(t *testing.T) {
	opt := DefaultOptions(DynamicProfile)
	opt.HeatThreshold = 5
	e := engineFor(t, lateOnsetImg(t, 500, 1000), opt)
	mustRun(t, e)
	// The site turns misaligned only after translation; DynamicProfile has
	// no patching, so every late MDA traps (~500).
	traps := e.Mach.Counters().MisalignTraps
	if traps < 400 {
		t.Errorf("traps = %d, want ~500 (every late-onset MDA)", traps)
	}
}

func TestDPEHPatchesLateOnset(t *testing.T) {
	opt := DefaultOptions(DPEH)
	opt.HeatThreshold = 5
	e := engineFor(t, lateOnsetImg(t, 500, 1000), opt)
	mustRun(t, e)
	// DPEH patches the late-onset site on its first trap.
	traps := e.Mach.Counters().MisalignTraps
	if traps > 3 {
		t.Errorf("traps = %d, want ≤3 (patched after first)", traps)
	}
	if e.Stats().Patches == 0 {
		t.Error("no patches recorded")
	}
}

func TestRetranslationTriggers(t *testing.T) {
	// Several sites in one block turn misaligned after translation: with
	// retranslation enabled the block is invalidated and re-profiled, and
	// the retranslated code inlines the discovered sequences.
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Label("loop")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 4})
		b.Load(guest.LD4, guest.ESI, guest.MemRef{Base: guest.EBX, Disp: 8})
		b.Load(guest.LD4, guest.EDI, guest.MemRef{Base: guest.EBX, Disp: 12})
		b.Load(guest.LD4, guest.EBP, guest.MemRef{Base: guest.EBX, Disp: 16})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 300)
		b.Jcc(guest.E, "flip")
		b.CmpImm(guest.ECX, 600)
		b.Jcc(guest.L, "loop")
		b.Halt()
		b.Label("flip")
		b.ALUImm(guest.ADDri, guest.EBX, 2)
		b.Jmp("loop")
	})
	opt := DefaultOptions(DPEH)
	opt.HeatThreshold = 5
	opt.Retranslate = true
	opt.RetransThreshold = 4
	e := engineFor(t, img, opt)
	mustRun(t, e)
	if e.Stats().Retranslations == 0 {
		t.Error("retranslation never triggered")
	}
	// After retranslation + re-profiling the sites are inlined; traps stay
	// bounded (threshold + a handful during re-heat).
	if traps := e.Mach.Counters().MisalignTraps; traps > 20 {
		t.Errorf("traps = %d, want small after retranslation", traps)
	}
}

func TestRearrangementRetranslatesInline(t *testing.T) {
	opt := DefaultOptions(ExceptionHandling)
	opt.Rearrange = true
	e := engineFor(t, mdaLoopImg(t, 1000), opt)
	mustRun(t, e)
	s := e.Stats()
	if s.Rearrangements == 0 {
		t.Fatal("no rearrangements recorded")
	}
	if s.Patches != 0 {
		t.Errorf("rearrangement should replace stub patching, got %d patches", s.Patches)
	}
	// The rearranged block inlines the sequence: one trap total.
	if traps := e.Mach.Counters().MisalignTraps; traps != 1 {
		t.Errorf("traps = %d, want 1", traps)
	}
}

func TestMultiVersionEmitsTwoVersions(t *testing.T) {
	// Site alternates alignment: multi-version should emit a two-version
	// block and avoid both traps and constant MDA-sequence overhead.
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Label("loop")
		b.Mov(guest.ESI, guest.ECX)
		b.ALUImm(guest.ANDri, guest.ESI, 2)
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, HasIndex: true, Index: guest.ESI, Scale: 1, Disp: 8})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 500)
		b.Jcc(guest.L, "loop")
		b.Halt()
	})
	opt := DefaultOptions(DPEH)
	opt.HeatThreshold = 8
	opt.MultiVersion = true
	e := engineFor(t, img, opt)
	mustRun(t, e)
	if e.Stats().MultiVersion == 0 {
		t.Fatal("no multi-version block emitted")
	}
	if traps := e.Mach.Counters().MisalignTraps; traps > 2 {
		t.Errorf("traps = %d, want ~0 with multi-version", traps)
	}
}

func TestBlockLinkingAvoidsDispatch(t *testing.T) {
	e := engineFor(t, mdaLoopImg(t, 10000), DefaultOptions(ExceptionHandling))
	mustRun(t, e)
	s := e.Stats()
	if s.Links == 0 {
		t.Fatal("no exits were linked")
	}
	// Once the loop back-edge is linked, iterations stay native: the number
	// of dispatches must be tiny compared to 10000 iterations.
	if s.NativeBlockRuns > 50 {
		t.Errorf("NativeBlockRuns = %d, want ≪ iterations (linking broken)", s.NativeBlockRuns)
	}
}

func TestStaticProfileUsesTrainSites(t *testing.T) {
	img := mdaLoopImg(t, 1000)
	sites := censusSites(t, img, patternData(256))
	if len(sites) == 0 {
		t.Fatal("census found no MDA sites")
	}
	opt := DefaultOptions(StaticProfile)
	opt.StaticSites = sites
	e := engineFor(t, img, opt)
	mustRun(t, e)
	if traps := e.Mach.Counters().MisalignTraps; traps != 0 {
		t.Errorf("traps = %d, want 0 (profiled sites inlined)", traps)
	}
	// With an empty (unrepresentative) profile, every MDA traps.
	opt.StaticSites = nil
	e2 := engineFor(t, img, opt)
	mustRun(t, e2)
	if traps := e2.Mach.Counters().MisalignTraps; traps < 900 {
		t.Errorf("traps = %d, want ~1000 with empty train profile", traps)
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	img := buildImg(t, func(b *guest.Builder) {
		b.Label("spin")
		b.Jmp("spin")
	})
	e := engineFor(t, img, DefaultOptions(ExceptionHandling))
	err := e.Run(guest.CodeBase, 10_000)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestOrphanConditionalBranchFails(t *testing.T) {
	// A JCC with no flag-setting instruction in its block is a documented
	// translator restriction; it must fail loudly, not miscompile.
	b := guest.NewBuilder()
	b.Label("x")
	b.Jcc(guest.E, "x")
	b.Halt()
	img, err := b.Build(guest.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	e := engineFor(t, img, DefaultOptions(ExceptionHandling))
	if err := e.Run(guest.CodeBase, 1000); err == nil {
		t.Fatal("orphan JCC translated without error")
	}
}

func TestCodeCacheFlush(t *testing.T) {
	opt := DefaultOptions(ExceptionHandling)
	opt.CodeCacheBytes = 128 // absurdly small: forces flushes
	// A program with many distinct blocks.
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.EAX, 0)
		for i := 0; i < 30; i++ {
			b.ALUImm(guest.ADDri, guest.EAX, int32(i))
			b.Jmp(blockLabel(i))
			b.Label(blockLabel(i))
		}
		b.Halt()
	})
	e := engineFor(t, img, opt)
	mustRun(t, e)
	if e.Stats().Flushes == 0 {
		t.Error("tiny code cache never flushed")
	}
	if got := e.FinalCPU().R[guest.EAX]; got != 435 { // sum 0..29
		t.Errorf("eax = %d, want 435", got)
	}
}

func blockLabel(i int) string { return "b" + string(rune('A'+i/26)) + string(rune('a'+i%26)) }

func TestCensusTableIData(t *testing.T) {
	img := mdaLoopImg(t, 500)
	m := mem.New()
	m.WriteBytes(guest.CodeBase, img)
	m.WriteBytes(guest.DataBase, patternData(256))
	c, err := RunCensus(m, guest.CodeBase, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatal("census did not halt")
	}
	if c.NMI() != 1 {
		t.Errorf("NMI = %d, want 1", c.NMI())
	}
	if c.MDAs != 500 {
		t.Errorf("MDAs = %d, want 500", c.MDAs)
	}
	if c.Ratio() <= 0 || c.Ratio() > 1 {
		t.Errorf("Ratio = %v out of range", c.Ratio())
	}
	lt, eq, gt, always := c.RatioClasses()
	if lt != 0 || eq != 0 || gt != 0 || always != 1 {
		t.Errorf("classes = %d/%d/%d/%d, want 0/0/0/1", lt, eq, gt, always)
	}
}

func TestRatioClasses(t *testing.T) {
	c := &Census{Sites: map[uint32]*CensusSite{
		1: {MDA: 1, Aligned: 9},  // <50%
		2: {MDA: 5, Aligned: 5},  // =50%
		3: {MDA: 9, Aligned: 1},  // >50%
		4: {MDA: 10, Aligned: 0}, // =100%
		5: {MDA: 0, Aligned: 10}, // not an MDA site
	}}
	lt, eq, gt, always := c.RatioClasses()
	if lt != 1 || eq != 1 || gt != 1 || always != 1 {
		t.Errorf("classes = %d/%d/%d/%d, want 1/1/1/1", lt, eq, gt, always)
	}
}

func TestMechanismString(t *testing.T) {
	for m, want := range map[Mechanism]string{
		Direct: "direct", StaticProfile: "static-profile",
		DynamicProfile: "dynamic-profile", ExceptionHandling: "exception-handling",
		DPEH: "dpeh", SPEH: "speh",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if Mechanism(99).String() != "mechanism?" {
		t.Error("unknown mechanism string")
	}
}

func TestCodeCacheAllocator(t *testing.T) {
	cc := newCodeCache(1024, nil)
	a1, err := cc.allocBlock(100)
	if err != nil || a1 != CodeCacheBase {
		t.Fatalf("allocBlock = %#x, %v", a1, err)
	}
	a2, _ := cc.allocBlock(1) // rounds to 4
	if a2 != CodeCacheBase+100 {
		t.Fatalf("second block at %#x", a2)
	}
	s1, err := cc.allocStub(40)
	if err != nil || s1 != CodeCacheBase+1024-40 {
		t.Fatalf("allocStub = %#x, %v", s1, err)
	}
	if cc.used() != 100+4+40 {
		t.Fatalf("used = %d", cc.used())
	}
	if _, err := cc.allocBlock(2000); err == nil {
		t.Fatal("oversized allocBlock succeeded")
	}
	if _, err := cc.allocStub(2000); err == nil {
		t.Fatal("oversized allocStub succeeded")
	}
	cc.reset()
	if cc.used() != 0 {
		t.Fatal("reset did not clear usage")
	}
}

func TestEngineAccessors(t *testing.T) {
	e := engineFor(t, mdaLoopImg(t, 10), DefaultOptions(ExceptionHandling))
	mustRun(t, e)
	if e.Blocks() == 0 {
		t.Error("no blocks live")
	}
	if e.CodeCacheUsed() == 0 {
		t.Error("code cache empty after run")
	}
	if e.Stats().BlocksTranslated == 0 {
		t.Error("no translations counted")
	}
}

// realignImg builds a loop whose site is misaligned for the first phase
// (so profiling inlines the MDA sequence) and aligned afterwards — the
// scenario the paper's "truly adaptive method" (§IV-D) targets.
func realignImg(t *testing.T, flip, total int32) []byte {
	return buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase+2) // misaligned base
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Jmp("loop")
		b.Label("loop")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 4})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, flip)
		b.Jcc(guest.E, "flip")
		b.CmpImm(guest.ECX, total)
		b.Jcc(guest.L, "loop")
		b.Halt()
		b.Label("flip")
		b.ALUImm(guest.ADDri, guest.EBX, 2) // aligned from now on
		b.Jmp("loop")
	})
}

func TestAdaptiveRevertsRealignedSite(t *testing.T) {
	opt := DefaultOptions(DPEH)
	opt.HeatThreshold = 5
	opt.Adaptive = true
	opt.AdaptiveStreak = 50
	e := engineFor(t, realignImg(t, 200, 3000), opt)
	mustRun(t, e)
	s := e.Stats()
	if s.AdaptiveSites == 0 {
		t.Fatal("no adaptive sites emitted")
	}
	if s.AdaptiveReverts == 0 {
		t.Fatal("site never reverted despite 2800 aligned executions")
	}
	// After the revert the site is a plain op; no further traps occur
	// because it stays aligned.
	if traps := e.Mach.Counters().MisalignTraps; traps > 2 {
		t.Errorf("traps = %d, want ≤2", traps)
	}
}

func TestAdaptiveCheaperThanSeqAfterRealign(t *testing.T) {
	// With a long aligned tail, adaptive (which reverts to a 1-inst plain
	// op) must eventually beat the permanent MDA sequence... but the paper
	// argues the instrumentation usually costs more than it saves. Verify
	// both directions: adaptive wins on an extreme realign workload, and
	// loses on a stable always-misaligned one.
	img := realignImg(t, 100, 20000)
	opt := DefaultOptions(DPEH)
	opt.HeatThreshold = 5
	plain := engineFor(t, img, opt)
	mustRun(t, plain)
	optA := opt
	optA.Adaptive = true
	optA.AdaptiveStreak = 50
	adaptive := engineFor(t, img, optA)
	mustRun(t, adaptive)
	if adaptive.Mach.Counters().Cycles >= plain.Mach.Counters().Cycles {
		t.Errorf("adaptive (%d cycles) not cheaper than DPEH (%d) on realigning workload",
			adaptive.Mach.Counters().Cycles, plain.Mach.Counters().Cycles)
	}

	stable := mdaLoopImg(t, 20000)
	plain2 := engineFor(t, stable, opt)
	mustRun(t, plain2)
	adaptive2 := engineFor(t, stable, optA)
	mustRun(t, adaptive2)
	if adaptive2.Mach.Counters().Cycles <= plain2.Mach.Counters().Cycles {
		t.Errorf("adaptive (%d cycles) not costlier than DPEH (%d) on stable workload (paper's claim)",
			adaptive2.Mach.Counters().Cycles, plain2.Mach.Counters().Cycles)
	}
}

func TestAdaptiveStateCorrect(t *testing.T) {
	// Architectural state must match the reference interpreter through the
	// revert machinery.
	img := realignImg(t, 150, 2000)
	refCPU, refArena := reference(t, img, patternData(64))
	opt := DefaultOptions(DPEH)
	opt.HeatThreshold = 5
	opt.Adaptive = true
	opt.AdaptiveStreak = 20
	gotCPU, gotArena, e := runDBT(t, img, patternData(64), opt)
	compareState(t, "adaptive", refCPU, gotCPU, refArena, gotArena)
	if e.Stats().AdaptiveReverts == 0 {
		t.Error("revert machinery never exercised")
	}
}

// callHeavyImg builds a call-heavy loop (every iteration does CALL/RET),
// the workload shape the indirect-branch translation cache targets.
func callHeavyImg(t *testing.T, n int32) []byte {
	return buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Jmp("loop")
		b.Label("loop")
		b.Call("fn")
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, n)
		b.Jcc(guest.L, "loop")
		b.Halt()
		b.Label("fn")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.Ret()
	})
}

func TestIBTCCutsIndirectDispatches(t *testing.T) {
	n := int32(5000)
	base := engineFor(t, callHeavyImg(t, n), DefaultOptions(ExceptionHandling))
	mustRun(t, base)
	opt := DefaultOptions(ExceptionHandling)
	opt.IBTC = true
	ibtc := engineFor(t, callHeavyImg(t, n), opt)
	mustRun(t, ibtc)

	if ibtc.Stats().IBTCFills == 0 {
		t.Fatal("IBTC never filled")
	}
	// Every RET without IBTC is a BRKBT round trip; with IBTC almost none.
	bb, ib := base.Mach.Counters().Brks, ibtc.Mach.Counters().Brks
	if ib >= bb/10 {
		t.Errorf("IBTC brks = %d, want ≪ baseline %d", ib, bb)
	}
	if ic, bc := ibtc.Mach.Counters().Cycles, base.Mach.Counters().Cycles; ic >= bc {
		t.Errorf("IBTC cycles %d not below baseline %d", ic, bc)
	}
	// Architectural state identical.
	if base.FinalCPU().R[guest.EAX] != ibtc.FinalCPU().R[guest.EAX] {
		t.Error("IBTC changed program semantics")
	}
}

func TestIBTCSurvivesInvalidation(t *testing.T) {
	// Retranslation invalidates blocks the IBTC may point to; stale entries
	// must be evicted, not followed into reused memory.
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Jmp("loop")
		b.Label("loop")
		b.Call("fn")
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 2000)
		b.Jcc(guest.L, "loop")
		b.Halt()
		b.Label("fn")
		// Four sites that all flip misaligned at iteration 500 → the block
		// containing them gets retranslated under DPEH+Retranslate.
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 4})
		b.Load(guest.LD4, guest.ESI, guest.MemRef{Base: guest.EBX, Disp: 8})
		b.Load(guest.LD4, guest.EDI, guest.MemRef{Base: guest.EBX, Disp: 12})
		b.Load(guest.LD4, guest.EBP, guest.MemRef{Base: guest.EBX, Disp: 16})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.CmpImm(guest.ECX, 500)
		b.Jcc(guest.NE, "noflip")
		b.ALUImm(guest.ADDri, guest.EBX, 2)
		b.Label("noflip")
		b.Ret()
	})
	opt := DefaultOptions(DPEH)
	opt.HeatThreshold = 5
	opt.Retranslate = true
	opt.RetransThreshold = 2
	opt.IBTC = true
	e := engineFor(t, img, opt)
	refCPU, refArena := reference(t, img, patternData(256))
	mustRun(t, e)
	gotArena := make([]byte, 256)
	e.Mem.ReadBytes(guest.DataBase, gotArena)
	compareState(t, "ibtc-invalidate", refCPU, e.FinalCPU(), refArena, gotArena)
}

func TestEventLog(t *testing.T) {
	opt := DefaultOptions(ExceptionHandling)
	e := engineFor(t, mdaLoopImg(t, 500), opt)
	e.EnableEventLog()
	mustRun(t, e)
	events, dropped := e.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	if dropped != 0 {
		t.Errorf("dropped %d events on a tiny run", dropped)
	}
	kinds := map[EventKind]int{}
	for i, ev := range events {
		kinds[ev.Kind]++
		if i > 0 && ev.Cycle < events[i-1].Cycle {
			t.Fatalf("events out of order at %d", i)
		}
		if len(ev.String()) == 0 {
			t.Fatal("empty event string")
		}
	}
	if kinds[EvTranslate] == 0 || kinds[EvTrap] == 0 || kinds[EvPatch] == 0 || kinds[EvLink] == 0 {
		t.Errorf("missing expected event kinds: %v", kinds)
	}
	// Disabled log costs nothing and returns nothing.
	e2 := engineFor(t, mdaLoopImg(t, 10), opt)
	mustRun(t, e2)
	if evs, _ := e2.Events(); evs != nil {
		t.Error("events recorded without EnableEventLog")
	}
}

func TestEventLogRingBound(t *testing.T) {
	// Force more than eventLogCap events via constant link/dispatch churn:
	// a call-heavy loop with IBTC disabled dispatches every iteration, but
	// dispatches aren't events — use NoChain + many blocks? Simplest:
	// exercise the ring directly.
	e := engineFor(t, mdaLoopImg(t, 10), DefaultOptions(ExceptionHandling))
	e.EnableEventLog()
	for i := 0; i < eventLogCap+100; i++ {
		e.event(EvLink, uint32(i), 0, "")
	}
	events, dropped := e.Events()
	if len(events) != eventLogCap {
		t.Fatalf("ring holds %d, want %d", len(events), eventLogCap)
	}
	if dropped != 100 {
		t.Fatalf("dropped = %d, want 100", dropped)
	}
	if events[0].GuestPC != 100 {
		t.Fatalf("oldest event guestPC = %d, want 100", events[0].GuestPC)
	}
	if events[len(events)-1].GuestPC != uint32(eventLogCap+99) {
		t.Fatalf("newest event wrong: %d", events[len(events)-1].GuestPC)
	}
}

// multiBlockLoopImg builds a loop whose body spans several basic blocks
// with a dominant path — the superblock formation target.
func multiBlockLoopImg(t *testing.T, n int32) []byte {
	return buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Jmp("loop")
		b.Label("loop")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 2}) // MDA
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.Mov(guest.ESI, guest.ECX)
		b.ALUImm(guest.ANDri, guest.ESI, 1023)
		b.CmpImm(guest.ESI, 1023)
		b.Jcc(guest.E, "rare") // cold path, taken 1/1024
		b.Label("hotcont")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 8})
		b.ALU(guest.XORrr, guest.EAX, guest.EDX)
		b.Jmp("tail")
		b.Label("tail")
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, n)
		b.Jcc(guest.L, "loop")
		b.Halt()
		b.Label("rare")
		b.ALUImm(guest.XORri, guest.EAX, 0x5A5A)
		b.Jmp("hotcont")
	})
}

func TestSuperblockFormation(t *testing.T) {
	opt := DefaultOptions(DPEH)
	opt.HeatThreshold = 8
	opt.Superblocks = true
	e := engineFor(t, multiBlockLoopImg(t, 4000), opt)
	mustRun(t, e)
	s := e.Stats()
	if s.Superblocks == 0 {
		t.Fatal("no superblocks formed")
	}
	if s.TraceBlocks < 2*s.Superblocks {
		t.Errorf("traces too short: %d traces, %d blocks", s.Superblocks, s.TraceBlocks)
	}
	// Dump must render the trace with non-contiguous guest PCs.
	found := false
	for _, pc := range e.TranslatedPCs() {
		out, _ := e.DumpBlock(pc)
		if strings.Contains(out, "trace(") {
			found = true
		}
	}
	if !found {
		t.Error("no trace in block dumps")
	}
}

func TestSuperblockCosim(t *testing.T) {
	img := multiBlockLoopImg(t, 3000)
	refCPU, refArena := reference(t, img, patternData(256))
	for _, mech := range []Mechanism{DynamicProfile, DPEH} {
		opt := DefaultOptions(mech)
		opt.HeatThreshold = 6
		opt.Superblocks = true
		gotCPU, gotArena, e := runDBT(t, img, patternData(256), opt)
		compareState(t, "superblock/"+mech.String(), refCPU, gotCPU, refArena, gotArena)
		if e.Stats().Superblocks == 0 {
			t.Errorf("%v: no superblocks formed", mech)
		}
	}
	// Superblocks combined with every DPEH extension.
	opt := DefaultOptions(DPEH)
	opt.HeatThreshold = 6
	opt.Superblocks = true
	opt.Retranslate = true
	opt.MultiVersion = true
	opt.IBTC = true
	opt.Adaptive = true
	opt.AdaptiveStreak = 30
	gotCPU, gotArena, _ := runDBT(t, img, patternData(256), opt)
	compareState(t, "superblock/all", refCPU, gotCPU, refArena, gotArena)
}

func TestSuperblockNotSlower(t *testing.T) {
	// Long enough that the one-time trace-translation cost (and the
	// duplicated side-entry translations) amortize.
	img := multiBlockLoopImg(t, 40000)
	opt := DefaultOptions(DPEH)
	opt.HeatThreshold = 8
	base := engineFor(t, img, opt)
	mustRun(t, base)
	opt.Superblocks = true
	sb := engineFor(t, img, opt)
	mustRun(t, sb)
	bc, sc := base.Mach.Counters().Cycles, sb.Mach.Counters().Cycles
	if float64(sc) > 1.02*float64(bc) {
		t.Errorf("superblocks %d cycles vs %d baseline (>2%% regression)", sc, bc)
	}
}

func TestIndexedAddressingMDAPatching(t *testing.T) {
	// A site whose address needs materialization (index + big disp) still
	// patches correctly: the faulting instruction's base register is the
	// BT temporary, and the stub must reproduce the same addressing.
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Jmp("loop")
		b.Label("loop")
		b.Mov(guest.ESI, guest.ECX)
		b.ALUImm(guest.ANDri, guest.ESI, 7)
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, HasIndex: true, Index: guest.ESI, Scale: 8, Disp: 40002}) // misaligned: 40002%4 != 0
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 400)
		b.Jcc(guest.L, "loop")
		b.Halt()
	})
	refCPU, refArena := reference(t, img, patternData(64*1024))
	gotCPU, gotArena, e := runDBT(t, img, patternData(64*1024), DefaultOptions(ExceptionHandling))
	compareState(t, "indexed-patch", refCPU, gotCPU, refArena, gotArena)
	if e.Stats().Patches == 0 {
		t.Fatal("no patches on materialized-address site")
	}
	if traps := e.Mach.Counters().MisalignTraps; traps > 3 {
		t.Errorf("traps = %d, want ~1 (patched)", traps)
	}
}

func TestMixed8ByteSiteMultiVersion(t *testing.T) {
	// Multi-version must handle quadword (F-register) sites too.
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.Jmp("loop")
		b.Label("loop")
		b.Mov(guest.ESI, guest.ECX)
		b.ALUImm(guest.ANDri, guest.ESI, 1)
		b.ALUImm(guest.IMULri, guest.ESI, 4)
		b.ALU(guest.ADDrr, guest.ESI, guest.EBX)
		b.FLoad(guest.F0, guest.MemRef{Base: guest.ESI, Disp: 8}) // alternates aligned/+4
		b.FAdd(guest.F1, guest.F0)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 600)
		b.Jcc(guest.L, "loop")
		b.Halt()
	})
	refCPU, refArena := reference(t, img, patternData(64))
	opt := DefaultOptions(DPEH)
	opt.HeatThreshold = 8
	opt.MultiVersion = true
	gotCPU, gotArena, e := runDBT(t, img, patternData(64), opt)
	compareState(t, "mv-quadword", refCPU, gotCPU, refArena, gotArena)
	if e.Stats().MultiVersion == 0 {
		t.Fatal("quadword mixed site did not trigger multi-version")
	}
	if traps := e.Mach.Counters().MisalignTraps; traps > 2 {
		t.Errorf("traps = %d with multi-version", traps)
	}
}

func TestStatsDumpMentionsEverything(t *testing.T) {
	opt := DefaultOptions(DPEH)
	opt.HeatThreshold = 4
	opt.Retranslate = true
	e := engineFor(t, lateOnsetImg(t, 100, 400), opt)
	mustRun(t, e)
	out := e.DumpStats()
	for _, frag := range []string{"cycles=", "traps=", "translated=", "patches=", "code-cache="} {
		if !strings.Contains(out, frag) {
			t.Errorf("DumpStats lacks %q:\n%s", frag, out)
		}
	}
}

func TestProfileDBRoundTrip(t *testing.T) {
	img := mdaLoopImg(t, 200)
	m := mem.New()
	m.WriteBytes(guest.CodeBase, img)
	m.WriteBytes(guest.DataBase, patternData(256))
	db, err := TrainProfile(m, "mdaloop", "train", guest.CodeBase, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Sites) == 0 {
		t.Fatal("training found no MDA sites")
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadProfileDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Program != "mdaloop" || len(db2.Sites) != len(db.Sites) {
		t.Fatalf("round trip: %+v", db2)
	}
	// Drive the static-profiling mechanism from the loaded profile: no
	// runtime traps.
	opt := DefaultOptions(StaticProfile)
	opt.StaticSites = db2.StaticSites()
	e := engineFor(t, img, opt)
	mustRun(t, e)
	if traps := e.Mach.Counters().MisalignTraps; traps != 0 {
		t.Errorf("traps = %d with a stored profile", traps)
	}
}

func TestProfileDBLoadErrors(t *testing.T) {
	if _, err := LoadProfileDB(strings.NewReader("not json")); err == nil {
		t.Error("garbage profile loaded")
	}
	if _, err := LoadProfileDB(strings.NewReader(`{"sites":[{"pc":1,"mda":0}]}`)); err == nil {
		t.Error("zero-MDA site accepted")
	}
}

func TestTrainProfileNonHalting(t *testing.T) {
	img := buildImg(t, func(b *guest.Builder) {
		b.Label("spin")
		b.Jmp("spin")
	})
	m := mem.New()
	m.WriteBytes(guest.CodeBase, img)
	if _, err := TrainProfile(m, "spin", "train", guest.CodeBase, 1000); err == nil {
		t.Error("non-halting training run: want error")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvTranslate, EvInvalidate, EvTrap, EvPatch, EvRearrange,
		EvRetranslate, EvLink, EvFlush, EvRevert, EvIBTCFill}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("event kind %d: bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(200).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestAdaptiveRejectedForNonDPEH(t *testing.T) {
	// The adaptive option is a DPEH refinement; under plain EH it used to
	// no-op silently — now Validate rejects the combination and Run
	// surfaces the error.
	opt := DefaultOptions(ExceptionHandling)
	opt.Adaptive = true
	if err := opt.Validate(); err == nil {
		t.Fatal("Validate accepted Adaptive under exception-handling")
	}
	e := engineFor(t, mdaLoopImg(t, 300), opt)
	if err := e.Run(guest.CodeBase, 1<<20); err == nil {
		t.Fatal("Run accepted Adaptive under exception-handling")
	}
}

func TestSuperblocksInertWithoutProfiling(t *testing.T) {
	// Trace formation needs the interpretation profile; under EH (no
	// profiling phase) the option must be inert.
	opt := DefaultOptions(ExceptionHandling)
	opt.Superblocks = true
	e := engineFor(t, multiBlockLoopImg(t, 500), opt)
	mustRun(t, e)
	if e.Stats().Superblocks != 0 {
		t.Errorf("traces formed without a profiling phase: %d", e.Stats().Superblocks)
	}
}

func TestZeroOptionsNormalized(t *testing.T) {
	// A bare Options{Mechanism: X} must behave like the defaults.
	e := engineFor(t, mdaLoopImg(t, 100), Options{Mechanism: ExceptionHandling})
	mustRun(t, e)
	if e.Opt.CodeCacheBytes == 0 || e.Opt.EHHandlerCycles == 0 {
		t.Fatal("options not normalized")
	}
	d := engineFor(t, mdaLoopImg(t, 100), DefaultOptions(ExceptionHandling))
	mustRun(t, d)
	if e.Mach.Counters().Cycles != d.Mach.Counters().Cycles {
		t.Fatalf("zero options (%d cycles) differ from defaults (%d)",
			e.Mach.Counters().Cycles, d.Mach.Counters().Cycles)
	}
}

// mixedGroupImg builds a loop whose block contains several sites that all
// alternate alignment together (they share a base pointer) — the situation
// where the paper prefers block-granularity multi-version code: one check
// covers all of them.
func mixedGroupImg(t *testing.T, n int32) []byte {
	return buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Jmp("loop")
		b.Label("loop")
		b.Mov(guest.ESI, guest.ECX)
		b.ALUImm(guest.ANDri, guest.ESI, 1)
		b.ALUImm(guest.IMULri, guest.ESI, 2)
		b.ALU(guest.ADDrr, guest.ESI, guest.EBX) // esi = base or base+2
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.ESI, Disp: 8})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.ESI, Disp: 16})
		b.ALU(guest.XORrr, guest.EAX, guest.EDX)
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.ESI, Disp: 24})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.Store(guest.ST4, guest.MemRef{Base: guest.ESI, Disp: 32}, guest.EAX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, n)
		b.Jcc(guest.L, "loop")
		b.Halt()
	})
}

func TestMVBlockGranularityCosim(t *testing.T) {
	img := mixedGroupImg(t, 800)
	refCPU, refArena := reference(t, img, patternData(128))
	opt := DefaultOptions(DPEH)
	opt.HeatThreshold = 8
	opt.MultiVersion = true
	opt.MVBlockGranularity = true
	gotCPU, gotArena, e := runDBT(t, img, patternData(128), opt)
	compareState(t, "mv-block", refCPU, gotCPU, refArena, gotArena)
	if e.Stats().MultiVersion == 0 {
		t.Fatal("no multi-version blocks")
	}
	if traps := e.Mach.Counters().MisalignTraps; traps > 2 {
		t.Errorf("traps = %d; the one guard covers all four sites", traps)
	}
}

func TestMVBlockBeatsPerSiteOnSharedBase(t *testing.T) {
	// Four mixed sites sharing one base: block granularity checks once per
	// iteration, per-site checks four times — the paper's §IV-D argument.
	img := mixedGroupImg(t, 30000)
	base := DefaultOptions(DPEH)
	base.HeatThreshold = 8
	base.MultiVersion = true
	perSite := engineFor(t, img, base)
	mustRun(t, perSite)
	blk := base
	blk.MVBlockGranularity = true
	blockG := engineFor(t, img, blk)
	mustRun(t, blockG)
	pc, bc := perSite.Mach.Counters().Cycles, blockG.Mach.Counters().Cycles
	if bc >= pc {
		t.Errorf("block granularity (%d cycles) not cheaper than per-site (%d)", bc, pc)
	}
}
