package core

import (
	"fmt"
	"hash/fnv"
)

// fingerprintFormat versions the Fingerprint construction itself: bump it
// when the set of fingerprinted knobs or their rendering changes, so
// artifacts produced under an older notion of "same configuration" read
// as foreign instead of silently matching.
const fingerprintFormat = 1

// Fingerprint condenses every translation-relevant option into a short
// stable token, the Options component of a persistent-store key
// (internal/store): two engines share artifacts exactly when their
// fingerprints match. It hashes a normalized copy — mechanism defaults
// filled in, so a zero HeatThreshold and an explicit default fingerprint
// identically — and excludes the inputs that do not change what is safe
// to share:
//
//   - StaticSites and AOTBlocks are artifact *payloads* (what the store
//     delivers), not configuration; keying on them would make every warm
//     start its own universe.
//   - FaultPlan, SelfCheck, and SliceInsts are harness knobs, proven
//     simulation-invisible (or injection-only) elsewhere.
//   - Traces and TraceHeat select the host execution tier, which is
//     bit-invisible to guest results and engine statistics by the trace
//     tier's own parity contract (DESIGN.md §14).
func (o Options) Fingerprint() string {
	o.normalize()
	o.StaticSites = nil
	o.AOTBlocks = nil
	o.FaultPlan = nil
	o.SelfCheck = false
	o.SliceInsts = 0
	o.Traces = false
	o.TraceHeat = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "fp%d|%s|%+v", fingerprintFormat, o.Mechanism, o)
	return fmt.Sprintf("%016x", h.Sum64())
}
