package core

import (
	"fmt"
	"sort"
)

// CheckInvariants validates the engine's internal consistency: code cache
// geometry, the block map, the side table mapping host PCs to memory
// sites, the exit table, the IBTC mirror against its in-memory table, and
// the interpreter blacklist. It returns nil when every invariant holds and
// a descriptive error for the first violation found.
//
// The checker is the robustness harness's oracle: tests and `dbtrun
// -selfcheck` run it after every structural mutation (translate, patch,
// flush, rearrange, retranslate) so corruption is caught at the mutation
// that introduced it, not at the eventual wrong result.
func (e *Engine) CheckInvariants() error {
	// Code cache geometry: the two bump pointers stay inside the region
	// and never cross.
	cc := e.cc
	if cc.blockNext < cc.base || cc.blockNext > cc.stubNext || cc.stubNext > cc.base+cc.size {
		return fmt.Errorf("core: invariant: cache pointers out of order: base=%#x blockNext=%#x stubNext=%#x end=%#x",
			cc.base, cc.blockNext, cc.stubNext, cc.base+cc.size)
	}

	// Block map: every live block is valid, keyed by its guest PC, and its
	// host span lies inside the block zone; live spans never overlap.
	type span struct {
		lo, hi uint64
		pc     uint32
	}
	var spans []span
	for pc, b := range e.blocks {
		if b.invalid {
			return fmt.Errorf("core: invariant: block %#x is live but marked invalid", pc)
		}
		if b.guestPC != pc {
			return fmt.Errorf("core: invariant: block map key %#x != block.guestPC %#x", pc, b.guestPC)
		}
		if b.hostEntry < cc.base || b.hostEntry+b.hostSize > cc.blockNext {
			return fmt.Errorf("core: invariant: block %#x host span [%#x,%#x) outside allocated zone [%#x,%#x)",
				pc, b.hostEntry, b.hostEntry+b.hostSize, cc.base, cc.blockNext)
		}
		spans = append(spans, span{b.hostEntry, b.hostEntry + b.hostSize, pc})

		// Fault-attribution bounds: recorded in emission order, so host PCs
		// must be non-decreasing (an instruction that emits zero host words
		// shares its successor's start; resolveFaultSite attributes the tie
		// to the later entry), inside the block's span, and cover every
		// instruction index at least once (multi-version bodies record one
		// bound per copy). A gap here would make resolveFaultSite blame a
		// trap on the wrong guest instruction.
		covered := make([]bool, len(b.instPCs))
		for i, bd := range b.bounds {
			if bd.hostPC < b.hostEntry || bd.hostPC > b.hostEntry+b.hostSize {
				return fmt.Errorf("core: invariant: block %#x bound %d host PC %#x outside its span", pc, i, bd.hostPC)
			}
			if i > 0 && bd.hostPC < b.bounds[i-1].hostPC {
				return fmt.Errorf("core: invariant: block %#x bounds decreasing at %d (%#x after %#x)",
					pc, i, bd.hostPC, b.bounds[i-1].hostPC)
			}
			if bd.idx < 0 || bd.idx >= len(b.instPCs) {
				return fmt.Errorf("core: invariant: block %#x bound %d inst index %d out of range [0,%d)",
					pc, i, bd.idx, len(b.instPCs))
			}
			covered[bd.idx] = true
		}
		for idx, ok := range covered {
			if !ok {
				return fmt.Errorf("core: invariant: block %#x guest inst %d (%#x) has no attribution bound",
					pc, idx, b.instPCs[idx])
			}
		}

		// Per-block site records: every trap-prone host PC lies inside the
		// block and is registered in the engine's side table.
		for _, s := range b.sites {
			for _, hpc := range s.hostPCs {
				if hpc < b.hostEntry || hpc >= b.hostEntry+b.hostSize {
					return fmt.Errorf("core: invariant: block %#x site @%#x has host PC %#x outside its block",
						pc, s.guestPC, hpc)
				}
				ref, ok := e.sites[hpc]
				if !ok {
					return fmt.Errorf("core: invariant: block %#x site host PC %#x missing from side table", pc, hpc)
				}
				if ref.b != b || ref.site != s {
					return fmt.Errorf("core: invariant: side table entry for %#x resolves to the wrong block/site", hpc)
				}
			}
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			return fmt.Errorf("core: invariant: blocks %#x and %#x overlap in the code cache",
				spans[i-1].pc, spans[i].pc)
		}
	}

	// Fault-attribution span table: every live block must appear exactly
	// once with its current geometry (spans are append-only per cache
	// generation; invalidated blocks may linger, live ones may not drift).
	liveSpans := make(map[*block]int)
	for i, sp := range e.blockSpans {
		if sp.b == nil || sp.lo >= sp.hi {
			return fmt.Errorf("core: invariant: blockSpans[%d] malformed [%#x,%#x)", i, sp.lo, sp.hi)
		}
		if !sp.b.invalid {
			liveSpans[sp.b]++
			if sp.lo != sp.b.hostEntry || sp.hi != sp.b.hostEntry+sp.b.hostSize {
				return fmt.Errorf("core: invariant: blockSpans[%d] [%#x,%#x) disagrees with block %#x span [%#x,%#x)",
					i, sp.lo, sp.hi, sp.b.guestPC, sp.b.hostEntry, sp.b.hostEntry+sp.b.hostSize)
			}
		}
	}
	for pc, b := range e.blocks {
		if n := liveSpans[b]; n != 1 {
			return fmt.Errorf("core: invariant: live block %#x has %d fault-attribution spans, want 1", pc, n)
		}
	}

	// Stub attribution ranges live in the allocated stub zone and name a
	// valid instruction of their block.
	for i, sr := range e.stubRanges {
		if sr.lo < cc.stubNext || sr.hi > cc.base+cc.size || sr.lo >= sr.hi {
			return fmt.Errorf("core: invariant: stubRanges[%d] [%#x,%#x) outside the stub zone [%#x,%#x)",
				i, sr.lo, sr.hi, cc.stubNext, cc.base+cc.size)
		}
		if sr.b == nil || sr.idx < 0 || sr.idx >= len(sr.b.instPCs) {
			return fmt.Errorf("core: invariant: stubRanges[%d] names inst %d of a %d-inst block", i, sr.idx, len(sr.b.instPCs))
		}
	}

	// The fault pad must still hold its BRKBT(svcFault) word: every precise
	// guest-fault delivery funnels through it.
	if err := e.faultPadIntact(); err != nil {
		return fmt.Errorf("core: invariant: %w", err)
	}

	// Every page the engine decoded guest code from must still be watched —
	// an unwatched code page would let self-modifying stores run stale
	// translations.
	for p := range e.codePages {
		if !e.Mem.Watched(p) {
			return fmt.Errorf("core: invariant: decoded code page %#x is not write-watched", p)
		}
	}

	// Side table: every entry's block is either live (and then the lookup
	// above verified it) or marked invalid — a live-looking entry for a
	// vanished block means a missed cleanup.
	for hpc, ref := range e.sites {
		if !ref.b.invalid && e.blocks[ref.b.guestPC] != ref.b {
			return fmt.Errorf("core: invariant: side table entry %#x references a non-live, non-invalid block %#x",
				hpc, ref.b.guestPC)
		}
	}

	// Exit table: ids index their own slots; a linked exit's target must be
	// a live translation (invalidation unlinks incoming exits).
	for i, ex := range e.exits {
		if int(ex.id) != i {
			return fmt.Errorf("core: invariant: exit %d carries id %d", i, ex.id)
		}
		if ex.linked {
			if _, ok := e.blocks[ex.targetGuest]; !ok {
				return fmt.Errorf("core: invariant: exit %d linked to untranslated guest %#x", i, ex.targetGuest)
			}
		}
	}

	// IBTC: the engine mirror and the in-memory table agree, and every
	// valid entry points at a live translation's entry point in the slot
	// its guest PC hashes to.
	if e.Opt.IBTC {
		for i := range e.ibtc {
			ent := &e.ibtc[i]
			addr := uint64(ibtcBase) + uint64(i)*16
			memGuest := e.Mem.Read64(addr)
			memHost := e.Mem.Read64(addr + 8)
			if !ent.valid {
				if memGuest != 0 || memHost != 0 {
					return fmt.Errorf("core: invariant: ibtc slot %d invalid in mirror but set in memory", i)
				}
				continue
			}
			if memGuest != uint64(ent.guest) || memHost != ent.host {
				return fmt.Errorf("core: invariant: ibtc slot %d mirror (%#x,%#x) != memory (%#x,%#x)",
					i, ent.guest, ent.host, memGuest, memHost)
			}
			if int((ent.guest>>ibtcShift)&(ibtcEntries-1)) != i {
				return fmt.Errorf("core: invariant: ibtc slot %d holds guest %#x which hashes elsewhere", i, ent.guest)
			}
			tb, ok := e.blocks[ent.guest]
			if !ok {
				return fmt.Errorf("core: invariant: ibtc slot %d targets untranslated guest %#x", i, ent.guest)
			}
			if tb.hostEntry != ent.host {
				return fmt.Errorf("core: invariant: ibtc slot %d host %#x != block entry %#x", i, ent.host, tb.hostEntry)
			}
		}
	}

	// Block lookup table: every live entry must agree with the authoritative
	// blocks map — a stale entry would dispatch into invalidated code.
	for i := range e.blockLUT {
		ent := &e.blockLUT[i]
		if ent.b == nil {
			continue
		}
		if int(ent.pc&blockLUTMask) != i {
			return fmt.Errorf("core: invariant: block LUT slot %d holds guest %#x which maps elsewhere", i, ent.pc)
		}
		if ent.b.invalid {
			return fmt.Errorf("core: invariant: block LUT slot %d holds invalidated block %#x", i, ent.pc)
		}
		if e.blocks[ent.pc] != ent.b {
			return fmt.Errorf("core: invariant: block LUT slot %d for guest %#x disagrees with the block map", i, ent.pc)
		}
	}

	// Degradation ladder: a blacklisted block must never be translated —
	// the two dispatch paths would race over the same guest PC.
	for pc := range e.blacklist {
		if _, ok := e.blocks[pc]; ok {
			return fmt.Errorf("core: invariant: blacklisted guest %#x has a live translation", pc)
		}
	}

	// Trace tier: the machine's side tables (PC lookup, live-trace list,
	// threaded step pointers, memoized chain links) must be mutually
	// coherent, the tier must be armed exactly when the options ask for
	// it, and every live trace must cover allocated code-cache words — a
	// trace outliving its code would replay stale instructions.
	if err := e.Mach.CheckTraceCoherence(); err != nil {
		return fmt.Errorf("core: invariant: %w", err)
	}
	if e.Mach.TracesEnabled() != e.Opt.Traces {
		return fmt.Errorf("core: invariant: machine trace tier enabled=%v disagrees with Options.Traces=%v",
			e.Mach.TracesEnabled(), e.Opt.Traces)
	}
	for _, ti := range e.Mach.TraceInfos() {
		if ti.Start < cc.base || ti.End > cc.blockNext {
			return fmt.Errorf("core: invariant: trace %d span [%#x,%#x) outside the allocated block zone [%#x,%#x)",
				ti.ID, ti.Start, ti.End, cc.base, cc.blockNext)
		}
	}

	// Static translation verifier (after the structural checks, so targeted
	// corruption diagnoses above take precedence): every live block's
	// emitted words and metadata must account for each other — every
	// trap-prone memory op registered, proven aligned, or guarded; branch
	// targets and BRKBT payloads resolved; patch sites well-formed.
	for pc, b := range e.blocks {
		if fs := e.verifyBlock(b); len(fs) > 0 {
			return fmt.Errorf("core: invariant: block %#x fails translation lint (%d findings): %s",
				pc, len(fs), fs[0])
		}
	}
	return nil
}

// selfCheck runs CheckInvariants after a structural mutation when
// Options.SelfCheck is on, latching the first violation (with the mutation
// site that exposed it) for Run to report at the next dispatch boundary.
func (e *Engine) selfCheck(where string) {
	if !e.Opt.SelfCheck || e.invariantErr != nil {
		return
	}
	if err := e.CheckInvariants(); err != nil {
		e.invariantErr = fmt.Errorf("after %s: %w", where, err)
	}
}
