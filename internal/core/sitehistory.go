package core

// SiteHistoryEntry is one guest instruction address's alignment record
// for a session: misaligned accesses observed (interpreter profiling plus
// delivered traps) and aligned accesses observed (interpreter profiling).
type SiteHistoryEntry struct {
	MDA     uint64
	Aligned uint64
}

// SiteHistory snapshots the engine's per-site alignment knowledge for
// this session: the decode cache's interpreter profiles merged with the
// delivered-trap counts the exception handler recorded. It is what the
// persistent store (internal/store) aggregates across sessions into a
// trap profile — the FX!32-style amortized static profile — so the next
// session's SPEH/static-profile run starts with every previously
// discovered MDA site already known. The engine itself does not interpret
// the history; Options.StaticSites is the adoption seam.
//
// The snapshot is independent of the engine's internal maps; mutating it
// is safe. Reset clears the underlying records with the rest of the
// engine state.
func (e *Engine) SiteHistory() map[uint32]SiteHistoryEntry {
	out := make(map[uint32]SiteHistoryEntry)
	e.dec.forEachProf(func(pc uint32, p *siteProfile) {
		if p.total() == 0 {
			return
		}
		h := out[pc]
		h.MDA += p.mda
		h.Aligned += p.aligned
		out[pc] = h
	})
	for pc, n := range e.trapSites {
		h := out[pc]
		h.MDA += n
		out[pc] = h
	}
	return out
}
