package core

import (
	"fmt"
	"strings"
)

// EventKind classifies translator events for the debug log.
type EventKind uint8

// Event kinds.
const (
	EvTranslate   EventKind = iota // block translated
	EvInvalidate                   // translation discarded
	EvTrap                         // misalignment trap dispatched to the BT
	EvPatch                        // faulting instruction patched to a stub
	EvRearrange                    // block repositioned (§IV-A)
	EvRetranslate                  // block invalidated for re-profiling (§IV-C)
	EvLink                         // exit stub chained to a translated target
	EvFlush                        // full code cache flush
	EvRevert                       // adaptive site reverted to a plain op (§IV-D)
	EvIBTCFill                     // indirect-branch cache entry installed
	EvFault                        // fault-injection plan fired an injection point
	EvDegrade                      // a recovery path degraded down the ladder
	EvGuestFault                   // guest-visible memory fault rewound/delivered
	EvSMC                          // guest store into its own code invalidated state
)

var eventNames = [...]string{
	EvTranslate:   "translate",
	EvInvalidate:  "invalidate",
	EvTrap:        "trap",
	EvPatch:       "patch",
	EvRearrange:   "rearrange",
	EvRetranslate: "retranslate",
	EvLink:        "link",
	EvFlush:       "flush",
	EvRevert:      "revert",
	EvIBTCFill:    "ibtc-fill",
	EvFault:       "fault",
	EvDegrade:     "degrade",
	EvGuestFault:  "guest-fault",
	EvSMC:         "smc",
}

// String returns the event kind name.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one translator event, stamped with the simulated cycle count.
type Event struct {
	Kind    EventKind
	Cycle   uint64
	GuestPC uint32 // block or instruction address, when applicable
	HostPC  uint64 // host address, when applicable
	Detail  string
}

// String renders the event as one log line.
func (e Event) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%12d] %-11s", e.Cycle, e.Kind)
	if e.GuestPC != 0 {
		fmt.Fprintf(&sb, " guest=%#x", e.GuestPC)
	}
	if e.HostPC != 0 {
		fmt.Fprintf(&sb, " host=%#x", e.HostPC)
	}
	if e.Detail != "" {
		sb.WriteByte(' ')
		sb.WriteString(e.Detail)
	}
	return sb.String()
}

// eventLog is a bounded ring buffer of engine events. A nil log is a no-op,
// so recording costs nothing unless enabled.
type eventLog struct {
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
}

const eventLogCap = 4096

// EnableEventLog turns on event recording (bounded to the most recent 4096
// events). Call before Run.
func (e *Engine) EnableEventLog() {
	if e.events == nil {
		e.events = &eventLog{buf: make([]Event, 0, eventLogCap)}
	}
}

// Events returns the recorded events, oldest first, and the count of events
// dropped by the ring bound.
func (e *Engine) Events() ([]Event, uint64) {
	l := e.events
	if l == nil {
		return nil, 0
	}
	if !l.wrapped {
		out := make([]Event, len(l.buf))
		copy(out, l.buf)
		return out, l.dropped
	}
	out := make([]Event, 0, eventLogCap)
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out, l.dropped
}

// event records one event (no-op when the log is disabled).
func (e *Engine) event(kind EventKind, guestPC uint32, hostPC uint64, detail string) {
	l := e.events
	if l == nil {
		return
	}
	ev := Event{Kind: kind, Cycle: e.Mach.Counters().Cycles, GuestPC: guestPC, HostPC: hostPC, Detail: detail}
	if len(l.buf) < eventLogCap && !l.wrapped {
		l.buf = append(l.buf, ev)
		if len(l.buf) == eventLogCap {
			l.wrapped = true
			l.next = 0
		}
		return
	}
	l.buf[l.next] = ev
	l.next = (l.next + 1) % eventLogCap
	l.dropped++
}
