package core

import (
	"errors"
	"fmt"

	"mdabt/internal/guest"
	"mdabt/internal/host"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
)

// This file implements precise guest-visible memory faults for translated
// code (DESIGN.md §12). The machine traps an access against the page
// protections mid-block, where guest state is split across the host
// register file and partially-executed host sequences; delivering the
// fault the way the interpreter would — pre-instruction state, zero bytes
// of a faulting store committed — takes four steps:
//
//  1. attribute the faulting host PC to the guest instruction it
//     implements (stub ranges, then block spans + per-block bounds);
//  2. recompute the *guest* access range from the live register file (the
//     host access that trapped may be a covering quadword of an MDA
//     sequence, which is wider than the guest access and can trap on a
//     page the guest access never touches);
//  3. check the guest range against the protections: a clean, unwatched
//     range means the trap was a false positive (guard-bit spill,
//     injected fault, BT-internal access) and the access re-executes raw;
//  4. otherwise park the machine on the fault pad (BRKBT svcFault). The
//     dispatcher then rewinds: ESP undo for PUSH/CALL, flag replay, and
//     re-execution of the instruction under the interpreter, which either
//     raises the precise fault or (for watched-page stores) performs the
//     write and lets the SMC hooks invalidate the stale translations.
//
// Handlers called from inside machine.Run (handleAccessFault, the
// handleMisalign pre-check) only record the pending fault and redirect to
// the pad; all engine-state mutation happens in deliverFault, at the
// dispatch boundary, where invalidation is safe.

// blockSpan records one translation's host code range for fault
// attribution. Spans are append-only across a cache generation — an
// invalidated block keeps its span, because stale code can still execute
// (and trap) until the next dispatch — and the bump allocator never reuses
// addresses between flushes, so spans never overlap.
type blockSpan struct {
	lo, hi uint64
	b      *block
}

// stubRange records one exception-handler MDA stub's range and the site it
// serves. Like block spans, stub ranges live until the next full flush.
type stubRange struct {
	lo, hi uint64
	b      *block
	idx    int // guest instruction index of the site the stub implements
}

// pendingFault is the hand-off from an in-machine trap handler to the
// dispatcher: the guest instruction to rewind to. Setting it is idempotent
// (a duplicate-trap redelivery recomputes the same value).
type pendingFault struct {
	b   *block
	idx int
}

// writeFaultPad writes the BRKBT(svcFault) pad the trap handlers park the
// machine on.
func (e *Engine) writeFaultPad() {
	e.Mach.WriteCode(btFaultBase, []uint32{
		host.MustEncode(host.Inst{Op: host.BRKBT, Payload: svcFault}),
	})
}

// decoded is the engine's front door to the decode cache: on a fresh
// decode it arms store watches on the instruction's code pages (self-
// modification detection) and, when protections are armed, checks execute
// permission the way the interpreter's Step does.
func (e *Engine) decoded(pc uint32) (*decEntry, error) {
	de, fresh, err := e.dec.decoded(pc, e.Mem)
	if err != nil {
		return nil, err
	}
	if fresh {
		e.watchCode(pc, de.len)
	}
	if e.Mem.Armed() {
		if mf := e.Mem.CheckFetch(uint64(pc), de.len); mf != nil {
			return nil, &guest.Fault{PC: pc, Mem: *mf}
		}
	}
	return de, nil
}

// watchCode arms a store watch on every page holding bytes of the decoded
// instruction at pc, so a translated or interpreted store into live guest
// code is caught and the stale decodes and translations invalidated.
func (e *Engine) watchCode(pc uint32, n int) {
	first := uint64(pc) &^ (mem.PageSize - 1)
	last := (uint64(pc) + uint64(n) - 1) &^ (mem.PageSize - 1)
	for p := first; p <= last; p += mem.PageSize {
		if !e.codePages[p] {
			e.codePages[p] = true
			e.Mem.SetWatch(p, mem.PageSize, true)
		}
	}
}

// isGuestAccess reports whether a trapped host memory instruction is part
// of a guest data access, as opposed to BT-internal bookkeeping (adaptive
// streak counters through tmpC, IBTC probes through tmpA). MDA sequences
// use LDQ_U/STQ_U exclusively; every other guest access — plain, guarded,
// or proven-aligned — addresses through a guest GPR or tmpEA.
func isGuestAccess(in host.Inst) bool {
	if in.Op == host.LDQU || in.Op == host.STQU {
		return true
	}
	b := in.Rb
	return (b >= host.R1 && b < host.R1+host.Reg(guest.NumRegs)) || b == tmpEA
}

// resolveFaultSite attributes a host PC inside translated code to the
// guest instruction it implements: handler stubs first (their block may be
// invalid, but its instruction tables are still intact), then block spans
// with a binary search over the per-block bounds.
func (e *Engine) resolveFaultSite(pc uint64) (*block, int, bool) {
	for i := len(e.stubRanges) - 1; i >= 0; i-- {
		if sr := &e.stubRanges[i]; pc >= sr.lo && pc < sr.hi {
			return sr.b, sr.idx, true
		}
	}
	for i := len(e.blockSpans) - 1; i >= 0; i-- {
		sp := &e.blockSpans[i]
		if pc < sp.lo || pc >= sp.hi {
			continue
		}
		b := sp.b
		lo, hi := 0, len(b.bounds)
		for lo < hi {
			mid := (lo + hi) / 2
			if b.bounds[mid].hostPC <= pc {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == 0 {
			return nil, 0, false
		}
		return b, b.bounds[lo-1].idx, true
	}
	return nil, 0, false
}

// guestAccessOf recomputes the guest data access of instruction in from
// the current host register file. It is exact at any trap point inside the
// instruction's emission: effective-address source registers are never
// clobbered before the access, PUSH/CALL trap with ESP already
// pre-decremented (so ESP is the store address), POP/RET trap before their
// post-increment, and a string copy's two streams are told apart by
// whether the trapped host op was a load or a store.
func (e *Engine) guestAccessOf(in guest.Inst, hostStore bool) (addr uint32, size int, write bool, ok bool) {
	reg := func(r guest.Reg) uint32 { return uint32(e.Mach.Reg(hostGPR(r))) }
	memEA := func(m guest.MemRef) uint32 {
		ea := reg(m.Base) + uint32(m.Disp)
		if m.HasIndex {
			ea += reg(m.Index) * uint32(m.Scale)
		}
		return ea
	}
	switch in.Op {
	case guest.PUSH, guest.CALL:
		return reg(guest.ESP), 4, true, true
	case guest.POP, guest.RET:
		return reg(guest.ESP), 4, false, true
	case guest.REPMOVS4:
		if hostStore {
			return reg(guest.EDI), 4, true, true
		}
		return reg(guest.ESI), 4, false, true
	}
	if !in.Op.IsExplicitMem() {
		return 0, 0, false, false
	}
	return memEA(in.Mem), in.Op.MemSize(), in.Op.IsStore(), true
}

// faultsGuest decides, for a trapped host access attributed to (b, idx),
// whether the corresponding *guest* access violates the protections or
// stores into watched (translated) guest code. Either way the instruction
// must be re-executed under the interpreter: the first case delivers a
// precise guest fault, the second performs a self-modifying write that the
// SMC hooks must observe.
func (e *Engine) faultsGuest(b *block, idx int, hostStore bool) bool {
	addr, size, write, ok := e.guestAccessOf(b.insts[idx], hostStore)
	if !ok {
		return false
	}
	if e.Mem.CheckRange(uint64(addr), size, write) != nil {
		return true
	}
	return write && e.Mem.WatchedRange(uint64(addr), size)
}

// handleAccessFault is the engine's access-protection trap handler,
// registered with the machine. It runs inside machine.Run, so it mutates
// no engine structures: it either completes a false-positive access raw
// and resumes, or records the pending guest fault and parks the machine on
// the fault pad for the dispatcher.
func (e *Engine) handleAccessFault(m *machine.Machine, pc uint64, inst host.Inst, ea uint64) uint64 {
	if b, idx, ok := e.resolveFaultSite(pc); ok {
		if isGuestAccess(inst) && e.faultsGuest(b, idx, inst.Op.IsStore()) {
			e.pendingFault = &pendingFault{b: b, idx: idx}
			return btFaultBase
		}
	} else {
		// A trap outside any translation: nothing to attribute it to
		// (spurious injection on dispatcher-written code, or a protection
		// placed on BT-internal pages). Re-execute raw — the guest-visible
		// protections are enforced on the guest access ranges above.
		e.stats.UnattributedFaults++
	}
	// False positive: guard-bit spill onto the page after a protected one,
	// an injected spurious fault, or a BT-internal access. Complete the
	// access exactly as the machine would have and resume after it.
	m.PerformAccess(inst, ea)
	return pc + host.InstBytes
}

// deliverFault services the fault pad's BRKBT at the dispatch boundary: it
// rewinds the guest to the faulting instruction and re-executes it (and
// the rest of its block) under the interpreter. A protection violation
// surfaces as a Permanent ClassifiedError wrapping the precise
// *guest.Fault; a watched-page store completes normally and returns the
// next dispatch target after the SMC hooks have invalidated stale code.
func (e *Engine) deliverFault() (uint32, error) {
	pf := e.pendingFault
	e.pendingFault = nil
	if pf == nil {
		return 0, WithClass(Internal, errors.New("core: fault pad reached with no pending fault"))
	}
	e.syncToCPU()
	in := pf.b.insts[pf.idx]
	// The translated PUSH/CALL pre-decrements ESP before its store; the
	// interpreter re-executes the whole instruction, so undo it.
	if in.Op == guest.PUSH || in.Op == guest.CALL {
		e.CPU.R[guest.ESP] += 4
	}
	e.reconstructFlags(pf.b, pf.idx)
	e.stats.GuestFaultResumes++
	pc := pf.b.instPCs[pf.idx]
	e.event(EvGuestFault, pc, 0, "rewind to interpreter")
	next, err := e.interpretBlock(pc)
	if err != nil {
		return 0, e.guestError(pf.b.guestPC, err)
	}
	return next, nil
}

// guestError classifies an interpreter failure as Permanent, counting and
// logging precise guest faults on the way through.
func (e *Engine) guestError(blockPC uint32, err error) error {
	var gf *guest.Fault
	if errors.As(err, &gf) {
		e.stats.GuestFaults++
		e.event(EvGuestFault, gf.PC, gf.Mem.Addr, gf.Error())
	}
	return &ClassifiedError{Class: Permanent, BlockPC: blockPC, Err: err}
}

// reconstructFlags replays the architectural flags at a rewind point from
// the register file. Translated code keeps flags implicit, so the
// interpreter inherits whatever the last interpreted instruction left;
// the dominating flag producer in the block prefix is replayed instead.
// This is exact for every condition a later branch can consume: the
// translator refuses to translate a block where a consumed producer's
// source registers are overwritten before the branch (flagState), and
// restricts ALU-result consumers to conditions derivable from the result
// value alone.
func (e *Engine) reconstructFlags(b *block, idx int) {
	for i := idx - 1; i >= 0; i-- {
		in := b.insts[i]
		if !in.Op.SetsFlags() {
			continue
		}
		switch in.Op {
		case guest.CMPrr:
			e.CPU.SetCmpFlags(e.CPU.R[in.R1], e.CPU.R[in.R2])
		case guest.CMPri:
			e.CPU.SetCmpFlags(e.CPU.R[in.R1], uint32(in.Imm))
		case guest.TESTrr:
			e.CPU.SetTestFlags(e.CPU.R[in.R1] & e.CPU.R[in.R2])
		default:
			// ADD/SUB/AND/OR/XOR left their result in R1.
			e.CPU.SetResultFlags(e.CPU.R[in.R1])
		}
		return
	}
}

// smcWrite reacts to a guest store into watched code: every translation
// whose instruction bytes overlap the write is invalidated, and every
// cached decode the write could have changed is dropped, so the next
// execution re-decodes and retranslates the new bytes. Called from the
// interpreter hooks only — never from inside machine.Run.
func (e *Engine) smcWrite(addr uint64, size int) {
	hi := addr + uint64(size)
	var stale []*block
	for _, b := range e.blocks {
		for i, ipc := range b.instPCs {
			s := uint64(ipc)
			if s < hi && s+uint64(b.instLens[i]) > addr {
				stale = append(stale, b)
				break
			}
		}
	}
	for _, b := range stale {
		e.invalidateBlock(b)
		e.stats.SMCInvalidations++
		e.event(EvSMC, b.guestPC, addr, "translation invalidated by guest store")
	}
	e.stats.SMCDecodeFlushes += uint64(e.dec.invalidateWrite(addr, size))
}

// AsGuestFault extracts the precise guest fault from an engine error
// chain, if one is there: callers (the serving layer, the CLIs) use it to
// report the faulting guest PC and address instead of a generic failure.
func AsGuestFault(err error) (*guest.Fault, bool) {
	var gf *guest.Fault
	if errors.As(err, &gf) {
		return gf, true
	}
	return nil, false
}

// FaultPadIntact reports whether the fault pad still holds its
// BRKBT(svcFault) word (invariant checking).
func (e *Engine) faultPadIntact() error {
	w := e.Mem.Read32(btFaultBase)
	in, err := host.Decode(w)
	if err != nil {
		return fmt.Errorf("core: invariant: fault pad word %#08x undecodable: %v", w, err)
	}
	if in.Op != host.BRKBT || in.Payload != svcFault {
		return fmt.Errorf("core: invariant: fault pad holds %v payload %d, want BRKBT(%d)", in.Op, in.Payload, svcFault)
	}
	return nil
}
