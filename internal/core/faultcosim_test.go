package core

import (
	"fmt"
	"testing"

	"mdabt/internal/faultinject"
	"mdabt/internal/guest"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
	"mdabt/internal/workload"
)

// The guest-fault cosim: every registry mechanism must deliver precise,
// interpreter-identical faults for the page-straddling workloads, and must
// track the self-modifying rewriter bit-for-bit (DESIGN.md §12). "Precise"
// is checked three ways: the faulting PC and mem.Fault match the reference,
// the register file matches at the fault point, and the guest-visible
// memory windows are byte-identical — a partially completed MDA store
// would show up as a divergence in the red page's neighbours.

// faultWindows returns the guest-visible memory regions compared between
// engine and reference: the data arena through the guard page, and the
// (possibly self-modified) code image.
func faultWindows(p *workload.FaultProgram) [][2]uint64 {
	return [][2]uint64{
		{guest.DataBase, 5 * uint64(mem.PageSize)},
		{guest.CodeBase, uint64(len(p.Main))},
	}
}

// faultReference interprets a FaultProgram and returns its final CPU, the
// fault it ended with (nil for success-expected programs), and the memory.
func faultReference(t *testing.T, p *workload.FaultProgram) (guest.CPU, *guest.Fault, *mem.Memory, map[uint32]bool) {
	t.Helper()
	m := mem.New()
	p.Load(m)
	c, err := RunCensus(m, p.Entry(), 50_000_000)
	sites := make(map[uint32]bool)
	if c != nil {
		for pc, s := range c.Sites {
			if s.MDA > 0 {
				sites[pc] = true
			}
		}
	}
	if p.ExpectFault {
		gf, ok := AsGuestFault(err)
		if !ok {
			t.Fatalf("%s: reference ended with %v, want a guest fault", p.Name, err)
		}
		if gf.Mem.Addr != p.FaultAddr || gf.Mem.Write != p.FaultWrite {
			t.Fatalf("%s: reference fault %v, want addr %#x write %v", p.Name, gf, p.FaultAddr, p.FaultWrite)
		}
		return c.FinalCPU, gf, m, sites
	}
	if err != nil {
		t.Fatalf("%s: reference: %v", p.Name, err)
	}
	if !c.Halted {
		t.Fatal("reference run did not halt")
	}
	return c.FinalCPU, nil, m, sites
}

// compareFaultState checks registers (not flags — dead flags may legally
// differ after reconstruction), EIP, and the guest-visible memory windows.
func compareFaultState(t *testing.T, label string, p *workload.FaultProgram, ref, got guest.CPU, refMem, gotMem *mem.Memory) {
	t.Helper()
	for r := guest.Reg(0); r < guest.NumRegs; r++ {
		if ref.R[r] != got.R[r] {
			t.Errorf("%s: %v = %#x, want %#x", label, r, got.R[r], ref.R[r])
		}
	}
	for f := guest.FReg(0); f < guest.NumFRegs; f++ {
		if ref.F[f] != got.F[f] {
			t.Errorf("%s: %v = %#x, want %#x", label, f, got.F[f], ref.F[f])
		}
	}
	// EIP is compared only at a fault point (where it must name the faulting
	// instruction); after a clean HALT the engine and the census interpreter
	// legitimately park it differently, as in the main cosim.
	if p.ExpectFault && ref.EIP != got.EIP {
		t.Errorf("%s: EIP = %#x, want %#x", label, got.EIP, ref.EIP)
	}
	for _, w := range faultWindows(p) {
		rb := make([]byte, w[1])
		gb := make([]byte, w[1])
		refMem.ReadBytes(w[0], rb)
		gotMem.ReadBytes(w[0], gb)
		for i := range rb {
			if rb[i] != gb[i] {
				t.Errorf("%s: mem[%#x] = %#x, want %#x", label, w[0]+uint64(i), gb[i], rb[i])
				return // one byte localizes the divergence
			}
		}
	}
}

// runFaultDBT executes a FaultProgram under one configuration.
func runFaultDBT(t *testing.T, p *workload.FaultProgram, opt Options) (guest.CPU, error, *mem.Memory, *Engine) {
	t.Helper()
	m := mem.New()
	p.Load(m)
	mach := machine.New(m, machine.DefaultParams())
	e := NewEngine(m, mach, opt)
	err := e.Run(p.Entry(), 500_000_000)
	return e.FinalCPU(), err, m, e
}

// checkFaultOutcome asserts one engine run's outcome against the reference.
func checkFaultOutcome(t *testing.T, label string, p *workload.FaultProgram, refGF *guest.Fault, err error, e *Engine) {
	t.Helper()
	if !p.ExpectFault {
		if err != nil {
			t.Errorf("%s: run failed: %v", label, err)
		}
		return
	}
	if err == nil {
		t.Errorf("%s: run halted, want guest fault at %#x", label, p.FaultAddr)
		return
	}
	if IsInternal(err) {
		t.Errorf("%s: guest fault surfaced as Internal: %v", label, err)
	}
	if Classify(err) != Permanent {
		t.Errorf("%s: guest fault classified %v, want Permanent", label, Classify(err))
	}
	gf, ok := AsGuestFault(err)
	if !ok {
		t.Errorf("%s: error %v carries no guest fault", label, err)
		return
	}
	if gf.PC != refGF.PC {
		t.Errorf("%s: faulting PC %#x, want %#x", label, gf.PC, refGF.PC)
	}
	if gf.Mem != refGF.Mem {
		t.Errorf("%s: fault %v, want %v", label, &gf.Mem, &refGF.Mem)
	}
	if n := e.Stats().GuestFaults; n != 1 {
		t.Errorf("%s: GuestFaults = %d, want 1", label, n)
	}
}

// TestFaultCosimAllMechanisms runs the guest-fault workload set under every
// registry mechanism configuration and compares each against the
// interpreter reference.
func TestFaultCosimAllMechanisms(t *testing.T) {
	progs, err := workload.FaultPrograms()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			refCPU, refGF, refMem, sites := faultReference(t, p)
			for _, opt := range allConfigs(sites) {
				opt := opt
				label := fmt.Sprintf("%s/%v(re=%v,rt=%v,mv=%v,sa=%v)", p.Name, opt.Mechanism, opt.Rearrange, opt.Retranslate, opt.MultiVersion, opt.StaticAlign)
				gotCPU, err, gotMem, e := runFaultDBT(t, p, opt)
				checkFaultOutcome(t, label, p, refGF, err, e)
				compareFaultState(t, label, p, refCPU, gotCPU, refMem, gotMem)
				if ierr := e.CheckInvariants(); ierr != nil {
					t.Errorf("%s: %v", label, ierr)
				}
			}
		})
	}
}

// TestSelfModifyingInvalidates asserts the SMC workload actually exercises
// the invalidation path: stale translations dropped, decode entries
// flushed, and the post-rewrite stub retranslated.
func TestSelfModifyingInvalidates(t *testing.T) {
	p, err := workload.GenerateSelfModifying()
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range []Mechanism{Direct, ExceptionHandling, DPEH} {
		opt := DefaultOptions(mech)
		opt.HeatThreshold = 3
		_, rerr, _, e := runFaultDBT(t, p, opt)
		if rerr != nil {
			t.Fatalf("%v: %v", mech, rerr)
		}
		s := e.Stats()
		if s.SMCInvalidations == 0 {
			t.Errorf("%v: SMCInvalidations = 0, want > 0", mech)
		}
		if s.SMCDecodeFlushes == 0 {
			t.Errorf("%v: SMCDecodeFlushes = 0, want > 0", mech)
		}
	}
}

// faultChaosPlan is chaosPlan extended with guaranteed spurious
// access-fault deliveries: the handler must tell a fake protection trap
// from a real one (CheckRange) and re-execute it raw without disturbing
// guest state.
func faultChaosPlan(seed int64, rate float64) *faultinject.Plan {
	p := faultinject.New(seed).RateAll(rate)
	if rate > 0 {
		p.At(faultinject.ForcedFlush, 2, 7).
			At(faultinject.Translate, 3).
			At(faultinject.AllocStub, 1).
			At(faultinject.SpuriousTrap, 5).
			At(faultinject.DuplicateTrap, 1).
			At(faultinject.SpuriousAccessFault, 3, 9)
	}
	return p
}

// TestChaosGuestFaults drives the guest-fault workload set through the
// chaos matrix: injected flushes, translation failures, spurious and
// duplicate traps, and spurious access faults must never change the
// delivered guest fault (or the clean halt), the architectural state, or
// any engine invariant.
func TestChaosGuestFaults(t *testing.T) {
	progs, err := workload.FaultPrograms()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			refCPU, refGF, refMem, sites := faultReference(t, p)
			for _, rate := range chaosRates {
				for _, opt := range allConfigs(sites) {
					opt := opt
					plan := faultChaosPlan(11, rate)
					opt.FaultPlan = plan
					opt.SelfCheck = true
					label := fmt.Sprintf("%s/%v(re=%v,rt=%v,mv=%v,sa=%v)/rate=%g",
						p.Name, opt.Mechanism, opt.Rearrange, opt.Retranslate, opt.MultiVersion, opt.StaticAlign, rate)
					gotCPU, rerr, gotMem, e := runFaultDBT(t, p, opt)
					checkFaultOutcome(t, label, p, refGF, rerr, e)
					compareFaultState(t, label, p, refCPU, gotCPU, refMem, gotMem)
					if ierr := e.CheckInvariants(); ierr != nil {
						t.Errorf("%s: %v", label, ierr)
					}
					if rate > 0 && plan.Total() == 0 {
						t.Errorf("%s: chaos run fired no faults", label)
					}
				}
			}
		})
	}
}

// TestMultiContextReset runs the whole fault workload set back-to-back on
// ONE engine, Engine.Reset between guests, and requires outcomes identical
// to fresh engines — protection tables, watch state, attribution tables,
// and the fault pad must all tear down and rebuild cleanly.
func TestMultiContextReset(t *testing.T) {
	progs, err := workload.FaultPrograms()
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range []Mechanism{Direct, ExceptionHandling, DPEH} {
		opt := DefaultOptions(mech)
		opt.HeatThreshold = 3
		opt.SelfCheck = true

		m := mem.New()
		mach := machine.New(m, machine.DefaultParams())
		shared := NewEngine(m, mach, opt)
		for round := 0; round < 2; round++ {
			for _, p := range progs {
				label := fmt.Sprintf("%v/round%d/%s", mech, round, p.Name)
				shared.Reset(opt)
				p.Load(m)
				sharedErr := shared.Run(p.Entry(), 500_000_000)

				freshCPU, freshErr, freshMem, _ := runFaultDBT(t, p, opt)
				if (sharedErr == nil) != (freshErr == nil) {
					t.Fatalf("%s: shared engine err %v, fresh %v", label, sharedErr, freshErr)
				}
				if sharedErr != nil {
					sg, ok1 := AsGuestFault(sharedErr)
					fg, ok2 := AsGuestFault(freshErr)
					if !ok1 || !ok2 || sg.PC != fg.PC || sg.Mem != fg.Mem {
						t.Fatalf("%s: shared fault %v, fresh %v", label, sharedErr, freshErr)
					}
				}
				compareFaultState(t, label, p, freshCPU, shared.FinalCPU(), freshMem, m)
				if ierr := shared.CheckInvariants(); ierr != nil {
					t.Fatalf("%s: %v", label, ierr)
				}
			}
		}
	}
}
