package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mdabt/internal/guest"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
)

// newTestEngine builds an engine over a fresh system with the program and
// pattern data loaded.
func newTestEngine(t *testing.T, img []byte, opt Options) *Engine {
	t.Helper()
	m := mem.New()
	m.WriteBytes(guest.CodeBase, img)
	m.WriteBytes(guest.DataBase, patternData(256))
	mach := machine.New(m, machine.DefaultParams())
	return NewEngine(m, mach, opt)
}

// TestImpossibleOpcodeIsError feeds the engine undecodable guest bytes:
// the run must fail with a Permanent classified error naming the bad
// block, never crash. Both the interpreter path (low threshold mechanisms
// heat blocks first) and the direct-translate path are covered.
func TestImpossibleOpcodeIsError(t *testing.T) {
	// 0xFF is not a defined guest opcode.
	img := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	for _, opt := range []Options{
		DefaultOptions(Direct),            // translates immediately
		DefaultOptions(ExceptionHandling), // translates immediately
		DefaultOptions(DPEH),              // interprets while cold
	} {
		e := newTestEngine(t, img, opt)
		err := e.Run(guest.CodeBase, 1<<24)
		if err == nil {
			t.Fatalf("%v: impossible opcode executed successfully", opt.Mechanism)
		}
		if got := Classify(err); got != Permanent {
			t.Errorf("%v: class = %v, want Permanent (%v)", opt.Mechanism, got, err)
		}
		var ce *ClassifiedError
		if !errors.As(err, &ce) {
			t.Fatalf("%v: error %v carries no ClassifiedError", opt.Mechanism, err)
		}
		if ce.BlockPC != guest.CodeBase {
			t.Errorf("%v: BlockPC = %#x, want %#x", opt.Mechanism, ce.BlockPC, uint32(guest.CodeBase))
		}
	}
}

// TestRecoveredPanicIsInternal poisons the engine so the dispatch loop
// panics (a stand-in for any impossible internal state, e.g. the bad-kind
// panics in mdaseq.go), and checks the Run boundary converts the panic
// into an Internal classified error with block context instead of
// crashing the process.
func TestRecoveredPanicIsInternal(t *testing.T) {
	e := newTestEngine(t, mdaLoopImg(t, 50), DefaultOptions(ExceptionHandling))
	e.mech = nil // any mechanism callback now nil-panics
	err := e.Run(guest.CodeBase, 1<<24)
	if err == nil {
		t.Fatal("poisoned engine ran to completion")
	}
	if !IsInternal(err) {
		t.Fatalf("recovered panic classified %v, want Internal (%v)", Classify(err), err)
	}
	var ce *ClassifiedError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v carries no ClassifiedError", err)
	}
	if ce.BlockPC != guest.CodeBase {
		t.Errorf("BlockPC = %#x, want entry block %#x", ce.BlockPC, uint32(guest.CodeBase))
	}
	if !strings.Contains(err.Error(), "recovered panic") {
		t.Errorf("error text %q does not mention the recovered panic", err)
	}
}

// TestMDASeqBadKindPanics pins the invariant panics of the MDA sequence
// emitters themselves: an out-of-range kind must panic (so the Run
// boundary can classify it) rather than silently emit wrong code.
func TestMDASeqBadKindPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("plainMemOp(bad kind) did not panic")
		}
		if !strings.Contains(r.(string), "bad kind") {
			t.Fatalf("panic %v, want bad-kind message", r)
		}
	}()
	plainMemOp(memKind(255))
}

// TestRunContextDeadline checks cooperative cancellation: a deadline
// expiring mid-run aborts within one budget slice and surfaces as a
// Permanent error satisfying errors.Is(err, context.DeadlineExceeded).
func TestRunContextDeadline(t *testing.T) {
	opt := DefaultOptions(ExceptionHandling)
	opt.SliceInsts = 4096 // small slices keep the abort latency tight
	e := newTestEngine(t, mdaLoopImg(t, 1<<30), opt)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := e.RunContext(ctx, guest.CodeBase, 1<<62)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if Classify(err) != Permanent {
		t.Errorf("class = %v, want Permanent", Classify(err))
	}
	// Generous wall-clock bound: one 4096-inst slice simulates in well
	// under a second even on a slow CI machine.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	// The machine stopped on a slice boundary: host instructions retired
	// since the deadline are bounded by one slice.
	if insts := e.Mach.Counters().Insts; insts == 0 {
		t.Error("no progress before the deadline")
	}
}

// TestRunContextPreCancelled: an already-cancelled context runs nothing.
func TestRunContextPreCancelled(t *testing.T) {
	e := newTestEngine(t, mdaLoopImg(t, 10), DefaultOptions(Direct))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.RunContext(ctx, guest.CodeBase, 1<<24)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if n := e.Stats().NativeBlockRuns; n != 0 {
		t.Errorf("pre-cancelled run dispatched %d blocks", n)
	}
}

// TestSlicingInvisible runs the same program with pathologically small
// slices and with the default slice and requires bit-identical counters
// and statistics: budget slicing must not be observable in results.
func TestSlicingInvisible(t *testing.T) {
	img := multiBlockLoopImg(t, 800)
	for _, mech := range []Mechanism{Direct, ExceptionHandling, DPEH} {
		base := DefaultOptions(mech)
		eRef := newTestEngine(t, img, base)
		if err := eRef.Run(guest.CodeBase, 500_000_000); err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		sliced := base
		sliced.SliceInsts = 257 // prime, guaranteed to split blocks mid-flight
		eSliced := newTestEngine(t, img, sliced)
		if err := eSliced.Run(guest.CodeBase, 500_000_000); err != nil {
			t.Fatalf("%v sliced: %v", mech, err)
		}
		if ref, got := equivalenceFingerprint(eRef), equivalenceFingerprint(eSliced); ref != got {
			t.Errorf("%v: slicing changed results\n  default %s\n  sliced  %s", mech, ref, got)
		}
	}
}

// TestEngineUsableAfterError: an engine that failed (deadline) is fully
// recyclable via Reset — the serving layer's reuse-after-failure path.
func TestEngineUsableAfterError(t *testing.T) {
	opt := DefaultOptions(ExceptionHandling)
	opt.SliceInsts = 1024
	e := newTestEngine(t, mdaLoopImg(t, 1<<30), opt)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	err := e.RunContext(ctx, guest.CodeBase, 1<<62)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("setup: err = %v, want DeadlineExceeded", err)
	}

	// Recycle onto a small, well-behaved program and compare to fresh.
	img := mdaLoopImg(t, 100)
	e.Reset(DefaultOptions(ExceptionHandling))
	e.LoadImage(guest.CodeBase, img)
	e.Mem.WriteBytes(guest.DataBase, patternData(256))
	if err := e.Run(guest.CodeBase, 1<<26); err != nil {
		t.Fatalf("recycled run: %v", err)
	}
	fresh := newTestEngine(t, img, DefaultOptions(ExceptionHandling))
	if err := fresh.Run(guest.CodeBase, 1<<26); err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	if a, b := equivalenceFingerprint(e), equivalenceFingerprint(fresh); a != b {
		t.Errorf("recycled-after-error engine diverged\n  recycled %s\n  fresh    %s", a, b)
	}
}
