package core

import (
	"context"
	"errors"
	"fmt"
)

// ErrClass partitions engine failures by what a caller can usefully do
// about them (DESIGN.md §11). The zero value is Permanent: an unknown
// error is assumed unretriable, so a misclassification degrades to "fail
// the request" rather than to a retry storm.
type ErrClass int

const (
	// Permanent failures are caused by the request itself — a malformed
	// guest program, a contradictory Options combination, an exhausted
	// caller-chosen budget, a cancelled context. Retrying the identical
	// request reproduces the identical failure.
	Permanent ErrClass = iota
	// Transient failures are environmental — injected faults, resource
	// exhaustion outside the engine's own recovery ladder, serving-layer
	// shedding. A retry (possibly after backoff) may succeed.
	Transient
	// Internal failures are engine bugs surfacing at the Run boundary —
	// recovered panics from the translate/mdaseq/dispatch paths, invariant
	// violations, undecodable host code the translator itself emitted.
	// They are not retried: the same inputs would re-trip the same bug.
	Internal
)

// String names the class.
func (c ErrClass) String() string {
	switch c {
	case Permanent:
		return "permanent"
	case Transient:
		return "transient"
	case Internal:
		return "internal"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ClassifiedError wraps an engine failure with its class and, when known,
// the guest block and host PC being executed when it surfaced. Errors.Is/As
// see through it to the underlying cause.
type ClassifiedError struct {
	Class   ErrClass
	BlockPC uint32 // guest PC of the block in flight (0 when unknown)
	HostPC  uint64 // host PC at failure (0 when unknown)
	Err     error
}

// Error renders the class, context, and cause.
func (e *ClassifiedError) Error() string {
	s := "core: [" + e.Class.String() + "]"
	if e.BlockPC != 0 {
		s += fmt.Sprintf(" block=%#x", e.BlockPC)
	}
	if e.HostPC != 0 {
		s += fmt.Sprintf(" hostpc=%#x", e.HostPC)
	}
	return s + " " + e.Err.Error()
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *ClassifiedError) Unwrap() error { return e.Err }

// WithClass wraps err with an explicit class and no PC context. It returns
// nil for a nil err.
func WithClass(class ErrClass, err error) error {
	if err == nil {
		return nil
	}
	return &ClassifiedError{Class: class, Err: err}
}

// Classify reports the class of err: the class of the outermost
// ClassifiedError in its chain, Permanent for context cancellation and
// deadline expiry (caller-caused), and Permanent for anything unrecognized.
func Classify(err error) ErrClass {
	var ce *ClassifiedError
	if errors.As(err, &ce) {
		return ce.Class
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Permanent
	}
	return Permanent
}

// IsTransient reports whether err is classified Transient.
func IsTransient(err error) bool { return err != nil && Classify(err) == Transient }

// IsInternal reports whether err is classified Internal.
func IsInternal(err error) bool { return err != nil && Classify(err) == Internal }
