package core

import (
	"fmt"

	"mdabt/internal/align"
	"mdabt/internal/faultinject"
	"mdabt/internal/guest"
	"mdabt/internal/host"
	"mdabt/internal/policy"
)

// maxBlockInsts caps basic-block length; longer straight-line runs are
// split with a synthetic fallthrough exit.
const maxBlockInsts = 64

// MaxBlockInsts exports the translator's unit bound so offline CFG recovery
// (internal/align.RecoverCFG via internal/aot) forms exactly the blocks the
// dynamic translator would.
const MaxBlockInsts = maxBlockInsts

// sitePolicy is the translation-time decision for one memory site.
type sitePolicy uint8

const (
	polPlain    sitePolicy = iota // single trap-prone memory instruction
	polSeq                        // inline MDA code sequence
	polMixed                      // per-site multi-version code (§IV-D, Fig. 8 left)
	polAdaptive                   // streak-counting adaptive code (§IV-D, Fig. 8 right)
)

// String names the policy for dumps and verifier findings.
func (p sitePolicy) String() string {
	switch p {
	case polPlain:
		return "plain"
	case polSeq:
		return "seq"
	case polMixed:
		return "mixed"
	case polAdaptive:
		return "adaptive"
	}
	return "policy?"
}

// decodeBlock decodes the basic block starting at pc from guest memory,
// through the engine's PC-indexed decode cache (translations and the
// interpreter share decoded instructions).
func (e *Engine) decodeBlock(pc uint32) (insts []guest.Inst, lens []int, pcs []uint32, err error) {
	cur := pc
	for len(insts) < maxBlockInsts {
		de, derr := e.decoded(cur)
		if derr != nil {
			return nil, nil, nil, fmt.Errorf("core: decode block at %#x: %w", cur, derr)
		}
		insts = append(insts, de.inst)
		lens = append(lens, de.len)
		pcs = append(pcs, cur)
		cur += uint32(de.len)
		if de.inst.Op.EndsBlock() {
			break
		}
	}
	// When splitting an over-long straight-line run, never separate a
	// flag-setting instruction from the conditional branch that consumes
	// it: push the flag setter into the next block.
	if n := len(insts); n == maxBlockInsts && insts[n-1].Op.SetsFlags() {
		insts = insts[:n-1]
		lens = lens[:n-1]
		pcs = pcs[:n-1]
	}
	return insts, lens, pcs, nil
}

// guestKind maps a guest memory op to the host memKind of its data access.
func guestKind(op guest.Op) (memKind, bool) {
	switch op {
	case guest.LD4:
		return kindLD4, true
	case guest.LD2Z:
		return kindLD2Z, true
	case guest.LD2S:
		return kindLD2S, true
	case guest.ST4:
		return kindST4, true
	case guest.ST2:
		return kindST2, true
	case guest.FLD8:
		return kindFLD8, true
	case guest.FST8:
		return kindFST8, true
	case guest.POP, guest.RET:
		return kindLD4, true
	case guest.PUSH, guest.CALL:
		return kindST4, true
	case guest.REPMOVS4:
		return kindLD4, true // both streams are dword accesses
	}
	return 0, false // byte accesses and non-memory ops never misalign
}

// flagKind tracks how the translator can materialize a pending condition.
type flagKind uint8

const (
	flagNone      flagKind = iota
	flagCmp                // CMP a, b/imm
	flagTest               // TEST a, b
	flagResult             // flags reflect an ALU result left in a register
	flagClobbered          // a source register was overwritten; unusable
)

type flagState struct {
	kind   flagKind
	a, b   guest.Reg
	imm    int32
	useImm bool
	result guest.Reg
}

// note records a register write, clobbering the flag state if it kills a
// source the materialization would need.
func (f *flagState) note(w guest.Reg) {
	switch f.kind {
	case flagCmp, flagTest:
		if w == f.a || (!f.useImm && w == f.b) {
			f.kind = flagClobbered
		}
	case flagResult:
		if w == f.result {
			f.kind = flagClobbered
		}
	}
}

// traceEdge describes how a trace-internal terminator is emitted: JMPs to
// the next trace block vanish; JCCs become side-exit branches, inverted
// when the hot path is the taken target.
type traceEdge struct {
	skip       bool   // suppress the branch entirely (JMP to next)
	invert     bool   // branch on the inverse condition
	sideTarget uint32 // guest target of the cold side exit
}

// sideExit is a deferred cold-path exit stub emitted after the trace body.
type sideExit struct {
	label  string
	target uint32
}

// emitter translates one translation unit's body into host code.
type emitter struct {
	e         *Engine
	a         *host.Asm
	b         *block
	policy    map[int]sitePolicy
	counters  map[int]uint64    // inst index -> adaptive streak counter address
	edges     map[int]traceEdge // trace-internal terminators
	sideExits []sideExit
	// mvActive/mvPolicy replace polMixed while emitting one copy of a
	// block-granularity multi-version body (polPlain in the optimistic
	// copy, polSeq in the pessimistic one).
	mvActive bool
	mvPolicy sitePolicy
	record   bool // second pass: record sites and exits
	flags    flagState
	nlabel   int
}

func (em *emitter) label(prefix string) string {
	em.nlabel++
	return fmt.Sprintf("%s_%d", prefix, em.nlabel)
}

// siteFor returns the memSite for inst index idx (sub-access sub: string
// copies have a load site 0 and a store site 1), creating it on the
// recording pass.
func (em *emitter) siteFor(idx, sub int, pc uint32, k memKind) *memSite {
	if !em.record {
		return nil
	}
	for _, s := range em.b.sites {
		if s.instIdx == idx && s.sub == sub {
			return s
		}
	}
	s := &memSite{
		instIdx: idx, sub: sub, guestPC: pc, size: k.size(), isStore: k.isStore(),
		kind: k, patched: make(map[uint64]bool),
	}
	em.b.sites = append(em.b.sites, s)
	return s
}

// markAligned records, on the recording pass, that the host memory op at
// pc was emitted under a proven-aligned claim (static verdict or
// BT-internal data at a constructed-aligned address).
func (em *emitter) markAligned(pc uint64) {
	if em.record {
		em.b.alignedPCs[pc] = true
	}
}

// markGuarded records, on the recording pass, a plain memory op inside an
// alignment-guarded arm (unreachable when the address misaligns).
func (em *emitter) markGuarded(pc uint64) {
	if em.record {
		em.b.guardedPCs[pc] = true
	}
}

// addressing resolves a guest memory operand to (hostBase, disp) with
// disp+size-1 guaranteed to fit the 16-bit memory displacement, emitting
// effective-address computation into tmpEA when needed.
func (em *emitter) addressing(m guest.MemRef, size int) (host.Reg, int32) {
	direct := !m.HasIndex &&
		int64(m.Disp) >= -(1<<15) && int64(m.Disp)+int64(size)-1 < 1<<15
	if direct {
		return hostGPR(m.Base), m.Disp
	}
	baseH := hostGPR(m.Base)
	cur := baseH
	if m.HasIndex {
		idxH := hostGPR(m.Index)
		if m.Scale > 1 {
			sh := uint8(0)
			for 1<<sh != m.Scale {
				sh++
			}
			em.a.OprLit(host.SLL, idxH, sh, tmpEA)
		} else {
			em.a.Mov(idxH, tmpEA)
		}
		em.a.Opr(host.ADDQ, baseH, tmpEA, tmpEA)
		cur = tmpEA
	}
	if m.Disp != 0 {
		if m.Disp >= -(1<<15) && m.Disp < 1<<15 {
			em.a.Mem(host.LDA, tmpEA, m.Disp, cur)
		} else {
			em.a.MovImm(tmpImm, int64(m.Disp))
			em.a.Opr(host.ADDQ, cur, tmpImm, tmpEA)
		}
		cur = tmpEA
	}
	return cur, 0
}

// memAccess emits the data access for site idx according to policy,
// recording the trapping host PC for plain emissions.
func (em *emitter) memAccess(idx int, pc uint32, k memKind, data host.Reg, m guest.MemRef) {
	em.memAccessSub(idx, 0, pc, k, data, m)
}

func (em *emitter) memAccessSub(idx, sub int, pc uint32, k memKind, data host.Reg, m guest.MemRef) {
	base, disp := em.addressing(m, k.size())
	// Static alignment layer, per access stream: a proven-aligned stream
	// emits the plain operation with no trap-site registration (the
	// verifier accounts for it through block.alignedPCs); a proven-
	// misaligned stream inlines the MDA sequence eagerly. Stream-level
	// interception refines the instruction-level policy override in
	// sitePolicies for string copies whose two streams classified
	// differently. Verdicts are fixed at translation time, so both
	// emission passes agree (length invariance).
	if em.e.Opt.StaticAlign {
		switch em.e.alignDB.Verdict(pc, sub) {
		case align.Aligned:
			em.markAligned(emitPlain(em.a, k, data, base, disp))
			return
		case align.Misaligned:
			emitMDA(em.a, k, data, base, disp)
			return
		}
	}
	site := em.siteFor(idx, sub, pc, k)
	pol := em.policy[idx]
	if pol == polMixed && em.mvActive {
		pol = em.mvPolicy
	}
	if pol == polAdaptive && sub != 0 {
		// String copies have two dynamic access streams but one streak
		// counter slot; guard the second stream instead of adapting it.
		pol = polMixed
	}
	switch pol {
	case polSeq:
		emitMDA(em.a, k, data, base, disp)
	case polAdaptive:
		em.adaptiveAccess(idx, k, data, base, disp)
	case polMixed:
		// Multi-version code (§IV-D, Fig. 8): check the actual effective
		// address and run either the plain instruction or the MDA sequence.
		// The plain arm can never trap, so sometimes-aligned sites pay the
		// short check instead of either traps or a constant sequence.
		seq := em.label("mda")
		join := em.label("join")
		a := em.a
		a.Mem(host.LDA, tmpCond, disp, base)
		a.OprLit(host.AND, tmpCond, uint8(k.size()-1), tmpCond)
		a.Br(host.BNE, tmpCond, seq)
		em.markGuarded(emitPlain(a, k, data, base, disp))
		a.Br(host.BR, host.Zero, join)
		a.Label(seq)
		emitMDA(a, k, data, base, disp)
		a.Label(join)
	default:
		memPC := emitPlain(em.a, k, data, base, disp)
		if site != nil {
			site.hostPCs = append(site.hostPCs, memPC)
		}
	}
}

// adaptiveAccess emits the paper's truly-adaptive site (§IV-D, Fig. 8
// right): an alignment check routes misaligned executions to the MDA
// sequence (resetting the streak counter) and aligned executions through a
// counter increment; when the aligned streak passes the threshold a BRKBT
// asks the monitor to revert the site to a plain operation.
func (em *emitter) adaptiveAccess(idx int, k memKind, data host.Reg, base host.Reg, disp int32) {
	a := em.a
	ctr := em.counters[idx]
	mda := em.label("amda")
	aligned := em.label("aok")
	end := em.label("aend")
	a.Mem(host.LDA, tmpEA, disp, base)
	a.OprLit(host.AND, tmpEA, uint8(k.size()-1), tmpCond)
	a.Br(host.BNE, tmpCond, mda)
	// Aligned: bump the streak counter. The counter lives in tmpC/tmpD
	// (MDA scratch): data may be tmpImm (a CALL's pushed return address)
	// or tmpIndirect (a RET's target) and must survive until the arms.
	// The counter accesses are BT-internal data at 4-byte-aligned addresses
	// (allocCounter): proven aligned by construction.
	a.MovImm(tmpC, int64(ctr))
	em.markAligned(a.PC())
	a.Mem(host.LDL, tmpD, 0, tmpC)
	a.OprLit(host.ADDL, tmpD, 1, tmpD)
	em.markAligned(a.PC())
	a.Mem(host.STL, tmpD, 0, tmpC)
	a.OprLit(host.CMPLT, tmpD, em.e.Opt.AdaptiveStreak, tmpCond)
	a.Br(host.BNE, tmpCond, aligned)
	// Streak exhausted: ask the BT monitor to revert this site.
	if em.record {
		id := em.e.newAdaptive(em.b, idx, ctr)
		a.Brk(svcAdaptiveFlag | id)
	} else {
		a.Brk(svcAdaptiveFlag)
	}
	a.Label(aligned)
	em.markGuarded(emitPlain(a, k, data, base, disp)) // guarded: cannot trap
	a.Br(host.BR, host.Zero, end)
	a.Label(mda)
	a.MovImm(tmpC, int64(ctr))
	em.markAligned(a.PC())
	a.Mem(host.STL, host.Zero, 0, tmpC) // reset the streak
	emitMDA(a, k, data, base, disp)
	a.Label(end)
	if em.record {
		em.e.stats.AdaptiveSites++
	}
}

// stackAccess emits a 4-byte stack slot access through ESP (PUSH/POP/
// CALL/RET traffic). ESP-relative addressing is always direct.
func (em *emitter) stackAccess(idx int, pc uint32, k memKind, data host.Reg) {
	em.memAccess(idx, pc, k, data, guest.MemRef{Base: guest.ESP})
}

// exitTo emits a patchable exit stub to a static guest target.
func (em *emitter) exitTo(target uint32) {
	if em.record {
		ex := em.e.newExit(em.b, target, em.a.PC())
		em.a.Brk(svcExitBase + ex.id)
		return
	}
	em.a.Brk(svcExitBase) // placeholder: identical length
}

// condBranch materializes the pending flags for cond and emits a host
// branch to label when the condition holds.
func (em *emitter) condBranch(cond guest.Cond, label string) error {
	f := em.flags
	switch f.kind {
	case flagNone:
		return fmt.Errorf("core: conditional branch without a flag-setting instruction in block %#x", em.b.guestPC)
	case flagClobbered:
		return fmt.Errorf("core: condition sources overwritten before branch in block %#x", em.b.guestPC)
	case flagCmp:
		return em.cmpBranch(cond, f, label)
	case flagTest:
		em.a.Opr(host.AND, hostGPR(f.a), hostGPR(f.b), tmpCond)
		return em.zeroBranch(cond, tmpCond, label, true)
	case flagResult:
		return em.zeroBranch(cond, hostGPR(f.result), label, false)
	}
	return fmt.Errorf("core: unknown flag state")
}

// cmpOperands loads the CMP's second operand, returning either a literal or
// a register form emitter.
func (em *emitter) cmpWith(op host.Op, f flagState, dst host.Reg) {
	if f.useImm && f.imm >= 0 && f.imm <= 255 {
		em.a.OprLit(op, hostGPR(f.a), uint8(f.imm), dst)
		return
	}
	rb := hostGPR(f.b)
	if f.useImm {
		em.a.MovImm(tmpImm, int64(f.imm))
		rb = tmpImm
	}
	em.a.Opr(op, hostGPR(f.a), rb, dst)
}

// cmpBranch handles conditions after CMP a, b: compare host ops on the
// sign-extended 64-bit register images preserve both signed and unsigned
// 32-bit ordering.
func (em *emitter) cmpBranch(cond guest.Cond, f flagState, label string) error {
	type plan struct {
		op     host.Op
		branch host.Op
	}
	plans := map[guest.Cond]plan{
		guest.E:  {host.CMPEQ, host.BNE},
		guest.NE: {host.CMPEQ, host.BEQ},
		guest.L:  {host.CMPLT, host.BNE},
		guest.LE: {host.CMPLE, host.BNE},
		guest.G:  {host.CMPLE, host.BEQ},
		guest.GE: {host.CMPLT, host.BEQ},
		guest.B:  {host.CMPULT, host.BNE},
		guest.BE: {host.CMPULE, host.BNE},
		guest.A:  {host.CMPULE, host.BEQ},
		guest.AE: {host.CMPULT, host.BEQ},
	}
	if p, ok := plans[cond]; ok {
		em.cmpWith(p.op, f, tmpCond)
		em.a.Br(p.branch, tmpCond, label)
		return nil
	}
	// S/NS test the sign of a-b.
	em.cmpWith(host.SUBL, f, tmpCond)
	switch cond {
	case guest.S:
		em.a.Br(host.BLT, tmpCond, label)
	case guest.NS:
		em.a.Br(host.BGE, tmpCond, label)
	default:
		return fmt.Errorf("core: unsupported condition %v after cmp", cond)
	}
	return nil
}

// zeroBranch handles conditions against a result value (flags from TEST or
// an ALU result): CF/OF are zero, so the condition reduces to a comparison
// of the 32-bit result with zero. afterTest permits the relational forms.
func (em *emitter) zeroBranch(cond guest.Cond, r host.Reg, label string, afterTest bool) error {
	switch cond {
	case guest.E:
		em.a.Br(host.BEQ, r, label)
	case guest.NE:
		em.a.Br(host.BNE, r, label)
	case guest.S:
		em.a.Br(host.BLT, r, label)
	case guest.NS:
		em.a.Br(host.BGE, r, label)
	default:
		if !afterTest {
			return fmt.Errorf("core: unsupported condition %v on ALU result flags", cond)
		}
		switch cond {
		case guest.L: // OF=0 ⇒ SF
			em.a.Br(host.BLT, r, label)
		case guest.GE:
			em.a.Br(host.BGE, r, label)
		case guest.LE: // ZF || SF
			em.a.Br(host.BLE, r, label)
		case guest.G:
			em.a.Br(host.BGT, r, label)
		case guest.BE: // CF=0 ⇒ ZF
			em.a.Br(host.BEQ, r, label)
		case guest.A:
			em.a.Br(host.BNE, r, label)
		case guest.AE: // always
			em.a.Br(host.BR, host.Zero, label)
		case guest.B: // never taken: no branch
		default:
			return fmt.Errorf("core: unsupported condition %v after test", cond)
		}
	}
	return nil
}

// aluHostOp maps guest ALU ops to 32-bit host operate ops.
func aluHostOp(op guest.Op) (host.Op, bool) {
	switch op {
	case guest.ADDrr, guest.ADDri:
		return host.ADDL, true
	case guest.SUBrr, guest.SUBri:
		return host.SUBL, true
	case guest.ANDrr, guest.ANDri:
		return host.AND, true
	case guest.ORrr, guest.ORri:
		return host.BIS, true
	case guest.XORrr, guest.XORri:
		return host.XOR, true
	case guest.IMULrr, guest.IMULri:
		return host.MULL, true
	}
	return 0, false
}

// aluImm emits op dst, imm → dst, using the literal form when possible.
func (em *emitter) aluImm(op host.Op, dst host.Reg, imm int32) {
	if imm >= 0 && imm <= 255 {
		em.a.OprLit(op, dst, uint8(imm), dst)
		return
	}
	em.a.MovImm(tmpImm, int64(imm))
	em.a.Opr(op, dst, tmpImm, dst)
}

// inst translates the idx-th guest instruction of the block.
func (em *emitter) inst(idx int, pc uint32, nextPC uint32) error {
	a := em.a
	in := em.b.insts[idx]
	switch in.Op {
	case guest.NOP:
	case guest.HALT:
		a.Brk(svcHalt)

	case guest.MOVri:
		a.MovImm(hostGPR(in.R1), int64(in.Imm))
		em.flags.note(in.R1)
	case guest.MOVrr:
		a.Mov(hostGPR(in.R2), hostGPR(in.R1))
		em.flags.note(in.R1)
	case guest.LEA:
		base, disp := em.addressing(in.Mem, 1)
		a.Mem(host.LDA, hostGPR(in.R1), disp, base)
		a.Opr(host.ADDL, host.Zero, hostGPR(in.R1), hostGPR(in.R1)) // mod 2^32
		em.flags.note(in.R1)

	case guest.LD4, guest.LD2Z, guest.LD2S, guest.LD1Z, guest.LD1S:
		if in.Op == guest.LD1Z || in.Op == guest.LD1S {
			// Byte loads can never misalign; emit directly.
			base, disp := em.addressing(in.Mem, 1)
			a.Mem(host.LDBU, hostGPR(in.R1), disp, base)
			if in.Op == guest.LD1S {
				a.OprLit(host.SLL, hostGPR(in.R1), 56, hostGPR(in.R1))
				a.OprLit(host.SRA, hostGPR(in.R1), 56, hostGPR(in.R1))
			}
		} else {
			k, _ := guestKind(in.Op)
			em.memAccess(idx, pc, k, hostGPR(in.R1), in.Mem)
		}
		em.flags.note(in.R1)
	case guest.ST4, guest.ST2:
		k, _ := guestKind(in.Op)
		em.memAccess(idx, pc, k, hostGPR(in.R1), in.Mem)
	case guest.ST1:
		base, disp := em.addressing(in.Mem, 1)
		a.Mem(host.STB, hostGPR(in.R1), disp, base)
	case guest.FLD8:
		em.memAccess(idx, pc, kindFLD8, hostFR(in.FR1), in.Mem)
	case guest.FST8:
		em.memAccess(idx, pc, kindFST8, hostFR(in.FR1), in.Mem)

	case guest.ADDrr, guest.SUBrr, guest.ANDrr, guest.ORrr, guest.XORrr, guest.IMULrr:
		op, _ := aluHostOp(in.Op)
		a.Opr(op, hostGPR(in.R1), hostGPR(in.R2), hostGPR(in.R1))
		if in.Op.SetsFlags() {
			em.flags = flagState{kind: flagResult, result: in.R1}
		} else {
			em.flags.note(in.R1)
		}
	case guest.ADDri, guest.SUBri, guest.ANDri, guest.ORri, guest.XORri, guest.IMULri:
		op, _ := aluHostOp(in.Op)
		em.aluImm(op, hostGPR(in.R1), in.Imm)
		if in.Op.SetsFlags() {
			em.flags = flagState{kind: flagResult, result: in.R1}
		} else {
			em.flags.note(in.R1)
		}
	case guest.CMPrr:
		em.flags = flagState{kind: flagCmp, a: in.R1, b: in.R2}
	case guest.CMPri:
		em.flags = flagState{kind: flagCmp, a: in.R1, imm: in.Imm, useImm: true}
	case guest.TESTrr:
		em.flags = flagState{kind: flagTest, a: in.R1, b: in.R2}
	case guest.SHLri:
		r := hostGPR(in.R1)
		a.OprLit(host.SLL, r, uint8(uint32(in.Imm)&31), r)
		a.Opr(host.ADDL, host.Zero, r, r)
		em.flags.note(in.R1)
	case guest.SHRri:
		r := hostGPR(in.R1)
		sh := uint32(in.Imm) & 31
		a.OprLit(host.SLL, r, 32, r)
		a.OprLit(host.SRL, r, uint8(32+sh), r)
		a.Opr(host.ADDL, host.Zero, r, r)
		em.flags.note(in.R1)
	case guest.SARri:
		r := hostGPR(in.R1)
		a.OprLit(host.SRA, r, uint8(uint32(in.Imm)&31), r)
		em.flags.note(in.R1)
	case guest.FADDrr:
		a.Opr(host.ADDQ, hostFR(in.FR1), hostFR(in.FR2), hostFR(in.FR1))
	case guest.FMOVrr:
		a.Mov(hostFR(in.FR2), hostFR(in.FR1))

	case guest.REPMOVS4:
		// Inline copy loop: while ecx != 0 { [edi] = [esi]; esi+=4; edi+=4;
		// ecx-- }. The load and store are independent, policy-controlled
		// memory sites — exactly where libc-style memcpy misalignment lands.
		ecx, esi, edi := hostGPR(guest.ECX), hostGPR(guest.ESI), hostGPR(guest.EDI)
		top := em.label("rep")
		done := em.label("repdone")
		a.Label(top)
		a.Br(host.BEQ, ecx, done)
		em.memAccessSub(idx, 0, pc, kindLD4, tmpImm, guest.MemRef{Base: guest.ESI})
		em.memAccessSub(idx, 1, pc, kindST4, tmpImm, guest.MemRef{Base: guest.EDI})
		a.Mem(host.LDA, esi, 4, esi)
		a.Mem(host.LDA, edi, 4, edi)
		a.OprLit(host.SUBL, ecx, 1, ecx)
		a.Br(host.BR, host.Zero, top)
		a.Label(done)
		em.flags.note(guest.ECX)
		em.flags.note(guest.ESI)
		em.flags.note(guest.EDI)

	case guest.JMP:
		if edge, ok := em.edges[idx]; ok && edge.skip {
			break // trace-internal: fall through into the next trace block
		}
		em.exitTo(nextPC + uint32(in.Rel))
	case guest.JCC:
		if edge, ok := em.edges[idx]; ok {
			// Trace-internal conditional: branch to the cold side exit and
			// fall through along the hot path.
			cond := in.Cond
			if edge.invert {
				cond = cond.Inverse()
			}
			side := em.label("side")
			if err := em.condBranch(cond, side); err != nil {
				return err
			}
			em.sideExits = append(em.sideExits, sideExit{label: side, target: edge.sideTarget})
			break
		}
		taken := em.label("taken")
		if err := em.condBranch(in.Cond, taken); err != nil {
			return err
		}
		em.exitTo(nextPC) // fallthrough
		a.Label(taken)
		em.exitTo(nextPC + uint32(in.Rel))
	case guest.CALL:
		esp := hostGPR(guest.ESP)
		a.MovImm(tmpImm, int64(nextPC))
		a.Mem(host.LDA, esp, -4, esp)
		em.stackAccess(idx, pc, kindST4, tmpImm)
		em.exitTo(nextPC + uint32(in.Rel))
	case guest.RET:
		esp := hostGPR(guest.ESP)
		em.stackAccess(idx, pc, kindLD4, tmpIndirect)
		a.Mem(host.LDA, esp, 4, esp)
		if em.e.Opt.IBTC {
			// Inline indirect-branch translation cache probe: on a tag hit
			// jump straight to the cached host entry, otherwise fall back
			// to the monitor (which fills the entry).
			miss := em.label("ibtcmiss")
			a.OprLit(host.SRL, tmpIndirect, ibtcShift, tmpA)
			a.OprLit(host.AND, tmpA, ibtcEntries-1, tmpA)
			a.OprLit(host.SLL, tmpA, 4, tmpA)
			a.MovImm(tmpImm, ibtcBase)
			a.Opr(host.ADDQ, tmpImm, tmpA, tmpA)
			// IBTC entries are 16-byte table slots: aligned by construction.
			em.markAligned(a.PC())
			a.Mem(host.LDQ, tmpB, 0, tmpA) // cached guest tag
			a.Opr(host.CMPEQ, tmpB, tmpIndirect, tmpCond)
			a.Br(host.BEQ, tmpCond, miss)
			em.markAligned(a.PC())
			a.Mem(host.LDQ, tmpB, 8, tmpA) // cached host entry
			a.Jmp(host.JMP, host.Zero, tmpB)
			a.Label(miss)
		}
		a.Brk(svcIndirect)
	case guest.PUSH:
		esp := hostGPR(guest.ESP)
		a.Mem(host.LDA, esp, -4, esp)
		em.stackAccess(idx, pc, kindST4, hostGPR(in.R1))
	case guest.POP:
		esp := hostGPR(guest.ESP)
		em.stackAccess(idx, pc, kindLD4, hostGPR(in.R1))
		a.Mem(host.LDA, esp, 4, esp)
		em.flags.note(in.R1)

	default:
		return fmt.Errorf("core: translate: unhandled guest op %v", in.Op)
	}
	return nil
}

// emitRange emits the instructions in [from, to). On the recording pass it
// also records each instruction's host start address (block.bounds) for
// fault attribution — pure metadata, so both passes stay length-invariant.
func (em *emitter) emitRange(from, to int) error {
	b := em.b
	for idx := from; idx < to; idx++ {
		pc := b.instPCs[idx]
		next := pc + uint32(b.instLens[idx])
		if em.record {
			b.bounds = append(b.bounds, instBound{hostPC: em.a.PC(), idx: idx})
		}
		if err := em.inst(idx, pc, next); err != nil {
			return err
		}
	}
	return nil
}

// syntheticExit emits the fallthrough exit a unit needs when its final
// instruction does not branch (split at maxBlockInsts).
func (em *emitter) syntheticExit() {
	b := em.b
	if last := len(b.insts) - 1; last < 0 || !b.insts[last].Op.EndsBlock() {
		var cont uint32
		if last >= 0 {
			cont = b.instPCs[last] + uint32(b.instLens[last])
		} else {
			cont = b.guestPC
		}
		em.exitTo(cont)
	}
}

// body emits the unit's instructions (optionally as a block-granularity
// two-version body, §IV-D), the trace side exits, and the synthetic
// fallthrough exit when needed.
func (em *emitter) body() error {
	b := em.b
	split := -1
	if em.e.Opt.MultiVersion && em.e.Opt.MVBlockGranularity {
		for idx := range b.insts {
			if em.policy[idx] == polMixed {
				split = idx
				break
			}
		}
	}
	if split < 0 {
		if err := em.emitRange(0, len(b.insts)); err != nil {
			return err
		}
		em.syntheticExit()
	} else {
		// Shared prefix up to the first mixed site.
		if err := em.emitRange(0, split); err != nil {
			return err
		}
		// One alignment check on the first mixed site's address selects
		// the copy (paper Fig. 8: "Multi-version Code", block form).
		in := b.insts[split]
		k, _ := guestKind(in.Op)
		m := in.Mem
		if !in.Op.IsExplicitMem() {
			m = guest.MemRef{Base: guest.ESP}
		}
		base, disp := em.addressing(m, k.size())
		v2 := em.label("mv2")
		em.a.Mem(host.LDA, tmpCond, disp, base)
		em.a.OprLit(host.AND, tmpCond, uint8(k.size()-1), tmpCond)
		em.a.Br(host.BNE, tmpCond, v2)
		savedFlags := em.flags
		// Optimistic copy: mixed sites as plain operations. The guard only
		// checked the first site, so the others may still trap — the
		// exception handler covers them, preserving correctness.
		em.mvActive, em.mvPolicy = true, polPlain
		if err := em.emitRange(split, len(b.insts)); err != nil {
			return err
		}
		em.syntheticExit()
		// Pessimistic copy: mixed sites as MDA sequences.
		em.a.Label(v2)
		em.flags = savedFlags
		em.mvPolicy = polSeq
		if err := em.emitRange(split, len(b.insts)); err != nil {
			return err
		}
		em.syntheticExit()
		em.mvActive = false
	}
	// Deferred trace side exits.
	for _, se := range em.sideExits {
		em.a.Label(se.label)
		em.exitTo(se.target)
	}
	return nil
}

// fromPolicy maps the mechanism seam's site decision onto the emitter's
// internal policy enum.
func fromPolicy(p policy.SitePolicy) sitePolicy {
	switch p {
	case policy.Seq:
		return polSeq
	case policy.Mixed:
		return polMixed
	case policy.Adaptive:
		return polAdaptive
	}
	return polPlain
}

// sitePolicies computes the per-site translation policy for the unit by
// assembling a SiteCtx snapshot per memory site (trap history, train
// profile, interpretation profile, adaptive reversion, static-analysis
// verdict) and asking the mechanism strategy. The engine records the
// verdicts and mixed-site set for the emitter; everything mechanism-
// specific lives behind the policy seam.
func (e *Engine) sitePolicies(b *block) (map[int]sitePolicy, bool) {
	pol := make(map[int]sitePolicy)
	for idx, in := range b.insts {
		instPC := b.instPCs[idx]
		if _, isMem := guestKind(in.Op); !isMem {
			continue
		}
		ctx := policy.SiteCtx{
			GuestPC:      instPC,
			KnownMDA:     b.knownMDA[idx],
			StaticMarked: e.Opt.StaticSites[instPC],
		}
		if s := e.dec.profAt(instPC); s != nil {
			ctx.ProfMDA, ctx.ProfAligned = s.mda, s.aligned
		}
		if rv := e.reverted[b.guestPC]; rv != nil && rv[idx] {
			ctx.Reverted = true
		}
		if e.Opt.StaticAlign {
			// Whole-instruction verdicts feed the StaticAlign decorator;
			// the engine records them for dumps/verifier and the stats.
			// Unknown (and mixed-stream) sites keep the base mechanism's
			// decision; memAccessSub further refines per access stream.
			ctx.AlignVerdict = e.alignDB.InstVerdict(instPC, in.Op)
			b.averdict[idx] = ctx.AlignVerdict
			switch ctx.AlignVerdict {
			case align.Aligned:
				e.stats.StaticAlignedSites++
			case align.Misaligned:
				e.stats.StaticMisalignedSites++
			default:
				e.stats.StaticUnknownSites++
			}
		}
		p := fromPolicy(e.mech.SitePolicy(ctx))
		pol[idx] = p
		if p == polMixed {
			b.mixed[idx] = true
		}
	}
	return pol, len(b.mixed) > 0
}

// translate translates the unit at guest pc — a basic block, or a trace of
// blocks when superblock formation applies — consuming the interpretation
// profile. It registers the unit, writes its code into the machine, and
// charges translation cost.
func (e *Engine) translate(pc uint32) (*block, error) {
	if e.Opt.FaultPlan.Should(faultinject.Translate) {
		return nil, errInjectedTranslate
	}
	insts, lens, pcs, err := e.decodeBlock(pc)
	if err != nil {
		return nil, err
	}
	edges := map[int]traceEdge{}
	nblocks := 1
	if e.Opt.Superblocks {
		switch {
		case e.profiled:
			insts, lens, pcs, edges, nblocks, err = e.formTrace(pc, insts, lens, pcs)
		case e.Opt.AOT:
			// No interpretation profile exists ahead of time, so the AOT
			// tier folds only edges that are taken on every execution.
			insts, lens, pcs, edges, nblocks, err = e.formStaticTrace(pc, insts, lens, pcs)
		}
		if err != nil {
			return nil, err
		}
	}
	b := &block{
		guestPC:    pc,
		insts:      insts,
		instLens:   lens,
		instPCs:    pcs,
		nblocks:    nblocks,
		knownMDA:   make(map[int]bool),
		mixed:      make(map[int]bool),
		averdict:   make(map[int]align.Verdict),
		alignedPCs: make(map[uint64]bool),
		guardedPCs: make(map[uint64]bool),
	}
	for _, n := range lens {
		b.guestLen += uint32(n)
	}
	// Retranslations inherit the accumulated trap-discovered MDA sites
	// (§IV-C) so the new code inlines their sequences.
	for idx := range e.retainedMDA[pc] {
		b.knownMDA[idx] = true
	}
	policy, anyMixed := e.sitePolicies(b)
	b.sitePol = policy
	b.twoVer = anyMixed

	// Adaptive sites need streak counters at addresses known to both
	// emission passes.
	counters := make(map[int]uint64)
	for idx := range b.insts {
		if policy[idx] == polAdaptive {
			counters[idx] = e.allocCounter()
		}
	}

	emit := func(base uint64, record bool) (*host.Asm, error) {
		a := host.NewAsm(base)
		em := &emitter{e: e, a: a, b: b, policy: policy, counters: counters, edges: edges, record: record}
		if err := em.body(); err != nil {
			return nil, err
		}
		return a, nil
	}

	// Pass 1: measure. All emission paths produce length-invariant code for
	// the same inputs, so the sizing pass is exact.
	probe, err := emit(0, false)
	if err != nil {
		return nil, err
	}
	size := uint64(probe.Len()) * host.InstBytes
	addr, err := e.cc.allocBlock(size)
	if err != nil {
		return nil, err // engine flushes and retries
	}
	// Pass 2: emit for real, recording sites and exits.
	b.hostEntry = addr
	b.hostSize = size
	a, err := emit(addr, true)
	if err != nil {
		return nil, err
	}
	words, err := a.Finish()
	if err != nil {
		return nil, err
	}
	if uint64(len(words))*host.InstBytes != size {
		return nil, fmt.Errorf("core: translate %#x: size drift between passes", pc)
	}
	e.Mach.WriteCode(addr, words)
	for _, s := range b.sites {
		for _, hpc := range s.hostPCs {
			e.sites[hpc] = siteRef{b: b, site: s}
		}
	}
	e.blocks[pc] = b
	e.blockSpans = append(e.blockSpans, blockSpan{lo: addr, hi: addr + size, b: b})
	e.event(EvTranslate, pc, addr, fmt.Sprintf("%d insts, %d blocks", len(insts), nblocks))
	if e.aotPass {
		// Offline pre-translation: counted separately and free of simulated
		// cycles — the AOT tier's whole point is that this work happens
		// before the program runs (DESIGN.md §13).
		b.aot = true
		e.stats.AOTBlocks++
	} else {
		e.stats.BlocksTranslated++
		if e.Opt.AOT {
			// A dynamic translation despite pre-translation: indirect-target
			// miss, SMC invalidation, or a post-flush refill.
			e.stats.AOTFallbacks++
		}
		cost := e.Opt.TranslateFixedCycles + e.Opt.TranslateCyclesPerInst*uint64(len(insts))
		e.Mach.AddCycles(cost)
	}
	if nblocks > 1 {
		e.stats.Superblocks++
		e.stats.TraceBlocks += uint64(nblocks)
	}
	if b.twoVer {
		e.stats.MultiVersion++
	}
	e.selfCheck("translate")
	return b, nil
}

// Trace-formation bounds.
const (
	maxTraceBlocks = 6
	maxTraceInsts  = 120
	traceMinHeat   = 4    // minimum successor samples before extending
	traceBias      = 0.75 // successor must carry this fraction of exits
)

// formTrace extends the hot block at head along its dominant successors
// (superblock formation — the "retranslate and further optimize" phase the
// paper's two-phase framework describes). The returned instruction list
// concatenates the chained blocks; edges records how each trace-internal
// terminator is emitted.
func (e *Engine) formTrace(head uint32, insts []guest.Inst, lens []int, pcs []uint32) (
	[]guest.Inst, []int, []uint32, map[int]traceEdge, int, error) {
	edges := map[int]traceEdge{}
	visited := map[uint32]bool{head: true}
	nblocks := 1
	cur := head
	for nblocks < maxTraceBlocks && len(insts) < maxTraceInsts {
		next, ok := e.dominantSuccessor(cur)
		if !ok || visited[next] {
			break
		}
		// Only JMP/JCC/fallthrough terminators can be folded into a trace.
		last := len(insts) - 1
		term := insts[last]
		termPC := pcs[last]
		termNext := termPC + uint32(lens[last])
		var edge traceEdge
		switch term.Op {
		case guest.JMP:
			if termNext+uint32(term.Rel) != next {
				return insts, lens, pcs, edges, nblocks, nil
			}
			edge = traceEdge{skip: true}
		case guest.JCC:
			taken := termNext + uint32(term.Rel)
			switch next {
			case taken:
				edge = traceEdge{invert: true, sideTarget: termNext}
			case termNext:
				edge = traceEdge{sideTarget: taken}
			default:
				return insts, lens, pcs, edges, nblocks, nil
			}
		default:
			if term.Op.EndsBlock() || termNext != next {
				// CALL/RET/HALT terminators (or a split that does not lead
				// to the profiled successor) end the trace.
				return insts, lens, pcs, edges, nblocks, nil
			}
			// Block split: the successor already follows fall-through.
		}
		nInsts, nLens, nPCs, err := e.decodeBlock(next)
		if err != nil {
			return nil, nil, nil, nil, 0, err
		}
		if len(insts)+len(nInsts) > maxTraceInsts {
			break
		}
		if term.Op == guest.JMP || term.Op == guest.JCC {
			edges[len(insts)-1] = edge
		}
		insts = append(insts, nInsts...)
		lens = append(lens, nLens...)
		pcs = append(pcs, nPCs...)
		visited[next] = true
		nblocks++
		cur = next
	}
	return insts, lens, pcs, edges, nblocks, nil
}

// formStaticTrace is formTrace for the profile-less AOT tier: it extends
// the block only along edges that are taken on every execution — direct
// jumps and block splits (a block cut short because another block starts
// at its fall-through). Conditional branches end the trace: without a
// profile there is no dominant arm to speculate on, and folding the wrong
// one would pessimize the straight-line layout AOT exists to provide.
func (e *Engine) formStaticTrace(head uint32, insts []guest.Inst, lens []int, pcs []uint32) (
	[]guest.Inst, []int, []uint32, map[int]traceEdge, int, error) {
	edges := map[int]traceEdge{}
	visited := map[uint32]bool{head: true}
	nblocks := 1
	for nblocks < maxTraceBlocks && len(insts) < maxTraceInsts {
		last := len(insts) - 1
		term := insts[last]
		termNext := pcs[last] + uint32(lens[last])
		var next uint32
		fold := false
		switch term.Op {
		case guest.JMP:
			next, fold = termNext+uint32(term.Rel), true
		default:
			if term.Op.EndsBlock() {
				return insts, lens, pcs, edges, nblocks, nil
			}
			next = termNext // block split: fall-through is unconditional
		}
		if visited[next] {
			break
		}
		nInsts, nLens, nPCs, err := e.decodeBlock(next)
		if err != nil {
			return nil, nil, nil, nil, 0, err
		}
		if len(insts)+len(nInsts) > maxTraceInsts {
			break
		}
		if fold {
			edges[last] = traceEdge{skip: true}
		}
		insts = append(insts, nInsts...)
		lens = append(lens, nLens...)
		pcs = append(pcs, nPCs...)
		visited[next] = true
		nblocks++
	}
	return insts, lens, pcs, edges, nblocks, nil
}

// dominantSuccessor consults the interpretation profile for the block's
// overwhelmingly common successor.
func (e *Engine) dominantSuccessor(pc uint32) (uint32, bool) {
	prof := e.profiles[pc]
	if prof == nil || len(prof.succ) == 0 {
		return 0, false
	}
	var total, best uint64
	var bestPC uint32
	for next, n := range prof.succ {
		total += n
		if n > best {
			best, bestPC = n, next
		}
	}
	if total < traceMinHeat || float64(best) < traceBias*float64(total) {
		return 0, false
	}
	return bestPC, true
}
