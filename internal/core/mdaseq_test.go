package core

import (
	"math/rand"
	"testing"

	"mdabt/internal/host"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
)

// TestMDASequencesOnMachine validates the emitted MDA code sequences by
// executing them on the simulated machine for every kind, every in-quad
// alignment, and random data — the end-to-end complement of the pure
// EXT/INS/MSK property tests in package host.
func TestMDASequencesOnMachine(t *testing.T) {
	rnd := rand.New(rand.NewSource(21))
	kinds := []memKind{kindLD4, kindLD2Z, kindLD2S, kindST4, kindST2, kindFLD8, kindFST8}
	const dataBase = 0x2000
	for _, k := range kinds {
		for off := 0; off < 8; off++ {
			for trial := 0; trial < 8; trial++ {
				m := mem.New()
				params := machine.DefaultParams()
				params.UseCaches = false
				mach := machine.New(m, params)

				// Pristine surroundings to detect neighbor corruption.
				init := make([]byte, 32)
				rnd.Read(init)
				m.WriteBytes(dataBase, init)
				val := rnd.Uint64()

				// base register R2 = dataBase+off (any alignment), disp 4.
				mach.SetReg(host.R2, uint64(dataBase+off))
				mach.SetReg(host.R1, val) // store source / load target
				a := host.NewAsm(0x100000)
				emitMDA(a, k, host.R1, host.R2, 4)
				a.Brk(machine.HaltService)
				words, err := a.Finish()
				if err != nil {
					t.Fatal(err)
				}
				mach.WriteCode(0x100000, words)
				mach.SetPC(0x100000)
				if r, _, err := mach.Run(1000); err != nil || r != machine.StopHalt {
					t.Fatalf("%v off=%d: run %v/%v", k, off, r, err)
				}
				if traps := mach.Counters().MisalignTraps; traps != 0 {
					t.Fatalf("%v off=%d: MDA sequence trapped %d times", k, off, traps)
				}

				ea := uint64(dataBase + off + 4)
				size := k.size()
				if k.isStore() {
					// The stored bytes must equal val's low bytes; every
					// other byte must be untouched.
					for i := 0; i < 32; i++ {
						addr := uint64(dataBase + i)
						got := m.Read8(addr)
						var want byte
						if addr >= ea && addr < ea+uint64(size) {
							want = byte(val >> (8 * (addr - ea)))
						} else {
							want = init[i]
						}
						if got != want {
							t.Fatalf("%v off=%d byte %#x: got %#x, want %#x", k, off, addr, got, want)
						}
					}
				} else {
					raw := m.Read(ea, size)
					want := raw
					switch k {
					case kindLD4:
						want = uint64(int64(int32(raw)))
					case kindLD2S:
						want = uint64(int64(int16(raw)))
					}
					if got := mach.Reg(host.R1); got != want {
						t.Fatalf("%v off=%d: loaded %#x, want %#x", k, off, got, want)
					}
				}
			}
		}
	}
}

// TestMDASequenceSameRegister exercises the data==base aliasing case
// (e.g. "mov eax, [eax+4]") through the machine.
func TestMDASequenceSameRegister(t *testing.T) {
	for off := 0; off < 8; off++ {
		m := mem.New()
		params := machine.DefaultParams()
		params.UseCaches = false
		mach := machine.New(m, params)
		m.Write64(0x3000, 0x1122334455667788)
		m.Write64(0x3008, 0x99AABBCCDDEEFF00)
		mach.SetReg(host.R1, uint64(0x3000+off))
		a := host.NewAsm(0x100000)
		emitMDA(a, kindLD4, host.R1, host.R1, 2)
		a.Brk(machine.HaltService)
		words, err := a.Finish()
		if err != nil {
			t.Fatal(err)
		}
		mach.WriteCode(0x100000, words)
		mach.SetPC(0x100000)
		if _, _, err := mach.Run(100); err != nil {
			t.Fatal(err)
		}
		want := uint64(int64(int32(m.Read32(uint64(0x3000 + off + 2)))))
		if got := mach.Reg(host.R1); got != want {
			t.Fatalf("off=%d: got %#x, want %#x", off, got, want)
		}
	}
}

func TestMdaSeqLenMatchesEmission(t *testing.T) {
	for _, k := range []memKind{kindLD4, kindLD2Z, kindLD2S, kindST4, kindST2, kindFLD8, kindFST8} {
		a := host.NewAsm(0x1000)
		emitMDA(a, k, host.R1, host.R2, 0)
		if got := a.Len(); got > mdaSeqLen(k) {
			t.Errorf("%v: emitted %d insts, budget %d", k, got, mdaSeqLen(k))
		}
	}
}

func TestDumpBlock(t *testing.T) {
	e := engineFor(t, mdaLoopImg(t, 50), DefaultOptions(ExceptionHandling))
	mustRun(t, e)
	pcs := e.TranslatedPCs()
	if len(pcs) == 0 {
		t.Fatal("no translations")
	}
	found := false
	for _, pc := range pcs {
		out, err := e.DumpBlock(pc)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 0 {
			t.Fatal("empty dump")
		}
		// The patched site renders as a branch with a '*' marker.
		if containsPatchMarker(out) {
			found = true
		}
	}
	if !found {
		t.Error("no patched-site marker in any block dump")
	}
	if _, err := e.DumpBlock(0xdeadbeef); err == nil {
		t.Error("dump of untranslated pc: want error")
	}
	if s := e.DumpStats(); len(s) == 0 {
		t.Error("empty stats dump")
	}
}

func containsPatchMarker(s string) bool {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == '\n' && s[i+1] == ' ' && i+2 < len(s) && s[i+2] == '*' {
			return true
		}
	}
	return false
}
