package core

import (
	"strings"
	"testing"

	"mdabt/internal/guest"
)

// The mechanism seam: core.Mechanism is a compat shim over the policy
// registry, Options.Validate rejects contradictory knob combinations, and
// the registered SPEH hybrid behaves as static profiling with an exception
// handler for the leftovers.

func TestMechanismByName(t *testing.T) {
	for name, want := range map[string]Mechanism{
		"direct": Direct, "static-profile": StaticProfile, "static": StaticProfile,
		"dynamic-profile": DynamicProfile, "dynprof": DynamicProfile,
		"exception-handling": ExceptionHandling, "eh": ExceptionHandling,
		"dpeh": DPEH, "speh": SPEH,
	} {
		got, ok := MechanismByName(name)
		if !ok || got != want {
			t.Errorf("MechanismByName(%q) = %v,%v, want %v", name, got, ok, want)
		}
	}
	if _, ok := MechanismByName("qemu"); ok {
		t.Error("unknown name resolved")
	}
	ms := Mechanisms()
	if len(ms) < 6 || ms[5] != SPEH {
		t.Errorf("Mechanisms() = %v", ms)
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []struct {
		label string
		opt   Options
		frag  string // expected error fragment
	}{
		{"rearrange/direct", func() Options { o := DefaultOptions(Direct); o.Rearrange = true; return o }(), "Rearrange"},
		{"rearrange/dynprof", func() Options { o := DefaultOptions(DynamicProfile); o.Rearrange = true; return o }(), "Rearrange"},
		{"retranslate/static", func() Options { o := DefaultOptions(StaticProfile); o.Retranslate = true; return o }(), "Retranslate"},
		{"adaptive/eh", func() Options { o := DefaultOptions(ExceptionHandling); o.Adaptive = true; return o }(), "Adaptive"},
		{"adaptive/speh", func() Options { o := DefaultOptions(SPEH); o.Adaptive = true; return o }(), "Adaptive"},
		{"multiversion/eh", func() Options { o := DefaultOptions(ExceptionHandling); o.MultiVersion = true; return o }(), "MultiVersion"},
		{"mvblock-alone", func() Options { o := DefaultOptions(DPEH); o.MVBlockGranularity = true; return o }(), "MVBlockGranularity"},
		{"mixed-band", func() Options { o := DefaultOptions(DPEH); o.MixedSiteMin, o.MixedSiteMax = 0.9, 0.1; return o }(), "MixedSiteMin"},
		{"unknown-mechanism", Options{Mechanism: Mechanism(99)}, "unknown mechanism"},
	}
	for _, c := range bad {
		err := c.opt.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted", c.label)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q lacks %q", c.label, err, c.frag)
		}
		// NewEngine keeps its error-free signature; the rejection must
		// surface from Run before any guest instruction executes.
		e := engineFor(t, mdaLoopImg(t, 10), c.opt)
		if rerr := e.Run(guest.CodeBase, 1<<20); rerr == nil {
			t.Errorf("%s: Run accepted invalid options", c.label)
		}
	}

	good := []Options{
		DefaultOptions(Direct),
		DefaultOptions(SPEH),
		func() Options { o := DefaultOptions(ExceptionHandling); o.Rearrange = true; return o }(),
		func() Options { o := DefaultOptions(SPEH); o.Rearrange = true; o.Retranslate = true; return o }(),
		func() Options {
			o := DefaultOptions(DPEH)
			o.Retranslate, o.MultiVersion, o.MVBlockGranularity, o.Adaptive = true, true, true, true
			return o
		}(),
		{Mechanism: DynamicProfile}, // zero threshold normalizes to the default
	}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate rejected %v: %v", o.Mechanism, err)
		}
	}
}

func TestSPEHMarkedSitesNeverTrap(t *testing.T) {
	// With a complete train profile SPEH emits every MDA site eagerly —
	// zero traps, zero patches, and exactly StaticProfile's code (so the
	// same cycle count).
	img := mdaLoopImg(t, 500)
	data := patternData(256)
	static := censusSites(t, img, data)

	sp := DefaultOptions(SPEH)
	sp.StaticSites = static
	_, _, e := runDBT(t, img, data, sp)
	if c := e.Mach.Counters(); c.MisalignTraps != 0 {
		t.Errorf("traps = %d, want 0 (train profile covers the site)", c.MisalignTraps)
	}
	if s := e.Stats(); s.Patches != 0 {
		t.Errorf("patches = %d, want 0", s.Patches)
	}

	st := DefaultOptions(StaticProfile)
	st.StaticSites = static
	_, _, ref := runDBT(t, img, data, st)
	if e.Mach.Counters().Cycles != ref.Mach.Counters().Cycles {
		t.Errorf("speh cycles %d != static-profile cycles %d on a complete profile",
			e.Mach.Counters().Cycles, ref.Mach.Counters().Cycles)
	}
}

func TestSPEHPatchesUnprofiledSites(t *testing.T) {
	// With an empty profile SPEH degenerates to pure exception handling:
	// the late site traps once and is patched, instead of trapping forever
	// as under StaticProfile.
	img := mdaLoopImg(t, 500)
	data := patternData(256)

	sp := DefaultOptions(SPEH)
	_, _, e := runDBT(t, img, data, sp)
	if c := e.Mach.Counters(); c.MisalignTraps != 1 {
		t.Errorf("traps = %d, want 1 (patched after the first)", c.MisalignTraps)
	}
	if s := e.Stats(); s.Patches != 1 || s.MDAStubs != 1 {
		t.Errorf("patches/stubs = %d/%d, want 1/1", s.Patches, s.MDAStubs)
	}

	_, _, eh := runDBT(t, img, data, DefaultOptions(ExceptionHandling))
	if e.Mach.Counters().Cycles != eh.Mach.Counters().Cycles {
		t.Errorf("speh cycles %d != eh cycles %d on an empty profile",
			e.Mach.Counters().Cycles, eh.Mach.Counters().Cycles)
	}
}

func TestSPEHBeatsParentsOnPartialProfile(t *testing.T) {
	// The motivating case: the train run saw one hot site but missed a
	// late-onset one. StaticProfile pays a trap per post-flip iteration on
	// the missed site; SPEH patches it after one trap.
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.EDI, guest.DataBase+64)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Jmp("loop")
		b.Label("loop")
		// Site A: always misaligned (the train run catches it).
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 2})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		// Site B: aligned until iteration 100, misaligned after.
		b.Load(guest.LD4, guest.ESI, guest.MemRef{Base: guest.EDI, Disp: 0})
		b.ALU(guest.ADDrr, guest.EAX, guest.ESI)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 100)
		b.Jcc(guest.E, "flip")
		b.CmpImm(guest.ECX, 2000)
		b.Jcc(guest.L, "loop")
		b.Halt()
		b.Label("flip")
		b.ALUImm(guest.ADDri, guest.EDI, 2)
		b.Jmp("loop")
	})
	data := patternData(256)
	// Train profile: only site A (the first load) — derive it from a
	// census and keep just the PC with the most MDAs, emulating a train
	// input that never flips site B.
	full := censusSites(t, img, data)
	var sitePCs []uint32
	for pc := range full {
		sitePCs = append(sitePCs, pc)
	}
	if len(sitePCs) != 2 {
		t.Fatalf("expected 2 MDA sites, census found %d", len(sitePCs))
	}
	partial := map[uint32]bool{}
	if sitePCs[0] < sitePCs[1] { // site A is the lower PC
		partial[sitePCs[0]] = true
	} else {
		partial[sitePCs[1]] = true
	}

	run := func(m Mechanism) (uint64, uint64) {
		opt := DefaultOptions(m)
		opt.StaticSites = partial
		_, _, e := runDBT(t, img, data, opt)
		return e.Mach.Counters().Cycles, e.Mach.Counters().MisalignTraps
	}
	spCycles, spTraps := run(SPEH)
	stCycles, stTraps := run(StaticProfile)
	if spTraps != 1 {
		t.Errorf("speh traps = %d, want 1 (late site patched once)", spTraps)
	}
	if stTraps < 1000 {
		t.Errorf("static-profile traps = %d, want ~1900 (late site traps forever)", stTraps)
	}
	if spCycles >= stCycles {
		t.Errorf("speh (%d cycles) not faster than static-profile (%d) with a partial profile",
			spCycles, stCycles)
	}
}
