package core

import (
	"strings"
	"testing"

	"mdabt/internal/guest"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
)

// staticAlignProgram builds a block with one provably-aligned, one
// provably-misaligned, and one unprovable 4-byte access (base pointer
// loaded from memory).
func staticAlignProgram(t *testing.T) []byte {
	return buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.EDI, 0)
		b.Label("loop")
		b.Load(guest.LD4, guest.EAX, guest.MemRef{Base: guest.EBX, Disp: 8}) // aligned
		b.Load(guest.LD4, guest.ECX, guest.MemRef{Base: guest.EBX, Disp: 2}) // misaligned
		b.Load(guest.LD4, guest.ESI, guest.MemRef{Base: guest.EBX})          // pointer from memory: unknown target
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.ESI})
		b.ALU(guest.ADDrr, guest.EAX, guest.ECX)
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.ALUImm(guest.ADDri, guest.EDI, 1)
		b.CmpImm(guest.EDI, 50)
		b.Jcc(guest.L, "loop")
		b.Halt()
	})
}

func TestStaticAlignClassifiesAndEmits(t *testing.T) {
	img := staticAlignProgram(t)
	data := patternData(64)
	// Plant an aligned pointer at data[0] so the unknown-base load works.
	for i, by := range []byte{0x10, 0, 0, byte(guest.DataBase >> 24)} {
		data[i] = by
	}
	for _, mech := range []Mechanism{Direct, ExceptionHandling, DPEH} {
		opt := DefaultOptions(mech)
		opt.StaticAlign = true
		opt.HeatThreshold = 1 // translate even the one-shot block under DPEH
		_, _, e := runDBT(t, img, data, opt)
		st := e.Stats()
		if st.StaticAnalyzedInsts == 0 {
			t.Errorf("%v: analysis ran over zero instructions", mech)
		}
		if st.StaticAlignedSites == 0 {
			t.Errorf("%v: no site proven aligned", mech)
		}
		if st.StaticMisalignedSites == 0 {
			t.Errorf("%v: no site proven misaligned", mech)
		}
		if st.StaticUnknownSites == 0 {
			t.Errorf("%v: no site left unknown (pointer-chased load should be)", mech)
		}
		if st.StaticAlignViolations != 0 {
			t.Errorf("%v: %d violations on a sound program", mech, st.StaticAlignViolations)
		}
		if findings := e.Lint(); len(findings) > 0 {
			t.Errorf("%v: lint: %v", mech, findings[0])
		}
		// The proven-aligned site must not be a registered trap site, so
		// Direct+staticalign does fewer MDA sequences than plain Direct at
		// the same architectural result (checked by cosim elsewhere).
		var dump strings.Builder
		for _, pc := range e.TranslatedPCs() {
			d, err := e.DumpBlock(pc)
			if err != nil {
				t.Fatalf("%v: %v", mech, err)
			}
			dump.WriteString(d)
		}
		for _, frag := range []string{"align=aligned", "align=misaligned", "align=unknown"} {
			if !strings.Contains(dump.String(), frag) {
				t.Errorf("%v: block dumps lack %q:\n%s", mech, frag, dump.String())
			}
		}
	}
}

// TestStaticAlignDropsMDASequences pins the point of the layer: under
// Direct, a proven-aligned site stops paying the MDA sequence, so the hot
// loop gets cheaper while the architectural result stays identical.
func TestStaticAlignDropsMDASequences(t *testing.T) {
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Label("loop")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 8}) // provably aligned
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.Store(guest.ST4, guest.MemRef{Base: guest.EBX, Disp: 16}, guest.EAX) // provably aligned
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 500)
		b.Jcc(guest.L, "loop")
		b.Halt()
	})
	data := patternData(64)
	run := func(sa bool) (guest.CPU, []byte, uint64) {
		opt := DefaultOptions(Direct)
		opt.StaticAlign = sa
		m := mem.New()
		m.WriteBytes(guest.CodeBase, img)
		m.WriteBytes(guest.DataBase, data)
		mach := machine.New(m, machine.DefaultParams())
		e := NewEngine(m, mach, opt)
		if err := e.Run(guest.CodeBase, 500_000_000); err != nil {
			t.Fatal(err)
		}
		arena := make([]byte, len(data))
		m.ReadBytes(guest.DataBase, arena)
		return e.FinalCPU(), arena, mach.Counters().Cycles
	}
	baseCPU, baseArena, baseCycles := run(false)
	saCPU, saArena, saCycles := run(true)
	compareState(t, "direct+staticalign", baseCPU, saCPU, baseArena, saArena)
	if saCycles >= baseCycles {
		t.Errorf("staticalign did not pay off on an aligned loop: %d cycles vs %d", saCycles, baseCycles)
	}
}
