package core

import (
	"fmt"
	"testing"

	"mdabt/internal/guest"
	"mdabt/internal/policy"
)

// pressureProgram is a multi-phase workload: enough distinct hot blocks
// with misaligned traffic that a tiny code cache must flush repeatedly.
func pressureProgram(t *testing.T) []byte {
	t.Helper()
	return buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.EAX, 0)
		for ph := 0; ph < 10; ph++ {
			b.MovImm(guest.ECX, 0)
			b.Label(fmt.Sprintf("p%d", ph))
			b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: int32(ph*5 + 2)})
			b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
			b.Store(guest.ST2, guest.MemRef{Base: guest.EBX, Disp: int32(96 + ph*7 + 1)}, guest.EAX)
			b.ALUImm(guest.ADDri, guest.ECX, 1)
			b.CmpImm(guest.ECX, 30)
			b.Jcc(guest.L, fmt.Sprintf("p%d", ph))
		}
		b.Halt()
	})
}

// TestCachePressureAllMechanisms squeezes every mechanism through a code
// cache far too small for the working set: each run must flush at least
// once, stay invariant-clean, and still produce the reference final state.
func TestCachePressureAllMechanisms(t *testing.T) {
	img := pressureProgram(t)
	data := patternData(256)
	refCPU, refArena := reference(t, img, data)
	static := censusSites(t, img, data)

	for _, mech := range Mechanisms() {
		opt := DefaultOptions(mech)
		p, ok := policy.ByID(int(mech))
		if !ok {
			t.Fatalf("no strategy for %v", mech)
		}
		if p.UsesStaticProfile() {
			opt.StaticSites = static
		}
		if p.WantsInterpProfiling() {
			opt.HeatThreshold = 3
		}
		opt.CodeCacheBytes = 512
		opt.SelfCheck = true
		label := fmt.Sprintf("pressure/%v", mech)
		gotCPU, gotArena, e := runDBT(t, img, data, opt)
		compareState(t, label, refCPU, gotCPU, refArena, gotArena)
		if err := e.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", label, err)
		}
		if e.Stats().Flushes == 0 {
			t.Errorf("%s: expected at least one flush in a 512-byte cache", label)
		}
	}
}

// TestRetainedMDASurvivesFlush asserts the exception handler's
// trap-discovered site knowledge outlives a full cache flush: the
// retranslation after an explicit flush must inline every retained site.
// The workload flips its pointer misaligned only after the hot loop has
// been translated, so even DPEH (whose profiling phase catches steadily
// misaligned sites up front) must discover the sites through traps.
func TestRetainedMDASurvivesFlush(t *testing.T) {
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase) // aligned base, flips at 150
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Label("loop")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 4})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.Store(guest.ST4, guest.MemRef{Base: guest.EBX, Disp: 12}, guest.EAX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 150)
		b.Jcc(guest.E, "flip")
		b.CmpImm(guest.ECX, 300)
		b.Jcc(guest.L, "loop")
		b.Halt()
		b.Label("flip")
		b.ALUImm(guest.ADDri, guest.EBX, 1) // now misaligned
		b.Jmp("loop")
	})
	data := patternData(256)
	for _, mech := range []Mechanism{ExceptionHandling, DPEH} {
		opt := DefaultOptions(mech)
		if mech == DPEH {
			opt.HeatThreshold = 3
		}
		opt.SelfCheck = true
		_, _, e := runDBT(t, img, data, opt)
		checked := 0
		for pc, want := range e.retainedMDA {
			if len(want) == 0 {
				continue
			}
			e.flushAll()
			b, err := e.ensureTranslated(pc)
			if err != nil {
				t.Fatalf("%v: retranslate %#x after flush: %v", mech, pc, err)
			}
			for idx := range want {
				if !b.knownMDA[idx] {
					t.Errorf("%v: block %#x lost retained MDA site #%d across the flush", mech, pc, idx)
				}
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("%v: no retained MDA sites were discovered; the workload is not exercising the handler", mech)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Errorf("%v: %v", mech, err)
		}
	}
}

// TestBlockTooLargeFallsBackToInterpreter runs with a cache too small for
// the hot blocks: the oversized ones must be blacklisted to the
// interpreter and the program must still complete with the reference
// state.
func TestBlockTooLargeFallsBackToInterpreter(t *testing.T) {
	img := pressureProgram(t)
	data := patternData(256)
	refCPU, refArena := reference(t, img, data)
	for _, mech := range []Mechanism{ExceptionHandling, DPEH} {
		opt := DefaultOptions(mech)
		if mech == DPEH {
			opt.HeatThreshold = 2
		}
		opt.CodeCacheBytes = 64
		opt.SelfCheck = true
		label := fmt.Sprintf("toolarge/%v", mech)
		gotCPU, gotArena, e := runDBT(t, img, data, opt)
		compareState(t, label, refCPU, gotCPU, refArena, gotArena)
		s := e.Stats()
		if s.InterpFallbacks == 0 {
			t.Errorf("%s: expected interpreter fallbacks with a 64-byte cache", label)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", label, err)
		}
	}
}

// TestStubZoneReclaimedOnFlush is the allocator-level check that a reset
// reclaims the exception handler's stub zone, not just the block zone.
func TestStubZoneReclaimedOnFlush(t *testing.T) {
	cc := newCodeCache(256, nil)
	for {
		if _, err := cc.allocStub(64); err != nil {
			break
		}
	}
	if cc.stubZoneBytes() == 0 {
		t.Fatal("stub zone empty after filling it")
	}
	if _, err := cc.allocStub(64); err == nil {
		t.Fatal("allocStub succeeded in a full zone")
	}
	cc.reset()
	if cc.stubZoneBytes() != 0 {
		t.Fatalf("stubZoneBytes = %d after reset, want 0", cc.stubZoneBytes())
	}
	if _, err := cc.allocStub(64); err != nil {
		t.Fatalf("allocStub after reset: %v", err)
	}
}

// TestBlockLUTCoherence drives the direct-mapped block LUT through its
// full lifecycle — fill on lookup, eviction on block invalidation, full
// clear on cache flush, refill after retranslation — and asserts it never
// serves a stale binding.
func TestBlockLUTCoherence(t *testing.T) {
	img := pressureProgram(t)
	data := patternData(256)
	opt := DefaultOptions(ExceptionHandling)
	opt.SelfCheck = true
	_, _, e := runDBT(t, img, data, opt)
	if len(e.blocks) == 0 {
		t.Fatal("no live translations after the run")
	}

	// Fill: a lookup caches the binding in the block's slot.
	var pc uint32
	var b *block
	for p, bb := range e.blocks {
		pc, b = p, bb
		break
	}
	if got := e.lookupBlock(pc); got != b {
		t.Fatalf("lookupBlock(%#x) = %p, want %p", pc, got, b)
	}
	if ent := e.blockLUT[pc&blockLUTMask]; ent.b != b || ent.pc != pc {
		t.Fatalf("LUT slot not filled after lookup: %+v", ent)
	}

	// Invalidation evicts the cached binding: a later lookup must miss
	// instead of returning the dead block.
	e.invalidateBlock(b)
	if got := e.lookupBlock(pc); got != nil {
		t.Fatalf("lookupBlock(%#x) after invalidation = %p, want nil", pc, got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("after invalidation: %v", err)
	}

	// Retranslation restores the binding with a fresh block.
	nb, err := e.ensureTranslated(pc)
	if err != nil {
		t.Fatalf("retranslate %#x: %v", pc, err)
	}
	if nb == b {
		t.Fatal("retranslation returned the invalidated block")
	}
	if got := e.lookupBlock(pc); got != nb {
		t.Fatalf("lookupBlock(%#x) after retranslation = %p, want %p", pc, got, nb)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("after retranslation: %v", err)
	}

	// Flush clears every slot; no entry may outlive the code cache.
	e.flushAll()
	for i, ent := range e.blockLUT {
		if ent.b != nil {
			t.Fatalf("LUT slot %d still holds %#x after flush", i, ent.pc)
		}
	}
	if got := e.lookupBlock(pc); got != nil {
		t.Fatalf("lookupBlock(%#x) after flush = %p, want nil", pc, got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("after flush: %v", err)
	}
}

// TestBlockLUTCollision checks the direct-mapped LUT stays correct when two
// guest PCs contend for one slot: each lookup must return its own block,
// with the slot simply swapping owners.
func TestBlockLUTCollision(t *testing.T) {
	img := pressureProgram(t)
	data := patternData(256)
	opt := DefaultOptions(Direct)
	_, _, e := runDBT(t, img, data, opt)

	var pc uint32
	var b *block
	for p, bb := range e.blocks {
		pc, b = p, bb
		break
	}
	// Forge a second live-looking block whose PC aliases the same LUT slot.
	pc2 := pc + blockLUTSize
	b2 := &block{guestPC: pc2, hostEntry: b.hostEntry, hostSize: b.hostSize}
	e.blocks[pc2] = b2
	defer delete(e.blocks, pc2)

	for round := 0; round < 3; round++ {
		if got := e.lookupBlock(pc); got != b {
			t.Fatalf("round %d: lookupBlock(%#x) = %p, want %p", round, pc, got, b)
		}
		if got := e.lookupBlock(pc2); got != b2 {
			t.Fatalf("round %d: lookupBlock(%#x) = %p, want %p", round, pc2, got, b2)
		}
	}
}
