package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mdabt/internal/mem"
)

// The static-profiling mechanism (FX!32-style, paper §III-B) depends on a
// profile gathered in a separate training run and persisted between
// executions — FX!32 kept a profile database on disk for exactly this.
// ProfileDB is that artifact: the set of guest instruction addresses
// observed performing misaligned accesses, with their counts, serialized
// as JSON.

// ProfileEntry is one MDA site in a stored profile.
type ProfileEntry struct {
	PC      uint32 `json:"pc"`
	MDA     uint64 `json:"mda"`
	Aligned uint64 `json:"aligned"`
}

// ProfileDB is a persistent misalignment profile.
type ProfileDB struct {
	// Program identifies the profiled binary (free-form; the workload
	// generator uses the benchmark name).
	Program string         `json:"program"`
	Input   string         `json:"input"`
	Sites   []ProfileEntry `json:"sites"`
}

// NewProfileDB builds a profile database from a census (a training run).
func NewProfileDB(program, input string, c *Census) *ProfileDB {
	db := &ProfileDB{Program: program, Input: input}
	for pc, s := range c.Sites {
		if s.MDA > 0 {
			db.Sites = append(db.Sites, ProfileEntry{PC: pc, MDA: s.MDA, Aligned: s.Aligned})
		}
	}
	sort.Slice(db.Sites, func(i, j int) bool { return db.Sites[i].PC < db.Sites[j].PC })
	return db
}

// StaticSites converts the profile to the translator's site set
// (Options.StaticSites).
func (db *ProfileDB) StaticSites() map[uint32]bool {
	sites := make(map[uint32]bool, len(db.Sites))
	for _, s := range db.Sites {
		sites[s.PC] = true
	}
	return sites
}

// Save writes the profile as JSON.
func (db *ProfileDB) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(db); err != nil {
		return fmt.Errorf("core: profile save: %w", err)
	}
	return nil
}

// LoadProfileDB reads a profile written by Save.
func LoadProfileDB(r io.Reader) (*ProfileDB, error) {
	var db ProfileDB
	if err := json.NewDecoder(r).Decode(&db); err != nil {
		return nil, fmt.Errorf("core: profile load: %w", err)
	}
	for i, s := range db.Sites {
		if s.MDA == 0 {
			return nil, fmt.Errorf("core: profile load: site %d (pc %#x) has zero MDA count", i, s.PC)
		}
	}
	return &db, nil
}

// TrainProfile runs the program at entry under the census interpreter (the
// profiling pre-execution of the paper's Fig. 3) and returns its profile
// database.
func TrainProfile(m *mem.Memory, program, input string, entry uint32, maxInsts uint64) (*ProfileDB, error) {
	c, err := RunCensus(m, entry, maxInsts)
	if err != nil {
		return nil, err
	}
	if !c.Halted {
		return nil, fmt.Errorf("core: train profile: program did not halt within %d instructions", maxInsts)
	}
	return NewProfileDB(program, input, c), nil
}
