package core

import (
	"fmt"
	"sort"
	"strings"

	"mdabt/internal/guest"
	"mdabt/internal/host"
)

// DumpTraces renders every live machine trace: its id, host code span,
// compacted step count, the member translations it covers (guest PC and
// kind), its static side-exit targets, and the memoized chain links it has
// followed. Empty when the trace tier is off or nothing has been traced.
func (e *Engine) DumpTraces() string {
	infos := e.Mach.TraceInfos()
	if len(infos) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, ti := range infos {
		fmt.Fprintf(&sb, "trace %d: host [%#x,%#x), %d steps\n", ti.ID, ti.Start, ti.End, ti.Steps)
		for _, sp := range e.blockSpans {
			if sp.lo >= ti.End || sp.hi <= ti.Start {
				continue
			}
			unit := "block"
			if sp.b.nblocks > 1 {
				unit = fmt.Sprintf("superblock(%d blocks)", sp.b.nblocks)
			}
			fmt.Fprintf(&sb, "  member %s %#x: host [%#x,%#x)\n", unit, sp.b.guestPC, sp.lo, sp.hi)
		}
		for _, x := range ti.Exits {
			fmt.Fprintf(&sb, "  side exit -> host %#x\n", x)
		}
		for _, l := range ti.Links {
			fmt.Fprintf(&sb, "  chain %#x -> %#x\n", l.FromPC, l.ToPC)
		}
	}
	return sb.String()
}

// DumpBlock renders the translation of the block at guest pc: the guest
// instructions side by side with the emitted host code, annotated with the
// per-site policy artifacts (patched branches show up as the patched
// instruction). It returns an error if the block is not translated.
func (e *Engine) DumpBlock(pc uint32) (string, error) {
	b, ok := e.blocks[pc]
	if !ok {
		return "", fmt.Errorf("core: block %#x is not translated", pc)
	}
	var sb strings.Builder
	unit := "block"
	if b.nblocks > 1 {
		unit = fmt.Sprintf("trace(%d blocks)", b.nblocks)
	}
	fmt.Fprintf(&sb, "%s %#x: %d guest insts -> %d host bytes at %#x\n",
		unit, b.guestPC, len(b.insts), b.hostSize, b.hostEntry)
	for i, in := range b.insts {
		gpc := b.instPCs[i]
		fmt.Fprintf(&sb, "  %#08x  %s", gpc, guest.Disasm(gpc, in, b.instLens[i]))
		if pol, ok := b.sitePol[i]; ok {
			fmt.Fprintf(&sb, "  ; site: policy=%s", pol)
			if v, ok := b.averdict[i]; ok {
				fmt.Fprintf(&sb, " align=%s", v)
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("host code:\n")
	for hpc := b.hostEntry; hpc < b.hostEntry+b.hostSize; hpc += host.InstBytes {
		w := e.Mem.Read32(hpc)
		marker := " "
		if ref, ok := e.sites[hpc]; ok && ref.site.patched[hpc] {
			marker = "*" // patched by the exception handler
		} else if b.alignedPCs[hpc] {
			marker = "a" // proven aligned (static verdict or BT-internal data)
		} else if b.guardedPCs[hpc] {
			marker = "g" // plain op inside an alignment-guarded arm
		}
		fmt.Fprintf(&sb, " %s%#010x  %s\n", marker, hpc, host.DisasmWord(hpc, w))
	}
	return sb.String(), nil
}

// DumpStats renders a human-readable statistics summary.
func (e *Engine) DumpStats() string {
	s := e.stats
	c := e.Mach.Counters()
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles=%d insts=%d traps=%d trap-cycles=%d\n",
		c.Cycles, c.Insts, c.MisalignTraps, c.TrapCycles)
	fmt.Fprintf(&sb, "translated=%d retrans=%d rearranged=%d multi-version=%d adaptive=%d/%d\n",
		s.BlocksTranslated, s.Retranslations, s.Rearrangements, s.MultiVersion,
		s.AdaptiveSites, s.AdaptiveReverts)
	fmt.Fprintf(&sb, "patches=%d stubs=%d links=%d flushes=%d interp-insts=%d\n",
		s.Patches, s.MDAStubs, s.Links, s.Flushes, s.InterpretedInsts)
	if e.Opt.StaticAlign {
		fmt.Fprintf(&sb, "static-align: analyzed=%d sites aligned=%d misaligned=%d unknown=%d violations=%d\n",
			s.StaticAnalyzedInsts, s.StaticAlignedSites, s.StaticMisalignedSites,
			s.StaticUnknownSites, s.StaticAlignViolations)
	}
	full := e.Stats() // includes the fault-plan total
	fmt.Fprintf(&sb, "degraded: stub-full=%d unpatchable=%d interp-fallbacks=%d demotions=%d injected-faults=%d\n",
		full.StubZoneFull, full.UnpatchableSites, full.InterpFallbacks,
		full.TrapStormDemotions, full.InjectedFaults)
	fmt.Fprintf(&sb, "code-cache=%dB blocks=%d\n", e.cc.used(), len(e.blocks))
	return sb.String()
}

// TranslatedPCs lists the guest PCs with live translations, sorted.
func (e *Engine) TranslatedPCs() []uint32 {
	pcs := make([]uint32, 0, len(e.blocks))
	for pc := range e.blocks {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}
