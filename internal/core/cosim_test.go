package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mdabt/internal/guest"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
)

// allConfigs enumerates every mechanism configuration the co-simulation
// must validate.
func allConfigs(staticSites map[uint32]bool) []Options {
	var configs []Options
	add := func(o Options) { configs = append(configs, o) }

	add(DefaultOptions(Direct))
	st := DefaultOptions(StaticProfile)
	st.StaticSites = staticSites
	add(st)
	dp := DefaultOptions(DynamicProfile)
	dp.HeatThreshold = 3
	add(dp)
	eh := DefaultOptions(ExceptionHandling)
	add(eh)
	ehr := DefaultOptions(ExceptionHandling)
	ehr.Rearrange = true
	add(ehr)
	dpeh := DefaultOptions(DPEH)
	dpeh.HeatThreshold = 3
	add(dpeh)
	dpehR := dpeh
	dpehR.Retranslate = true
	dpehR.RetransThreshold = 2
	add(dpehR)
	dpehM := dpeh
	dpehM.MultiVersion = true
	add(dpehM)
	dpehMB := dpehM
	dpehMB.MVBlockGranularity = true
	add(dpehMB)
	dpehAll := dpeh
	dpehAll.Retranslate = true
	dpehAll.MultiVersion = true
	add(dpehAll)
	dpehAd := dpeh
	dpehAd.Adaptive = true
	dpehAd.AdaptiveStreak = 8
	add(dpehAd)
	ehIbtc := DefaultOptions(ExceptionHandling)
	ehIbtc.IBTC = true
	add(ehIbtc)
	dpehIbtc := dpeh
	dpehIbtc.Retranslate = true
	dpehIbtc.IBTC = true
	add(dpehIbtc)
	// The +staticalign layer must be state-transparent over any base
	// mechanism, including the mixed/adaptive emitters it intercepts.
	dSA := DefaultOptions(Direct)
	dSA.StaticAlign = true
	add(dSA)
	ehSA := DefaultOptions(ExceptionHandling)
	ehSA.StaticAlign = true
	add(ehSA)
	dpehSA := dpeh
	dpehSA.Retranslate = true
	dpehSA.MultiVersion = true
	dpehSA.StaticAlign = true
	add(dpehSA)
	dpehAdSA := dpehAd
	dpehAdSA.StaticAlign = true
	add(dpehAdSA)
	// The SPEH hybrid: train-marked sites eager, late sites trap-and-patch.
	sp := DefaultOptions(SPEH)
	sp.StaticSites = staticSites
	add(sp)
	spR := sp
	spR.Rearrange = true
	add(spR)
	spSA := sp
	spSA.StaticAlign = true
	add(spSA)
	// SPEH with an empty profile degenerates to pure exception handling.
	add(DefaultOptions(SPEH))
	return configs
}

// reference interprets the program and returns the final CPU plus the data
// arena contents.
func reference(t *testing.T, img []byte, dataInit []byte) (guest.CPU, []byte) {
	t.Helper()
	m := mem.New()
	m.WriteBytes(guest.CodeBase, img)
	m.WriteBytes(guest.DataBase, dataInit)
	c, err := RunCensus(m, guest.CodeBase, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatal("reference run did not halt")
	}
	arena := make([]byte, len(dataInit))
	m.ReadBytes(guest.DataBase, arena)
	return c.FinalCPU, arena
}

// runDBT executes the program under one translator configuration and
// returns the final state.
func runDBT(t *testing.T, img []byte, dataInit []byte, opt Options) (guest.CPU, []byte, *Engine) {
	t.Helper()
	m := mem.New()
	m.WriteBytes(guest.CodeBase, img)
	m.WriteBytes(guest.DataBase, dataInit)
	mach := machine.New(m, machine.DefaultParams())
	e := NewEngine(m, mach, opt)
	if err := e.Run(guest.CodeBase, 500_000_000); err != nil {
		t.Fatalf("%v: %v", opt.Mechanism, err)
	}
	arena := make([]byte, len(dataInit))
	m.ReadBytes(guest.DataBase, arena)
	return e.FinalCPU(), arena, e
}

// compareState asserts the DBT's architectural state matches the reference.
func compareState(t *testing.T, label string, ref, got guest.CPU, refArena, gotArena []byte) {
	t.Helper()
	for r := guest.Reg(0); r < guest.NumRegs; r++ {
		if ref.R[r] != got.R[r] {
			t.Errorf("%s: %v = %#x, want %#x", label, r, got.R[r], ref.R[r])
		}
	}
	for f := guest.FReg(0); f < guest.NumFRegs; f++ {
		if ref.F[f] != got.F[f] {
			t.Errorf("%s: %v = %#x, want %#x", label, f, got.F[f], ref.F[f])
		}
	}
	for i := range refArena {
		if refArena[i] != gotArena[i] {
			t.Errorf("%s: data[%#x] = %#x, want %#x", label, i, gotArena[i], refArena[i])
			if t.Failed() {
				return // one byte is enough to localize
			}
		}
	}
}

// censusSites extracts the set of guest PCs that did MDAs in a reference
// run — the "train profile" for StaticProfile configs.
func censusSites(t *testing.T, img []byte, dataInit []byte) map[uint32]bool {
	t.Helper()
	m := mem.New()
	m.WriteBytes(guest.CodeBase, img)
	m.WriteBytes(guest.DataBase, dataInit)
	c, err := RunCensus(m, guest.CodeBase, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sites := make(map[uint32]bool)
	for pc, s := range c.Sites {
		if s.MDA > 0 {
			sites[pc] = true
		}
	}
	return sites
}

// cosim runs the program under every configuration and compares against
// the reference interpreter.
func cosim(t *testing.T, name string, img []byte, dataInit []byte) {
	t.Helper()
	refCPU, refArena := reference(t, img, dataInit)
	static := censusSites(t, img, dataInit)
	for _, opt := range allConfigs(static) {
		opt := opt
		label := fmt.Sprintf("%s/%v(re=%v,rt=%v,mv=%v,sa=%v)", name, opt.Mechanism, opt.Rearrange, opt.Retranslate, opt.MultiVersion, opt.StaticAlign)
		gotCPU, gotArena, e := runDBT(t, img, dataInit, opt)
		compareState(t, label, refCPU, gotCPU, refArena, gotArena)
		// Every cosim run doubles as a verifier pass over the emitted code.
		if findings := e.Lint(); len(findings) > 0 {
			t.Errorf("%s: translation lint: %v (%d findings)", label, findings[0], len(findings))
		}
		if opt.StaticAlign {
			if v := e.Stats().StaticAlignViolations; v != 0 {
				t.Errorf("%s: %d static-align violations", label, v)
			}
		}
	}
}

func buildImg(t *testing.T, build func(b *guest.Builder)) []byte {
	t.Helper()
	b := guest.NewBuilder()
	build(b)
	img, err := b.Build(guest.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func patternData(n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i*7 + 3)
	}
	return d
}

// TestCosimMisalignedLoop is the canonical hot loop with misaligned
// accesses of every size, plus aligned traffic.
func TestCosimMisalignedLoop(t *testing.T) {
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0) // i
		b.MovImm(guest.EAX, 0) // acc
		b.Label("loop")
		// Misaligned 4-byte load at +2, aligned at +8.
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 2})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 8})
		b.ALU(guest.XORrr, guest.EAX, guest.EDX)
		// Misaligned 2-byte signed load, misaligned 2-byte store.
		b.Load(guest.LD2S, guest.ESI, guest.MemRef{Base: guest.EBX, Disp: 5})
		b.ALU(guest.ADDrr, guest.EAX, guest.ESI)
		b.Store(guest.ST2, guest.MemRef{Base: guest.EBX, Disp: 17}, guest.EAX)
		// Misaligned 8-byte FP load/store.
		b.FLoad(guest.F0, guest.MemRef{Base: guest.EBX, Disp: 20})
		b.FAdd(guest.F1, guest.F0)
		b.FStore(guest.MemRef{Base: guest.EBX, Disp: 36}, guest.F1)
		// Misaligned 4-byte store.
		b.Store(guest.ST4, guest.MemRef{Base: guest.EBX, Disp: 49}, guest.EAX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 200)
		b.Jcc(guest.L, "loop")
		b.Halt()
	})
	cosim(t, "misloop", img, patternData(256))
}

// TestCosimIndexedAddressing exercises base+index*scale+disp and large
// displacements.
func TestCosimIndexedAddressing(t *testing.T) {
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Label("loop")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, HasIndex: true, Index: guest.ECX, Scale: 4, Disp: 3})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.Store(guest.ST4, guest.MemRef{Base: guest.EBX, HasIndex: true, Index: guest.ECX, Scale: 8, Disp: 401}, guest.EAX)
		b.Load(guest.LD2Z, guest.EDX, guest.MemRef{Base: guest.EBX, HasIndex: true, Index: guest.ECX, Scale: 2, Disp: 100})
		b.ALU(guest.XORrr, guest.EAX, guest.EDX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 50)
		b.Jcc(guest.L, "loop")
		b.Halt()
	})
	cosim(t, "indexed", img, patternData(2048))
}

// TestCosimCallsAndStack exercises CALL/RET/PUSH/POP translation.
func TestCosimCallsAndStack(t *testing.T) {
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Label("loop")
		b.Push(guest.ECX)
		b.Call("work")
		b.Pop(guest.ECX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 100)
		b.Jcc(guest.L, "loop")
		b.Halt()
		b.Label("work")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 6}) // MDA
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.Store(guest.ST4, guest.MemRef{Base: guest.EBX, Disp: 32}, guest.EAX)
		b.Ret()
	})
	cosim(t, "calls", img, patternData(64))
}

// TestCosimPhaseChange flips a pointer from aligned to misaligned halfway
// through — the behaviour-change scenario behind retranslation (§IV-C).
func TestCosimPhaseChange(t *testing.T) {
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase) // aligned base
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Label("loop")
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 4})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.Store(guest.ST4, guest.MemRef{Base: guest.EBX, Disp: 12}, guest.EAX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 150)
		b.Jcc(guest.E, "flip")
		b.CmpImm(guest.ECX, 300)
		b.Jcc(guest.L, "loop")
		b.Halt()
		b.Label("flip")
		b.ALUImm(guest.ADDri, guest.EBX, 1) // now misaligned
		b.Jmp("loop")
	})
	cosim(t, "phase", img, patternData(128))
}

// TestCosimMixedAlignment alternates one site between aligned and
// misaligned addresses — the multi-version scenario (§IV-D).
func TestCosimMixedAlignment(t *testing.T) {
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ECX, 0)
		b.MovImm(guest.EAX, 0)
		b.Label("loop")
		// EA alternates DataBase+0 / DataBase+1 with ECX parity.
		b.Mov(guest.ESI, guest.ECX)
		b.ALUImm(guest.ANDri, guest.ESI, 1)
		b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EBX, HasIndex: true, Index: guest.ESI, Scale: 1, Disp: 8})
		b.ALU(guest.ADDrr, guest.EAX, guest.EDX)
		b.ALUImm(guest.ADDri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 120)
		b.Jcc(guest.L, "loop")
		b.Halt()
	})
	cosim(t, "mixed", img, patternData(64))
}

// TestCosimRandomPrograms generates constrained random programs and
// co-simulates each under every configuration.
func TestCosimRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			img := randomProgram(t, seed)
			cosim(t, fmt.Sprintf("rand%d", seed), img, patternData(4096))
		})
	}
}

// randomProgram builds a terminating random program: an outer counted loop
// around straight-line random bodies with forward conditional skips and
// balanced push/pop pairs.
func randomProgram(t *testing.T, seed int64) []byte {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	b := guest.NewBuilder()
	// ebx: aligned base; esi: misaligned base; edi: loop counter.
	b.MovImm(guest.EBX, guest.DataBase)
	b.MovImm(guest.ESI, guest.DataBase+1024+int32(rnd.Intn(7)))
	b.MovImm(guest.EDI, int32(40+rnd.Intn(60)))
	b.MovImm(guest.EAX, int32(rnd.Uint32()))
	b.MovImm(guest.ECX, int32(rnd.Uint32()))
	b.MovImm(guest.EDX, int32(rnd.Uint32()))
	b.MovImm(guest.EBP, int32(rnd.Uint32()))
	b.Label("top")
	regs := []guest.Reg{guest.EAX, guest.ECX, guest.EDX, guest.EBP}
	bases := []guest.Reg{guest.EBX, guest.ESI}
	nBody := 10 + rnd.Intn(20)
	skips := 0
	for i := 0; i < nBody; i++ {
		r := regs[rnd.Intn(len(regs))]
		r2 := regs[rnd.Intn(len(regs))]
		base := bases[rnd.Intn(len(bases))]
		m := guest.MemRef{Base: base, Disp: int32(rnd.Intn(512))}
		if rnd.Intn(3) == 0 {
			m.HasIndex = true
			m.Index = r2
			m.Scale = 1
			m.Disp = int32(rnd.Intn(16))
			// Clamp the index contribution: use a masked register.
			b.ALUImm(guest.ANDri, r2, 0xFF)
		}
		switch rnd.Intn(15) {
		case 14:
			if rnd.Intn(2) == 0 {
				b.Call("leafMem")
			} else {
				b.Call("leafALU")
			}
		case 12:
			b.Lea(r, m)
		case 13:
			if rnd.Intn(2) == 0 {
				b.Load(guest.LD1S, r, m)
			} else {
				b.Load(guest.LD1Z, r, m)
			}
		case 0:
			b.Load(guest.LD4, r, m)
		case 1:
			b.Load(guest.LD2Z, r, m)
		case 2:
			b.Load(guest.LD2S, r, m)
		case 3:
			b.Store(guest.ST4, m, r)
		case 4:
			b.Store(guest.ST2, m, r)
		case 5:
			b.Store(guest.ST1, m, r)
		case 6:
			f := guest.FReg(rnd.Intn(guest.NumFRegs))
			if rnd.Intn(2) == 0 {
				b.FLoad(f, m)
			} else {
				b.FStore(m, f)
			}
		case 7:
			ops := []guest.Op{guest.ADDrr, guest.SUBrr, guest.ANDrr, guest.ORrr, guest.XORrr, guest.IMULrr}
			b.ALU(ops[rnd.Intn(len(ops))], r, r2)
		case 8:
			ops := []guest.Op{guest.ADDri, guest.SUBri, guest.ANDri, guest.ORri, guest.XORri, guest.IMULri}
			b.ALUImm(ops[rnd.Intn(len(ops))], r, int32(rnd.Uint32()))
		case 9:
			ops := []guest.Op{guest.SHLri, guest.SHRri, guest.SARri}
			b.ALUImm(ops[rnd.Intn(len(ops))], r, int32(rnd.Intn(32)))
		case 10:
			b.Push(r)
			b.ALUImm(guest.XORri, r, int32(rnd.Uint32())) // scramble
			b.Pop(r)
		case 11:
			// Bounded string copy: mask the count, point esi/edi into the
			// arena with random (possibly misaligned) offsets. EDI is the
			// outer loop counter, so preserve it around the copy.
			if rnd.Intn(2) == 0 {
				b.Push(guest.EDI)
				b.MovImm(guest.ESI, guest.DataBase+int32(rnd.Intn(256)))
				b.MovImm(guest.EDI, guest.DataBase+2048+int32(rnd.Intn(256)))
				b.MovImm(guest.ECX, int32(rnd.Intn(12)))
				b.Emit(guest.Inst{Op: guest.REPMOVS4})
				b.Pop(guest.EDI)
				break
			}
			// Forward conditional skip over a couple of instructions.
			label := fmt.Sprintf("skip%d_%d", seed, skips)
			skips++
			conds := []guest.Cond{guest.E, guest.NE, guest.L, guest.GE, guest.B, guest.AE, guest.S, guest.NS, guest.LE, guest.G, guest.BE, guest.A}
			if rnd.Intn(2) == 0 {
				b.Cmp(r, r2)
			} else {
				b.CmpImm(r, int32(rnd.Uint32()))
			}
			b.Jcc(conds[rnd.Intn(len(conds))], label)
			b.ALUImm(guest.ADDri, r2, 13)
			b.Load(guest.LD4, r2, guest.MemRef{Base: guest.EBX, Disp: int32(rnd.Intn(64))})
			b.Label(label)
		}
	}
	b.ALUImm(guest.SUBri, guest.EDI, 1)
	b.CmpImm(guest.EDI, 0)
	b.Jcc(guest.G, "top")
	b.Halt()
	// Two leaf subroutines reachable from the body (case 14): one touches
	// misaligned memory, one is pure ALU.
	b.Label("leafMem")
	b.Load(guest.LD4, guest.EAX, guest.MemRef{Base: guest.ESI, Disp: int32(rnd.Intn(64))})
	b.ALUImm(guest.ADDri, guest.EAX, 13)
	b.Store(guest.ST2, guest.MemRef{Base: guest.EBX, Disp: int32(rnd.Intn(64))}, guest.EAX)
	b.Ret()
	b.Label("leafALU")
	b.ALUImm(guest.XORri, guest.ECX, int32(rnd.Uint32()))
	b.ALUImm(guest.SHRri, guest.ECX, 3)
	b.Ret()
	img, err := b.Build(guest.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestCosimStringCopy exercises REPMOVS4 (the memcpy idiom) with every
// combination of src/dst alignment under every mechanism configuration.
func TestCosimStringCopy(t *testing.T) {
	for _, offs := range [][2]int32{{0, 0}, {2, 0}, {0, 2}, {2, 6}, {1, 3}} {
		offs := offs
		img := buildImg(t, func(b *guest.Builder) {
			b.MovImm(guest.EDX, 0)
			b.Label("outer")
			b.MovImm(guest.ESI, guest.DataBase+offs[0])
			b.MovImm(guest.EDI, guest.DataBase+512+offs[1])
			b.MovImm(guest.ECX, 24)
			b.Emit(guest.Inst{Op: guest.REPMOVS4})
			b.ALUImm(guest.ADDri, guest.EDX, 1)
			b.CmpImm(guest.EDX, 60)
			b.Jcc(guest.L, "outer")
			b.Halt()
		})
		cosim(t, "strcopy", img, patternData(1024))
	}
}

// TestStringCopyZeroCount checks the count-zero edge case end to end.
func TestStringCopyZeroCount(t *testing.T) {
	img := buildImg(t, func(b *guest.Builder) {
		b.MovImm(guest.ESI, guest.DataBase)
		b.MovImm(guest.EDI, guest.DataBase+64)
		b.MovImm(guest.ECX, 0)
		b.Emit(guest.Inst{Op: guest.REPMOVS4})
		b.MovImm(guest.EAX, 7)
		b.Halt()
	})
	cosim(t, "strcopy0", img, patternData(256))
}

// TestCosimSoak is a heavier randomized co-simulation pass (skipped in
// -short mode): more seeds, longer programs, all configurations.
func TestCosimSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for seed := int64(100); seed < 130; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			img := randomProgram(t, seed)
			cosim(t, fmt.Sprintf("soak%d", seed), img, patternData(4096))
		})
	}
}
