package core

import (
	"testing"

	"mdabt/internal/align"
	"mdabt/internal/guest"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
	"mdabt/internal/workload"
)

// aotTestDecoder wraps guest.Decode over loaded memory, mirroring what the
// offline internal/aot builder uses (core cannot import internal/aot — it
// imports us — so the schedule is recovered the same way it does it).
func aotTestDecoder(m *mem.Memory) align.Decoder {
	return func(pc uint32) (guest.Inst, int, error) {
		var buf [16]byte
		for i := range buf {
			buf[i] = m.Read8(uint64(pc) + uint64(i))
		}
		return guest.Decode(buf[:])
	}
}

func aotTestPrograms(t *testing.T) []struct {
	name string
	img  []byte
} {
	t.Helper()
	return []struct {
		name string
		img  []byte
	}{
		{"misloop", mdaLoopImg(t, 300)},
		{"lateonset", lateOnsetImg(t, 100, 400)},
		{"multiblock", multiBlockLoopImg(t, 800)},
		{"mixedgroup", mixedGroupImg(t, 300)},
	}
}

// TestAOTZeroDynamicTranslations is the tier's core claim: on a program
// whose CFG recovers completely, the aot mechanism performs zero dynamic
// translations — everything executes out of the pre-seeded cache — while
// computing the exact architectural state of the reference interpreter.
// The translation-validation lint must also pass over every AOT block.
func TestAOTZeroDynamicTranslations(t *testing.T) {
	data := patternData(256)
	for _, p := range aotTestPrograms(t) {
		refCPU, refArena := reference(t, p.img, data)
		cpu, arena, e := runDBT(t, p.img, data, DefaultOptions(AOT))
		compareState(t, p.name+"/aot", refCPU, cpu, refArena, arena)

		s := e.Stats()
		if s.AOTBlocks == 0 {
			t.Errorf("%s: no blocks pre-translated", p.name)
		}
		if s.BlocksTranslated != 0 {
			t.Errorf("%s: %d dynamic translations, want 0 (complete recovery)", p.name, s.BlocksTranslated)
		}
		if s.AOTFallbacks != 0 {
			t.Errorf("%s: %d JIT fallbacks, want 0", p.name, s.AOTFallbacks)
		}
		if s.AOTHits == 0 {
			t.Errorf("%s: no dispatches hit the pre-translated cache", p.name)
		}
		if problems := e.Lint(); len(problems) != 0 {
			t.Errorf("%s: lint over AOT output: %v", p.name, problems)
		}
	}
}

// TestAOTWarmColdBitIdentical compares a cold engine (the aot mechanism
// recovering its own CFG in-engine) against a warm one adopting an offline
// image (Options.AOTBlocks carrying the same schedule, as the serving
// layer does). Both fingerprints — every machine counter and every Stats
// field — must be bit-identical: adopting an image is pure startup
// plumbing, never a behaviour change.
func TestAOTWarmColdBitIdentical(t *testing.T) {
	data := patternData(256)
	for _, p := range aotTestPrograms(t) {
		static := censusSites(t, p.img, data)
		configs := []struct {
			name string
			opt  Options
		}{
			{"aot", DefaultOptions(AOT)},
			{"speh+aot", func() Options {
				o := DefaultOptions(SPEH)
				o.StaticSites = static
				o.AOT = true
				o.StaticAlign = true
				return o
			}()},
		}
		for _, cfg := range configs {
			_, _, cold := runDBT(t, p.img, data, cfg.opt)

			m := mem.New()
			m.WriteBytes(guest.CodeBase, p.img)
			m.WriteBytes(guest.DataBase, data)
			warmOpt := cfg.opt
			warmOpt.AOTBlocks = align.RecoverCFG(aotTestDecoder(m), guest.CodeBase, MaxBlockInsts).BlockPCs()
			_, _, warm := runDBT(t, p.img, data, warmOpt)

			if c, w := equivalenceFingerprint(cold), equivalenceFingerprint(warm); c != w {
				t.Errorf("%s|%s: warm start diverged from cold\ncold %s\nwarm %s", p.name, cfg.name, c, w)
			}
		}
	}
}

// TestAOTWarmColdFaultPrograms extends the warm/cold identity to the
// guest-fault workload: page protections, a run ending in a delivered
// fault, and self-modifying code must all leave the two starts
// indistinguishable.
func TestAOTWarmColdFaultPrograms(t *testing.T) {
	progs, err := workload.FaultPrograms()
	if err != nil {
		t.Fatal(err)
	}
	run := func(p *workload.FaultProgram, opt Options) (*Engine, error) {
		m := mem.New()
		p.Load(m)
		mach := machine.New(m, machine.DefaultParams())
		e := NewEngine(m, mach, opt)
		return e, e.Run(p.Entry(), 500_000_000)
	}
	for _, p := range progs {
		cold, cerr := run(p, DefaultOptions(AOT))
		if p.ExpectFault != (cerr != nil) {
			t.Fatalf("%s: cold run err %v, expect-fault %v", p.Name, cerr, p.ExpectFault)
		}

		m := mem.New()
		p.Load(m)
		warmOpt := DefaultOptions(AOT)
		warmOpt.AOTBlocks = align.RecoverCFG(aotTestDecoder(m), p.Entry(), MaxBlockInsts).BlockPCs()
		warm, werr := run(p, warmOpt)
		if (cerr == nil) != (werr == nil) {
			t.Fatalf("%s: cold err %v, warm err %v", p.Name, cerr, werr)
		}
		if c, w := equivalenceFingerprint(cold), equivalenceFingerprint(warm); c != w {
			t.Errorf("%s: warm start diverged from cold\ncold %s\nwarm %s", p.Name, c, w)
		}
	}
}

// TestCFGRecoveryCoversDynamicBlocks is the soundness cross-check from the
// acceptance criteria: every block the dynamic translator discovers at
// run time must already be in the statically recovered CFG, for all
// workload programs — including the self-modifying one, whose two stub
// variants share an instruction layout, so the rewritten code re-enters at
// recovered boundaries.
func TestCFGRecoveryCoversDynamicBlocks(t *testing.T) {
	data := patternData(256)
	check := func(name string, e *Engine, cfg *align.CFG) {
		t.Helper()
		if cfg.Escapes {
			t.Errorf("%s: static recovery escaped; cannot claim coverage", name)
			return
		}
		for _, pc := range e.TranslatedPCs() {
			if cfg.Blocks[pc] == nil {
				t.Errorf("%s: dynamic block %#x missed by static recovery", name, pc)
			}
		}
	}
	for _, p := range aotTestPrograms(t) {
		for _, mech := range []Mechanism{Direct, ExceptionHandling} {
			m := mem.New()
			m.WriteBytes(guest.CodeBase, p.img)
			cfg := align.RecoverCFG(aotTestDecoder(m), guest.CodeBase, MaxBlockInsts)
			_, _, e := runDBT(t, p.img, data, DefaultOptions(mech))
			check(p.name, e, cfg)
		}
	}
	progs, err := workload.FaultPrograms()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		m := mem.New()
		p.Load(m)
		cfg := align.RecoverCFG(aotTestDecoder(m), p.Entry(), MaxBlockInsts)

		rm := mem.New()
		p.Load(rm)
		mach := machine.New(rm, machine.DefaultParams())
		e := NewEngine(rm, mach, DefaultOptions(ExceptionHandling))
		rerr := e.Run(p.Entry(), 500_000_000)
		if p.ExpectFault != (rerr != nil) {
			t.Fatalf("%s: run err %v, expect-fault %v", p.Name, rerr, p.ExpectFault)
		}
		check(p.Name, e, cfg)
	}
}

// TestAOTResetReadoption drives the serving layer's reuse path: one engine,
// Reset between runs with the image schedule applied each time. Every run
// must come entirely out of the pre-seeded cache, and the second run's
// fingerprint must match the first bit for bit.
func TestAOTResetReadoption(t *testing.T) {
	img := mdaLoopImg(t, 300)
	data := patternData(256)

	m := mem.New()
	m.WriteBytes(guest.CodeBase, img)
	opt := DefaultOptions(AOT)
	opt.AOTBlocks = align.RecoverCFG(aotTestDecoder(m), guest.CodeBase, MaxBlockInsts).BlockPCs()

	mach := machine.New(m, machine.DefaultParams())
	e := NewEngine(m, mach, opt)
	var prints []string
	for run := 0; run < 2; run++ {
		if run > 0 {
			e.Reset(opt)
		}
		e.LoadImage(guest.CodeBase, img)
		m.WriteBytes(guest.DataBase, data)
		if err := e.Run(guest.CodeBase, 500_000_000); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		s := e.Stats()
		if s.AOTBlocks == 0 || s.BlocksTranslated != 0 || s.AOTFallbacks != 0 {
			t.Errorf("run %d: stats %+v, want pre-seeded blocks and zero dynamic translations", run, s)
		}
		prints = append(prints, equivalenceFingerprint(e))
	}
	if prints[0] != prints[1] {
		t.Errorf("re-adoption after Reset diverged\nfirst  %s\nsecond %s", prints[0], prints[1])
	}
}
