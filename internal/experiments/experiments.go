package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mdabt/internal/core"
	"mdabt/internal/metrics"
	"mdabt/internal/workload"
)

// Result is one regenerated table or figure: named rows (benchmarks) with
// one or more value series (columns / bar groups).
type Result struct {
	ID     string
	Title  string
	Names  []string
	Order  []string // series render order
	Series map[string][]float64
	Notes  []string

	mu sync.Mutex
}

func newResult(id, title string, names []string, order ...string) *Result {
	r := &Result{ID: id, Title: title, Names: names, Order: order, Series: map[string][]float64{}}
	for _, s := range order {
		r.Series[s] = make([]float64, len(names))
	}
	return r
}

func (r *Result) idx(name string) int {
	for i, n := range r.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// set stores a value (goroutine-safe: runners fill rows concurrently).
func (r *Result) set(series, name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.idx(name)
	if i < 0 {
		panic("experiments: unknown row " + name)
	}
	r.Series[series][i] = v
}

// Value fetches a stored value.
func (r *Result) Value(series, name string) float64 {
	i := r.idx(name)
	if i < 0 {
		panic("experiments: unknown row " + name)
	}
	return r.Series[series][i]
}

// Geomean returns the geometric mean of a series.
func (r *Result) Geomean(series string) float64 { return metrics.Geomean(r.Series[series]) }

// Mean returns the arithmetic mean of a series.
func (r *Result) Mean(series string) float64 { return metrics.Mean(r.Series[series]) }

// Render produces the paper-style ASCII artifact: a table, plus a bar
// chart when the result is a single-series "figure".
func (r *Result) Render() string {
	var sb strings.Builder
	t := metrics.NewTable(fmt.Sprintf("%s — %s", strings.ToUpper(r.ID), r.Title),
		append([]string{"benchmark"}, r.Order...)...)
	for i, name := range r.Names {
		cells := make([]any, 0, len(r.Order)+1)
		cells = append(cells, name)
		for _, s := range r.Order {
			cells = append(cells, r.Series[s][i])
		}
		t.Row(cells...)
	}
	sb.WriteString(t.String())
	if len(r.Order) == 1 && strings.HasPrefix(r.ID, "fig") {
		bc := metrics.NewBarChart("", 40)
		for i, name := range r.Names {
			bc.Bar(name, r.Series[r.Order[0]][i])
		}
		sb.WriteByte('\n')
		sb.WriteString(bc.String())
	}
	if len(r.Order) > 0 {
		sb.WriteString("geomean:")
		for _, s := range r.Order {
			fmt.Fprintf(&sb, "  %s=%.4g", s, r.Geomean(s))
		}
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// CSV renders the result as comma-separated values (header row, then one
// row per benchmark) for downstream plotting.
func (r *Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("benchmark")
	for _, s := range r.Order {
		sb.WriteByte(',')
		sb.WriteString(s)
	}
	sb.WriteByte('\n')
	for i, name := range r.Names {
		sb.WriteString(name)
		for _, s := range r.Order {
			fmt.Fprintf(&sb, ",%g", r.Series[s][i])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Runner generates one experiment.
type Runner func(*Session) (*Result, error)

// Registry maps experiment IDs to runners, in paper order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"table1", TableI},
		{"table2", TableII},
		{"fig1", Figure1},
		{"fig10", Figure10},
		{"fig11", Figure11},
		{"fig12", Figure12},
		{"fig13", Figure13},
		{"fig14", Figure14},
		{"fig15", Figure15},
		{"fig16", Figure16},
		{"table3", TableIII},
		{"table4", TableIV},
		// Extensions beyond the paper's artifacts.
		{"adaptive", AdaptiveStudy},
		{"ablation-chaining", ChainingAblation},
		{"ablation-ibtc", IBTCAblation},
		{"ablation-superblocks", SuperblockAblation},
		{"traces", TracesStudy},
		{"staticalign", StaticAlignStudy},
		{"sitehist", SiteHistogram},
		{"speh", SPEHStudy},
		{"aot", AOTStudy},
		{"faults", FaultStudy},
	}
}

// Lookup finds a runner by ID.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// TableII reproduces Table II: the mechanisms and their configuration
// choices. It is a static inventory — rendered from the implementation so
// it can never drift from the code.
func TableII(s *Session) (*Result, error) {
	rows := []string{"Direct", "StaticProfiling", "DynamicProfiling", "ExceptionHandling", "DPEH"}
	r := newResult("table2", "MDA handling mechanisms and configuration choices", rows)
	defaults := map[string]core.Options{
		"Direct":            core.DefaultOptions(core.Direct),
		"StaticProfiling":   core.DefaultOptions(core.StaticProfile),
		"DynamicProfiling":  core.DefaultOptions(core.DynamicProfile),
		"ExceptionHandling": core.DefaultOptions(core.ExceptionHandling),
		"DPEH":              core.DefaultOptions(core.DPEH),
	}
	choices := map[string]string{
		"Direct":            "none",
		"StaticProfiling":   "train-input profile database",
		"DynamicProfiling":  fmt.Sprintf("translation threshold (default %d)", defaults["DynamicProfiling"].HeatThreshold),
		"ExceptionHandling": "code rearrangement (Rearrange)",
		"DPEH": fmt.Sprintf("retranslation (threshold %d), multi-version code, adaptive sites; heating threshold %d",
			defaults["DPEH"].RetransThreshold, defaults["DPEH"].HeatThreshold),
	}
	for _, name := range rows {
		r.Notes = append(r.Notes, fmt.Sprintf("%s: %s", name, choices[name]))
	}
	return r, nil
}

// TableI reproduces Table I: NMI, MDA count and MDA ratio per benchmark
// (our scaled census next to the paper's values).
func TableI(s *Session) (*Result, error) {
	names := allNames()
	r := newResult("table1", "MDAs in SPEC CPU2000 and CPU2006 (census, scaled)",
		names, "NMI", "MDAs", "Ratio%", "paperNMI", "paperMDAs", "paperRatio%")
	err := s.forEach(names, func(name string) error {
		c, err := s.Census(name, workload.Ref)
		if err != nil {
			return err
		}
		spec, _ := workload.SpecByName(name)
		r.set("NMI", name, float64(c.NMI()))
		r.set("MDAs", name, float64(c.MDAs))
		r.set("Ratio%", name, 100*c.Ratio())
		r.set("paperNMI", name, float64(spec.PaperNMI))
		r.set("paperMDAs", name, spec.PaperMDAs)
		r.set("paperRatio%", name, 100*spec.PaperRatio)
		return nil
	})
	r.Notes = append(r.Notes, "dynamic counts scaled ~2e4x down from the paper's runs; ratios are dialed to Table I where the simulation budget allows")
	return r, err
}

// Figure1 reproduces Figure 1: native-x86 speedup from compiling with
// alignment-optimization flags (two compiler models), showing no large
// average benefit.
func Figure1(s *Session) (*Result, error) {
	names := selectedNames()
	r := newResult("fig1", "Speedup with alignment optimization flags (native x86 model)",
		names, "pathscale%", "icc%")
	err := s.forEach(names, func(name string) error {
		def, err := s.nativeCycles(name, "")
		if err != nil {
			return err
		}
		for series, variant := range map[string]string{"pathscale%": "psc", "icc%": "icc"} {
			al, err := s.nativeCycles(name, variant)
			if err != nil {
				return err
			}
			r.set(series, name, 100*(float64(def)/float64(al)-1))
		}
		return nil
	})
	r.Notes = append(r.Notes,
		"paper reports 1.0% (pathscale) / 1.8% (icc) average speedup; our model reproduces the 'no significant benefit' conclusion",
		"working-set-growth slowdowns (the paper's negative bars) are under-represented: the scaled arenas stay cache-resident")
	return r, err
}

// Figure10 reproduces Figure 10: runtime of the dynamic-profiling
// mechanism at heating thresholds 10/50/500/5000, normalized to TH=10.
func Figure10(s *Session) (*Result, error) {
	names := selectedNames()
	ths := []uint64{10, 50, 500, 5000}
	order := make([]string, len(ths))
	for i, th := range ths {
		order[i] = fmt.Sprintf("TH=%d", th)
	}
	r := newResult("fig10", "Dynamic profiling: runtime vs heating threshold (normalized to TH=10)",
		names, order...)
	err := s.forEach(names, func(name string) error {
		base, err := s.Run(name, Config{Mech: core.DynamicProfile, Threshold: 10})
		if err != nil {
			return err
		}
		for i, th := range ths {
			run, err := s.Run(name, Config{Mech: core.DynamicProfile, Threshold: th})
			if err != nil {
				return err
			}
			r.set(order[i], name, float64(run.Cycles())/float64(base.Cycles()))
		}
		return nil
	})
	r.Notes = append(r.Notes,
		"our runs are ~2e4x shorter than the paper's, so high thresholds pay proportionally more profiling overhead than Fig. 10's bars; the TH=50 sweet spot and the TH=10 losses on early-onset benchmarks are preserved")
	return r, err
}

// gainExperiment renders base-vs-variant speedup per benchmark.
func gainExperiment(s *Session, id, title string, base, variant Config, note string) (*Result, error) {
	names := selectedNames()
	r := newResult(id, title, names, "gain%")
	err := s.forEach(names, func(name string) error {
		b, err := s.Run(name, base)
		if err != nil {
			return err
		}
		v, err := s.Run(name, variant)
		if err != nil {
			return err
		}
		r.set("gain%", name, 100*(float64(b.Cycles())/float64(v.Cycles())-1))
		return nil
	})
	if note != "" {
		r.Notes = append(r.Notes, note)
	}
	return r, err
}

// Figure11 reproduces Figure 11: gain/loss of code rearrangement over the
// plain exception-handling mechanism.
func Figure11(s *Session) (*Result, error) {
	return gainExperiment(s, "fig11", "Performance gain/loss with code rearrangement (vs exception handling)",
		Config{Mech: core.ExceptionHandling},
		Config{Mech: core.ExceptionHandling, Rearrange: true},
		"paper: up to +11% (464.h264ref), ~+1.5% overall")
}

// Figure12 reproduces Figure 12: gain/loss of DPEH over exception handling.
func Figure12(s *Session) (*Result, error) {
	return gainExperiment(s, "fig12", "Performance gain/loss of DPEH (vs exception handling)",
		Config{Mech: core.ExceptionHandling},
		Config{Mech: core.DPEH},
		"paper: >8% for 464.h264ref/471.omnetpp/433.milc, ~+2% overall")
}

// Figure13 reproduces Figure 13: gain/loss of retranslation over DPEH.
func Figure13(s *Session) (*Result, error) {
	return gainExperiment(s, "fig13", "Performance gain/loss with retranslation (vs DPEH)",
		Config{Mech: core.DPEH},
		Config{Mech: core.DPEH, Retranslate: true},
		"paper: some benchmarks gain significantly, some degrade slightly; overall benefit not substantial")
}

// Figure14 reproduces Figure 14: gain/loss of multi-version code over DPEH.
func Figure14(s *Session) (*Result, error) {
	return gainExperiment(s, "fig14", "Performance gain/loss with multi-version code (vs DPEH)",
		Config{Mech: core.DPEH},
		Config{Mech: core.DPEH, MultiVersion: true},
		"paper: ~+1.1% average, up to +4.7%")
}

// Figure15 reproduces Figure 15: MDA instructions classified by per-site
// misalignment ratio.
func Figure15(s *Session) (*Result, error) {
	names := selectedNames()
	r := newResult("fig15", "Percentage of MDA instructions by misaligned ratio",
		names, "ratio<50%", "ratio=50%", "ratio>50%", "ratio=100%")
	err := s.forEach(names, func(name string) error {
		c, err := s.Census(name, workload.Ref)
		if err != nil {
			return err
		}
		lt, eq, gt, always := c.RatioClasses()
		total := lt + eq + gt + always
		if total == 0 {
			return fmt.Errorf("experiments: fig15: %s has no MDA sites", name)
		}
		r.set("ratio<50%", name, 100*float64(lt)/float64(total))
		r.set("ratio=50%", name, 100*float64(eq)/float64(total))
		r.set("ratio>50%", name, 100*float64(gt)/float64(total))
		r.set("ratio=100%", name, 100*float64(always)/float64(total))
		return nil
	})
	r.Notes = append(r.Notes, "paper: only ~4.5% of MDA instructions are frequently aligned")
	return r, err
}

// Fig16Configs returns the five mechanisms of the overall comparison.
func Fig16Configs() map[string]Config {
	return map[string]Config{
		"ExceptionHandling": {Mech: core.ExceptionHandling},
		"DPEH":              {Mech: core.DPEH},
		"DynamicProfiling":  {Mech: core.DynamicProfile, Threshold: 50},
		"StaticProfiling":   {Mech: core.StaticProfile},
		"Direct":            {Mech: core.Direct},
	}
}

// Figure16 reproduces Figure 16: runtime of all five mechanisms normalized
// to exception handling.
func Figure16(s *Session) (*Result, error) {
	names := selectedNames()
	order := []string{"ExceptionHandling", "DPEH", "DynamicProfiling", "StaticProfiling", "Direct"}
	r := newResult("fig16", "Runtime of MDA handling mechanisms (normalized to exception handling)",
		names, order...)
	cfgs := Fig16Configs()
	err := s.forEach(names, func(name string) error {
		base, err := s.Run(name, cfgs["ExceptionHandling"])
		if err != nil {
			return err
		}
		for _, series := range order {
			run, err := s.Run(name, cfgs[series])
			if err != nil {
				return err
			}
			r.set(series, name, float64(run.Cycles())/float64(base.Cycles()))
		}
		return nil
	})
	r.Notes = append(r.Notes,
		"paper: EH beats DynamicProfiling by 16%, StaticProfiling by 10%, Direct by 68% on average; DPEH adds ~4.5% over EH",
		"paper outliers: 483.xalancbmk 4.4x / 410.bwaves 5.3x under dynamic profiling; 252.eon +91%, 450.soplex +155% under static profiling")
	return r, err
}

// TableIII reproduces Table III: MDAs the dynamic-profiling mechanism
// (threshold 50) fails to detect — measured as runtime misalignment traps.
func TableIII(s *Session) (*Result, error) {
	names := selectedNames()
	r := newResult("table3", "MDAs not detected by dynamic profiling (TH=50)",
		names, "undetected", "paper")
	err := s.forEach(names, func(name string) error {
		run, err := s.Run(name, Config{Mech: core.DynamicProfile, Threshold: 50})
		if err != nil {
			return err
		}
		spec, _ := workload.SpecByName(name)
		r.set("undetected", name, float64(run.Counters.MisalignTraps))
		r.set("paper", name, spec.PaperUndetectedDyn)
		return nil
	})
	r.Notes = append(r.Notes, "our counts are runtime misalignment traps at ~2e4x-shorter scale; the paper column is Table III verbatim")
	return r, err
}

// TableIV reproduces Table IV: MDAs remaining when translating with a
// train-input profile — measured as runtime misalignment traps under the
// static-profiling mechanism.
func TableIV(s *Session) (*Result, error) {
	names := selectedNames()
	r := newResult("table4", "MDAs remaining while profiling with train input",
		names, "remaining", "paper")
	err := s.forEach(names, func(name string) error {
		run, err := s.Run(name, Config{Mech: core.StaticProfile})
		if err != nil {
			return err
		}
		spec, _ := workload.SpecByName(name)
		r.set("remaining", name, float64(run.Counters.MisalignTraps))
		r.set("paper", name, spec.PaperRemainTrain)
		return nil
	})
	r.Notes = append(r.Notes, "our counts are runtime misalignment traps at ~2e4x-shorter scale; the paper column is Table IV verbatim")
	return r, err
}

// SortedIDs lists experiment IDs.
func SortedIDs() []string {
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// AdaptiveStudy is an extension beyond the paper's measurements: §IV-D
// analyzes the "truly adaptive method" (revert MDA sequences back to plain
// operations when a site realigns) on paper and concludes it is "not worth
// pursuing" because the ~10-instruction runtime instrumentation outweighs
// the two instructions saved. This experiment implements it and measures
// that claim next to multi-version code, both as gains over plain DPEH.
func AdaptiveStudy(s *Session) (*Result, error) {
	names := selectedNames()
	r := newResult("adaptive", "Extension: truly-adaptive method vs multi-version code (gains over DPEH)",
		names, "multiversion%", "mv-block%", "adaptive%")
	base := Config{Mech: core.DPEH}
	err := s.forEach(names, func(name string) error {
		b, err := s.Run(name, base)
		if err != nil {
			return err
		}
		for series, cfg := range map[string]Config{
			"multiversion%": {Mech: core.DPEH, MultiVersion: true},
			"mv-block%":     {Mech: core.DPEH, MultiVersion: true, MVBlock: true},
			"adaptive%":     {Mech: core.DPEH, Adaptive: true},
		} {
			v, err := s.Run(name, cfg)
			if err != nil {
				return err
			}
			r.set(series, name, 100*(float64(b.Cycles())/float64(v.Cycles())-1))
		}
		return nil
	})
	r.Notes = append(r.Notes,
		"the paper predicts (without building it) that adaptive instrumentation costs more than it saves on stable workloads; the negative adaptive column confirms it")
	return r, err
}

// ChainingAblation measures a design choice DESIGN.md calls out: the value
// of translation chaining (patching block-exit stubs into direct
// branches). With chaining disabled every block exit takes the dispatcher
// round trip through the BT monitor.
func ChainingAblation(s *Session) (*Result, error) {
	names := selectedNames()
	r := newResult("ablation-chaining", "Ablation: runtime without translation chaining (normalized to DPEH)",
		names, "nochain")
	err := s.forEach(names, func(name string) error {
		b, err := s.Run(name, Config{Mech: core.DPEH})
		if err != nil {
			return err
		}
		v, err := s.Run(name, Config{Mech: core.DPEH, NoChain: true})
		if err != nil {
			return err
		}
		r.set("nochain", name, float64(v.Cycles())/float64(b.Cycles()))
		return nil
	})
	r.Notes = append(r.Notes, "values > 1 are the slowdown from dispatching every block exit through the monitor")
	return r, err
}

// IBTCAblation measures the indirect-branch translation cache (the
// authors' companion technique, paper reference [19]): without it every
// RET pays a BRKBT round trip through the monitor. The shared-library
// benchmarks (gzip, perlbench, xalancbmk) make one library call per
// iteration and benefit most.
func IBTCAblation(s *Session) (*Result, error) {
	names := selectedNames()
	r := newResult("ablation-ibtc", "Ablation: speedup from the indirect-branch translation cache (over DPEH)",
		names, "gain%")
	err := s.forEach(names, func(name string) error {
		b, err := s.Run(name, Config{Mech: core.DPEH})
		if err != nil {
			return err
		}
		v, err := s.Run(name, Config{Mech: core.DPEH, IBTC: true})
		if err != nil {
			return err
		}
		r.set("gain%", name, 100*(float64(b.Cycles())/float64(v.Cycles())-1))
		return nil
	})
	r.Notes = append(r.Notes, "call-heavy (shared-library) benchmarks gain; loop-only benchmarks are unaffected")
	return r, err
}

// SuperblockAblation measures phase-2 trace formation (DESIGN.md design
// choice): hot blocks translated together with their dominant successors,
// laid out fall-through with cold side exits.
func SuperblockAblation(s *Session) (*Result, error) {
	names := selectedNames()
	r := newResult("ablation-superblocks", "Ablation: speedup from superblock (trace) translation (over DPEH)",
		names, "gain%", "traces")
	err := s.forEach(names, func(name string) error {
		b, err := s.Run(name, Config{Mech: core.DPEH})
		if err != nil {
			return err
		}
		v, err := s.Run(name, Config{Mech: core.DPEH, Superblocks: true})
		if err != nil {
			return err
		}
		r.set("gain%", name, 100*(float64(b.Cycles())/float64(v.Cycles())-1))
		r.set("traces", name, float64(v.Stats.Superblocks))
		return nil
	})
	r.Notes = append(r.Notes, "gains are modest on this simulator (chained block exits are already cheap); the traces column shows formation activity")
	return r, err
}

// TracesStudy measures the IR-less direct-chaining execution tier (DESIGN.md
// §14) per benchmark: how much of the run retires inside step-list traces
// instead of the generic dispatch loop, how many dispatcher round trips the
// memoized chain links absorb, and — the tier's core contract — that the
// simulated results are bit-identical with it on or off (the Δcycles column
// must be all zeros).
func TracesStudy(s *Session) (*Result, error) {
	names := selectedNames()
	r := newResult("traces", "Direct-chaining trace tier: coverage, chain follows, and simulation invisibility (over DPEH)",
		names, "traced%", "follows/1e3", "formed", "Δcycles")
	err := s.forEach(names, func(name string) error {
		b, err := s.Run(name, Config{Mech: core.DPEH})
		if err != nil {
			return err
		}
		v, err := s.Run(name, Config{Mech: core.DPEH, Traces: true})
		if err != nil {
			return err
		}
		if v.Counters != b.Counters {
			return fmt.Errorf("experiments: %s: trace tier perturbed the simulation: %+v vs %+v", name, v.Counters, b.Counters)
		}
		r.set("traced%", name, 100*float64(v.Traces.TracedInsts)/float64(v.Counters.Insts))
		r.set("follows/1e3", name, float64(v.Traces.ChainFollows)/1e3)
		r.set("formed", name, float64(v.Traces.Formed))
		r.set("Δcycles", name, float64(v.Counters.Cycles)-float64(b.Counters.Cycles))
		return nil
	})
	r.Notes = append(r.Notes,
		"traced% is the share of host instructions retired by the trace executor; Δcycles is asserted zero (bit-identical simulation)",
		"wall-clock speedup is measured apples-to-apples by `make trace-bench` (BENCH_3.json)")
	return r, err
}
