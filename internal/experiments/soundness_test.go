package experiments

import (
	"testing"

	"mdabt/internal/align"
	"mdabt/internal/core"
	"mdabt/internal/mem"
	"mdabt/internal/workload"
)

// TestStaticAlignSoundness is the lattice bug detector (ISSUE 3): over the
// full Figure 16 benchmark suite it cross-checks every static verdict
// against the reference interpreter's observed behavior — a site proven
// Aligned must never perform an MDA at runtime, and a site proven
// Misaligned must never execute aligned — and then runs the DBT with the
// +staticalign layer, asserting the runtime violation counter stays zero
// (no proven-aligned emission ever trapped) and every translation lints
// clean (enforced inside Session.Run).
func TestStaticAlignSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite soundness sweep is slow; skipped under -short (race CI job)")
	}
	s := session()
	err := s.forEach(selectedNames(), func(name string) error {
		a, aerr := s.Analyze(name)
		if aerr != nil {
			return aerr
		}
		c, cerr := s.Census(name, workload.Ref)
		if cerr != nil {
			return cerr
		}
		p, perr := s.Program(name, "")
		if perr != nil {
			return perr
		}
		m := mem.New()
		p.Load(m, workload.Ref)
		dec := memDecoder(m)
		checked := 0
		for pc, cs := range c.Sites {
			if cs.MDA+cs.Aligned == 0 {
				continue
			}
			in, _, derr := dec(pc)
			if derr != nil {
				continue
			}
			// The census aggregates both streams of a string copy under one
			// PC, so only the folded (all-streams-agree) verdict is
			// decisively checkable here.
			switch a.InstVerdict(pc, in.Op) {
			case align.Aligned:
				checked++
				if cs.MDA != 0 {
					t.Errorf("%s: site %#x proven aligned but did %d MDAs (%d aligned)",
						name, pc, cs.MDA, cs.Aligned)
				}
			case align.Misaligned:
				checked++
				if cs.Aligned != 0 {
					t.Errorf("%s: site %#x proven misaligned but executed aligned %d times (%d MDAs)",
						name, pc, cs.Aligned, cs.MDA)
				}
			}
		}
		if checked == 0 {
			t.Errorf("%s: analysis proved nothing the census exercised — no soundness coverage", name)
		}
		// Runtime side: proven-aligned emissions carry no trap hook, so any
		// trap landing on one increments StaticAlignViolations.
		for _, cfg := range []Config{
			{Mech: core.Direct, StaticAlign: true},
			{Mech: core.DPEH, StaticAlign: true},
		} {
			run, rerr := s.Run(name, cfg)
			if rerr != nil {
				return rerr
			}
			if v := run.Stats.StaticAlignViolations; v != 0 {
				t.Errorf("%s under %v: %d static-align violations at runtime", name, cfg, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
