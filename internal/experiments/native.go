package experiments

import (
	"fmt"

	"mdabt/internal/cache"
	"mdabt/internal/guest"
	"mdabt/internal/mem"
	"mdabt/internal/workload"
)

// Figure 1's substrate: native execution on an x86 machine that tolerates
// misaligned accesses. The cost model charges one cycle per instruction,
// small extra latency for loads, a split-access penalty when a misaligned
// access crosses a cache line (how contemporary x86 cores implement MDA),
// and data-cache miss latency.
const (
	nativeLoadExtra  = 2
	nativeMDAPenalty = 2 // misaligned but within one line
	nativeSplitLine  = 8 // misaligned across a cache-line boundary
	nativeLine       = 64
)

// nativeCycles interprets the program on the native-x86 cost model and
// returns simulated cycles.
func (s *Session) nativeCycles(name, variant string) (uint64, error) {
	key := "native|" + name + "|" + variant
	s.mu.Lock()
	c, ok := s.native[key]
	s.mu.Unlock()
	if ok {
		return c, nil
	}
	p, err := s.Program(name, variant)
	if err != nil {
		return 0, err
	}
	m := mem.New()
	p.Load(m, workload.Ref)
	cpu := &guest.CPU{}
	cpu.Reset(p.Entry())
	caches := cache.NewES40() // contemporary geometry; only the data path is used
	type decoded struct {
		inst guest.Inst
		n    int
	}
	dcache := make(map[uint32]decoded)
	var cycles uint64
	for steps := uint64(0); !cpu.Halted; steps++ {
		if steps > 400_000_000 {
			return 0, fmt.Errorf("experiments: native %s did not halt", name)
		}
		pc := cpu.EIP
		de, ok := dcache[pc]
		if !ok {
			var buf [guest.MaxInstLen]byte
			m.ReadBytes(uint64(pc), buf[:])
			inst, n, derr := guest.Decode(buf[:])
			if derr != nil {
				return 0, derr
			}
			de = decoded{inst, n}
			dcache[pc] = de
		}
		info, err := cpu.Exec(m, pc, &de.inst, de.n)
		if err != nil {
			return 0, err
		}
		cycles++
		if info.IsMem {
			if !info.IsStore {
				cycles += nativeLoadExtra
			}
			cycles += uint64(caches.Data(uint64(info.EA)))
			if info.MDA {
				if info.EA/nativeLine != (info.EA+uint32(info.Size)-1)/nativeLine {
					cycles += nativeSplitLine
				} else {
					cycles += nativeMDAPenalty
				}
			}
		}
	}
	s.mu.Lock()
	s.native[key] = cycles
	s.mu.Unlock()
	return cycles, nil
}
