package experiments

import (
	"testing"

	"mdabt/internal/policy"
	"mdabt/internal/workload"
)

func TestSPEHStudyShape(t *testing.T) {
	r := runExp(t, "speh")
	if len(r.Names) != 21 {
		t.Fatalf("speh has %d rows, want 21", len(r.Names))
	}
	if g := r.Geomean("ExceptionHandling"); g != 1 {
		t.Errorf("EH normalized geomean = %v, want exactly 1", g)
	}
	// SPEH keeps static profiling's eager sequences and patches whatever the
	// train run missed, so it must not lose to the static parent overall and
	// must retire (nearly) all of its residual traps.
	spG, stG := r.Geomean("SPEH"), r.Geomean("StaticProfiling")
	if spG > stG*1.001 {
		t.Errorf("SPEH geomean %.4f worse than StaticProfiling %.4f", spG, stG)
	}
	spTraps, stTraps := r.Mean("spehTraps"), r.Mean("staticTraps")
	if stTraps > 0 && spTraps >= stTraps {
		t.Errorf("SPEH mean traps %.0f not below StaticProfiling's %.0f", spTraps, stTraps)
	}
}

// TestRegistryMechanismSmoke is the CI gate behind the policy seam: every
// mechanism name in the registry — including ones registered after this test
// was written — must drive a benchmark end to end through the experiment
// session with no core changes. A new strategy that trips Validate, panics
// in a hook, or emits unlintable code fails here before any experiment
// depends on it.
func TestRegistryMechanismSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps are slow; skipped under -short (race CI job)")
	}
	name := workload.SelectedSpecs()[0].Name
	for _, mech := range policy.Names() {
		mech := mech
		t.Run(mech, func(t *testing.T) {
			t.Parallel()
			res, err := session().Run(name, Config{Policy: mech})
			if err != nil {
				t.Fatalf("%s under %s: %v", name, mech, err)
			}
			// The aot tier counts offline pre-translations separately, so a
			// fully covered AOT run legitimately has zero dynamic ones.
			if res.Cycles() == 0 || res.Stats.BlocksTranslated+res.Stats.AOTBlocks == 0 {
				t.Errorf("%s under %s: degenerate run %+v", name, mech, res.Counters)
			}
		})
	}
}
