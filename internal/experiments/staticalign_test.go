package experiments

import (
	"testing"

	"mdabt/internal/align"
	"mdabt/internal/core"
)

func TestStaticAlignStudyShape(t *testing.T) {
	r := runExp(t, "staticalign")
	t.Logf("staticalign means: Direct=%.3f Static=%.3f Dynamic=%.3f EH=%.3f DPEH=%.3f",
		r.Mean("Direct"), r.Mean("StaticProfiling"), r.Mean("DynamicProfiling"),
		r.Mean("ExceptionHandling"), r.Mean("DPEH"))
	// Direct pays the full MDA sequence at every site, so proving sites
	// aligned must buy a clearly positive mean gain.
	if g := r.Mean("Direct"); g <= 0.5 {
		t.Errorf("Direct mean gain %v%%, want clearly positive", g)
	}
	// Exception handling already executes aligned sites at native speed, so
	// the layer must not make it meaningfully slower (analysis cost only).
	if g := r.Mean("ExceptionHandling"); g < -1.5 {
		t.Errorf("ExceptionHandling mean gain %v%%, want ≥ analysis-cost noise", g)
	}
	// Aligned-biased benchmarks (Table I: near-zero MDA share) should gain
	// under Direct: every proven site drops the whole sequence.
	for _, name := range []string{"464.h264ref", "435.gromacs"} {
		if v := r.Value("Direct", name); v <= 0 {
			t.Errorf("Direct gain on aligned-biased %s = %v%%, want > 0", name, v)
		}
	}
}

func TestSiteHistogramShape(t *testing.T) {
	r := runExp(t, "sitehist")
	if len(r.Names) != 21 {
		t.Fatalf("sitehist has %d rows, want 21", len(r.Names))
	}
	for _, name := range r.Names {
		al, mis, un := r.Value("aligned", name), r.Value("misaligned", name), r.Value("unknown", name)
		if al+mis+un == 0 {
			t.Errorf("%s: no static sites classified", name)
		}
		if al == 0 {
			t.Errorf("%s: analysis proved no site aligned", name)
		}
		shares := r.Value("dynAligned%", name) + r.Value("dynMisaligned%", name) + r.Value("dynUnknown%", name)
		if shares < 99.9 || shares > 100.1 {
			t.Errorf("%s: dynamic shares sum to %v, want 100", name, shares)
		}
	}
}

// TestAnalyzeMatchesEngine pins the session-level Analyze against the
// verdicts the engine derives internally: same image, same decoder, same
// lattice — a drift here would desynchronize sitehist from what +staticalign
// actually emits.
func TestAnalyzeMatchesEngine(t *testing.T) {
	s := session()
	a, err := s.Analyze("164.gzip")
	if err != nil {
		t.Fatal(err)
	}
	var counts [3]int
	for _, site := range a.Sites() {
		counts[site.Verdict]++
	}
	run, err := s.Run("164.gzip", Config{Mech: core.Direct, StaticAlign: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := run.Stats.StaticAnalyzedInsts; got != uint64(a.Insts()) {
		t.Errorf("engine analyzed %d insts, session analysis %d", got, a.Insts())
	}
	if counts[align.Aligned] == 0 || counts[align.Unknown] == 0 {
		t.Errorf("degenerate verdict histogram %v", counts)
	}
}
