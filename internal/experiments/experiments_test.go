package experiments

import (
	"strings"
	"sync"
	"testing"

	"mdabt/internal/core"
	"mdabt/internal/workload"
)

// testSession is shared across shape tests: experiments cache their runs in
// it, so the whole file costs roughly one shrunk sweep.
var (
	sessOnce sync.Once
	sess     *Session
)

func session() *Session {
	sessOnce.Do(func() {
		sess = NewSession()
		sess.Shrink = 40
		sess.IterFloor = 800
	})
	return sess
}

func runExp(t *testing.T, id string) *Result {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment sweeps are slow; skipped under -short (race CI job)")
	}
	run, ok := Lookup(id)
	if !ok {
		t.Fatalf("no experiment %q", id)
	}
	r, err := run(session())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return r
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "fig1", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "table3", "table4", "adaptive", "ablation-chaining", "ablation-ibtc", "ablation-superblocks", "traces", "staticalign", "sitehist", "speh", "aot", "faults"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, e := range reg {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
	if len(SortedIDs()) != len(want) {
		t.Error("SortedIDs wrong length")
	}
}

func TestFaultStudyShape(t *testing.T) {
	r := runExp(t, "faults")
	if len(r.Names) != 4 {
		t.Fatalf("faults has %d rows, want 4", len(r.Names))
	}
	for _, name := range []string{"straddle-store-fault", "straddle-load-unmapped"} {
		if v := r.Value("guest-faults", name); v != 1 {
			t.Errorf("%s delivered %v guest faults, want exactly 1", name, v)
		}
	}
	for _, name := range []string{"straddle-ok", "smc-rewrite"} {
		if v := r.Value("guest-faults", name); v != 0 {
			t.Errorf("%s delivered %v guest faults, want 0", name, v)
		}
	}
	if v := r.Value("smc-invals", "smc-rewrite"); v == 0 {
		t.Error("smc-rewrite triggered no code-page invalidations under dpeh")
	}
	if v := r.Value("traps(eh)", "straddle-ok"); v == 0 {
		t.Error("straddle-ok took no misalignment traps under eh")
	}
}

func TestConfigString(t *testing.T) {
	c := Config{Mech: core.DPEH, Threshold: 50, Rearrange: true, Retranslate: true, MultiVersion: true}
	s := c.String()
	for _, frag := range []string{"dpeh", "th=50", "rearrange", "retrans", "multiver"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Config.String() = %q lacks %q", s, frag)
		}
	}
}

func TestFigure16Shape(t *testing.T) {
	r := runExp(t, "fig16")
	if len(r.Names) != 21 {
		t.Fatalf("fig16 has %d rows, want 21", len(r.Names))
	}
	ehG := r.Geomean("ExceptionHandling")
	dyG := r.Geomean("DynamicProfiling")
	stG := r.Geomean("StaticProfiling")
	diG := r.Geomean("Direct")
	if ehG != 1 {
		t.Errorf("EH geomean = %v, want 1 (baseline)", ehG)
	}
	// Headline ordering (§VI-C): EH beats dynamic, static and direct;
	// direct is worst on average.
	if dyG <= 1.02 {
		t.Errorf("DynamicProfiling geomean %v, want clearly above EH", dyG)
	}
	if diG <= dyG || diG <= stG {
		t.Errorf("Direct geomean %v not the worst (dyn %v, static %v)", diG, dyG, stG)
	}
	// The paper's outliers.
	if v := r.Value("DynamicProfiling", "483.xalancbmk"); v < 1.8 {
		t.Errorf("xalancbmk under dynamic profiling = %v, want large blowup", v)
	}
	if v := r.Value("DynamicProfiling", "410.bwaves"); v < 2.5 {
		t.Errorf("bwaves under dynamic profiling = %v, want large blowup", v)
	}
	if v := r.Value("StaticProfiling", "252.eon"); v < 1.4 {
		t.Errorf("eon under static profiling = %v, want large blowup", v)
	}
	if v := r.Value("StaticProfiling", "450.soplex"); v < 1.4 {
		t.Errorf("soplex under static profiling = %v, want large blowup", v)
	}
	// Benchmarks both profilers catch stay near EH under static profiling.
	if v := r.Value("StaticProfiling", "188.ammp"); v > 1.2 {
		t.Errorf("ammp under static profiling = %v, want near EH", v)
	}
}

func TestDPEHBeatsExceptionHandlingOverall(t *testing.T) {
	r := runExp(t, "fig16")
	if g := r.Geomean("DPEH"); g >= 1.01 {
		t.Errorf("DPEH geomean %v, want ≤ EH (paper: 4.5%% better)", g)
	}
}

func TestFigure10Shape(t *testing.T) {
	r := runExp(t, "fig10")
	// perlbench needs a threshold greater than 10 (paper §VI-A).
	if v := r.Value("TH=50", "400.perlbench"); v >= 0.97 {
		t.Errorf("perlbench TH=50 = %v, want well below TH=10", v)
	}
	// Very high thresholds pay for profiling overhead.
	if r.Geomean("TH=5000") <= r.Geomean("TH=50") {
		t.Errorf("TH=5000 geomean %v not above TH=50 %v", r.Geomean("TH=5000"), r.Geomean("TH=50"))
	}
	if r.Geomean("TH=10") != 1 {
		t.Error("fig10 baseline must be TH=10")
	}
}

func TestFigure11Shape(t *testing.T) {
	r := runExp(t, "fig11")
	// Paper: marginal overall effect (~+1.5%); at our scale it is ~0. The
	// shape claim we check: no catastrophic regression and the mechanism
	// actually runs (gains bounded).
	for i, name := range r.Names {
		if g := r.Series["gain%"][i]; g < -35 || g > 25 {
			t.Errorf("%s rearrangement gain %v%% out of plausible band", name, g)
		}
	}
}

func TestFigure12Shape(t *testing.T) {
	r := runExp(t, "fig12")
	mean := r.Mean("gain%")
	if mean < -1 {
		t.Errorf("DPEH mean gain %v%%, want ≥ ~0 (paper ~+2%%)", mean)
	}
	// At least a few benchmarks gain noticeably.
	big := 0
	for _, g := range r.Series["gain%"] {
		if g > 2 {
			big++
		}
	}
	if big < 2 {
		t.Errorf("only %d benchmarks gain >2%% from DPEH, want several", big)
	}
}

func TestFigure13Shape(t *testing.T) {
	r := runExp(t, "fig13")
	// Paper: "the benefit of retranslation is not substantial" — some up,
	// some down, small overall.
	if m := r.Mean("gain%"); m < -3 || m > 6 {
		t.Errorf("retranslation mean gain %v%%, want small", m)
	}
}

func TestFigure14Shape(t *testing.T) {
	r := runExp(t, "fig14")
	if m := r.Mean("gain%"); m < -1.5 || m > 4 {
		t.Errorf("multi-version mean gain %v%%, want marginal (paper +1.1%%)", m)
	}
	winners := 0
	for _, g := range r.Series["gain%"] {
		if g > 0.5 {
			winners++
		}
	}
	if winners == 0 {
		t.Error("multi-version never wins; paper shows up to +4.7%")
	}
}

func TestFigure15Shape(t *testing.T) {
	r := runExp(t, "fig15")
	always := r.Mean("ratio=100%")
	mostly := r.Mean("ratio>50%")
	rare := r.Mean("ratio<50%")
	if always < 25 || always+mostly < 55 {
		t.Errorf("misaligned-dominated share %v%% (+%v%% mostly), want dominant", always, mostly)
	}
	if rare > 25 {
		t.Errorf("frequently-aligned share %v%%, want small (paper ~4.5%%)", rare)
	}
	for i, name := range r.Names {
		sum := r.Series["ratio<50%"][i] + r.Series["ratio=50%"][i] +
			r.Series["ratio>50%"][i] + r.Series["ratio=100%"][i]
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("%s ratio classes sum to %v%%, want 100", name, sum)
		}
	}
}

func TestTableIShape(t *testing.T) {
	r := runExp(t, "table1")
	if len(r.Names) != 54 {
		t.Fatalf("table1 has %d rows, want 54", len(r.Names))
	}
	// High-MDA benchmarks must measure high ratios; near-zero ones near zero.
	if v := r.Value("Ratio%", "188.ammp"); v < 10 {
		t.Errorf("ammp ratio %v%%, want large (paper 43%%)", v)
	}
	if v := r.Value("Ratio%", "458.sjeng"); v > 0.1 {
		t.Errorf("sjeng ratio %v%%, want ≈0", v)
	}
	if v := r.Value("NMI", "433.milc"); v < 50 {
		t.Errorf("milc NMI %v, want large static site count", v)
	}
	// The paper columns must be carried through for comparison.
	if v := r.Value("paperRatio%", "179.art"); v < 38 || v > 39 {
		t.Errorf("art paper ratio %v, want 38.33", v)
	}
}

func TestTableIIIShape(t *testing.T) {
	r := runExp(t, "table3")
	// Late-onset benchmarks leave many undetected MDAs; fully-profiled
	// ones almost none.
	if v := r.Value("undetected", "483.xalancbmk"); v < 1000 {
		t.Errorf("xalancbmk undetected = %v, want large", v)
	}
	if v := r.Value("undetected", "410.bwaves"); v < 1000 {
		t.Errorf("bwaves undetected = %v, want large", v)
	}
	if v := r.Value("undetected", "188.ammp"); v > 50 {
		t.Errorf("ammp undetected = %v, want ≈0 (paper: 0)", v)
	}
	if v := r.Value("paper", "410.bwaves"); v != 4.15e10 {
		t.Errorf("bwaves paper column = %v, want 4.15e10", v)
	}
}

func TestTableIVShape(t *testing.T) {
	r := runExp(t, "table4")
	if v := r.Value("remaining", "252.eon"); v < 500 {
		t.Errorf("eon remaining = %v, want large", v)
	}
	if v := r.Value("remaining", "450.soplex"); v < 500 {
		t.Errorf("soplex remaining = %v, want large", v)
	}
	if v := r.Value("remaining", "453.povray"); v > 50 {
		t.Errorf("povray remaining = %v, want ≈0 (paper: 0)", v)
	}
	if v := r.Value("paper", "252.eon"); v != 3.22e9 {
		t.Errorf("eon paper column = %v, want 3.22e9", v)
	}
}

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("native sweeps are slow")
	}
	r := runExp(t, "fig1")
	// The paper's conclusion: no significant average benefit from
	// alignment-optimization flags (~1-2%).
	for _, series := range []string{"pathscale%", "icc%"} {
		m := r.Mean(series)
		if m < -2 || m > 8 {
			t.Errorf("%s mean speedup %v%%, want small", series, m)
		}
	}
	// High-MDA benchmarks gain the most from alignment.
	if r.Value("icc%", "188.ammp") <= r.Value("icc%", "464.h264ref") {
		t.Error("ammp (43% MDA) should gain more from alignment than h264ref (0.01%)")
	}
}

func TestResultHelpers(t *testing.T) {
	r := newResult("x", "t", []string{"a", "b"}, "s")
	r.set("s", "a", 2)
	r.set("s", "b", 8)
	if r.Value("s", "a") != 2 {
		t.Error("Value broken")
	}
	if g := r.Geomean("s"); g < 3.9 || g > 4.1 {
		t.Errorf("Geomean = %v, want 4", g)
	}
	if m := r.Mean("s"); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	out := r.Render()
	if !strings.Contains(out, "X — t") || !strings.Contains(out, "geomean") {
		t.Errorf("Render output missing pieces:\n%s", out)
	}
	defer func() {
		if recover() == nil {
			t.Error("Value(unknown row) did not panic")
		}
	}()
	r.Value("s", "zzz")
}

func TestSessionRunCaches(t *testing.T) {
	s := session()
	cfg := Config{Mech: core.ExceptionHandling}
	r1, err := s.Run("470.lbm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run("470.lbm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles() != r2.Cycles() {
		t.Error("cached run differs")
	}
	if _, err := s.Run("no-such-benchmark", cfg); err == nil {
		t.Error("unknown benchmark: want error")
	}
	if _, err := s.Program("470.lbm", "weird"); err == nil {
		t.Error("unknown variant: want error")
	}
}

func TestAdaptiveStudyShape(t *testing.T) {
	r := runExp(t, "adaptive")
	// The paper's §IV-D claim: the truly-adaptive method is not worth
	// pursuing — on the stable SPEC-like workloads its instrumentation
	// costs at least as much as multi-version checking.
	if am, mm := r.Mean("adaptive%"), r.Mean("multiversion%"); am > mm+0.5 {
		t.Errorf("adaptive mean gain %v%% beats multi-version %v%%; paper predicts the opposite", am, mm)
	}
}

func TestChainingAblationShape(t *testing.T) {
	r := runExp(t, "ablation-chaining")
	if g := r.Geomean("nochain"); g <= 1.005 {
		t.Errorf("no-chaining geomean %v, want a visible slowdown", g)
	}
}

func TestIBTCAblationShape(t *testing.T) {
	r := runExp(t, "ablation-ibtc")
	// The shared-library (call-heavy) benchmarks must gain; nothing should
	// regress materially (the probe replaces a strictly costlier path).
	if g := r.Value("gain%", "164.gzip"); g <= 0 {
		t.Errorf("gzip IBTC gain %v%%, want positive (one library call per iteration)", g)
	}
	for i, name := range r.Names {
		if g := r.Series["gain%"][i]; g < -2 {
			t.Errorf("%s IBTC gain %v%%, regression", name, g)
		}
	}
}

func TestResultCSV(t *testing.T) {
	r := newResult("x", "t", []string{"a", "b"}, "s1", "s2")
	r.set("s1", "a", 1.5)
	r.set("s2", "b", 2)
	csv := r.CSV()
	want := "benchmark,s1,s2\na,1.5,0\nb,0,2\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestSuperblockAblationShape(t *testing.T) {
	r := runExp(t, "ablation-superblocks")
	if r.Mean("traces") == 0 {
		t.Fatal("no traces formed on any benchmark")
	}
	for i, name := range r.Names {
		if g := r.Series["gain%"][i]; g < -5 {
			t.Errorf("%s superblock gain %v%%, heavy regression", name, g)
		}
	}
}

func TestTableIIStatic(t *testing.T) {
	r := runExp(t, "table2")
	if len(r.Names) != 5 || len(r.Notes) != 5 {
		t.Fatalf("table2 rows/notes = %d/%d, want 5/5", len(r.Names), len(r.Notes))
	}
	out := r.Render()
	for _, frag := range []string{"Direct", "DPEH", "retranslation", "threshold"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table2 render lacks %q", frag)
		}
	}
}

func TestFigure10PerlbenchOrdering(t *testing.T) {
	r := runExp(t, "fig10")
	// perlbench's own minimum lies at TH=50/500, not at the extremes.
	p10 := r.Value("TH=10", "400.perlbench")
	p50 := r.Value("TH=50", "400.perlbench")
	p5000 := r.Value("TH=5000", "400.perlbench")
	if !(p50 < p10 && p50 < p5000) {
		t.Errorf("perlbench thresholds: 10=%v 50=%v 5000=%v, want a TH=50 minimum", p10, p50, p5000)
	}
}

func TestTableIIPresentInRegistryOrder(t *testing.T) {
	reg := Registry()
	if reg[1].ID != "table2" {
		t.Fatalf("registry[1] = %s, want table2", reg[1].ID)
	}
}

func TestCensusCaching(t *testing.T) {
	s := session()
	c1, err := s.Census("470.lbm", workload.Ref)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Census("470.lbm", workload.Ref)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("census not cached (pointer differs)")
	}
}
