// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI) on the simulated Alpha host: one runner per artifact,
// sharing a Session that caches workload programs, censuses, and DBT runs
// across experiments (Figure 16 reuses Figure 11/12's runs, etc.).
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mdabt/internal/core"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
	"mdabt/internal/policy"
	"mdabt/internal/serve"
	"mdabt/internal/workload"
)

// Config names one translator configuration under test. The mechanism is
// selected either by the Mech constant or — taking precedence when set —
// by Policy, a policy-registry name, so experiments can address
// registry-only mechanisms without new core constants.
type Config struct {
	Mech         core.Mechanism
	Policy       string // registry name/alias; overrides Mech when non-empty
	Threshold    uint64 // heating threshold; 0 selects the mechanism default
	Rearrange    bool
	Retranslate  bool
	MultiVersion bool
	MVBlock      bool // block-granularity multi-version (§IV-D preferred form)
	Adaptive     bool // §IV-D truly-adaptive sites (extension experiment)
	NoChain      bool // disable translation chaining (ablation)
	IBTC         bool // indirect-branch translation cache (ablation)
	Superblocks  bool // phase-2 trace formation (ablation)
	StaticAlign  bool // static alignment analysis layer (PR 3)
	AOT          bool // ahead-of-time whole-binary pre-translation (PR 8)
	Traces       bool // IR-less direct-chaining execution tier (simulation-invisible)
}

// mechanism resolves the configured mechanism ID (Policy wins over Mech).
func (c Config) mechanism() (core.Mechanism, error) {
	if c.Policy == "" {
		return c.Mech, nil
	}
	m, ok := core.MechanismByName(c.Policy)
	if !ok {
		return 0, fmt.Errorf("experiments: unknown mechanism policy %q", c.Policy)
	}
	return m, nil
}

func (c Config) key() string {
	return fmt.Sprintf("%d/%s/%d/%v%v%v%v%v%v%v%v%v%v%v", c.Mech, c.Policy, c.Threshold, c.Rearrange, c.Retranslate, c.MultiVersion, c.MVBlock, c.Adaptive, c.NoChain, c.IBTC, c.Superblocks, c.StaticAlign, c.AOT, c.Traces)
}

// String names the configuration for reports.
func (c Config) String() string {
	s := c.Mech.String()
	if m, err := c.mechanism(); err == nil {
		s = m.String()
	}
	if c.Threshold != 0 {
		s += fmt.Sprintf("(th=%d)", c.Threshold)
	}
	if c.Rearrange {
		s += "+rearrange"
	}
	if c.Retranslate {
		s += "+retrans"
	}
	if c.MultiVersion {
		s += "+multiver"
	}
	if c.MVBlock {
		s += "+mvblock"
	}
	if c.Adaptive {
		s += "+adaptive"
	}
	if c.NoChain {
		s += "+nochain"
	}
	if c.IBTC {
		s += "+ibtc"
	}
	if c.Superblocks {
		s += "+superblocks"
	}
	if c.StaticAlign {
		s += "+staticalign"
	}
	if c.AOT {
		s += "+aot"
	}
	return s
}

// RunResult is the outcome of one benchmark × configuration execution.
type RunResult struct {
	Counters machine.Counters
	Stats    core.Stats
	// Traces is the host-side trace-tier telemetry (zero unless
	// Config.Traces); it never feeds the simulated columns.
	Traces machine.TraceStats
}

// Cycles returns the simulated runtime.
func (r RunResult) Cycles() uint64 { return r.Counters.Cycles }

// Session caches generated programs, censuses and DBT runs. Methods are
// safe for concurrent use; the experiment runners fan benchmarks out over
// a worker pool.
type Session struct {
	// IterFloor overrides the workload generator's minimum iteration count
	// (tests use a small value for speed; 0 keeps the default).
	IterFloor int
	// Shrink divides each spec's MDA target (≥1; 0 means 1).
	Shrink float64
	// Parallelism bounds concurrent benchmark runs (0 = NumCPU).
	Parallelism int
	// Budget bounds host instructions per run.
	Budget uint64
	// Timeout bounds the wall-clock time of each benchmark run (0 = none);
	// a run that exceeds it fails with context.DeadlineExceeded instead of
	// wedging the whole experiment.
	Timeout time.Duration
	// MachineParams overrides the host cost model (nil = machine.DefaultParams).
	// The sensitivity tests use it to show the paper-shape conclusions are
	// robust to cost-model changes.
	MachineParams *machine.Params

	mu     sync.Mutex
	progs  map[string]*workload.Program
	cens   map[string]*core.Census
	runs   map[string]RunResult
	native map[string]uint64
	sites  map[string]map[uint32]bool // trainSites memo, keyed by benchmark
}

// NewSession returns a session with full-scale defaults.
func NewSession() *Session {
	return &Session{
		Budget: 2_000_000_000,
		progs:  make(map[string]*workload.Program),
		cens:   make(map[string]*core.Census),
		runs:   make(map[string]RunResult),
		native: make(map[string]uint64),
		sites:  make(map[string]map[uint32]bool),
	}
}

func (s *Session) adjust(spec workload.Spec) workload.Spec {
	if s.IterFloor > 0 {
		spec.IterFloor = s.IterFloor
	}
	if s.Shrink > 1 {
		spec.PaperMDAs /= s.Shrink
	}
	return spec
}

// Program returns the (cached) workload for a benchmark. variant selects
// the default build ("") or an alignment-optimized build ("psc"/"icc",
// Figure 1's two compilers, differing in padding aggressiveness).
func (s *Session) Program(name, variant string) (*workload.Program, error) {
	key := name + "|" + variant
	s.mu.Lock()
	p, ok := s.progs[key]
	s.mu.Unlock()
	if ok {
		return p, nil
	}
	spec, ok2 := workload.SpecByName(name)
	if !ok2 {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
	}
	spec = s.adjust(spec)
	var err error
	switch variant {
	case "":
		p, err = workload.Generate(spec)
	case "psc": // pathscale-style: aggressive padding
		p, err = workload.GenerateAligned(spec, 96)
	case "icc": // icc-style: tighter padding
		p, err = workload.GenerateAligned(spec, 80)
	default:
		return nil, fmt.Errorf("experiments: unknown variant %q", variant)
	}
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.progs[key] = p
	s.mu.Unlock()
	return p, nil
}

// Census returns the (cached) pure-interpretation census of a benchmark
// under the given input.
func (s *Session) Census(name string, in workload.Input) (*core.Census, error) {
	key := fmt.Sprintf("%s|%v", name, in)
	s.mu.Lock()
	c, ok := s.cens[key]
	s.mu.Unlock()
	if ok {
		return c, nil
	}
	p, err := s.Program(name, "")
	if err != nil {
		return nil, err
	}
	m := mem.New()
	p.Load(m, in)
	c, err = core.RunCensus(m, p.Entry(), 300_000_000)
	if err != nil {
		return nil, fmt.Errorf("experiments: census %s: %w", name, err)
	}
	if !c.Halted {
		return nil, fmt.Errorf("experiments: census %s did not halt", name)
	}
	s.mu.Lock()
	s.cens[key] = c
	s.mu.Unlock()
	return c, nil
}

// trainSites derives the static (train-input) profile for a benchmark,
// memoized per benchmark: every static-profile configuration of the same
// benchmark shares one derived site set. Callers must not mutate the result.
func (s *Session) trainSites(name string) (map[uint32]bool, error) {
	s.mu.Lock()
	sites, ok := s.sites[name]
	s.mu.Unlock()
	if ok {
		return sites, nil
	}
	c, err := s.Census(name, workload.Train)
	if err != nil {
		return nil, err
	}
	sites = make(map[uint32]bool)
	for pc, site := range c.Sites {
		if site.MDA > 0 {
			sites[pc] = true
		}
	}
	s.mu.Lock()
	s.sites[name] = sites
	s.mu.Unlock()
	return sites, nil
}

// Run executes a benchmark (ref input) under cfg on the simulated host,
// returning cached results on repeat calls.
func (s *Session) Run(name string, cfg Config) (RunResult, error) {
	key := name + "|" + cfg.key()
	s.mu.Lock()
	r, ok := s.runs[key]
	s.mu.Unlock()
	if ok {
		return r, nil
	}
	p, err := s.Program(name, "")
	if err != nil {
		return RunResult{}, err
	}
	mech, err := cfg.mechanism()
	if err != nil {
		return RunResult{}, err
	}
	opt := core.DefaultOptions(mech)
	if cfg.Threshold != 0 {
		opt.HeatThreshold = cfg.Threshold
	}
	opt.Rearrange = cfg.Rearrange
	opt.Retranslate = cfg.Retranslate
	opt.MultiVersion = cfg.MultiVersion
	opt.MVBlockGranularity = cfg.MVBlock
	opt.Adaptive = cfg.Adaptive
	opt.NoChain = cfg.NoChain
	opt.IBTC = cfg.IBTC
	opt.Superblocks = cfg.Superblocks
	opt.Traces = cfg.Traces
	// OR-preserving: DefaultOptions("aot") pre-sets StaticAlign and AOT;
	// the config flags add the layers over other bases without clearing
	// those defaults.
	opt.StaticAlign = cfg.StaticAlign || opt.StaticAlign
	opt.AOT = cfg.AOT || opt.AOT
	if opt.AOT {
		opt.StaticAlign = true
	}
	if pm, ok := policy.ByID(int(mech)); ok && pm.UsesStaticProfile() {
		opt.StaticSites, err = s.trainSites(name)
		if err != nil {
			return RunResult{}, err
		}
	}
	if err := opt.Validate(); err != nil {
		return RunResult{}, fmt.Errorf("experiments: %s under %v: %w", name, cfg, err)
	}
	m := mem.New()
	p.Load(m, workload.Ref)
	params := machine.DefaultParams()
	if s.MachineParams != nil {
		params = *s.MachineParams
	}
	mach := machine.New(m, params)
	e := core.NewEngine(m, mach, opt)
	ctx := context.Background()
	if s.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.Timeout)
		defer cancel()
	}
	if err := e.RunContext(ctx, p.Entry(), s.Budget); err != nil {
		return RunResult{}, fmt.Errorf("experiments: %s under %v: %w", name, cfg, err)
	}
	// Every run doubles as a verifier pass: the emitted code of every live
	// translation must lint clean (ISSUE 3 acceptance criterion).
	if findings := e.Lint(); len(findings) > 0 {
		return RunResult{}, fmt.Errorf("experiments: %s under %v: translation lint: %s (%d findings)",
			name, cfg, findings[0], len(findings))
	}
	r = RunResult{Counters: mach.Counters(), Stats: e.Stats(), Traces: e.TraceStats()}
	s.mu.Lock()
	s.runs[key] = r
	s.mu.Unlock()
	return r, nil
}

// forEach fans the benchmark list out over a serve.Pool, preserving the
// historical contract: every name runs, and the first error in name order
// is returned. Relative to the old bespoke WaitGroup fan-out, the pool
// adds panic isolation (a crashing benchmark surfaces as an Internal
// error, not a process abort); per-run deadlines come from
// Session.Timeout inside Run.
func (s *Session) forEach(names []string, fn func(name string) error) error {
	par := s.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > len(names) {
		par = len(names)
	}
	if par < 1 {
		par = 1
	}
	pool := serve.NewPool(serve.Options{Workers: par, Retries: -1, BreakerThreshold: -1})
	defer pool.Close()
	return pool.Each(context.Background(), len(names), nil,
		func(ctx context.Context, i int, w *serve.Worker) error {
			return fn(names[i])
		})
}

// selectedNames returns the 21 performance benchmarks in Table I order.
func selectedNames() []string {
	var names []string
	for _, sp := range workload.SelectedSpecs() {
		names = append(names, sp.Name)
	}
	return names
}

// allNames returns all 54 benchmarks in Table I order.
func allNames() []string {
	var names []string
	for _, sp := range workload.Specs() {
		names = append(names, sp.Name)
	}
	return names
}
