package experiments

import (
	"testing"

	"mdabt/internal/core"
	"mdabt/internal/machine"
)

// TestCostModelSensitivity checks the robustness claim from DESIGN.md §5:
// the paper-shape conclusions (exception handling beats dynamic profiling
// on late-onset benchmarks; the direct method is the slowest; DPEH does
// not lose to exception handling) survive ±2x changes to the key cost
// parameters.
func TestCostModelSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep is slow")
	}
	bench := []string{"483.xalancbmk", "410.bwaves", "188.ammp", "252.eon"}
	variants := []struct {
		name  string
		tweak func(p *machine.Params)
	}{
		{"half-trap", func(p *machine.Params) { p.MisalignTrapCycles = 500 }},
		{"double-trap", func(p *machine.Params) { p.MisalignTrapCycles = 2000 }},
		{"slow-loads", func(p *machine.Params) { p.LoadExtraCycles = 4 }},
		{"in-order", func(p *machine.Params) { p.DualIssueALU = false }},
		{"no-caches", func(p *machine.Params) { p.UseCaches = false }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			params := machine.DefaultParams()
			v.tweak(&params)
			s := NewSession()
			s.Shrink = 100
			s.IterFloor = 600
			s.MachineParams = &params
			cycles := func(name string, cfg Config) float64 {
				r, err := s.Run(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return float64(r.Cycles())
			}
			for _, name := range bench {
				eh := cycles(name, Config{Mech: core.ExceptionHandling})
				dyn := cycles(name, Config{Mech: core.DynamicProfile, Threshold: 50})
				dpeh := cycles(name, Config{Mech: core.DPEH})
				direct := cycles(name, Config{Mech: core.Direct})
				// Direct loses wherever aligned traffic dominates; on
				// extreme-MDA benchmarks (188.ammp, 43% misaligned) its
				// always-inline sequences can legitimately win, so the
				// assertion applies to the moderate-MDA benchmarks.
				if name != "188.ammp" && direct <= eh {
					t.Errorf("%s/%s: direct (%.0f) not slower than EH (%.0f)", v.name, name, direct, eh)
				}
				if dpeh > eh*1.10 {
					t.Errorf("%s/%s: DPEH (%.0f) loses >10%% to EH (%.0f)", v.name, name, dpeh, eh)
				}
				// The late-onset benchmarks keep punishing dynamic profiling.
				if name == "483.xalancbmk" || name == "410.bwaves" {
					if dyn <= eh {
						t.Errorf("%s/%s: dynamic profiling (%.0f) not slower than EH (%.0f)", v.name, name, dyn, eh)
					}
				}
			}
		})
	}
}

// TestSessionBudgetError surfaces run budget exhaustion as an error rather
// than silently truncated results.
func TestSessionBudgetError(t *testing.T) {
	s := NewSession()
	s.Shrink = 100
	s.IterFloor = 600
	s.Budget = 1000
	if _, err := s.Run("188.ammp", Config{Mech: core.ExceptionHandling}); err == nil {
		t.Fatal("tiny budget: want error")
	} else if want := "budget"; !containsFold(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func containsFold(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		match := true
		for j := 0; j < len(sub); j++ {
			a, b := s[i+j], sub[j]
			if a >= 'A' && a <= 'Z' {
				a += 'a' - 'A'
			}
			if b >= 'A' && b <= 'Z' {
				b += 'a' - 'A'
			}
			if a != b {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
