package experiments

import "testing"

func TestAOTStudyShape(t *testing.T) {
	r := runExp(t, "aot")
	if len(r.Names) != 21 {
		t.Fatalf("aot has %d rows, want 21", len(r.Names))
	}
	if g := r.Geomean("ExceptionHandling"); g != 1 {
		t.Errorf("EH normalized geomean = %v, want exactly 1", g)
	}
	// AOT is EH minus every run-time translation and analysis charge, with
	// eager sequences at proven-misaligned sites sparing their first trap:
	// it must not lose to EH.
	if aotG := r.Geomean("AOT"); aotG > 1.0005 {
		t.Errorf("AOT geomean %.4f worse than ExceptionHandling", aotG)
	}
	// The workload generator emits closed call/return-convention programs,
	// so CFG recovery is complete: everything pre-translates, nothing falls
	// back to the JIT.
	if b := r.Mean("aotBlocks"); b == 0 {
		t.Error("AOT pre-translated no blocks")
	}
	if f := r.Mean("jitFallbacks"); f != 0 {
		t.Errorf("AOT mean JIT fallbacks %.2f, want 0 (incomplete CFG recovery)", f)
	}
}
