package experiments

import "mdabt/internal/core"

// AOTStudy measures the ahead-of-time tier (whole-binary CFG recovery +
// offline pre-translation, DESIGN.md §13) against the dynamic mechanisms
// it competes with: runtime normalized to exception handling, plus the
// tier's coverage evidence — blocks pre-translated offline and dynamic
// (JIT) translations it still had to perform. With complete CFG recovery
// the fallback column is zero: the simulated program never pays a
// translation, an interpretation phase, or an analysis charge at run time,
// which is exactly the cold-start win the serving layer adopts images for.
func AOTStudy(s *Session) (*Result, error) {
	names := selectedNames()
	order := []string{"Direct", "ExceptionHandling", "SPEH", "AOT"}
	cfgs := map[string]Config{
		"Direct":            {Mech: core.Direct},
		"ExceptionHandling": {Mech: core.ExceptionHandling},
		"SPEH":              {Policy: "speh"},
		"AOT":               {Policy: "aot"},
	}
	r := newResult("aot", "Extension: ahead-of-time whole-binary pre-translation vs dynamic mechanisms",
		names, "Direct", "ExceptionHandling", "SPEH", "AOT", "aotBlocks", "jitFallbacks")
	err := s.forEach(names, func(name string) error {
		base, err := s.Run(name, cfgs["ExceptionHandling"])
		if err != nil {
			return err
		}
		for _, series := range order {
			run, err := s.Run(name, cfgs[series])
			if err != nil {
				return err
			}
			r.set(series, name, float64(run.Cycles())/float64(base.Cycles()))
			if series == "AOT" {
				r.set("aotBlocks", name, float64(run.Stats.AOTBlocks))
				r.set("jitFallbacks", name, float64(run.Stats.AOTFallbacks))
			}
		}
		return nil
	})
	r.Notes = append(r.Notes,
		"AOT pays no run-time translation, profiling, or analysis: all reachable blocks are pre-translated offline from the recovered CFG (aotBlocks)",
		"jitFallbacks counts dynamic translations AOT still performed (indirect-target misses, SMC invalidations); zero means the recovery covered the binary",
		"sites the align lattice cannot decide stay plain with a trap-and-patch backstop, so AOT tracks EH's trap profile, minus EH's translation overhead")
	return r, err
}
