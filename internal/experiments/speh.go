package experiments

import "mdabt/internal/core"

// SPEHStudy measures the SPEH hybrid (static profiling for sites the train
// run caught, exception handling with patching for the leftovers) against
// both parents: runtime normalized to exception handling, plus the residual
// misalignment traps each mechanism still pays on the ref input. The PR 4
// seam experiment: SPEH exists only as a registered policy strategy, so its
// row here proves a composite mechanism needs no core changes.
func SPEHStudy(s *Session) (*Result, error) {
	names := selectedNames()
	order := []string{"StaticProfiling", "SPEH", "ExceptionHandling"}
	cfgs := map[string]Config{
		"StaticProfiling":   {Mech: core.StaticProfile},
		"SPEH":              {Policy: "speh"},
		"ExceptionHandling": {Mech: core.ExceptionHandling},
	}
	r := newResult("speh", "Extension: SPEH hybrid (static profile + exception handling) vs its parents",
		names, "StaticProfiling", "SPEH", "ExceptionHandling", "staticTraps", "spehTraps")
	err := s.forEach(names, func(name string) error {
		base, err := s.Run(name, cfgs["ExceptionHandling"])
		if err != nil {
			return err
		}
		for _, series := range order {
			run, err := s.Run(name, cfgs[series])
			if err != nil {
				return err
			}
			r.set(series, name, float64(run.Cycles())/float64(base.Cycles()))
			switch series {
			case "StaticProfiling":
				r.set("staticTraps", name, float64(run.Counters.MisalignTraps))
			case "SPEH":
				r.set("spehTraps", name, float64(run.Counters.MisalignTraps))
			}
		}
		return nil
	})
	r.Notes = append(r.Notes,
		"train/ref input drift is what static profiling pays for: every missed site traps on each execution (staticTraps)",
		"SPEH patches each missed site after one trap, so spehTraps stays near the static site count and runtime tracks the better parent")
	return r, err
}
