package experiments

import (
	"mdabt/internal/align"
	"mdabt/internal/guest"
	"mdabt/internal/mem"
	"mdabt/internal/workload"
)

// This file holds the PR 3 extension experiments: the static alignment
// analysis layered over each of the paper's mechanisms (staticalign) and
// the per-benchmark verdict histogram (sitehist, the coverage companion to
// Table I).

// memDecoder wraps guest.Decode over a loaded memory image, for analyzing
// a program outside an engine.
func memDecoder(m *mem.Memory) align.Decoder {
	return func(pc uint32) (guest.Inst, int, error) {
		var buf [16]byte
		for i := range buf {
			buf[i] = m.Read8(uint64(pc) + uint64(i))
		}
		return guest.Decode(buf[:])
	}
}

// Analyze runs the whole-program alignment analysis over a benchmark's
// loaded image (Ref input), exactly as the engine does at Run entry.
func (s *Session) Analyze(name string) (*align.Analysis, error) {
	p, err := s.Program(name, "")
	if err != nil {
		return nil, err
	}
	m := mem.New()
	p.Load(m, workload.Ref)
	return align.Analyze(memDecoder(m), p.Entry()), nil
}

// StaticAlignStudy measures the +staticalign layer over every Figure 16
// mechanism: per-benchmark percentage gain of mechanism+staticalign over
// the plain mechanism.
func StaticAlignStudy(s *Session) (*Result, error) {
	names := selectedNames()
	order := []string{"Direct", "StaticProfiling", "DynamicProfiling", "ExceptionHandling", "DPEH"}
	r := newResult("staticalign", "Extension: gain from the static alignment analysis per mechanism (%)",
		names, order...)
	cfgs := Fig16Configs()
	err := s.forEach(names, func(name string) error {
		for _, series := range order {
			base := cfgs[series]
			variant := base
			variant.StaticAlign = true
			b, err := s.Run(name, base)
			if err != nil {
				return err
			}
			v, err := s.Run(name, variant)
			if err != nil {
				return err
			}
			r.set(series, name, 100*(float64(b.Cycles())/float64(v.Cycles())-1))
		}
		return nil
	})
	r.Notes = append(r.Notes,
		"Direct gains most: proven-aligned sites (stack traffic, fixed-offset filler fields) drop the 6-11 instruction MDA sequence",
		"exception-based mechanisms were already paying nothing on aligned sites, so their deltas are analysis-cost noise")
	return r, err
}

// SiteHistogram renders the per-benchmark classification histogram: how
// many static sites the analysis proves aligned/misaligned (vs unknown),
// and the share of dynamic non-byte accesses each class covers (census-
// weighted), so analysis coverage is inspectable against Table I.
func SiteHistogram(s *Session) (*Result, error) {
	names := selectedNames()
	r := newResult("sitehist", "Extension: static alignment verdict histogram (sites and dynamic weight)",
		names, "aligned", "misaligned", "unknown", "dynAligned%", "dynMisaligned%", "dynUnknown%")
	err := s.forEach(names, func(name string) error {
		a, err := s.Analyze(name)
		if err != nil {
			return err
		}
		var static [3]float64
		for _, site := range a.Sites() {
			static[site.Verdict]++
		}
		r.set("aligned", name, static[align.Aligned])
		r.set("misaligned", name, static[align.Misaligned])
		r.set("unknown", name, static[align.Unknown])

		// Dynamic weights: every non-byte access the census interpreter
		// executed, attributed to its instruction's folded verdict.
		c, err := s.Census(name, workload.Ref)
		if err != nil {
			return err
		}
		p, err := s.Program(name, "")
		if err != nil {
			return err
		}
		m := mem.New()
		p.Load(m, workload.Ref)
		dec := memDecoder(m)
		var dyn [3]float64
		var total float64
		for pc, cs := range c.Sites {
			execs := float64(cs.MDA + cs.Aligned)
			if execs == 0 {
				continue
			}
			v := align.Unknown
			if in, _, derr := dec(pc); derr == nil {
				v = a.InstVerdict(pc, in.Op)
			}
			dyn[v] += execs
			total += execs
		}
		if total > 0 {
			r.set("dynAligned%", name, 100*dyn[align.Aligned]/total)
			r.set("dynMisaligned%", name, 100*dyn[align.Misaligned]/total)
			r.set("dynUnknown%", name, 100*dyn[align.Unknown]/total)
		}
		return nil
	})
	r.Notes = append(r.Notes,
		"static columns count access streams over the whole program; dyn columns weight each instruction by census executions",
		"workload-group accesses stay unknown (base pointers loaded from memory); stack and fixed-offset filler traffic proves aligned")
	return r, err
}
