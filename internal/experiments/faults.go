package experiments

import (
	"fmt"

	"mdabt/internal/core"
	"mdabt/internal/guest"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
	"mdabt/internal/workload"
)

// FaultStudy is an extension beyond the paper's artifacts: the guest-fault
// workload set (page-straddling MDAs against protected and unmapped pages,
// plus the self-modifying rewriter) run under three mechanisms. Runtime
// columns are normalized to exception handling; the remaining columns count
// delivered guest faults, misalignment traps, and code-page invalidations.
// Every run is gated on fault precision: the outcome, the faulting guest
// PC, and the fault record must match the interpreter reference exactly,
// or the experiment fails — the table doubles as a soundness sweep.
func FaultStudy(s *Session) (*Result, error) {
	progs, err := workload.FaultPrograms()
	if err != nil {
		return nil, err
	}
	names := make([]string, len(progs))
	byName := make(map[string]*workload.FaultProgram, len(progs))
	for i, p := range progs {
		names[i] = p.Name
		byName[p.Name] = p
	}
	r := newResult("faults", "Extension: guest-fault workloads — runtime and fault delivery per mechanism",
		names, "direct", "eh", "dpeh", "guest-faults", "traps(eh)", "smc-invals")

	dpeh := core.DefaultOptions(core.DPEH)
	dpeh.HeatThreshold = 3 // translate the rewritten stub well before the flip
	mechs := []struct {
		series string
		opt    core.Options
	}{
		{"direct", core.DefaultOptions(core.Direct)},
		{"eh", core.DefaultOptions(core.ExceptionHandling)},
		{"dpeh", dpeh},
	}

	err = s.forEach(names, func(name string) error {
		p := byName[name]
		// Interpreter reference: the precise fault (or clean halt) every
		// mechanism must reproduce.
		m := mem.New()
		p.Load(m)
		c, cerr := core.RunCensus(m, p.Entry(), 300_000_000)
		var refGF *guest.Fault
		if p.ExpectFault {
			gf, ok := core.AsGuestFault(cerr)
			if !ok {
				return fmt.Errorf("experiments: faults: %s reference ended with %v, want a guest fault", name, cerr)
			}
			refGF = gf
		} else if cerr != nil || !c.Halted {
			return fmt.Errorf("experiments: faults: %s reference: %v", name, cerr)
		}

		cycles := make(map[string]uint64, len(mechs))
		for _, mc := range mechs {
			mm := mem.New()
			p.Load(mm)
			mach := machine.New(mm, machine.DefaultParams())
			e := core.NewEngine(mm, mach, mc.opt)
			rerr := e.Run(p.Entry(), s.Budget)
			if p.ExpectFault {
				gf, ok := core.AsGuestFault(rerr)
				if !ok {
					return fmt.Errorf("experiments: faults: %s under %s ended with %v, want a guest fault", name, mc.series, rerr)
				}
				if gf.PC != refGF.PC || gf.Mem != refGF.Mem {
					return fmt.Errorf("experiments: faults: %s under %s delivered %v, reference %v", name, mc.series, rerr, cerr)
				}
			} else if rerr != nil {
				return fmt.Errorf("experiments: faults: %s under %s: %v", name, mc.series, rerr)
			}
			cycles[mc.series] = mach.Counters().Cycles
			switch mc.series {
			case "eh":
				r.set("guest-faults", name, float64(e.Stats().GuestFaults))
				r.set("traps(eh)", name, float64(mach.Counters().MisalignTraps))
			case "dpeh":
				r.set("smc-invals", name, float64(e.Stats().SMCInvalidations))
			}
		}
		base := float64(cycles["eh"])
		for _, mc := range mechs {
			r.set(mc.series, name, float64(cycles[mc.series])/base)
		}
		return nil
	})
	r.Notes = append(r.Notes,
		"fault-expected rows end in exactly one delivered guest fault, bit-identical (PC, address, access) to the interpreter reference under every mechanism",
		"smc-rewrite's smc-invals column shows the code-page write watch catching the in-place stub rewrite from translated code")
	return r, err
}
