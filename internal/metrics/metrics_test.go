package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", g)
	}
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	// Non-positive values are skipped, not poisoning the mean.
	if g := Geomean([]float64{4, 0, -3, 4}); math.Abs(g-4) > 1e-12 {
		t.Errorf("Geomean with non-positives = %v, want 4", g)
	}
	if g := Geomean([]float64{0, -1}); g != 0 {
		t.Errorf("Geomean(all non-positive) = %v, want 0", g)
	}
}

func TestGeomeanScaleInvariance(t *testing.T) {
	// geomean(k*x) = k * geomean(x) — the property that makes it the right
	// summary for normalized runtimes.
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a)/16 + 0.1, float64(b)/16 + 0.1, float64(c)/16 + 0.1}
		k := 3.7
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = k * x
		}
		return math.Abs(Geomean(scaled)-k*Geomean(xs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v, want 2", m)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.045); got != "+4.5%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(-0.1); got != "-10.0%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestCount(t *testing.T) {
	if got := Count(4950); got != "4950" {
		t.Errorf("Count = %q", got)
	}
	if got := Count(8.32e9); got != "8.32E+09" {
		t.Errorf("Count = %q, want paper-style scientific", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("betabeta", 22)
	out := tb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("bad header %q", lines[1])
	}
	if !strings.Contains(lines[3], "alpha") || !strings.Contains(lines[3], "1.5") {
		t.Errorf("bad row %q", lines[3])
	}
	// Columns align: "value" column starts at the same offset in all rows.
	h := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[4][h-2:], "  22") && !strings.Contains(lines[4], "22") {
		t.Errorf("row misaligned: %q", lines[4])
	}
}

func TestBarChart(t *testing.T) {
	bc := NewBarChart("Bars", 10)
	bc.Bar("up", 2)
	bc.Bar("down", -1)
	bc.Bar("zero", 0)
	out := bc.String()
	if !strings.Contains(out, "##########") {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "-#####") {
		t.Errorf("negative bar missing sign:\n%s", out)
	}
	// Zero width defaults to 40.
	bc2 := NewBarChart("", 0)
	bc2.Bar("x", 1)
	if !strings.Contains(bc2.String(), strings.Repeat("#", 40)) {
		t.Error("default width not applied")
	}
	// All-zero chart must not divide by zero.
	bc3 := NewBarChart("z", 5)
	bc3.Bar("a", 0)
	if !strings.Contains(bc3.String(), "a") {
		t.Error("zero chart broken")
	}
}
