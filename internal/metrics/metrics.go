// Package metrics provides the small numeric and rendering helpers the
// experiment harness uses to report paper-style tables and figures:
// geometric means, normalized ratios, and fixed-width ASCII table/bar-chart
// rendering.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Geomean returns the geometric mean of xs, ignoring non-positive values
// (which cannot participate in a geometric mean). It returns 0 for an
// empty input.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean, or 0 for an empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Pct formats a fraction as a signed percentage ("+4.5%").
func Pct(f float64) string { return fmt.Sprintf("%+.1f%%", 100*f) }

// Count formats large counts the way the paper's tables do: plain integers
// below a million, scientific notation (e.g. 8.32E+09) above.
func Count(v float64) string {
	if v < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2E", v)
}

// Table renders rows as a fixed-width ASCII table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Row appends one row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// BarChart renders labelled horizontal bars (our stand-in for the paper's
// figures). Values may be negative; bars are scaled to width.
type BarChart struct {
	Title string
	Width int
	names []string
	vals  []float64
}

// NewBarChart creates a chart; width is the maximum bar length in
// characters (default 40 when 0).
func NewBarChart(title string, width int) *BarChart {
	if width <= 0 {
		width = 40
	}
	return &BarChart{Title: title, Width: width}
}

// Bar appends one bar.
func (b *BarChart) Bar(name string, v float64) {
	b.names = append(b.names, name)
	b.vals = append(b.vals, v)
}

// String renders the chart.
func (b *BarChart) String() string {
	maxAbs, nameW := 0.0, 0
	for i, v := range b.vals {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
		if len(b.names[i]) > nameW {
			nameW = len(b.names[i])
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	var sb strings.Builder
	if b.Title != "" {
		sb.WriteString(b.Title)
		sb.WriteByte('\n')
	}
	for i, v := range b.vals {
		n := int(math.Round(math.Abs(v) / maxAbs * float64(b.Width)))
		bar := strings.Repeat("#", n)
		sign := " "
		if v < 0 {
			sign = "-"
		}
		fmt.Fprintf(&sb, "%-*s %s%-*s %8.3f\n", nameW, b.names[i], sign, b.Width, bar, v)
	}
	return sb.String()
}
