package workload

import (
	"fmt"
	"math"

	"mdabt/internal/guest"
	"mdabt/internal/mem"
)

// Input selects the benchmark input set. Train and ref differ in the
// alignment of the input-dependent pointer groups (Table IV behaviour).
type Input int

// Input sets.
const (
	Train Input = iota
	Ref
)

func (in Input) String() string {
	if in == Train {
		return "train"
	}
	return "ref"
}

// Data-image layout (offsets from guest.DataBase).
const (
	tableOff   = 0x000 // group pointer table, 4 bytes per group
	fillerOff  = 0x400 // aligned filler arena
	arenasOff  = 0x800 // per-group arenas
	arenaSize  = 64
	fillerA    = 16 // aligned accesses per filler inner-loop pass
	misOff     = 1  // misalignment offset applied to group pointers (odd: misaligns every access width)
	earlyIter  = 30 // iteration at which early-onset groups flip
	sitesPerGp = 4
)

// siteClass is a group's alignment behaviour.
type siteClass uint8

const (
	classAlways siteClass = iota // misaligned on every execution
	classMostly                  // misaligned 7/8 of executions
	classHalf                    // misaligned 1/2
	classRarely                  // misaligned 1/4
	classLate                    // aligned until Iterations/2, then misaligned
	classEarly                   // aligned until iteration 30, then misaligned
	classTrain                   // aligned under train input, misaligned under ref
)

// volume is the long-run fraction of a group's executions that misalign
// (under the ref input). flipFrac is the post-flip fraction of the run for
// onset classes.
func (c siteClass) volume(flipFrac float64) float64 {
	switch c {
	case classMostly:
		return 7.0 / 8
	case classHalf:
		return 0.5
	case classRarely:
		return 0.25
	case classLate:
		return flipFrac
	default:
		return 1
	}
}

// group is one pointer-sharing cluster of memory sites.
type group struct {
	class siteClass
	inLib bool
	fp    bool // quadword sites
	// duty gates the group's execution to one iteration in duty+1 (a
	// power-of-two mask). Onset and input-dependent classes use it to hit
	// their MDA-volume targets with sub-group precision.
	duty int
}

// Program is a generated benchmark workload.
type Program struct {
	Spec Spec

	Main []byte // loaded at guest.CodeBase
	Lib  []byte // loaded at guest.SharedLib (may be nil)
	// Data images for the two inputs (loaded at guest.DataBase).
	trainData, refData []byte

	Iterations int
	FillerReps int // filler inner-loop trip count (R)
	Gate       int // MDA groups execute every Gate-th iteration
	Groups     int
	MDASites   int
	LibGroups  int

	aligned bool // alignment-optimized variant (Figure 1)
	arena   int  // per-group arena stride (padding grows it)
}

// Load places the program and the chosen input's data image into memory.
func (p *Program) Load(m *mem.Memory, in Input) {
	m.WriteBytes(guest.CodeBase, p.Main)
	if p.Lib != nil {
		m.WriteBytes(guest.SharedLib, p.Lib)
	}
	data := p.refData
	if in == Train {
		data = p.trainData
	}
	m.WriteBytes(guest.DataBase, data)
}

// Entry returns the program entry point.
func (p *Program) Entry() uint32 { return guest.CodeBase }

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Generate builds the guest program modelling spec. The generator solves
// for the filler volume and iteration count that hit the spec's MDA ratio
// and a scaled MDA total within a bounded simulation budget.
func Generate(spec Spec) (*Program, error) {
	return generate(spec, false, arenaSize)
}

// GenerateAligned builds the "compiled with alignment optimization"
// variant of spec (paper Fig. 1): the instruction stream is identical, but
// every pointer the input provides is naturally aligned and the code-level
// misalignment offsets are zero. arenaBytes pads each data arena, modelling
// the working-set growth of alignment padding (§II: "the performance gains
// from aligned data accesses could be outweighed by the increased data
// working set size").
func GenerateAligned(spec Spec, arenaBytes int) (*Program, error) {
	if arenaBytes < arenaSize {
		arenaBytes = arenaSize
	}
	return generate(spec, true, arenaBytes)
}

func generate(spec Spec, aligned bool, arenaBytes int) (*Program, error) {
	p := &Program{Spec: spec, aligned: aligned, arena: arenaBytes}

	// Static site population, scaled from Table I's NMI.
	nSites := clampI(spec.PaperNMI/8, 2, 120)
	nGroups := (nSites + sitesPerGp - 1) / sitesPerGp
	p.MDASites = nGroups * sitesPerGp
	p.Groups = nGroups

	// Distribute groups over behaviour classes. Late/early/train targets
	// are MDA-volume fractions, hit with sub-group precision by duty-cycle
	// gating; mostly/half/rarely are site fractions (Fig. 15 counts
	// instructions).
	baseVol := float64(nGroups*sitesPerGp) * 0.93 // approximate per-iteration MDA volume
	type gated struct {
		class siteClass
		n     int
		duty  int
	}
	var special []gated
	plan := func(c siteClass, frac float64) {
		if frac <= 0 {
			return
		}
		target := frac * baseVol
		// Cap each special class at a quarter of the groups so the regular
		// population (always/mostly/half/rarely) survives. Iterating duty
		// ascending with strict improvement prefers the least-gated plan.
		nCap := nGroups / 4
		if nCap < 1 {
			nCap = 1
		}
		bestN, bestDuty, bestErr := 0, 0, math.Inf(1)
		for _, duty := range []int{0, 1, 3, 7, 15, 31, 63} {
			per := float64(sitesPerGp) * c.volume(spec.flipFraction()) / float64(duty+1)
			n := int(math.Round(target / per))
			if n < 1 {
				n = 1
			}
			if n > nCap {
				n = nCap
			}
			if err := math.Abs(float64(n)*per - target); err < bestErr-1e-9 {
				bestN, bestDuty, bestErr = n, duty, err
			}
		}
		special = append(special, gated{class: c, n: bestN, duty: bestDuty})
	}
	plan(classLate, spec.LateFrac)
	plan(classEarly, spec.EarlyFrac)
	plan(classTrain, spec.TrainMissFrac)

	groups := make([]group, nGroups)
	cursor := 0
	for _, sp := range special {
		for i := 0; i < sp.n && cursor < nGroups; i++ {
			groups[cursor] = group{class: sp.class, duty: sp.duty}
			cursor++
		}
	}
	nOf := func(frac float64) int {
		if frac <= 0 {
			return 0
		}
		n := int(math.Round(float64(nGroups) * frac))
		if n == 0 {
			n = 1
		}
		return n
	}
	for _, mix := range []struct {
		class siteClass
		n     int
	}{
		{classMostly, nOf(spec.FracMostly)},
		{classHalf, nOf(spec.FracHalf)},
		{classRarely, nOf(spec.FracRarely)},
	} {
		for i := 0; i < mix.n && cursor < nGroups; i++ {
			groups[cursor] = group{class: mix.class}
			cursor++
		}
	}
	for cursor < nGroups {
		groups[cursor] = group{class: classAlways}
		cursor++
	}
	libGoal := int(math.Round(float64(nGroups) * spec.LibFrac))
	for i := range groups {
		groups[i].fp = spec.FPHeavy && i%3 != 2
		groups[i].inLib = i < libGoal
	}
	p.LibGroups = libGoal

	// Rare-MDA benchmarks gate the MDA section to one iteration in 64.
	p.Gate = 1
	if spec.PaperRatio < 0.0001 {
		p.Gate = 64
	}

	// Expected MDAs per iteration.
	mdaEff := 0.0
	for _, g := range groups {
		mdaEff += sitesPerGp * g.class.volume(spec.flipFraction()) / float64(g.duty+1)
	}
	mdaEff /= float64(p.Gate)

	// Solve the filler trip count R for the target MDA ratio:
	// ratio ≈ mdaEff / (R*fillerA + groupRefs + mdaSites/Gate).
	ratio := spec.PaperRatio
	if ratio <= 0 {
		ratio = 0.00003
	}
	groupRefs := float64(nGroups+p.MDASites)/float64(p.Gate) + 2 // table loads + sites + lib call/ret
	need := mdaEff/ratio - groupRefs
	r := int(math.Round(need / fillerA))
	maxR := 400
	if !spec.Selected {
		maxR = 600
	}
	p.FillerReps = clampI(r, 1, maxR)

	// Iteration count: hit a scaled MDA total within a bounded budget.
	targetMDA := spec.PaperMDAs / 2e4
	iters := 2000
	if mdaEff > 0 {
		iters = int(targetMDA / mdaEff)
	}
	instsPerIter := p.FillerReps*(3*fillerA+3) + (8*nGroups)/p.Gate + 12
	if spec.Selected {
		floor := 4000
		if spec.IterFloor > 0 {
			floor = spec.IterFloor
		}
		budgetIters := 24_000_000 / instsPerIter
		iters = clampI(iters, floor, 20000)
		if iters > budgetIters {
			iters = clampI(budgetIters, min(floor, 1500), 20000)
		}
	} else {
		floor := 200
		if spec.IterFloor > 0 {
			floor = spec.IterFloor
		}
		iters = clampI(iters, floor, 1500)
		budgetIters := 3_000_000 / instsPerIter
		if iters > budgetIters {
			iters = clampI(budgetIters, min(floor, 100), 1500)
		}
	}
	if iters%2 == 1 {
		iters++ // keep the half-ratio classes exact
	}
	p.Iterations = iters

	if err := p.emit(groups); err != nil {
		return nil, err
	}
	p.buildData(groups)
	return p, nil
}

// emitGroup emits one group's pointer load, alignment-conditioning code and
// memory sites into b. i (EDI) is the iteration counter. off is the
// misalignment offset (0 for the aligned variant, which keeps the
// instruction stream identical while eliminating every MDA).
func emitGroup(b *guest.Builder, g group, idx int, off int32) {
	skip := fmt.Sprintf("gd%d", idx)
	if g.duty > 0 {
		b.Mov(guest.ESI, guest.EDI)
		b.ALUImm(guest.ANDri, guest.ESI, int32(g.duty))
		b.CmpImm(guest.ESI, 0)
		b.Jcc(guest.NE, skip)
	}
	b.Load(guest.LD4, guest.EBX, guest.MemRef{Base: guest.EBP, Disp: int32(4 * idx)})
	// The sometimes-aligned classes derive their misalignment offset
	// arithmetically from the iteration counter — branchlessly, so the
	// sites stay inside one basic block and genuinely alternate alignment
	// at a single translated site (the situation multi-version code
	// targets, §IV-D). A branch here would split the block and give each
	// path a monomorphic copy of the site.
	switch g.class {
	case classMostly:
		// Misaligned except one execution in 8: off × ((i&7 + 7) >> 3).
		b.Mov(guest.ESI, guest.EDI)
		b.ALUImm(guest.ANDri, guest.ESI, 7)
		b.ALUImm(guest.ADDri, guest.ESI, 7)
		b.ALUImm(guest.SHRri, guest.ESI, 3)
		b.ALUImm(guest.IMULri, guest.ESI, off)
		b.ALU(guest.ADDrr, guest.EBX, guest.ESI)
	case classHalf:
		// Misaligned on odd iterations: off × (i&1).
		b.Mov(guest.ESI, guest.EDI)
		b.ALUImm(guest.ANDri, guest.ESI, 1)
		b.ALUImm(guest.IMULri, guest.ESI, off)
		b.ALU(guest.ADDrr, guest.EBX, guest.ESI)
	case classRarely:
		// Misaligned one execution in 4: off × (1 − ((i&3 + 3) >> 2)).
		b.Mov(guest.ESI, guest.EDI)
		b.ALUImm(guest.ANDri, guest.ESI, 3)
		b.ALUImm(guest.ADDri, guest.ESI, 3)
		b.ALUImm(guest.SHRri, guest.ESI, 2)
		b.ALUImm(guest.XORri, guest.ESI, 1)
		b.ALUImm(guest.IMULri, guest.ESI, off)
		b.ALU(guest.ADDrr, guest.EBX, guest.ESI)
	}
	// Four sites at 8-aligned displacements off the group pointer.
	kinds := []int{0, 1, 2, 3}
	for s, k := range kinds {
		disp := int32(8 + 8*s)
		m := guest.MemRef{Base: guest.EBX, Disp: disp}
		if g.fp {
			switch k {
			case 0, 2:
				b.FLoad(guest.FReg(s%guest.NumFRegs), m)
			case 1:
				b.FStore(m, guest.FReg(s%guest.NumFRegs))
			default:
				b.Load(guest.LD4, guest.EAX, m)
			}
		} else {
			switch k {
			case 0:
				b.Load(guest.LD4, guest.EAX, m)
			case 1:
				b.Store(guest.ST4, m, guest.EAX)
			case 2:
				b.Load(guest.LD2Z, guest.EDX, m)
			default:
				b.Store(guest.ST2, m, guest.EDX)
			}
		}
	}
	if g.duty > 0 {
		b.Label(skip)
	}
}

// emit builds the main and library code images.
func (p *Program) emit(groups []group) error {
	spec := p.Spec
	off := int32(misOff)
	if p.aligned {
		off = 0
	}
	var lateGroups, earlyGroups []int
	for i, g := range groups {
		switch g.class {
		case classLate:
			lateGroups = append(lateGroups, i)
		case classEarly:
			earlyGroups = append(earlyGroups, i)
		}
	}

	// Library image first (its entry address is fixed).
	if p.LibGroups > 0 {
		lb := guest.NewBuilder()
		for i, g := range groups {
			if g.inLib {
				emitGroup(lb, g, i, off)
			}
		}
		lb.Ret()
		img, err := lb.Build(guest.SharedLib)
		if err != nil {
			return fmt.Errorf("workload %s: lib: %w", spec.Name, err)
		}
		p.Lib = img
	}

	b := guest.NewBuilder()
	b.MovImm(guest.EBP, guest.DataBase)
	b.MovImm(guest.EDI, 0)
	b.MovImm(guest.EAX, 0)
	b.MovImm(guest.EDX, 0)
	b.Jmp("loop")

	b.Label("loop")
	if len(lateGroups) > 0 {
		flipAt := int32(float64(p.Iterations) * (1 - spec.flipFraction()))
		if flipAt < earlyIter*2 {
			flipAt = earlyIter * 2 // keep the flip past the profiling window
		}
		b.CmpImm(guest.EDI, flipAt)
		b.Jcc(guest.E, "flipLate")
		b.Label("resumeLate")
	}
	if len(earlyGroups) > 0 {
		b.CmpImm(guest.EDI, earlyIter)
		b.Jcc(guest.E, "flipEarly")
		b.Label("resumeEarly")
	}

	// Aligned filler: R passes over fillerA aligned slots.
	b.MovImm(guest.ECX, 0)
	b.Label("fill")
	for k := 0; k < fillerA; k++ {
		m := guest.MemRef{Base: guest.EBP, Disp: int32(fillerOff + 8*k)}
		if spec.FPHeavy {
			if k%4 != 3 {
				b.FLoad(guest.FReg(k%guest.NumFRegs), m)
			} else {
				b.FStore(m, guest.FReg(k%guest.NumFRegs))
			}
			b.FAdd(guest.FReg(k%guest.NumFRegs), guest.FReg((k+1)%guest.NumFRegs))
			b.ALUImm(guest.ADDri, guest.EAX, 3)
		} else {
			if k%4 != 3 {
				b.Load(guest.LD4, guest.EAX, m)
			} else {
				b.Store(guest.ST4, m, guest.EAX)
			}
			// Two ALU ops per access keep the memory-op density at the
			// ~1-in-3 level typical of SPEC code.
			b.ALUImm(guest.ADDri, guest.EDX, 1)
			b.ALU(guest.XORrr, guest.EDX, guest.EAX)
		}
	}
	b.ALUImm(guest.ADDri, guest.ECX, 1)
	b.CmpImm(guest.ECX, int32(p.FillerReps))
	b.Jcc(guest.L, "fill")

	// MDA section, gated for rare-MDA benchmarks.
	if p.Gate > 1 {
		b.Mov(guest.ESI, guest.EDI)
		b.ALUImm(guest.ANDri, guest.ESI, int32(p.Gate-1))
		b.CmpImm(guest.ESI, 0)
		b.Jcc(guest.NE, "skipMDA")
	}
	for i, g := range groups {
		if !g.inLib {
			emitGroup(b, g, i, off)
		}
	}
	if p.LibGroups > 0 {
		b.CallAbs(guest.SharedLib)
	}
	if p.Gate > 1 {
		b.Label("skipMDA")
	}

	b.ALUImm(guest.ADDri, guest.EDI, 1)
	b.CmpImm(guest.EDI, int32(p.Iterations))
	b.Jcc(guest.L, "loop")
	b.Halt()

	// Flip blocks: bump the table pointers of onset groups.
	emitFlip := func(label, resume string, idxs []int) {
		b.Label(label)
		for _, gi := range idxs {
			b.Load(guest.LD4, guest.ESI, guest.MemRef{Base: guest.EBP, Disp: int32(4 * gi)})
			b.ALUImm(guest.ADDri, guest.ESI, off)
			b.Store(guest.ST4, guest.MemRef{Base: guest.EBP, Disp: int32(4 * gi)}, guest.ESI)
		}
		b.Jmp(resume)
	}
	if len(lateGroups) > 0 {
		emitFlip("flipLate", "resumeLate", lateGroups)
	}
	if len(earlyGroups) > 0 {
		emitFlip("flipEarly", "resumeEarly", earlyGroups)
	}

	img, err := b.Build(guest.CodeBase)
	if err != nil {
		return fmt.Errorf("workload %s: %w", spec.Name, err)
	}
	p.Main = img
	return nil
}

// buildData constructs the train and ref data images: the group pointer
// table plus patterned arenas.
func (p *Program) buildData(groups []group) {
	size := arenasOff + len(groups)*p.arena
	build := func(in Input) []byte {
		d := make([]byte, size)
		for i := range d {
			d[i] = byte(i*13 + 7)
		}
		for gi, g := range groups {
			arena := uint32(guest.DataBase + arenasOff + gi*p.arena)
			ptr := arena
			if !p.aligned {
				switch g.class {
				case classAlways:
					ptr += misOff
				case classTrain:
					if in == Ref {
						ptr += misOff
					}
				}
			}
			// classHalf/classRarely/classLate/classEarly start aligned; the
			// code (or the flip blocks) applies the offset.
			off := tableOff + 4*gi
			d[off] = byte(ptr)
			d[off+1] = byte(ptr >> 8)
			d[off+2] = byte(ptr >> 16)
			d[off+3] = byte(ptr >> 24)
		}
		return d
	}
	p.trainData = build(Train)
	p.refData = build(Ref)
}
