// Guest-fault workloads: generated programs that exercise the engine's
// guest-visible memory fault semantics (DESIGN.md §12) — page-straddling
// misaligned accesses against mixed page permissions, self-modifying guests
// that rewrite their own translated MDA sites, and multi-context sets run
// back-to-back on one engine via Engine.Reset.
//
// Unlike the SPEC models in gen.go these programs carry a page-protection
// plan and, for the fault-expected variants, the precise fault the run must
// end with: the faulting guest PC is unknown at generation time (it depends
// on nothing), but the faulting address, access size, and direction are
// fixed by construction, so cosim oracles can assert them against both the
// interpreter reference and every translated mechanism.
package workload

import (
	"fmt"

	"mdabt/internal/guest"
	"mdabt/internal/mem"
)

// ProtRegion is one entry of a program's page-protection plan.
type ProtRegion struct {
	Addr     uint64
	Size     uint64
	Prot     mem.Prot
	Unmapped bool // Unmap instead of Protect
}

// FaultProgram is a generated guest program with a page-protection plan.
type FaultProgram struct {
	Name string
	Main []byte // loaded at guest.CodeBase
	Data []byte // loaded at guest.DataBase (may be nil)
	Prot []ProtRegion

	Iterations int

	// ExpectFault declares that the run must end in a guest fault at
	// FaultAddr (FaultWrite tells stores from loads). The faulting guest PC
	// is program-dependent; oracles compare it between engine and reference
	// rather than against a constant.
	ExpectFault bool
	FaultAddr   uint64
	FaultWrite  bool
}

// Entry returns the program entry point.
func (p *FaultProgram) Entry() uint32 { return guest.CodeBase }

// Load places the code and data images into memory and applies the
// protection plan. Call after mem.Reset / Engine.Reset (both drop
// protections).
func (p *FaultProgram) Load(m *mem.Memory) {
	m.WriteBytes(guest.CodeBase, p.Main)
	if p.Data != nil {
		m.WriteBytes(guest.DataBase, p.Data)
	}
	for _, r := range p.Prot {
		if r.Unmapped {
			m.Unmap(r.Addr, r.Size)
		} else {
			m.Protect(r.Addr, r.Size, r.Prot)
		}
	}
}

// Data-image layout for the straddle programs (offsets from guest.DataBase).
// The hot straddle sits on the page-0/page-1 boundary (both pages stay rwx);
// the red page — the protection-restricted one — is page 3, so the fault
// probe straddles the page-2/page-3 boundary: two legal bytes, two
// restricted ones.
const (
	fsTableOff  = 0x00 // pointer cell the flip block rewrites
	fsFillerOff = 0x40 // aligned filler slots
	fsIters     = 400
	fsFlipAt    = fsIters - 5
)

// StraddleKind selects a page-straddling workload variant.
type StraddleKind int

// Straddle variants.
const (
	// StraddleOK keeps every touched page accessible: the flip moves the hot
	// pointer into the guard page after the red page, so translated stores
	// trap at the machine layer (guard bit) but pass CheckRange and complete
	// raw — the success-expected half of the mixed-permission matrix.
	StraddleOK StraddleKind = iota
	// StraddleStoreFault flips the pointer to straddle into a read-only
	// page: the load half succeeds, the store faults on its high bytes.
	StraddleStoreFault
	// StraddleLoadUnmapped flips the pointer to straddle into an unmapped
	// page: the load faults before the store is reached.
	StraddleLoadUnmapped
)

func (k StraddleKind) String() string {
	switch k {
	case StraddleOK:
		return "straddle-ok"
	case StraddleStoreFault:
		return "straddle-store-fault"
	default:
		return "straddle-load-unmapped"
	}
}

// GenerateStraddle builds a page-straddling MDA workload: a hot loop whose
// load/store pair straddles a page boundary through a table-held pointer,
// flipped near the end of the run toward the variant's target region. The
// hot site executes hundreds of times first, so every mechanism has
// translated (and, under EH/SPEH, patched) it before the flip lands.
func GenerateStraddle(kind StraddleKind) (*FaultProgram, error) {
	page := uint64(mem.PageSize)
	redPage := uint64(guest.DataBase) + 3*page
	hotPtr := uint32(uint64(guest.DataBase) + 1*page - 2)

	var flipPtr uint32
	p := &FaultProgram{Name: kind.String(), Iterations: fsIters}
	switch kind {
	case StraddleOK:
		// Misaligned but fully legal store inside the guard page (red+1):
		// machine-layer trap, guest-level pass.
		flipPtr = uint32(redPage + page + 2)
		p.Prot = []ProtRegion{{Addr: redPage, Size: page, Prot: mem.ProtRead}}
	case StraddleStoreFault:
		flipPtr = uint32(redPage - 2)
		p.Prot = []ProtRegion{{Addr: redPage, Size: page, Prot: mem.ProtRead}}
		p.ExpectFault = true
		p.FaultAddr = redPage
		p.FaultWrite = true
	case StraddleLoadUnmapped:
		flipPtr = uint32(redPage - 2)
		p.Prot = []ProtRegion{{Addr: redPage, Size: page, Unmapped: true}}
		p.ExpectFault = true
		p.FaultAddr = redPage
	default:
		return nil, fmt.Errorf("workload: unknown straddle kind %d", kind)
	}

	b := guest.NewBuilder()
	b.MovImm(guest.EBP, guest.DataBase)
	b.MovImm(guest.EDI, 0)
	b.MovImm(guest.EAX, 0)
	b.MovImm(guest.EDX, 0)
	b.Jmp("loop")

	b.Label("loop")
	b.CmpImm(guest.EDI, fsFlipAt)
	b.Jcc(guest.E, "flip")
	b.Label("resume")
	// A little aligned filler keeps the block from being all-MDA.
	b.Load(guest.LD4, guest.EAX, guest.MemRef{Base: guest.EBP, Disp: fsFillerOff})
	b.ALUImm(guest.ADDri, guest.EDX, 1)
	b.Store(guest.ST4, guest.MemRef{Base: guest.EBP, Disp: fsFillerOff + 8}, guest.EDX)
	// The hot straddling pair, through the table pointer.
	b.Load(guest.LD4, guest.EBX, guest.MemRef{Base: guest.EBP, Disp: fsTableOff})
	b.Load(guest.LD4, guest.ECX, guest.MemRef{Base: guest.EBX})
	b.ALU(guest.XORrr, guest.EAX, guest.ECX)
	b.Store(guest.ST4, guest.MemRef{Base: guest.EBX}, guest.ECX)
	b.ALUImm(guest.ADDri, guest.EDI, 1)
	b.CmpImm(guest.EDI, fsIters)
	b.Jcc(guest.L, "loop")
	b.Halt()

	b.Label("flip")
	b.MovImm(guest.ESI, int32(flipPtr))
	b.Store(guest.ST4, guest.MemRef{Base: guest.EBP, Disp: fsTableOff}, guest.ESI)
	b.Jmp("resume")

	img, err := b.Build(guest.CodeBase)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", p.Name, err)
	}
	p.Main = img
	p.Data = straddleData(hotPtr)
	return p, nil
}

// straddleData builds the straddle data image: the pointer cell plus two
// pages of patterned bytes (the hot straddle's pages).
func straddleData(hotPtr uint32) []byte {
	d := make([]byte, 2*mem.PageSize)
	for i := range d {
		d[i] = byte(i*11 + 3)
	}
	d[fsTableOff+0] = byte(hotPtr)
	d[fsTableOff+1] = byte(hotPtr >> 8)
	d[fsTableOff+2] = byte(hotPtr >> 16)
	d[fsTableOff+3] = byte(hotPtr >> 24)
	return d
}

// Self-modifying workload layout.
const (
	smStubOff = 0x1000 // stub offset within the code image
	smIters   = 300
	smFlipAt  = smIters / 2
)

// GenerateSelfModifying builds a guest that calls a small stub holding a
// misaligned load (an MDA site every mechanism translates, and EH/SPEH
// patch), then — halfway through the run — overwrites the stub's bytes in
// place with a variant reading a different misaligned address. The rewrite
// runs from translated code, so the engine's code-page write watch must
// catch it, invalidate the stale translation (and any patched stubs), and
// retranslate; a DBT that misses it keeps executing the old pointer and
// diverges from the interpreter reference.
func GenerateSelfModifying() (*FaultProgram, error) {
	stub := func(ptr int32) ([]byte, error) {
		sb := guest.NewBuilder()
		sb.MovImm(guest.EBX, ptr)
		sb.Load(guest.LD4, guest.ECX, guest.MemRef{Base: guest.EBX})
		sb.ALU(guest.XORrr, guest.EAX, guest.ECX)
		sb.Ret()
		return sb.Build(guest.CodeBase + smStubOff)
	}
	stubA, err := stub(guest.DataBase + fsFillerOff + 1)
	if err != nil {
		return nil, fmt.Errorf("workload smc: stub A: %w", err)
	}
	stubB, err := stub(guest.DataBase + fsFillerOff + 0x41)
	if err != nil {
		return nil, fmt.Errorf("workload smc: stub B: %w", err)
	}
	if len(stubA) != len(stubB) {
		return nil, fmt.Errorf("workload smc: stub variants differ in size (%d vs %d)", len(stubA), len(stubB))
	}

	b := guest.NewBuilder()
	b.MovImm(guest.EBP, guest.DataBase)
	b.MovImm(guest.EDI, 0)
	b.MovImm(guest.EAX, 0)
	b.Jmp("loop")

	b.Label("loop")
	b.CmpImm(guest.EDI, smFlipAt)
	b.Jcc(guest.E, "rewrite")
	b.Label("resume")
	b.CallAbs(guest.CodeBase + smStubOff)
	b.ALUImm(guest.ADDri, guest.EDI, 1)
	b.CmpImm(guest.EDI, smIters)
	b.Jcc(guest.L, "loop")
	b.Halt()

	// The rewrite block stores variant B over the stub, one dword at a time
	// (the tail chunk may spill past the RET into dead padding; both
	// variants share it, so the spill is behaviour-neutral).
	b.Label("rewrite")
	b.MovImm(guest.EBX, guest.CodeBase+smStubOff)
	padded := append([]byte{}, stubB...)
	for len(padded)%4 != 0 {
		padded = append(padded, 0)
	}
	for off := 0; off < len(padded); off += 4 {
		chunk := int32(uint32(padded[off]) | uint32(padded[off+1])<<8 |
			uint32(padded[off+2])<<16 | uint32(padded[off+3])<<24)
		b.MovImm(guest.ESI, chunk)
		b.Store(guest.ST4, guest.MemRef{Base: guest.EBX, Disp: int32(off)}, guest.ESI)
	}
	b.Jmp("resume")

	img, err := b.Build(guest.CodeBase)
	if err != nil {
		return nil, fmt.Errorf("workload smc: %w", err)
	}
	if len(img) > smStubOff {
		return nil, fmt.Errorf("workload smc: main image (%d bytes) reaches the stub at %#x", len(img), smStubOff)
	}
	full := make([]byte, smStubOff+len(stubA))
	copy(full, img)
	copy(full[smStubOff:], stubA)

	d := make([]byte, 0x100)
	for i := range d {
		d[i] = byte(i*7 + 1)
	}
	return &FaultProgram{
		Name:       "smc-rewrite",
		Main:       full,
		Data:       d,
		Iterations: smIters,
	}, nil
}

// FaultPrograms returns the full guest-fault workload set: the three
// straddle variants plus the self-modifying rewriter. The set doubles as
// the multi-context suite — run the programs back-to-back on one engine
// with Engine.Reset between them to exercise protection-table and
// watch-state teardown across guests.
func FaultPrograms() ([]*FaultProgram, error) {
	var out []*FaultProgram
	for _, k := range []StraddleKind{StraddleOK, StraddleStoreFault, StraddleLoadUnmapped} {
		p, err := GenerateStraddle(k)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	smc, err := GenerateSelfModifying()
	if err != nil {
		return nil, err
	}
	return append(out, smc), nil
}
