// Package workload generates synthetic guest programs whose misaligned-
// data-access behaviour reproduces the SPEC CPU2000/CPU2006 measurements
// the paper reports (DESIGN.md §2 documents the substitution).
//
// Each benchmark is modelled by a Spec carrying the paper's Table I
// numbers (NMI, MDA count, MDA ratio) plus behaviour fractions derived
// from Table III (MDAs invisible to dynamic profiling at threshold 50 —
// late-onset sites), Table IV (MDAs invisible to a train-input profile —
// input-dependent sites), and Figure 15 (the per-site misalignment-ratio
// class mix). The generator dials a guest program to those parameters,
// scaled down ~10^4–10^5 in dynamic instruction count.
package workload

// Suite labels the benchmark's origin.
type Suite string

// Benchmark suites.
const (
	Int2000 Suite = "CPU2000 INT"
	Fp2000  Suite = "CPU2000 FP"
	Int2006 Suite = "CPU2006 INT"
	Fp2006  Suite = "CPU2006 FP"
)

// Spec describes one benchmark model.
type Spec struct {
	Name  string
	Suite Suite

	// Paper Table I values (reported alongside our measurements).
	PaperNMI   int
	PaperMDAs  float64
	PaperRatio float64 // fraction, e.g. 0.0052 for 0.52%

	// Selected marks the 21 benchmarks with significant MDA counts used in
	// the paper's performance experiments (§V-C).
	Selected bool

	// Behaviour dials (fractions of MDA *volume*):
	//   LateFrac  — produced by sites that turn misaligned only late in the
	//               run (invisible to dynamic profiling; Table III
	//               behaviour).
	//   EarlyFrac — produced by sites misaligned only after ~30 block
	//               executions (visible at TH=50, missed at TH=10; the
	//               400.perlbench effect in Fig. 10).
	//   TrainMissFrac — produced by sites aligned under the train input but
	//               misaligned under ref (invisible to static profiling;
	//               Table IV behaviour).
	//
	// The dials are calibrated so the *performance* impact (Fig. 16's
	// normalized runtimes) matches the paper; the paper's raw Table III/IV
	// trap counts (PaperUndetectedDyn / PaperRemainTrain below) imply far
	// larger penalties than Fig. 16 shows under any constant trap cost, so
	// they are kept as report-only columns. See EXPERIMENTS.md.
	LateFrac      float64
	EarlyFrac     float64
	TrainMissFrac float64

	// Paper Table III (MDAs undetected by dynamic profiling, TH=50) and
	// Table IV (MDAs remaining with a train-input profile) raw counts,
	// reported alongside our measurements.
	PaperUndetectedDyn float64
	PaperRemainTrain   float64

	// Per-site misalignment-ratio class mix among MDA sites (Fig. 15):
	// fractions of sites that are always misaligned, mostly (>50%), half
	// (=50%), and rarely (<50%) misaligned. They need not sum to 1; the
	// remainder goes to the always class.
	FracMostly, FracHalf, FracRarely float64

	// FPHeavy selects quadword-dominated memory traffic (the FP suites,
	// whose MDAs are 8-byte x87/SSE accesses).
	FPHeavy bool

	// LibFrac places this fraction of MDA groups behind a call into a
	// separately loaded "shared library" image (paper §II observes >90% of
	// MDAs in gzip/perlbench/xalancbmk come from shared libraries).
	LibFrac float64

	// FlipFraction is the fraction of the run during which late-onset
	// sites are misaligned (the flip happens at Iterations×(1−FlipFraction);
	// 0 selects the default of 0.5). 483.xalancbmk and 410.bwaves flip
	// early: essentially their whole MDA volume postdates profiling
	// (Table III).
	FlipFraction float64

	// IterFloor overrides the generator's minimum iteration count (used by
	// tests and quick runs to shrink simulations; 0 selects the default).
	IterFloor int
}

// flipFraction returns the effective post-flip fraction of the run.
func (s Spec) flipFraction() float64 {
	if s.FlipFraction > 0 {
		return s.FlipFraction
	}
	return 0.5
}

// sel builds a selected-benchmark spec. late/early/trainMiss are the
// calibrated behaviour dials; pud/prt are the paper's raw Table III/IV
// counts.
func sel(name string, suite Suite, nmi int, mdas, ratio, late, early, trainMiss, pud, prt float64) Spec {
	return Spec{
		Name: name, Suite: suite, PaperNMI: nmi, PaperMDAs: mdas,
		PaperRatio: ratio, Selected: true,
		LateFrac: late, EarlyFrac: early, TrainMissFrac: trainMiss,
		PaperUndetectedDyn: pud, PaperRemainTrain: prt,
		FracMostly: 0.10, FracHalf: 0.03, FracRarely: 0.05,
		FPHeavy: suite == Fp2000 || suite == Fp2006,
	}
}

// bg builds a background (census-only) spec.
func bg(name string, suite Suite, nmi int, mdas, ratio float64) Spec {
	return Spec{
		Name: name, Suite: suite, PaperNMI: nmi, PaperMDAs: mdas,
		PaperRatio: ratio,
		FracMostly: 0.10, FracHalf: 0.03, FracRarely: 0.05,
		FPHeavy: suite == Fp2000 || suite == Fp2006,
	}
}

// Specs returns the 54 SPEC CPU2000/CPU2006 benchmark models of Table I, in
// the paper's order. Behaviour fractions of the 21 selected benchmarks are
// derived from Tables III/IV as documented on each entry.
func Specs() []Spec {
	specs := []Spec{
		// --- CPU2000 integer ---
		// Table III: 1.56E+08 of 4.06E+08 MDAs undetected at TH=50 (38%);
		// Table IV: 46 remaining with train profile (≈0). §II: >90% of its
		// MDAs come from shared libraries.
		sel("164.gzip", Int2000, 80, 4.06431686e8, 0.0052, 0.052, 0, 0, 1.56e8, 46),
		bg("175.vpr", Int2000, 134, 2.762730e6, 0.0001),
		bg("176.gcc", Int2000, 154, 3.7894632e7, 0.0006),
		bg("181.mcf", Int2000, 16, 1.649912e6, 0.0002),
		bg("186.crafty", Int2000, 20, 4.950e3, 0),
		bg("197.parser", Int2000, 16, 2.91054e5, 0),
		// Table IV: 3.22E+09 of 8.52E+09 undetected by train profile (38%)
		// — the +91% static-profiling outlier of Fig. 16.
		sel("252.eon", Int2000, 3096, 8.523707162e9, 0.0963, 0, 0, 0.022, 24630, 3.22e9),
		bg("253.perlbmk", Int2000, 270, 1.4868982e8, 0.0023),
		bg("254.gap", Int2000, 14, 1.128048e6, 0),
		bg("255.vortex", Int2000, 90, 1.236195e7, 0.0003),
		bg("256.bzip2", Int2000, 44, 2.5233188e7, 0.0004),
		bg("300.twolf", Int2000, 98, 4.41176894e8, 0.0092),
		// --- CPU2000 FP ---
		bg("168.wupwise", Fp2000, 132, 9.682e3, 0),
		bg("171.swim", Fp2000, 284, 4.9605944e7, 0.0003),
		bg("172.mgrid", Fp2000, 78, 1.772430e6, 0),
		bg("173.applu", Fp2000, 306, 2.243041896e9, 0.016),
		bg("177.mesa", Fp2000, 54, 9.370e3, 0),
		// Table IV: 4.93E+06 remaining (1%).
		sel("178.galgel", Fp2000, 5282, 4.92949052e8, 0.0027, 0, 0, 0.01, 3436, 4.930086e6),
		// Table III: 3.12E+08 (1.5%); Table IV: 3.6E+09 (17%) — the +13%
		// static outlier.
		sel("179.art", Fp2000, 1024, 2.1244446764e10, 0.3833, 0.001, 0, 0.0012, 3.12e8, 3.6e9),
		bg("183.equake", Fp2000, 30, 5.24e2, 0),
		bg("187.facerec", Fp2000, 112, 6.240872e6, 0.0001),
		// Tables III/IV: 0 — both profilers catch everything.
		sel("188.ammp", Fp2000, 1134, 7.319495302e10, 0.4312, 0, 0, 0, 0, 0),
		bg("189.lucas", Fp2000, 64, 1.738328e7, 0.0002),
		bg("191.fma3d", Fp2000, 398, 5.383029436e9, 0.0336),
		sel("200.sixtrack", Fp2000, 1324, 8.673947498e9, 0.0421, 0, 0, 0, 235950, 0),
		bg("301.apsi", Fp2000, 356, 1.568299486e9, 0.0086),
		// --- CPU2006 integer ---
		// Fig. 10: "definitely needs a threshold greater than 10" — early-
		// onset sites; Table III: 5.79E+07 (3.9%) still undetected at 50.
		sel("400.perlbench", Int2006, 77, 1.469188415e9, 0.0026, 0.03, 0.30, 0.001, 5.787464e7, 1.244769e6),
		bg("401.bzip2", Int2006, 45, 8.2641256e7, 0.0001),
		bg("403.gcc", Int2006, 53, 3.2624e4, 0),
		bg("429.mcf", Int2006, 10, 8.83518e5, 0),
		bg("445.gobmk", Int2006, 76, 1.741956e6, 0),
		bg("456.hmmer", Int2006, 127, 1.3757509e7, 0),
		bg("458.sjeng", Int2006, 9, 1.303e3, 0),
		bg("462.libquantum", Int2006, 9, 4.35e2, 0),
		// Fig. 11: largest code-rearrangement winner (+11%).
		sel("464.h264ref", Int2006, 96, 1.38883221e8, 0.0001, 0, 0, 0, 9347, 1020),
		sel("471.omnetpp", Int2006, 394, 6.303605195e9, 0.0337, 0, 0, 0.004, 38979, 4.8638638e7),
		bg("473.astar", Int2006, 32, 7.58e2, 0),
		// Table III: 8.32E+09 undetected — essentially all of its MDA
		// volume appears after profiling; the +340% dynamic-profiling
		// outlier of Fig. 16.
		func() Spec {
			s := sel("483.xalancbmk", Int2006, 53, 5.749815279e9, 0.016, 0.95, 0, 0, 8.32e9, 12761)
			s.FlipFraction = 0.9
			return s
		}(),
		// --- CPU2006 FP ---
		// Table III: 4.15E+10 of 9.99E+10 undetected (42%) — the +433%
		// dynamic-profiling outlier.
		func() Spec {
			s := sel("410.bwaves", Fp2006, 602, 9.9916961773e10, 0.1267, 0.135, 0, 0, 4.15e10, 0)
			s.FlipFraction = 0.7
			return s
		}(),
		bg("416.gamess", Fp2006, 424, 1.30737e7, 0),
		// Table III: 1.34E+08 (0.2%) — small fraction, large absolute
		// count: the +15% dynamic outlier.
		sel("433.milc", Fp2006, 3825, 6.7272361837e10, 0.1209, 0.003, 0, 0, 1.34e8, 6),
		sel("434.zeusmp", Fp2006, 3484, 8.7873451026e10, 0.0414, 0, 0, 0, 1716, 644100),
		sel("435.gromacs", Fp2006, 197, 1.23577765e8, 0.0001, 0, 0, 0, 1820, 0),
		bg("436.cactusADM", Fp2006, 48, 1.745161e6, 0),
		sel("437.leslie3d", Fp2006, 205, 2.3645192624e10, 0.0254, 0, 0, 0, 1716, 21168),
		bg("444.namd", Fp2006, 103, 1.0516106e7, 0),
		// Table III: 9.33E+08 (6.9%); Table IV: 4.03E+09 (30%) — the +155%
		// static outlier.
		sel("450.soplex", Fp2006, 538, 1.3446836143e10, 0.0571, 0.003, 0, 0.073, 9.33e8, 4.03e9),
		// Table III: 2.41E+08 (0.66%) — the +9% dynamic outlier.
		sel("453.povray", Fp2006, 918, 3.6294822277e10, 0.083, 0.0042, 0, 0, 2.41e8, 0),
		// Table IV: 1.83E+08 of 4.79E+08 (38%).
		sel("454.calculix", Fp2006, 139, 4.78592675e8, 0.0002, 0, 0, 0.12, 2609, 1.83e8),
		bg("459.GemsFDTD", Fp2006, 3304, 3.1740862e7, 0),
		sel("465.tonto", Fp2006, 1748, 3.8717125228e10, 0.038, 0, 0, 0, 116450, 262),
		sel("470.lbm", Fp2006, 8, 7.124766678e9, 0.0114, 0, 0, 0, 0, 0),
		bg("481.wrf", Fp2006, 92, 4.9694156e7, 0),
		sel("482.sphinx3", Fp2006, 115, 3.118790131e9, 0.0031, 0, 0, 0, 1, 0),
	}
	// Shared-library MDA placement (§II): gzip, perlbench, xalancbmk.
	for i := range specs {
		switch specs[i].Name {
		case "164.gzip", "400.perlbench", "483.xalancbmk":
			specs[i].LibFrac = 0.9
		}
	}
	// Warm-up behaviour: most long-running benchmarks have a few sites
	// whose addresses settle only after initialization (~30 block
	// executions). They separate TH=10 from TH=50 in Fig. 10: a threshold
	// of 10 stops profiling before these sites misalign.
	for i := range specs {
		if specs[i].Selected && specs[i].EarlyFrac == 0 {
			switch specs[i].Name {
			case "164.gzip", "483.xalancbmk": // already late-onset dominated
			default:
				specs[i].EarlyFrac = 0.015
			}
		}
	}
	// Multi-version beneficiaries: give a handful of benchmarks a larger
	// sometimes-aligned site population (Fig. 14 shows up to 4.7% gains).
	for i := range specs {
		switch specs[i].Name {
		case "471.omnetpp", "464.h264ref", "433.milc", "482.sphinx3":
			specs[i].FracRarely = 0.20
			specs[i].FracHalf = 0.08
		}
	}
	return specs
}

// SpecByName returns the named benchmark model.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// SelectedSpecs returns the 21 benchmarks used in the performance
// experiments, in Table I order.
func SelectedSpecs() []Spec {
	var out []Spec
	for _, s := range Specs() {
		if s.Selected {
			out = append(out, s)
		}
	}
	return out
}
