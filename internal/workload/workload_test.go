package workload

import (
	"testing"

	"mdabt/internal/core"
	"mdabt/internal/guest"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
)

func census(t *testing.T, p *Program, in Input) *core.Census {
	t.Helper()
	m := mem.New()
	p.Load(m, in)
	c, err := core.RunCensus(m, p.Entry(), 100_000_000)
	if err != nil {
		t.Fatalf("%s census: %v", p.Spec.Name, err)
	}
	if !c.Halted {
		t.Fatalf("%s census did not halt", p.Spec.Name)
	}
	return c
}

func TestSpecsTableComplete(t *testing.T) {
	specs := Specs()
	if len(specs) != 54 {
		t.Fatalf("got %d specs, want 54 (Table I)", len(specs))
	}
	sel := SelectedSpecs()
	if len(sel) != 21 {
		t.Fatalf("got %d selected, want 21 (paper §V-C)", len(sel))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate spec %s", s.Name)
		}
		seen[s.Name] = true
		if s.PaperNMI <= 0 {
			t.Errorf("%s: missing NMI", s.Name)
		}
	}
	if _, ok := SpecByName("410.bwaves"); !ok {
		t.Error("SpecByName(410.bwaves) failed")
	}
	if _, ok := SpecByName("nonesuch"); ok {
		t.Error("SpecByName(nonesuch) succeeded")
	}
}

func TestGenerateAllSpecs(t *testing.T) {
	for _, spec := range Specs() {
		if _, err := Generate(spec); err != nil {
			t.Errorf("Generate(%s): %v", spec.Name, err)
		}
	}
}

// shrink reduces a spec's run length for fast unit tests by regenerating
// with a lighter paper-MDA target.
func shrink(t *testing.T, name string) *Program {
	t.Helper()
	spec, ok := SpecByName(name)
	if !ok {
		t.Fatalf("no spec %s", name)
	}
	spec.PaperMDAs /= 50
	p, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCensusRatioTracksSpec(t *testing.T) {
	// For benchmarks whose filler volume was not budget-clamped, the
	// census MDA ratio should land near the paper's Table I ratio.
	for _, name := range []string{"188.ammp", "179.art", "410.bwaves", "471.omnetpp"} {
		p := shrink(t, name)
		c := census(t, p, Ref)
		want := p.Spec.PaperRatio
		got := c.Ratio()
		if got < want/3 || got > want*3 {
			t.Errorf("%s: census ratio %.4f, want within 3x of %.4f", name, got, want)
		}
		if c.NMI() == 0 {
			t.Errorf("%s: no MDA sites seen", name)
		}
	}
}

func TestTrainRefDiverge(t *testing.T) {
	// 252.eon: 38% of ref MDA volume comes from sites aligned under train.
	p := shrink(t, "252.eon")
	train := census(t, p, Train)
	ref := census(t, p, Ref)
	if train.NMI() >= ref.NMI() {
		t.Errorf("train NMI %d not below ref NMI %d", train.NMI(), ref.NMI())
	}
	gap := 1 - float64(train.MDAs)/float64(ref.MDAs)
	spec := p.Spec
	if gap < spec.TrainMissFrac/3 || gap > spec.TrainMissFrac*3 {
		t.Errorf("train/ref MDA gap %.3f not near the dialed TrainMissFrac %.3f", gap, spec.TrainMissFrac)
	}
	// A no-train-divergence benchmark stays stable across inputs.
	p2 := shrink(t, "188.ammp")
	tr2, rf2 := census(t, p2, Train), census(t, p2, Ref)
	if tr2.NMI() != rf2.NMI() {
		t.Errorf("ammp NMI differs across inputs: %d vs %d", tr2.NMI(), rf2.NMI())
	}
}

func TestRatioClassesMatchSpec(t *testing.T) {
	// omnetpp has an enlarged sometimes-aligned population (Fig. 15).
	p := shrink(t, "471.omnetpp")
	c := census(t, p, Ref)
	lt, eq, gt, always := c.RatioClasses()
	if always == 0 || gt == 0 || lt == 0 || eq == 0 {
		t.Errorf("expected all four ratio classes populated, got %d/%d/%d/%d", lt, eq, gt, always)
	}
	total := lt + eq + gt + always
	if frac := float64(always) / float64(total); frac < 0.3 {
		t.Errorf("always-misaligned fraction %.2f, want dominant", frac)
	}
}

func TestSharedLibraryMDAs(t *testing.T) {
	// gzip places ~90% of its MDA sites behind the shared-library call.
	p := shrink(t, "164.gzip")
	if p.Lib == nil || p.LibGroups == 0 {
		t.Fatal("gzip workload has no library image")
	}
	c := census(t, p, Ref)
	var libMDAs, mainMDAs uint64
	for pc, s := range c.Sites {
		if s.MDA == 0 {
			continue
		}
		if pc >= guest.SharedLib {
			libMDAs += s.MDA
		} else {
			mainMDAs += s.MDA
		}
	}
	if libMDAs == 0 {
		t.Fatal("no MDAs from the library region")
	}
	if frac := float64(libMDAs) / float64(libMDAs+mainMDAs); frac < 0.7 {
		t.Errorf("library MDA fraction %.2f, want >0.7 (paper §II: >90%%)", frac)
	}
}

func TestLateOnsetInvisibleToProfiling(t *testing.T) {
	// 483.xalancbmk's MDA volume appears after the profiling phase: the
	// dynamic-profiling mechanism keeps trapping (Table III behaviour).
	p := shrink(t, "483.xalancbmk")
	m := mem.New()
	p.Load(m, Ref)
	mach := machine.New(m, machine.DefaultParams())
	opt := core.DefaultOptions(core.DynamicProfile)
	e := core.NewEngine(m, mach, opt)
	if err := e.Run(p.Entry(), 2_000_000_000); err != nil {
		t.Fatal(err)
	}
	traps := mach.Counters().MisalignTraps
	c := census(t, p, Ref)
	if float64(traps) < 0.5*float64(c.MDAs)*p.Spec.LateFrac {
		t.Errorf("traps %d too low for late fraction %.2f of %d MDAs",
			traps, p.Spec.LateFrac, c.MDAs)
	}
}

func TestWorkloadCosim(t *testing.T) {
	// A generated benchmark must behave identically under the reference
	// interpreter and the DBT (EH and DPEH configurations).
	p := shrink(t, "450.soplex")
	ref := census(t, p, Ref)
	for _, mech := range []core.Mechanism{core.ExceptionHandling, core.DPEH} {
		m := mem.New()
		p.Load(m, Ref)
		mach := machine.New(m, machine.DefaultParams())
		e := core.NewEngine(m, mach, core.DefaultOptions(mech))
		if err := e.Run(p.Entry(), 2_000_000_000); err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		got := e.FinalCPU()
		for r := guest.Reg(0); r < guest.NumRegs; r++ {
			if got.R[r] != ref.FinalCPU.R[r] {
				t.Errorf("%v: %v = %#x, want %#x", mech, r, got.R[r], ref.FinalCPU.R[r])
			}
		}
	}
}

func TestInputString(t *testing.T) {
	if Train.String() != "train" || Ref.String() != "ref" {
		t.Error("Input.String wrong")
	}
}

func TestGateForRareBenchmarks(t *testing.T) {
	p, err := Generate(mustSpec(t, "458.sjeng")) // ratio 0.00%
	if err != nil {
		t.Fatal(err)
	}
	if p.Gate != 64 {
		t.Errorf("sjeng gate = %d, want 64", p.Gate)
	}
	c := census(t, p, Ref)
	if c.Ratio() > 0.001 {
		t.Errorf("sjeng census ratio %.5f, want ≈0", c.Ratio())
	}
}

func mustSpec(t *testing.T, name string) Spec {
	t.Helper()
	s, ok := SpecByName(name)
	if !ok {
		t.Fatalf("no spec %s", name)
	}
	return s
}

func TestGenerateDeterministic(t *testing.T) {
	spec := mustSpec(t, "450.soplex")
	p1, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(p1.Main) != string(p2.Main) {
		t.Error("Main image differs between generations")
	}
	if string(p1.trainData) != string(p2.trainData) || string(p1.refData) != string(p2.refData) {
		t.Error("data images differ between generations")
	}
	if p1.Iterations != p2.Iterations || p1.FillerReps != p2.FillerReps {
		t.Error("derived parameters differ")
	}
}

func TestAlignedVariantHasNoMDAs(t *testing.T) {
	for _, name := range []string{"188.ammp", "164.gzip", "483.xalancbmk"} {
		spec := mustSpec(t, name)
		spec.PaperMDAs /= 100
		p, err := GenerateAligned(spec, 96)
		if err != nil {
			t.Fatal(err)
		}
		c := census(t, p, Ref)
		if c.MDAs != 0 {
			t.Errorf("%s aligned variant produced %d MDAs", name, c.MDAs)
		}
		// Same instruction stream shape as the default variant: equal
		// iteration/filler parameters mean comparable work.
		d, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		if p.Iterations != d.Iterations || p.FillerReps != d.FillerReps {
			t.Errorf("%s aligned variant parameters diverge: %d/%d vs %d/%d",
				name, p.Iterations, p.FillerReps, d.Iterations, d.FillerReps)
		}
		if len(p.Main) != len(d.Main) {
			t.Errorf("%s aligned variant code size %d != default %d", name, len(p.Main), len(d.Main))
		}
	}
}

func TestEarlyOnsetSeparatesThresholds(t *testing.T) {
	// 400.perlbench's early-onset sites misalign from iteration ~30: a
	// TH=10 dynamic profile misses them, TH=50 catches them.
	spec := mustSpec(t, "400.perlbench")
	spec.PaperMDAs /= 50
	p, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	traps := func(th uint64) uint64 {
		m := mem.New()
		p.Load(m, Ref)
		mach := machine.New(m, machine.DefaultParams())
		opt := core.DefaultOptions(core.DynamicProfile)
		opt.HeatThreshold = th
		e := core.NewEngine(m, mach, opt)
		if err := e.Run(p.Entry(), 4_000_000_000); err != nil {
			t.Fatal(err)
		}
		return mach.Counters().MisalignTraps
	}
	t10, t50 := traps(10), traps(50)
	if t50*5 > t10 {
		t.Errorf("TH=50 traps %d not well below TH=10 traps %d", t50, t10)
	}
}

func TestBenchmarkSuiteLabels(t *testing.T) {
	counts := map[Suite]int{}
	for _, s := range Specs() {
		counts[s.Suite]++
	}
	if counts[Int2000] != 12 || counts[Fp2000] != 14 || counts[Int2006] != 12 || counts[Fp2006] != 16 {
		t.Fatalf("suite sizes %v, want 12/14/12/16 (Table I)", counts)
	}
}
