package machine

// The IR-less trace execution tier. A trace is a pre-decoded, pre-resolved
// copy of a span of host code: every instruction is lowered at build time
// to a traceStep whose operands are raw pointers into the register file,
// whose successors are direct step pointers (threaded code — no PC
// arithmetic, no bounds-checked indexing on the hot path), and whose
// displacement/line-crossing bookkeeping is precomputed. Each opcode is
// specialized to its own stepKind so the executor (execTrace) retires one
// host instruction per single indirect branch — no format dispatch, no
// second opcode switch, no operand decoding — and follows branches between
// traces through memoized chain links: the inner loop never returns to the
// BT dispatcher until it executes a BRKBT.
//
// The tier is simulation-invisible by construction: every cycle, counter,
// cache access, and trap the generic loop (runLoop) would charge is
// charged identically here. Two accounting transformations are applied,
// both provably neutral:
//
//   - Cycles are tracked as a delta above the 1-cycle/instruction
//     baseline ("extra"), materialized as insts-delta + extra on exit.
//     The dual-issue pairing credit becomes extra-- and may wrap; the sum
//     is computed mod 2^64 either way.
//   - Consecutive data accesses to the same L1D line skip the hierarchy
//     probe. The skipped probe is a guaranteed L1 hit (the prior access
//     left the line resident and most-recently-used in its set), so it
//     would charge 0 cycles and touch no L2/memory state; skipping the
//     LRU re-stamp of a way that already holds its set's maximum stamp
//     cannot change any future victim choice (victims are chosen by
//     minimum stamp, compared only within a set), so every subsequent
//     hit/miss — and therefore every simulated cycle — is unchanged.
//     Only the cache-internal access counter diverges, and nothing
//     outside internal/cache consumes it.
//
// The golden equivalence matrix pins this down — a trace-enabled
// configuration must fingerprint-identical to its untraced counterpart.
// Trace-tier telemetry therefore lives in the separate TraceStats struct,
// never in Counters.
//
// Coherence: WriteCode/Patch invalidate overlapping traces (and sever
// chain links into them) through the same invalidate() path that drops
// decoded I-lines; IMB and Reset drop every trace. A machine with a fault
// plan installed falls back to the generic loop wholesale so the
// injection stream is untouched (see Run).

import (
	"encoding/binary"
	"fmt"
	"sort"

	"mdabt/internal/host"
	"mdabt/internal/mem"
)

// TraceStats counts trace-tier activity. The tier never perturbs the
// simulated Counters, so its telemetry is kept apart from them: these
// numbers may differ between bit-identical runs (e.g. across an
// Engine.Reset) and must never enter an equivalence fingerprint.
type TraceStats struct {
	Formed        uint64 // traces built
	ChainFollows  uint64 // direct trace-to-trace transfers (no dispatch)
	Invalidations uint64 // traces dropped by patching, IMB, or Reset
	TracedInsts   uint64 // host instructions retired by the trace executor
}

// stepKind is a fully-specialized opcode: the executor's single switch
// maps each kind straight to its semantics, so one indirect branch retires
// one instruction. stepAluX/stepBccX are generic fallbacks (host.EvalOp /
// host.BranchTaken) for any operate/branch op without its own kind.
type stepKind uint8

const (
	stepExitFall stepKind = iota // synthetic end-of-trace fallthrough; retires nothing
	stepBrk
	stepBr  // BR/BSR: unconditional, writes Ra
	stepJmp // JMP/JSR/RET: dynamic target

	// Conditional branches, one kind per predicate.
	stepBeq
	stepBne
	stepBlt
	stepBle
	stepBgt
	stepBge
	stepBlbc
	stepBlbs
	stepBccX

	// Memory, one kind per size/direction (LDA/LDAH fold into the ALU tail).
	stepLd1  // LDBU: zero-extend, never misaligns
	stepLd2  // LDWU
	stepLd4  // LDL: sign-extends
	stepLd8  // LDQ
	stepLdqu // LDQ_U: access at ea &^ 7, never misaligns
	stepSt1  // STB
	stepSt2  // STW
	stepSt4  // STL
	stepSt8  // STQ
	stepStqu // STQ_U

	stepMull
	stepMulq

	// MDA mega-steps (fuseMegaLd/fuseMegaSt): one dispatch for the whole
	// misalignment-safe load/store expansion the translator emits. They
	// sit in the memory block (non-branching, not operate-format) and
	// always execute in the outer loop; fused runs break around them.
	stepMisLd // ldq_u lo; ldq_u hi; lda; extXl; extXh; bis [; addl sext]
	stepMisSt // lda; ldq_u hi; ldq_u lo; insXh; insXl; mskXh; mskXl; bis; bis; stq_u hi; stq_u lo

	// Operate format: each case computes v and falls through to the shared
	// write-back/dual-issue tail.
	stepLda // LDA/LDAH: v = Rb + disp (disp pre-scaled for LDAH)
	stepAddl
	stepSubl
	stepAddq
	stepSubq
	stepCmpeq
	stepCmplt
	stepCmple
	stepCmpult
	stepCmpule
	stepAnd
	stepBic
	stepBis
	stepOrnot
	stepXor
	stepEqv
	stepSll
	stepSrl
	stepSra
	stepExtbl
	stepExtwl
	stepExtll
	stepExtql
	stepExtwh
	stepExtlh
	stepExtqh
	stepInsbl
	stepInswl
	stepInsll
	stepInsql
	stepInswh
	stepInslh
	stepInsqh
	stepMskbl
	stepMskwl
	stepMskll
	stepMskql
	stepMskwh
	stepMsklh
	stepMskqh
	stepAluX

	// Super-steps: build-time fusions (combineSteps) of the adjacent ALU
	// idioms misaligned-access expansions emit. n holds the constituent
	// instruction count; extra operands/destinations live in a2Ptr/b2Ptr/
	// w2Ptr/w3Ptr. All are pure operate-format work, so they sort above
	// stepLda and inherit the fused-run/stretch predicates.
	stepExtMergeL // extll t1; extlh t2; bis t1|t2 (misaligned-load merge)
	stepExtMergeW // extwl t1; extwh t2; bis t1|t2
	stepInsPairL  // inslh t; insll d (store-merge insert halves)
	stepInsPairW  // inswh t; inswl d
	stepMskPairL  // msklh t; mskll d (store-merge mask halves)
	stepMskPairW  // mskwh t; mskwl d
	stepBisPair   // two independent bis ops
)

// traceStep is one pre-resolved host instruction. Field order is
// deliberate: the first cache line holds everything the ALU and memory
// fast paths touch (successor/taken pointers, operand pointers,
// displacement, line ID, kind/flag bytes); chain links and trap-path data
// live in the second line. aPtr/bPtr/wPtr are always non-nil (unused
// sources read the pinned zero word, unused destinations hit the discard
// sink) so the executor loads operands unconditionally, without nil
// checks.
// megaAux carries the operands of an MDA mega-step that do not fit the
// traceStep pointer slots, plus the decoded constituent instructions
// needed for precise fault delivery at interior PCs.
type megaAux struct {
	hiT, loT     *uint64   // store: ldq_u destinations (high, low quadword)
	mskHw, mskLw *uint64   // store: mask destinations
	hiS, loS     *uint64   // store: merged store sources (bis destinations)
	instLdHi     host.Inst // ldq_u high (load k=1, store k=1)
	instLdLo     host.Inst // store: ldq_u low (k=2)
	instStHi     host.Inst // store: stq_u high (k=9)
	instStLo     host.Inst // store: stq_u low (k=10)
	crossK       int8      // constituent index entering a new I-line; -1 none
	sext         bool      // load: trailing addl sign-extension folded (n=7)
}

type traceStep struct {
	next  *traceStep // fallthrough successor (the synthetic exit at the end)
	taken *traceStep // in-trace branch target; nil = side exit
	aPtr  *uint64    // Ra as a source (stores, branch conditions, ALU av)
	bPtr  *uint64    // Rb as a source; for literal operate forms points at lit
	wPtr  *uint64    // destination register (or the discard sink for R31)
	a2Ptr *uint64    // super-step second-op A source
	b2Ptr *uint64    // super-step second-op B source (BisPair)
	w2Ptr *uint64    // super-step first-op destination
	w3Ptr *uint64    // super-step second-op destination (ExtMerge)

	disp   uint64 // pre-sign-extended displacement (LDAH: pre-shifted)
	lineID uint64

	kind   stepKind
	op     host.Op // kept for the generic fallbacks and diagnostics
	uncond bool    // BR with Ra==R31: foldable fetch redirect
	litB   bool    // operate literal form: bPtr is fixed up to &lit
	run    uint16  // fused-run length: consecutive non-branching steps
	//               from here on the same I-line (see execTrace)
	aluRun uint16 // pure operate-format prefix of run: closed-form dual-issue
	n      uint16 // constituent host instructions (super-steps fuse 2-3; else 1)

	pc     uint64
	exitPC uint64 // side-exit / fallthrough target host PC

	// Memoized side-exit resolution: link points at the target step of a
	// live trace (linkTr), nil when unresolved. linkVer caches the trace-
	// table version of the last failed probe so steady-state exits into
	// untraced code cost one comparison, not a map probe.
	link    *traceStep
	linkTr  *trace
	linkVer uint64

	aux *megaAux // mega-step overflow operands; nil for every other kind

	takenIdx int32  // step index of taken (kept for diagnostics/lint)
	idx      uint32 // own index in the trace's steps slice (fused-run cursor)
	payload  uint32 // BRKBT service payload
	lit      uint64 // operate-format literal backing store for bPtr
	inst     host.Inst
}

// trace is one built trace: a contiguous pre-decoded span of host code.
type trace struct {
	id         uint64
	start, end uint64
	steps      []traceStep
	// incoming lists steps of other traces whose chain link targets this
	// trace, so invalidation can sever them. A severed entry may belong to
	// an already-dropped trace; nil-ing its link is then harmless.
	incoming []*traceStep
}

// traceEntry is the PC-lookup-table value: every step PC of every live
// trace maps to its (trace, step) pair, so traces are enterable mid-body
// (e.g. on the return branch of an out-of-line MDA stub).
type traceEntry struct {
	tr  *trace
	idx int32
}

// maxTraceSteps bounds one trace (defensive; translated units are far
// smaller).
const maxTraceSteps = 4096

// noLineID is the "no current decoded line" sentinel used by the
// executor; real line IDs are PC>>6 and can never reach it.
const noLineID = ^uint64(0)

// EnableTraces switches the trace tier on or off. Disabling drops every
// trace. The tier stays dormant (Run uses the generic loop) while a
// fault-injection plan is installed even when enabled.
func (m *Machine) EnableTraces(on bool) {
	if !on {
		m.traces, m.traceList = nil, nil
		m.traceLo, m.traceHi = ^uint64(0), 0
		return
	}
	if m.traces == nil {
		m.traces = make(map[uint64]traceEntry)
		m.traceList = make(map[uint64]*trace)
		m.traceLo, m.traceHi = ^uint64(0), 0
		m.traceVer = 1
	}
}

// TracesEnabled reports whether the trace tier is on.
func (m *Machine) TracesEnabled() bool { return m.traces != nil }

// HasTrace reports whether pc is covered by a live trace.
func (m *Machine) HasTrace(pc uint64) bool {
	_, ok := m.traces[pc]
	return ok
}

// TraceStats returns a copy of the trace-tier telemetry.
func (m *Machine) TraceStats() TraceStats { return m.tstats }

// combineSteps fuses adjacent ALU instructions forming the fixed idioms
// of misaligned-access expansions — extract-merge triples and insert/
// mask/or pair halves — into single multi-instruction super-steps, so
// the executor dispatches once for work the MDA-heavy code this
// simulator models always emits together. Fusion is architecturally
// exact: every constituent destination is still written, in program
// order, and the operand-aliasing guards in fuseAt skip any wiring
// where a later constituent reads a register an earlier one wrote.
// Super-steps never span I-lines (fused-run fetch accounting is per
// line) and never cover an intra-trace branch target (interior PCs stop
// being enterable; external entries at interior PCs simply miss the
// trace LUT and run generically). Returns the compacted step count.
func (m *Machine) combineSteps(steps []traceStep, n int) int {
	isTarget := make([]bool, n+1)
	for i := 0; i < n; i++ {
		if t := steps[i].takenIdx; t >= 0 {
			isTarget[t] = true
		}
	}
	oldToNew := make([]int32, n+1)
	w := 0
	for i := 0; i < n; {
		k := m.fuseMegaLd(steps, i, n, isTarget)
		if k == 0 {
			k = m.fuseMegaSt(steps, i, n, isTarget)
		}
		if k == 0 {
			k = fuseAt(steps, i, n, isTarget)
		}
		for j := 0; j < k; j++ {
			oldToNew[i+j] = int32(w)
		}
		steps[w] = steps[i]
		i += k
		w++
	}
	oldToNew[n] = int32(w)
	for i := 0; i < w; i++ {
		if steps[i].takenIdx >= 0 {
			steps[i].takenIdx = oldToNew[steps[i].takenIdx]
		}
	}
	return w
}

// megaCrossK returns the lowest constituent index in [1, n) whose PC
// falls on a different I-line than the idiom head, or -1 when the whole
// idiom fits one line. The executor charges the I-fetch for the second
// line exactly when execution passes that constituent, preserving the
// probe order (and thus shared-L2 state) of unfused execution.
func megaCrossK(pc uint64, lineID uint64, n int) int8 {
	for k := 1; k < n; k++ {
		if (pc+uint64(k)*host.InstBytes)>>ilineShift != lineID {
			return int8(k)
		}
	}
	return -1
}

// fuseMegaLd matches the full misalignment-safe load expansion, exactly
// as the translator emits it (paper Fig. 2):
//
//	ldq_u lo, d(base); ldq_u hi, d+sz-1(base); lda ea, d(base);
//	extXl; extXh; bis [; addl zero-sext]
//
// and rewrites it into a single stepMisLd retiring 6 (7 with the
// longword sign-extension) instructions. The wiring and clobber guards
// verify every constituent reads exactly the value the idiom's producer
// wrote, so fused execution with locals is architecturally identical.
// Returns consumed raw steps (0 = no match).
func (m *Machine) fuseMegaLd(steps []traceStep, i, n int, isTarget []bool) int {
	if i+5 >= n {
		return 0
	}
	s0, s1, s2 := &steps[i], &steps[i+1], &steps[i+2]
	s3, s4, s5 := &steps[i+3], &steps[i+4], &steps[i+5]
	if s0.kind != stepLdqu || s1.kind != stepLdqu ||
		s2.kind != stepLda || s2.op != host.LDA || s5.kind != stepBis {
		return 0
	}
	var sz uint64
	switch {
	case s3.kind == stepExtwl && s4.kind == stepExtwh:
		sz = 2
	case s3.kind == stepExtll && s4.kind == stepExtlh:
		sz = 4
	case s3.kind == stepExtql && s4.kind == stepExtqh:
		sz = 8
	default:
		return 0
	}
	for j := i + 1; j <= i+5; j++ {
		if isTarget[j] {
			return 0
		}
	}
	if s3.litB || s4.litB || s5.litB {
		return 0
	}
	base := s0.bPtr
	loT, hiT, eaT := s0.wPtr, s1.wPtr, s2.wPtr
	if s1.bPtr != base || s2.bPtr != base ||
		s1.disp != s0.disp+sz-1 || s2.disp != s0.disp {
		return 0
	}
	// Value chains and clobber guards (generic program order: each
	// register must stay live from its producer to its last reader).
	if loT == base || hiT == base || // base re-read at k1/k2
		loT == hiT || loT == eaT || hiT == eaT ||
		s3.aPtr != loT || s3.bPtr != eaT ||
		s4.aPtr != hiT || s4.bPtr != eaT ||
		s3.wPtr == hiT || s3.wPtr == eaT || s3.wPtr == s4.wPtr ||
		!(s5.aPtr == s4.wPtr && s5.bPtr == s3.wPtr ||
			s5.aPtr == s3.wPtr && s5.bPtr == s4.wPtr) {
		return 0
	}
	consumed := 6
	sext := false
	if i+6 < n && !isTarget[i+6] {
		if s6 := &steps[i+6]; s6.kind == stepAddl && !s6.litB &&
			s6.aPtr == &m.traceZero && s6.bPtr == s5.wPtr && s6.wPtr == s5.wPtr {
			sext = true
			consumed = 7
		}
	}
	s0.aux = &megaAux{
		instLdHi: s1.inst,
		crossK:   megaCrossK(s0.pc, s0.lineID, consumed),
		sext:     sext,
	}
	s0.kind = stepMisLd
	s0.aPtr = loT // destination slots from here on; av is ignored at dispatch
	s0.a2Ptr = hiT
	s0.b2Ptr = eaT
	s0.w2Ptr = s3.wPtr
	s0.w3Ptr = s4.wPtr
	s0.wPtr = s5.wPtr
	s0.lit = sz
	s0.n = uint16(consumed)
	return consumed
}

// fuseMegaSt matches the full misalignment-safe store expansion
// (read-merge-write of the two covering quadwords, high stored first):
//
//	lda ea, d(base); ldq_u hi, d+sz-1(base); ldq_u lo, d(base);
//	insXh; insXl; mskXh; mskXl; bis; bis; stq_u hi; stq_u lo
//
// and rewrites it into a single stepMisSt retiring 11 instructions.
// Same soundness regime as fuseMegaLd. Returns consumed steps (0 = no
// match).
func (m *Machine) fuseMegaSt(steps []traceStep, i, n int, isTarget []bool) int {
	if i+10 >= n {
		return 0
	}
	s := steps[i : i+11 : i+11]
	if s[0].kind != stepLda || s[0].op != host.LDA ||
		s[1].kind != stepLdqu || s[2].kind != stepLdqu ||
		s[7].kind != stepBis || s[8].kind != stepBis ||
		s[9].kind != stepStqu || s[10].kind != stepStqu {
		return 0
	}
	var sz uint64
	switch {
	case s[3].kind == stepInswh && s[4].kind == stepInswl &&
		s[5].kind == stepMskwh && s[6].kind == stepMskwl:
		sz = 2
	case s[3].kind == stepInslh && s[4].kind == stepInsll &&
		s[5].kind == stepMsklh && s[6].kind == stepMskll:
		sz = 4
	case s[3].kind == stepInsqh && s[4].kind == stepInsql &&
		s[5].kind == stepMskqh && s[6].kind == stepMskql:
		sz = 8
	default:
		return 0
	}
	for j := i + 1; j <= i+10; j++ {
		if isTarget[j] {
			return 0
		}
	}
	for j := 3; j <= 8; j++ {
		if s[j].litB {
			return 0
		}
	}
	base, d := s[0].bPtr, s[0].disp
	eaT, hiT, loT := s[0].wPtr, s[1].wPtr, s[2].wPtr
	data := s[3].aPtr
	iA, iB := s[3].wPtr, s[4].wPtr
	mh, ml := s[5].wPtr, s[6].wPtr
	hs, ls := s[7].wPtr, s[8].wPtr
	if s[1].bPtr != base || s[2].bPtr != base || s[9].bPtr != base || s[10].bPtr != base ||
		s[1].disp != d+sz-1 || s[2].disp != d || s[9].disp != d+sz-1 || s[10].disp != d {
		return 0
	}
	// Dataflow wiring.
	if s[4].aPtr != data || s[3].bPtr != eaT || s[4].bPtr != eaT ||
		s[5].aPtr != hiT || s[5].bPtr != eaT ||
		s[6].aPtr != loT || s[6].bPtr != eaT ||
		!(s[7].aPtr == mh && s[7].bPtr == iA || s[7].aPtr == iA && s[7].bPtr == mh) ||
		!(s[8].aPtr == ml && s[8].bPtr == iB || s[8].aPtr == iB && s[8].bPtr == ml) ||
		s[9].aPtr != hs || s[10].aPtr != ls {
		return 0
	}
	// Clobber guards: every intermediate destination written while an
	// earlier value is still live must be a different register.
	if eaT == base || hiT == base || loT == base || iA == base || iB == base ||
		mh == base || ml == base || hs == base || ls == base ||
		data == eaT || data == hiT || data == loT || data == iA ||
		hiT == eaT || loT == eaT || iA == eaT || iB == eaT || mh == eaT ||
		loT == hiT || iA == hiT || iB == hiT ||
		iA == loT || iB == loT || mh == loT ||
		iB == iA || mh == iA || ml == iA ||
		mh == iB || ml == iB || hs == iB ||
		ml == mh || hs == ml || ls == hs {
		return 0
	}
	s0 := &steps[i]
	s0.aux = &megaAux{
		hiT: hiT, loT: loT, mskHw: mh, mskLw: ml, hiS: hs, loS: ls,
		instLdHi: s[1].inst, instLdLo: s[2].inst,
		instStHi: s[9].inst, instStLo: s[10].inst,
		crossK: megaCrossK(s0.pc, s0.lineID, 11),
	}
	s0.kind = stepMisSt
	s0.aPtr = data
	s0.b2Ptr = eaT
	s0.w2Ptr = iA
	s0.w3Ptr = iB
	s0.wPtr = &m.traceSink // mega cases write their operands directly
	s0.lit = sz
	s0.n = 11
	return 11
}

// fuseAt rewrites steps[i] into a super-step when it heads a fusible
// idiom, returning the number of constituent steps consumed (1 = no
// fusion). See combineSteps for the soundness constraints.
func fuseAt(steps []traceStep, i, n int, isTarget []bool) int {
	s0 := &steps[i]
	// Extract-merge triple: extXl t1; extXh t2; bis d = t1|t2.
	if i+2 < n && !isTarget[i+1] && !isTarget[i+2] {
		s1, s2 := &steps[i+1], &steps[i+2]
		var mk stepKind
		switch {
		case s0.kind == stepExtll && s1.kind == stepExtlh:
			mk = stepExtMergeL
		case s0.kind == stepExtwl && s1.kind == stepExtwh:
			mk = stepExtMergeW
		}
		if mk != 0 && s2.kind == stepBis &&
			s0.lineID == s1.lineID && s1.lineID == s2.lineID &&
			!s0.litB && !s1.litB && !s2.litB &&
			s1.bPtr == s0.bPtr &&
			(s2.aPtr == s0.wPtr && s2.bPtr == s1.wPtr || s2.aPtr == s1.wPtr && s2.bPtr == s0.wPtr) &&
			s0.wPtr != s1.aPtr && s0.wPtr != s1.bPtr && s0.wPtr != s1.wPtr {
			s0.kind = mk
			s0.a2Ptr = s1.aPtr
			s0.w2Ptr = s0.wPtr
			s0.w3Ptr = s1.wPtr
			s0.wPtr = s2.wPtr
			s0.n = 3
			return 3
		}
	}
	if i+1 >= n || isTarget[i+1] {
		return 1
	}
	s1 := &steps[i+1]
	if s0.lineID != s1.lineID || s0.litB || s1.litB ||
		s0.wPtr == s1.aPtr || s0.wPtr == s1.bPtr || s0.wPtr == s1.wPtr {
		return 1
	}
	switch {
	// Insert pair: insXh t; insXl d — shared (value, address) inputs.
	case (s0.kind == stepInslh && s1.kind == stepInsll ||
		s0.kind == stepInswh && s1.kind == stepInswl) &&
		s1.aPtr == s0.aPtr && s1.bPtr == s0.bPtr:
		if s0.kind == stepInslh {
			s0.kind = stepInsPairL
		} else {
			s0.kind = stepInsPairW
		}
	// Mask pair: mskXh t; mskXl d — shared address, distinct sources.
	case (s0.kind == stepMsklh && s1.kind == stepMskll ||
		s0.kind == stepMskwh && s1.kind == stepMskwl) &&
		s1.bPtr == s0.bPtr:
		if s0.kind == stepMsklh {
			s0.kind = stepMskPairL
		} else {
			s0.kind = stepMskPairW
		}
		s0.a2Ptr = s1.aPtr
	// Independent OR pair (the store-merge tail emits two in a row).
	case s0.kind == stepBis && s1.kind == stepBis:
		s0.kind = stepBisPair
		s0.a2Ptr = s1.aPtr
		s0.b2Ptr = s1.bPtr
	default:
		return 1
	}
	s0.w2Ptr = s0.wPtr
	s0.wPtr = s1.wPtr
	s0.n = 2
	return 2
}

// BuildTrace pre-decodes the host code in [start, end) into a trace and
// registers every covered PC for direct execution. It reports success;
// failure (tier disabled, undecodable word, overlap with a live trace,
// bad bounds) leaves no trace behind. Building charges no simulated
// cycles: it models work the BT runtime does off the simulated CPU's
// critical path, and the resulting execution is bit-identical anyway.
func (m *Machine) BuildTrace(start, end uint64) bool {
	if m.traces == nil || start%host.InstBytes != 0 || end%host.InstBytes != 0 || end <= start {
		return false
	}
	n := int((end - start) / host.InstBytes)
	if n > maxTraceSteps {
		return false
	}
	steps := make([]traceStep, n+1)
	for i := 0; i < n; i++ {
		pc := start + uint64(i)*host.InstBytes
		if _, taken := m.traces[pc]; taken {
			return false
		}
		inst, err := host.Decode(m.Mem.Read32(pc))
		if err != nil {
			return false
		}
		if !m.buildStep(&steps[i], pc, inst, start, end) {
			return false
		}
		steps[i].n = 1
	}
	// Fuse adjacent MDA-idiom ALU sequences into multi-instruction
	// super-steps; n becomes the compacted step count.
	n = m.combineSteps(steps, n)
	steps = steps[:n+1]
	// Synthetic fallthrough exit: reached only if the final instruction
	// does not transfer control (translated units always do; this keeps
	// the executor total anyway). It retires no instruction.
	steps[n] = traceStep{kind: stepExitFall, pc: end, exitPC: end, takenIdx: -1, idx: uint32(n)}
	// Second pass, once the slice is final and element addresses stable:
	// thread successor/taken pointers and point literal operate forms'
	// bPtr at their own backing literal.
	for i := 0; i < n; i++ {
		st := &steps[i]
		st.idx = uint32(i)
		st.next = &steps[i+1]
		if st.takenIdx >= 0 {
			st.taken = &steps[st.takenIdx]
		}
		if st.litB {
			st.bPtr = &st.lit
		}
	}
	// Third pass: fused-run lengths. A run is a maximal stretch of
	// non-branching steps (memory, multiply, operate format — everything
	// at or above stepLd1) on one I-line; the executor settles the budget
	// check, I-fetch probe, and instruction count for a whole run up
	// front and retires its steps in a tight inner loop (trap exits
	// hand back the unretired remainder).
	for i := n - 1; i >= 0; i-- {
		st := &steps[i]
		if st.kind < stepLd1 {
			continue
		}
		st.run = st.n
		if st.kind == stepMisLd || st.kind == stepMisSt {
			// Mega-steps execute in the outer loop only (their bodies
			// carry their own fetch/trap handling); runs break around
			// them.
			continue
		}
		if nx := &steps[i+1]; nx.kind >= stepLd1 && nx.kind != stepMisLd &&
			nx.kind != stepMisSt && nx.lineID == st.lineID {
			st.run += nx.run
		}
		if st.kind >= stepLda {
			st.aluRun = st.n
			if nx := &steps[i+1]; nx.kind >= stepLda && nx.lineID == st.lineID {
				st.aluRun += nx.aluRun
			}
		}
	}

	m.traceSeq++
	t := &trace{id: m.traceSeq, start: start, end: end, steps: steps}
	for i := 0; i < n; i++ {
		m.traces[steps[i].pc] = traceEntry{tr: t, idx: int32(i)}
	}
	m.traceList[t.id] = t
	if start < m.traceLo {
		m.traceLo = start
	}
	if end > m.traceHi {
		m.traceHi = end
	}
	m.traceVer++ // stale negative link caches must re-probe
	m.tstats.Formed++
	return true
}

// regRead returns a pointer to r's value as a source operand (R31 reads
// the pinned zero word).
func (m *Machine) regRead(r host.Reg) *uint64 {
	if r == host.Zero {
		return &m.traceZero
	}
	return &m.regs[r]
}

// regWrite returns a pointer to r's value as a destination (writes to R31
// land in the discard sink).
func (m *Machine) regWrite(r host.Reg) *uint64 {
	if r == host.Zero {
		return &m.traceSink
	}
	return &m.regs[r]
}

// aluKind specializes an operate-format op; ops without their own kind
// fall back to stepAluX (host.EvalOp).
func aluKind(op host.Op) stepKind {
	switch op {
	case host.ADDL:
		return stepAddl
	case host.SUBL:
		return stepSubl
	case host.ADDQ:
		return stepAddq
	case host.SUBQ:
		return stepSubq
	case host.CMPEQ:
		return stepCmpeq
	case host.CMPLT:
		return stepCmplt
	case host.CMPLE:
		return stepCmple
	case host.CMPULT:
		return stepCmpult
	case host.CMPULE:
		return stepCmpule
	case host.AND:
		return stepAnd
	case host.BIC:
		return stepBic
	case host.BIS:
		return stepBis
	case host.ORNOT:
		return stepOrnot
	case host.XOR:
		return stepXor
	case host.EQV:
		return stepEqv
	case host.SLL:
		return stepSll
	case host.SRL:
		return stepSrl
	case host.SRA:
		return stepSra
	case host.EXTBL:
		return stepExtbl
	case host.EXTWL:
		return stepExtwl
	case host.EXTLL:
		return stepExtll
	case host.EXTQL:
		return stepExtql
	case host.EXTWH:
		return stepExtwh
	case host.EXTLH:
		return stepExtlh
	case host.EXTQH:
		return stepExtqh
	case host.INSBL:
		return stepInsbl
	case host.INSWL:
		return stepInswl
	case host.INSLL:
		return stepInsll
	case host.INSQL:
		return stepInsql
	case host.INSWH:
		return stepInswh
	case host.INSLH:
		return stepInslh
	case host.INSQH:
		return stepInsqh
	case host.MSKBL:
		return stepMskbl
	case host.MSKWL:
		return stepMskwl
	case host.MSKLL:
		return stepMskll
	case host.MSKQL:
		return stepMskql
	case host.MSKWH:
		return stepMskwh
	case host.MSKLH:
		return stepMsklh
	case host.MSKQH:
		return stepMskqh
	}
	return stepAluX
}

// condKind specializes a conditional-branch predicate; unknown predicates
// fall back to stepBccX (host.BranchTaken).
func condKind(op host.Op) stepKind {
	switch op {
	case host.BEQ:
		return stepBeq
	case host.BNE:
		return stepBne
	case host.BLT:
		return stepBlt
	case host.BLE:
		return stepBle
	case host.BGT:
		return stepBgt
	case host.BGE:
		return stepBge
	case host.BLBC:
		return stepBlbc
	case host.BLBS:
		return stepBlbs
	}
	return stepBccX
}

// memKind specializes a memory-format op (LDA/LDAH excluded). The second
// result is false for ops the executor has no specialized path for.
func memKind(op host.Op) (stepKind, bool) {
	switch op {
	case host.LDBU:
		return stepLd1, true
	case host.LDWU:
		return stepLd2, true
	case host.LDL:
		return stepLd4, true
	case host.LDQ:
		return stepLd8, true
	case host.LDQU:
		return stepLdqu, true
	case host.STB:
		return stepSt1, true
	case host.STW:
		return stepSt2, true
	case host.STL:
		return stepSt4, true
	case host.STQ:
		return stepSt8, true
	case host.STQU:
		return stepStqu, true
	}
	return 0, false
}

// buildStep lowers one decoded instruction into st. It reports false on
// instructions the executor cannot reproduce.
func (m *Machine) buildStep(st *traceStep, pc uint64, inst host.Inst, start, end uint64) bool {
	st.pc = pc
	st.lineID = pc >> ilineShift
	st.inst = inst
	st.op = inst.Op
	st.takenIdx = -1
	// Never-nil defaults: the executor loads *aPtr/*bPtr unconditionally.
	st.aPtr, st.bPtr, st.wPtr = &m.traceZero, &m.traceZero, &m.traceSink
	switch host.FormatOf(inst.Op) {
	case host.FormatPAL:
		st.kind = stepBrk
		st.payload = inst.Payload
	case host.FormatMem:
		disp := uint64(int64(inst.Disp))
		switch inst.Op {
		case host.LDA, host.LDAH:
			st.kind = stepLda
			if inst.Op == host.LDAH {
				disp <<= 16
			}
			st.disp = disp
			st.bPtr = m.regRead(inst.Rb)
			st.wPtr = m.regWrite(inst.Ra)
		default:
			kind, ok := memKind(inst.Op)
			if !ok {
				return false
			}
			st.kind = kind
			st.disp = disp
			st.bPtr = m.regRead(inst.Rb)
			if inst.Op.IsStore() {
				st.aPtr = m.regRead(inst.Ra)
			} else {
				st.wPtr = m.regWrite(inst.Ra)
			}
		}
	case host.FormatOpr:
		switch inst.Op {
		case host.MULL:
			st.kind = stepMull
		case host.MULQ:
			st.kind = stepMulq
		default:
			st.kind = aluKind(inst.Op)
		}
		st.aPtr = m.regRead(inst.Ra)
		if inst.IsLit {
			st.lit = uint64(inst.Lit)
			st.litB = true // bPtr is fixed up to &st.lit once the slice is final
		} else {
			st.bPtr = m.regRead(inst.Rb)
		}
		st.wPtr = m.regWrite(inst.Rc)
	case host.FormatBra:
		target := inst.BranchTarget(pc)
		if target >= start && target < end {
			st.takenIdx = int32((target - start) / host.InstBytes)
		} else {
			st.exitPC = target
		}
		if inst.Op == host.BR || inst.Op == host.BSR {
			st.kind = stepBr
			st.uncond = inst.Op == host.BR && inst.Ra == host.Zero
			st.wPtr = m.regWrite(inst.Ra)
		} else {
			st.kind = condKind(inst.Op)
			st.aPtr = m.regRead(inst.Ra)
		}
	case host.FormatJmp:
		st.kind = stepJmp
		st.bPtr = m.regRead(inst.Rb)
		st.wPtr = m.regWrite(inst.Ra)
	default:
		return false
	}
	return true
}

// runTraced is Run's trace-tier driver: it alternates trace execution
// with generic segments (runLoop in exit-on-trace mode), sharing one
// instruction budget.
func (m *Machine) runTraced(maxInsts uint64) (StopReason, uint32, error) {
	used := uint64(0)
	for used < maxInsts {
		if ent, ok := m.traces[m.pc]; ok && !m.traceStall {
			stop, payload, done := m.execTrace(&ent.tr.steps[ent.idx], &used, maxInsts)
			if done {
				return stop, payload, nil
			}
			continue // trap, side exit, or budget stall; re-probe below
		}
		// A budget stall means the next super-step is bigger than what is
		// left; the generic segment below retires the tail one
		// instruction at a time (it always makes progress before any
		// trace redirect, so this cannot livelock).
		m.traceStall = false
		before := m.counters.Insts
		stop, payload, err, redirected := m.runLoop(maxInsts-used, true)
		used += m.counters.Insts - before
		if !redirected {
			return stop, payload, err
		}
	}
	return StopLimit, 0, nil
}

// execTrace retires host instructions starting at step st, following
// threaded successor pointers, in-trace branch targets, and memoized
// chain links. It returns done=true when Run should return (BRKBT or
// exhausted budget); a false return means machine state is synced (a trap
// was delivered, or control left the trace tier) and the caller should
// re-probe at m.pc.
//
// Parity contract: every counter/cycle/cache mutation below mirrors the
// generic loop in runLoop exactly (modulo the two neutral accounting
// transformations documented at the top of this file). Change one only
// with its twin. The specialized ALU and branch-predicate kinds are
// pinned to host.EvalOp/host.BranchTaken by TestTraceOperateParity.
func (m *Machine) execTrace(st *traceStep, used *uint64, maxInsts uint64) (StopReason, uint32, bool) {
	p := &m.Params
	dual := p.DualIssueALU
	ldExtra := p.LoadExtraCycles
	tbc := p.TakenBranchCycles
	caches := m.caches
	insts := m.counters.Insts
	loads, stores := m.counters.Loads, m.counters.Stores
	slotOpen := uint64(0) // dual-issue slot state as 0/1 for branchless toggling
	if m.slotOpen {
		slotOpen = 1
	}
	entryInsts := insts
	n0 := *used
	limit := insts + (maxInsts - n0) // budget expressed on the insts counter
	var extra uint64                 // cycles above the 1/inst baseline; wraps on dual-issue credit
	curLineID := noLineID
	if m.curLine != nil {
		curLineID = m.curLineID
	}
	// Same-L1D-line probe memo (see the header comment for why skipping
	// repeat probes is simulation-invisible).
	dataLine := noLineID
	var dshift uint
	if caches != nil {
		dshift = caches.L1D.LineShift()
	}
	// One-entry page memo: repeat data accesses to the same 8 KiB page
	// skip the memory layer's page walk and size dispatch entirely. The
	// protection/watch check (AccessTrap) still runs per access, and page
	// backing arrays are stable for the life of the run, so direct page
	// reads/writes are equivalent to the mem accessors. Aligned accesses
	// can never cross a page, so no extent check is needed on the hit
	// path (byte ops trivially fit).
	pgIdx := ^uint64(0)
	var pg *[mem.PageSize]byte
	var pgLdTrap, pgStTrap bool
	var ea uint64 // faulting address, shared with the trap exits below
	// Mega-step fault bookkeeping (set on the goto megaTrap paths): the
	// faulting constituent's ordinal, PC, and decoded instruction.
	var trapK, trapPC uint64
	var trapInst host.Inst

	// Every exit path (including trap dispatch) writes the hoisted state
	// back through traceExit — a plain call with value arguments, not a
	// closure, so the per-step hot locals stay in registers instead of
	// being spilled to closure-captured stack slots.
	for {
		if st.kind == stepExitFall {
			// Retires nothing: either chain into the successor trace or
			// hand the fallthrough PC back to the driver.
			if l := m.followLink(st); l != nil {
				st = l
				continue
			}
			m.traceExit(st.exitPC, insts, extra, loads, stores, entryInsts, n0, curLineID, slotOpen != 0, used)
			return 0, 0, false
		}
		if insts+uint64(st.n) > limit {
			// Super-steps retire atomically, but the budget is defined on
			// single instructions: when the remainder cannot fit this step
			// (only possible for n > 1), hand the head PC back to the
			// generic loop so the tail retires instruction by instruction,
			// bit-identical to an unfused run. With n == 1 this is exactly
			// insts >= limit: the budget is spent.
			m.traceExit(st.pc, insts, extra, loads, stores, entryInsts, n0, curLineID, slotOpen != 0, used)
			if insts < limit {
				m.traceStall = true
				return 0, 0, false
			}
			return StopLimit, 0, true
		}
		if st.lineID != curLineID {
			curLineID = st.lineID
			if caches != nil {
				extra += uint64(caches.Fetch(st.pc))
			}
		}
		if r := uint64(st.run); r > uint64(st.n) && insts+r <= limit {
			// Fused run: r consecutive non-branching steps on this I-line.
			// None can branch or cross a line, so the budget is checked
			// once and insts bulk-retired, leaving the inner loop free of
			// the per-step loop-top checks. The case bodies are verbatim
			// twins of the outer switch (same accounting, same memo), with
			// two deltas: operate-format write-back and dual-issue
			// toggling share the loop tail (identical semantics), and
			// trap exits subtract the bulk-retired steps after the
			// trapping one before leaving.
			insts += r
		fused:
			for {
				if ar := uint64(st.aluRun); ar > 1 {
					// Pure operate-format stretch: every step toggles the
					// dual-issue slot the same way, so the pairing debit has
					// a closed form (pairs completed = floor((ar+open)/2))
					// and the per-op tail toggle drops out entirely.
					if dual {
						extra -= (ar + slotOpen) >> 1
						slotOpen = (slotOpen + ar) & 1
					}
					r -= ar
					for {
						av, bv := *st.aPtr, *st.bPtr
						var v uint64
						switch st.kind {
						case stepLda:
							v = bv + st.disp
						case stepAddl:
							v = uint64(int64(int32(av + bv)))
						case stepSubl:
							v = uint64(int64(int32(av - bv)))
						case stepAddq:
							v = av + bv
						case stepSubq:
							v = av - bv
						case stepCmpeq:
							v = b2iTr(av == bv)
						case stepCmplt:
							v = b2iTr(int64(av) < int64(bv))
						case stepCmple:
							v = b2iTr(int64(av) <= int64(bv))
						case stepCmpult:
							v = b2iTr(av < bv)
						case stepCmpule:
							v = b2iTr(av <= bv)
						case stepAnd:
							v = av & bv
						case stepBic:
							v = av &^ bv
						case stepBis:
							v = av | bv
						case stepOrnot:
							v = av | ^bv
						case stepXor:
							v = av ^ bv
						case stepEqv:
							v = av ^ ^bv
						case stepSll:
							v = av << (bv & 63)
						case stepSrl:
							v = av >> (bv & 63)
						case stepSra:
							v = uint64(int64(av) >> (bv & 63))
						case stepExtbl:
							v = host.ExtLow(av, bv, 1)
						case stepExtwl:
							v = host.ExtLow(av, bv, 2)
						case stepExtll:
							v = host.ExtLow(av, bv, 4)
						case stepExtql:
							v = host.ExtLow(av, bv, 8)
						case stepExtwh:
							v = host.ExtHigh(av, bv, 2)
						case stepExtlh:
							v = host.ExtHigh(av, bv, 4)
						case stepExtqh:
							v = host.ExtHigh(av, bv, 8)
						case stepInsbl:
							v = host.InsLow(av, bv, 1)
						case stepInswl:
							v = host.InsLow(av, bv, 2)
						case stepInsll:
							v = host.InsLow(av, bv, 4)
						case stepInsql:
							v = host.InsLow(av, bv, 8)
						case stepInswh:
							v = host.InsHigh(av, bv, 2)
						case stepInslh:
							v = host.InsHigh(av, bv, 4)
						case stepInsqh:
							v = host.InsHigh(av, bv, 8)
						case stepMskbl:
							v = host.MskLow(av, bv, 1)
						case stepMskwl:
							v = host.MskLow(av, bv, 2)
						case stepMskll:
							v = host.MskLow(av, bv, 4)
						case stepMskql:
							v = host.MskLow(av, bv, 8)
						case stepMskwh:
							v = host.MskHigh(av, bv, 2)
						case stepMsklh:
							v = host.MskHigh(av, bv, 4)
						case stepMskqh:
							v = host.MskHigh(av, bv, 8)
						case stepAluX:
							v = host.EvalOp(st.op, av, bv)
						case stepExtMergeL:
							t1 := host.ExtLow(av, bv, 4)
							t2 := host.ExtHigh(*st.a2Ptr, bv, 4)
							*st.w2Ptr = t1
							*st.w3Ptr = t2
							v = t1 | t2
						case stepExtMergeW:
							t1 := host.ExtLow(av, bv, 2)
							t2 := host.ExtHigh(*st.a2Ptr, bv, 2)
							*st.w2Ptr = t1
							*st.w3Ptr = t2
							v = t1 | t2
						case stepInsPairL:
							*st.w2Ptr = host.InsHigh(av, bv, 4)
							v = host.InsLow(av, bv, 4)
						case stepInsPairW:
							*st.w2Ptr = host.InsHigh(av, bv, 2)
							v = host.InsLow(av, bv, 2)
						case stepMskPairL:
							*st.w2Ptr = host.MskHigh(av, bv, 4)
							v = host.MskLow(*st.a2Ptr, bv, 4)
						case stepMskPairW:
							*st.w2Ptr = host.MskHigh(av, bv, 2)
							v = host.MskLow(*st.a2Ptr, bv, 2)
						case stepBisPair:
							*st.w2Ptr = av | bv
							v = *st.a2Ptr | *st.b2Ptr
						default:
							panic(fmt.Sprintf("machine: non-operate step %d inside an operate stretch at %#x", st.kind, st.pc))
						}
						*st.wPtr = v
						ar -= uint64(st.n)
						st = st.next
						if ar == 0 {
							break
						}
					}
					if r == 0 {
						break fused
					}
					continue fused
				}
				av, bv := *st.aPtr, *st.bPtr
				var v uint64
				switch st.kind {
				case stepLda:
					v = bv + st.disp
				case stepAddl:
					v = uint64(int64(int32(av + bv)))
				case stepSubl:
					v = uint64(int64(int32(av - bv)))
				case stepAddq:
					v = av + bv
				case stepSubq:
					v = av - bv
				case stepCmpeq:
					v = b2iTr(av == bv)
				case stepCmplt:
					v = b2iTr(int64(av) < int64(bv))
				case stepCmple:
					v = b2iTr(int64(av) <= int64(bv))
				case stepCmpult:
					v = b2iTr(av < bv)
				case stepCmpule:
					v = b2iTr(av <= bv)
				case stepAnd:
					v = av & bv
				case stepBic:
					v = av &^ bv
				case stepBis:
					v = av | bv
				case stepOrnot:
					v = av | ^bv
				case stepXor:
					v = av ^ bv
				case stepEqv:
					v = av ^ ^bv
				case stepSll:
					v = av << (bv & 63)
				case stepSrl:
					v = av >> (bv & 63)
				case stepSra:
					v = uint64(int64(av) >> (bv & 63))
				case stepExtbl:
					v = host.ExtLow(av, bv, 1)
				case stepExtwl:
					v = host.ExtLow(av, bv, 2)
				case stepExtll:
					v = host.ExtLow(av, bv, 4)
				case stepExtql:
					v = host.ExtLow(av, bv, 8)
				case stepExtwh:
					v = host.ExtHigh(av, bv, 2)
				case stepExtlh:
					v = host.ExtHigh(av, bv, 4)
				case stepExtqh:
					v = host.ExtHigh(av, bv, 8)
				case stepInsbl:
					v = host.InsLow(av, bv, 1)
				case stepInswl:
					v = host.InsLow(av, bv, 2)
				case stepInsll:
					v = host.InsLow(av, bv, 4)
				case stepInsql:
					v = host.InsLow(av, bv, 8)
				case stepInswh:
					v = host.InsHigh(av, bv, 2)
				case stepInslh:
					v = host.InsHigh(av, bv, 4)
				case stepInsqh:
					v = host.InsHigh(av, bv, 8)
				case stepMskbl:
					v = host.MskLow(av, bv, 1)
				case stepMskwl:
					v = host.MskLow(av, bv, 2)
				case stepMskll:
					v = host.MskLow(av, bv, 4)
				case stepMskql:
					v = host.MskLow(av, bv, 8)
				case stepMskwh:
					v = host.MskHigh(av, bv, 2)
				case stepMsklh:
					v = host.MskHigh(av, bv, 4)
				case stepMskqh:
					v = host.MskHigh(av, bv, 8)
				case stepAluX:
					v = host.EvalOp(st.op, av, bv)

				case stepLd1:
					ea = bv + st.disp
					slotOpen = 1
					if ea>>mem.PageShift == pgIdx {
						if pgLdTrap {
							insts -= r - 1
							goto memTrap
						}
						loads++
						extra += ldExtra
						*st.wPtr = uint64(pg[ea&(mem.PageSize-1)])
					} else {
						if m.Mem.AccessTrap(ea, 1, false) {
							insts -= r - 1
							goto memTrap
						}
						loads++
						extra += ldExtra
						*st.wPtr = uint64(m.Mem.Read8(ea))
						if p := m.Mem.PeekPage(ea); p != nil {
							pgIdx, pg = ea>>mem.PageShift, p
							pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
						}
					}
					if caches != nil {
						if l := ea >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(ea))
						}
					}
					st = st.next
					r--
					if r == 0 {
						break fused
					}
					continue fused

				case stepLd2:
					ea = bv + st.disp
					slotOpen = 1
					if ea&1 != 0 {
						insts -= r - 1
						goto memAlign
					}
					if ea>>mem.PageShift == pgIdx {
						if pgLdTrap {
							insts -= r - 1
							goto memTrap
						}
						loads++
						extra += ldExtra
						*st.wPtr = uint64(binary.LittleEndian.Uint16(pg[ea&(mem.PageSize-1):]))
					} else {
						if m.Mem.AccessTrap(ea, 2, false) {
							insts -= r - 1
							goto memTrap
						}
						loads++
						extra += ldExtra
						*st.wPtr = uint64(m.Mem.Read16(ea))
						if p := m.Mem.PeekPage(ea); p != nil {
							pgIdx, pg = ea>>mem.PageShift, p
							pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
						}
					}
					if caches != nil {
						if l := ea >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(ea))
						}
					}
					st = st.next
					r--
					if r == 0 {
						break fused
					}
					continue fused

				case stepLd4:
					ea = bv + st.disp
					slotOpen = 1
					if ea&3 != 0 {
						insts -= r - 1
						goto memAlign
					}
					if ea>>mem.PageShift == pgIdx {
						if pgLdTrap {
							insts -= r - 1
							goto memTrap
						}
						loads++
						extra += ldExtra
						*st.wPtr = uint64(int64(int32(binary.LittleEndian.Uint32(pg[ea&(mem.PageSize-1):]))))
					} else {
						if m.Mem.AccessTrap(ea, 4, false) {
							insts -= r - 1
							goto memTrap
						}
						loads++
						extra += ldExtra
						*st.wPtr = uint64(int64(int32(m.Mem.Read32(ea))))
						if p := m.Mem.PeekPage(ea); p != nil {
							pgIdx, pg = ea>>mem.PageShift, p
							pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
						}
					}
					if caches != nil {
						if l := ea >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(ea))
						}
					}
					st = st.next
					r--
					if r == 0 {
						break fused
					}
					continue fused

				case stepLd8:
					ea = bv + st.disp
					slotOpen = 1
					if ea&7 != 0 {
						insts -= r - 1
						goto memAlign
					}
					if ea>>mem.PageShift == pgIdx {
						if pgLdTrap {
							insts -= r - 1
							goto memTrap
						}
						loads++
						extra += ldExtra
						*st.wPtr = binary.LittleEndian.Uint64(pg[ea&(mem.PageSize-1):])
					} else {
						if m.Mem.AccessTrap(ea, 8, false) {
							insts -= r - 1
							goto memTrap
						}
						loads++
						extra += ldExtra
						*st.wPtr = m.Mem.Read64(ea)
						if p := m.Mem.PeekPage(ea); p != nil {
							pgIdx, pg = ea>>mem.PageShift, p
							pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
						}
					}
					if caches != nil {
						if l := ea >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(ea))
						}
					}
					st = st.next
					r--
					if r == 0 {
						break fused
					}
					continue fused

				case stepLdqu:
					ea = bv + st.disp
					slotOpen = 1
					{
						access := ea &^ 7
						if access>>mem.PageShift == pgIdx {
							if pgLdTrap {
								insts -= r - 1
								goto memTrap
							}
							loads++
							extra += ldExtra
							*st.wPtr = binary.LittleEndian.Uint64(pg[access&(mem.PageSize-1):])
						} else {
							if m.Mem.AccessTrap(access, 8, false) {
								insts -= r - 1
								goto memTrap
							}
							loads++
							extra += ldExtra
							*st.wPtr = m.Mem.Read64(access)
							if p := m.Mem.PeekPage(access); p != nil {
								pgIdx, pg = access>>mem.PageShift, p
								pgLdTrap, pgStTrap = m.Mem.PageTrapped(access)
							}
						}
						if caches != nil {
							if l := access >> dshift; l != dataLine {
								dataLine = l
								extra += uint64(caches.Data(access))
							}
						}
					}
					st = st.next
					r--
					if r == 0 {
						break fused
					}
					continue fused

				case stepSt1:
					ea = bv + st.disp
					slotOpen = 1
					if ea>>mem.PageShift == pgIdx {
						if pgStTrap {
							insts -= r - 1
							goto memTrap
						}
						stores++
						pg[ea&(mem.PageSize-1)] = byte(av)
					} else {
						if m.Mem.AccessTrap(ea, 1, true) {
							insts -= r - 1
							goto memTrap
						}
						stores++
						m.Mem.Write8(ea, byte(av))
						if p := m.Mem.PeekPage(ea); p != nil {
							pgIdx, pg = ea>>mem.PageShift, p
							pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
						}
					}
					if caches != nil {
						if l := ea >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(ea))
						}
					}
					st = st.next
					r--
					if r == 0 {
						break fused
					}
					continue fused

				case stepSt2:
					ea = bv + st.disp
					slotOpen = 1
					if ea&1 != 0 {
						insts -= r - 1
						goto memAlign
					}
					if ea>>mem.PageShift == pgIdx {
						if pgStTrap {
							insts -= r - 1
							goto memTrap
						}
						stores++
						binary.LittleEndian.PutUint16(pg[ea&(mem.PageSize-1):], uint16(av))
					} else {
						if m.Mem.AccessTrap(ea, 2, true) {
							insts -= r - 1
							goto memTrap
						}
						stores++
						m.Mem.Write16(ea, uint16(av))
						if p := m.Mem.PeekPage(ea); p != nil {
							pgIdx, pg = ea>>mem.PageShift, p
							pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
						}
					}
					if caches != nil {
						if l := ea >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(ea))
						}
					}
					st = st.next
					r--
					if r == 0 {
						break fused
					}
					continue fused

				case stepSt4:
					ea = bv + st.disp
					slotOpen = 1
					if ea&3 != 0 {
						insts -= r - 1
						goto memAlign
					}
					if ea>>mem.PageShift == pgIdx {
						if pgStTrap {
							insts -= r - 1
							goto memTrap
						}
						stores++
						binary.LittleEndian.PutUint32(pg[ea&(mem.PageSize-1):], uint32(av))
					} else {
						if m.Mem.AccessTrap(ea, 4, true) {
							insts -= r - 1
							goto memTrap
						}
						stores++
						m.Mem.Write32(ea, uint32(av))
						if p := m.Mem.PeekPage(ea); p != nil {
							pgIdx, pg = ea>>mem.PageShift, p
							pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
						}
					}
					if caches != nil {
						if l := ea >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(ea))
						}
					}
					st = st.next
					r--
					if r == 0 {
						break fused
					}
					continue fused

				case stepSt8:
					ea = bv + st.disp
					slotOpen = 1
					if ea&7 != 0 {
						insts -= r - 1
						goto memAlign
					}
					if ea>>mem.PageShift == pgIdx {
						if pgStTrap {
							insts -= r - 1
							goto memTrap
						}
						stores++
						binary.LittleEndian.PutUint64(pg[ea&(mem.PageSize-1):], av)
					} else {
						if m.Mem.AccessTrap(ea, 8, true) {
							insts -= r - 1
							goto memTrap
						}
						stores++
						m.Mem.Write64(ea, av)
						if p := m.Mem.PeekPage(ea); p != nil {
							pgIdx, pg = ea>>mem.PageShift, p
							pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
						}
					}
					if caches != nil {
						if l := ea >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(ea))
						}
					}
					st = st.next
					r--
					if r == 0 {
						break fused
					}
					continue fused

				case stepStqu:
					ea = bv + st.disp
					slotOpen = 1
					{
						access := ea &^ 7
						if access>>mem.PageShift == pgIdx {
							if pgStTrap {
								insts -= r - 1
								goto memTrap
							}
							stores++
							binary.LittleEndian.PutUint64(pg[access&(mem.PageSize-1):], av)
						} else {
							if m.Mem.AccessTrap(access, 8, true) {
								insts -= r - 1
								goto memTrap
							}
							stores++
							m.Mem.Write64(access, av)
							if p := m.Mem.PeekPage(access); p != nil {
								pgIdx, pg = access>>mem.PageShift, p
								pgLdTrap, pgStTrap = m.Mem.PageTrapped(access)
							}
						}
						if caches != nil {
							if l := access >> dshift; l != dataLine {
								dataLine = l
								extra += uint64(caches.Data(access))
							}
						}
					}
					st = st.next
					r--
					if r == 0 {
						break fused
					}
					continue fused

				case stepMull:
					*st.wPtr = uint64(int64(int32(av * bv)))
					extra += p.MulExtraCycles
					slotOpen = 0
					st = st.next
					r--
					if r == 0 {
						break fused
					}
					continue fused

				case stepMulq:
					*st.wPtr = av * bv
					extra += p.MulExtraCycles
					slotOpen = 0
					st = st.next
					r--
					if r == 0 {
						break fused
					}
					continue fused
				default:
					panic(fmt.Sprintf("machine: branching step %d inside a fused run at %#x", st.kind, st.pc))
				}
				*st.wPtr = v
				if dual {
					extra -= slotOpen
					slotOpen ^= 1
				}
				st = st.next
				r--
				if r == 0 {
					break
				}
			}
			continue
		}
		insts += uint64(st.n)
		av, bv := *st.aPtr, *st.bPtr
		var v uint64
		var taken bool

		switch st.kind {
		case stepLda:
			v = bv + st.disp
		case stepAddl:
			v = uint64(int64(int32(av + bv)))
		case stepSubl:
			v = uint64(int64(int32(av - bv)))
		case stepAddq:
			v = av + bv
		case stepSubq:
			v = av - bv
		case stepCmpeq:
			v = b2iTr(av == bv)
		case stepCmplt:
			v = b2iTr(int64(av) < int64(bv))
		case stepCmple:
			v = b2iTr(int64(av) <= int64(bv))
		case stepCmpult:
			v = b2iTr(av < bv)
		case stepCmpule:
			v = b2iTr(av <= bv)
		case stepAnd:
			v = av & bv
		case stepBic:
			v = av &^ bv
		case stepBis:
			v = av | bv
		case stepOrnot:
			v = av | ^bv
		case stepXor:
			v = av ^ bv
		case stepEqv:
			v = av ^ ^bv
		case stepSll:
			v = av << (bv & 63)
		case stepSrl:
			v = av >> (bv & 63)
		case stepSra:
			v = uint64(int64(av) >> (bv & 63))
		case stepExtbl:
			v = host.ExtLow(av, bv, 1)
		case stepExtwl:
			v = host.ExtLow(av, bv, 2)
		case stepExtll:
			v = host.ExtLow(av, bv, 4)
		case stepExtql:
			v = host.ExtLow(av, bv, 8)
		case stepExtwh:
			v = host.ExtHigh(av, bv, 2)
		case stepExtlh:
			v = host.ExtHigh(av, bv, 4)
		case stepExtqh:
			v = host.ExtHigh(av, bv, 8)
		case stepInsbl:
			v = host.InsLow(av, bv, 1)
		case stepInswl:
			v = host.InsLow(av, bv, 2)
		case stepInsll:
			v = host.InsLow(av, bv, 4)
		case stepInsql:
			v = host.InsLow(av, bv, 8)
		case stepInswh:
			v = host.InsHigh(av, bv, 2)
		case stepInslh:
			v = host.InsHigh(av, bv, 4)
		case stepInsqh:
			v = host.InsHigh(av, bv, 8)
		case stepMskbl:
			v = host.MskLow(av, bv, 1)
		case stepMskwl:
			v = host.MskLow(av, bv, 2)
		case stepMskll:
			v = host.MskLow(av, bv, 4)
		case stepMskql:
			v = host.MskLow(av, bv, 8)
		case stepMskwh:
			v = host.MskHigh(av, bv, 2)
		case stepMsklh:
			v = host.MskHigh(av, bv, 4)
		case stepMskqh:
			v = host.MskHigh(av, bv, 8)
		case stepAluX:
			v = host.EvalOp(st.op, av, bv)
		case stepExtMergeL:
			if dual {
				// Two extra constituents: closed-form debit, parity kept.
				extra -= (2 + slotOpen) >> 1
			}
			t1 := host.ExtLow(av, bv, 4)
			t2 := host.ExtHigh(*st.a2Ptr, bv, 4)
			*st.w2Ptr = t1
			*st.w3Ptr = t2
			v = t1 | t2
		case stepExtMergeW:
			if dual {
				// Two extra constituents: closed-form debit, parity kept.
				extra -= (2 + slotOpen) >> 1
			}
			t1 := host.ExtLow(av, bv, 2)
			t2 := host.ExtHigh(*st.a2Ptr, bv, 2)
			*st.w2Ptr = t1
			*st.w3Ptr = t2
			v = t1 | t2
		case stepInsPairL:
			if dual {
				extra -= slotOpen
				slotOpen ^= 1
			}
			*st.w2Ptr = host.InsHigh(av, bv, 4)
			v = host.InsLow(av, bv, 4)
		case stepInsPairW:
			if dual {
				extra -= slotOpen
				slotOpen ^= 1
			}
			*st.w2Ptr = host.InsHigh(av, bv, 2)
			v = host.InsLow(av, bv, 2)
		case stepMskPairL:
			if dual {
				extra -= slotOpen
				slotOpen ^= 1
			}
			*st.w2Ptr = host.MskHigh(av, bv, 4)
			v = host.MskLow(*st.a2Ptr, bv, 4)
		case stepMskPairW:
			if dual {
				extra -= slotOpen
				slotOpen ^= 1
			}
			*st.w2Ptr = host.MskHigh(av, bv, 2)
			v = host.MskLow(*st.a2Ptr, bv, 2)
		case stepBisPair:
			if dual {
				extra -= slotOpen
				slotOpen ^= 1
			}
			*st.w2Ptr = av | bv
			v = *st.a2Ptr | *st.b2Ptr

		case stepBeq:
			taken = av == 0
			goto condBr
		case stepBne:
			taken = av != 0
			goto condBr
		case stepBlt:
			taken = int64(av) < 0
			goto condBr
		case stepBle:
			taken = int64(av) <= 0
			goto condBr
		case stepBgt:
			taken = int64(av) > 0
			goto condBr
		case stepBge:
			taken = int64(av) >= 0
			goto condBr
		case stepBlbc:
			taken = av&1 == 0
			goto condBr
		case stepBlbs:
			taken = av&1 != 0
			goto condBr
		case stepBccX:
			taken = host.BranchTaken(st.op, av)
			goto condBr

		case stepLd1:
			ea = bv + st.disp
			slotOpen = 1
			if ea>>mem.PageShift == pgIdx {
				if pgLdTrap {
					goto memTrap
				}
				loads++
				extra += ldExtra
				*st.wPtr = uint64(pg[ea&(mem.PageSize-1)])
			} else {
				if m.Mem.AccessTrap(ea, 1, false) {
					goto memTrap
				}
				loads++
				extra += ldExtra
				*st.wPtr = uint64(m.Mem.Read8(ea))
				if p := m.Mem.PeekPage(ea); p != nil {
					pgIdx, pg = ea>>mem.PageShift, p
					pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
				}
			}
			if caches != nil {
				if l := ea >> dshift; l != dataLine {
					dataLine = l
					extra += uint64(caches.Data(ea))
				}
			}
			st = st.next
			continue

		case stepLd2:
			ea = bv + st.disp
			slotOpen = 1
			if ea&1 != 0 {
				goto memAlign
			}
			if ea>>mem.PageShift == pgIdx {
				if pgLdTrap {
					goto memTrap
				}
				loads++
				extra += ldExtra
				*st.wPtr = uint64(binary.LittleEndian.Uint16(pg[ea&(mem.PageSize-1):]))
			} else {
				if m.Mem.AccessTrap(ea, 2, false) {
					goto memTrap
				}
				loads++
				extra += ldExtra
				*st.wPtr = uint64(m.Mem.Read16(ea))
				if p := m.Mem.PeekPage(ea); p != nil {
					pgIdx, pg = ea>>mem.PageShift, p
					pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
				}
			}
			if caches != nil {
				if l := ea >> dshift; l != dataLine {
					dataLine = l
					extra += uint64(caches.Data(ea))
				}
			}
			st = st.next
			continue

		case stepLd4:
			ea = bv + st.disp
			slotOpen = 1
			if ea&3 != 0 {
				goto memAlign
			}
			if ea>>mem.PageShift == pgIdx {
				if pgLdTrap {
					goto memTrap
				}
				loads++
				extra += ldExtra
				*st.wPtr = uint64(int64(int32(binary.LittleEndian.Uint32(pg[ea&(mem.PageSize-1):]))))
			} else {
				if m.Mem.AccessTrap(ea, 4, false) {
					goto memTrap
				}
				loads++
				extra += ldExtra
				*st.wPtr = uint64(int64(int32(m.Mem.Read32(ea))))
				if p := m.Mem.PeekPage(ea); p != nil {
					pgIdx, pg = ea>>mem.PageShift, p
					pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
				}
			}
			if caches != nil {
				if l := ea >> dshift; l != dataLine {
					dataLine = l
					extra += uint64(caches.Data(ea))
				}
			}
			st = st.next
			continue

		case stepLd8:
			ea = bv + st.disp
			slotOpen = 1
			if ea&7 != 0 {
				goto memAlign
			}
			if ea>>mem.PageShift == pgIdx {
				if pgLdTrap {
					goto memTrap
				}
				loads++
				extra += ldExtra
				*st.wPtr = binary.LittleEndian.Uint64(pg[ea&(mem.PageSize-1):])
			} else {
				if m.Mem.AccessTrap(ea, 8, false) {
					goto memTrap
				}
				loads++
				extra += ldExtra
				*st.wPtr = m.Mem.Read64(ea)
				if p := m.Mem.PeekPage(ea); p != nil {
					pgIdx, pg = ea>>mem.PageShift, p
					pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
				}
			}
			if caches != nil {
				if l := ea >> dshift; l != dataLine {
					dataLine = l
					extra += uint64(caches.Data(ea))
				}
			}
			st = st.next
			continue

		case stepLdqu:
			ea = bv + st.disp
			slotOpen = 1
			{
				access := ea &^ 7
				if access>>mem.PageShift == pgIdx {
					if pgLdTrap {
						goto memTrap
					}
					loads++
					extra += ldExtra
					*st.wPtr = binary.LittleEndian.Uint64(pg[access&(mem.PageSize-1):])
				} else {
					if m.Mem.AccessTrap(access, 8, false) {
						goto memTrap
					}
					loads++
					extra += ldExtra
					*st.wPtr = m.Mem.Read64(access)
					if p := m.Mem.PeekPage(access); p != nil {
						pgIdx, pg = access>>mem.PageShift, p
						pgLdTrap, pgStTrap = m.Mem.PageTrapped(access)
					}
				}
				if caches != nil {
					if l := access >> dshift; l != dataLine {
						dataLine = l
						extra += uint64(caches.Data(access))
					}
				}
			}
			st = st.next
			continue

		case stepSt1:
			ea = bv + st.disp
			slotOpen = 1
			if ea>>mem.PageShift == pgIdx {
				if pgStTrap {
					goto memTrap
				}
				stores++
				pg[ea&(mem.PageSize-1)] = byte(av)
			} else {
				if m.Mem.AccessTrap(ea, 1, true) {
					goto memTrap
				}
				stores++
				m.Mem.Write8(ea, byte(av))
				if p := m.Mem.PeekPage(ea); p != nil {
					pgIdx, pg = ea>>mem.PageShift, p
					pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
				}
			}
			if caches != nil {
				if l := ea >> dshift; l != dataLine {
					dataLine = l
					extra += uint64(caches.Data(ea))
				}
			}
			st = st.next
			continue

		case stepSt2:
			ea = bv + st.disp
			slotOpen = 1
			if ea&1 != 0 {
				goto memAlign
			}
			if ea>>mem.PageShift == pgIdx {
				if pgStTrap {
					goto memTrap
				}
				stores++
				binary.LittleEndian.PutUint16(pg[ea&(mem.PageSize-1):], uint16(av))
			} else {
				if m.Mem.AccessTrap(ea, 2, true) {
					goto memTrap
				}
				stores++
				m.Mem.Write16(ea, uint16(av))
				if p := m.Mem.PeekPage(ea); p != nil {
					pgIdx, pg = ea>>mem.PageShift, p
					pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
				}
			}
			if caches != nil {
				if l := ea >> dshift; l != dataLine {
					dataLine = l
					extra += uint64(caches.Data(ea))
				}
			}
			st = st.next
			continue

		case stepSt4:
			ea = bv + st.disp
			slotOpen = 1
			if ea&3 != 0 {
				goto memAlign
			}
			if ea>>mem.PageShift == pgIdx {
				if pgStTrap {
					goto memTrap
				}
				stores++
				binary.LittleEndian.PutUint32(pg[ea&(mem.PageSize-1):], uint32(av))
			} else {
				if m.Mem.AccessTrap(ea, 4, true) {
					goto memTrap
				}
				stores++
				m.Mem.Write32(ea, uint32(av))
				if p := m.Mem.PeekPage(ea); p != nil {
					pgIdx, pg = ea>>mem.PageShift, p
					pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
				}
			}
			if caches != nil {
				if l := ea >> dshift; l != dataLine {
					dataLine = l
					extra += uint64(caches.Data(ea))
				}
			}
			st = st.next
			continue

		case stepSt8:
			ea = bv + st.disp
			slotOpen = 1
			if ea&7 != 0 {
				goto memAlign
			}
			if ea>>mem.PageShift == pgIdx {
				if pgStTrap {
					goto memTrap
				}
				stores++
				binary.LittleEndian.PutUint64(pg[ea&(mem.PageSize-1):], av)
			} else {
				if m.Mem.AccessTrap(ea, 8, true) {
					goto memTrap
				}
				stores++
				m.Mem.Write64(ea, av)
				if p := m.Mem.PeekPage(ea); p != nil {
					pgIdx, pg = ea>>mem.PageShift, p
					pgLdTrap, pgStTrap = m.Mem.PageTrapped(ea)
				}
			}
			if caches != nil {
				if l := ea >> dshift; l != dataLine {
					dataLine = l
					extra += uint64(caches.Data(ea))
				}
			}
			st = st.next
			continue

		case stepStqu:
			ea = bv + st.disp
			slotOpen = 1
			{
				access := ea &^ 7
				if access>>mem.PageShift == pgIdx {
					if pgStTrap {
						goto memTrap
					}
					stores++
					binary.LittleEndian.PutUint64(pg[access&(mem.PageSize-1):], av)
				} else {
					if m.Mem.AccessTrap(access, 8, true) {
						goto memTrap
					}
					stores++
					m.Mem.Write64(access, av)
					if p := m.Mem.PeekPage(access); p != nil {
						pgIdx, pg = access>>mem.PageShift, p
						pgLdTrap, pgStTrap = m.Mem.PageTrapped(access)
					}
				}
				if caches != nil {
					if l := access >> dshift; l != dataLine {
						dataLine = l
						extra += uint64(caches.Data(access))
					}
				}
			}
			st = st.next
			continue

		case stepMisLd:
			// Fused misalignment-safe load (see fuseMegaLd). Constituents
			// run in program order with per-access trap checks, so a
			// fault mid-idiom delivers precisely: earlier register
			// writes are visible, the faulting PC is the interior
			// constituent's, and the unretired remainder is handed back
			// at megaTrap. Interior PCs are not in the trace LUT, so the
			// post-fault resume runs the rest of the idiom generically.
			{
				ax := st.aux
				sz := int(st.lit)
				eaLo := bv + st.disp
				eaHi := eaLo + uint64(sz) - 1
				slotOpen = 1
				// k0: ldq_u low quadword
				var lo uint64
				if access := eaLo &^ 7; access>>mem.PageShift == pgIdx {
					if pgLdTrap {
						trapK, trapPC, trapInst, ea = 0, st.pc, st.inst, eaLo
						goto megaTrap
					}
					loads++
					extra += ldExtra
					lo = binary.LittleEndian.Uint64(pg[access&(mem.PageSize-1):])
					if caches != nil {
						if l := access >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(access))
						}
					}
				} else {
					if m.Mem.AccessTrap(access, 8, false) {
						trapK, trapPC, trapInst, ea = 0, st.pc, st.inst, eaLo
						goto megaTrap
					}
					loads++
					extra += ldExtra
					lo = m.Mem.Read64(access)
					if p := m.Mem.PeekPage(access); p != nil {
						pgIdx, pg = access>>mem.PageShift, p
						pgLdTrap, pgStTrap = m.Mem.PageTrapped(access)
					}
					if caches != nil {
						if l := access >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(access))
						}
					}
				}
				*st.aPtr = lo
				if ax.crossK == 1 {
					curLineID = (st.pc + 1*host.InstBytes) >> ilineShift
					if caches != nil {
						extra += uint64(caches.Fetch(st.pc + 1*host.InstBytes))
					}
				}
				// k1: ldq_u high quadword
				var hi uint64
				if access := eaHi &^ 7; access>>mem.PageShift == pgIdx {
					if pgLdTrap {
						trapK, trapPC, trapInst, ea = 1, st.pc+1*host.InstBytes, ax.instLdHi, eaHi
						goto megaTrap
					}
					loads++
					extra += ldExtra
					hi = binary.LittleEndian.Uint64(pg[access&(mem.PageSize-1):])
					if caches != nil {
						if l := access >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(access))
						}
					}
				} else {
					if m.Mem.AccessTrap(access, 8, false) {
						trapK, trapPC, trapInst, ea = 1, st.pc+1*host.InstBytes, ax.instLdHi, eaHi
						goto megaTrap
					}
					loads++
					extra += ldExtra
					hi = m.Mem.Read64(access)
					if p := m.Mem.PeekPage(access); p != nil {
						pgIdx, pg = access>>mem.PageShift, p
						pgLdTrap, pgStTrap = m.Mem.PageTrapped(access)
					}
					if caches != nil {
						if l := access >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(access))
						}
					}
				}
				*st.a2Ptr = hi
				if ax.crossK >= 2 {
					cp := st.pc + uint64(ax.crossK)*host.InstBytes
					curLineID = cp >> ilineShift
					if caches != nil {
						extra += uint64(caches.Fetch(cp))
					}
				}
				// k2..: lda; extXl; extXh; bis [; addl] — pure operate
				// work, closed-form dual-issue from the post-load slot
				// state (always open after a memory op).
				if dual {
					if ax.sext {
						extra -= 3
					} else {
						extra -= 2
					}
				}
				if ax.sext {
					slotOpen = 0
				} else {
					slotOpen = 1
				}
				*st.b2Ptr = eaLo
				e1 := host.ExtLow(lo, eaLo, sz)
				*st.w2Ptr = e1
				e2 := host.ExtHigh(hi, eaLo, sz)
				*st.w3Ptr = e2
				v := e2 | e1
				if ax.sext {
					v = uint64(int64(int32(v)))
				}
				*st.wPtr = v
			}
			st = st.next
			continue

		case stepMisSt:
			// Fused misalignment-safe store (see fuseMegaSt): read-merge-
			// write of the two covering quadwords, high stored first.
			// Same precise-fault regime as stepMisLd; a fault on the
			// second stq_u leaves the first store architecturally done.
			{
				ax := st.aux
				sz := int(st.lit)
				dv := av // aPtr = stored value
				eaLo := bv + st.disp
				eaHi := eaLo + uint64(sz) - 1
				accLo := eaLo &^ 7
				accHi := eaHi &^ 7
				// k0: lda (operate: one dual toggle, state then forced
				// open by the ldq_u pair)
				if dual {
					extra -= slotOpen
				}
				slotOpen = 1
				*st.b2Ptr = eaLo
				if ax.crossK == 1 {
					curLineID = (st.pc + 1*host.InstBytes) >> ilineShift
					if caches != nil {
						extra += uint64(caches.Fetch(st.pc + 1*host.InstBytes))
					}
				}
				// k1: ldq_u high quadword
				var hi uint64
				if accHi>>mem.PageShift == pgIdx {
					if pgLdTrap {
						trapK, trapPC, trapInst, ea = 1, st.pc+1*host.InstBytes, ax.instLdHi, eaHi
						goto megaTrap
					}
					loads++
					extra += ldExtra
					hi = binary.LittleEndian.Uint64(pg[accHi&(mem.PageSize-1):])
					if caches != nil {
						if l := accHi >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(accHi))
						}
					}
				} else {
					if m.Mem.AccessTrap(accHi, 8, false) {
						trapK, trapPC, trapInst, ea = 1, st.pc+1*host.InstBytes, ax.instLdHi, eaHi
						goto megaTrap
					}
					loads++
					extra += ldExtra
					hi = m.Mem.Read64(accHi)
					if p := m.Mem.PeekPage(accHi); p != nil {
						pgIdx, pg = accHi>>mem.PageShift, p
						pgLdTrap, pgStTrap = m.Mem.PageTrapped(accHi)
					}
					if caches != nil {
						if l := accHi >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(accHi))
						}
					}
				}
				*ax.hiT = hi
				if ax.crossK == 2 {
					curLineID = (st.pc + 2*host.InstBytes) >> ilineShift
					if caches != nil {
						extra += uint64(caches.Fetch(st.pc + 2*host.InstBytes))
					}
				}
				// k2: ldq_u low quadword
				var lo uint64
				if accLo>>mem.PageShift == pgIdx {
					if pgLdTrap {
						trapK, trapPC, trapInst, ea = 2, st.pc+2*host.InstBytes, ax.instLdLo, eaLo
						goto megaTrap
					}
					loads++
					extra += ldExtra
					lo = binary.LittleEndian.Uint64(pg[accLo&(mem.PageSize-1):])
					if caches != nil {
						if l := accLo >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(accLo))
						}
					}
				} else {
					if m.Mem.AccessTrap(accLo, 8, false) {
						trapK, trapPC, trapInst, ea = 2, st.pc+2*host.InstBytes, ax.instLdLo, eaLo
						goto megaTrap
					}
					loads++
					extra += ldExtra
					lo = m.Mem.Read64(accLo)
					if p := m.Mem.PeekPage(accLo); p != nil {
						pgIdx, pg = accLo>>mem.PageShift, p
						pgLdTrap, pgStTrap = m.Mem.PageTrapped(accLo)
					}
					if caches != nil {
						if l := accLo >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(accLo))
						}
					}
				}
				*ax.loT = lo
				if k := ax.crossK; k >= 3 && k <= 9 {
					cp := st.pc + uint64(k)*host.InstBytes
					curLineID = cp >> ilineShift
					if caches != nil {
						extra += uint64(caches.Fetch(cp))
					}
				}
				// k3..k8: ins/msk/bis merge — closed-form dual-issue from
				// the post-load open slot (6 operate ops: 3 pairs).
				if dual {
					extra -= 3
				}
				slotOpen = 1
				iA := host.InsHigh(dv, eaLo, sz)
				*st.w2Ptr = iA
				iB := host.InsLow(dv, eaLo, sz)
				*st.w3Ptr = iB
				mh := host.MskHigh(hi, eaLo, sz)
				*ax.mskHw = mh
				ml := host.MskLow(lo, eaLo, sz)
				*ax.mskLw = ml
				hs := mh | iA
				*ax.hiS = hs
				ls := ml | iB
				*ax.loS = ls
				// k9: stq_u high quadword
				if accHi>>mem.PageShift == pgIdx {
					if pgStTrap {
						trapK, trapPC, trapInst, ea = 9, st.pc+9*host.InstBytes, ax.instStHi, eaHi
						goto megaTrap
					}
					stores++
					binary.LittleEndian.PutUint64(pg[accHi&(mem.PageSize-1):], hs)
					if caches != nil {
						if l := accHi >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(accHi))
						}
					}
				} else {
					if m.Mem.AccessTrap(accHi, 8, true) {
						trapK, trapPC, trapInst, ea = 9, st.pc+9*host.InstBytes, ax.instStHi, eaHi
						goto megaTrap
					}
					stores++
					m.Mem.Write64(accHi, hs)
					if p := m.Mem.PeekPage(accHi); p != nil {
						pgIdx, pg = accHi>>mem.PageShift, p
						pgLdTrap, pgStTrap = m.Mem.PageTrapped(accHi)
					}
					if caches != nil {
						if l := accHi >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(accHi))
						}
					}
				}
				if ax.crossK == 10 {
					curLineID = (st.pc + 10*host.InstBytes) >> ilineShift
					if caches != nil {
						extra += uint64(caches.Fetch(st.pc + 10*host.InstBytes))
					}
				}
				// k10: stq_u low quadword
				if accLo>>mem.PageShift == pgIdx {
					if pgStTrap {
						trapK, trapPC, trapInst, ea = 10, st.pc+10*host.InstBytes, ax.instStLo, eaLo
						goto megaTrap
					}
					stores++
					binary.LittleEndian.PutUint64(pg[accLo&(mem.PageSize-1):], ls)
					if caches != nil {
						if l := accLo >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(accLo))
						}
					}
				} else {
					if m.Mem.AccessTrap(accLo, 8, true) {
						trapK, trapPC, trapInst, ea = 10, st.pc+10*host.InstBytes, ax.instStLo, eaLo
						goto megaTrap
					}
					stores++
					m.Mem.Write64(accLo, ls)
					if p := m.Mem.PeekPage(accLo); p != nil {
						pgIdx, pg = accLo>>mem.PageShift, p
						pgLdTrap, pgStTrap = m.Mem.PageTrapped(accLo)
					}
					if caches != nil {
						if l := accLo >> dshift; l != dataLine {
							dataLine = l
							extra += uint64(caches.Data(accLo))
						}
					}
				}
			}
			st = st.next
			continue

		case stepMull:
			*st.wPtr = uint64(int64(int32(av * bv)))
			extra += p.MulExtraCycles
			slotOpen = 0
			st = st.next
			continue

		case stepMulq:
			*st.wPtr = av * bv
			extra += p.MulExtraCycles
			slotOpen = 0
			st = st.next
			continue

		case stepBr:
			if st.uncond && dual {
				extra -= slotOpen
				slotOpen ^= 1
			} else {
				slotOpen = 0
			}
			*st.wPtr = st.pc + host.InstBytes
			if !st.uncond {
				extra += tbc
			}
			if st.taken != nil {
				st = st.taken
				continue
			}
			if l := m.followLink(st); l != nil {
				st = l
				continue
			}
			m.traceExit(st.exitPC, insts, extra, loads, stores, entryInsts, n0, curLineID, slotOpen != 0, used)
			return 0, 0, false

		case stepJmp:
			slotOpen = 0
			target := bv &^ 3
			*st.wPtr = st.pc + host.InstBytes
			extra += tbc
			// Dynamic target: no memoized link, but a direct LUT probe
			// still keeps indirect transfers inside the tier.
			if ent, ok := m.traces[target]; ok {
				m.tstats.ChainFollows++
				st = &ent.tr.steps[ent.idx]
				continue
			}
			m.traceExit(target, insts, extra, loads, stores, entryInsts, n0, curLineID, slotOpen != 0, used)
			return 0, 0, false

		case stepBrk:
			m.counters.Brks++
			extra += p.BrkCycles
			slotOpen = 0
			m.traceExit(st.pc+host.InstBytes, insts, extra, loads, stores, entryInsts, n0, curLineID, slotOpen != 0, used)
			if st.payload == HaltService {
				return StopHalt, st.payload, true
			}
			return StopBrk, st.payload, true

		default:
			panic(fmt.Sprintf("machine: corrupt trace step kind %d at %#x", st.kind, st.pc))
		}

		// Shared operate-format tail: write back and toggle the dual-issue
		// slot. Only the v-computing cases above fall through to here.
		*st.wPtr = v
		if dual {
			extra -= slotOpen
			slotOpen ^= 1
		}
		st = st.next
		continue

	condBr:
		slotOpen = 0
		if taken {
			extra += tbc
			if st.taken != nil {
				st = st.taken
				continue
			}
			if l := m.followLink(st); l != nil {
				st = l
				continue
			}
			m.traceExit(st.exitPC, insts, extra, loads, stores, entryInsts, n0, curLineID, slotOpen != 0, used)
			return 0, 0, false
		}
		st = st.next
	}

	// Cold trap exits, reached by goto from the memory cases; ea holds the
	// faulting effective address.
memAlign:
	m.traceExit(st.pc, insts, extra, loads, stores, entryInsts, n0, curLineID, slotOpen != 0, used)
	m.misalignTrap(st.inst, ea)
	return 0, 0, false // handler set the resume PC; re-probe
memTrap:
	m.traceExit(st.pc, insts, extra, loads, stores, entryInsts, n0, curLineID, slotOpen != 0, used)
	m.accessTrap(st.inst, ea)
	return 0, 0, false
megaTrap:
	// A constituent of an MDA mega-step faulted. Constituents before
	// trapK retired (their register/memory effects are visible, and are
	// reflected in loads/stores/extra already); the faulting instruction
	// itself is charged like every other trapping access, and the
	// remainder of the idiom is handed back unretired.
	insts -= uint64(st.n) - trapK - 1
	m.traceExit(trapPC, insts, extra, loads, stores, entryInsts, n0, curLineID, slotOpen != 0, used)
	m.accessTrap(trapInst, ea)
	return 0, 0, false
}

func b2iTr(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// traceExit writes the executor's hoisted state back to the machine with
// the PC at resume. Cycles are derived here: the executor tracks only the
// charges above the 1-cycle/instruction baseline. Value parameters keep
// execTrace's hot locals out of memory; this runs only on trace exit,
// never per step.
func (m *Machine) traceExit(pc, insts, extra, loads, stores, entryInsts, n0, curLineID uint64, slotOpen bool, used *uint64) {
	delta := insts - entryInsts
	*used = n0 + delta
	m.pc = pc
	m.counters.Insts = insts
	m.counters.Cycles += delta + extra
	m.counters.Loads, m.counters.Stores = loads, stores
	m.slotOpen = slotOpen
	m.tstats.TracedInsts += delta
	if curLineID != noLineID {
		// Generic execution would have this line decoded; materialize it
		// (decode slots refill lazily, at no simulated cost) so the generic
		// loop resumes without a spurious fetch charge.
		m.curLine, m.curLineID = m.line(curLineID), curLineID
	}
}

// followLink resolves st's static side-exit target to a step of a live
// trace, memoizing the result. A failed probe is cached against the
// current trace-table version so steady-state exits into untraced code
// cost one comparison, not a map probe.
func (m *Machine) followLink(st *traceStep) *traceStep {
	if st.link != nil {
		m.tstats.ChainFollows++
		return st.link
	}
	if st.linkVer == m.traceVer {
		return nil
	}
	st.linkVer = m.traceVer
	if ent, ok := m.traces[st.exitPC]; ok {
		st.link = &ent.tr.steps[ent.idx]
		st.linkTr = ent.tr
		ent.tr.incoming = append(ent.tr.incoming, st)
		m.tstats.ChainFollows++
		return st.link
	}
	return nil
}

// invalidateTraces drops every trace overlapping [addr, addr+size) and
// severs chain links into it. Called from invalidate() under WriteCode/
// Patch; the range filter keeps the common new-code case free.
func (m *Machine) invalidateTraces(addr, size uint64) {
	if len(m.traceList) == 0 || addr >= m.traceHi || addr+size <= m.traceLo {
		return
	}
	// Span overlap against each live trace, not a per-PC LUT probe:
	// super-steps register only their head PC, so a write landing on an
	// interior constituent would slip past the map.
	for _, t := range m.traceList {
		if addr < t.end && addr+size > t.start {
			m.dropTrace(t)
		}
	}
}

// dropTrace removes t from the lookup table and severs every chain link
// into it. Links *from* t die with it; back-references to t's steps held
// by other traces' incoming lists become harmless no-ops.
func (m *Machine) dropTrace(t *trace) {
	for i := range t.steps {
		st := &t.steps[i]
		if st.kind != stepExitFall {
			delete(m.traces, st.pc)
		}
	}
	for _, in := range t.incoming {
		in.link, in.linkTr = nil, nil
		in.linkVer = 0 // below any live version: forces a re-probe
	}
	t.incoming = nil
	delete(m.traceList, t.id)
	m.tstats.Invalidations++
}

// dropAllTraces drops every live trace (IMB / code-cache flush).
func (m *Machine) dropAllTraces() {
	if len(m.traceList) == 0 {
		return
	}
	m.tstats.Invalidations += uint64(len(m.traceList))
	clear(m.traces)
	clear(m.traceList)
	m.traceLo, m.traceHi = ^uint64(0), 0
	m.traceVer++
}

// clearTraceState restores the just-built (disabled) trace tier on Reset.
func (m *Machine) clearTraceState() {
	m.traces, m.traceList = nil, nil
	m.traceLo, m.traceHi = ^uint64(0), 0
	m.traceSeq, m.traceVer = 0, 0
	m.tstats = TraceStats{}
	m.traceZero, m.traceSink = 0, 0
}

// TraceLink is one resolved chain link, for diagnostics and lint.
type TraceLink struct {
	FromPC uint64 // the exiting step
	ToPC   uint64 // the target step in another (or the same) trace
}

// TraceInfo describes one live trace, for dump output and the
// translation lint.
type TraceInfo struct {
	ID         uint64
	Start, End uint64
	Steps      int      // real instructions (synthetic exit excluded)
	Exits      []uint64 // static side-exit target host PCs, sorted
	Links      []TraceLink
}

// TraceInfos returns every live trace, ordered by start address.
func (m *Machine) TraceInfos() []TraceInfo {
	infos := make([]TraceInfo, 0, len(m.traceList))
	for _, t := range m.traceList {
		info := TraceInfo{ID: t.id, Start: t.start, End: t.end, Steps: len(t.steps) - 1}
		seen := map[uint64]bool{}
		for i := range t.steps {
			st := &t.steps[i]
			if st.kind != stepExitFall && st.taken == nil && st.exitPC != 0 && !seen[st.exitPC] {
				seen[st.exitPC] = true
				info.Exits = append(info.Exits, st.exitPC)
			}
			if st.link != nil {
				info.Links = append(info.Links, TraceLink{FromPC: st.pc, ToPC: st.link.pc})
			}
		}
		sort.Slice(info.Exits, func(i, j int) bool { return info.Exits[i] < info.Exits[j] })
		sort.Slice(info.Links, func(i, j int) bool { return info.Links[i].FromPC < info.Links[j].FromPC })
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Start < infos[j].Start })
	return infos
}

// CheckTraceCoherence verifies the trace side tables against each other:
// the PC lookup table and the live-trace list must agree exactly, every
// step's threaded successor pointers must match its recorded indices, and
// every memoized chain link must land on a live, correctly-registered
// step of its recorded target trace. The engine's CheckInvariants calls
// this.
func (m *Machine) CheckTraceCoherence() error {
	for pc, ent := range m.traces {
		if m.traceList[ent.tr.id] != ent.tr {
			return fmt.Errorf("machine: trace LUT %#x points at dropped trace %d", pc, ent.tr.id)
		}
		if int(ent.idx) >= len(ent.tr.steps)-1 || ent.tr.steps[ent.idx].pc != pc {
			return fmt.Errorf("machine: trace LUT %#x maps to wrong step of trace %d", pc, ent.tr.id)
		}
	}
	for _, t := range m.traceList {
		for i := 0; i < len(t.steps)-1; i++ {
			st := &t.steps[i]
			if ent, ok := m.traces[st.pc]; !ok || ent.tr != t || int(ent.idx) != i {
				return fmt.Errorf("machine: trace %d step %#x missing from LUT", t.id, st.pc)
			}
			if st.next != &t.steps[i+1] {
				return fmt.Errorf("machine: trace %d step %#x successor pointer unthreaded", t.id, st.pc)
			}
			if st.idx != uint32(i) {
				return fmt.Errorf("machine: trace %d step %#x self-index %d != %d", t.id, st.pc, st.idx, i)
			}
			if st.n == 0 || t.steps[i+1].pc != st.pc+uint64(st.n)*host.InstBytes {
				return fmt.Errorf("machine: trace %d step %#x (n=%d) not PC-contiguous with successor %#x", t.id, st.pc, st.n, t.steps[i+1].pc)
			}
			if (st.taken != nil) != (st.takenIdx >= 0) || (st.taken != nil && st.taken != &t.steps[st.takenIdx]) {
				return fmt.Errorf("machine: trace %d step %#x taken pointer mismatches index %d", t.id, st.pc, st.takenIdx)
			}
			if st.kind == stepMisLd || st.kind == stepMisSt {
				if st.aux == nil {
					return fmt.Errorf("machine: trace %d mega-step %#x missing aux table", t.id, st.pc)
				}
				if st.run != st.n {
					return fmt.Errorf("machine: trace %d mega-step %#x joined a run (run=%d n=%d)", t.id, st.pc, st.run, st.n)
				}
			} else if st.aux != nil {
				return fmt.Errorf("machine: trace %d non-mega step %#x carries an aux table", t.id, st.pc)
			}
		}
		for i := range t.steps {
			st := &t.steps[i]
			if st.link == nil {
				continue
			}
			lt := st.linkTr
			if lt == nil || m.traceList[lt.id] != lt {
				return fmt.Errorf("machine: trace %d holds a chain link into a dropped trace", t.id)
			}
			if st.link.pc != st.exitPC {
				return fmt.Errorf("machine: trace %d chain link %#x→%#x mistargeted", t.id, st.pc, st.exitPC)
			}
			if ent, ok := m.traces[st.exitPC]; !ok || ent.tr != lt || &lt.steps[ent.idx] != st.link {
				return fmt.Errorf("machine: trace %d chain link %#x→%#x not registered in LUT", t.id, st.pc, st.exitPC)
			}
		}
	}
	return nil
}

// DumpTraceSteps prints every live trace's step sequence (kind, pc, run
// lengths) to stdout. Debug aid for trace formation work; not used by the
// simulator.
func DumpTraceSteps(m *Machine) {
	for _, t := range m.traceList {
		fmt.Printf("trace %d [%#x,%#x):\n", t.id, t.start, t.end)
		for i := range t.steps {
			st := &t.steps[i]
			fmt.Printf("  %3d pc=%#x kind=%2d n=%d run=%2d aluRun=%2d op=%v\n", i, st.pc, st.kind, st.n, st.run, st.aluRun, st.op)
		}
	}
}
