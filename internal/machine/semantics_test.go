package machine

import (
	"math/rand"
	"testing"

	"mdabt/internal/host"
	"mdabt/internal/mem"
)

// TestOperateSemanticsOnMachine cross-checks every operate-format opcode as
// executed by the machine against the pure host.EvalOp semantics, for both
// register and literal operand forms, over random values.
func TestOperateSemanticsOnMachine(t *testing.T) {
	ops := []host.Op{
		host.ADDL, host.SUBL, host.ADDQ, host.SUBQ, host.MULL, host.MULQ,
		host.CMPEQ, host.CMPLT, host.CMPLE, host.CMPULT, host.CMPULE,
		host.AND, host.BIC, host.BIS, host.ORNOT, host.XOR, host.EQV,
		host.SLL, host.SRL, host.SRA,
		host.EXTBL, host.EXTWL, host.EXTLL, host.EXTQL,
		host.EXTWH, host.EXTLH, host.EXTQH,
		host.INSBL, host.INSWL, host.INSLL, host.INSQL,
		host.INSWH, host.INSLH, host.INSQH,
		host.MSKBL, host.MSKWL, host.MSKLL, host.MSKQL,
		host.MSKWH, host.MSKLH, host.MSKQH,
	}
	rnd := rand.New(rand.NewSource(33))
	p := DefaultParams()
	p.UseCaches = false
	for _, op := range ops {
		for trial := 0; trial < 40; trial++ {
			av, bv := rnd.Uint64(), rnd.Uint64()
			lit := uint8(rnd.Uint32())

			m := New(mem.New(), p)
			m.SetReg(host.R1, av)
			m.SetReg(host.R2, bv)
			a := host.NewAsm(0x1000)
			a.Opr(op, host.R1, host.R2, host.R3) // register form
			a.OprLit(op, host.R1, lit, host.R4)  // literal form
			a.Opr(op, host.R1, host.R2, host.R1) // dst aliases src
			a.Brk(HaltService)
			words, err := a.Finish()
			if err != nil {
				t.Fatal(err)
			}
			m.WriteCode(0x1000, words)
			m.SetPC(0x1000)
			if _, _, err := m.Run(100); err != nil {
				t.Fatal(err)
			}
			if got, want := m.Reg(host.R3), host.EvalOp(op, av, bv); got != want {
				t.Fatalf("%v(%#x,%#x) machine=%#x eval=%#x", op, av, bv, got, want)
			}
			if got, want := m.Reg(host.R4), host.EvalOp(op, av, uint64(lit)); got != want {
				t.Fatalf("%v(%#x,#%d) machine=%#x eval=%#x", op, av, lit, got, want)
			}
			if got, want := m.Reg(host.R1), host.EvalOp(op, av, bv); got != want {
				t.Fatalf("%v aliased dst machine=%#x eval=%#x", op, got, want)
			}
		}
	}
}

// TestBranchSemanticsOnMachine checks every conditional branch against
// host.BranchTaken for boundary register values.
func TestBranchSemanticsOnMachine(t *testing.T) {
	values := []uint64{0, 1, 2, 3, ^uint64(0), 1 << 63, 1<<63 - 1, 0x8000000000000001}
	branches := []host.Op{host.BEQ, host.BNE, host.BLT, host.BLE, host.BGT, host.BGE, host.BLBC, host.BLBS}
	p := DefaultParams()
	p.UseCaches = false
	for _, op := range branches {
		for _, v := range values {
			m := New(mem.New(), p)
			m.SetReg(host.R1, v)
			a := host.NewAsm(0x1000)
			a.Br(op, host.R1, "taken")
			a.MovImm(host.R2, 1) // fallthrough marker
			a.Brk(HaltService)
			a.Label("taken")
			a.MovImm(host.R2, 2)
			a.Brk(HaltService)
			words, err := a.Finish()
			if err != nil {
				t.Fatal(err)
			}
			m.WriteCode(0x1000, words)
			m.SetPC(0x1000)
			if _, _, err := m.Run(100); err != nil {
				t.Fatal(err)
			}
			want := uint64(1)
			if host.BranchTaken(op, v) {
				want = 2
			}
			if got := m.Reg(host.R2); got != want {
				t.Fatalf("%v with %#x: path %d, want %d", op, v, got, want)
			}
		}
	}
}

// TestBSRAndRETLinkage checks call/return linkage registers.
func TestBSRAndRETLinkage(t *testing.T) {
	p := DefaultParams()
	p.UseCaches = false
	m := New(mem.New(), p)
	a := host.NewAsm(0x1000)
	a.Br(host.BSR, host.R26, "sub")
	a.MovImm(host.R1, 0x11)
	a.Brk(HaltService)
	a.Label("sub")
	a.Mov(host.R26, host.R9) // capture return address
	a.Jmp(host.RET, host.Zero, host.R26)
	words, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m.WriteCode(0x1000, words)
	m.SetPC(0x1000)
	if _, _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Reg(host.R1) != 0x11 {
		t.Fatal("did not return to caller")
	}
	if got := m.Reg(host.R9); got != 0x1004 {
		t.Fatalf("return address = %#x, want 0x1004", got)
	}
}

// TestJSRWritesLink checks that JSR records the successor PC.
func TestJSRWritesLink(t *testing.T) {
	p := DefaultParams()
	p.UseCaches = false
	m := New(mem.New(), p)
	m.SetReg(host.R5, 0x2000)
	a := host.NewAsm(0x1000)
	a.Jmp(host.JSR, host.R26, host.R5)
	words, _ := a.Finish()
	m.WriteCode(0x1000, words)
	m.Mem.Write32(0x2000, host.MustEncode(host.Inst{Op: host.BRKBT}))
	m.SetPC(0x1000)
	if _, _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(host.R26); got != 0x1004 {
		t.Fatalf("jsr link = %#x, want 0x1004", got)
	}
	// Low target bits are cleared (as on Alpha).
	m2 := New(mem.New(), p)
	m2.SetReg(host.R5, 0x2003)
	m2.WriteCode(0x1000, words)
	m2.Mem.Write32(0x2000, host.MustEncode(host.Inst{Op: host.BRKBT}))
	m2.SetPC(0x1000)
	if _, _, err := m2.Run(10); err != nil {
		t.Fatal(err)
	}
	if m2.PC() != 0x2004 {
		t.Fatalf("jmp target with low bits: pc = %#x, want 0x2004", m2.PC())
	}
}

// TestDualIssuePairing verifies the issue model: two dependent ALU ops cost
// one cycle when pairing is on, two when off.
func TestDualIssuePairing(t *testing.T) {
	run := func(dual bool) uint64 {
		p := DefaultParams()
		p.UseCaches = false
		p.DualIssueALU = dual
		m := New(mem.New(), p)
		a := host.NewAsm(0x1000)
		for i := 0; i < 100; i++ {
			a.OprLit(host.ADDQ, host.R1, 1, host.R1)
		}
		a.Brk(HaltService)
		words, _ := a.Finish()
		m.WriteCode(0x1000, words)
		m.SetPC(0x1000)
		if _, _, err := m.Run(1000); err != nil {
			t.Fatal(err)
		}
		return m.Counters().Cycles
	}
	paired, unpaired := run(true), run(false)
	if unpaired <= paired {
		t.Fatalf("dual-issue off (%d cycles) not slower than on (%d)", unpaired, paired)
	}
	// 100 ALU ops: ~50 cycles paired vs ~100 unpaired (plus brk overhead).
	if diff := unpaired - paired; diff < 40 || diff > 60 {
		t.Fatalf("pairing saved %d cycles, want ~50", diff)
	}
}

// TestTrapChargesAndHandlerResume verifies trap accounting and that a
// handler-chosen resume PC is honored.
func TestTrapChargesAndHandlerResume(t *testing.T) {
	p := DefaultParams()
	p.UseCaches = false
	m := New(mem.New(), p)
	var handled int
	m.SetMisalignHandler(func(mm *Machine, pc uint64, inst host.Inst, ea uint64) uint64 {
		handled++
		mm.EmulateAccess(inst, ea)
		return pc + 2*host.InstBytes // skip the marker instruction after the load
	})
	m.Mem.Write64(0x2000, 0xAABBCCDD11223344)
	a := host.NewAsm(0x1000)
	a.MovImm(host.R2, 0x2001)
	a.Mem(host.LDL, host.R1, 0, host.R2) // misaligned
	a.MovImm(host.R3, 99)                // skipped by the handler
	a.Brk(HaltService)
	words, _ := a.Finish()
	m.WriteCode(0x1000, words)
	m.SetPC(0x1000)
	if _, _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if handled != 1 {
		t.Fatalf("handler ran %d times", handled)
	}
	if m.Reg(host.R3) == 99 {
		t.Fatal("resume PC not honored (marker executed)")
	}
	// Bytes at 0x2001..0x2004 little-endian: 0x33, 0x22, 0x11, 0xDD.
	if got := uint32(m.Reg(host.R1)); got != 0xDD112233 {
		t.Fatalf("fixed-up value %#x, want 0xDD112233", got)
	}
	c := m.Counters()
	if c.TrapCycles != p.MisalignTrapCycles {
		t.Fatalf("TrapCycles = %d, want %d", c.TrapCycles, p.MisalignTrapCycles)
	}
}

// TestHandlerMisalignedResumePanics documents the contract that handlers
// must return instruction-aligned PCs.
func TestHandlerMisalignedResumePanics(t *testing.T) {
	p := DefaultParams()
	p.UseCaches = false
	m := New(mem.New(), p)
	m.SetMisalignHandler(func(mm *Machine, pc uint64, inst host.Inst, ea uint64) uint64 {
		return pc + 1 // bogus
	})
	a := host.NewAsm(0x1000)
	a.MovImm(host.R2, 0x2001)
	a.Mem(host.LDL, host.R1, 0, host.R2)
	words, _ := a.Finish()
	m.WriteCode(0x1000, words)
	m.SetPC(0x1000)
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned resume PC did not panic")
		}
	}()
	_, _, _ = m.Run(100)
}

// TestWriteCodePanicsOnMisalignment documents the WriteCode contract.
func TestWriteCodePanicsOnMisalignment(t *testing.T) {
	m := New(mem.New(), DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned WriteCode did not panic")
		}
	}()
	m.WriteCode(0x1002, []uint32{0})
}

// TestAddCyclesAccounting checks the runtime-cost charging helpers.
func TestAddCyclesAccounting(t *testing.T) {
	m := New(mem.New(), DefaultParams())
	m.AddCycles(100)
	m.AddTrapCycles(50)
	c := m.Counters()
	if c.Cycles != 150 || c.TrapCycles != 50 {
		t.Fatalf("cycles=%d trap=%d, want 150/50", c.Cycles, c.TrapCycles)
	}
}
