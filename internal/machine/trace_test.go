package machine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mdabt/internal/faultinject"
	"mdabt/internal/host"
	"mdabt/internal/mem"
)

// The trace tier's whole contract is bit-identical simulation: a machine
// with traces built over any subset of the code must produce exactly the
// same architectural state and Counters as the generic loop, instruction
// for instruction, including trap paths and budget exhaustion mid-trace.
// These tests enforce that contract directly at the machine level; the
// core-level golden matrix enforces it end to end.

const trDataBase = 0x100000

type trSnap struct {
	Stop    StopReason
	Payload uint32
	Err     bool
	PC      uint64
	Regs    [host.NumRegs]uint64
	C       Counters
}

func trRun(m *Machine, budget uint64) trSnap {
	stop, payload, err := m.Run(budget)
	s := trSnap{Stop: stop, Payload: payload, Err: err != nil, PC: m.PC(), C: m.Counters()}
	for r := 0; r < host.NumRegs; r++ {
		s.Regs[r] = m.Reg(host.Reg(r))
	}
	return s
}

func trSeedData(m *Machine) {
	for i := uint64(0); i < 4096; i++ {
		m.Mem.Write(trDataBase+i, (i*2654435761)>>3, 1)
	}
}

// trProgram assembles a program and returns its words.
func trProgram(t *testing.T, base uint64, build func(a *host.Asm)) []uint32 {
	t.Helper()
	a := host.NewAsm(base)
	build(a)
	words, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return words
}

// trCompare runs words on a generic machine and on trace-enabled machines
// (one trace over the whole span, and one with traces over alternating
// chunks so control crosses trace/generic boundaries both ways), asserting
// bit-identical outcomes at every budget.
func trCompare(t *testing.T, base uint64, words []uint32, budgets []uint64, caches bool, chunk int) {
	t.Helper()
	trCompareArm(t, base, words, budgets, caches, chunk, nil)
}

// trCompareArm is trCompare with a hook that arms identical extra machine
// state (e.g. page protections) on every compared machine before running.
func trCompareArm(t *testing.T, base uint64, words []uint32, budgets []uint64, caches bool, chunk int, arm func(m *Machine)) {
	t.Helper()
	for _, budget := range budgets {
		ref := newMachine(caches)
		trSeedData(ref)
		if arm != nil {
			arm(ref)
		}
		ref.WriteCode(base, words)
		ref.SetPC(base)
		want := trRun(ref, budget)

		for _, variant := range []string{"whole", "chunks"} {
			m := newMachine(caches)
			trSeedData(m)
			if arm != nil {
				arm(m)
			}
			m.WriteCode(base, words)
			m.SetPC(base)
			m.EnableTraces(true)
			switch variant {
			case "whole":
				if !m.BuildTrace(base, base+uint64(len(words))*host.InstBytes) {
					t.Fatalf("BuildTrace over whole span failed")
				}
			case "chunks":
				for start := 0; start < len(words); start += 2 * chunk {
					end := start + chunk
					if end > len(words) {
						end = len(words)
					}
					if !m.BuildTrace(base+uint64(start)*host.InstBytes, base+uint64(end)*host.InstBytes) {
						t.Fatalf("BuildTrace over chunk [%d,%d) failed", start, end)
					}
				}
			}
			got := trRun(m, budget)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("variant=%s budget=%d caches=%v:\n got %+v\nwant %+v\n(trace stats %+v)",
					variant, budget, caches, got, want, m.TraceStats())
			}
			if err := m.CheckTraceCoherence(); err != nil {
				t.Fatalf("variant=%s: coherence after run: %v", variant, err)
			}
			if variant == "whole" && budget > 10 && m.TraceStats().TracedInsts == 0 {
				t.Fatalf("whole-span trace retired no instructions (tier never engaged)")
			}
		}
	}
}

func TestTraceParityRandomPrograms(t *testing.T) {
	aluOps := []host.Op{
		host.ADDL, host.ADDQ, host.SUBL, host.SUBQ, host.CMPEQ, host.CMPLT,
		host.CMPULE, host.AND, host.BIC, host.BIS, host.ORNOT, host.XOR,
		host.EQV, host.SLL, host.SRL, host.SRA, host.EXTBL, host.EXTLH,
		host.INSWL, host.MSKQL,
	}
	memOps := []host.Op{
		host.LDBU, host.LDWU, host.LDL, host.LDQ, host.LDQU,
		host.STB, host.STW, host.STL, host.STQ, host.STQU,
	}
	condOps := []host.Op{
		host.BEQ, host.BNE, host.BLT, host.BLE, host.BGT, host.BGE,
		host.BLBC, host.BLBS,
	}
	regW := []host.Reg{host.R1, host.R2, host.R3, host.R4, host.R5, host.R6, host.R7, host.R8}
	regR := append([]host.Reg{host.R31}, regW...)

	const base = 0x1000
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(80)
		words := trProgram(t, base, func(a *host.Asm) {
			a.MovImm(host.R9, trDataBase)
			for _, r := range regW {
				a.MovImm(r, int64(rng.Uint64()>>16))
			}
			for i := 0; i < n; i++ {
				a.Label(fmt.Sprintf("L%d", i))
				switch rng.Intn(12) {
				case 0, 1, 2, 3:
					op := aluOps[rng.Intn(len(aluOps))]
					if rng.Intn(2) == 0 {
						a.OprLit(op, regR[rng.Intn(len(regR))], uint8(rng.Intn(256)), regW[rng.Intn(len(regW))])
					} else {
						a.Opr(op, regR[rng.Intn(len(regR))], regR[rng.Intn(len(regR))], regW[rng.Intn(len(regW))])
					}
				case 4:
					a.Opr(host.MULQ, regR[rng.Intn(len(regR))], regR[rng.Intn(len(regR))], regW[rng.Intn(len(regW))])
				case 5:
					// LDA/LDAH address arithmetic off the data base so
					// register values stay in the data page's neighbourhood.
					if rng.Intn(2) == 0 {
						a.Mem(host.LDA, regW[rng.Intn(len(regW))], int32(rng.Intn(128)-64), host.R9)
					} else {
						a.Mem(host.LDAH, regW[rng.Intn(len(regW))], 0, host.R31)
					}
				case 6, 7, 8, 9:
					// Memory traffic off the fixed data base: displacements
					// land aligned and misaligned, so the default-fixup
					// misalignment trap path runs under traces too.
					op := memOps[rng.Intn(len(memOps))]
					a.Mem(op, regW[rng.Intn(len(regW))], int32(rng.Intn(512)), host.R9)
				case 10:
					// Mostly-forward conditional branches; occasional backward
					// edges are budget-bounded by the comparison harness.
					var target int
					if rng.Intn(4) == 0 {
						target = rng.Intn(i + 1)
					} else {
						target = i + 1 + rng.Intn(n-i)
					}
					label := fmt.Sprintf("L%d", target)
					if target >= n {
						label = "Lend"
					}
					a.Br(condOps[rng.Intn(len(condOps))], regR[rng.Intn(len(regR))], label)
				case 11:
					target := i + 1 + rng.Intn(n-i)
					label := fmt.Sprintf("L%d", target)
					if target >= n {
						label = "Lend"
					}
					a.Br(host.BR, host.R31, label)
				}
			}
			a.Label("Lend")
			a.Brk(HaltService)
		})
		caches := seed%2 == 0
		chunk := 4 + rng.Intn(9)
		trCompare(t, base, words, []uint64{13, 200000}, caches, chunk)
	}
}

func TestTraceParityKernels(t *testing.T) {
	const base = 0x1000
	kernels := map[string]func(a *host.Asm){
		// A counted loop with aligned+misaligned memory traffic — backward
		// in-trace branch, the shape the dispatch-loop bench measures.
		"loop": func(a *host.Asm) {
			a.MovImm(host.R9, trDataBase)
			a.MovImm(host.R1, 50)
			a.Label("top")
			a.Mem(host.LDQ, host.R2, 0, host.R9)
			a.OprLit(host.ADDQ, host.R2, 3, host.R2)
			a.Mem(host.LDL, host.R3, 1, host.R9) // misaligned: traps, default fixup
			a.Opr(host.XOR, host.R2, host.R3, host.R4)
			a.Mem(host.STQ, host.R4, 8, host.R9)
			a.OprLit(host.SUBQ, host.R1, 1, host.R1)
			a.Br(host.BNE, host.R1, "top")
			a.Brk(HaltService)
		},
		// Call/return through BSR + RET: dynamic jump chains back into the
		// trace through the LUT probe.
		"call": func(a *host.Asm) {
			a.MovImm(host.R9, trDataBase)
			a.MovImm(host.R1, 7)
			a.Br(host.BSR, host.R5, "fn")
			a.Opr(host.ADDQ, host.R1, host.R1, host.R2)
			a.Brk(HaltService)
			a.Label("fn")
			a.OprLit(host.ADDQ, host.R1, 5, host.R1)
			a.Jmp(host.RET, host.R31, host.R5)
		},
		// Dual-issue pairing across LDA/LDAH/operate runs and slot-closing
		// multiplies — the cycle accounting the EV6 model is touchiest about.
		"dual": func(a *host.Asm) {
			a.MovImm(host.R9, trDataBase)
			a.Mem(host.LDA, host.R1, 8, host.R9)
			a.Mem(host.LDAH, host.R2, 1, host.R31)
			a.OprLit(host.ADDQ, host.R1, 1, host.R3)
			a.OprLit(host.ADDQ, host.R3, 1, host.R4)
			a.Opr(host.MULQ, host.R4, host.R4, host.R5)
			a.Mem(host.LDQ, host.R6, 0, host.R9)
			a.OprLit(host.SUBQ, host.R6, 1, host.R6)
			a.Mem(host.LDQU, host.R7, 3, host.R9)
			a.Brk(HaltService)
		},
	}
	for name, build := range kernels {
		words := trProgram(t, base, build)
		for _, caches := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/caches=%v", name, caches), func(t *testing.T) {
				trCompare(t, base, words, []uint64{1, 3, 17, 1 << 20}, caches, 3)
			})
		}
	}
}

// TestTraceOperateParity pins the executor's inline operate and
// branch-predicate switches to the generic loop (host.EvalOp /
// host.BranchTaken) op by op, over register and literal forms, so the two
// implementations can never drift silently.
func TestTraceOperateParity(t *testing.T) {
	aluOps := []host.Op{
		host.ADDL, host.SUBL, host.ADDQ, host.SUBQ, host.MULL, host.MULQ,
		host.CMPEQ, host.CMPLT, host.CMPLE, host.CMPULT, host.CMPULE,
		host.AND, host.BIC, host.BIS, host.ORNOT, host.XOR, host.EQV,
		host.SLL, host.SRL, host.SRA,
		host.EXTBL, host.EXTWL, host.EXTLL, host.EXTQL,
		host.EXTWH, host.EXTLH, host.EXTQH,
		host.INSBL, host.INSWL, host.INSLL, host.INSQL,
		host.INSWH, host.INSLH, host.INSQH,
		host.MSKBL, host.MSKWL, host.MSKLL, host.MSKQL,
		host.MSKWH, host.MSKLH, host.MSKQH,
	}
	rng := rand.New(rand.NewSource(1))
	const base = 0x1000
	for _, op := range aluOps {
		for trial := 0; trial < 6; trial++ {
			av, bv := int64(rng.Uint64()), int64(rng.Uint64())
			if trial%2 == 0 {
				bv &= 63 // exercise shift-count and byte-offset ranges densely
			}
			lit := uint8(rng.Intn(256))
			words := trProgram(t, base, func(a *host.Asm) {
				a.MovImm(host.R1, av)
				a.MovImm(host.R2, bv)
				a.Opr(op, host.R1, host.R2, host.R3)
				a.OprLit(op, host.R1, lit, host.R4)
				a.Opr(op, host.R31, host.R2, host.R5)
				a.Brk(HaltService)
			})
			trCompare(t, base, words, []uint64{1 << 20}, false, 2)
		}
	}
	condOps := []host.Op{
		host.BEQ, host.BNE, host.BLT, host.BLE, host.BGT, host.BGE,
		host.BLBC, host.BLBS,
	}
	for _, op := range condOps {
		for _, av := range []int64{0, 1, 2, -1, -2, int64(^uint64(0) >> 1), int64(1) << 62} {
			words := trProgram(t, base, func(a *host.Asm) {
				a.MovImm(host.R1, av)
				a.Br(op, host.R1, "skip")
				a.OprLit(host.ADDQ, host.R31, 1, host.R2)
				a.Label("skip")
				a.Brk(HaltService)
			})
			trCompare(t, base, words, []uint64{1 << 20}, false, 2)
		}
	}
}

func TestTraceChainFollowAndSever(t *testing.T) {
	const base = 0x1000
	m := newMachine(false)
	trSeedData(m)
	words := trProgram(t, base, func(a *host.Asm) {
		a.MovImm(host.R1, 10)
		a.Label("a")
		a.OprLit(host.SUBQ, host.R1, 1, host.R1)
		a.Br(host.BR, host.R31, "b") // tail of trace A → chain into trace B
		a.Label("b")
		a.Br(host.BNE, host.R1, "a") // tail of trace B → chain back into A
		a.Brk(HaltService)
	})
	m.WriteCode(base, words)
	m.SetPC(base)
	m.EnableTraces(true)
	// Split the program at label "b" into two traces.
	var bPC uint64
	for i, w := range words {
		inst, err := host.Decode(w)
		if err != nil {
			t.Fatal(err)
		}
		if inst.Op == host.BNE {
			bPC = base + uint64(i)*host.InstBytes
		}
	}
	if bPC == 0 {
		t.Fatal("BNE not found")
	}
	end := base + uint64(len(words))*host.InstBytes
	if !m.BuildTrace(base, bPC) || !m.BuildTrace(bPC, end) {
		t.Fatal("BuildTrace failed")
	}
	if got := trRun(m, 1<<20); got.Stop != StopHalt {
		t.Fatalf("stop = %v, want halt", got.Stop)
	}
	ts := m.TraceStats()
	if ts.Formed != 2 || ts.ChainFollows == 0 || ts.TracedInsts == 0 {
		t.Fatalf("trace stats %+v: want 2 formed, nonzero chain follows and traced insts", ts)
	}
	if err := m.CheckTraceCoherence(); err != nil {
		t.Fatal(err)
	}

	// Patching a word inside trace B drops it, severs A's memoized link
	// into it, and leaves trace A executable and coherent.
	m.Patch(bPC, words[(bPC-base)/host.InstBytes])
	if m.HasTrace(bPC) {
		t.Fatal("patched trace still live")
	}
	if !m.HasTrace(base) {
		t.Fatal("untouched trace dropped")
	}
	if got := m.TraceStats().Invalidations; got != 1 {
		t.Fatalf("invalidations = %d, want 1", got)
	}
	if err := m.CheckTraceCoherence(); err != nil {
		t.Fatalf("coherence after sever: %v", err)
	}
	m.SetReg(host.R1, 10)
	m.SetPC(base)
	if got := trRun(m, 1<<20); got.Stop != StopHalt {
		t.Fatalf("stop after sever = %v, want halt", got.Stop)
	}
}

func TestTraceBuildRejects(t *testing.T) {
	const base = 0x1000
	m := newMachine(false)
	words := trProgram(t, base, func(a *host.Asm) {
		a.OprLit(host.ADDQ, host.R1, 1, host.R1)
		a.OprLit(host.ADDQ, host.R1, 1, host.R1)
		a.Brk(HaltService)
	})
	m.WriteCode(base, words)
	end := base + uint64(len(words))*host.InstBytes

	if m.BuildTrace(base, end) {
		t.Fatal("BuildTrace succeeded with tier disabled")
	}
	m.EnableTraces(true)
	if m.BuildTrace(base+2, end) || m.BuildTrace(base, end+2) || m.BuildTrace(end, base) {
		t.Fatal("BuildTrace accepted misaligned or inverted bounds")
	}
	m.Mem.Write32(end, 0x04<<26) // unassigned opcode
	if m.BuildTrace(base, end+host.InstBytes) {
		t.Fatal("BuildTrace accepted an undecodable word")
	}
	if !m.BuildTrace(base, end) {
		t.Fatal("BuildTrace failed on valid span")
	}
	if m.BuildTrace(base, base+host.InstBytes) {
		t.Fatal("BuildTrace accepted an overlap with a live trace")
	}
	if got := m.TraceStats().Formed; got != 1 {
		t.Fatalf("formed = %d, want 1", got)
	}
}

func TestTraceIMBAndResetDropAll(t *testing.T) {
	const base = 0x1000
	m := newMachine(false)
	words := trProgram(t, base, func(a *host.Asm) {
		a.OprLit(host.ADDQ, host.R1, 1, host.R1)
		a.Brk(HaltService)
	})
	m.WriteCode(base, words)
	m.EnableTraces(true)
	end := base + uint64(len(words))*host.InstBytes
	if !m.BuildTrace(base, end) {
		t.Fatal("BuildTrace failed")
	}
	m.IMB()
	if m.HasTrace(base) {
		t.Fatal("trace survived IMB")
	}
	if got := m.TraceStats().Invalidations; got != 1 {
		t.Fatalf("invalidations = %d, want 1", got)
	}
	if !m.TracesEnabled() {
		t.Fatal("IMB disabled the tier")
	}
	if !m.BuildTrace(base, end) {
		t.Fatal("rebuild after IMB failed")
	}
	m.Reset()
	if m.TracesEnabled() || m.HasTrace(base) {
		t.Fatal("Reset left the trace tier armed")
	}
	if got := m.TraceStats(); got != (TraceStats{}) {
		t.Fatalf("Reset left trace stats %+v", got)
	}
}

// TestTraceMidEntry enters a trace at a PC in its middle (as a stub return
// would) and checks parity with generic execution.
func TestTraceMidEntry(t *testing.T) {
	const base = 0x1000
	words := trProgram(t, base, func(a *host.Asm) {
		a.OprLit(host.ADDQ, host.R1, 1, host.R1)
		a.OprLit(host.ADDQ, host.R1, 2, host.R1)
		a.OprLit(host.ADDQ, host.R1, 3, host.R1)
		a.Brk(HaltService)
	})
	entry := uint64(base + 2*host.InstBytes)

	ref := newMachine(true)
	ref.WriteCode(base, words)
	ref.SetPC(entry)
	want := trRun(ref, 1<<20)

	m := newMachine(true)
	m.WriteCode(base, words)
	m.EnableTraces(true)
	if !m.BuildTrace(base, base+uint64(len(words))*host.InstBytes) {
		t.Fatal("BuildTrace failed")
	}
	m.SetPC(entry)
	got := trRun(m, 1<<20)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mid-entry:\n got %+v\nwant %+v", got, want)
	}
	if m.TraceStats().TracedInsts != 2 {
		t.Fatalf("traced insts = %d, want 2", m.TraceStats().TracedInsts)
	}
}

// TestTraceFaultPlanFallsBack checks that a machine with an installed
// fault plan never enters the trace executor, keeping injection streams
// untouched by the tier.
func TestTraceFaultPlanFallsBack(t *testing.T) {
	const base = 0x1000
	m := newMachine(false)
	words := trProgram(t, base, func(a *host.Asm) {
		a.OprLit(host.ADDQ, host.R1, 1, host.R1)
		a.Brk(HaltService)
	})
	m.WriteCode(base, words)
	m.EnableTraces(true)
	if !m.BuildTrace(base, base+uint64(len(words))*host.InstBytes) {
		t.Fatal("BuildTrace failed")
	}
	m.SetFaultPlan(faultinject.New(1))
	m.SetPC(base)
	if got := trRun(m, 1<<20); got.Stop != StopHalt {
		t.Fatalf("stop = %v, want halt", got.Stop)
	}
	if got := m.TraceStats().TracedInsts; got != 0 {
		t.Fatalf("trace executor ran %d insts with a fault plan installed", got)
	}
}

func TestTraceCoherenceDetectsCorruption(t *testing.T) {
	const base = 0x1000
	m := newMachine(false)
	words := trProgram(t, base, func(a *host.Asm) {
		a.OprLit(host.ADDQ, host.R1, 1, host.R1)
		a.OprLit(host.ADDQ, host.R1, 1, host.R1)
		a.Brk(HaltService)
	})
	m.WriteCode(base, words)
	m.EnableTraces(true)
	if !m.BuildTrace(base, base+uint64(len(words))*host.InstBytes) {
		t.Fatal("BuildTrace failed")
	}
	if err := m.CheckTraceCoherence(); err != nil {
		t.Fatal(err)
	}
	delete(m.traces, base+host.InstBytes)
	if err := m.CheckTraceCoherence(); err == nil {
		t.Fatal("coherence check missed a dropped LUT entry")
	}
}

// benchKernel is a tight counted loop (no misaligned traffic) approximating
// translated hot-loop code: the shape the dispatch-loop perfbench measures.
func benchKernel(b *testing.B, traced bool) {
	const base = 0x1000
	a := host.NewAsm(base)
	a.MovImm(host.R9, trDataBase)
	a.Label("top")
	a.Mem(host.LDQ, host.R2, 0, host.R9)
	a.OprLit(host.ADDQ, host.R2, 3, host.R2)
	a.Mem(host.LDQ, host.R3, 8, host.R9)
	a.Opr(host.XOR, host.R2, host.R3, host.R4)
	a.Mem(host.STQ, host.R4, 16, host.R9)
	a.OprLit(host.ADDQ, host.R5, 1, host.R5)
	a.OprLit(host.SUBQ, host.R1, 1, host.R1)
	a.Br(host.BNE, host.R1, "top")
	a.Brk(HaltService)
	words, err := a.Finish()
	if err != nil {
		b.Fatal(err)
	}
	m := New(mem.New(), DefaultParams())
	m.WriteCode(base, words)
	if traced {
		m.EnableTraces(true)
		if !m.BuildTrace(base, base+uint64(len(words))*host.InstBytes) {
			b.Fatal("BuildTrace failed")
		}
	}
	const iters = 4096
	insts := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetPC(base)
		m.SetReg(host.R1, iters)
		before := m.Counters().Insts
		if stop, _, err := m.Run(1 << 40); err != nil || stop != StopHalt {
			b.Fatalf("stop=%v err=%v", stop, err)
		}
		insts += m.Counters().Insts - before
	}
	b.ReportMetric(float64(insts)/float64(b.Elapsed().Nanoseconds())*1000, "MIPS")
}

func BenchmarkGenericLoop(b *testing.B) { benchKernel(b, false) }
func BenchmarkTracedLoop(b *testing.B)  { benchKernel(b, true) }

// trMegaLd emits the translator's misalignment-safe load idiom in the
// exact shape fuseMegaLd matches: base in R9, result in R7, temporaries
// R2-R6 (lo, hi, ea, extl, exth).
func trMegaLd(a *host.Asm, sz int, disp int32, sext bool) {
	var xl, xh host.Op
	switch sz {
	case 2:
		xl, xh = host.EXTWL, host.EXTWH
	case 4:
		xl, xh = host.EXTLL, host.EXTLH
	case 8:
		xl, xh = host.EXTQL, host.EXTQH
	}
	a.Mem(host.LDQU, host.R2, disp, host.R9)
	a.Mem(host.LDQU, host.R3, disp+int32(sz)-1, host.R9)
	a.Mem(host.LDA, host.R4, disp, host.R9)
	a.Opr(xl, host.R2, host.R4, host.R5)
	a.Opr(xh, host.R3, host.R4, host.R6)
	a.Opr(host.BIS, host.R6, host.R5, host.R7)
	if sext {
		a.Opr(host.ADDL, host.R31, host.R7, host.R7)
	}
}

// trMegaSt emits the misalignment-safe store idiom fuseMegaSt matches:
// base in R9, data in R7, temporaries R2-R6 (lo, hi, ea, insh, insl),
// with the in-place msk/bis merge the real translator uses.
func trMegaSt(a *host.Asm, sz int, disp int32) {
	var ih, il, mh, ml host.Op
	switch sz {
	case 2:
		ih, il, mh, ml = host.INSWH, host.INSWL, host.MSKWH, host.MSKWL
	case 4:
		ih, il, mh, ml = host.INSLH, host.INSLL, host.MSKLH, host.MSKLL
	case 8:
		ih, il, mh, ml = host.INSQH, host.INSQL, host.MSKQH, host.MSKQL
	}
	a.Mem(host.LDA, host.R4, disp, host.R9)
	a.Mem(host.LDQU, host.R3, disp+int32(sz)-1, host.R9)
	a.Mem(host.LDQU, host.R2, disp, host.R9)
	a.Opr(ih, host.R7, host.R4, host.R5)
	a.Opr(il, host.R7, host.R4, host.R6)
	a.Opr(mh, host.R3, host.R4, host.R3)
	a.Opr(ml, host.R2, host.R4, host.R2)
	a.Opr(host.BIS, host.R3, host.R5, host.R3)
	a.Opr(host.BIS, host.R2, host.R6, host.R2)
	a.Mem(host.STQU, host.R3, disp+int32(sz)-1, host.R9)
	a.Mem(host.STQU, host.R2, disp, host.R9)
}

// trMegaNops pads the program so the idiom head lands at a chosen offset
// within its 64-byte I-line, moving the line crossing onto different
// constituents (megaCrossK coverage).
func trMegaNops(a *host.Asm, n int) {
	for i := 0; i < n; i++ {
		a.Mem(host.LDA, host.R8, 0, host.R8)
	}
}

// trAssertMega builds one whole-span trace over words and asserts the
// idiom actually compacted into a single mega step of wantN constituents
// — without this, the parity runs below could silently test nothing.
func trAssertMega(t *testing.T, base uint64, words []uint32, kind stepKind, wantN int) {
	t.Helper()
	m := newMachine(false)
	trSeedData(m)
	m.WriteCode(base, words)
	m.SetPC(base)
	m.EnableTraces(true)
	if !m.BuildTrace(base, base+uint64(len(words))*host.InstBytes) {
		t.Fatal("BuildTrace failed")
	}
	megas := 0
	for _, tr := range m.traceList {
		for i := range tr.steps {
			st := &tr.steps[i]
			if st.kind == stepMisLd || st.kind == stepMisSt {
				megas++
				if st.kind != kind {
					t.Errorf("fused into kind %d, want %d", st.kind, kind)
				}
				if int(st.n) != wantN {
					t.Errorf("mega step retires %d insts, want %d", st.n, wantN)
				}
			}
		}
	}
	if megas != 1 {
		t.Errorf("idiom compacted into %d mega steps, want exactly 1", megas)
	}
}

// TestTraceMegaStepParity pins the fused MDA mega-steps to the generic
// loop: the exact load/store expansion idioms the translator emits must
// fuse into one dispatch and stay bit-identical across word sizes,
// quadword straddles, sign extension, I-line-crossing positions, budget
// exhaustion at and inside the idiom, and cache modeling on/off.
func TestTraceMegaStepParity(t *testing.T) {
	const base = 0x1000
	budgets := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 20, 40, 1 << 20}

	loads := []struct {
		sz   int
		disp int32
		sext bool
		pad  int
	}{
		{2, 7, false, 0},  // word straddling a quadword boundary
		{4, 5, true, 13},  // longword straddle + sext, line cross at k=1
		{4, 5, false, 9},  // line cross mid-idiom
		{8, 3, false, 11}, // quadword straddle
		{8, 0, false, 0},  // aligned: idiom still runs, hi==lo quadword+8
		{2, 2, false, 13}, // within-quadword misalignment
	}
	for _, c := range loads {
		words := trProgram(t, base, func(a *host.Asm) {
			a.MovImm(host.R9, trDataBase)
			a.MovImm(host.R1, 3)
			trMegaNops(a, c.pad)
			a.Label("top")
			trMegaLd(a, c.sz, c.disp, c.sext)
			a.OprLit(host.ADDQ, host.R7, 1, host.R8)
			a.OprLit(host.SUBQ, host.R1, 1, host.R1)
			a.Br(host.BNE, host.R1, "top")
			a.Brk(HaltService)
		})
		wantN := 6
		if c.sext {
			wantN = 7
		}
		t.Run(fmt.Sprintf("ld/sz=%d/disp=%d/sext=%v/pad=%d", c.sz, c.disp, c.sext, c.pad), func(t *testing.T) {
			trAssertMega(t, base, words, stepMisLd, wantN)
			for _, caches := range []bool{false, true} {
				trCompare(t, base, words, budgets, caches, 4)
			}
		})
	}

	stores := []struct {
		sz   int
		disp int32
		pad  int
	}{
		{2, 7, 0},
		{4, 5, 1},  // line cross at k=10 (stq_u lo)
		{4, 4, 5},  // line cross mid-merge
		{8, 3, 8},  // line cross at the ins half
		{8, 0, 10}, // aligned, line cross at k=1 (ldq_u hi)
	}
	for _, c := range stores {
		c := c
		words := trProgram(t, base, func(a *host.Asm) {
			a.MovImm(host.R9, trDataBase)
			a.MovImm(host.R7, 0x1234_5678)
			a.MovImm(host.R1, 3)
			trMegaNops(a, c.pad)
			a.Label("top")
			trMegaSt(a, c.sz, c.disp)
			a.OprLit(host.ADDQ, host.R7, 7, host.R7)
			a.OprLit(host.SUBQ, host.R1, 1, host.R1)
			a.Br(host.BNE, host.R1, "top")
			// Fold the stored bytes back into registers so trSnap's
			// register comparison covers the memory effect too.
			a.Mem(host.LDQ, host.R5, c.disp&^7, host.R9)
			a.Mem(host.LDQ, host.R6, (c.disp+int32(c.sz)-1)&^7, host.R9)
			a.Brk(HaltService)
		})
		t.Run(fmt.Sprintf("st/sz=%d/disp=%d/pad=%d", c.sz, c.disp, c.pad), func(t *testing.T) {
			trAssertMega(t, base, words, stepMisSt, 11)
			for _, caches := range []bool{false, true} {
				trCompare(t, base, words, budgets, caches, 4)
			}
		})
	}
}

// TestTraceMegaStepFaults makes individual constituents of a fused mega
// step take access faults mid-idiom, via page protections straddled by
// the access. The machine's default access-trap path (count, charge,
// complete, continue) must leave a traced run bit-identical to the
// generic one: the mega exits at the faulting constituent's PC with the
// architecturally visible prefix retired, resumes generically through
// the idiom tail, and re-enters the trace on the next iteration.
func TestTraceMegaStepFaults(t *testing.T) {
	const base = 0x1000
	const pageA = uint64(trDataBase)           // [0x100000, 0x102000)
	const pageB = pageA + uint64(mem.PageSize) // next data page
	const straddle = pageB - 4                 // quadword access spans A|B
	budgets := []uint64{1, 3, 6, 9, 12, 14, 25, 1 << 20}

	loadProg := trProgram(t, base, func(a *host.Asm) {
		a.MovImm(host.R9, int64(straddle))
		a.MovImm(host.R1, 4)
		a.Label("top")
		trMegaLd(a, 8, 0, false)
		a.OprLit(host.SUBQ, host.R1, 1, host.R1)
		a.Br(host.BNE, host.R1, "top")
		a.Brk(HaltService)
	})
	trAssertMega(t, base, loadProg, stepMisLd, 6)

	storeProg := trProgram(t, base, func(a *host.Asm) {
		a.MovImm(host.R9, int64(straddle))
		a.MovImm(host.R7, 0x1234_5678)
		a.MovImm(host.R1, 4)
		a.Label("top")
		trMegaSt(a, 8, 0)
		a.OprLit(host.ADDQ, host.R7, 7, host.R7)
		a.OprLit(host.SUBQ, host.R1, 1, host.R1)
		a.Br(host.BNE, host.R1, "top")
		a.Mem(host.LDQ, host.R5, -8, host.R9) // aligned readback: low quad
		a.Mem(host.LDQ, host.R6, 4, host.R9)  // aligned readback: high quad
		a.Brk(HaltService)
	})
	trAssertMega(t, base, storeProg, stepMisSt, 11)

	cases := []struct {
		name  string
		words []uint32
		arm   func(m *Machine)
	}{
		// Load: fault on the second, first, then both ldq_u constituents.
		{"ld-hi-faults", loadProg, func(m *Machine) { m.Mem.Protect(pageB, mem.PageSize, 0) }},
		{"ld-lo-faults", loadProg, func(m *Machine) { m.Mem.Protect(pageA, mem.PageSize, 0) }},
		{"ld-both-fault", loadProg, func(m *Machine) { m.Mem.Protect(pageA, 2*mem.PageSize, 0) }},
		// Store: unreadable high page faults ldq_u hi AND stq_u hi;
		// read-only pages fault exactly the trailing stq_u constituents.
		{"st-hi-unreadable", storeProg, func(m *Machine) { m.Mem.Protect(pageB, mem.PageSize, 0) }},
		{"st-hi-write-faults", storeProg, func(m *Machine) { m.Mem.Protect(pageB, mem.PageSize, mem.ProtRead) }},
		{"st-both-writes-fault", storeProg, func(m *Machine) { m.Mem.Protect(pageA, 2*mem.PageSize, mem.ProtRead) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, caches := range []bool{false, true} {
				trCompareArm(t, base, tc.words, budgets, caches, 4, tc.arm)
			}
			// Sanity: the protections really did fire faults.
			m := newMachine(false)
			trSeedData(m)
			tc.arm(m)
			m.WriteCode(base, tc.words)
			m.SetPC(base)
			m.EnableTraces(true)
			if !m.BuildTrace(base, base+uint64(len(tc.words))*host.InstBytes) {
				t.Fatal("BuildTrace failed")
			}
			trRun(m, 1<<20)
			if m.Counters().AccessFaults == 0 {
				t.Error("protections armed but no access faults were taken")
			}
		})
	}
}
