package machine

import (
	"math/rand"
	"testing"

	"mdabt/internal/host"
	"mdabt/internal/mem"
)

func newMachine(caches bool) *Machine {
	p := DefaultParams()
	p.UseCaches = caches
	return New(mem.New(), p)
}

// load assembles the program with base addr and writes it as code.
func load(t *testing.T, m *Machine, base uint64, build func(a *host.Asm)) {
	t.Helper()
	a := host.NewAsm(base)
	build(a)
	words, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m.WriteCode(base, words)
	m.SetPC(base)
}

func run(t *testing.T, m *Machine) (StopReason, uint32) {
	t.Helper()
	r, payload, err := m.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	return r, payload
}

func TestHaltAndArithmetic(t *testing.T) {
	m := newMachine(false)
	load(t, m, 0x1000, func(a *host.Asm) {
		a.MovImm(host.R1, 40)
		a.OprLit(host.ADDQ, host.R1, 2, host.R2)
		a.Opr(host.SUBQ, host.R2, host.R1, host.R3)
		a.Brk(HaltService)
	})
	r, _ := run(t, m)
	if r != StopHalt {
		t.Fatalf("stop = %v, want halt", r)
	}
	if m.Reg(host.R2) != 42 || m.Reg(host.R3) != 2 {
		t.Fatalf("r2=%d r3=%d, want 42, 2", m.Reg(host.R2), m.Reg(host.R3))
	}
}

func TestZeroRegister(t *testing.T) {
	m := newMachine(false)
	load(t, m, 0x1000, func(a *host.Asm) {
		a.MovImm(host.R31, 99) // write to zero register is discarded
		a.Opr(host.ADDQ, host.R31, host.R31, host.R1)
		a.Brk(HaltService)
	})
	run(t, m)
	if m.Reg(host.R31) != 0 || m.Reg(host.R1) != 0 {
		t.Fatalf("zero register leaked: r31=%d r1=%d", m.Reg(host.R31), m.Reg(host.R1))
	}
}

func TestMovImmProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	values := []int64{0, 1, -1, 42, -42, 0x7FFF, 0x8000, -0x8000, -0x8001,
		0x7FFFFFFF, -0x80000000, 0x123456789, -0x123456789,
		0x7FFFFFFFFFFFFFFF, -0x8000000000000000, 0x0123456789ABCDEF}
	for i := 0; i < 200; i++ {
		values = append(values, int64(rnd.Uint64()))
	}
	for _, v := range values {
		m := newMachine(false)
		load(t, m, 0x1000, func(a *host.Asm) {
			a.MovImm(host.R5, v)
			a.Brk(HaltService)
		})
		run(t, m)
		if got := m.Reg(host.R5); got != uint64(v) {
			t.Fatalf("MovImm(%#x): machine computed %#x", v, got)
		}
	}
}

func TestLoadStoreAligned(t *testing.T) {
	m := newMachine(false)
	m.Mem.Write64(0x2000, 0x8899AABBCCDDEEFF)
	load(t, m, 0x1000, func(a *host.Asm) {
		a.MovImm(host.R2, 0x2000)
		a.Mem(host.LDQ, host.R1, 0, host.R2)
		a.Mem(host.LDL, host.R3, 4, host.R2)  // sign-extends 0x8899AABB
		a.Mem(host.LDWU, host.R4, 2, host.R2) // zero-extends
		a.Mem(host.LDBU, host.R5, 7, host.R2)
		a.Mem(host.STL, host.R1, 8, host.R2)
		a.Mem(host.STW, host.R1, 12, host.R2)
		a.Mem(host.STB, host.R1, 14, host.R2)
		a.Brk(HaltService)
	})
	run(t, m)
	if m.Reg(host.R1) != 0x8899AABBCCDDEEFF {
		t.Errorf("ldq = %#x", m.Reg(host.R1))
	}
	if m.Reg(host.R3) != 0xFFFFFFFF8899AABB {
		t.Errorf("ldl sign extension = %#x", m.Reg(host.R3))
	}
	if m.Reg(host.R4) != 0xCCDD {
		t.Errorf("ldwu = %#x", m.Reg(host.R4))
	}
	if m.Reg(host.R5) != 0x88 {
		t.Errorf("ldbu = %#x", m.Reg(host.R5))
	}
	if got := m.Mem.Read32(0x2008); got != 0xCCDDEEFF {
		t.Errorf("stl wrote %#x", got)
	}
	if got := m.Mem.Read16(0x200C); got != 0xEEFF {
		t.Errorf("stw wrote %#x", got)
	}
	if got := m.Mem.Read8(0x200E); got != 0xFF {
		t.Errorf("stb wrote %#x", got)
	}
}

func TestLdqUStqUIgnoreLowBits(t *testing.T) {
	m := newMachine(false)
	m.Mem.Write64(0x2000, 0x1111111111111111)
	load(t, m, 0x1000, func(a *host.Asm) {
		a.MovImm(host.R2, 0x2005)
		a.Mem(host.LDQU, host.R1, 0, host.R2) // reads quad at 0x2000
		a.MovImm(host.R3, 0x2222222222222222)
		a.Mem(host.STQU, host.R3, 0, host.R2) // writes quad at 0x2000
		a.Brk(HaltService)
	})
	run(t, m)
	if m.Reg(host.R1) != 0x1111111111111111 {
		t.Errorf("ldq_u = %#x", m.Reg(host.R1))
	}
	if got := m.Mem.Read64(0x2000); got != 0x2222222222222222 {
		t.Errorf("stq_u wrote %#x", got)
	}
	if m.Counters().MisalignTraps != 0 {
		t.Error("unaligned quadword ops must not trap")
	}
}

func TestMisalignDefaultFixup(t *testing.T) {
	m := newMachine(false)
	m.Mem.Write64(0x2000, 0x8877665544332211)
	load(t, m, 0x1000, func(a *host.Asm) {
		a.MovImm(host.R2, 0x2000)
		a.Mem(host.LDL, host.R1, 3, host.R2) // misaligned: traps, OS fixes up
		a.MovImm(host.R4, 0x0A0B0C0D)
		a.Mem(host.STL, host.R4, 5, host.R2) // misaligned store
		a.Brk(HaltService)
	})
	base := m.Counters().Cycles
	_ = base
	run(t, m)
	if got := m.Reg(host.R1); got != 0x0000000077665544 {
		t.Errorf("fixed-up ldl = %#x, want 0x77665544", got)
	}
	if got := m.Mem.Read32(0x2005); got != 0x0A0B0C0D {
		t.Errorf("fixed-up stl wrote %#x", got)
	}
	c := m.Counters()
	if c.MisalignTraps != 2 {
		t.Fatalf("traps = %d, want 2", c.MisalignTraps)
	}
	if c.TrapCycles != 2*m.Params.MisalignTrapCycles {
		t.Errorf("trap cycles = %d, want %d", c.TrapCycles, 2*m.Params.MisalignTrapCycles)
	}
	if c.Cycles < c.TrapCycles {
		t.Error("total cycles below trap cycles")
	}
}

func TestMisalignLDLSignExtendsOnFixup(t *testing.T) {
	m := newMachine(false)
	m.Mem.Write64(0x2000, 0xFFFFFFFF80000000)
	load(t, m, 0x1000, func(a *host.Asm) {
		a.MovImm(host.R2, 0x2001)
		a.Mem(host.LDL, host.R1, 2, host.R2) // bytes 3..6 = 0xFFFFFF80
		a.Brk(HaltService)
	})
	run(t, m)
	if got := m.Reg(host.R1); got != 0xFFFFFFFFFFFFFF80 {
		t.Errorf("fixed-up ldl = %#x, want sign-extended", got)
	}
}

func TestCustomMisalignHandlerPatches(t *testing.T) {
	// The handler patches the faulting LDL into a BR to an MDA sequence,
	// exactly like the paper's exception-handling mechanism (Fig. 5), and
	// resumes at the faulting pc so the patched instruction executes.
	m := newMachine(false)
	m.Mem.Write64(0x2000, 0x8877665544332211)
	var faultPC uint64
	seqBase := uint64(0x9000)
	m.SetMisalignHandler(func(mm *Machine, pc uint64, inst host.Inst, ea uint64) uint64 {
		faultPC = pc
		// Emit: ldq_u r1, 3(r2); ldq_u r21, 6(r2); lda r22, 3(r2);
		// extll r1, r22, r1; extlh r21, r22, r21; bis; addl; br pc+4
		a := host.NewAsm(seqBase)
		a.Mem(host.LDQU, inst.Ra, inst.Disp, inst.Rb)
		a.Mem(host.LDQU, host.R21, inst.Disp+3, inst.Rb)
		a.Mem(host.LDA, host.R22, inst.Disp, inst.Rb)
		a.Opr(host.EXTLL, inst.Ra, host.R22, inst.Ra)
		a.Opr(host.EXTLH, host.R21, host.R22, host.R21)
		a.Opr(host.BIS, host.R21, inst.Ra, inst.Ra)
		a.Opr(host.ADDL, host.Zero, inst.Ra, inst.Ra)
		a.BrTo(host.BR, host.Zero, pc+host.InstBytes)
		words, err := a.Finish()
		if err != nil {
			t.Fatal(err)
		}
		mm.WriteCode(seqBase, words)
		br, _ := host.BrDispFor(pc, seqBase)
		mm.Patch(pc, host.MustEncode(host.Inst{Op: host.BR, Ra: host.Zero, Disp: br}))
		return pc
	})
	load(t, m, 0x1000, func(a *host.Asm) {
		a.MovImm(host.R2, 0x2000)
		a.Label("loop")
		a.Mem(host.LDL, host.R1, 3, host.R2)
		a.OprLit(host.ADDQ, host.R3, 1, host.R3)
		a.OprLit(host.CMPULT, host.R3, 10, host.R4)
		a.Br(host.BNE, host.R4, "loop")
		a.Brk(HaltService)
	})
	run(t, m)
	if got := m.Reg(host.R1); got != 0x0000000077665544 {
		t.Errorf("patched MDA sequence result = %#x, want 0x77665544", got)
	}
	if m.Reg(host.R3) != 10 {
		t.Errorf("loop count = %d, want 10", m.Reg(host.R3))
	}
	c := m.Counters()
	if c.MisalignTraps != 1 {
		t.Fatalf("traps = %d, want exactly 1 (patched after first)", c.MisalignTraps)
	}
	if faultPC == 0 {
		t.Fatal("handler never ran")
	}
}

func TestPatchInvalidatesDecodedCache(t *testing.T) {
	m := newMachine(false)
	load(t, m, 0x1000, func(a *host.Asm) {
		a.Label("top")
		a.OprLit(host.ADDQ, host.R1, 1, host.R1)
		a.Brk(2) // runtime callback
	})
	// First run executes ADDQ then stops at BRKBT.
	r, payload := run(t, m)
	if r != StopBrk || payload != 2 {
		t.Fatalf("stop = %v/%d", r, payload)
	}
	// Patch the ADDQ (already decoded and cached) into ADDQ r1, #5, r1.
	m.Patch(0x1000, host.MustEncode(host.Inst{Op: host.ADDQ, Ra: host.R1, Lit: 5, IsLit: true, Rc: host.R1}))
	m.SetPC(0x1000)
	run(t, m)
	if got := m.Reg(host.R1); got != 6 {
		t.Fatalf("r1 = %d, want 6 (1 from old inst + 5 from patched)", got)
	}
}

func TestBranchesAndJumps(t *testing.T) {
	m := newMachine(false)
	load(t, m, 0x1000, func(a *host.Asm) {
		a.MovImm(host.R1, 3)
		a.Label("loop")
		a.OprLit(host.SUBQ, host.R1, 1, host.R1)
		a.Br(host.BNE, host.R1, "loop")
		a.Br(host.BSR, host.R26, "sub") // call
		a.Brk(HaltService)
		a.Label("sub")
		a.MovImm(host.R9, 0x5A)
		a.Jmp(host.RET, host.Zero, host.R26)
	})
	r, _ := run(t, m)
	if r != StopHalt {
		t.Fatalf("stop = %v", r)
	}
	if m.Reg(host.R1) != 0 || m.Reg(host.R9) != 0x5A {
		t.Fatalf("r1=%d r9=%#x", m.Reg(host.R1), m.Reg(host.R9))
	}
}

func TestRunLimit(t *testing.T) {
	m := newMachine(false)
	load(t, m, 0x1000, func(a *host.Asm) {
		a.Label("spin")
		a.Br(host.BR, host.Zero, "spin")
	})
	r, _, err := m.Run(100)
	if err != nil || r != StopLimit {
		t.Fatalf("got %v/%v, want limit", r, err)
	}
	if m.Counters().Insts != 100 {
		t.Fatalf("insts = %d, want 100", m.Counters().Insts)
	}
}

func TestFetchErrorOnGarbage(t *testing.T) {
	m := newMachine(false)
	m.Mem.Write32(0x1000, 0x04<<26) // unassigned opcode
	m.SetPC(0x1000)
	if _, _, err := m.Run(10); err == nil {
		t.Fatal("executing garbage: want error")
	}
}

func TestCacheChargesColdMisses(t *testing.T) {
	cold := newMachine(true)
	warm := newMachine(true)
	prog := func(a *host.Asm) {
		a.MovImm(host.R1, 100)
		a.Label("loop")
		a.OprLit(host.SUBQ, host.R1, 1, host.R1)
		a.Br(host.BNE, host.R1, "loop")
		a.Brk(HaltService)
	}
	load(t, cold, 0x1000, prog)
	load(t, warm, 0x1000, prog)
	run(t, warm) // first pass warms the caches
	warmStart := warm.Counters().Cycles
	warm.SetPC(0x1000)
	warm.SetReg(host.R1, 0)
	run(t, warm)
	warmCycles := warm.Counters().Cycles - warmStart
	run(t, cold)
	if cold.Counters().Cycles <= warmCycles {
		t.Fatalf("cold run (%d cycles) not slower than warm (%d)", cold.Counters().Cycles, warmCycles)
	}
}

func TestIMBFlushesDecoded(t *testing.T) {
	m := newMachine(false)
	load(t, m, 0x1000, func(a *host.Asm) {
		a.OprLit(host.ADDQ, host.R1, 1, host.R1)
		a.Brk(2)
	})
	run(t, m)
	// Bypass Patch: write code through plain memory, then IMB.
	m.Mem.Write32(0x1000, host.MustEncode(host.Inst{Op: host.ADDQ, Ra: host.R1, Lit: 7, IsLit: true, Rc: host.R1}))
	m.IMB()
	m.SetPC(0x1000)
	run(t, m)
	if got := m.Reg(host.R1); got != 8 {
		t.Fatalf("r1 = %d, want 8 after IMB", got)
	}
}

func TestSetPCMisalignedPanics(t *testing.T) {
	m := newMachine(false)
	defer func() {
		if recover() == nil {
			t.Fatal("SetPC(odd) did not panic")
		}
	}()
	m.SetPC(0x1001)
}

func TestCounters(t *testing.T) {
	m := newMachine(false)
	m.Mem.Write64(0x2000, 1)
	load(t, m, 0x1000, func(a *host.Asm) {
		a.MovImm(host.R2, 0x2000) // 2 insts (ldah+lda) or 1
		a.Mem(host.LDQ, host.R1, 0, host.R2)
		a.Mem(host.STQ, host.R1, 8, host.R2)
		a.Brk(HaltService)
	})
	run(t, m)
	c := m.Counters()
	if c.Loads != 1 || c.Stores != 1 {
		t.Fatalf("loads=%d stores=%d, want 1/1", c.Loads, c.Stores)
	}
	if c.Brks != 1 {
		t.Fatalf("brks = %d", c.Brks)
	}
	if c.Insts == 0 || c.Cycles < c.Insts {
		t.Fatalf("insts=%d cycles=%d", c.Insts, c.Cycles)
	}
}

func BenchmarkTightLoop(b *testing.B) {
	m := newMachine(true)
	a := host.NewAsm(0x1000)
	a.MovImm(host.R1, 1<<30)
	a.Label("loop")
	a.OprLit(host.SUBQ, host.R1, 1, host.R1)
	a.Br(host.BNE, host.R1, "loop")
	a.Brk(HaltService)
	words, err := a.Finish()
	if err != nil {
		b.Fatal(err)
	}
	m.WriteCode(0x1000, words)
	m.SetPC(0x1000)
	b.ReportAllocs()
	b.ResetTimer()
	if _, _, err := m.Run(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}

// TestPatchInvalidatesFarDecodedCache repeats the patch-coherence check for
// code beyond the dense decode window: far lines live in a map tier, and a
// patch there must invalidate the cached decode just like a dense one.
func TestPatchInvalidatesFarDecodedCache(t *testing.T) {
	m := newMachine(false)
	// Anchor the dense window low, then run code far outside it.
	load(t, m, 0x1000, func(a *host.Asm) {
		a.Brk(HaltService)
	})
	run(t, m)
	if !m.anchored {
		t.Fatal("dense window not anchored by the first fetch")
	}
	farBase := 0x1000 + uint64(maxDenseLines)<<ilineShift + 0x2000
	load(t, m, farBase, func(a *host.Asm) {
		a.OprLit(host.ADDQ, host.R1, 1, host.R1)
		a.Brk(2)
	})
	if r, payload := run(t, m); r != StopBrk || payload != 2 {
		t.Fatalf("stop = %v/%d", r, payload)
	}
	if len(m.farLines) == 0 {
		t.Fatalf("code at %#x was not cached in the far tier", farBase)
	}
	// Patch the already-decoded far ADDQ into ADDQ r1, #5, r1.
	m.Patch(farBase, host.MustEncode(host.Inst{Op: host.ADDQ, Ra: host.R1, Lit: 5, IsLit: true, Rc: host.R1}))
	m.SetPC(farBase)
	run(t, m)
	if got := m.Reg(host.R1); got != 6 {
		t.Fatalf("r1 = %d, want 6 (1 from old inst + 5 from patched)", got)
	}
}

// TestIMBFlushesFarDecoded: IMB must drop far-tier decodes too.
func TestIMBFlushesFarDecoded(t *testing.T) {
	m := newMachine(false)
	load(t, m, 0x1000, func(a *host.Asm) {
		a.Brk(HaltService)
	})
	run(t, m)
	farBase := 0x1000 + uint64(maxDenseLines)<<ilineShift + 0x4000
	load(t, m, farBase, func(a *host.Asm) {
		a.MovImm(host.R2, 11)
		a.Brk(HaltService)
	})
	run(t, m)
	if len(m.farLines) == 0 {
		t.Fatal("far tier empty after executing far code")
	}
	// Rewrite the whole far body behind the decoder's back, then IMB.
	a := host.NewAsm(farBase)
	a.MovImm(host.R2, 77)
	a.Brk(HaltService)
	words, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		m.Mem.Write32(farBase+uint64(i)*4, w)
	}
	m.IMB()
	if len(m.farLines) != 0 {
		t.Fatalf("far tier holds %d lines after IMB, want 0", len(m.farLines))
	}
	m.SetPC(farBase)
	run(t, m)
	if got := m.Reg(host.R2); got != 77 {
		t.Fatalf("r2 = %d, want 77 from the rewritten code", got)
	}
}
