// Package machine simulates the paper's evaluation hardware: a
// single-processor Alpha ES40 (paper §V-A). It executes host (Alpha-like)
// code from simulated memory with a cycle cost model, the ES40 cache
// hierarchy, precise misaligned-access traps that dispatch to a registered
// handler, and a code-patching interface with instruction-stream coherence
// (the decoded-instruction cache is invalidated when code is patched).
//
// The simulator is the substitution for real Alpha hardware (see DESIGN.md):
// every MDA handling mechanism's cost reduces to instructions executed,
// cache misses, and traps taken, all of which are charged explicitly here.
package machine

import (
	"fmt"

	"mdabt/internal/cache"
	"mdabt/internal/faultinject"
	"mdabt/internal/host"
	"mdabt/internal/mem"
)

// Params is the cycle cost model. Defaults (DefaultParams) are documented in
// DESIGN.md §5 and derive from the paper where it gives numbers: the
// misalignment trap cost of ~1000 cycles comes from §II (refs [15][16]).
type Params struct {
	// MisalignTrapCycles is charged for every misaligned-access trap before
	// the handler runs (kernel entry/exit, context save, dispatch).
	MisalignTrapCycles uint64
	// AccessFaultCycles is charged for every access-protection trap (page
	// protection violation, watched-page store, or trap-table guard hit)
	// before the access-fault handler runs. Same kernel round trip as a
	// misalignment trap.
	AccessFaultCycles uint64
	// LoadExtraCycles is the additional latency of a load beyond the base
	// cycle (in-order pipeline load-use approximation).
	LoadExtraCycles uint64
	// MulExtraCycles is the additional latency of integer multiply.
	MulExtraCycles uint64
	// TakenBranchCycles is the extra cost of a taken branch or jump
	// (fetch redirect).
	TakenBranchCycles uint64
	// BrkCycles is the cost of a BRKBT exit to the BT runtime (register
	// spill, dispatch into the monitor).
	BrkCycles uint64
	// UseCaches enables the ES40 cache hierarchy; when false every access
	// costs its base latency only (useful for unit tests).
	UseCaches bool
	// DualIssueALU models the EV6's multi-issue pipeline cheaply: an
	// ALU-class instruction (operate format, LDA, LDAH) can issue in the
	// same cycle as the preceding instruction when that instruction left an
	// issue slot open (memory and ALU instructions do; branches and BRKBT
	// do not). This matters to the paper's trade-off — on the 4-wide EV6
	// the 7–11 instruction MDA sequence costs far fewer than 7–11 cycles
	// because its EXT/INS/MSK arithmetic issues alongside the loads, while
	// a misalignment trap costs the full ~1000 cycles regardless.
	DualIssueALU bool
}

// DefaultParams returns the ES40-flavored cost model used by all
// experiments.
func DefaultParams() Params {
	return Params{
		MisalignTrapCycles: 1000,
		AccessFaultCycles:  1000,
		LoadExtraCycles:    2,
		MulExtraCycles:     7,
		TakenBranchCycles:  1,
		BrkCycles:          80,
		UseCaches:          true,
		DualIssueALU:       true,
	}
}

// Counters accumulates execution statistics.
type Counters struct {
	Cycles        uint64 // total cycles charged
	Insts         uint64 // host instructions retired
	Loads         uint64
	Stores        uint64
	MisalignTraps uint64 // misaligned-access traps taken
	AccessFaults  uint64 // access-protection traps taken
	Brks          uint64 // BRKBT exits to the runtime
	TrapCycles    uint64 // cycles spent in trap overhead + handlers
}

// StopReason reports why Run returned.
type StopReason int

// Stop reasons.
const (
	StopHalt  StopReason = iota // BRKBT with the Halt service
	StopBrk                     // BRKBT with any other service payload
	StopLimit                   // instruction budget exhausted
)

func (r StopReason) String() string {
	switch r {
	case StopHalt:
		return "halt"
	case StopBrk:
		return "brk"
	case StopLimit:
		return "limit"
	}
	return fmt.Sprintf("stop(%d)", int(r))
}

// HaltService is the BRKBT payload that halts the machine.
const HaltService = 0

// MisalignHandler is the registered misalignment trap handler. It runs after
// the architectural trap cost has been charged and must return the PC at
// which execution resumes. Returning the faulting PC re-executes the
// (possibly patched) instruction; the handler typically either emulates the
// access (OS-style fixup, see Machine.EmulateAccess) and resumes at pc+4, or
// patches code (BT-style, paper §IV) and resumes at pc.
type MisalignHandler func(m *Machine, pc uint64, inst host.Inst, ea uint64) (resume uint64)

// AccessFaultHandler is the registered handler for access-protection traps
// (mem.AccessTrap hits and injected spurious faults). It runs after the
// architectural trap cost has been charged and returns the resume PC. The
// trapped access has NOT been performed; a handler that decides the access
// is legal completes it itself (Machine.PerformAccess) and resumes at
// pc+4. The trap-bit table is a superset filter, so handlers must tolerate
// false positives.
type AccessFaultHandler func(m *Machine, pc uint64, inst host.Inst, ea uint64) (resume uint64)

// Machine is the simulated host processor plus memory system.
type Machine struct {
	Mem    *mem.Memory
	Params Params

	regs [host.NumRegs]uint64
	pc   uint64

	caches        *cache.Hierarchy
	handler       MisalignHandler
	accessHandler AccessFaultHandler
	// faults, when non-nil, injects trap-delivery anomalies: spurious
	// misalignment traps on aligned accesses and duplicate delivery of a
	// trap the handler already serviced. Both are safe against a correct
	// handler (MDA sequences are alignment-agnostic; trap servicing is
	// idempotent), which is exactly what the chaos tests assert.
	faults *faultinject.Plan

	counters Counters

	// Decoded-instruction cache: one entry per 64-byte I-line, lazily
	// filled. Patching code invalidates the affected line, which models the
	// I-stream coherence actions (imb) a real BT must perform.
	//
	// Lines are held in a dense slice indexed by I-line offset from the
	// first line ever fetched — in practice the bottom of the translated
	// code cache, which is where all host execution lives — so the per-line
	// lookup on the fetch path is an array index, not a map probe. Lines
	// below the anchor or beyond the dense window (code placed far from the
	// anchor by tests or exotic layouts) fall back to a map.
	anchored  bool
	denseBase uint64   // line ID of dense[0]; valid once anchored
	dense     []*iline // grown on demand up to maxDenseLines
	farLines  map[uint64]*iline
	curLine   *iline
	curLineID uint64
	slotOpen  bool // an issue slot is open for an ALU-class instruction

	// Trace tier (see trace.go). traces is the PC lookup table over every
	// step of every live trace; nil means the tier is disabled. traceLo/
	// traceHi bound the covered address range so the generic loop's
	// redirect probe is a subtraction, not a map probe, when off-range.
	traces    map[uint64]traceEntry
	traceList map[uint64]*trace
	traceLo   uint64
	traceHi   uint64
	traceSeq  uint64
	traceVer  uint64 // bumped on build/flush; versions negative link caches
	tstats    TraceStats
	traceZero uint64 // pinned source for R31 reads in trace steps
	traceSink uint64 // discard target for R31 writes in trace steps
	// traceStall is set when the trace executor stops at a super-step
	// head because the remaining budget cannot fit its atomic retire;
	// runTraced consumes it and burns the tail generically, instruction
	// by instruction, exactly as an untraced run would.
	traceStall bool
}

const (
	ilineShift = 6
	ilineInsts = (1 << ilineShift) / host.InstBytes
	// maxDenseLines bounds the dense decode window (64 MiB of code).
	maxDenseLines = (64 << 20) >> ilineShift
)

type iline struct {
	valid [ilineInsts]bool
	inst  [ilineInsts]host.Inst
}

// New creates a machine over m with cost model p.
func New(m *mem.Memory, p Params) *Machine {
	mc := &Machine{
		Mem:    m,
		Params: p,
	}
	if p.UseCaches {
		mc.caches = cache.NewES40()
	}
	return mc
}

// Caches exposes the cache hierarchy (nil when disabled).
func (m *Machine) Caches() *cache.Hierarchy { return m.caches }

// Reset restores the machine to its just-built state — registers, PC,
// counters, issue-slot state, the decoded-instruction cache (window
// re-anchors on the next fetch), and the cache hierarchy — while keeping
// the allocated decode-cache arena for reuse. The registered misalignment
// handler is preserved; the fault plan is cleared (its owner re-installs
// one per run). A reset machine behaves bit-identically to a fresh one.
func (m *Machine) Reset() {
	m.regs = [host.NumRegs]uint64{}
	m.pc = 0
	m.counters = Counters{}
	m.faults = nil
	m.anchored = false
	m.denseBase = 0
	clear(m.dense)
	clear(m.farLines)
	m.curLine, m.curLineID = nil, 0
	m.slotOpen = false
	m.clearTraceState()
	if m.caches != nil {
		m.caches.Reset()
	}
}

// Counters returns a copy of the accumulated counters.
func (m *Machine) Counters() Counters { return m.counters }

// AddCycles charges extra cycles (used by the BT runtime to model
// interpreter, translator, and handler work happening "on this CPU").
func (m *Machine) AddCycles(n uint64) { m.counters.Cycles += n }

// AddTrapCycles charges handler work and also attributes it to trap time.
func (m *Machine) AddTrapCycles(n uint64) {
	m.counters.Cycles += n
	m.counters.TrapCycles += n
}

// PC returns the current program counter.
func (m *Machine) PC() uint64 { return m.pc }

// SetPC sets the program counter. The PC must be instruction-aligned.
func (m *Machine) SetPC(pc uint64) {
	if pc%host.InstBytes != 0 {
		panic(fmt.Sprintf("machine: SetPC(%#x): misaligned", pc))
	}
	m.pc = pc
}

// Reg reads register r (R31 reads as zero).
func (m *Machine) Reg(r host.Reg) uint64 {
	if r == host.Zero {
		return 0
	}
	return m.regs[r]
}

// SetReg writes register r (writes to R31 are discarded).
func (m *Machine) SetReg(r host.Reg, v uint64) {
	if r != host.Zero {
		m.regs[r] = v
	}
}

// SetMisalignHandler registers the misalignment trap handler. A nil handler
// restores the default OS-style behaviour: emulate the access and continue.
func (m *Machine) SetMisalignHandler(h MisalignHandler) { m.handler = h }

// SetAccessFaultHandler registers the access-protection trap handler. A
// nil handler restores the default behaviour: perform the access raw and
// continue (no one owns the protections).
func (m *Machine) SetAccessFaultHandler(h AccessFaultHandler) { m.accessHandler = h }

// SetFaultPlan installs a fault-injection plan for trap delivery. A nil
// plan (the default) disables injection.
func (m *Machine) SetFaultPlan(p *faultinject.Plan) { m.faults = p }

// WriteCode copies host code into memory at addr and invalidates any decoded
// instructions it covers. addr must be instruction-aligned.
func (m *Machine) WriteCode(addr uint64, words []uint32) {
	if addr%host.InstBytes != 0 {
		panic(fmt.Sprintf("machine: WriteCode(%#x): misaligned", addr))
	}
	for i, w := range words {
		m.Mem.Write32(addr+uint64(i)*host.InstBytes, w)
	}
	m.invalidate(addr, uint64(len(words))*host.InstBytes)
}

// Patch overwrites the single instruction word at addr and invalidates its
// decoded line. This is the primitive the BT exception handler uses to
// replace a faulting memory operation with a branch (paper Fig. 5).
func (m *Machine) Patch(addr uint64, word uint32) {
	m.WriteCode(addr, []uint32{word})
}

// IMB discards all decoded instructions (Alpha's instruction memory
// barrier). WriteCode/Patch already invalidate precisely; IMB exists for
// bulk invalidation such as a code cache flush.
func (m *Machine) IMB() {
	clear(m.dense) // keep the window and its capacity; drop every line
	clear(m.farLines)
	m.curLine, m.curLineID = nil, 0
	m.dropAllTraces()
}

func (m *Machine) invalidate(addr, size uint64) {
	m.invalidateTraces(addr, size)
	first := addr >> ilineShift
	last := (addr + size - 1) >> ilineShift
	for l := first; l <= last; l++ {
		if off := l - m.denseBase; m.anchored && off < uint64(len(m.dense)) {
			m.dense[off] = nil
		} else if m.farLines != nil {
			delete(m.farLines, l)
		}
		if l == m.curLineID {
			m.curLine = nil
		}
	}
}

// line returns the (possibly empty) decoded line for lineID, anchoring the
// dense window at the first line ever requested.
func (m *Machine) line(lineID uint64) *iline {
	if !m.anchored {
		m.anchored = true
		m.denseBase = lineID
	}
	if off := lineID - m.denseBase; off < maxDenseLines {
		if off >= uint64(len(m.dense)) {
			newLen := uint64(2 * len(m.dense))
			if newLen < off+64 {
				newLen = off + 64
			}
			if newLen > maxDenseLines {
				newLen = maxDenseLines
			}
			nd := make([]*iline, newLen)
			copy(nd, m.dense)
			m.dense = nd
		}
		l := m.dense[off]
		if l == nil {
			l = new(iline)
			m.dense[off] = l
		}
		return l
	}
	if m.farLines == nil {
		m.farLines = make(map[uint64]*iline)
	}
	l := m.farLines[lineID]
	if l == nil {
		l = new(iline)
		m.farLines[lineID] = l
	}
	return l
}

// fetch returns the decoded instruction at pc, charging I-cache latency on
// line crossings. The returned pointer aliases the decode cache; it stays
// valid across invalidation (lines are dropped, never reused) but callers
// must not hold it across a fetch of different code.
func (m *Machine) fetch(pc uint64) (*host.Inst, error) {
	lineID := pc >> ilineShift
	line := m.curLine
	if line == nil || lineID != m.curLineID {
		line = m.line(lineID)
		m.curLine, m.curLineID = line, lineID
		if m.caches != nil {
			m.counters.Cycles += uint64(m.caches.Fetch(pc))
		}
	}
	slot := pc >> 2 & (ilineInsts - 1)
	if !line.valid[slot] {
		inst, err := host.Decode(m.Mem.Read32(pc))
		if err != nil {
			return nil, fmt.Errorf("machine: fetch at %#x: %w", pc, err)
		}
		line.inst[slot] = inst
		line.valid[slot] = true
	}
	return &line.inst[slot], nil
}

// EmulateAccess performs inst's memory access at ea in software, ignoring
// alignment. Loads deposit into inst.Ra with the op's extension semantics;
// stores write inst.Ra's low bytes. This is what the OS-style fixup handler
// and the BT's first-trap handling use.
func (m *Machine) EmulateAccess(inst host.Inst, ea uint64) {
	size := inst.Op.MemSize()
	if inst.Op.IsStore() {
		m.Mem.Write(ea, m.Reg(inst.Ra), size)
		return
	}
	v := m.Mem.Read(ea, size)
	if inst.Op == host.LDL {
		v = uint64(int64(int32(v)))
	}
	m.SetReg(inst.Ra, v)
}

// Run executes until a BRKBT, the instruction budget is exhausted, or an
// execution error (undecodable instruction) occurs. On StopBrk/StopHalt the
// PC is left at the instruction after the BRKBT and the payload is returned.
//
// With the trace tier enabled (EnableTraces + at least one BuildTrace) Run
// drives execution through runTraced, which interleaves the pre-resolved
// trace executor with generic segments. A machine with a fault-injection
// plan installed always takes the generic loop so the injection stream is
// identical with and without traces.
func (m *Machine) Run(maxInsts uint64) (StopReason, uint32, error) {
	if m.traces == nil || m.faults != nil {
		stop, payload, err, _ := m.runLoop(maxInsts, false)
		return stop, payload, err
	}
	return m.runTraced(maxInsts)
}

// runLoop is the generic execution loop. With exitOnTrace set it returns
// redirected=true (state fully synced, PC at the target) whenever a taken
// branch or jump lands on a PC covered by a live trace, so runTraced can
// switch to the trace executor. The probe is placed only on the taken-
// branch and jump paths: executing traced PCs generically is bit-identical
// anyway, so straight-line entry into a trace region is simply picked up
// at the next control transfer (or never — harmlessly).
func (m *Machine) runLoop(maxInsts uint64, exitOnTrace bool) (_ StopReason, _ uint32, _ error, redirected bool) {
	p := &m.Params
	tlo, tspan := m.traceLo, m.traceHi-m.traceLo
	// The hottest loop in the simulator: the PC, current decoded I-line,
	// issue-slot state, and the two per-instruction counters live in locals
	// so each iteration runs out of registers instead of reloading Machine
	// fields. They are written back (and re-read) at every point where other
	// code can observe or change them: fetch misses, misalignment traps (the
	// handler may patch code and charge cycles), and every return.
	pc := m.pc
	curLine, curLineID := m.curLine, m.curLineID
	insts, cycles := m.counters.Insts, m.counters.Cycles
	slotOpen := m.slotOpen
	for n := uint64(0); n < maxInsts; n++ {
		// Fetch, with the straight-line case — same decoded I-line, slot
		// already decoded — inlined so the per-instruction path does not pay
		// a call. Line crossings and decode misses go through fetch.
		var inst *host.Inst
		if curLine != nil && pc>>ilineShift == curLineID {
			if slot := pc >> 2 & (ilineInsts - 1); curLine.valid[slot] {
				inst = &curLine.inst[slot]
			}
		}
		if inst == nil {
			m.counters.Cycles = cycles // fetch charges I-cache latency
			var err error
			inst, err = m.fetch(pc)
			cycles = m.counters.Cycles
			curLine, curLineID = m.curLine, m.curLineID
			if err != nil {
				m.pc = pc
				m.counters.Insts = insts
				m.slotOpen = slotOpen
				return StopLimit, 0, err, false
			}
		}
		insts++
		cycles++
		nextPC := pc + host.InstBytes

		format := host.FormatOf(inst.Op)
		switch format {
		case host.FormatPAL:
			m.counters.Brks++
			m.pc = nextPC
			m.curLine, m.curLineID = curLine, curLineID
			m.counters.Insts, m.counters.Cycles = insts, cycles+p.BrkCycles
			m.slotOpen = false
			if inst.Payload == HaltService {
				return StopHalt, inst.Payload, nil, false
			}
			return StopBrk, inst.Payload, nil, false

		case host.FormatMem:
			ea := m.Reg(inst.Rb) + uint64(int64(inst.Disp))
			switch inst.Op {
			case host.LDA, host.LDAH:
				if inst.Op == host.LDA {
					m.SetReg(inst.Ra, ea)
				} else {
					m.SetReg(inst.Ra, m.Reg(inst.Rb)+uint64(int64(inst.Disp))<<16)
				}
				if p.DualIssueALU {
					if slotOpen {
						cycles--
						slotOpen = false
					} else {
						slotOpen = true
					}
				}
			default:
				slotOpen = true // a memory op leaves an ALU slot open
				size := inst.Op.MemSize()
				// The short-circuit keeps the injection stream untouched by
				// genuinely misaligned accesses: only aligned ones can draw a
				// spurious trap.
				if inst.Op.Aligns() && (ea&uint64(size-1) != 0 ||
					(m.faults != nil && m.faults.Should(faultinject.SpuriousTrap))) {
					m.pc = pc
					m.counters.Insts, m.counters.Cycles = insts, cycles
					m.slotOpen = slotOpen
					m.misalignTrap(*inst, ea)
					// The handler may have patched code and charged cycles.
					pc = m.pc
					insts, cycles = m.counters.Insts, m.counters.Cycles
					curLine, curLineID = m.curLine, m.curLineID
					continue // handler set the resume PC
				}
				access := ea
				if inst.Op == host.LDQU || inst.Op == host.STQU {
					access = ea &^ 7
				}
				isStore := inst.Op.IsStore()
				// Access-protection trap: the dense trap-bit table filters
				// protected, watched, and guard pages; the real check runs
				// first so genuinely trapping accesses never consult the
				// injection stream.
				if m.Mem.AccessTrap(access, size, isStore) ||
					(m.faults != nil && m.faults.Should(faultinject.SpuriousAccessFault)) {
					m.pc = pc
					m.counters.Insts, m.counters.Cycles = insts, cycles
					m.slotOpen = slotOpen
					m.accessTrap(*inst, ea)
					// The handler may have redirected the PC and charged cycles.
					pc = m.pc
					insts, cycles = m.counters.Insts, m.counters.Cycles
					curLine, curLineID = m.curLine, m.curLineID
					continue
				}
				if isStore {
					m.counters.Stores++
					m.Mem.Write(access, m.Reg(inst.Ra), size)
				} else {
					m.counters.Loads++
					cycles += p.LoadExtraCycles
					v := m.Mem.Read(access, size)
					if inst.Op == host.LDL {
						v = uint64(int64(int32(v)))
					}
					m.SetReg(inst.Ra, v)
				}
				if m.caches != nil {
					cycles += uint64(m.caches.Data(access))
				}
			}
			pc = nextPC

		case host.FormatOpr:
			bv := m.Reg(inst.Rb)
			if inst.IsLit {
				bv = uint64(inst.Lit)
			}
			m.SetReg(inst.Rc, host.EvalOp(inst.Op, m.Reg(inst.Ra), bv))
			if inst.Op == host.MULL || inst.Op == host.MULQ {
				cycles += p.MulExtraCycles
				slotOpen = false
			} else if p.DualIssueALU {
				if slotOpen {
					cycles-- // issued alongside the previous instruction
					slotOpen = false
				} else {
					slotOpen = true
				}
			}
			pc = nextPC

		case host.FormatBra:
			// An unconditional BR with no link register is a pure fetch
			// redirect; the EV6 front end folds it (it can also dual-issue).
			uncond := inst.Op == host.BR && inst.Ra == host.Zero
			if uncond && p.DualIssueALU {
				if slotOpen {
					cycles--
					slotOpen = false
				} else {
					slotOpen = true
				}
			} else {
				slotOpen = false
			}
			if host.BranchTaken(inst.Op, m.Reg(inst.Ra)) {
				if inst.Op == host.BR || inst.Op == host.BSR {
					m.SetReg(inst.Ra, nextPC)
				}
				pc = inst.BranchTarget(pc)
				if !uncond {
					cycles += p.TakenBranchCycles
				}
				if exitOnTrace && pc-tlo < tspan {
					if _, ok := m.traces[pc]; ok {
						m.pc = pc
						m.curLine, m.curLineID = curLine, curLineID
						m.counters.Insts, m.counters.Cycles = insts, cycles
						m.slotOpen = slotOpen
						return StopLimit, 0, nil, true
					}
				}
			} else {
				pc = nextPC
			}

		case host.FormatJmp:
			slotOpen = false
			target := m.Reg(inst.Rb) &^ 3
			m.SetReg(inst.Ra, nextPC)
			pc = target
			cycles += p.TakenBranchCycles
			if exitOnTrace && pc-tlo < tspan {
				if _, ok := m.traces[pc]; ok {
					m.pc = pc
					m.curLine, m.curLineID = curLine, curLineID
					m.counters.Insts, m.counters.Cycles = insts, cycles
					m.slotOpen = slotOpen
					return StopLimit, 0, nil, true
				}
			}
		}
	}
	m.pc = pc
	m.curLine, m.curLineID = curLine, curLineID
	m.counters.Insts, m.counters.Cycles = insts, cycles
	m.slotOpen = slotOpen
	return StopLimit, 0, nil, false
}

// misalignTrap charges the trap cost and dispatches to the handler. With a
// fault plan installed the serviced trap may be delivered again (duplicate
// delivery): the full trap cost recharges and the handler reruns on the
// original faulting PC — trap servicing must be, and is, idempotent.
func (m *Machine) misalignTrap(inst host.Inst, ea uint64) {
	pc := m.pc
	for {
		m.counters.MisalignTraps++
		m.counters.Cycles += m.Params.MisalignTrapCycles
		m.counters.TrapCycles += m.Params.MisalignTrapCycles
		if m.handler != nil {
			m.pc = m.handler(m, pc, inst, ea)
			if m.pc%host.InstBytes != 0 {
				panic(fmt.Sprintf("machine: misalign handler returned misaligned pc %#x", m.pc))
			}
		} else {
			// Default OS behaviour: fix up the access in software and continue.
			m.EmulateAccess(inst, ea)
			m.pc = pc + host.InstBytes
		}
		if !m.faults.Should(faultinject.DuplicateTrap) {
			return
		}
	}
}

// accessTrap charges the access-fault trap cost and dispatches to the
// access-fault handler. Unlike misalignTrap there is no duplicate
// redelivery: the handler does not complete the access in place, so a
// replay would observe post-handler state.
func (m *Machine) accessTrap(inst host.Inst, ea uint64) {
	pc := m.pc
	m.counters.AccessFaults++
	m.counters.Cycles += m.Params.AccessFaultCycles
	m.counters.TrapCycles += m.Params.AccessFaultCycles
	if m.accessHandler != nil {
		m.pc = m.accessHandler(m, pc, inst, ea)
		if m.pc%host.InstBytes != 0 {
			panic(fmt.Sprintf("machine: access-fault handler returned misaligned pc %#x", m.pc))
		}
		return
	}
	// Default: nobody owns the protections (bare machine, or a spurious
	// injection with no BT attached) — complete the access and continue.
	m.PerformAccess(inst, ea)
	m.pc = pc + host.InstBytes
}

// PerformAccess executes inst's memory access at ea exactly as the Run
// loop would — including the quadword masking of LDQU/STQU and the LDL
// sign extension — charging the load/store counter but no cycles. The BT's
// access-fault handler uses it to complete an access the trap-bit table
// flagged as a false positive.
func (m *Machine) PerformAccess(inst host.Inst, ea uint64) {
	access := ea
	if inst.Op == host.LDQU || inst.Op == host.STQU {
		access = ea &^ 7
	}
	size := inst.Op.MemSize()
	if inst.Op.IsStore() {
		m.counters.Stores++
		m.Mem.Write(access, m.Reg(inst.Ra), size)
		return
	}
	m.counters.Loads++
	v := m.Mem.Read(access, size)
	if inst.Op == host.LDL {
		v = uint64(int64(int32(v)))
	}
	m.SetReg(inst.Ra, v)
}
