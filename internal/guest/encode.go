package guest

import (
	"encoding/binary"
	"fmt"
)

// The guest encoding is x86-flavored variable-length:
//
//	opcode | [modrm] | [sib] | [disp8/disp32] | [imm32] | [cond] | [rel32]
//
// modrm: mode<7:6> reg<5:3> rm<2:0>. mode 11 means rm is a register
// operand; otherwise rm is the base register (rm=4 escapes to a SIB byte,
// as on IA-32, used when the base is ESP or an index is present), and mode
// selects no displacement (00), disp8 (01), or disp32 (10).
// sib: scale<7:6> (log2) index<5:3> base<2:0>; index=4 encodes "no index".

const (
	modeNoDisp = 0
	modeDisp8  = 1
	modeDisp32 = 2
	modeReg    = 3
	rmSIB      = 4
	sibNoIndex = 4
)

// MaxInstLen is the longest possible guest instruction encoding.
const MaxInstLen = 11

func modrm(mode, reg, rm uint8) byte { return mode<<6 | reg<<3 | rm }

// memNeedsSIB reports whether the memory operand requires a SIB byte.
func memNeedsSIB(m MemRef) bool { return m.HasIndex || m.Base == ESP }

func dispMode(m MemRef) uint8 {
	switch {
	case m.Disp == 0:
		return modeNoDisp
	case m.Disp >= -128 && m.Disp <= 127:
		return modeDisp8
	default:
		return modeDisp32
	}
}

func scaleBits(s uint8) (uint8, error) {
	switch s {
	case 1:
		return 0, nil
	case 2:
		return 1, nil
	case 4:
		return 2, nil
	case 8:
		return 3, nil
	}
	return 0, fmt.Errorf("guest: invalid scale %d", s)
}

// appendMem encodes a memory operand (modrm with the given reg field, plus
// sib/disp) into dst.
func appendMem(dst []byte, reg uint8, m MemRef) ([]byte, error) {
	if m.Base >= NumRegs || (m.HasIndex && m.Index >= NumRegs) {
		return nil, fmt.Errorf("guest: encode: memory operand register out of range")
	}
	if m.HasIndex && m.Index == ESP {
		return nil, fmt.Errorf("guest: encode: esp cannot be an index register")
	}
	mode := dispMode(m)
	if memNeedsSIB(m) {
		sc := uint8(0)
		idx := uint8(sibNoIndex)
		if m.HasIndex {
			var err error
			sc, err = scaleBits(m.Scale)
			if err != nil {
				return nil, err
			}
			idx = uint8(m.Index)
		}
		dst = append(dst, modrm(mode, reg, rmSIB), sc<<6|idx<<3|uint8(m.Base))
	} else {
		dst = append(dst, modrm(mode, reg, uint8(m.Base)))
	}
	switch mode {
	case modeDisp8:
		dst = append(dst, byte(int8(m.Disp)))
	case modeDisp32:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Disp))
	}
	return dst, nil
}

// Encode appends the encoding of inst to dst and returns the extended slice.
func Encode(dst []byte, inst Inst) ([]byte, error) {
	if inst.Op >= numOps {
		return nil, fmt.Errorf("guest: encode: unknown op %d", uint8(inst.Op))
	}
	if inst.R1 >= NumRegs || inst.R2 >= NumRegs {
		return nil, fmt.Errorf("guest: encode %v: register out of range", inst.Op)
	}
	if inst.FR1 >= NumFRegs || inst.FR2 >= NumFRegs {
		return nil, fmt.Errorf("guest: encode %v: f-register out of range", inst.Op)
	}
	dst = append(dst, byte(inst.Op))
	var err error
	switch opLayouts[inst.Op] {
	case layNone:
	case layR:
		dst = append(dst, modrm(modeReg, uint8(inst.R1), 0))
	case layRR:
		dst = append(dst, modrm(modeReg, uint8(inst.R1), uint8(inst.R2)))
	case layRI:
		dst = append(dst, modrm(modeReg, uint8(inst.R1), 0))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(inst.Imm))
	case layRM:
		dst, err = appendMem(dst, uint8(inst.R1), inst.Mem)
	case layMR:
		dst, err = appendMem(dst, uint8(inst.R1), inst.Mem)
	case layFM:
		dst, err = appendMem(dst, uint8(inst.FR1), inst.Mem)
	case layMF:
		dst, err = appendMem(dst, uint8(inst.FR1), inst.Mem)
	case layFF:
		dst = append(dst, modrm(modeReg, uint8(inst.FR1), uint8(inst.FR2)))
	case layRel:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(inst.Rel))
	case layCondRel:
		if inst.Cond >= numConds {
			return nil, fmt.Errorf("guest: encode jcc: bad condition %d", uint8(inst.Cond))
		}
		dst = append(dst, byte(inst.Cond))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(inst.Rel))
	}
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// EncodedLen returns the encoding length of inst in bytes.
func EncodedLen(inst Inst) (int, error) {
	// Encoding into a scratch buffer keeps one source of truth for lengths.
	buf, err := Encode(make([]byte, 0, MaxInstLen), inst)
	if err != nil {
		return 0, err
	}
	return len(buf), nil
}

// Decode decodes one instruction from buf. It returns the instruction and
// its encoded length.
func Decode(buf []byte) (Inst, int, error) {
	if len(buf) == 0 {
		return Inst{}, 0, fmt.Errorf("guest: decode: empty buffer")
	}
	op := Op(buf[0])
	if op >= numOps {
		return Inst{}, 0, fmt.Errorf("guest: decode: unknown opcode %#x", buf[0])
	}
	inst := Inst{Op: op}
	pos := 1
	need := func(n int) error {
		if len(buf) < pos+n {
			return fmt.Errorf("guest: decode %v: truncated instruction", op)
		}
		return nil
	}
	readMem := func() (uint8, error) {
		if err := need(1); err != nil {
			return 0, err
		}
		mb := buf[pos]
		pos++
		mode, reg, rm := mb>>6, mb>>3&7, mb&7
		if mode == modeReg {
			return 0, fmt.Errorf("guest: decode %v: register mode in memory operand", op)
		}
		m := MemRef{}
		if rm == rmSIB {
			if err := need(1); err != nil {
				return 0, err
			}
			sib := buf[pos]
			pos++
			m.Base = Reg(sib & 7)
			idx := sib >> 3 & 7
			if idx != sibNoIndex {
				m.HasIndex = true
				m.Index = Reg(idx)
				m.Scale = 1 << (sib >> 6)
			}
		} else {
			m.Base = Reg(rm)
		}
		switch mode {
		case modeDisp8:
			if err := need(1); err != nil {
				return 0, err
			}
			m.Disp = int32(int8(buf[pos]))
			pos++
		case modeDisp32:
			if err := need(4); err != nil {
				return 0, err
			}
			m.Disp = int32(binary.LittleEndian.Uint32(buf[pos:]))
			pos += 4
		}
		inst.Mem = m
		return reg, nil
	}
	readImm := func() (int32, error) {
		if err := need(4); err != nil {
			return 0, err
		}
		v := int32(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
		return v, nil
	}

	readRegModRM := func() (byte, error) {
		if err := need(1); err != nil {
			return 0, err
		}
		mb := buf[pos]
		pos++
		if mb>>6 != modeReg {
			return 0, fmt.Errorf("guest: decode %v: register operand requires mode 11", op)
		}
		return mb, nil
	}
	var err error
	switch opLayouts[op] {
	case layNone:
	case layR:
		var mb byte
		if mb, err = readRegModRM(); err == nil {
			if mb&7 != 0 {
				err = fmt.Errorf("guest: decode %v: rm field must be zero", op)
				break
			}
			inst.R1 = Reg(mb >> 3 & 7)
		}
	case layRR:
		var mb byte
		if mb, err = readRegModRM(); err == nil {
			inst.R1, inst.R2 = Reg(mb>>3&7), Reg(mb&7)
		}
	case layRI:
		var mb byte
		if mb, err = readRegModRM(); err == nil {
			if mb&7 != 0 {
				err = fmt.Errorf("guest: decode %v: rm field must be zero", op)
				break
			}
			inst.R1 = Reg(mb >> 3 & 7)
			inst.Imm, err = readImm()
		}
	case layRM, layMR:
		var reg uint8
		if reg, err = readMem(); err == nil {
			inst.R1 = Reg(reg)
		}
	case layFM, layMF:
		var reg uint8
		if reg, err = readMem(); err == nil {
			if reg >= NumFRegs {
				err = fmt.Errorf("guest: decode %v: f-register %d out of range", op, reg)
			}
			inst.FR1 = FReg(reg)
		}
	case layFF:
		var mb byte
		if mb, err = readRegModRM(); err == nil {
			f1, f2 := mb>>3&7, mb&7
			if f1 >= NumFRegs || f2 >= NumFRegs {
				err = fmt.Errorf("guest: decode %v: f-register out of range", op)
			}
			inst.FR1, inst.FR2 = FReg(f1), FReg(f2)
		}
	case layRel:
		inst.Rel, err = readImm()
	case layCondRel:
		if err = need(1); err == nil {
			if buf[pos] >= uint8(numConds) {
				err = fmt.Errorf("guest: decode jcc: bad condition %d", buf[pos])
			}
			inst.Cond = Cond(buf[pos])
			pos++
			if err == nil {
				inst.Rel, err = readImm()
			}
		}
	}
	if err != nil {
		return Inst{}, 0, err
	}
	return inst, pos, nil
}
