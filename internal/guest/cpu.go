package guest

import (
	"fmt"

	"mdabt/internal/mem"
)

// Standard guest address-space layout. The stack grows down from StackTop;
// code and data bases mirror a conventional 32-bit ELF process image.
const (
	CodeBase  = 0x00400000
	DataBase  = 0x10000000
	StackTop  = 0x7FF00000
	SharedLib = 0x40000000 // "shared library" code region (paper §II)
)

// CPU is the architectural state of the guest processor plus a reference
// interpreter for it. It is the semantic ground truth: the binary
// translator's output is validated against it by co-simulation tests.
type CPU struct {
	R   [NumRegs]uint32
	F   [NumFRegs]uint64
	EIP uint32
	// EFLAGS subset.
	ZF, SF, CF, OF bool
	Halted         bool
}

// Reset clears the CPU and sets EIP/ESP for a fresh run.
func (c *CPU) Reset(entry uint32) {
	*c = CPU{EIP: entry}
	c.R[ESP] = StackTop
}

// StepInfo describes one executed instruction, for profilers and tracers.
// String-copy steps perform two accesses (a load and a store); the second
// is reported through the *2 fields.
type StepInfo struct {
	PC      uint32 // address of the instruction
	Op      Op
	Len     int    // encoded length
	IsMem   bool   // performed a data memory access
	EA      uint32 // effective address of that access
	Size    int    // access size in bytes
	IsStore bool
	MDA     bool // the access was misaligned (would trap on the host ISA)

	IsMem2   bool // second access of a string-copy step
	EA2      uint32
	Size2    int
	IsStore2 bool
	MDA2     bool
}

// EA computes the effective address of a memory operand.
func (c *CPU) EA(m MemRef) uint32 {
	ea := c.R[m.Base] + uint32(m.Disp)
	if m.HasIndex {
		ea += c.R[m.Index] * uint32(m.Scale)
	}
	return ea
}

// IsMDA reports whether an access of the given size at ea is misaligned
// (size > 1 and ea not a multiple of size) — the condition that traps on
// the alignment-restricted host.
func IsMDA(ea uint32, size int) bool {
	return size > 1 && ea&uint32(size-1) != 0
}

func (c *CPU) setZFSF(v uint32) {
	c.ZF = v == 0
	c.SF = int32(v) < 0
}

func (c *CPU) setLogicFlags(v uint32) {
	c.setZFSF(v)
	c.CF, c.OF = false, false
}

func (c *CPU) setSubFlags(a, b uint32) uint32 {
	r := a - b
	c.setZFSF(r)
	c.CF = a < b
	c.OF = (a^b)&(a^r)&0x80000000 != 0
	return r
}

func (c *CPU) setAddFlags(a, b uint32) uint32 {
	r := a + b
	c.setZFSF(r)
	c.CF = r < a
	c.OF = (a^r)&(b^r)&0x80000000 != 0
	return r
}

// CondTaken evaluates cond against the current flags.
func (c *CPU) CondTaken(cond Cond) bool {
	switch cond {
	case E:
		return c.ZF
	case NE:
		return !c.ZF
	case L:
		return c.SF != c.OF
	case LE:
		return c.ZF || c.SF != c.OF
	case G:
		return !c.ZF && c.SF == c.OF
	case GE:
		return c.SF == c.OF
	case B:
		return c.CF
	case BE:
		return c.CF || c.ZF
	case A:
		return !c.CF && !c.ZF
	case AE:
		return !c.CF
	case S:
		return c.SF
	case NS:
		return !c.SF
	}
	panic(fmt.Sprintf("guest: CondTaken: bad condition %d", uint8(cond)))
}

// Step decodes and executes one instruction from m at EIP.
func (c *CPU) Step(m *mem.Memory) (StepInfo, error) {
	if c.Halted {
		return StepInfo{}, fmt.Errorf("guest: step: CPU halted")
	}
	var buf [MaxInstLen]byte
	m.ReadBytes(uint64(c.EIP), buf[:])
	inst, n, err := Decode(buf[:])
	if err != nil {
		return StepInfo{}, fmt.Errorf("guest: step at %#x: %w", c.EIP, err)
	}
	if m.Armed() {
		if mf := m.CheckFetch(uint64(c.EIP), n); mf != nil {
			return StepInfo{}, &Fault{PC: c.EIP, Mem: *mf}
		}
	}
	info, err := c.Exec(m, c.EIP, &inst, n)
	return info, err
}

// Exec executes one already-decoded instruction located at pc with encoded
// length n. EIP is advanced (or redirected for branches). The instruction is
// taken by pointer so cached decodes are executed without copying; Exec never
// mutates it.
//
// Exec is fault-precise: when the memory has protections armed, every data
// access is checked before any architectural state is mutated, and a
// violation returns a *Fault with the CPU exactly in its pre-instruction
// state — EIP on the faulting instruction, ESP undisturbed, zero store
// bytes committed.
func (c *CPU) Exec(m *mem.Memory, pc uint32, inst *Inst, n int) (StepInfo, error) {
	info := StepInfo{PC: pc, Op: inst.Op, Len: n}
	next := pc + uint32(n)
	c.EIP = next

	// check validates an access before it (or any other side effect of the
	// instruction) happens; on a violation it rewinds EIP and builds the
	// guest fault.
	check := func(ea uint32, size int, store bool) *Fault {
		if !m.Armed() {
			return nil
		}
		if mf := m.CheckRange(uint64(ea), size, store); mf != nil {
			c.EIP = pc
			return &Fault{PC: pc, Mem: *mf}
		}
		return nil
	}
	access := func(ea uint32, size int, store bool) {
		info.IsMem = true
		info.EA = ea
		info.Size = size
		info.IsStore = store
		info.MDA = IsMDA(ea, size)
	}
	push := func(v uint32) *Fault {
		ea := c.R[ESP] - 4
		if f := check(ea, 4, true); f != nil {
			return f
		}
		c.R[ESP] = ea
		access(ea, 4, true)
		m.Write32(uint64(ea), v)
		return nil
	}
	pop := func() (uint32, *Fault) {
		ea := c.R[ESP]
		if f := check(ea, 4, false); f != nil {
			return 0, f
		}
		v := m.Read32(uint64(ea))
		access(ea, 4, false)
		c.R[ESP] += 4
		return v, nil
	}

	switch inst.Op {
	case NOP:
	case HALT:
		c.Halted = true
	case MOVri:
		c.R[inst.R1] = uint32(inst.Imm)
	case MOVrr:
		c.R[inst.R1] = c.R[inst.R2]
	case LEA:
		c.R[inst.R1] = c.EA(inst.Mem)

	case LD4:
		ea := c.EA(inst.Mem)
		if f := check(ea, 4, false); f != nil {
			return info, f
		}
		access(ea, 4, false)
		c.R[inst.R1] = m.Read32(uint64(ea))
	case LD2Z:
		ea := c.EA(inst.Mem)
		if f := check(ea, 2, false); f != nil {
			return info, f
		}
		access(ea, 2, false)
		c.R[inst.R1] = uint32(m.Read16(uint64(ea)))
	case LD2S:
		ea := c.EA(inst.Mem)
		if f := check(ea, 2, false); f != nil {
			return info, f
		}
		access(ea, 2, false)
		c.R[inst.R1] = uint32(int32(int16(m.Read16(uint64(ea)))))
	case LD1Z:
		ea := c.EA(inst.Mem)
		if f := check(ea, 1, false); f != nil {
			return info, f
		}
		access(ea, 1, false)
		c.R[inst.R1] = uint32(m.Read8(uint64(ea)))
	case LD1S:
		ea := c.EA(inst.Mem)
		if f := check(ea, 1, false); f != nil {
			return info, f
		}
		access(ea, 1, false)
		c.R[inst.R1] = uint32(int32(int8(m.Read8(uint64(ea)))))
	case ST4:
		ea := c.EA(inst.Mem)
		if f := check(ea, 4, true); f != nil {
			return info, f
		}
		access(ea, 4, true)
		m.Write32(uint64(ea), c.R[inst.R1])
	case ST2:
		ea := c.EA(inst.Mem)
		if f := check(ea, 2, true); f != nil {
			return info, f
		}
		access(ea, 2, true)
		m.Write16(uint64(ea), uint16(c.R[inst.R1]))
	case ST1:
		ea := c.EA(inst.Mem)
		if f := check(ea, 1, true); f != nil {
			return info, f
		}
		access(ea, 1, true)
		m.Write8(uint64(ea), uint8(c.R[inst.R1]))
	case FLD8:
		ea := c.EA(inst.Mem)
		if f := check(ea, 8, false); f != nil {
			return info, f
		}
		access(ea, 8, false)
		c.F[inst.FR1] = m.Read64(uint64(ea))
	case FST8:
		ea := c.EA(inst.Mem)
		if f := check(ea, 8, true); f != nil {
			return info, f
		}
		access(ea, 8, true)
		m.Write64(uint64(ea), c.F[inst.FR1])

	case ADDrr:
		c.R[inst.R1] = c.setAddFlags(c.R[inst.R1], c.R[inst.R2])
	case ADDri:
		c.R[inst.R1] = c.setAddFlags(c.R[inst.R1], uint32(inst.Imm))
	case SUBrr:
		c.R[inst.R1] = c.setSubFlags(c.R[inst.R1], c.R[inst.R2])
	case SUBri:
		c.R[inst.R1] = c.setSubFlags(c.R[inst.R1], uint32(inst.Imm))
	case ANDrr:
		c.R[inst.R1] &= c.R[inst.R2]
		c.setLogicFlags(c.R[inst.R1])
	case ANDri:
		c.R[inst.R1] &= uint32(inst.Imm)
		c.setLogicFlags(c.R[inst.R1])
	case ORrr:
		c.R[inst.R1] |= c.R[inst.R2]
		c.setLogicFlags(c.R[inst.R1])
	case ORri:
		c.R[inst.R1] |= uint32(inst.Imm)
		c.setLogicFlags(c.R[inst.R1])
	case XORrr:
		c.R[inst.R1] ^= c.R[inst.R2]
		c.setLogicFlags(c.R[inst.R1])
	case XORri:
		c.R[inst.R1] ^= uint32(inst.Imm)
		c.setLogicFlags(c.R[inst.R1])
	case IMULrr:
		c.R[inst.R1] *= c.R[inst.R2]
	case IMULri:
		c.R[inst.R1] *= uint32(inst.Imm)
	case CMPrr:
		c.setSubFlags(c.R[inst.R1], c.R[inst.R2])
	case CMPri:
		c.setSubFlags(c.R[inst.R1], uint32(inst.Imm))
	case TESTrr:
		c.setLogicFlags(c.R[inst.R1] & c.R[inst.R2])
	case SHLri:
		c.R[inst.R1] <<= uint32(inst.Imm) & 31
	case SHRri:
		c.R[inst.R1] >>= uint32(inst.Imm) & 31
	case SARri:
		c.R[inst.R1] = uint32(int32(c.R[inst.R1]) >> (uint32(inst.Imm) & 31))
	case FADDrr:
		c.F[inst.FR1] += c.F[inst.FR2]
	case FMOVrr:
		c.F[inst.FR1] = c.F[inst.FR2]

	case REPMOVS4:
		// One architectural step: copy a single dword, or fall through when
		// the count is exhausted. EIP stays on the instruction while work
		// remains, so the instruction re-executes (interruptible REP).
		if c.R[ECX] == 0 {
			break
		}
		src, dst := c.R[ESI], c.R[EDI]
		// Check both halves of the copy before either commits: a faulting
		// step leaves ESI/EDI/ECX at the values that name the faulting
		// dword, which is exactly the resumable-REP architecture.
		if f := check(src, 4, false); f != nil {
			return info, f
		}
		if f := check(dst, 4, true); f != nil {
			return info, f
		}
		access(src, 4, false)
		info.IsMem2 = true
		info.EA2 = dst
		info.Size2 = 4
		info.IsStore2 = true
		info.MDA2 = IsMDA(dst, 4)
		m.Write32(uint64(dst), m.Read32(uint64(src)))
		c.R[ESI] += 4
		c.R[EDI] += 4
		c.R[ECX]--
		if c.R[ECX] != 0 {
			c.EIP = pc // re-execute
		}

	case JMP:
		c.EIP = next + uint32(inst.Rel)
	case JCC:
		if c.CondTaken(inst.Cond) {
			c.EIP = next + uint32(inst.Rel)
		}
	case CALL:
		if f := push(next); f != nil {
			return info, f
		}
		c.EIP = next + uint32(inst.Rel)
	case RET:
		v, f := pop()
		if f != nil {
			return info, f
		}
		c.EIP = v
	case PUSH:
		if f := push(c.R[inst.R1]); f != nil {
			return info, f
		}
	case POP:
		v, f := pop()
		if f != nil {
			return info, f
		}
		c.R[inst.R1] = v

	default:
		return info, fmt.Errorf("guest: exec: unhandled op %v", inst.Op)
	}
	return info, nil
}
