// Package guest defines the source ISA of the binary translator: a 32-bit
// x86-like CISC with no alignment restrictions on data accesses.
//
// The ISA keeps the properties of IA-32 that matter to the paper — eight
// 32-bit GPRs in the EAX..EDI order, an EFLAGS condition-code model driven
// by CMP/TEST, base+index*scale+disp addressing, variable-length
// (opcode/modrm/sib/disp/imm) instruction encoding, PUSH/POP/CALL/RET stack
// traffic, and byte/word/longword/quadword memory operands that may be
// misaligned. Quadword accesses go through a small 64-bit register file
// (F0..F3) standing in for the x87/SSE registers whose 8-byte loads and
// stores produce most of the FP benchmarks' MDAs (Table I).
//
// Two deliberate simplifications, documented here and in DESIGN.md: ALU
// operations are register/register or register/immediate (no read-modify-
// write memory operands — a front-end RISCification every real DBT performs
// anyway), and a conditional branch must be dominated by a CMP/TEST in its
// own basic block (the translator materializes the condition from that
// comparison, sidestepping lazy-flags machinery that is orthogonal to MDA
// handling).
package guest

import "fmt"

// Reg is a guest general-purpose 32-bit register.
type Reg uint8

// GPRs in IA-32 numbering.
const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
	// NumRegs is the number of guest GPRs.
	NumRegs = 8
)

var regNames = [NumRegs]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

// String returns the IA-32 register name.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// FReg is a guest 64-bit register (x87/SSE stand-in).
type FReg uint8

// Quadword registers.
const (
	F0 FReg = iota
	F1
	F2
	F3
	// NumFRegs is the number of guest quadword registers.
	NumFRegs = 4
)

// String returns the register name.
func (f FReg) String() string { return fmt.Sprintf("f%d", uint8(f)) }

// Cond is an IA-32 condition code.
type Cond uint8

// Condition codes.
const (
	E  Cond = iota // equal (ZF)
	NE             // not equal
	L              // signed less (SF != OF)
	LE             // signed less-or-equal
	G              // signed greater
	GE             // signed greater-or-equal
	B              // unsigned below (CF)
	BE             // unsigned below-or-equal
	A              // unsigned above
	AE             // unsigned above-or-equal
	S              // sign (SF)
	NS             // not sign
	numConds
)

var condNames = [numConds]string{"e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae", "s", "ns"}

// Inverse returns the negated condition (E↔NE, L↔GE, …), used by the
// translator's trace formation to fall through along the hot path.
func (c Cond) Inverse() Cond {
	switch c {
	case E:
		return NE
	case NE:
		return E
	case L:
		return GE
	case GE:
		return L
	case LE:
		return G
	case G:
		return LE
	case B:
		return AE
	case AE:
		return B
	case BE:
		return A
	case A:
		return BE
	case S:
		return NS
	case NS:
		return S
	}
	return c
}

// String returns the condition suffix ("e", "ne", ...).
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cc?%d", uint8(c))
}

// Op is a guest semantic opcode.
type Op uint8

// Guest opcodes.
const (
	NOP Op = iota
	HALT

	MOVri // r1 = imm
	MOVrr // r1 = r2
	LEA   // r1 = &mem

	LD4  // r1 = *(int32*)mem
	LD2Z // r1 = zext *(uint16*)mem
	LD2S // r1 = sext *(int16*)mem
	LD1Z // r1 = zext *(uint8*)mem
	LD1S // r1 = sext *(int8*)mem
	ST4  // *(int32*)mem = r1
	ST2  // *(int16*)mem = r1 (low 16 bits)
	ST1  // *(int8*)mem = r1 (low 8 bits)
	FLD8 // f1 = *(uint64*)mem
	FST8 // *(uint64*)mem = f1

	ADDrr // r1 += r2 (sets ZF/SF/CF/OF)
	SUBrr
	ANDrr // sets ZF/SF, clears CF/OF
	ORrr
	XORrr
	IMULrr // flags unchanged (defined-as-preserved; see package doc)
	CMPrr  // flags from r1 - r2
	TESTrr // flags from r1 & r2
	ADDri
	SUBri
	ANDri
	ORri
	XORri
	IMULri
	CMPri
	SHLri // r1 <<= imm&31; flags unchanged
	SHRri
	SARri
	FADDrr // f1 += f2 (64-bit two's-complement; flags unchanged)
	FMOVrr // f1 = f2

	JMP  // relative
	JCC  // conditional relative
	CALL // push return address, jump relative
	RET  // pop target
	PUSH // push r1
	POP  // pop into r1

	// REPMOVS4 copies ECX dwords from [ESI] to [EDI] (x86 `rep movsd`,
	// the memcpy idiom behind much of §II's shared-library MDA traffic).
	// Architecturally it iterates: each step copies one dword, advances
	// ESI/EDI by 4, decrements ECX, and leaves EIP in place until ECX
	// reaches zero — so it is interruptible, exactly like the real
	// instruction. Flags are unaffected.
	REPMOVS4

	numOps
)

var opNames = [numOps]string{
	"nop", "halt",
	"mov", "mov", "lea",
	"mov", "movzx", "movsx", "movzx", "movsx",
	"mov", "mov", "mov", "fld", "fst",
	"add", "sub", "and", "or", "xor", "imul", "cmp", "test",
	"add", "sub", "and", "or", "xor", "imul", "cmp", "shl", "shr", "sar",
	"fadd", "fmov",
	"jmp", "j", "call", "ret", "push", "pop",
	"rep movsd",
}

// String returns the IA-32-flavored mnemonic.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op?%d", uint8(op))
}

// MemRef is a guest memory operand: base + index*scale + disp.
type MemRef struct {
	Base     Reg
	Index    Reg
	HasIndex bool
	Scale    uint8 // 1, 2, 4, or 8
	Disp     int32
}

func (m MemRef) String() string {
	s := "["
	s += m.Base.String()
	if m.HasIndex {
		s += fmt.Sprintf("+%s*%d", m.Index, m.Scale)
	}
	if m.Disp != 0 {
		s += fmt.Sprintf("%+d", m.Disp)
	}
	return s + "]"
}

// Inst is one decoded guest instruction.
type Inst struct {
	Op   Op
	R1   Reg  // first GPR operand (dst for loads/ALU, src for stores)
	R2   Reg  // second GPR operand
	FR1  FReg // first quadword operand
	FR2  FReg // second quadword operand
	Mem  MemRef
	Imm  int32 // immediate
	Cond Cond  // JCC condition
	Rel  int32 // branch displacement relative to the next instruction
}

// Operand layout classes.
type layout uint8

const (
	layNone layout = iota
	layR           // one GPR
	layRR          // two GPRs
	layRI          // GPR + imm32
	layRM          // GPR + mem
	layMR          // mem + GPR
	layFM          // FReg + mem
	layMF          // mem + FReg
	layFF          // two FRegs
	layRel         // rel32
	layCondRel
)

var opLayouts = [numOps]layout{
	NOP: layNone, HALT: layNone,
	MOVri: layRI, MOVrr: layRR, LEA: layRM,
	LD4: layRM, LD2Z: layRM, LD2S: layRM, LD1Z: layRM, LD1S: layRM,
	ST4: layMR, ST2: layMR, ST1: layMR,
	FLD8: layFM, FST8: layMF,
	ADDrr: layRR, SUBrr: layRR, ANDrr: layRR, ORrr: layRR, XORrr: layRR,
	IMULrr: layRR, CMPrr: layRR, TESTrr: layRR,
	ADDri: layRI, SUBri: layRI, ANDri: layRI, ORri: layRI, XORri: layRI,
	IMULri: layRI, CMPri: layRI, SHLri: layRI, SHRri: layRI, SARri: layRI,
	FADDrr: layFF, FMOVrr: layFF,
	JMP: layRel, JCC: layCondRel, CALL: layRel,
	RET: layNone, PUSH: layR, POP: layR,
	REPMOVS4: layNone,
}

// MemSize returns the memory access size in bytes of op, or 0 for
// non-memory ops. PUSH/POP/CALL/RET access the stack with 4-byte operands.
func (op Op) MemSize() int {
	switch op {
	case LD1Z, LD1S, ST1:
		return 1
	case LD2Z, LD2S, ST2:
		return 2
	case LD4, ST4, PUSH, POP, CALL, RET, REPMOVS4:
		return 4
	case FLD8, FST8:
		return 8
	}
	return 0
}

// IsLoad reports whether op reads data memory.
func (op Op) IsLoad() bool {
	switch op {
	case LD4, LD2Z, LD2S, LD1Z, LD1S, FLD8, POP, RET, REPMOVS4:
		return true
	}
	return false
}

// IsStore reports whether op writes data memory.
func (op Op) IsStore() bool {
	switch op {
	case ST4, ST2, ST1, FST8, PUSH, CALL, REPMOVS4:
		return true
	}
	return false
}

// IsExplicitMem reports whether op carries a MemRef operand (loads/stores
// other than the implicit stack accesses).
func (op Op) IsExplicitMem() bool {
	switch opLayouts[op] {
	case layRM, layMR, layFM, layMF:
		return op != LEA
	}
	return false
}

// IsBranch reports whether op transfers control.
func (op Op) IsBranch() bool {
	switch op {
	case JMP, JCC, CALL, RET, HALT:
		return true
	}
	return false
}

// EndsBlock reports whether op terminates a basic block.
func (op Op) EndsBlock() bool { return op.IsBranch() }

// SetsFlags reports whether op defines the EFLAGS condition codes the
// translator consumes.
func (op Op) SetsFlags() bool {
	switch op {
	case ADDrr, SUBrr, ANDrr, ORrr, XORrr, CMPrr, TESTrr,
		ADDri, SUBri, ANDri, ORri, XORri, CMPri:
		return true
	}
	return false
}

// Layout returns the operand layout class (used by the encoder/decoder and
// the assembler's operand validation).
func (op Op) Layout() int { return int(opLayouts[op]) }
