package guest

import (
	"math/rand"
	"testing"

	"mdabt/internal/mem"
)

// randInst generates a random valid instruction for round-trip testing.
func randInst(rnd *rand.Rand) Inst {
	for {
		op := Op(rnd.Intn(int(numOps)))
		inst := Inst{Op: op}
		randMem := func() MemRef {
			m := MemRef{Base: Reg(rnd.Intn(NumRegs))}
			switch rnd.Intn(3) {
			case 1:
				m.Disp = int32(int8(rnd.Uint32()))
			case 2:
				m.Disp = int32(rnd.Uint32())
			}
			if m.Disp == 0 && rnd.Intn(2) == 0 {
				// keep zero-disp variants in the mix
			}
			if rnd.Intn(2) == 0 {
				idx := Reg(rnd.Intn(NumRegs))
				if idx != ESP {
					m.HasIndex = true
					m.Index = idx
					m.Scale = 1 << rnd.Intn(4)
				}
			}
			return m
		}
		switch opLayouts[op] {
		case layNone:
		case layR:
			inst.R1 = Reg(rnd.Intn(NumRegs))
		case layRR:
			inst.R1, inst.R2 = Reg(rnd.Intn(NumRegs)), Reg(rnd.Intn(NumRegs))
		case layRI:
			inst.R1 = Reg(rnd.Intn(NumRegs))
			inst.Imm = int32(rnd.Uint32())
		case layRM, layMR:
			inst.R1 = Reg(rnd.Intn(NumRegs))
			inst.Mem = randMem()
		case layFM, layMF:
			inst.FR1 = FReg(rnd.Intn(NumFRegs))
			inst.Mem = randMem()
		case layFF:
			inst.FR1, inst.FR2 = FReg(rnd.Intn(NumFRegs)), FReg(rnd.Intn(NumFRegs))
		case layRel:
			inst.Rel = int32(rnd.Uint32())
		case layCondRel:
			inst.Cond = Cond(rnd.Intn(int(numConds)))
			inst.Rel = int32(rnd.Uint32())
		}
		return inst
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		in := randInst(rnd)
		buf, err := Encode(nil, in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		if len(buf) > MaxInstLen {
			t.Fatalf("encoding of %+v is %d bytes > MaxInstLen", in, len(buf))
		}
		out, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%+v): %v", in, err)
		}
		if n != len(buf) {
			t.Fatalf("decode length %d != encode length %d for %+v", n, len(buf), in)
		}
		// Normalize: encodings don't preserve Scale/Index for HasIndex=false.
		want := in
		if !want.Mem.HasIndex {
			want.Mem.Index, want.Mem.Scale = 0, 0
		}
		if out != want {
			t.Fatalf("round trip: got %+v, want %+v", out, want)
		}
	}
}

func TestEncodedLenMatchesEncode(t *testing.T) {
	rnd := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		in := randInst(rnd)
		n, err := EncodedLen(in)
		if err != nil {
			t.Fatal(err)
		}
		buf, _ := Encode(nil, in)
		if n != len(buf) {
			t.Fatalf("EncodedLen(%+v) = %d, Encode produced %d", in, n, len(buf))
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(numOps)},                // unknown opcode
		{byte(MOVri), 0},              // truncated imm
		{byte(LD4)},                   // missing modrm
		{byte(LD4), 0xC0},             // register mode in memory operand
		{byte(LD4), 0x04},             // SIB promised but missing
		{byte(JCC), 0xFF, 0, 0, 0, 0}, // bad condition
		{byte(FLD8), 0x38},            // f-register 7 out of range
		{byte(FADDrr), 0xC0 | 7<<3},   // f-register out of range
		{byte(LD4), 0x42},             // disp8 missing
		{byte(LD4), 0x82, 1, 2},       // disp32 truncated
	}
	for _, buf := range cases {
		if _, _, err := Decode(buf); err == nil {
			t.Errorf("Decode(% x): want error", buf)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	cases := []Inst{
		{Op: numOps},
		{Op: MOVrr, R1: 8},
		{Op: LD4, R1: EAX, Mem: MemRef{Base: 9}},
		{Op: LD4, R1: EAX, Mem: MemRef{Base: EBX, HasIndex: true, Index: ESP, Scale: 1}},
		{Op: LD4, R1: EAX, Mem: MemRef{Base: EBX, HasIndex: true, Index: ECX, Scale: 3}},
		{Op: JCC, Cond: numConds},
		{Op: FLD8, FR1: 4},
	}
	for _, in := range cases {
		if _, err := Encode(nil, in); err == nil {
			t.Errorf("Encode(%+v): want error", in)
		}
	}
}

// runProgram builds, loads and interprets a program until HALT.
func runProgram(t *testing.T, build func(b *Builder)) (*CPU, *mem.Memory) {
	t.Helper()
	b := NewBuilder()
	build(b)
	img, err := b.Build(CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	m.WriteBytes(CodeBase, img)
	cpu := &CPU{}
	cpu.Reset(CodeBase)
	for steps := 0; !cpu.Halted; steps++ {
		if steps > 1<<20 {
			t.Fatal("program did not halt")
		}
		if _, err := cpu.Step(m); err != nil {
			t.Fatal(err)
		}
	}
	return cpu, m
}

func TestInterpArithmetic(t *testing.T) {
	cpu, _ := runProgram(t, func(b *Builder) {
		b.MovImm(EAX, 6)
		b.MovImm(EBX, 7)
		b.ALU(IMULrr, EAX, EBX) // 42
		b.ALUImm(ADDri, EAX, 8) // 50
		b.ALUImm(SHLri, EAX, 2) // 200
		b.ALUImm(SHRri, EAX, 1) // 100
		b.MovImm(ECX, -100)
		b.ALUImm(SARri, ECX, 2) // -25
		b.ALU(XORrr, EDX, EDX)  // 0
		b.Halt()
	})
	if cpu.R[EAX] != 100 {
		t.Errorf("eax = %d, want 100", cpu.R[EAX])
	}
	if int32(cpu.R[ECX]) != -25 {
		t.Errorf("ecx = %d, want -25", int32(cpu.R[ECX]))
	}
	if cpu.R[EDX] != 0 {
		t.Errorf("edx = %d, want 0", cpu.R[EDX])
	}
}

func TestInterpLoadsStores(t *testing.T) {
	cpu, m := runProgram(t, func(b *Builder) {
		b.MovImm(EBX, DataBase)
		b.MovImm(EAX, 0x11223344)
		b.Store(ST4, MemRef{Base: EBX}, EAX)
		b.Store(ST2, MemRef{Base: EBX, Disp: 4}, EAX)
		b.Store(ST1, MemRef{Base: EBX, Disp: 6}, EAX)
		b.Load(LD4, ECX, MemRef{Base: EBX})
		b.Load(LD2Z, EDX, MemRef{Base: EBX, Disp: 2})
		b.Load(LD2S, ESI, MemRef{Base: EBX, Disp: 2})
		b.Load(LD1Z, EDI, MemRef{Base: EBX, Disp: 3})
		b.Load(LD1S, EBP, MemRef{Base: EBX, Disp: 3})
		b.Halt()
	})
	if cpu.R[ECX] != 0x11223344 {
		t.Errorf("ld4 = %#x", cpu.R[ECX])
	}
	if cpu.R[EDX] != 0x1122 {
		t.Errorf("ld2z = %#x", cpu.R[EDX])
	}
	if cpu.R[ESI] != 0x1122 {
		t.Errorf("ld2s = %#x", cpu.R[ESI])
	}
	if cpu.R[EDI] != 0x11 {
		t.Errorf("ld1z = %#x", cpu.R[EDI])
	}
	if cpu.R[EBP] != 0x11 {
		t.Errorf("ld1s = %#x", cpu.R[EBP])
	}
	if got := m.Read16(DataBase + 4); got != 0x3344 {
		t.Errorf("st2 wrote %#x", got)
	}
	if got := m.Read8(DataBase + 6); got != 0x44 {
		t.Errorf("st1 wrote %#x", got)
	}
}

func TestInterpSignExtension(t *testing.T) {
	cpu, _ := runProgram(t, func(b *Builder) {
		b.MovImm(EBX, DataBase)
		b.MovImm(EAX, int32(-32639)) // 0xFFFF8081
		b.Store(ST4, MemRef{Base: EBX}, EAX)
		b.Load(LD2S, ECX, MemRef{Base: EBX}) // sext(0x8081)
		b.Load(LD1S, EDX, MemRef{Base: EBX}) // sext(0x81)
		b.Halt()
	})
	if cpu.R[ECX] != 0xFFFF8081 {
		t.Errorf("ld2s = %#x, want 0xFFFF8081", cpu.R[ECX])
	}
	if cpu.R[EDX] != 0xFFFFFF81 {
		t.Errorf("ld1s = %#x, want 0xFFFFFF81", cpu.R[EDX])
	}
}

func TestInterpFRegs(t *testing.T) {
	cpu, m := runProgram(t, func(b *Builder) {
		b.MovImm(EBX, DataBase)
		b.MovImm(EAX, 0x01020304)
		b.Store(ST4, MemRef{Base: EBX}, EAX)
		b.Store(ST4, MemRef{Base: EBX, Disp: 4}, EAX)
		b.FLoad(F0, MemRef{Base: EBX})
		b.FMov(F1, F0)
		b.FAdd(F1, F0)
		b.FStore(MemRef{Base: EBX, Disp: 8}, F1)
		b.Halt()
	})
	want := uint64(0x0102030401020304)
	if cpu.F[0] != want {
		t.Errorf("f0 = %#x", cpu.F[0])
	}
	if got := m.Read64(DataBase + 8); got != 2*want {
		t.Errorf("fst8 wrote %#x, want %#x", got, 2*want)
	}
}

func TestInterpControlFlow(t *testing.T) {
	cpu, _ := runProgram(t, func(b *Builder) {
		// sum = 1+2+...+10 via loop; then a call/ret.
		b.MovImm(EAX, 0)
		b.MovImm(ECX, 1)
		b.Label("loop")
		b.ALU(ADDrr, EAX, ECX)
		b.ALUImm(ADDri, ECX, 1)
		b.CmpImm(ECX, 10)
		b.Jcc(LE, "loop")
		b.Call("double")
		b.Jmp("done")
		b.Label("double")
		b.ALU(ADDrr, EAX, EAX)
		b.Ret()
		b.Label("done")
		b.Halt()
	})
	if cpu.R[EAX] != 110 {
		t.Errorf("eax = %d, want 110", cpu.R[EAX])
	}
	if cpu.R[ESP] != StackTop {
		t.Errorf("esp = %#x, want balanced stack %#x", cpu.R[ESP], uint32(StackTop))
	}
}

func TestInterpConditions(t *testing.T) {
	// For several (a, b) pairs, check every condition against the obvious
	// Go-level predicate.
	pairs := [][2]uint32{
		{5, 5}, {5, 7}, {7, 5},
		{0x80000000, 1}, {1, 0x80000000},
		{0xFFFFFFFF, 0}, {0, 0xFFFFFFFF},
		{0x7FFFFFFF, 0xFFFFFFFF},
	}
	for _, p := range pairs {
		a, bb := p[0], p[1]
		preds := map[Cond]bool{
			E: a == bb, NE: a != bb,
			L: int32(a) < int32(bb), LE: int32(a) <= int32(bb),
			G: int32(a) > int32(bb), GE: int32(a) >= int32(bb),
			B: a < bb, BE: a <= bb, A: a > bb, AE: a >= bb,
			S: int32(a-bb) < 0, NS: int32(a-bb) >= 0,
		}
		for cond, want := range preds {
			cpu, _ := runProgram(t, func(b *Builder) {
				b.MovImm(EAX, int32(a))
				b.MovImm(EBX, int32(bb))
				b.MovImm(EDX, 0)
				b.Cmp(EAX, EBX)
				b.Jcc(cond, "taken")
				b.Jmp("end")
				b.Label("taken")
				b.MovImm(EDX, 1)
				b.Label("end")
				b.Halt()
			})
			if got := cpu.R[EDX] == 1; got != want {
				t.Errorf("cmp(%#x,%#x) j%s: taken=%v, want %v", a, bb, cond, got, want)
			}
		}
	}
}

func TestStepInfoMDA(t *testing.T) {
	b := NewBuilder()
	b.MovImm(EBX, DataBase)
	b.Load(LD4, EAX, MemRef{Base: EBX, Disp: 2})  // misaligned
	b.Load(LD4, EAX, MemRef{Base: EBX, Disp: 4})  // aligned
	b.Load(LD1Z, EAX, MemRef{Base: EBX, Disp: 3}) // bytes never MDA
	b.FLoad(F0, MemRef{Base: EBX, Disp: 4})       // 8B @ +4: misaligned
	b.Halt()
	img, err := b.Build(CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	m.WriteBytes(CodeBase, img)
	cpu := &CPU{}
	cpu.Reset(CodeBase)
	var mdas []bool
	for !cpu.Halted {
		info, err := cpu.Step(m)
		if err != nil {
			t.Fatal(err)
		}
		if info.IsMem {
			mdas = append(mdas, info.MDA)
		}
	}
	want := []bool{true, false, false, true}
	if len(mdas) != len(want) {
		t.Fatalf("got %d memory accesses, want %d", len(mdas), len(want))
	}
	for i := range want {
		if mdas[i] != want[i] {
			t.Errorf("access %d MDA = %v, want %v", i, mdas[i], want[i])
		}
	}
}

func TestIsMDA(t *testing.T) {
	cases := []struct {
		ea   uint32
		size int
		want bool
	}{
		{0, 4, false}, {2, 4, true}, {4, 4, false}, {3, 4, true},
		{1, 1, false}, {1, 2, true}, {2, 2, false},
		{4, 8, true}, {8, 8, false}, {7, 8, true},
	}
	for _, c := range cases {
		if got := IsMDA(c.ea, c.size); got != c.want {
			t.Errorf("IsMDA(%d, %d) = %v, want %v", c.ea, c.size, got, c.want)
		}
	}
}

func TestBuilderLabels(t *testing.T) {
	b := NewBuilder()
	b.Jmp("end")
	b.MovImm(EAX, 1) // skipped
	b.Label("end")
	b.Halt()
	img, err := b.Build(CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	inst, n, err := Decode(img)
	if err != nil || inst.Op != JMP {
		t.Fatalf("decode: %v %v", inst.Op, err)
	}
	// jmp target must be the halt (skip the 6-byte mov).
	movLen, _ := EncodedLen(Inst{Op: MOVri, R1: EAX, Imm: 1})
	if got := int(inst.Rel); got != movLen {
		t.Errorf("jmp rel = %d, want %d", got, movLen)
	}
	_ = n
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere")
	if _, err := b.Build(CodeBase); err == nil {
		t.Error("undefined label: want error")
	}
	b = NewBuilder()
	b.Label("x")
	b.Label("x")
	b.Halt()
	if _, err := b.Build(CodeBase); err == nil {
		t.Error("duplicate label: want error")
	}
}

func TestBuilderLabelAddr(t *testing.T) {
	b := NewBuilder()
	b.MovImm(EAX, 1)
	b.Label("here")
	b.Halt()
	off, ok := b.LabelAddr("here")
	if !ok {
		t.Fatal("LabelAddr: not found")
	}
	movLen, _ := EncodedLen(Inst{Op: MOVri, R1: EAX, Imm: 1})
	if off != uint32(movLen) {
		t.Errorf("LabelAddr = %d, want %d", off, movLen)
	}
	if _, ok := b.LabelAddr("missing"); ok {
		t.Error("LabelAddr(missing) = ok")
	}
}

func TestDisasmSmoke(t *testing.T) {
	cases := []struct {
		inst Inst
		want string
	}{
		{Inst{Op: MOVri, R1: EAX, Imm: 5}, "mov\teax, 5"},
		{Inst{Op: LD4, R1: EAX, Mem: MemRef{Base: EBX, Disp: 2}}, "mov\teax, dword [ebx+2]"},
		{Inst{Op: ST2, R1: ECX, Mem: MemRef{Base: EDI, HasIndex: true, Index: ESI, Scale: 4, Disp: -1}}, "mov\tword [edi+esi*4-1], ecx"},
		{Inst{Op: FLD8, FR1: F2, Mem: MemRef{Base: EBP}}, "fld\tf2, qword [ebp]"},
		{Inst{Op: HALT}, "halt"},
		{Inst{Op: PUSH, R1: EDX}, "push\tedx"},
	}
	for _, c := range cases {
		n, _ := EncodedLen(c.inst)
		if got := Disasm(0x400000, c.inst, n); got != c.want {
			t.Errorf("Disasm = %q, want %q", got, c.want)
		}
	}
	// Branch target rendering.
	n, _ := EncodedLen(Inst{Op: JCC, Cond: NE, Rel: 0x10})
	if got := Disasm(0x1000, Inst{Op: JCC, Cond: NE, Rel: 0x10}, n); got != "jne\t0x1016" {
		t.Errorf("jcc disasm = %q", got)
	}
}

func TestStackOps(t *testing.T) {
	cpu, _ := runProgram(t, func(b *Builder) {
		b.MovImm(EAX, 7)
		b.MovImm(EBX, 9)
		b.Push(EAX)
		b.Push(EBX)
		b.Pop(ECX) // 9
		b.Pop(EDX) // 7
		b.Halt()
	})
	if cpu.R[ECX] != 9 || cpu.R[EDX] != 7 {
		t.Errorf("pop results = %d, %d, want 9, 7", cpu.R[ECX], cpu.R[EDX])
	}
}

func TestCPUHaltedStepErrors(t *testing.T) {
	cpu := &CPU{Halted: true}
	if _, err := cpu.Step(mem.New()); err == nil {
		t.Fatal("Step on halted CPU: want error")
	}
}

func BenchmarkStep(b *testing.B) {
	bb := NewBuilder()
	bb.Label("loop")
	bb.ALUImm(ADDri, EAX, 1)
	bb.Jmp("loop")
	img, err := bb.Build(CodeBase)
	if err != nil {
		b.Fatal(err)
	}
	m := mem.New()
	m.WriteBytes(CodeBase, img)
	cpu := &CPU{}
	cpu.Reset(CodeBase)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpu.Step(m); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodeNeverPanics feeds random byte soup to the decoder: it must
// either decode or return an error, never panic, and a successful decode
// must report a length within the buffer.
func TestDecodeNeverPanics(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	buf := make([]byte, MaxInstLen)
	for i := 0; i < 200000; i++ {
		n := 1 + rnd.Intn(MaxInstLen)
		rnd.Read(buf[:n])
		inst, ln, err := Decode(buf[:n])
		if err != nil {
			continue
		}
		if ln < 1 || ln > n {
			t.Fatalf("decoded length %d out of buffer %d (% x)", ln, n, buf[:n])
		}
		// Whatever decoded must re-encode (possibly canonicalized — e.g. a
		// redundant SIB byte collapses) and decode back to the same
		// instruction: semantic idempotence.
		out, eerr := Encode(nil, inst)
		if eerr != nil {
			t.Fatalf("decoded inst %+v does not re-encode: %v", inst, eerr)
		}
		back, n2, derr := Decode(out)
		if derr != nil || n2 != len(out) || back != inst {
			t.Fatalf("canonicalization round trip: %+v -> % x -> %+v (%v)", inst, out, back, derr)
		}
	}
}

func TestCondInverse(t *testing.T) {
	// Inverse must be an involution and must negate CondTaken for every
	// flag state reachable from a CMP.
	pairs := [][2]uint32{{1, 1}, {1, 2}, {2, 1}, {0x80000000, 1}, {1, 0x80000000}, {0xFFFFFFFF, 0}}
	for c := Cond(0); c < numConds; c++ {
		if c.Inverse().Inverse() != c {
			t.Errorf("Inverse not involutive for %v", c)
		}
		for _, p := range pairs {
			cpu := &CPU{}
			cpu.setSubFlags(p[0], p[1])
			if cpu.CondTaken(c) == cpu.CondTaken(c.Inverse()) {
				t.Errorf("%v and %v agree on cmp(%#x,%#x)", c, c.Inverse(), p[0], p[1])
			}
		}
	}
}

func TestRepMovsInterp(t *testing.T) {
	cpu, m := runProgram(t, func(b *Builder) {
		b.MovImm(ESI, DataBase)
		b.MovImm(EDI, DataBase+100) // misaligned destination
		b.MovImm(ECX, 3)
		b.Emit(Inst{Op: REPMOVS4})
		b.Halt()
	})
	if cpu.R[ECX] != 0 {
		t.Errorf("ecx = %d after rep", cpu.R[ECX])
	}
	if cpu.R[ESI] != DataBase+12 || cpu.R[EDI] != DataBase+112 {
		t.Errorf("esi/edi = %#x/%#x", cpu.R[ESI], cpu.R[EDI])
	}
	_ = m
}

func TestRepMovsOverlapForward(t *testing.T) {
	// Word-at-a-time forward copy with dst = src+4 replicates the first
	// word (the x86 semantics for this overlap).
	cpu, m := runProgram(t, func(b *Builder) {
		b.MovImm(EBX, DataBase)
		b.MovImm(EAX, 0x11111111)
		b.Store(ST4, MemRef{Base: EBX}, EAX)
		b.MovImm(EAX, 0x22222222)
		b.Store(ST4, MemRef{Base: EBX, Disp: 4}, EAX)
		b.MovImm(ESI, DataBase)
		b.MovImm(EDI, DataBase+4)
		b.MovImm(ECX, 3)
		b.Emit(Inst{Op: REPMOVS4})
		b.Halt()
	})
	_ = cpu
	for off := uint64(4); off <= 12; off += 4 {
		if got := m.Read32(DataBase + off); got != 0x11111111 {
			t.Errorf("[+%d] = %#x, want 0x11111111 (replication)", off, got)
		}
	}
}

func TestRepMovsStepwiseEIP(t *testing.T) {
	// REP is architecturally interruptible: EIP stays on the instruction
	// until the count reaches zero.
	b := NewBuilder()
	b.MovImm(ESI, DataBase)
	b.MovImm(EDI, DataBase+64)
	b.MovImm(ECX, 2)
	b.Emit(Inst{Op: REPMOVS4})
	b.Halt()
	img, err := b.Build(CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	m.WriteBytes(CodeBase, img)
	cpu := &CPU{}
	cpu.Reset(CodeBase)
	var repPCs []uint32
	for !cpu.Halted {
		info, err := cpu.Step(m)
		if err != nil {
			t.Fatal(err)
		}
		if info.Op == REPMOVS4 {
			repPCs = append(repPCs, info.PC)
		}
	}
	if len(repPCs) != 2 {
		t.Fatalf("rep executed %d steps, want 2", len(repPCs))
	}
	if repPCs[0] != repPCs[1] {
		t.Fatalf("rep steps at different PCs: %#x vs %#x", repPCs[0], repPCs[1])
	}
}

func TestFlagsModel(t *testing.T) {
	// Drive the flag-setting ALU ops over boundary values and verify the
	// EFLAGS model against direct computation.
	cases := []struct{ a, b uint32 }{
		{0, 0}, {1, 1}, {0, 1}, {1, 0},
		{0x7FFFFFFF, 1}, {0x80000000, 1}, {0x80000000, 0x80000000},
		{0xFFFFFFFF, 1}, {0xFFFFFFFF, 0xFFFFFFFF},
	}
	for _, c := range cases {
		// ADD
		cpu := &CPU{}
		cpu.R[EAX], cpu.R[EBX] = c.a, c.b
		m := mem.New()
		if _, err := cpu.Exec(m, 0, &Inst{Op: ADDrr, R1: EAX, R2: EBX}, 2); err != nil {
			t.Fatal(err)
		}
		sum := c.a + c.b
		if cpu.ZF != (sum == 0) || cpu.SF != (int32(sum) < 0) || cpu.CF != (sum < c.a) {
			t.Errorf("add(%#x,%#x): ZF=%v SF=%v CF=%v", c.a, c.b, cpu.ZF, cpu.SF, cpu.CF)
		}
		wantOF := (c.a^sum)&(c.b^sum)&0x80000000 != 0
		if cpu.OF != wantOF {
			t.Errorf("add(%#x,%#x): OF=%v want %v", c.a, c.b, cpu.OF, wantOF)
		}
		// CMP (sub flags, operands unchanged)
		cpu2 := &CPU{}
		cpu2.R[EAX], cpu2.R[EBX] = c.a, c.b
		if _, err := cpu2.Exec(m, 0, &Inst{Op: CMPrr, R1: EAX, R2: EBX}, 2); err != nil {
			t.Fatal(err)
		}
		if cpu2.R[EAX] != c.a {
			t.Error("cmp modified its operand")
		}
		d := c.a - c.b
		if cpu2.ZF != (d == 0) || cpu2.CF != (c.a < c.b) {
			t.Errorf("cmp(%#x,%#x): ZF=%v CF=%v", c.a, c.b, cpu2.ZF, cpu2.CF)
		}
		// Logic ops clear CF/OF.
		cpu3 := &CPU{}
		cpu3.CF, cpu3.OF = true, true
		cpu3.R[EAX], cpu3.R[EBX] = c.a, c.b
		if _, err := cpu3.Exec(m, 0, &Inst{Op: ANDrr, R1: EAX, R2: EBX}, 2); err != nil {
			t.Fatal(err)
		}
		if cpu3.CF || cpu3.OF {
			t.Error("and left CF/OF set")
		}
	}
}

func TestEAWraparound(t *testing.T) {
	// Effective addresses are computed mod 2^32 like real IA-32.
	cpu := &CPU{}
	cpu.R[EBX] = 0xFFFFFFFF
	cpu.R[ECX] = 2
	ea := cpu.EA(MemRef{Base: EBX, HasIndex: true, Index: ECX, Scale: 2, Disp: 1})
	if ea != 4 { // 0xFFFFFFFF + 4 + 1 wraps to 4
		t.Fatalf("EA = %#x, want 4 (mod 2^32)", ea)
	}
}

func TestHaltStopsInterp(t *testing.T) {
	cpu, _ := runProgram(t, func(b *Builder) {
		b.MovImm(EAX, 1)
		b.Halt()
		b.MovImm(EAX, 2) // unreachable
	})
	if cpu.R[EAX] != 1 {
		t.Fatalf("eax = %d, want 1 (halt must stop)", cpu.R[EAX])
	}
}
