package guest

import (
	"fmt"

	"mdabt/internal/mem"
)

// Fault is a guest-visible memory fault: a data access or instruction
// fetch by the instruction at PC that violated the page protections
// (internal/mem). The interpreter raises it precisely — architectural
// state is exactly the pre-instruction state, with zero bytes of a
// faulting store committed — so the DBT can deliver the identical fault
// from translated code by rewinding to the faulting guest instruction and
// re-executing it under the interpreter.
type Fault struct {
	PC  uint32    // guest PC of the faulting instruction
	Mem mem.Fault // underlying page fault
}

// Error renders the fault with its guest context.
func (f *Fault) Error() string {
	return fmt.Sprintf("guest fault at pc %#x: %v", f.PC, &f.Mem)
}

// Flag replay for the DBT's precise-fault hand-off. Translated code keeps
// guest flags implicit (the translator materializes conditions from the
// dominating CMP/TEST), so when the engine rewinds to a faulting
// instruction mid-block it must reconstruct the architectural flags from
// the register state. These helpers replay the three producer shapes the
// ISA has; the translator's own flag tracking guarantees any condition
// consumed after the rewind point is derivable from them (see
// core.reconstructFlags).

// SetCmpFlags replays CMP a, b: full subtract flags, result discarded.
func (c *CPU) SetCmpFlags(a, b uint32) { c.setSubFlags(a, b) }

// SetTestFlags replays TEST/AND/OR/XOR flags for result v: ZF/SF from v,
// CF and OF cleared.
func (c *CPU) SetTestFlags(v uint32) { c.setLogicFlags(v) }

// SetResultFlags replays the ZF/SF of an ADD/SUB result v. CF and OF are
// cleared rather than reconstructed: the translator only lets E/NE/S/NS
// conditions consume arithmetic results, so the carry and overflow bits
// are unobservable past a rewind point.
func (c *CPU) SetResultFlags(v uint32) { c.setLogicFlags(v) }
