package guest

import "fmt"

func sizePrefix(op Op) string {
	switch op.MemSize() {
	case 1:
		return "byte "
	case 2:
		return "word "
	case 4:
		return "dword "
	case 8:
		return "qword "
	}
	return ""
}

// Disasm renders inst, located at pc with encoded length n, in Intel-like
// syntax. Branch targets are absolute.
func Disasm(pc uint32, inst Inst, n int) string {
	target := pc + uint32(n) + uint32(inst.Rel)
	switch opLayouts[inst.Op] {
	case layNone:
		return inst.Op.String()
	case layR:
		return fmt.Sprintf("%s\t%s", inst.Op, inst.R1)
	case layRR:
		return fmt.Sprintf("%s\t%s, %s", inst.Op, inst.R1, inst.R2)
	case layRI:
		return fmt.Sprintf("%s\t%s, %d", inst.Op, inst.R1, inst.Imm)
	case layRM:
		return fmt.Sprintf("%s\t%s, %s%s", inst.Op, inst.R1, sizePrefix(inst.Op), inst.Mem)
	case layMR:
		return fmt.Sprintf("%s\t%s%s, %s", inst.Op, sizePrefix(inst.Op), inst.Mem, inst.R1)
	case layFM:
		return fmt.Sprintf("%s\t%s, %s%s", inst.Op, inst.FR1, sizePrefix(inst.Op), inst.Mem)
	case layMF:
		return fmt.Sprintf("%s\t%s%s, %s", inst.Op, sizePrefix(inst.Op), inst.Mem, inst.FR1)
	case layFF:
		return fmt.Sprintf("%s\t%s, %s", inst.Op, inst.FR1, inst.FR2)
	case layRel:
		return fmt.Sprintf("%s\t%#x", inst.Op, target)
	case layCondRel:
		return fmt.Sprintf("j%s\t%#x", inst.Cond, target)
	}
	return fmt.Sprintf("?%v", inst.Op)
}
