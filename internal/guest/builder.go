package guest

import "fmt"

// Builder constructs guest programs programmatically, with label-based
// control flow. It is the workload generator's code emitter; the text
// assembler in package guestasm builds on the same Inst representation.
//
// Because instruction encodings are variable-length, branch displacements
// are resolved in a fixup pass after all instruction offsets are known.
type Builder struct {
	insts   []Inst
	lens    []int
	offs    []uint32 // offset of each instruction from the image base
	size    uint32
	labels  map[string]int // label -> instruction index
	refs    map[int]string // instruction index -> target label
	absRefs []absRef       // absolute branch targets (cross-image)
	err     error
}

// absRef is a branch whose target is an absolute guest address.
type absRef struct {
	idx    int
	target uint32
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int), refs: make(map[int]string)}
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Emit appends one instruction.
func (b *Builder) Emit(inst Inst) {
	n, err := EncodedLen(inst)
	if err != nil {
		b.fail(err)
		n = 1
	}
	b.insts = append(b.insts, inst)
	b.lens = append(b.lens, n)
	b.offs = append(b.offs, b.size)
	b.size += uint32(n)
}

// Label defines name at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail(fmt.Errorf("guest: builder: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.insts)
}

// emitBranch appends a branch-type instruction targeting label.
func (b *Builder) emitBranch(inst Inst, label string) {
	b.refs[len(b.insts)] = label
	b.Emit(inst)
}

// Convenience emitters. Each mirrors one guest opcode.

func (b *Builder) Nop()                           { b.Emit(Inst{Op: NOP}) }
func (b *Builder) Halt()                          { b.Emit(Inst{Op: HALT}) }
func (b *Builder) MovImm(r Reg, v int32)          { b.Emit(Inst{Op: MOVri, R1: r, Imm: v}) }
func (b *Builder) Mov(dst, src Reg)               { b.Emit(Inst{Op: MOVrr, R1: dst, R2: src}) }
func (b *Builder) Lea(dst Reg, m MemRef)          { b.Emit(Inst{Op: LEA, R1: dst, Mem: m}) }
func (b *Builder) Load(op Op, r Reg, m MemRef)    { b.Emit(Inst{Op: op, R1: r, Mem: m}) }
func (b *Builder) Store(op Op, m MemRef, r Reg)   { b.Emit(Inst{Op: op, R1: r, Mem: m}) }
func (b *Builder) FLoad(f FReg, m MemRef)         { b.Emit(Inst{Op: FLD8, FR1: f, Mem: m}) }
func (b *Builder) FStore(m MemRef, f FReg)        { b.Emit(Inst{Op: FST8, FR1: f, Mem: m}) }
func (b *Builder) FAdd(dst, src FReg)             { b.Emit(Inst{Op: FADDrr, FR1: dst, FR2: src}) }
func (b *Builder) FMov(dst, src FReg)             { b.Emit(Inst{Op: FMOVrr, FR1: dst, FR2: src}) }
func (b *Builder) ALU(op Op, dst, src Reg)        { b.Emit(Inst{Op: op, R1: dst, R2: src}) }
func (b *Builder) ALUImm(op Op, dst Reg, v int32) { b.Emit(Inst{Op: op, R1: dst, Imm: v}) }
func (b *Builder) Cmp(a, br Reg)                  { b.Emit(Inst{Op: CMPrr, R1: a, R2: br}) }
func (b *Builder) CmpImm(a Reg, v int32)          { b.Emit(Inst{Op: CMPri, R1: a, Imm: v}) }
func (b *Builder) Test(a, bb Reg)                 { b.Emit(Inst{Op: TESTrr, R1: a, R2: bb}) }
func (b *Builder) Push(r Reg)                     { b.Emit(Inst{Op: PUSH, R1: r}) }
func (b *Builder) Pop(r Reg)                      { b.Emit(Inst{Op: POP, R1: r}) }
func (b *Builder) Ret()                           { b.Emit(Inst{Op: RET}) }
func (b *Builder) Jmp(label string)               { b.emitBranch(Inst{Op: JMP}, label) }
func (b *Builder) Jcc(c Cond, label string)       { b.emitBranch(Inst{Op: JCC, Cond: c}, label) }
func (b *Builder) Call(label string)              { b.emitBranch(Inst{Op: CALL}, label) }

// CallAbs emits a call to an absolute guest address (e.g. a function in a
// separately loaded "shared library" image). The relative displacement is
// resolved against the image base passed to Build.
func (b *Builder) CallAbs(target uint32) {
	b.absRefs = append(b.absRefs, absRef{idx: len(b.insts), target: target})
	b.Emit(Inst{Op: CALL})
}

// JmpAbs emits a jump to an absolute guest address.
func (b *Builder) JmpAbs(target uint32) {
	b.absRefs = append(b.absRefs, absRef{idx: len(b.insts), target: target})
	b.Emit(Inst{Op: JMP})
}

// LabelAddr returns the image-relative offset of a defined label, for
// callers that need absolute guest addresses after Build.
func (b *Builder) LabelAddr(name string) (uint32, bool) {
	idx, ok := b.labels[name]
	if !ok {
		return 0, false
	}
	if idx == len(b.insts) {
		return b.size, true
	}
	return b.offs[idx], true
}

// Size returns the current encoded size of the program.
func (b *Builder) Size() uint32 { return b.size }

// Build resolves branch targets and encodes the program for loading at
// base.
func (b *Builder) Build(base uint32) ([]byte, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, ar := range b.absRefs {
		// Rel is relative to the end of the instruction, whose absolute
		// address is base + offset.
		b.insts[ar.idx].Rel = int32(ar.target) - int32(base) - int32(b.offs[ar.idx]) - int32(b.lens[ar.idx])
	}
	for idx, label := range b.refs {
		tgt, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("guest: builder: undefined label %q", label)
		}
		var tgtOff uint32
		if tgt == len(b.insts) {
			tgtOff = b.size
		} else {
			tgtOff = b.offs[tgt]
		}
		// Rel is relative to the end of the branch instruction. All branch
		// encodings use rel32, so lengths do not change during fixup.
		b.insts[idx].Rel = int32(tgtOff) - int32(b.offs[idx]) - int32(b.lens[idx])
	}
	out := make([]byte, 0, b.size)
	for i, inst := range b.insts {
		var err error
		out, err = Encode(out, inst)
		if err != nil {
			return nil, fmt.Errorf("guest: builder: instruction %d: %w", i, err)
		}
	}
	if uint32(len(out)) != b.size {
		return nil, fmt.Errorf("guest: builder: size drift (%d != %d)", len(out), b.size)
	}
	return out, nil
}
