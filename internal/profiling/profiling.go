// Package profiling wires the standard pprof profile writers into the
// command-line tools, so simulator hot paths can be profiled from a normal
// `mdaeval`/`dbtrun` invocation instead of only through `go test`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a stop
// function that finishes the CPU profile and writes an allocation profile to
// memPath (if non-empty). Call stop exactly once, after the measured work.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize a settled heap before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
