// Package faultinject provides a deterministic, seeded fault plan for
// chaos-testing the DBT engine and the machine simulator.
//
// A Plan names a set of injection points (Point) and, per point, when the
// fault fires: with a fixed probability per check, at explicit occurrence
// counts, or both. All randomness derives from the plan seed and each
// point keeps an independent PRNG stream, so a given (seed, plan, program)
// triple replays the exact same fault schedule — failures found by the
// chaos suite are reproducible by construction.
//
// The consumer side is a single call:
//
//	if plan.Should(faultinject.AllocBlock) { return 0, errCodeCacheFull }
//
// Should is safe on a nil *Plan (it reports false), so production paths
// thread a plan through unconditionally and pay one nil check when fault
// injection is disabled.
//
// A Plan is not safe for concurrent use; each engine instance owns one.
// When one logical plan must drive several pooled engines, derive one
// independent deterministic child per worker with Fork.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
)

// Point names one fault-injection site in the engine or machine.
type Point string

// The defined injection points.
const (
	// AllocBlock fails a code-cache block-body allocation (reported as
	// code-cache-full, driving the flush ladder).
	AllocBlock Point = "codecache.alloc-block"
	// AllocStub fails a stub-zone allocation in the exception handler.
	AllocStub Point = "codecache.alloc-stub"
	// Translate fails a block translation before any state is touched.
	Translate Point = "engine.translate"
	// PatchRange forces a branch-displacement-out-of-range miss when the
	// exception handler tries to patch a faulting instruction.
	PatchRange Point = "engine.patch-range"
	// ForcedFlush forces a full code-cache flush at the next dispatch.
	ForcedFlush Point = "engine.forced-flush"
	// SpuriousTrap delivers a misalignment trap on an aligned access.
	SpuriousTrap Point = "machine.spurious-trap"
	// DuplicateTrap redelivers a misalignment trap after its handler has
	// already run once.
	DuplicateTrap Point = "machine.duplicate-trap"
	// SpuriousAccessFault delivers an access-protection trap on an access
	// that the trap-bit table did not flag. The BT's access-fault handler
	// must treat it as a table false positive: re-execute the access raw
	// and resume. Safe even with no protections armed.
	SpuriousAccessFault Point = "machine.spurious-access-fault"
	// ServeTransient fails a pooled request with a Transient error before
	// its engine runs (simulating momentary resource exhaustion in the
	// serving layer); the pool's retry/backoff path absorbs it.
	ServeTransient Point = "serve.transient"
	// ServePanic panics a pool worker before its engine runs; the worker's
	// panic isolation must convert it into an Internal error response.
	ServePanic Point = "serve.worker-panic"
	// StoreTornWrite truncates a persistent-store artifact mid-write,
	// leaving a torn file at the final path (simulating a power failure on
	// a filesystem without atomic rename, or a pre-protocol writer). The
	// save call still reports success; the corruption is latent and must be
	// caught — and quarantined — by the next read's validation.
	StoreTornWrite Point = "store.torn-write"
	// StoreBitFlip flips one payload bit after the artifact checksum has
	// been computed (bit rot / silent media corruption). Latent like a torn
	// write: the reader's checksum validation must catch it.
	StoreBitFlip Point = "store.bit-flip"
	// StoreReadError fails a store artifact read with an I/O error before
	// any bytes are returned; the reader degrades to a cold miss.
	StoreReadError Point = "store.read-error"
	// StoreStaleFingerprint stamps a just-written artifact with a foreign
	// options fingerprint (version-skewed writer); the reader must treat
	// the entry as another configuration's artifact and quarantine it.
	StoreStaleFingerprint Point = "store.stale-fingerprint"
	// StoreLockHeld fails the store's single-writer lock acquisition as if
	// a concurrent writer held it; the writer skips the save gracefully.
	StoreLockHeld Point = "store.lock-held"
)

// Points returns every defined injection point.
func Points() []Point {
	return []Point{
		AllocBlock, AllocStub, Translate, PatchRange,
		ForcedFlush, SpuriousTrap, DuplicateTrap, SpuriousAccessFault,
		ServeTransient, ServePanic,
		StoreTornWrite, StoreBitFlip, StoreReadError,
		StoreStaleFingerprint, StoreLockHeld,
	}
}

// trigger is the firing rule for one point.
type trigger struct {
	prob   float64
	counts map[uint64]bool // fire on these 1-based check numbers
	rng    *rand.Rand
}

// Plan is a reproducible fault schedule. The zero value is unusable; build
// plans with New.
type Plan struct {
	seed     int64
	triggers map[Point]*trigger
	checks   map[Point]uint64
	fired    map[Point]uint64
	total    uint64
	onFire   func(Point)
}

// New returns an empty plan (no point ever fires) with the given seed.
func New(seed int64) *Plan {
	return &Plan{
		seed:     seed,
		triggers: make(map[Point]*trigger),
		checks:   make(map[Point]uint64),
		fired:    make(map[Point]uint64),
	}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// trigger returns (creating if needed) the trigger for pt, with a PRNG
// stream derived from the plan seed and the point name so points are
// independent of each other's check ordering.
func (p *Plan) triggerFor(pt Point) *trigger {
	tr := p.triggers[pt]
	if tr == nil {
		h := fnv.New64a()
		h.Write([]byte(pt))
		tr = &trigger{
			counts: make(map[uint64]bool),
			rng:    rand.New(rand.NewSource(p.seed ^ int64(h.Sum64()))),
		}
		p.triggers[pt] = tr
	}
	return tr
}

// Rate arms pt to fire with probability prob on every check. It returns
// the plan for chaining.
func (p *Plan) Rate(pt Point, prob float64) *Plan {
	p.triggerFor(pt).prob = prob
	return p
}

// RateAll arms every defined point with the same probability.
func (p *Plan) RateAll(prob float64) *Plan {
	for _, pt := range Points() {
		p.Rate(pt, prob)
	}
	return p
}

// At arms pt to fire on the given 1-based occurrence numbers (the Nth call
// to Should for that point), independent of any probability trigger.
func (p *Plan) At(pt Point, occurrences ...uint64) *Plan {
	tr := p.triggerFor(pt)
	for _, n := range occurrences {
		tr.counts[n] = true
	}
	return p
}

// Observe registers a callback invoked on every fired fault (used by the
// engine to stamp EvFault events into its log).
func (p *Plan) Observe(fn func(Point)) { p.onFire = fn }

// Fork derives an independent child plan for worker (or request) id: the
// same armed triggers — per-point probabilities and occurrence counts — over
// a PRNG stream mixed from the parent seed and id. Children are
// decorrelated from each other and from the parent, yet each (seed, id)
// pair replays the identical fault schedule, so a pool of engines can share
// one logical plan while every worker keeps the single-owner, deterministic
// contract. Fork is safe on a nil plan (it returns nil) and must be called
// before the parent or any sibling is being consulted concurrently.
func (p *Plan) Fork(id int) *Plan {
	if p == nil {
		return nil
	}
	// SplitMix64-style odd-constant mix keeps nearby ids far apart in seed
	// space (id 0 must not collide with the parent stream).
	child := New(p.seed ^ (int64(id)+1)*-0x61c8864680b583eb)
	for pt, tr := range p.triggers {
		ct := child.triggerFor(pt)
		ct.prob = tr.prob
		for n := range tr.counts {
			ct.counts[n] = true
		}
	}
	return child
}

// Should reports whether the fault at pt fires now, and records the check.
// It is safe on a nil plan.
func (p *Plan) Should(pt Point) bool {
	if p == nil {
		return false
	}
	p.checks[pt]++
	tr := p.triggers[pt]
	if tr == nil {
		return false
	}
	fire := tr.counts[p.checks[pt]]
	if !fire && tr.prob > 0 && tr.rng.Float64() < tr.prob {
		fire = true
	}
	if fire {
		p.fired[pt]++
		p.total++
		if p.onFire != nil {
			p.onFire(pt)
		}
	}
	return fire
}

// Checks returns how many times pt has been consulted.
func (p *Plan) Checks(pt Point) uint64 {
	if p == nil {
		return 0
	}
	return p.checks[pt]
}

// Fired returns how many times pt has fired.
func (p *Plan) Fired(pt Point) uint64 {
	if p == nil {
		return 0
	}
	return p.fired[pt]
}

// Total returns the total number of injected faults across all points.
func (p *Plan) Total() uint64 {
	if p == nil {
		return 0
	}
	return p.total
}

// Counts returns a copy of the per-point fired counts (fired points only).
func (p *Plan) Counts() map[Point]uint64 {
	if p == nil {
		return nil
	}
	out := make(map[Point]uint64, len(p.fired))
	for pt, n := range p.fired {
		out[pt] = n
	}
	return out
}

// String renders the plan's activity, one point per line, fired points
// first.
func (p *Plan) String() string {
	if p == nil {
		return "faultinject: disabled"
	}
	pts := Points()
	sort.Slice(pts, func(i, j int) bool {
		if p.fired[pts[i]] != p.fired[pts[j]] {
			return p.fired[pts[i]] > p.fired[pts[j]]
		}
		return pts[i] < pts[j]
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "faultinject: seed=%d total=%d", p.seed, p.total)
	for _, pt := range pts {
		if p.checks[pt] == 0 && p.fired[pt] == 0 {
			continue
		}
		fmt.Fprintf(&sb, "\n  %-26s fired %d / %d checks", pt, p.fired[pt], p.checks[pt])
	}
	return sb.String()
}
