package faultinject

import "testing"

// TestNilPlanIsInert: nil receivers never fire and never panic.
func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	for i := 0; i < 10; i++ {
		if p.Should(AllocBlock) {
			t.Fatal("nil plan fired")
		}
	}
	if p.Total() != 0 || p.Fired(AllocBlock) != 0 || p.Checks(AllocBlock) != 0 {
		t.Fatal("nil plan has nonzero counters")
	}
	if p.Counts() != nil {
		t.Fatal("nil plan returned counts")
	}
	if p.String() != "faultinject: disabled" {
		t.Fatalf("nil String() = %q", p.String())
	}
}

// TestEmptyPlanNeverFires: a plan with no triggers records checks but
// fires nothing.
func TestEmptyPlanNeverFires(t *testing.T) {
	p := New(1)
	for i := 0; i < 1000; i++ {
		if p.Should(Translate) {
			t.Fatal("empty plan fired")
		}
	}
	if p.Checks(Translate) != 1000 {
		t.Fatalf("checks = %d, want 1000", p.Checks(Translate))
	}
	if p.Total() != 0 {
		t.Fatalf("total = %d, want 0", p.Total())
	}
}

// TestCountTriggersFireExactly: At fires on exactly the named occurrences.
func TestCountTriggersFireExactly(t *testing.T) {
	p := New(7).At(AllocStub, 3, 5)
	var fires []int
	for i := 1; i <= 10; i++ {
		if p.Should(AllocStub) {
			fires = append(fires, i)
		}
	}
	if len(fires) != 2 || fires[0] != 3 || fires[1] != 5 {
		t.Fatalf("fired at %v, want [3 5]", fires)
	}
	if p.Fired(AllocStub) != 2 || p.Total() != 2 {
		t.Fatalf("fired=%d total=%d, want 2/2", p.Fired(AllocStub), p.Total())
	}
}

// TestRateDeterminism: same seed and rate produce the identical firing
// sequence; a different seed produces a different one.
func TestRateDeterminism(t *testing.T) {
	seq := func(seed int64) []bool {
		p := New(seed).RateAll(0.2)
		out := make([]bool, 500)
		for i := range out {
			out[i] = p.Should(SpuriousTrap)
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at check %d", i+1)
		}
	}
	c := seq(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical 500-check sequence")
	}
}

// TestPointStreamsAreIndependent: interleaving checks of another point
// does not perturb a point's firing schedule.
func TestPointStreamsAreIndependent(t *testing.T) {
	solo := New(9).RateAll(0.3)
	var a []bool
	for i := 0; i < 200; i++ {
		a = append(a, solo.Should(AllocBlock))
	}
	mixed := New(9).RateAll(0.3)
	var b []bool
	for i := 0; i < 200; i++ {
		mixed.Should(Translate) // interleaved traffic on another point
		b = append(b, mixed.Should(AllocBlock))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("alloc-block stream perturbed by translate checks at %d", i+1)
		}
	}
}

// TestRateConverges: over many checks the empirical rate approaches the
// configured probability.
func TestRateConverges(t *testing.T) {
	p := New(3).Rate(ForcedFlush, 0.01)
	const n = 200_000
	for i := 0; i < n; i++ {
		p.Should(ForcedFlush)
	}
	got := float64(p.Fired(ForcedFlush)) / n
	if got < 0.007 || got > 0.013 {
		t.Fatalf("empirical rate %.4f, want ~0.01", got)
	}
}

// TestObserverSeesEveryFire: the observer callback count matches Total.
func TestObserverSeesEveryFire(t *testing.T) {
	p := New(5).Rate(DuplicateTrap, 0.5).At(DuplicateTrap, 1)
	seen := 0
	p.Observe(func(pt Point) {
		if pt != DuplicateTrap {
			t.Fatalf("observer saw %q", pt)
		}
		seen++
	})
	for i := 0; i < 100; i++ {
		p.Should(DuplicateTrap)
	}
	if uint64(seen) != p.Total() {
		t.Fatalf("observer saw %d fires, plan total %d", seen, p.Total())
	}
	if p.Total() == 0 {
		t.Fatal("plan never fired")
	}
}
