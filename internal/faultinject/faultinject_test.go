package faultinject

import (
	"sync"
	"testing"
)

// TestNilPlanIsInert: nil receivers never fire and never panic.
func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	for i := 0; i < 10; i++ {
		if p.Should(AllocBlock) {
			t.Fatal("nil plan fired")
		}
	}
	if p.Total() != 0 || p.Fired(AllocBlock) != 0 || p.Checks(AllocBlock) != 0 {
		t.Fatal("nil plan has nonzero counters")
	}
	if p.Counts() != nil {
		t.Fatal("nil plan returned counts")
	}
	if p.String() != "faultinject: disabled" {
		t.Fatalf("nil String() = %q", p.String())
	}
}

// TestEmptyPlanNeverFires: a plan with no triggers records checks but
// fires nothing.
func TestEmptyPlanNeverFires(t *testing.T) {
	p := New(1)
	for i := 0; i < 1000; i++ {
		if p.Should(Translate) {
			t.Fatal("empty plan fired")
		}
	}
	if p.Checks(Translate) != 1000 {
		t.Fatalf("checks = %d, want 1000", p.Checks(Translate))
	}
	if p.Total() != 0 {
		t.Fatalf("total = %d, want 0", p.Total())
	}
}

// TestCountTriggersFireExactly: At fires on exactly the named occurrences.
func TestCountTriggersFireExactly(t *testing.T) {
	p := New(7).At(AllocStub, 3, 5)
	var fires []int
	for i := 1; i <= 10; i++ {
		if p.Should(AllocStub) {
			fires = append(fires, i)
		}
	}
	if len(fires) != 2 || fires[0] != 3 || fires[1] != 5 {
		t.Fatalf("fired at %v, want [3 5]", fires)
	}
	if p.Fired(AllocStub) != 2 || p.Total() != 2 {
		t.Fatalf("fired=%d total=%d, want 2/2", p.Fired(AllocStub), p.Total())
	}
}

// TestRateDeterminism: same seed and rate produce the identical firing
// sequence; a different seed produces a different one.
func TestRateDeterminism(t *testing.T) {
	seq := func(seed int64) []bool {
		p := New(seed).RateAll(0.2)
		out := make([]bool, 500)
		for i := range out {
			out[i] = p.Should(SpuriousTrap)
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at check %d", i+1)
		}
	}
	c := seq(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical 500-check sequence")
	}
}

// TestPointStreamsAreIndependent: interleaving checks of another point
// does not perturb a point's firing schedule.
func TestPointStreamsAreIndependent(t *testing.T) {
	solo := New(9).RateAll(0.3)
	var a []bool
	for i := 0; i < 200; i++ {
		a = append(a, solo.Should(AllocBlock))
	}
	mixed := New(9).RateAll(0.3)
	var b []bool
	for i := 0; i < 200; i++ {
		mixed.Should(Translate) // interleaved traffic on another point
		b = append(b, mixed.Should(AllocBlock))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("alloc-block stream perturbed by translate checks at %d", i+1)
		}
	}
}

// TestRateConverges: over many checks the empirical rate approaches the
// configured probability.
func TestRateConverges(t *testing.T) {
	p := New(3).Rate(ForcedFlush, 0.01)
	const n = 200_000
	for i := 0; i < n; i++ {
		p.Should(ForcedFlush)
	}
	got := float64(p.Fired(ForcedFlush)) / n
	if got < 0.007 || got > 0.013 {
		t.Fatalf("empirical rate %.4f, want ~0.01", got)
	}
}

// TestObserverSeesEveryFire: the observer callback count matches Total.
func TestObserverSeesEveryFire(t *testing.T) {
	p := New(5).Rate(DuplicateTrap, 0.5).At(DuplicateTrap, 1)
	seen := 0
	p.Observe(func(pt Point) {
		if pt != DuplicateTrap {
			t.Fatalf("observer saw %q", pt)
		}
		seen++
	})
	for i := 0; i < 100; i++ {
		p.Should(DuplicateTrap)
	}
	if uint64(seen) != p.Total() {
		t.Fatalf("observer saw %d fires, plan total %d", seen, p.Total())
	}
	if p.Total() == 0 {
		t.Fatal("plan never fired")
	}
}

// forkSchedule replays n checks of every point against a fork of plan and
// returns the fire pattern as a bitstring per point.
func forkSchedule(plan *Plan, id, n int) map[Point]string {
	child := plan.Fork(id)
	out := make(map[Point]string)
	for _, pt := range Points() {
		bits := make([]byte, n)
		for i := range bits {
			if child.Should(pt) {
				bits[i] = '1'
			} else {
				bits[i] = '0'
			}
		}
		out[pt] = string(bits)
	}
	return out
}

// TestForkDeterminismAcrossWorkers proves the pooled-engine contract: each
// worker's fork replays an identical fault schedule on every run, workers
// are decorrelated from each other, and concurrent consumption is safe
// because each goroutine owns its own fork (run under -race).
func TestForkDeterminismAcrossWorkers(t *testing.T) {
	const workers, checks = 8, 400
	parent := New(77).RateAll(0.3).At(AllocBlock, 3, 9)

	replay := func() []map[Point]string {
		// The same parent arming, rebuilt, so runs are fully independent.
		p := New(77).RateAll(0.3).At(AllocBlock, 3, 9)
		out := make([]map[Point]string, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				out[w] = forkSchedule(p, w, checks)
			}(w)
		}
		wg.Wait()
		return out
	}

	first, second := replay(), replay()
	distinct := 0
	for w := 0; w < workers; w++ {
		for _, pt := range Points() {
			if first[w][pt] != second[w][pt] {
				t.Errorf("worker %d point %s: schedule not reproducible", w, pt)
			}
		}
		if w > 0 && first[w][SpuriousTrap] != first[0][SpuriousTrap] {
			distinct++
		}
	}
	if distinct == 0 {
		t.Error("all worker forks produced identical schedules; streams are correlated")
	}
	// Count triggers are copied into every fork: occurrence 3 and 9 fire
	// for each worker regardless of its probability stream.
	for w := 0; w < workers; w++ {
		bits := first[w][AllocBlock]
		if bits[2] != '1' || bits[8] != '1' {
			t.Errorf("worker %d: At() counts not inherited by fork (%q)", w, bits[:10])
		}
	}
	// Forks must also diverge from the parent's own stream.
	parentBits := make([]byte, checks)
	for i := range parentBits {
		if parent.Should(SpuriousTrap) {
			parentBits[i] = '1'
		} else {
			parentBits[i] = '0'
		}
	}
	if string(parentBits) == first[0][SpuriousTrap] {
		t.Error("fork 0 shares the parent's stream")
	}
}

// TestForkNil: forking a nil plan stays nil (chaos disabled end to end).
func TestForkNil(t *testing.T) {
	var p *Plan
	if p.Fork(3) != nil {
		t.Fatal("nil plan forked to non-nil")
	}
}

// TestStorePointsEnumerated pins the persistent-store corruption points in
// Points(): RateAll-armed chaos plans (and TestForkDeterminismAcrossWorkers
// above, which replays every enumerated point through Fork) must cover the
// store tier too.
func TestStorePointsEnumerated(t *testing.T) {
	want := []Point{
		StoreTornWrite, StoreBitFlip, StoreReadError,
		StoreStaleFingerprint, StoreLockHeld,
	}
	have := make(map[Point]bool)
	for _, pt := range Points() {
		have[pt] = true
	}
	for _, pt := range want {
		if !have[pt] {
			t.Errorf("Points() missing %s", pt)
		}
	}
}
