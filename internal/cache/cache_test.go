package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	return New(Config{Name: "t", Size: 1024, LineSize: 64, Assoc: 2, HitLatency: 10})
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x103f) {
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1040) {
		t.Fatal("next-line access hit while cold")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want 4 accesses / 2 misses", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 8 sets, 2 ways; addresses 64*8=512 apart collide
	const stride = 512
	a, b, d := uint64(0), uint64(stride), uint64(2*stride)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a most recent
	c.Access(d) // evicts b (LRU)
	if !c.Contains(a) {
		t.Fatal("a evicted, want kept (MRU)")
	}
	if c.Contains(b) {
		t.Fatal("b kept, want evicted (LRU)")
	}
	if !c.Contains(d) {
		t.Fatal("d not resident after fill")
	}
}

func TestFlush(t *testing.T) {
	c := small()
	c.Access(0)
	c.Flush()
	if c.Contains(0) {
		t.Fatal("line survived flush")
	}
	if c.Stats().Accesses != 1 {
		t.Fatal("flush reset stats")
	}
}

func TestContainsDoesNotAllocate(t *testing.T) {
	c := small()
	if c.Contains(0x40) {
		t.Fatal("cold Contains reported true")
	}
	if !c.Access(0x40) {
		// expected miss
	}
	if c.Stats().Accesses != 1 {
		t.Fatal("Contains counted as access")
	}
}

func TestAccessIdempotentAfterFill(t *testing.T) {
	c := small()
	f := func(addr uint64) bool {
		addr &= 0xffff
		c.Access(addr)
		return c.Access(addr) // immediately re-accessing must hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := small() // 1 KiB
	// Touch exactly the cache's capacity once, then re-walk: all hits.
	for a := uint64(0); a < 1024; a += 64 {
		c.Access(a)
	}
	before := c.Stats().Misses
	for a := uint64(0); a < 1024; a += 64 {
		if !c.Access(a) {
			t.Fatalf("capacity walk missed at %#x", a)
		}
	}
	if c.Stats().Misses != before {
		t.Fatal("misses grew on resident working set")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	bad := []Config{
		{Name: "line0", Size: 1024, LineSize: 0, Assoc: 1},
		{Name: "line3", Size: 1024, LineSize: 48, Assoc: 1},
		{Name: "sets3", Size: 192, LineSize: 64, Assoc: 1},
		{Name: "assoc0", Size: 1024, LineSize: 64, Assoc: 0},
	}
	for _, cfg := range bad {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %s did not panic", cfg.Name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewES40()
	if lat := h.Fetch(0); lat != h.MemLatency {
		t.Fatalf("cold fetch latency = %d, want %d", lat, h.MemLatency)
	}
	if lat := h.Fetch(0); lat != 0 {
		t.Fatalf("warm fetch latency = %d, want 0", lat)
	}
	if h.MemAccesses() != 1 {
		t.Fatalf("MemAccesses = %d, want 1", h.MemAccesses())
	}
	// Evict from L1I (64KiB 2-way, 512 sets => 32 KiB stride collides) but
	// stay in the 2 MiB L2: third conflicting line evicts the first from L1,
	// refetch should then be an L2 hit costing L2's latency.
	const stride = 32 << 10
	h.Fetch(1 * stride)
	h.Fetch(2 * stride)
	if lat := h.Fetch(0); lat != h.L2.Config().HitLatency {
		t.Fatalf("L2-hit fetch latency = %d, want %d", lat, h.L2.Config().HitLatency)
	}
}

func TestHierarchySplitL1(t *testing.T) {
	h := NewES40()
	h.Fetch(0x4000)
	// Same line through the data path must miss L1D (split caches) but hit L2.
	if lat := h.Data(0x4000); lat != h.L2.Config().HitLatency {
		t.Fatalf("data probe after fetch = %d, want L2 hit %d", lat, h.L2.Config().HitLatency)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("empty MissRate != 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Fatalf("MissRate = %v, want 0.25", s.MissRate())
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := New(Config{Name: "b", Size: 64 << 10, LineSize: 64, Assoc: 2})
	c.Access(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(0)
	}
}
