// Package cache models the Alpha ES40 on-chip cache hierarchy used by the
// paper's evaluation machine: split 64 KiB 2-way L1 instruction and data
// caches backed by a unified 2 MiB direct-mapped L2 (paper §V-A).
//
// The model is a classic set-associative tag array with true-LRU replacement
// and charges additional latency cycles on misses. It tracks no data, only
// tags; it is used by the machine simulator to account for the code-locality
// effects the paper's code-rearrangement experiment (Fig. 11) depends on.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name       string
	Size       int // total bytes
	LineSize   int // bytes per line, power of two
	Assoc      int // ways; Size/LineSize/Assoc sets must be a power of two
	HitLatency int // extra cycles charged when this level hits (beyond upper levels)
}

// Stats holds access counters for one cache.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses, or 0 when no accesses occurred.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a single set-associative tag array with LRU replacement.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	// tags[set*assoc+way] holds line+1, with 0 meaning invalid (folding the
	// validity bit into the tag keeps the probe loop to one comparison);
	// lru[set*assoc+way] holds a recency stamp.
	tags  []uint64
	lru   []uint64
	clock uint64
	stats Stats
}

// New builds a cache from cfg. It panics on a malformed geometry, since
// configurations are compile-time constants in this codebase.
func New(cfg Config) *Cache {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	if cfg.Assoc <= 0 || cfg.Size%(cfg.LineSize*cfg.Assoc) != 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d line=%d assoc=%d", cfg.Name, cfg.Size, cfg.LineSize, cfg.Assoc))
	}
	sets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets not a power of two", cfg.Name, sets))
	}
	var lineShift uint
	for 1<<lineShift != cfg.LineSize {
		lineShift++
	}
	n := sets * cfg.Assoc
	return &Cache{
		cfg:       cfg,
		lineShift: lineShift,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, n),
		lru:       make([]uint64, n),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// Access probes the cache for addr, allocating on miss. It reports whether
// the access hit. The direct-mapped and 2-way geometries — the only ones in
// the ES40 hierarchy — are specialized: together they sit on the simulator's
// per-instruction path, so the generic way loop is worth bypassing.
func (c *Cache) Access(addr uint64) bool {
	c.stats.Accesses++
	c.clock++
	line := addr >> c.lineShift
	key := line + 1
	switch c.cfg.Assoc {
	case 1:
		set := int(line & c.setMask)
		if c.tags[set] == key {
			return true
		}
		c.stats.Misses++
		c.tags[set] = key
		return false
	case 2:
		set := int(line&c.setMask) * 2
		t := c.tags[set : set+2 : set+2]
		l := c.lru[set : set+2 : set+2]
		if t[0] == key {
			l[0] = c.clock
			return true
		}
		if t[1] == key {
			l[1] = c.clock
			return true
		}
		c.stats.Misses++
		w := 0
		if t[0] != 0 && (t[1] == 0 || l[1] < l[0]) {
			w = 1
		}
		t[w] = key
		l[w] = c.clock
		return false
	}
	set := int(line&c.setMask) * c.cfg.Assoc
	// Hit?
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.tags[set+w] == key {
			c.lru[set+w] = c.clock
			return true
		}
	}
	c.stats.Misses++
	// Fill: pick an invalid way or the least recently used one.
	victim := set
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.tags[set+w] == 0 {
			victim = set + w
			break
		}
		if c.lru[set+w] < c.lru[victim] {
			victim = set + w
		}
	}
	c.tags[victim] = key
	c.lru[victim] = c.clock
	return false
}

// Contains reports whether addr's line is resident, without updating state.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line&c.setMask) * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.tags[set+w] == line+1 {
			return true
		}
	}
	return false
}

// Flush invalidates the entire cache. Statistics are preserved.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
	}
}

// Reset restores the cache to its just-built state: all lines invalid, LRU
// clock and statistics zeroed. Unlike Flush it leaves no trace of past
// activity, so a reused simulated machine behaves bit-identically to a
// fresh one.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	for i := range c.lru {
		c.lru[i] = 0
	}
	c.clock = 0
	c.stats = Stats{}
}

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

// LineShift returns log2(LineSize), for callers that memoize
// line-granular probe results.
func (c *Cache) LineShift() uint { return c.lineShift }

// Hierarchy is the two-level split-L1 hierarchy of the ES40. A probe charges
// 0 extra cycles on an L1 hit, L2.HitLatency on an L1 miss that hits in L2,
// and MemLatency when both miss.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	MemLatency   int
	memAccesses  uint64
}

// ES40Params returns the cache geometry of the paper's evaluation machine
// (§V-A): 64 KiB 2-way split L1 I/D, 2 MiB direct-mapped unified L2.
func ES40Params() (l1i, l1d, l2 Config, memLatency int) {
	l1i = Config{Name: "L1I", Size: 64 << 10, LineSize: 64, Assoc: 2, HitLatency: 0}
	l1d = Config{Name: "L1D", Size: 64 << 10, LineSize: 64, Assoc: 2, HitLatency: 0}
	l2 = Config{Name: "L2", Size: 2 << 20, LineSize: 64, Assoc: 1, HitLatency: 12}
	return l1i, l1d, l2, 120
}

// NewES40 builds the ES40 hierarchy.
func NewES40() *Hierarchy {
	l1i, l1d, l2, memLat := ES40Params()
	return &Hierarchy{L1I: New(l1i), L1D: New(l1d), L2: New(l2), MemLatency: memLat}
}

// Fetch probes the instruction path for addr and returns the extra latency
// cycles to charge.
func (h *Hierarchy) Fetch(addr uint64) int { return h.probe(h.L1I, addr) }

// Data probes the data path for addr and returns the extra latency cycles to
// charge.
func (h *Hierarchy) Data(addr uint64) int { return h.probe(h.L1D, addr) }

func (h *Hierarchy) probe(l1 *Cache, addr uint64) int {
	if l1.Access(addr) {
		return 0
	}
	if h.L2.Access(addr) {
		return h.L2.cfg.HitLatency
	}
	h.memAccesses++
	return h.MemLatency
}

// MemAccesses reports the number of accesses that missed all cache levels.
func (h *Hierarchy) MemAccesses() uint64 { return h.memAccesses }

// Reset restores every level to its just-built state (see Cache.Reset).
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.memAccesses = 0
}
