package policy

// dpeh combines low-threshold dynamic profiling with the exception handler
// (§IV-B): the short interpretation window catches the common always-MDA
// sites cheaply, and the handler patches whatever the window missed —
// including late-onset sites. The paper's overall winner (Fig. 16,
// geomean ~0.97 of EH alone).
type dpeh struct{ Base }

func (dpeh) Name() string { return "dpeh" }

func (dpeh) SitePolicy(c SiteCtx) SitePolicy {
	if c.KnownMDA || c.ProfMDA > 0 {
		return Seq
	}
	return Plain
}

func (dpeh) OnMisalignTrap(TrapCtx) Action { return Patch }

func (dpeh) WantsInterpProfiling() bool { return true }

// HeatThreshold is the "relatively low threshold" of §IV-B.
func (dpeh) HeatThreshold() uint64 { return 10 }
