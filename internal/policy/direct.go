package policy

// direct is the QEMU-style mechanism (§III-A): every non-byte memory
// operation is translated into the MDA code sequence, so no translated
// access can ever trap. Simple, and the paper's Figure 16 baseline for how
// expensive that simplicity is (~2.2x).
type direct struct{ Base }

func (direct) Name() string { return "direct" }

func (direct) SitePolicy(SiteCtx) SitePolicy { return Seq }

func (direct) OnMisalignTrap(TrapCtx) Action { return Fixup }
