package policy

// dynamicProfile is the IA-32 EL-style mechanism (§III-C): blocks are
// interpreted with MDA instrumentation until the heating threshold, then
// sites that misaligned during profiling get the sequence. Sites whose
// misalignment starts after the profiling window trap to the OS fixup
// forever — the late-onset failure mode (Table III) DPEH exists to fix.
type dynamicProfile struct{ Base }

func (dynamicProfile) Name() string { return "dynamic-profile" }

func (dynamicProfile) SitePolicy(c SiteCtx) SitePolicy {
	if c.KnownMDA || c.ProfMDA > 0 {
		return Seq
	}
	return Plain
}

func (dynamicProfile) OnMisalignTrap(TrapCtx) Action { return Fixup }

func (dynamicProfile) WantsInterpProfiling() bool { return true }
