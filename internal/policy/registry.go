package policy

import (
	"fmt"
	"sort"
)

// Entry describes one registered mechanism.
type Entry struct {
	// Name is the canonical registry key (also Mechanism.Name()).
	Name string
	// Aliases are accepted alternative spellings for CLI flags.
	Aliases []string
	// Summary is a one-line description for CLI help and docs.
	Summary string
	// New constructs a fresh strategy instance.
	New func() Mechanism
}

var (
	entries []Entry
	byName  = make(map[string]int)
)

// Register adds a mechanism to the registry and returns its stable ID (the
// registration index — the five paper mechanisms occupy 0..4 in
// core.Mechanism constant order, SPEH is 5). It panics on a duplicate or
// empty name: registration is a program-integrity step, not a runtime
// condition.
func Register(e Entry) int {
	if e.Name == "" || e.New == nil {
		panic("policy: Register needs a name and a constructor")
	}
	for _, n := range append([]string{e.Name}, e.Aliases...) {
		if _, dup := byName[n]; dup {
			panic(fmt.Sprintf("policy: duplicate mechanism name %q", n))
		}
	}
	id := len(entries)
	entries = append(entries, e)
	byName[e.Name] = id
	for _, a := range e.Aliases {
		byName[a] = id
	}
	return id
}

// ByID constructs a fresh instance of the mechanism with the given ID.
func ByID(id int) (Mechanism, bool) {
	if id < 0 || id >= len(entries) {
		return nil, false
	}
	return entries[id].New(), true
}

// ID resolves a canonical name or alias to the mechanism ID.
func ID(name string) (int, bool) {
	id, ok := byName[name]
	return id, ok
}

// NameOf returns the canonical name for an ID.
func NameOf(id int) (string, bool) {
	if id < 0 || id >= len(entries) {
		return "", false
	}
	return entries[id].Name, true
}

// Names returns the canonical mechanism names in registration order.
func Names() []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

// AllNames returns every accepted spelling (canonical names and aliases),
// sorted, for CLI error messages.
func AllNames() []string {
	out := make([]string, 0, len(byName))
	for n := range byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Entries returns a copy of the registry in registration order.
func Entries() []Entry {
	out := make([]Entry, len(entries))
	copy(out, entries)
	return out
}

// The built-in mechanisms register here, in one init so their IDs are
// fixed by this list alone (per-file init order would depend on file
// names): IDs 0..4 mirror the historical core.Mechanism constants, 5 is
// the SPEH hybrid this seam was built to host, 6 the ahead-of-time tier.
func init() {
	Register(Entry{
		Name:    "direct",
		Summary: "every non-byte access becomes the MDA sequence (QEMU-style, §III-A)",
		New:     func() Mechanism { return direct{} },
	})
	Register(Entry{
		Name:    "static-profile",
		Aliases: []string{"static"},
		Summary: "train-input-profiled sites get the sequence (FX!32-style, §III-B)",
		New:     func() Mechanism { return staticProfile{} },
	})
	Register(Entry{
		Name:    "dynamic-profile",
		Aliases: []string{"dynprof"},
		Summary: "interpret-first profiling picks sequence sites (IA-32 EL-style, §III-C)",
		New:     func() Mechanism { return dynamicProfile{} },
	})
	Register(Entry{
		Name:    "exception-handling",
		Aliases: []string{"eh"},
		Summary: "translate plain; trap-and-patch sites on first misalignment (§IV)",
		New:     func() Mechanism { return exceptionHandling{} },
	})
	Register(Entry{
		Name:    "dpeh",
		Summary: "low-threshold dynamic profiling plus exception handling (§IV-B)",
		New:     func() Mechanism { return dpeh{} },
	})
	Register(Entry{
		Name:    "speh",
		Summary: "static profiling plus exception handling: train-marked sites eager, late sites trap-and-patch",
		New:     func() Mechanism { return speh{} },
	})
	Register(Entry{
		Name:    "aot",
		Summary: "whole-binary ahead-of-time pre-translation from the recovered CFG; align verdicts pick site shapes, traps patch the leftovers",
		New:     func() Mechanism { return aot{} },
	})
}
