package policy

// speh is the composite the paper implies but never measures: static
// profiling plus exception handling. Sites the train input marked get the
// MDA sequence eagerly (zero first-trap cost, like StaticProfile); sites
// the train input missed — the ref-input surprises that cripple FX!32 on
// 252.eon/450.soplex — are caught by the trap-and-patch handler instead of
// trapping forever. Single-phase: no interpretation window, so startup is
// as cheap as plain EH.
type speh struct{ Base }

func (speh) Name() string { return "speh" }

func (speh) SitePolicy(c SiteCtx) SitePolicy {
	if c.StaticMarked || c.KnownMDA {
		return Seq
	}
	return Plain
}

func (speh) OnMisalignTrap(TrapCtx) Action { return Patch }

func (speh) UsesStaticProfile() bool { return true }
