package policy

// exceptionHandling is the paper's proposed mechanism (§IV, Fig. 5):
// translate every site as a plain memory operation and let the BT's
// misalignment handler patch a faulting operation into a branch to a
// freshly emitted MDA stub on its first trap. Trap-discovered sites
// (KnownMDA) inline the sequence on retranslation.
type exceptionHandling struct{ Base }

func (exceptionHandling) Name() string { return "exception-handling" }

func (exceptionHandling) SitePolicy(c SiteCtx) SitePolicy {
	if c.KnownMDA {
		return Seq
	}
	return Plain
}

func (exceptionHandling) OnMisalignTrap(TrapCtx) Action { return Patch }
