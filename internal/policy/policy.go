// Package policy defines the MDA-handling mechanism seam of the translator:
// a Mechanism is a strategy object encapsulating every decision the paper's
// five mechanisms (Table II) actually differ on, so the engine in
// internal/core drives one hook protocol instead of switching on a
// mechanism enum in four files.
//
// The hook protocol, in engine order:
//
//  1. WantsInterpProfiling / HeatThreshold — whether blocks are interpreted
//     (with MDA instrumentation) before translation, and for how long
//     (two-phase mechanisms: DynamicProfile, DPEH).
//  2. OnBlockHot — notification that a block crossed the heating threshold
//     (or, for single-phase mechanisms, is about to be translated).
//  3. SitePolicy — the translate-time decision per memory site: plain
//     trap-prone instruction, inline MDA sequence, or one of the
//     multi-version shapes. Called once per site per (re)translation with a
//     SiteCtx snapshot of everything the engine knows about the site.
//  4. OnMisalignTrap — the trap-time decision when a translated site
//     misaligns: leave it to the OS-style software fixup, patch in an MDA
//     stub, retranslate the whole block, or rearrange it in place.
//  5. OnRetranslate — notification that a block's translation was
//     discarded for re-profiling (§IV-C).
//
// Mechanisms are registered by name (Register/ByID/ID) and composed with
// decorators (WithMultiVersion, WithAdaptive, WithRetranslate,
// WithRearrange, WithStaticAlign) that layer the paper's §IV extensions
// over any base strategy. See DESIGN.md §10.
package policy

import "mdabt/internal/align"

// SitePolicy is the translate-time decision for one memory site.
type SitePolicy uint8

const (
	// Plain emits the single trap-prone memory instruction.
	Plain SitePolicy = iota
	// Seq inlines the MDA code sequence (ldq_u/ext…, paper Fig. 2).
	Seq
	// Mixed emits per-site multi-version code: an alignment check selects
	// between the plain and sequence shapes (§IV-D, Fig. 8 left).
	Mixed
	// Adaptive emits the sequence with aligned-streak instrumentation that
	// can revert the site to Plain (§IV-D, Fig. 8 right).
	Adaptive
)

// String names the policy for tests and dumps.
func (p SitePolicy) String() string {
	switch p {
	case Plain:
		return "plain"
	case Seq:
		return "seq"
	case Mixed:
		return "mixed"
	case Adaptive:
		return "adaptive"
	}
	return "policy?"
}

// Action is the trap-time decision for a misaligning translated site.
type Action uint8

const (
	// Fixup emulates the access in software and resumes — the OS-style
	// every-time cost (mechanisms without an exception handler).
	Fixup Action = iota
	// Patch emits an MDA stub and patches the faulting instruction into a
	// branch to it (§IV, Fig. 5).
	Patch
	// Retranslate discards the block's translation and restarts profiling
	// for it (§IV-C, Fig. 7).
	Retranslate
	// Rearrange retranslates the block in place with the sequence inline,
	// preserving I-cache locality (§IV-A, Fig. 6).
	Rearrange
)

// String names the action for tests and dumps.
func (a Action) String() string {
	switch a {
	case Fixup:
		return "fixup"
	case Patch:
		return "patch"
	case Retranslate:
		return "retranslate"
	case Rearrange:
		return "rearrange"
	}
	return "action?"
}

// SiteCtx is the engine's knowledge about one memory site at translation
// time. The zero value describes a never-seen site.
type SiteCtx struct {
	// GuestPC is the site's guest instruction address.
	GuestPC uint32
	// KnownMDA reports a trap-discovered site: the exception handler saw it
	// misalign (retained across invalidations, §IV-C).
	KnownMDA bool
	// StaticMarked reports the site is in the train-run profile
	// (Options.StaticSites — FX!32-style static profiling).
	StaticMarked bool
	// ProfMDA/ProfAligned are the interpretation-phase counts of misaligned
	// and aligned executions (zero for single-phase mechanisms).
	ProfMDA, ProfAligned uint64
	// Reverted reports the adaptive monitor demoted the site back to a
	// plain operation (§IV-D).
	Reverted bool
	// AlignVerdict is the static alignment analysis verdict for the whole
	// instruction (align.Unknown when the layer is off).
	AlignVerdict align.Verdict
}

// MixedRatio returns the observed misalignment ratio, or 0 with no profile.
func (c SiteCtx) MixedRatio() float64 {
	total := c.ProfMDA + c.ProfAligned
	if total == 0 {
		return 0
	}
	return float64(c.ProfMDA) / float64(total)
}

// TrapCtx is the engine's knowledge at trap time.
type TrapCtx struct {
	// GuestPC is the faulting site's guest instruction address.
	GuestPC uint32
	// BlockPC is the containing translation unit's entry address.
	BlockPC uint32
	// BlockTraps counts misalignment traps taken in this block's current
	// translation, including this one.
	BlockTraps int
}

// Mechanism is one MDA handling strategy. Implementations must be cheap to
// construct and free of shared mutable state: the engine builds a private
// instance per NewEngine via the registry.
type Mechanism interface {
	// Name returns the registry name the mechanism was registered under.
	Name() string
	// SitePolicy decides how to translate one memory site.
	SitePolicy(SiteCtx) SitePolicy
	// OnMisalignTrap decides how to react when a translated site traps.
	// Returning Fixup means the mechanism has no exception handler: the
	// access is emulated and the site pays the trap on every occurrence.
	OnMisalignTrap(TrapCtx) Action
	// WantsInterpProfiling reports a two-phase mechanism: blocks are
	// interpreted with MDA instrumentation before translation.
	WantsInterpProfiling() bool
	// HeatThreshold is the mechanism's default heating threshold
	// (Options.HeatThreshold overrides it; meaningful only when
	// WantsInterpProfiling).
	HeatThreshold() uint64
	// UsesStaticProfile reports the mechanism consumes a train-run profile
	// (Options.StaticSites); the CLIs run a training census for it.
	UsesStaticProfile() bool
	// OnBlockHot is called when a block is about to be translated — after
	// crossing the heating threshold for two-phase mechanisms, on first
	// execution otherwise.
	OnBlockHot(guestPC uint32)
	// OnRetranslate is called when a block's translation is discarded for
	// re-profiling (the Retranslate action).
	OnRetranslate(guestPC uint32)
}

// Base provides the neutral defaults of the optional hooks; embed it and
// override what the strategy actually cares about.
type Base struct{}

// WantsInterpProfiling reports false: single-phase by default.
func (Base) WantsInterpProfiling() bool { return false }

// HeatThreshold returns the paper's overall default threshold (§VI).
func (Base) HeatThreshold() uint64 { return 50 }

// UsesStaticProfile reports false: no train-run profile by default.
func (Base) UsesStaticProfile() bool { return false }

// OnBlockHot does nothing by default.
func (Base) OnBlockHot(uint32) {}

// OnRetranslate does nothing by default.
func (Base) OnRetranslate(uint32) {}

// Patches reports whether the mechanism's exception handler converts
// trapping sites (versus leaving every trap to the software fixup). It
// probes OnMisalignTrap with a zero TrapCtx, which every threshold-gated
// decorator passes through to its base action.
func Patches(m Mechanism) bool { return m.OnMisalignTrap(TrapCtx{}) != Fixup }
