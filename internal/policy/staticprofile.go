package policy

// staticProfile is the FX!32-style mechanism (§III-B): a prior train-input
// run produced a profile database, and sites it marked as misaligning get
// the MDA sequence. Sites the train input never misaligned trap to the OS
// fixup on every ref-input occurrence — the mechanism's Achilles heel the
// paper quantifies (252.eon +91%, 450.soplex +155%).
type staticProfile struct{ Base }

func (staticProfile) Name() string { return "static-profile" }

func (staticProfile) SitePolicy(c SiteCtx) SitePolicy {
	if c.StaticMarked {
		return Seq
	}
	return Plain
}

func (staticProfile) OnMisalignTrap(TrapCtx) Action { return Fixup }

func (staticProfile) UsesStaticProfile() bool { return true }
