package policy

// aot is the ahead-of-time tier's site strategy (DESIGN.md §13): all
// reachable blocks are pre-translated offline from the recovered CFG, so
// there is no interpretation phase to profile in. Site shapes come from
// the static alignment analysis (the engine forces the StaticAlign layer
// on for AOT): proven-aligned sites run plain, proven-misaligned sites
// inline the MDA sequence, and unknown sites fall through to this base —
// optimistic plain operations with an exception-handling backstop, so a
// statically undecidable site costs one trap-and-patch, exactly like the
// EH mechanism, rather than a pessimistic eager sequence.
type aot struct{ Base }

func (aot) Name() string { return "aot" }

func (aot) SitePolicy(SiteCtx) SitePolicy { return Plain }

func (aot) OnMisalignTrap(TrapCtx) Action { return Patch }
