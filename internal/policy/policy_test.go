package policy

import (
	"testing"

	"mdabt/internal/align"
)

// mustByName resolves a registered mechanism for fixtures.
func mustByName(t *testing.T, name string) Mechanism {
	t.Helper()
	id, ok := ID(name)
	if !ok {
		t.Fatalf("mechanism %q not registered", name)
	}
	m, ok := ByID(id)
	if !ok {
		t.Fatalf("no constructor for id %d", id)
	}
	return m
}

func TestRegistryBuiltins(t *testing.T) {
	// The five paper mechanisms must occupy IDs 0..4 in core.Mechanism
	// constant order, SPEH ID 5 — the compat shim depends on it.
	want := []string{"direct", "static-profile", "dynamic-profile", "exception-handling", "dpeh", "speh"}
	got := Names()
	if len(got) < len(want) {
		t.Fatalf("only %d registered mechanisms: %v", len(got), got)
	}
	for i, n := range want {
		if got[i] != n {
			t.Errorf("id %d = %q, want %q", i, got[i], n)
		}
		id, ok := ID(n)
		if !ok || id != i {
			t.Errorf("ID(%q) = %d,%v, want %d,true", n, id, ok, i)
		}
		m, ok := ByID(i)
		if !ok || m.Name() != n {
			t.Errorf("ByID(%d).Name() = %q, want %q", i, m.Name(), n)
		}
	}
	for alias, canon := range map[string]string{"static": "static-profile", "dynprof": "dynamic-profile", "eh": "exception-handling"} {
		ai, aok := ID(alias)
		ci, _ := ID(canon)
		if !aok || ai != ci {
			t.Errorf("alias %q resolves to %d, want %d (%s)", alias, ai, ci, canon)
		}
	}
	if _, ok := ID("mechanism?"); ok {
		t.Error("bogus name resolved")
	}
	if _, ok := ByID(len(Names())); ok {
		t.Error("out-of-range id resolved")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Entry{Name: "direct", New: func() Mechanism { return direct{} }})
}

// The fixture sites: everything SitePolicy decisions can hinge on.
var (
	freshSite    = SiteCtx{GuestPC: 0x1000}
	markedSite   = SiteCtx{GuestPC: 0x1000, StaticMarked: true}
	knownSite    = SiteCtx{GuestPC: 0x1000, KnownMDA: true}
	profiledMDA  = SiteCtx{GuestPC: 0x1000, ProfMDA: 7}
	mixedProfile = SiteCtx{GuestPC: 0x1000, ProfMDA: 5, ProfAligned: 5}
	alignedOnly  = SiteCtx{GuestPC: 0x1000, ProfAligned: 9}
)

func TestStrategySitePolicies(t *testing.T) {
	cases := []struct {
		mech string
		site SiteCtx
		want SitePolicy
	}{
		{"direct", freshSite, Seq},
		{"direct", alignedOnly, Seq},

		{"static-profile", freshSite, Plain},
		{"static-profile", markedSite, Seq},
		{"static-profile", knownSite, Plain}, // no handler: trap history is irrelevant
		{"static-profile", profiledMDA, Plain},

		{"dynamic-profile", freshSite, Plain},
		{"dynamic-profile", profiledMDA, Seq},
		{"dynamic-profile", mixedProfile, Seq},
		{"dynamic-profile", alignedOnly, Plain},
		{"dynamic-profile", knownSite, Seq},
		{"dynamic-profile", markedSite, Plain},

		{"exception-handling", freshSite, Plain},
		{"exception-handling", knownSite, Seq},
		{"exception-handling", profiledMDA, Plain}, // single-phase: no profile to consume
		{"exception-handling", markedSite, Plain},

		{"dpeh", freshSite, Plain},
		{"dpeh", profiledMDA, Seq},
		{"dpeh", knownSite, Seq},
		{"dpeh", markedSite, Plain},

		{"speh", freshSite, Plain},
		{"speh", markedSite, Seq},
		{"speh", knownSite, Seq},
		{"speh", profiledMDA, Plain}, // single-phase: no interp profile exists
	}
	for _, c := range cases {
		if got := mustByName(t, c.mech).SitePolicy(c.site); got != c.want {
			t.Errorf("%s.SitePolicy(%+v) = %v, want %v", c.mech, c.site, got, c.want)
		}
	}
}

func TestStrategyTrapActions(t *testing.T) {
	trap := TrapCtx{GuestPC: 0x1000, BlockPC: 0x0ff0, BlockTraps: 3}
	for mech, want := range map[string]Action{
		"direct":             Fixup,
		"static-profile":     Fixup,
		"dynamic-profile":    Fixup,
		"exception-handling": Patch,
		"dpeh":               Patch,
		"speh":               Patch,
	} {
		if got := mustByName(t, mech).OnMisalignTrap(trap); got != want {
			t.Errorf("%s.OnMisalignTrap = %v, want %v", mech, got, want)
		}
		if patches := Patches(mustByName(t, mech)); patches != (want != Fixup) {
			t.Errorf("Patches(%s) = %v", mech, patches)
		}
	}
}

func TestStrategyCapabilities(t *testing.T) {
	cases := []struct {
		mech           string
		profiled       bool
		heat           uint64
		usesStaticProf bool
	}{
		{"direct", false, 50, false},
		{"static-profile", false, 50, true},
		{"dynamic-profile", true, 50, false},
		{"exception-handling", false, 50, false},
		{"dpeh", true, 10, false},
		{"speh", false, 50, true},
	}
	for _, c := range cases {
		m := mustByName(t, c.mech)
		if m.WantsInterpProfiling() != c.profiled {
			t.Errorf("%s.WantsInterpProfiling = %v", c.mech, m.WantsInterpProfiling())
		}
		if m.HeatThreshold() != c.heat {
			t.Errorf("%s.HeatThreshold = %d, want %d", c.mech, m.HeatThreshold(), c.heat)
		}
		if m.UsesStaticProfile() != c.usesStaticProf {
			t.Errorf("%s.UsesStaticProfile = %v", c.mech, m.UsesStaticProfile())
		}
	}
}

func TestMultiVersionDecorator(t *testing.T) {
	m := WithMultiVersion(mustByName(t, "dpeh"), 0.05, 0.95)
	cases := []struct {
		site SiteCtx
		want SitePolicy
	}{
		{mixedProfile, Mixed},                          // ratio 0.5, inside the band
		{profiledMDA, Seq},                             // never aligned: pessimistic sequence
		{SiteCtx{ProfMDA: 99, ProfAligned: 1}, Seq},    // ratio 0.99 above MixedSiteMax
		{SiteCtx{ProfMDA: 1, ProfAligned: 99}, Seq},    // ratio 0.01 below MixedSiteMin keeps the sequence
		{SiteCtx{KnownMDA: true, ProfAligned: 9}, Seq}, // trap-known, no profile MDA: never mixed
		{freshSite, Plain},
	}
	for _, c := range cases {
		if got := m.SitePolicy(c.site); got != c.want {
			t.Errorf("mv.SitePolicy(%+v) = %v, want %v", c.site, got, c.want)
		}
	}
	// The decorator must not alter trap behaviour or capabilities.
	if m.OnMisalignTrap(TrapCtx{}) != Patch || !m.WantsInterpProfiling() {
		t.Error("multi-version decorator leaked into unrelated hooks")
	}
}

func TestAdaptiveDecorator(t *testing.T) {
	m := WithAdaptive(WithMultiVersion(mustByName(t, "dpeh"), 0.05, 0.95))
	if got := m.SitePolicy(profiledMDA); got != Adaptive {
		t.Errorf("sequence site = %v, want Adaptive", got)
	}
	if got := m.SitePolicy(mixedProfile); got != Mixed {
		t.Errorf("mixed site = %v, want Mixed (adaptive leaves it)", got)
	}
	rev := mixedProfile
	rev.Reverted = true
	if got := m.SitePolicy(rev); got != Plain {
		t.Errorf("reverted site = %v, want Plain (reversion outranks Mixed)", got)
	}
	if got := m.SitePolicy(freshSite); got != Plain {
		t.Errorf("fresh site = %v, want Plain", got)
	}
}

func TestRetranslateDecorator(t *testing.T) {
	m := WithRetranslate(mustByName(t, "dpeh"), 4)
	if got := m.OnMisalignTrap(TrapCtx{BlockTraps: 3}); got != Patch {
		t.Errorf("below threshold = %v, want Patch", got)
	}
	if got := m.OnMisalignTrap(TrapCtx{BlockTraps: 4}); got != Retranslate {
		t.Errorf("at threshold = %v, want Retranslate", got)
	}
	// Over a Fixup base the decorator is inert (and the Patches probe
	// still reports non-patching).
	f := WithRetranslate(mustByName(t, "dynamic-profile"), 1)
	if got := f.OnMisalignTrap(TrapCtx{BlockTraps: 9}); got != Fixup {
		t.Errorf("fixup base = %v, want Fixup", got)
	}
	if Patches(f) {
		t.Error("Patches(true) over a fixup base")
	}
}

func TestRearrangeDecorator(t *testing.T) {
	m := WithRearrange(mustByName(t, "exception-handling"))
	if got := m.OnMisalignTrap(TrapCtx{BlockTraps: 1}); got != Rearrange {
		t.Errorf("= %v, want Rearrange", got)
	}
	// Retranslation beats rearrangement: WithRearrange(WithRetranslate(…)).
	rr := WithRearrange(WithRetranslate(mustByName(t, "dpeh"), 2))
	if got := rr.OnMisalignTrap(TrapCtx{BlockTraps: 1}); got != Rearrange {
		t.Errorf("below retrans threshold = %v, want Rearrange", got)
	}
	if got := rr.OnMisalignTrap(TrapCtx{BlockTraps: 2}); got != Retranslate {
		t.Errorf("at retrans threshold = %v, want Retranslate", got)
	}
}

func TestStaticAlignDecorator(t *testing.T) {
	m := WithStaticAlign(mustByName(t, "direct"))
	if got := m.SitePolicy(SiteCtx{AlignVerdict: align.Aligned}); got != Plain {
		t.Errorf("proven-aligned = %v, want Plain override", got)
	}
	if got := m.SitePolicy(SiteCtx{AlignVerdict: align.Misaligned}); got != Seq {
		t.Errorf("proven-misaligned = %v, want Seq", got)
	}
	if got := m.SitePolicy(SiteCtx{AlignVerdict: align.Unknown}); got != Seq {
		t.Errorf("unknown verdict = %v, want the base decision (Seq under direct)", got)
	}
}

func TestEnumStrings(t *testing.T) {
	for p, want := range map[SitePolicy]string{Plain: "plain", Seq: "seq", Mixed: "mixed", Adaptive: "adaptive", SitePolicy(99): "policy?"} {
		if p.String() != want {
			t.Errorf("SitePolicy(%d).String() = %q, want %q", p, p.String(), want)
		}
	}
	for a, want := range map[Action]string{Fixup: "fixup", Patch: "patch", Retranslate: "retranslate", Rearrange: "rearrange", Action(99): "action?"} {
		if a.String() != want {
			t.Errorf("Action(%d).String() = %q, want %q", a, a.String(), want)
		}
	}
}
