package policy

import "mdabt/internal/align"

// The §IV extensions are decorators: each wraps any base mechanism and
// refines one hook, so multi-version, adaptive sites, retranslation,
// rearrangement, and the static alignment layer compose over any strategy
// instead of being mechanism-private special cases. internal/core applies
// them from Options knobs (capability-gated: profile-driven decorators
// need a two-phase patching base, trap-driven ones a patching base);
// out-of-tree mechanisms get them for free.
//
// Wrap order matters for the trap hooks: WithRearrange must wrap
// WithRetranslate so a block over the retranslation threshold is
// retranslated, not rearranged (the engine's historical priority).

// multiVersion layers §IV-D two-shape code: a profiled site that was
// misaligned only part of the time gets a guarded plain/sequence pair
// instead of the pessimistic sequence.
type multiVersion struct {
	Mechanism
	min, max float64
}

// WithMultiVersion decorates base with mixed-site classification: a site
// the base would emit as a sequence, whose observed misalignment ratio
// lies in [min, max], becomes Mixed. Requires interpretation profiles, so
// it only bites over two-phase bases.
func WithMultiVersion(base Mechanism, min, max float64) Mechanism {
	return multiVersion{Mechanism: base, min: min, max: max}
}

func (m multiVersion) SitePolicy(c SiteCtx) SitePolicy {
	p := m.Mechanism.SitePolicy(c)
	if p == Seq && c.ProfMDA > 0 && c.ProfAligned > 0 {
		if r := c.MixedRatio(); r >= m.min && r <= m.max {
			return Mixed
		}
	}
	return p
}

// adaptive layers §IV-D truly-adaptive sites: sequence sites get
// aligned-streak instrumentation, and sites the monitor reverted go back
// to plain operations.
type adaptive struct{ Mechanism }

// WithAdaptive decorates base with the adaptive-site refinement.
func WithAdaptive(base Mechanism) Mechanism { return adaptive{base} }

func (a adaptive) SitePolicy(c SiteCtx) SitePolicy {
	p := a.Mechanism.SitePolicy(c)
	if c.Reverted {
		// The monitor decided this site realigned; reversion wins over
		// every other shape, including Mixed.
		return Plain
	}
	if p == Seq {
		return Adaptive
	}
	return p
}

// retranslate layers §IV-C block retranslation: once a block has taken
// `threshold` traps, its translation is discarded and profiling restarts.
type retranslate struct {
	Mechanism
	threshold int
}

// WithRetranslate decorates base with the retranslation policy. It only
// changes behaviour over patching bases: a Fixup base action passes
// through untouched.
func WithRetranslate(base Mechanism, threshold int) Mechanism {
	return retranslate{Mechanism: base, threshold: threshold}
}

func (r retranslate) OnMisalignTrap(c TrapCtx) Action {
	act := r.Mechanism.OnMisalignTrap(c)
	if act == Patch && c.BlockTraps >= r.threshold {
		return Retranslate
	}
	return act
}

// rearrange layers §IV-A code rearrangement: instead of patching a branch
// to a distant stub, the block is retranslated in place with the sequence
// inline.
type rearrange struct{ Mechanism }

// WithRearrange decorates base with the rearrangement policy.
func WithRearrange(base Mechanism) Mechanism { return rearrange{base} }

func (r rearrange) OnMisalignTrap(c TrapCtx) Action {
	act := r.Mechanism.OnMisalignTrap(c)
	if act == Patch {
		return Rearrange
	}
	return act
}

// staticAlign layers the whole-program alignment analysis: a decisive
// verdict overrides the base site policy — proven-aligned sites run plain
// with no trap hook or adaptive bookkeeping, proven-misaligned sites
// inline the sequence with zero first-trap cost. Unknown verdicts keep the
// base decision.
type staticAlign struct{ Mechanism }

// WithStaticAlign decorates base with verdict overrides. Apply it
// outermost: the analysis outranks every profile- and trap-driven shape.
func WithStaticAlign(base Mechanism) Mechanism { return staticAlign{base} }

func (s staticAlign) SitePolicy(c SiteCtx) SitePolicy {
	switch c.AlignVerdict {
	case align.Aligned:
		return Plain
	case align.Misaligned:
		return Seq
	}
	return s.Mechanism.SitePolicy(c)
}
