// Package guestasm assembles textual guest (x86-like) assembly into a
// loadable image. The accepted syntax is the Intel-flavored form the guest
// disassembler emits, so disassemble→assemble round-trips:
//
//	; comment
//	start:
//	        mov     ebx, 0x10000000
//	loop:   mov     eax, dword [ebx+esi*4+2]
//	        movzx   edx, word [ebx+6]
//	        fld     f0, qword [ebp]
//	        add     eax, edx
//	        cmp     eax, 100
//	        jl      loop
//	        call    helper
//	        halt
//
// Numbers may be decimal, hexadecimal (0x…) or negative. Labels are
// case-sensitive identifiers followed by ':'; instruction mnemonics and
// register names are case-insensitive.
package guestasm

import (
	"fmt"
	"strconv"
	"strings"

	"mdabt/internal/guest"
)

// Error is a positioned assembly error.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("guestasm: line %d: %s", e.Line, e.Msg) }

// Assemble translates source into a guest image loadable at base.
func Assemble(src string, base uint32) ([]byte, error) {
	b := guest.NewBuilder()
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if idx := strings.IndexByte(line, ';'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Leading labels (possibly several).
		for {
			idx := strings.IndexByte(line, ':')
			if idx < 0 {
				break
			}
			label := strings.TrimSpace(line[:idx])
			if !isIdent(label) {
				return nil, &Error{i + 1, fmt.Sprintf("invalid label %q", label)}
			}
			b.Label(label)
			line = strings.TrimSpace(line[idx+1:])
		}
		if line == "" {
			continue
		}
		if err := parseInst(b, line); err != nil {
			return nil, &Error{i + 1, err.Error()}
		}
	}
	img, err := b.Build(base)
	if err != nil {
		return nil, fmt.Errorf("guestasm: %w", err)
	}
	return img, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// operand is a parsed instruction operand.
type operand struct {
	kind  opKind
	reg   guest.Reg
	freg  guest.FReg
	imm   int32
	mem   guest.MemRef
	size  int // memory operand size (0 = unsized)
	label string
}

type opKind uint8

const (
	opReg opKind = iota
	opFReg
	opImm
	opMem
	opLabel
)

var regNames = map[string]guest.Reg{
	"eax": guest.EAX, "ecx": guest.ECX, "edx": guest.EDX, "ebx": guest.EBX,
	"esp": guest.ESP, "ebp": guest.EBP, "esi": guest.ESI, "edi": guest.EDI,
}

var fregNames = map[string]guest.FReg{
	"f0": guest.F0, "f1": guest.F1, "f2": guest.F2, "f3": guest.F3,
}

var sizeNames = map[string]int{"byte": 1, "word": 2, "dword": 4, "qword": 8}

// splitOperands splits on top-level commas (none occur inside brackets in
// this syntax, but be safe).
func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func parseNumber(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(s), "+"), 0, 33)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	n := int64(v)
	if neg {
		n = -n
	}
	if n < -(1<<31) || n > 1<<32-1 {
		return 0, fmt.Errorf("number %q out of 32-bit range", s)
	}
	return n, nil
}

// parseMem parses "[base]", "[base+disp]", "[base+index*scale+disp]" etc.
func parseMem(s string) (guest.MemRef, error) {
	inner := strings.TrimSpace(s)
	if !strings.HasPrefix(inner, "[") || !strings.HasSuffix(inner, "]") {
		return guest.MemRef{}, fmt.Errorf("bad memory operand %q", s)
	}
	inner = inner[1 : len(inner)-1]
	// Tokenize into +/- separated terms.
	var terms []string
	cur := strings.Builder{}
	for i, r := range inner {
		if (r == '+' || r == '-') && i > 0 {
			terms = append(terms, strings.TrimSpace(cur.String()))
			cur.Reset()
			if r == '-' {
				cur.WriteByte('-')
			}
			continue
		}
		cur.WriteRune(r)
	}
	terms = append(terms, strings.TrimSpace(cur.String()))

	var m guest.MemRef
	haveBase := false
	for _, t := range terms {
		tl := strings.ToLower(t)
		switch {
		case tl == "":
			return guest.MemRef{}, fmt.Errorf("empty term in %q", s)
		case strings.Contains(tl, "*"):
			parts := strings.SplitN(tl, "*", 2)
			r, ok := regNames[strings.TrimSpace(parts[0])]
			if !ok {
				return guest.MemRef{}, fmt.Errorf("bad index register in %q", s)
			}
			sc, err := parseNumber(strings.TrimSpace(parts[1]))
			if err != nil || (sc != 1 && sc != 2 && sc != 4 && sc != 8) {
				return guest.MemRef{}, fmt.Errorf("bad scale in %q", s)
			}
			if m.HasIndex {
				return guest.MemRef{}, fmt.Errorf("two index terms in %q", s)
			}
			m.HasIndex = true
			m.Index = r
			m.Scale = uint8(sc)
		default:
			if r, ok := regNames[tl]; ok {
				if !haveBase {
					m.Base = r
					haveBase = true
				} else if !m.HasIndex {
					m.HasIndex = true
					m.Index = r
					m.Scale = 1
				} else {
					return guest.MemRef{}, fmt.Errorf("too many registers in %q", s)
				}
				continue
			}
			n, err := parseNumber(tl)
			if err != nil {
				return guest.MemRef{}, err
			}
			m.Disp += int32(n)
		}
	}
	if !haveBase {
		return guest.MemRef{}, fmt.Errorf("memory operand %q needs a base register", s)
	}
	return m, nil
}

func parseOperand(s string) (operand, error) {
	sl := strings.ToLower(s)
	// Optional size prefix before a memory operand.
	for name, size := range sizeNames {
		if strings.HasPrefix(sl, name+" ") || strings.HasPrefix(sl, name+"[") {
			rest := strings.TrimSpace(s[len(name):])
			m, err := parseMem(rest)
			if err != nil {
				return operand{}, err
			}
			return operand{kind: opMem, mem: m, size: size}, nil
		}
	}
	if strings.HasPrefix(sl, "[") {
		m, err := parseMem(s)
		if err != nil {
			return operand{}, err
		}
		return operand{kind: opMem, mem: m}, nil
	}
	if r, ok := regNames[sl]; ok {
		return operand{kind: opReg, reg: r}, nil
	}
	if f, ok := fregNames[sl]; ok {
		return operand{kind: opFReg, freg: f}, nil
	}
	if n, err := parseNumber(sl); err == nil {
		return operand{kind: opImm, imm: int32(n)}, nil
	}
	if isIdent(s) {
		return operand{kind: opLabel, label: s}, nil
	}
	return operand{}, fmt.Errorf("bad operand %q", s)
}

var condByName = map[string]guest.Cond{
	"e": guest.E, "z": guest.E, "ne": guest.NE, "nz": guest.NE,
	"l": guest.L, "le": guest.LE, "g": guest.G, "ge": guest.GE,
	"b": guest.B, "be": guest.BE, "a": guest.A, "ae": guest.AE,
	"s": guest.S, "ns": guest.NS,
}

var aluRR = map[string]guest.Op{
	"add": guest.ADDrr, "sub": guest.SUBrr, "and": guest.ANDrr,
	"or": guest.ORrr, "xor": guest.XORrr, "imul": guest.IMULrr,
	"cmp": guest.CMPrr, "test": guest.TESTrr,
}

var aluRI = map[string]guest.Op{
	"add": guest.ADDri, "sub": guest.SUBri, "and": guest.ANDri,
	"or": guest.ORri, "xor": guest.XORri, "imul": guest.IMULri,
	"cmp": guest.CMPri, "shl": guest.SHLri, "shr": guest.SHRri, "sar": guest.SARri,
}

func parseInst(b *guest.Builder, line string) error {
	mn := line
	rest := ""
	if idx := strings.IndexAny(line, " \t"); idx >= 0 {
		mn, rest = line[:idx], strings.TrimSpace(line[idx+1:])
	}
	mn = strings.ToLower(mn)
	rawOps := splitOperands(rest)
	ops := make([]operand, len(rawOps))
	for i, ro := range rawOps {
		var err error
		ops[i], err = parseOperand(ro)
		if err != nil {
			return err
		}
	}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s expects %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}

	switch mn {
	case "rep":
		if !strings.EqualFold(strings.TrimSpace(rest), "movsd") {
			return fmt.Errorf("rep expects 'movsd'")
		}
		b.Emit(guest.Inst{Op: guest.REPMOVS4})
	case "nop":
		if err := need(0); err != nil {
			return err
		}
		b.Nop()
	case "halt":
		if err := need(0); err != nil {
			return err
		}
		b.Halt()
	case "ret":
		if err := need(0); err != nil {
			return err
		}
		b.Ret()
	case "push", "pop":
		if err := need(1); err != nil {
			return err
		}
		if ops[0].kind != opReg {
			return fmt.Errorf("%s expects a register", mn)
		}
		if mn == "push" {
			b.Push(ops[0].reg)
		} else {
			b.Pop(ops[0].reg)
		}
	case "jmp", "call":
		if err := need(1); err != nil {
			return err
		}
		if ops[0].kind != opLabel {
			return fmt.Errorf("%s expects a label", mn)
		}
		if mn == "jmp" {
			b.Jmp(ops[0].label)
		} else {
			b.Call(ops[0].label)
		}
	case "lea":
		if err := need(2); err != nil {
			return err
		}
		if ops[0].kind != opReg || ops[1].kind != opMem {
			return fmt.Errorf("lea expects reg, mem")
		}
		b.Lea(ops[0].reg, ops[1].mem)
	case "mov":
		return parseMov(b, ops)
	case "movzx", "movsx":
		if err := need(2); err != nil {
			return err
		}
		if ops[0].kind != opReg || ops[1].kind != opMem {
			return fmt.Errorf("%s expects reg, mem", mn)
		}
		signed := mn == "movsx"
		switch ops[1].size {
		case 1:
			if signed {
				b.Load(guest.LD1S, ops[0].reg, ops[1].mem)
			} else {
				b.Load(guest.LD1Z, ops[0].reg, ops[1].mem)
			}
		case 2:
			if signed {
				b.Load(guest.LD2S, ops[0].reg, ops[1].mem)
			} else {
				b.Load(guest.LD2Z, ops[0].reg, ops[1].mem)
			}
		default:
			return fmt.Errorf("%s requires byte or word memory operand", mn)
		}
	case "fld", "fst":
		if err := need(2); err != nil {
			return err
		}
		if mn == "fld" {
			if ops[0].kind != opFReg || ops[1].kind != opMem || ops[1].size != 8 {
				return fmt.Errorf("fld expects freg, qword mem")
			}
			b.FLoad(ops[0].freg, ops[1].mem)
		} else {
			if ops[0].kind != opMem || ops[0].size != 8 || ops[1].kind != opFReg {
				return fmt.Errorf("fst expects qword mem, freg")
			}
			b.FStore(ops[0].mem, ops[1].freg)
		}
	case "fadd", "fmov":
		if err := need(2); err != nil {
			return err
		}
		if ops[0].kind != opFReg || ops[1].kind != opFReg {
			return fmt.Errorf("%s expects two f-registers", mn)
		}
		if mn == "fadd" {
			b.FAdd(ops[0].freg, ops[1].freg)
		} else {
			b.FMov(ops[0].freg, ops[1].freg)
		}
	default:
		if strings.HasPrefix(mn, "j") {
			if cond, ok := condByName[mn[1:]]; ok {
				if err := need(1); err != nil {
					return err
				}
				if ops[0].kind != opLabel {
					return fmt.Errorf("%s expects a label", mn)
				}
				b.Jcc(cond, ops[0].label)
				return nil
			}
		}
		if err := parseALU(b, mn, ops); err != nil {
			return err
		}
	}
	return nil
}

func parseALU(b *guest.Builder, mn string, ops []operand) error {
	if len(ops) != 2 {
		return fmt.Errorf("unknown instruction %q", mn)
	}
	if ops[0].kind == opReg && ops[1].kind == opReg {
		op, ok := aluRR[mn]
		if !ok {
			return fmt.Errorf("unknown instruction %q", mn)
		}
		b.ALU(op, ops[0].reg, ops[1].reg)
		return nil
	}
	if ops[0].kind == opReg && ops[1].kind == opImm {
		op, ok := aluRI[mn]
		if !ok {
			return fmt.Errorf("unknown instruction %q", mn)
		}
		b.ALUImm(op, ops[0].reg, ops[1].imm)
		return nil
	}
	return fmt.Errorf("%s: unsupported operand combination", mn)
}

func parseMov(b *guest.Builder, ops []operand) error {
	if len(ops) != 2 {
		return fmt.Errorf("mov expects 2 operands")
	}
	switch {
	case ops[0].kind == opReg && ops[1].kind == opImm:
		b.MovImm(ops[0].reg, ops[1].imm)
	case ops[0].kind == opReg && ops[1].kind == opReg:
		b.Mov(ops[0].reg, ops[1].reg)
	case ops[0].kind == opReg && ops[1].kind == opMem:
		switch ops[1].size {
		case 0, 4:
			b.Load(guest.LD4, ops[0].reg, ops[1].mem)
		default:
			return fmt.Errorf("mov reg, mem requires a dword operand (use movzx/movsx)")
		}
	case ops[0].kind == opMem && ops[1].kind == opReg:
		switch ops[0].size {
		case 0, 4:
			b.Store(guest.ST4, ops[0].mem, ops[1].reg)
		case 2:
			b.Store(guest.ST2, ops[0].mem, ops[1].reg)
		case 1:
			b.Store(guest.ST1, ops[0].mem, ops[1].reg)
		default:
			return fmt.Errorf("bad store size %d", ops[0].size)
		}
	default:
		return fmt.Errorf("mov: unsupported operand combination")
	}
	return nil
}

// DisasmImage renders a loaded image as assembly text, one instruction per
// line with addresses — the inverse convenience for cmd/guestasm and tests.
func DisasmImage(img []byte, base uint32) (string, error) {
	var sb strings.Builder
	pos := 0
	for pos < len(img) {
		inst, n, err := guest.Decode(img[pos:])
		if err != nil {
			return "", fmt.Errorf("guestasm: disasm at +%#x: %w", pos, err)
		}
		fmt.Fprintf(&sb, "%#08x:\t%s\n", base+uint32(pos), guest.Disasm(base+uint32(pos), inst, n))
		pos += n
	}
	return sb.String(), nil
}
