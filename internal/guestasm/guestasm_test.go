package guestasm

import (
	"math/rand"
	"strings"
	"testing"

	"mdabt/internal/guest"
	"mdabt/internal/mem"
)

func run(t *testing.T, src string) *guest.CPU {
	t.Helper()
	img, err := Assemble(src, guest.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	m.WriteBytes(guest.CodeBase, img)
	cpu := &guest.CPU{}
	cpu.Reset(guest.CodeBase)
	for steps := 0; !cpu.Halted; steps++ {
		if steps > 1<<20 {
			t.Fatal("program did not halt")
		}
		if _, err := cpu.Step(m); err != nil {
			t.Fatal(err)
		}
	}
	return cpu
}

func TestAssembleBasicProgram(t *testing.T) {
	cpu := run(t, `
	; compute 10! mod 2^32 in eax
	        mov     eax, 1
	        mov     ecx, 1
	loop:   imul    eax, ecx
	        add     ecx, 1
	        cmp     ecx, 10
	        jle     loop
	        halt
	`)
	if cpu.R[guest.EAX] != 3628800 {
		t.Fatalf("eax = %d, want 3628800", cpu.R[guest.EAX])
	}
}

func TestAssembleMemoryForms(t *testing.T) {
	cpu := run(t, `
	        mov     ebx, 0x10000000
	        mov     eax, 0x11223344
	        mov     dword [ebx], eax
	        mov     word [ebx+4], eax
	        mov     byte [ebx+6], eax
	        mov     ecx, dword [ebx]
	        movzx   edx, word [ebx+4]
	        movsx   esi, byte [ebx+6]
	        mov     edi, 2
	        mov     ebp, dword [ebx+edi*2-4]   ; ebx+0
	        halt
	`)
	if cpu.R[guest.ECX] != 0x11223344 {
		t.Errorf("ecx = %#x", cpu.R[guest.ECX])
	}
	if cpu.R[guest.EDX] != 0x3344 {
		t.Errorf("edx = %#x", cpu.R[guest.EDX])
	}
	if cpu.R[guest.ESI] != 0x44 {
		t.Errorf("esi = %#x", cpu.R[guest.ESI])
	}
	if cpu.R[guest.EBP] != 0x11223344 {
		t.Errorf("ebp = %#x (scaled index)", cpu.R[guest.EBP])
	}
}

func TestAssembleFPAndStack(t *testing.T) {
	cpu := run(t, `
	        mov     ebx, 0x10000000
	        mov     eax, 7
	        mov     dword [ebx], eax
	        mov     dword [ebx+4], eax
	        fld     f0, qword [ebx]
	        fmov    f1, f0
	        fadd    f1, f0
	        fst     qword [ebx+8], f1
	        push    eax
	        pop     ecx
	        halt
	`)
	if cpu.F[1] != 2*cpu.F[0] || cpu.F[0] != 0x0000000700000007 {
		t.Errorf("f0=%#x f1=%#x", cpu.F[0], cpu.F[1])
	}
	if cpu.R[guest.ECX] != 7 {
		t.Errorf("ecx = %d", cpu.R[guest.ECX])
	}
}

func TestAssembleCallRet(t *testing.T) {
	cpu := run(t, `
	        mov     eax, 5
	        call    double
	        call    double
	        halt
	double: add     eax, eax
	        ret
	`)
	if cpu.R[guest.EAX] != 20 {
		t.Fatalf("eax = %d, want 20", cpu.R[guest.EAX])
	}
}

func TestAssembleConditionAliases(t *testing.T) {
	cpu := run(t, `
	        mov     eax, 1
	        cmp     eax, 1
	        jz      ok
	        mov     ebx, 99
	ok:     cmp     eax, 2
	        jnz     ok2
	        mov     ebx, 98
	ok2:    halt
	`)
	if cpu.R[guest.EBX] != 0 {
		t.Fatalf("ebx = %d, want 0 (aliases routed correctly)", cpu.R[guest.EBX])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus eax, 1",
		"mov eax",
		"mov 5, eax",
		"jmp [eax]",
		"jl 5",
		"mov eax, dword [5]",     // no base register
		"mov eax, [ebx+ecx*3]",   // bad scale
		"mov eax, word [ebx]",    // word load must be movzx/movsx
		"fld f0, dword [ebx]",    // fld requires qword
		"9bad: nop",              // invalid label
		"movzx eax, dword [ebx]", // movzx needs sub-dword size
		"push 5",
		"mov eax, [ebx+ecx+edx]", // too many registers
		"mov eax, 0x1ffffffff",   // out of range
		"shl eax, ebx",           // shift needs immediate
	}
	for _, src := range cases {
		if _, err := Assemble(src+"\nhalt\n", guest.CodeBase); err == nil {
			t.Errorf("Assemble(%q): want error", src)
		}
	}
	// Undefined label surfaces from the builder.
	if _, err := Assemble("jmp nowhere\n", guest.CodeBase); err == nil {
		t.Error("undefined label: want error")
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus\n", guest.CodeBase)
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if aerr.Line != 3 {
		t.Fatalf("error line = %d, want 3", aerr.Line)
	}
	if !strings.Contains(aerr.Error(), "line 3") {
		t.Fatalf("error text %q lacks line info", aerr.Error())
	}
}

// TestRoundTripThroughDisassembler assembles random instruction streams,
// disassembles them, reassembles the disassembly, and checks the images
// are identical.
func TestRoundTripThroughDisassembler(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	b := guest.NewBuilder()
	regs := []guest.Reg{guest.EAX, guest.ECX, guest.EDX, guest.EBX, guest.EBP, guest.ESI, guest.EDI}
	for i := 0; i < 300; i++ {
		r := regs[rnd.Intn(len(regs))]
		r2 := regs[rnd.Intn(len(regs))]
		m := guest.MemRef{Base: r2, Disp: int32(rnd.Intn(512) - 128)}
		if rnd.Intn(2) == 0 {
			idx := regs[rnd.Intn(len(regs))]
			m.HasIndex = true
			m.Index = idx
			m.Scale = 1 << rnd.Intn(4)
		}
		switch rnd.Intn(10) {
		case 0:
			b.MovImm(r, int32(rnd.Uint32()))
		case 1:
			b.Mov(r, r2)
		case 2:
			b.Load(guest.LD4, r, m)
		case 3:
			b.Store(guest.ST2, m, r)
		case 4:
			b.Load(guest.LD2S, r, m)
		case 5:
			b.FLoad(guest.FReg(rnd.Intn(4)), m)
		case 6:
			b.ALU(guest.ADDrr, r, r2)
		case 7:
			b.ALUImm(guest.XORri, r, int32(rnd.Uint32()))
		case 8:
			b.Lea(r, m)
		case 9:
			b.Push(r)
		}
	}
	b.Halt()
	img, err := b.Build(guest.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	text, err := DisasmImage(img, guest.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the address column to get pure assembly.
	var src strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if idx := strings.IndexByte(line, '\t'); idx >= 0 {
			src.WriteString(line[idx+1:])
		}
		src.WriteByte('\n')
	}
	img2, err := Assemble(src.String(), guest.CodeBase)
	if err != nil {
		t.Fatalf("reassembling disassembly: %v\n%s", err, src.String())
	}
	if len(img) != len(img2) {
		t.Fatalf("round trip size %d != %d", len(img2), len(img))
	}
	for i := range img {
		if img[i] != img2[i] {
			t.Fatalf("round trip differs at byte %d", i)
		}
	}
}

func TestDisasmImageError(t *testing.T) {
	if _, err := DisasmImage([]byte{0xFF}, 0); err == nil {
		t.Fatal("garbage image: want error")
	}
}

func TestAssembleRepMovsd(t *testing.T) {
	cpu := run(t, `
	        mov     esi, 0x10000000
	        mov     edi, 0x10000100
	        mov     eax, 0x01020304
	        mov     dword [esi], eax
	        mov     dword [esi+4], eax
	        mov     ecx, 2
	        rep movsd
	        halt
	`)
	if cpu.R[guest.ECX] != 0 {
		t.Errorf("ecx = %d, want 0 after rep", cpu.R[guest.ECX])
	}
	if cpu.R[guest.ESI] != 0x10000008 || cpu.R[guest.EDI] != 0x10000108 {
		t.Errorf("esi/edi = %#x/%#x after rep", cpu.R[guest.ESI], cpu.R[guest.EDI])
	}
	if _, err := Assemble("rep movsw\nhalt\n", guest.CodeBase); err == nil {
		t.Error("rep movsw: want error")
	}
}

func TestMultipleLabelsOneLine(t *testing.T) {
	cpu := run(t, `
	a: b: c:  mov eax, 3
	          cmp eax, 3
	          je a2
	          halt
	a2:       mov ebx, 4
	          halt
	`)
	if cpu.R[guest.EBX] != 4 {
		t.Fatalf("ebx = %d", cpu.R[guest.EBX])
	}
}

func TestNumberFormats(t *testing.T) {
	cpu := run(t, `
	        mov eax, 0x10
	        mov ebx, -16
	        mov ecx, +7
	        mov edx, 0xFFFFFFFF     ; full-range unsigned accepted
	        halt
	`)
	if cpu.R[guest.EAX] != 16 || int32(cpu.R[guest.EBX]) != -16 || cpu.R[guest.ECX] != 7 {
		t.Fatalf("regs = %v", cpu.R)
	}
	if cpu.R[guest.EDX] != 0xFFFFFFFF {
		t.Fatalf("edx = %#x", cpu.R[guest.EDX])
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	cpu := run(t, `
	; leading comment

	        mov eax, 1   ; trailing comment
	   ; indented comment
	        halt
	`)
	if cpu.R[guest.EAX] != 1 {
		t.Fatal("comment handling broke execution")
	}
}

func TestLeaAndScaledIndex(t *testing.T) {
	cpu := run(t, `
	        mov ebx, 0x10000000
	        mov esi, 3
	        lea eax, [ebx+esi*8+5]
	        lea ecx, [eax]
	        halt
	`)
	want := uint32(0x10000000 + 3*8 + 5)
	if cpu.R[guest.EAX] != want || cpu.R[guest.ECX] != want {
		t.Fatalf("lea = %#x/%#x, want %#x", cpu.R[guest.EAX], cpu.R[guest.ECX], want)
	}
}
