// Package aot is the ahead-of-time static translation tier (DESIGN.md
// §13): it runs internal/align's whole-binary CFG recovery over a loaded
// guest image offline and packages the result as a serializable Image —
// the block-entry schedule, the indirect-branch target set, and the
// escapes-to-dynamic verdict — that an engine adopts through
// Options.AOTBlocks. Engine.Reset with applied options re-adopts the image
// into the fresh code cache at the next Run, so a serving engine answers
// repeat requests for a known binary with zero dynamic translations.
package aot

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"mdabt/internal/align"
	"mdabt/internal/core"
	"mdabt/internal/guest"
	"mdabt/internal/mem"
)

// ImageVersion is the serialization format version.
const ImageVersion = 1

// ErrCorrupt reports an image that failed validation — truncation, bit
// flip, version skew, or a missing/mismatched content checksum. Callers
// (Engine preseeding, the persistent store, the CLIs) treat it as a
// degrade signal: drop the image and translate cold; never adopt.
var ErrCorrupt = errors.New("aot: image corrupt")

// Image is a serialized whole-binary pre-translation schedule. It carries
// guest-level facts only — block entries, not host code words — because
// host code is deterministic given (guest image, Options): the engine
// re-emits it at adoption, offline, charging no simulated cycles, which
// keeps the image valid across engine configurations and code-cache
// layouts while still making warm starts bit-identical to cold ones.
type Image struct {
	Version int `json:"version"`
	// Checksum is the hex SHA-256 of the image's canonical content (the
	// JSON encoding with Checksum itself blanked). Build and Encode seal
	// it automatically; Decode and Verify reject any image whose bytes do
	// not reproduce it, so a truncated or bit-flipped body can no longer
	// decode "successfully" on the strength of a version int alone.
	Checksum string `json:"checksum,omitempty"`
	Entry    uint32 `json:"entry"`
	// Blocks is the recovered block-entry schedule, ascending.
	Blocks []uint32 `json:"blocks"`
	// RetTargets is the recovered indirect-branch target set (also present
	// in Blocks; kept separately for diagnostics and target-set studies).
	RetTargets []uint32 `json:"ret_targets,omitempty"`
	// Escapes records the recovery's soundness verdict: true means some
	// reachable code escaped static discovery and JIT fallbacks are
	// expected at run time.
	Escapes bool `json:"escapes,omitempty"`
	// Insts counts the instructions classified as code.
	Insts int `json:"insts"`
}

// Build recovers the CFG from entry through dec and packages it.
func Build(dec align.Decoder, entry uint32) *Image {
	cfg := align.RecoverCFG(dec, entry, core.MaxBlockInsts)
	im := &Image{
		Version:    ImageVersion,
		Entry:      entry,
		Blocks:     cfg.BlockPCs(),
		RetTargets: cfg.RetTargets,
		Escapes:    cfg.Escapes,
		Insts:      cfg.Insts,
	}
	im.Seal()
	return im
}

// BuildFromMemory builds an image for the program loaded in m.
func BuildFromMemory(m *mem.Memory, entry uint32) *Image {
	return Build(MemDecoder(m), entry)
}

// MemDecoder wraps guest.Decode over a loaded memory image, for recovering
// a program outside an engine.
func MemDecoder(m *mem.Memory) align.Decoder {
	return func(pc uint32) (guest.Inst, int, error) {
		var buf [16]byte
		for i := range buf {
			buf[i] = m.Read8(uint64(pc) + uint64(i))
		}
		return guest.Decode(buf[:])
	}
}

// Apply configures o to adopt the image: the aot mechanism's pre-seeding
// pass translates im.Blocks instead of re-running CFG recovery in-engine.
func (im *Image) Apply(o *core.Options) {
	o.AOT = true
	o.StaticAlign = true
	o.AOTBlocks = im.Blocks
}

// contentSum computes the hex SHA-256 of the image's canonical content:
// its compact JSON encoding with the Checksum field blanked.
func (im *Image) contentSum() string {
	c := *im
	c.Checksum = ""
	raw, err := json.Marshal(&c)
	if err != nil {
		// Image is a plain data struct; Marshal cannot fail on it. Keep
		// the impossible branch checksum-mismatching rather than panicking.
		return "unmarshalable"
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Seal stamps the content checksum. Build and Encode call it; images
// assembled by hand must be sealed before Verify or Decode accepts them.
func (im *Image) Seal() { im.Checksum = im.contentSum() }

// Verify validates the image: format version, non-empty schedule, and a
// checksum that reproduces from the content. Any failure is ErrCorrupt.
func (im *Image) Verify() error {
	if im.Version != ImageVersion {
		return fmt.Errorf("aot: image version %d, want %d: %w", im.Version, ImageVersion, ErrCorrupt)
	}
	if len(im.Blocks) == 0 {
		return fmt.Errorf("aot: image has no blocks: %w", ErrCorrupt)
	}
	if im.Checksum == "" {
		return fmt.Errorf("aot: image is unsealed (no checksum): %w", ErrCorrupt)
	}
	if got := im.contentSum(); got != im.Checksum {
		return fmt.Errorf("aot: image checksum %s, content is %s: %w", im.Checksum, got, ErrCorrupt)
	}
	return nil
}

// Encode seals the image and writes it as JSON.
func (im *Image) Encode(w io.Writer) error {
	im.Seal()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(im)
}

// Decode reads and validates a serialized image. Truncation, bit flips,
// version skew, and unsealed bodies all surface as ErrCorrupt — the
// caller degrades to cold translation, never adopts a damaged schedule.
func Decode(r io.Reader) (*Image, error) {
	var im Image
	if err := json.NewDecoder(r).Decode(&im); err != nil {
		return nil, fmt.Errorf("aot: decode image: %v: %w", err, ErrCorrupt)
	}
	if err := im.Verify(); err != nil {
		return nil, err
	}
	return &im, nil
}
