package aot

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mdabt/internal/core"
	"mdabt/internal/guest"
	"mdabt/internal/mem"
	"mdabt/internal/workload"
)

func buildTestImage(t *testing.T) *Image {
	t.Helper()
	progs, err := workload.FaultPrograms()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	progs[0].Load(m)
	return BuildFromMemory(m, progs[0].Entry())
}

func TestImageRoundTrip(t *testing.T) {
	im := buildTestImage(t)
	if im.Version != ImageVersion || im.Entry != guest.CodeBase {
		t.Fatalf("image header %+v", im)
	}
	if len(im.Blocks) == 0 || im.Insts == 0 {
		t.Fatalf("empty image %+v", im)
	}
	if im.Escapes {
		t.Error("closed workload program escaped static recovery")
	}

	var buf bytes.Buffer
	if err := im.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != im.Entry || got.Insts != im.Insts || len(got.Blocks) != len(im.Blocks) {
		t.Errorf("round trip changed the image: %+v -> %+v", im, got)
	}
	for i, pc := range im.Blocks {
		if got.Blocks[i] != pc {
			t.Fatalf("block %d: %#x -> %#x", i, pc, got.Blocks[i])
		}
	}
}

func TestDecodeRejectsBadImages(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"version":99,"blocks":[1]}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := Decode(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("empty block schedule accepted")
	}
	if _, err := Decode(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestApplyConfiguresAdoption(t *testing.T) {
	im := buildTestImage(t)
	opt := core.DefaultOptions(core.ExceptionHandling)
	im.Apply(&opt)
	if !opt.AOT || !opt.StaticAlign {
		t.Errorf("Apply left opt %+v", opt)
	}
	if len(opt.AOTBlocks) != len(im.Blocks) {
		t.Errorf("schedule not adopted: %d blocks, want %d", len(opt.AOTBlocks), len(im.Blocks))
	}
	if err := opt.Validate(); err != nil {
		t.Errorf("applied options do not validate: %v", err)
	}
}

// TestDecodeRejectsCorruptImages: a damaged image body must surface as
// ErrCorrupt — truncation, a single flipped bit, version skew, and an
// unsealed (checksum-less) body all decode to a degrade signal, never to
// an adoptable schedule. Before the content checksum only the version int
// guarded the body, so a bit-flipped block list decoded "successfully".
func TestDecodeRejectsCorruptImages(t *testing.T) {
	im := buildTestImage(t)
	var buf bytes.Buffer
	if err := im.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name string
		body []byte
	}{
		{"truncated", good[:len(good)/2]},
		{"bit-flip", flipByte(good, bytes.Index(good, []byte(`"blocks"`))+12)},
		{"version-skew", bytes.Replace(good, []byte(`"version": 1`), []byte(`"version": 2`), 1)},
		{"unsealed", bytes.Replace(good, []byte(`"checksum"`), []byte(`"checksun"`), 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if bytes.Equal(tc.body, good) {
				t.Fatal("corruption did not modify the body")
			}
			_, err := Decode(bytes.NewReader(tc.body))
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode(%s): got %v, want ErrCorrupt", tc.name, err)
			}
		})
	}

	// The untouched body still decodes and verifies.
	got, err := Decode(bytes.NewReader(good))
	if err != nil {
		t.Fatalf("clean body failed: %v", err)
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("Verify after decode: %v", err)
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x01
	return out
}

// TestVerifyCatchesInMemoryTampering: Verify re-derives the checksum from
// content, so mutating a sealed image invalidates it until resealed.
func TestVerifyCatchesInMemoryTampering(t *testing.T) {
	im := buildTestImage(t)
	if err := im.Verify(); err != nil {
		t.Fatalf("fresh image: %v", err)
	}
	im.Blocks[0]++
	if err := im.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered image: got %v, want ErrCorrupt", err)
	}
	im.Seal()
	if err := im.Verify(); err != nil {
		t.Fatalf("resealed image: %v", err)
	}
}
