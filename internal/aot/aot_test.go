package aot

import (
	"bytes"
	"strings"
	"testing"

	"mdabt/internal/core"
	"mdabt/internal/guest"
	"mdabt/internal/mem"
	"mdabt/internal/workload"
)

func buildTestImage(t *testing.T) *Image {
	t.Helper()
	progs, err := workload.FaultPrograms()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	progs[0].Load(m)
	return BuildFromMemory(m, progs[0].Entry())
}

func TestImageRoundTrip(t *testing.T) {
	im := buildTestImage(t)
	if im.Version != ImageVersion || im.Entry != guest.CodeBase {
		t.Fatalf("image header %+v", im)
	}
	if len(im.Blocks) == 0 || im.Insts == 0 {
		t.Fatalf("empty image %+v", im)
	}
	if im.Escapes {
		t.Error("closed workload program escaped static recovery")
	}

	var buf bytes.Buffer
	if err := im.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != im.Entry || got.Insts != im.Insts || len(got.Blocks) != len(im.Blocks) {
		t.Errorf("round trip changed the image: %+v -> %+v", im, got)
	}
	for i, pc := range im.Blocks {
		if got.Blocks[i] != pc {
			t.Fatalf("block %d: %#x -> %#x", i, pc, got.Blocks[i])
		}
	}
}

func TestDecodeRejectsBadImages(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"version":99,"blocks":[1]}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := Decode(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("empty block schedule accepted")
	}
	if _, err := Decode(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestApplyConfiguresAdoption(t *testing.T) {
	im := buildTestImage(t)
	opt := core.DefaultOptions(core.ExceptionHandling)
	im.Apply(&opt)
	if !opt.AOT || !opt.StaticAlign {
		t.Errorf("Apply left opt %+v", opt)
	}
	if len(opt.AOTBlocks) != len(im.Blocks) {
		t.Errorf("schedule not adopted: %d blocks, want %d", len(opt.AOTBlocks), len(im.Blocks))
	}
	if err := opt.Validate(); err != nil {
		t.Errorf("applied options do not validate: %v", err)
	}
}
