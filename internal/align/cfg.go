package align

import (
	"fmt"
	"sort"

	"mdabt/internal/guest"
)

// This file is the whole-binary CFG recovery pass behind the ahead-of-time
// translation tier (internal/aot, DESIGN.md §13). Where Analyze converges
// per-register alignment facts, RecoverCFG answers the structural
// questions an offline translator needs:
//
//   - which guest addresses start a translation unit (the reachable block
//     entry set, mirroring the dynamic translator's own block formation
//     rule: decode until a terminator, split over-long runs);
//   - the static successor edges between those blocks;
//   - the indirect-branch target set: this guest ISA's only indirect
//     transfer is RET, so the target set is the call-return sites of every
//     reachable CALL (the same summary approximation Analyze uses);
//   - whether control can escape to dynamically discovered code the
//     recovery cannot see (Escapes — decode failures or a capped working
//     set), in which case the AOT image is a prefix, not the whole program;
//   - code-vs-data classification: an address is code iff the worklist
//     decoded an instruction at it. Everything else on the same page is
//     data, and the write-watch SMC machinery (DESIGN.md §12) already
//     operates at decode granularity, so pre-translation arms exactly the
//     pages the recovery touched when it runs through the engine's decode
//     cache.

// CFGBlock is one recovered translation unit.
type CFGBlock struct {
	PC    uint32 // entry address
	End   uint32 // address past the last decoded instruction
	Insts int    // instruction count
	// Succs are the statically known successor block entries (sorted,
	// deduplicated): branch targets, fallthroughs, and split continuations.
	// Call-return sites are not successors of the CALL block — control
	// reaches them through the callee's RET (see CFG.RetTargets).
	Succs []uint32
	// Indirect marks a block ending in RET: its dynamic successors are the
	// call-return sites (CFG.RetTargets), resolved at dispatch time.
	Indirect bool
}

// CFG is the recovered whole-binary control-flow graph.
type CFG struct {
	Entry  uint32
	Blocks map[uint32]*CFGBlock
	// RetTargets is the sorted indirect-branch target set: every
	// call-return site of a reachable CALL. Sound for guests that follow
	// the call/return convention; a manufactured return address escapes to
	// dynamic discovery (the AOT tier's JIT fallback).
	RetTargets []uint32
	// Escapes reports that the recovery is incomplete: a decode failure
	// stopped exploration along some path, or the working set overflowed.
	// Reachable code may then be missing from Blocks, and a complete-image
	// claim (zero JIT fallbacks) cannot be made statically.
	Escapes bool
	// Insts counts the distinct instructions decoded (code classification).
	Insts int

	code map[uint32]int // inst start pc -> encoded length
}

// RecoverCFG walks all code statically reachable from entry, forming
// translation units exactly the way the dynamic translator does:
// maxBlockInsts bounds a unit, and an over-long straight-line run is split
// before a trailing flag-setter (never separating it from the conditional
// branch that consumes it). Blocks may overlap — a branch into the middle
// of a decoded run starts its own unit, as it would at dispatch time.
//
// maxBlockInsts ≤ 0 selects the translator's own bound (core.MaxBlockInsts
// re-exports it; the value here is a safe default for standalone use).
func RecoverCFG(dec Decoder, entry uint32, maxBlockInsts int) *CFG {
	if maxBlockInsts <= 0 {
		maxBlockInsts = 64
	}
	c := &CFG{
		Entry:  entry,
		Blocks: make(map[uint32]*CFGBlock),
		code:   make(map[uint32]int),
	}
	type decoded struct {
		inst guest.Inst
		len  int
		ok   bool
	}
	cache := make(map[uint32]decoded)
	fetch := func(pc uint32) (decoded, bool) {
		d, ok := cache[pc]
		if !ok {
			if len(cache) >= maxAnalyzedInsts {
				c.Escapes = true
				return decoded{}, false
			}
			in, n, err := dec(pc)
			d = decoded{inst: in, len: n, ok: err == nil}
			cache[pc] = d
			if d.ok {
				c.code[pc] = n
			}
		}
		return d, d.ok
	}

	retSet := make(map[uint32]bool)
	work := []uint32{entry}
	queued := map[uint32]bool{entry: true}
	push := func(pc uint32) {
		if !queued[pc] {
			queued[pc] = true
			work = append(work, pc)
		}
	}

	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if c.Blocks[pc] != nil {
			continue
		}
		b := &CFGBlock{PC: pc}
		var insts []guest.Inst
		var lens []int
		cur := pc
		failed := false
		for len(insts) < maxBlockInsts {
			d, ok := fetch(cur)
			if !ok {
				// Undecodable (or capped) at cur: the unit cannot translate
				// past this point and dynamic dispatch would fault here if it
				// is ever executed. Record what decoded and mark the escape.
				c.Escapes = true
				failed = true
				break
			}
			insts = append(insts, d.inst)
			lens = append(lens, d.len)
			cur += uint32(d.len)
			if d.inst.Op.EndsBlock() {
				break
			}
		}
		// Mirror decodeBlock's split rule: never strand a flag setter at the
		// end of a full unit.
		if n := len(insts); n == maxBlockInsts && insts[n-1].Op.SetsFlags() {
			cur -= uint32(lens[n-1])
			insts = insts[:n-1]
			lens = lens[:n-1]
		}
		b.End = cur
		b.Insts = len(insts)
		c.Blocks[pc] = b
		if failed || len(insts) == 0 {
			continue
		}

		succ := func(target uint32) {
			b.Succs = append(b.Succs, target)
			push(target)
		}
		last := insts[len(insts)-1]
		next := b.End
		switch last.Op {
		case guest.HALT:
			// No successors.
		case guest.JMP:
			succ(next + uint32(last.Rel))
		case guest.JCC:
			succ(next)
			succ(next + uint32(last.Rel))
		case guest.CALL:
			succ(next + uint32(last.Rel))
			if !retSet[next] {
				retSet[next] = true
				push(next) // reachable through the callee's RET
			}
		case guest.RET:
			b.Indirect = true
		default:
			// Split at maxBlockInsts: fall through into the continuation.
			succ(next)
		}
		sort.Slice(b.Succs, func(i, j int) bool { return b.Succs[i] < b.Succs[j] })
		b.Succs = dedup32(b.Succs)
	}

	c.Insts = len(c.code)
	c.RetTargets = make([]uint32, 0, len(retSet))
	for pc := range retSet {
		c.RetTargets = append(c.RetTargets, pc)
	}
	sort.Slice(c.RetTargets, func(i, j int) bool { return c.RetTargets[i] < c.RetTargets[j] })
	return c
}

func dedup32(s []uint32) []uint32 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// BlockPCs returns the recovered block entries in ascending address order —
// the deterministic pre-translation schedule of the AOT pass.
func (c *CFG) BlockPCs() []uint32 {
	out := make([]uint32, 0, len(c.Blocks))
	for pc := range c.Blocks {
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsCode reports whether pc is the start of a decoded reachable
// instruction. Addresses that are not code classify as data: stores to
// them never invalidate translations, while stores into code bytes hit the
// write-watch SMC machinery armed when the same decoder populated the
// engine's decode cache.
func (c *CFG) IsCode(pc uint32) bool {
	_, ok := c.code[pc]
	return ok
}

// VerifyCoverage is the image-level half of the translation-validation
// lint: every recovered block entry and every indirect-branch target must
// be accounted for by the AOT pass (pre-translated, or explicitly degraded
// to the interpreter/dynamic tier). The per-block half — trap-site,
// proven/guarded, branch-target, and fault-attribution accounting — is
// Verify, which the engine runs over AOT output and JIT output alike.
func (c *CFG) VerifyCoverage(accounted func(pc uint32) bool) []Finding {
	var findings []Finding
	for _, pc := range c.BlockPCs() {
		if !accounted(pc) {
			findings = append(findings, Finding{
				HostPC: uint64(pc),
				Msg:    fmt.Sprintf("recovered guest block %#x not covered by the AOT pass", pc),
			})
		}
	}
	for _, pc := range c.RetTargets {
		if c.Blocks[pc] == nil && !accounted(pc) {
			findings = append(findings, Finding{
				HostPC: uint64(pc),
				Msg:    fmt.Sprintf("indirect-branch target %#x not covered by the AOT pass", pc),
			})
		}
	}
	return findings
}
