// Package align implements a static alignment analysis over guest code and
// a structural verifier over emitted host code.
//
// The analysis runs an abstract interpretation with a per-register
// alignment lattice: for each guest GPR it tracks how many of the low
// address bits are known, as a residue modulo a power of two up to 8 (the
// widest natural alignment any guest access needs). Transfer functions
// model MOV/LEA/ALU/shift effects and the `base + index×scale + disp`
// composition of guest.MemRef; a whole-program fixpoint over the statically
// discovered control-flow graph propagates register facts across blocks
// (and therefore across trace heads — verdicts are keyed by instruction
// address, independent of how the translator groups instructions into
// units). Every non-byte memory site is classified Aligned (provably
// aligned on every execution), Misaligned (provably misaligned on every
// execution), or Unknown.
//
// The classification is advisory for performance, never for correctness:
// a site the translator emits plain on an Aligned verdict still resolves
// through the OS-style fixup if the verdict was wrong, and an MDA sequence
// emitted on a Misaligned verdict is correct for aligned addresses too.
// The soundness cosim test in internal/experiments checks the verdicts
// against the reference interpreter's observed behavior.
package align

import "mdabt/internal/guest"

// Verdict classifies one memory site (or one access stream of a site).
type Verdict uint8

// Site classifications.
const (
	Unknown    Verdict = iota // alignment not statically decidable
	Aligned                   // provably aligned on every execution
	Misaligned                // provably misaligned on every execution
)

// String names the verdict for reports and dumps.
func (v Verdict) String() string {
	switch v {
	case Aligned:
		return "aligned"
	case Misaligned:
		return "misaligned"
	}
	return "unknown"
}

// maxKnown is the number of low bits the lattice tracks: 3 bits covers
// residues mod 8, the widest alignment any guest access requires (FLD8).
const maxKnown = 3

// Fact is one register's abstract value: the register is known to be
// ≡ r (mod 2^k). k = 0 is the no-information top element; k = maxKnown
// pins the full residue mod 8. Every ring operation (add, sub, mul) and
// bitwise operation on values is well-defined modulo 2^k, which is what
// makes the transfer functions exact on the tracked bits.
type Fact struct {
	k uint8 // number of known low bits, 0..maxKnown
	r uint8 // residue mod 2^k (always < 1<<k)
}

// top is the no-information fact.
var top = Fact{}

// factOf returns the exact fact for a concrete value.
func factOf(v uint32) Fact {
	return Fact{k: maxKnown, r: uint8(v & (1<<maxKnown - 1))}
}

// Known reports how many low bits of the value are pinned.
func (f Fact) Known() uint8 { return f.k }

// Residue returns the known residue mod 2^Known().
func (f Fact) Residue() uint8 { return f.r }

// trunc reduces f to at most k known bits.
func (f Fact) trunc(k uint8) Fact {
	if f.k <= k {
		return f
	}
	return Fact{k: k, r: f.r & (1<<k - 1)}
}

// join is the lattice join (control-flow merge): keep the longest low-bit
// prefix on which both facts agree.
func (f Fact) join(g Fact) Fact {
	k := f.k
	if g.k < k {
		k = g.k
	}
	for k > 0 && f.r&(1<<k-1) != g.r&(1<<k-1) {
		k--
	}
	return Fact{k: k, r: f.r & (1<<k - 1)}
}

// add composes two facts under addition mod 2^min(k).
func (f Fact) add(g Fact) Fact {
	k := f.k
	if g.k < k {
		k = g.k
	}
	return Fact{k: k, r: (f.r + g.r) & (1<<k - 1)}
}

// addConst shifts a fact by a compile-time constant.
func (f Fact) addConst(c int32) Fact {
	return Fact{k: f.k, r: (f.r + uint8(uint32(c))) & (1<<f.k - 1)}
}

// binop applies a low-bits-determined binary operation (add/sub/mul/and/
// or/xor): the low min(k) bits of the result depend only on the low bits
// of the operands.
func (f Fact) binop(g Fact, op func(a, b uint8) uint8) Fact {
	k := f.k
	if g.k < k {
		k = g.k
	}
	return Fact{k: k, r: op(f.r, g.r) & (1<<k - 1)}
}

// andFact models bitwise AND: a result bit is known wherever both inputs
// are known, or wherever either input has a known zero (masking an unknown
// pointer with ^3 still pins the low bits). The lattice only stores a
// known-low-bits prefix, so knowledge is cut at the first undecidable bit.
func (f Fact) andFact(g Fact) Fact {
	var out Fact
	for i := uint8(0); i < maxKnown; i++ {
		fKnown, gKnown := i < f.k, i < g.k
		fBit, gBit := f.r>>i&1, g.r>>i&1
		switch {
		case fKnown && gKnown:
			out.r |= (fBit & gBit) << i
		case fKnown && fBit == 0, gKnown && gBit == 0:
			// bit forced to zero by the known side
		default:
			return out
		}
		out.k = i + 1
	}
	return out
}

// orFact is the dual: a known one on either side pins the result bit.
func (f Fact) orFact(g Fact) Fact {
	var out Fact
	for i := uint8(0); i < maxKnown; i++ {
		fKnown, gKnown := i < f.k, i < g.k
		fBit, gBit := f.r>>i&1, g.r>>i&1
		switch {
		case fKnown && gKnown:
			out.r |= (fBit | gBit) << i
		case fKnown && fBit == 1, gKnown && gBit == 1:
			out.r |= 1 << i
		default:
			return out
		}
		out.k = i + 1
	}
	return out
}

// shiftLeft models v << s: every known low bit moves up, and s fresh zero
// bits appear below, so knowledge grows (capped at maxKnown).
func (f Fact) shiftLeft(s uint32) Fact {
	if s >= maxKnown {
		return Fact{k: maxKnown, r: 0}
	}
	k := f.k + uint8(s)
	if k > maxKnown {
		k = maxKnown
	}
	return Fact{k: k, r: (f.r << s) & (1<<k - 1)}
}

// State is the abstract register file at one program point.
type State struct {
	regs  [guest.NumRegs]Fact
	valid bool // false = unreachable (bottom)
}

// EntryState is the abstract state at the program entry point: guest.CPU
// Reset zeroes every GPR and sets ESP to StackTop, so every register has a
// concrete (hence exactly known) low-bit residue.
func EntryState() State {
	var s State
	s.valid = true
	for i := range s.regs {
		s.regs[i] = factOf(0)
	}
	s.regs[guest.ESP] = factOf(guest.StackTop)
	return s
}

// Reg returns the fact for a register.
func (s State) Reg(r guest.Reg) Fact { return s.regs[r] }

// joinInto merges o into s, reporting whether s changed. Joining into an
// unreachable state copies o.
func (s *State) joinInto(o State) bool {
	if !o.valid {
		return false
	}
	if !s.valid {
		*s = o
		return true
	}
	changed := false
	for i := range s.regs {
		j := s.regs[i].join(o.regs[i])
		if j != s.regs[i] {
			s.regs[i] = j
			changed = true
		}
	}
	return changed
}

// evalMem composes the abstract effective address of a guest memory
// operand: base + index×scale + disp, all mod 2^k.
func (s State) evalMem(m guest.MemRef) Fact {
	f := s.regs[m.Base]
	if m.HasIndex {
		idx := s.regs[m.Index]
		sh := uint32(0)
		for 1<<sh != uint32(m.Scale) && sh < 4 {
			sh++
		}
		f = f.add(idx.shiftLeft(sh))
	}
	return f.addConst(m.Disp)
}

// classify turns an effective-address fact into a verdict for an access of
// the given size (a power of two ≤ 8). Deciding needs log2(size) known
// low bits.
func classify(ea Fact, size int) Verdict {
	need := uint8(0)
	for 1<<need < size {
		need++
	}
	if need == 0 {
		return Aligned // byte accesses never misalign
	}
	if ea.k < need {
		return Unknown
	}
	if ea.r&(uint8(size)-1) == 0 {
		return Aligned
	}
	return Misaligned
}

// step applies the transfer function of one instruction to s, returning
// the state after it. Control-flow effects (where execution goes next) are
// the analysis driver's concern; step only models the data effects.
func step(s State, in guest.Inst) State {
	switch in.Op {
	case guest.MOVri:
		s.regs[in.R1] = factOf(uint32(in.Imm))
	case guest.MOVrr:
		s.regs[in.R1] = s.regs[in.R2]
	case guest.LEA:
		s.regs[in.R1] = s.evalMem(in.Mem)
	case guest.LD4, guest.LD2Z, guest.LD2S, guest.LD1Z, guest.LD1S:
		s.regs[in.R1] = top // loaded values are not tracked
	case guest.ADDrr:
		s.regs[in.R1] = s.regs[in.R1].add(s.regs[in.R2])
	case guest.SUBrr:
		s.regs[in.R1] = s.regs[in.R1].binop(s.regs[in.R2], func(a, b uint8) uint8 { return a - b })
	case guest.ANDrr:
		s.regs[in.R1] = s.regs[in.R1].andFact(s.regs[in.R2])
	case guest.ORrr:
		s.regs[in.R1] = s.regs[in.R1].orFact(s.regs[in.R2])
	case guest.XORrr:
		if in.R1 == in.R2 {
			s.regs[in.R1] = factOf(0) // xor r, r: the zero idiom
		} else {
			s.regs[in.R1] = s.regs[in.R1].binop(s.regs[in.R2], func(a, b uint8) uint8 { return a ^ b })
		}
	case guest.IMULrr:
		s.regs[in.R1] = s.regs[in.R1].binop(s.regs[in.R2], func(a, b uint8) uint8 { return a * b })
	case guest.ADDri:
		s.regs[in.R1] = s.regs[in.R1].addConst(in.Imm)
	case guest.SUBri:
		s.regs[in.R1] = s.regs[in.R1].addConst(-in.Imm)
	case guest.ANDri:
		s.regs[in.R1] = s.regs[in.R1].andFact(factOf(uint32(in.Imm)))
	case guest.ORri:
		s.regs[in.R1] = s.regs[in.R1].orFact(factOf(uint32(in.Imm)))
	case guest.XORri:
		s.regs[in.R1] = s.regs[in.R1].binop(factOf(uint32(in.Imm)), func(a, b uint8) uint8 { return a ^ b })
	case guest.IMULri:
		s.regs[in.R1] = s.regs[in.R1].binop(factOf(uint32(in.Imm)), func(a, b uint8) uint8 { return a * b })
	case guest.SHLri:
		s.regs[in.R1] = s.regs[in.R1].shiftLeft(uint32(in.Imm) & 31)
	case guest.SHRri, guest.SARri:
		// Right shifts pull unknown higher bits into the low positions.
		if uint32(in.Imm)&31 != 0 {
			s.regs[in.R1] = top
		}
	case guest.PUSH:
		s.regs[guest.ESP] = s.regs[guest.ESP].addConst(-4)
	case guest.POP:
		s.regs[in.R1] = top
		if in.R1 != guest.ESP {
			s.regs[guest.ESP] = s.regs[guest.ESP].addConst(4)
		}
	case guest.CALL:
		// The call-site successor edge (to the target) sees the pushed
		// return address; the analysis driver applies this step before
		// following the edge.
		s.regs[guest.ESP] = s.regs[guest.ESP].addConst(-4)
	case guest.RET:
		s.regs[guest.ESP] = s.regs[guest.ESP].addConst(4)
	case guest.REPMOVS4:
		// One iteration: ESI/EDI advance by 4 (alignment mod 4 invariant),
		// ECX decrements. The self-loop in the CFG joins the iterations;
		// the fallthrough edge pins ECX to zero (driver's concern).
		s.regs[guest.ESI] = s.regs[guest.ESI].addConst(4)
		s.regs[guest.EDI] = s.regs[guest.EDI].addConst(4)
		s.regs[guest.ECX] = s.regs[guest.ECX].addConst(-1)
	case guest.ST4, guest.ST2, guest.ST1, guest.FLD8, guest.FST8,
		guest.CMPrr, guest.CMPri, guest.TESTrr,
		guest.FADDrr, guest.FMOVrr,
		guest.NOP, guest.HALT, guest.JMP, guest.JCC:
		// No GPR effects.
	}
	return s
}
