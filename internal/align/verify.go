package align

import (
	"fmt"

	"mdabt/internal/host"
)

// This file is the static translation verifier: a structural linter over
// one emitted host block. It re-decodes the block's words and checks that
// the code is accounted for under the translator's own metadata:
//
//   - every word decodes;
//   - every alignment-trapping memory instruction (host.Op.Aligns) is
//     either a registered trap site (the misalignment handler can resolve
//     it), proven aligned (an Aligned verdict, or BT-internal data such as
//     adaptive streak counters and IBTC entries at constructed-aligned
//     addresses), or guarded (inside a multi-version/adaptive arm whose
//     alignment check makes the plain instruction unreachable when
//     misaligned) — MDA sequences themselves use only LDQ_U/STQ_U/LDA,
//     which never trap, so they need no entry;
//   - branch targets resolve: in-block targets land inside the block, and
//     out-of-block branches (chained exits, handler patches) pass the
//     caller's CheckBranch policy;
//   - patch sites are well-formed: a host PC the exception handler claims
//     to have patched must now hold an unconditional BR, and a registered
//     trap site that is not patched must still hold a trapping memory
//     instruction;
//   - BRKBT payloads pass the caller's CheckBrk policy (exit table /
//     service payload consistency).
//
// The verifier never trusts the emitted bytes over the metadata or vice
// versa — a disagreement in either direction is a finding.

// HostBlock describes one translated block to the verifier. The maps may
// be nil (treated as empty).
type HostBlock struct {
	Entry uint64   // host address of Words[0]
	Words []uint32 // the block's code as currently in memory

	TrapSites map[uint64]bool // host PCs registered with the trap handler
	Proven    map[uint64]bool // host PCs emitted under a proven-aligned claim
	Guarded   map[uint64]bool // host PCs inside alignment-guarded arms
	Patched   map[uint64]bool // trap-site PCs the handler patched into BRs

	// CheckBranch validates a branch at pc whose target lies outside the
	// block. nil forbids all out-of-block branches.
	CheckBranch func(pc, target uint64) error
	// CheckBrk validates a BRKBT payload. nil accepts any payload.
	CheckBrk func(pc uint64, payload uint32) error

	// Bounds, when non-nil, holds the sorted host start addresses of the
	// guest instructions' emissions (the engine's fault-attribution table).
	// Every data-accessing memory op must then be preceded by a bound at or
	// below its PC, or a memory fault at that op could not be attributed to
	// a precise guest instruction.
	Bounds []uint64
}

// Finding is one verifier complaint.
type Finding struct {
	HostPC uint64
	Msg    string
}

func (f Finding) String() string {
	return fmt.Sprintf("%#x: %s", f.HostPC, f.Msg)
}

// Verify lints one emitted host block, returning every finding.
func Verify(b HostBlock) []Finding {
	var findings []Finding
	bad := func(pc uint64, format string, args ...any) {
		findings = append(findings, Finding{HostPC: pc, Msg: fmt.Sprintf(format, args...)})
	}
	end := b.Entry + uint64(len(b.Words))*host.InstBytes
	seenTrapSite := make(map[uint64]bool)

	for i, w := range b.Words {
		pc := b.Entry + uint64(i)*host.InstBytes
		in, err := host.Decode(w)
		if err != nil {
			bad(pc, "undecodable word %#08x: %v", w, err)
			continue
		}
		if b.TrapSites[pc] {
			seenTrapSite[pc] = true
			if b.Patched[pc] {
				if in.Op != host.BR || in.Ra != host.Zero {
					bad(pc, "patched trap site does not hold an unconditional BR (got %s)", host.DisasmWord(pc, w))
				}
			} else if !in.Op.Aligns() {
				bad(pc, "registered trap site no longer holds a trapping memory op (got %s)", host.DisasmWord(pc, w))
			}
		} else if b.Patched[pc] {
			bad(pc, "patched PC is not a registered trap site")
		}

		switch host.FormatOf(in.Op) {
		case host.FormatMem:
			if in.Op == host.LDA || in.Op == host.LDAH {
				break // address arithmetic, not an access
			}
			if b.Bounds != nil && (len(b.Bounds) == 0 || b.Bounds[0] > pc) {
				bad(pc, "memory op %v precedes every fault-attribution bound", in.Op)
			}
			if !in.Op.Aligns() {
				break // byte accesses and LDQ_U/STQ_U never trap
			}
			if !(b.TrapSites[pc] || b.Proven[pc] || b.Guarded[pc]) {
				bad(pc, "trap-prone %v is neither a registered trap site, proven aligned, nor guarded", in.Op)
			}
		case host.FormatPAL:
			if b.CheckBrk != nil {
				if err := b.CheckBrk(pc, in.Payload); err != nil {
					bad(pc, "BRKBT payload %d: %v", in.Payload, err)
				}
			}
		case host.FormatBra:
			target := in.BranchTarget(pc)
			if target >= b.Entry && target < end {
				break // in-block label: instruction-aligned by encoding
			}
			if b.CheckBranch == nil {
				bad(pc, "branch leaves the block (target %#x) with no link/patch record", target)
			} else if err := b.CheckBranch(pc, target); err != nil {
				bad(pc, "out-of-block branch to %#x: %v", target, err)
			}
		}
	}

	// Every registered trap site must actually lie inside the block.
	for pc := range b.TrapSites {
		if !seenTrapSite[pc] {
			bad(pc, "registered trap site lies outside the block [%#x,%#x)", b.Entry, end)
		}
	}
	return findings
}
