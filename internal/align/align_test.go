package align

import (
	"fmt"
	"testing"

	"mdabt/internal/guest"
)

// decoderFor wraps a built image as a Decoder rooted at base.
func decoderFor(t *testing.T, base uint32, img []byte) Decoder {
	t.Helper()
	return func(pc uint32) (guest.Inst, int, error) {
		off := pc - base
		return guest.Decode(img[off:])
	}
}

func analyze(t *testing.T, build func(b *guest.Builder)) *Analysis {
	t.Helper()
	b := guest.NewBuilder()
	build(b)
	img, err := b.Build(guest.CodeBase)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return Analyze(decoderFor(t, guest.CodeBase, img), guest.CodeBase)
}

func TestFactJoin(t *testing.T) {
	cases := []struct {
		a, b, want Fact
	}{
		{factOf(0), factOf(0), factOf(0)},
		{factOf(4), factOf(4), factOf(4)},
		{factOf(0), factOf(4), Fact{k: 2, r: 0}}, // agree mod 4
		{factOf(1), factOf(3), Fact{k: 1, r: 1}}, // agree mod 2
		{factOf(0), factOf(1), Fact{}},           // nothing in common
		{Fact{k: 2, r: 2}, factOf(6), Fact{k: 2, r: 2}},
		{top, factOf(0), top},
	}
	for _, c := range cases {
		if got := c.a.join(c.b); got != c.want {
			t.Errorf("join(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFactArith(t *testing.T) {
	if got := factOf(6).add(factOf(6)); got != factOf(12&7) {
		t.Errorf("6+6 mod 8 = %v", got)
	}
	if got := factOf(3).shiftLeft(2); got != factOf(12&7) {
		t.Errorf("3<<2 = %v", got)
	}
	if got := (Fact{k: 1, r: 1}).shiftLeft(2); got != (Fact{k: 3, r: 4}) {
		t.Errorf("odd<<2 = %v, want 4 mod 8", got)
	}
	if got := factOf(5).shiftLeft(3); got != factOf(0) {
		t.Errorf("x<<3 = %v, want 0 mod 8", got)
	}
	// Right shifts forget everything.
	if got := (Fact{k: 3, r: 4}).binop(top, func(a, b uint8) uint8 { return a }); got.k != 0 {
		t.Errorf("binop with top kept %d bits", got.k)
	}
}

func TestProvablyAlignedAndMisaligned(t *testing.T) {
	a := analyze(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.Load(guest.LD4, guest.EAX, guest.MemRef{Base: guest.EBX, Disp: 8})  // aligned
		b.Load(guest.LD4, guest.ECX, guest.MemRef{Base: guest.EBX, Disp: 2})  // misaligned
		b.Load(guest.LD2Z, guest.EDX, guest.MemRef{Base: guest.EBX, Disp: 6}) // 2-aligned
		b.Load(guest.LD4, guest.ESI, guest.MemRef{Base: guest.EAX})           // loaded base: unknown
		b.Halt()
	})
	wants := []Verdict{Aligned, Misaligned, Aligned, Unknown}
	sites := sortedSites(a)
	if len(sites) != len(wants) {
		t.Fatalf("found %d sites, want %d", len(sites), len(wants))
	}
	for i, want := range wants {
		if sites[i].Verdict != want {
			t.Errorf("site %d at %#x: verdict %v, want %v", i, sites[i].PC, sites[i].Verdict, want)
		}
	}
}

func TestIndexScaleComposition(t *testing.T) {
	a := analyze(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ESI, 3) // odd index
		// ebx + esi*4 + 4: residue 4*3+4 = 16 ≡ 0 mod 4 but unknown-free:
		// fully known mod 8 → 0: aligned for a 4-byte access.
		b.Load(guest.LD4, guest.EAX, guest.MemRef{Base: guest.EBX, Index: guest.ESI, HasIndex: true, Scale: 4, Disp: 4})
		// ebx + esi*2 + 0: 6 mod 8 → misaligned for 4-byte.
		b.Load(guest.LD4, guest.ECX, guest.MemRef{Base: guest.EBX, Index: guest.ESI, HasIndex: true, Scale: 2})
		b.Halt()
	})
	var got []Verdict
	for _, s := range sortedSites(a) {
		got = append(got, s.Verdict)
	}
	want := []Verdict{Aligned, Misaligned}
	if len(got) != len(want) {
		t.Fatalf("got %d sites, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("site %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func sortedSites(a *Analysis) []Site {
	sites := append([]Site(nil), a.Sites()...)
	for i := 1; i < len(sites); i++ {
		for j := i; j > 0 && (sites[j].PC < sites[j-1].PC ||
			(sites[j].PC == sites[j-1].PC && sites[j].Sub < sites[j-1].Sub)); j-- {
			sites[j], sites[j-1] = sites[j-1], sites[j]
		}
	}
	return sites
}

func TestCrossBlockPropagation(t *testing.T) {
	// The base register is established in the entry block; the loop block
	// only sees it through the CFG join. Aligned disp stays provable.
	a := analyze(t, func(b *guest.Builder) {
		b.MovImm(guest.EBP, guest.DataBase)
		b.MovImm(guest.ECX, 8)
		b.Label("loop")
		b.Load(guest.LD4, guest.EAX, guest.MemRef{Base: guest.EBP, Disp: 16})
		b.ALUImm(guest.ADDri, guest.EBP, 8) // preserves alignment mod 8
		b.ALUImm(guest.SUBri, guest.ECX, 1)
		b.CmpImm(guest.ECX, 0)
		b.Jcc(guest.NE, "loop")
		b.Halt()
	})
	sites := sortedSites(a)
	if len(sites) != 1 {
		t.Fatalf("got %d sites, want 1", len(sites))
	}
	if sites[0].Verdict != Aligned {
		t.Errorf("loop site: %v, want aligned (cross-block EBP fact)", sites[0].Verdict)
	}
}

func TestJoinDegradesConflictingResidues(t *testing.T) {
	// Two paths leave EBX ≡ 0 and ≡ 2 (mod 8): a 4-byte access is not
	// decidable, a 2-byte access is provably aligned (both ≡ 0 mod 2).
	a := analyze(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.EAX, 1)
		b.CmpImm(guest.EAX, 0)
		b.Jcc(guest.E, "other")
		b.ALUImm(guest.ADDri, guest.EBX, 2)
		b.Label("other")
		b.Load(guest.LD4, guest.ECX, guest.MemRef{Base: guest.EBX}) // 0 or 2 mod 8
		b.Load(guest.LD2Z, guest.EDX, guest.MemRef{Base: guest.EBX})
		b.Halt()
	})
	sites := sortedSites(a)
	if len(sites) != 2 {
		t.Fatalf("got %d sites, want 2", len(sites))
	}
	if sites[0].Verdict != Unknown {
		t.Errorf("4-byte site after join: %v, want unknown", sites[0].Verdict)
	}
	if sites[1].Verdict != Aligned {
		t.Errorf("2-byte site after join: %v, want aligned", sites[1].Verdict)
	}
}

func TestStackTracking(t *testing.T) {
	// PUSH/POP and CALL/RET keep ESP 4-aligned; stack sites classify
	// aligned even across the all-RETs→all-return-sites approximation.
	a := analyze(t, func(b *guest.Builder) {
		b.MovImm(guest.EAX, 7)
		b.Push(guest.EAX)
		b.Call("fn")
		b.Pop(guest.EAX)
		b.Halt()
		b.Label("fn")
		b.Push(guest.EBX)
		b.Pop(guest.EBX)
		b.Ret()
	})
	for _, s := range a.Sites() {
		if s.Verdict != Aligned {
			t.Errorf("stack site at %#x sub %d: %v, want aligned", s.PC, s.Sub, s.Verdict)
		}
	}
	// push eax, call, pop eax, push ebx, pop ebx, ret.
	if len(a.Sites()) != 6 {
		t.Errorf("got %d stack sites, want 6", len(a.Sites()))
	}
}

func TestRepMovsStreams(t *testing.T) {
	a := analyze(t, func(b *guest.Builder) {
		b.MovImm(guest.ESI, guest.DataBase)     // aligned source
		b.MovImm(guest.EDI, guest.DataBase+129) // misaligned destination
		b.MovImm(guest.ECX, 16)
		b.Emit(guest.Inst{Op: guest.REPMOVS4})
		// After the copy ECX is exactly zero and ESI stays 4-aligned.
		b.Load(guest.LD4, guest.EAX, guest.MemRef{Base: guest.ECX, Disp: guest.DataBase})
		b.Halt()
	})
	sites := sortedSites(a)
	if len(sites) != 3 {
		t.Fatalf("got %d sites, want 3", len(sites))
	}
	if sites[0].Verdict != Aligned || sites[0].Sub != 0 {
		t.Errorf("rep load stream: %+v, want aligned sub 0", sites[0])
	}
	if sites[1].Verdict != Misaligned || sites[1].Sub != 1 {
		t.Errorf("rep store stream: %+v, want misaligned sub 1", sites[1])
	}
	if sites[2].Verdict != Aligned {
		t.Errorf("post-copy ECX-based load: %v, want aligned (ECX pinned to 0)", sites[2].Verdict)
	}
}

func TestLoadClobbersFacts(t *testing.T) {
	a := analyze(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.Load(guest.LD4, guest.EBX, guest.MemRef{Base: guest.EBX}) // ebx now unknown
		b.Load(guest.LD4, guest.EAX, guest.MemRef{Base: guest.EBX})
		b.Halt()
	})
	sites := sortedSites(a)
	if len(sites) != 2 {
		t.Fatalf("got %d sites, want 2", len(sites))
	}
	if sites[0].Verdict != Aligned {
		t.Errorf("first load: %v, want aligned", sites[0].Verdict)
	}
	if sites[1].Verdict != Unknown {
		t.Errorf("load through loaded pointer: %v, want unknown", sites[1].Verdict)
	}
}

func TestShiftAndMaskIdioms(t *testing.T) {
	a := analyze(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.MovImm(guest.ESI, 0) // becomes unknown below
		b.Load(guest.LD4, guest.ESI, guest.MemRef{Base: guest.EBX})
		// esi is unknown, but esi<<3 is 0 mod 8.
		b.ALUImm(guest.SHLri, guest.ESI, 3)
		b.ALU(guest.ADDrr, guest.ESI, guest.EBX)
		b.Load(guest.LD4, guest.EAX, guest.MemRef{Base: guest.ESI})
		b.Halt()
	})
	sites := sortedSites(a)
	if len(sites) != 2 {
		t.Fatalf("got %d sites, want 2", len(sites))
	}
	if sites[1].Verdict != Aligned {
		t.Errorf("shifted-index site: %v, want aligned", sites[1].Verdict)
	}

	a = analyze(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.Load(guest.LD4, guest.ESI, guest.MemRef{Base: guest.EBX})
		b.ALUImm(guest.ANDri, guest.ESI, ^int32(3)) // 4-align an unknown value
		b.ALU(guest.ADDrr, guest.ESI, guest.EBX)
		b.Load(guest.LD4, guest.EAX, guest.MemRef{Base: guest.ESI})
		b.Halt()
	})
	sites = sortedSites(a)
	if sites[len(sites)-1].Verdict != Aligned {
		t.Errorf("masked-pointer site: %v, want aligned", sites[len(sites)-1].Verdict)
	}
}

func TestXorZeroIdiom(t *testing.T) {
	a := analyze(t, func(b *guest.Builder) {
		b.MovImm(guest.EBX, guest.DataBase)
		b.Load(guest.LD4, guest.ESI, guest.MemRef{Base: guest.EBX})
		b.ALU(guest.XORrr, guest.ESI, guest.ESI) // esi = 0 exactly
		b.Load(guest.LD4, guest.EAX, guest.MemRef{Base: guest.EBX, Index: guest.ESI, HasIndex: true, Scale: 1, Disp: 4})
		b.Halt()
	})
	sites := sortedSites(a)
	if sites[len(sites)-1].Verdict != Aligned {
		t.Errorf("xor-zeroed index site: %v, want aligned", sites[len(sites)-1].Verdict)
	}
}

func TestDecodeFailureStopsPathOnly(t *testing.T) {
	b := guest.NewBuilder()
	b.MovImm(guest.EBX, guest.DataBase)
	b.Load(guest.LD4, guest.EAX, guest.MemRef{Base: guest.EBX})
	b.Halt()
	img, err := b.Build(guest.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	// Fail decoding past the first instruction: exploration stops on that
	// path, but the analysis still returns.
	firstLen, err := guest.EncodedLen(guest.Inst{Op: guest.MOVri, R1: guest.EBX, Imm: guest.DataBase})
	if err != nil {
		t.Fatal(err)
	}
	dec := func(pc uint32) (guest.Inst, int, error) {
		off := int(pc - guest.CodeBase)
		if off >= firstLen {
			return guest.Inst{}, 0, fmt.Errorf("no code at %#x", pc)
		}
		return guest.Decode(img[off:])
	}
	a := Analyze(dec, guest.CodeBase)
	if a == nil {
		t.Fatal("analysis failed entirely on a decode error")
	}
	if a.Insts() == 0 {
		t.Error("analysis visited no instructions")
	}
}

func TestInstVerdictFoldsStreams(t *testing.T) {
	a := analyze(t, func(b *guest.Builder) {
		b.MovImm(guest.ESI, guest.DataBase)
		b.MovImm(guest.EDI, guest.DataBase+2)
		b.MovImm(guest.ECX, 4)
		b.Emit(guest.Inst{Op: guest.REPMOVS4})
		b.Halt()
	})
	var repPC uint32
	for _, s := range a.Sites() {
		if s.Sub == 1 {
			repPC = s.PC
		}
	}
	if v := a.InstVerdict(repPC, guest.REPMOVS4); v != Unknown {
		t.Errorf("mixed-stream instruction verdict %v, want unknown", v)
	}
	if v := a.Verdict(repPC, 0); v != Aligned {
		t.Errorf("load stream %v, want aligned", v)
	}
	if v := a.Verdict(repPC, 1); v != Misaligned {
		t.Errorf("store stream %v, want misaligned", v)
	}
}
