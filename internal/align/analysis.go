package align

import "mdabt/internal/guest"

// Decoder resolves one guest instruction: its decoded form and encoded
// length. The engine supplies its PC-indexed decode cache; standalone
// users wrap guest.Decode over a memory image.
type Decoder func(pc uint32) (guest.Inst, int, error)

// maxAnalyzedInsts bounds the fixpoint working set; past it the analysis
// gives up (every verdict Unknown) rather than stall translation. The
// bound is far above any workload in the suite.
const maxAnalyzedInsts = 1 << 17

// Site is one classified access stream of a memory instruction. Most
// instructions have a single stream (Sub 0); REPMOVS4 has a load stream
// (Sub 0, through ESI) and a store stream (Sub 1, through EDI).
type Site struct {
	PC      uint32
	Sub     int
	Size    int
	IsStore bool
	Verdict Verdict
}

// Analysis holds the converged whole-program alignment facts.
type Analysis struct {
	verdicts map[uint64]Verdict // key: pc<<1 | sub
	entry    map[uint32]State   // converged state at each instruction
	sites    []Site
	insts    int
	capped   bool // gave up at maxAnalyzedInsts
}

// Analyze runs the alignment analysis over all code statically reachable
// from entry. The CFG is complete for this guest ISA up to one
// approximation: RET targets are unknowable statically, so every RET's
// out-state flows to every call-return site (the instruction after any
// CALL). Code reached only through a non-conventional RET (a jump to a
// manufactured address) is simply absent from the analysis and classifies
// as Unknown, which the translator treats as "use the base mechanism".
//
// Decode failures stop exploration along that path only; they never fail
// the analysis.
func Analyze(dec Decoder, entry uint32) *Analysis {
	a := &Analysis{
		verdicts: make(map[uint64]Verdict),
		entry:    make(map[uint32]State),
	}
	type decoded struct {
		inst guest.Inst
		len  int
		ok   bool
	}
	code := make(map[uint32]decoded)
	fetch := func(pc uint32) (decoded, bool) {
		d, ok := code[pc]
		if !ok {
			if len(code) >= maxAnalyzedInsts {
				a.capped = true
				return decoded{}, false
			}
			in, n, err := dec(pc)
			d = decoded{inst: in, len: n, ok: err == nil}
			code[pc] = d
		}
		return d, d.ok
	}

	// retOut joins the out-state of every RET; retSites lists every
	// call-return address. A change to either re-feeds the other side.
	var retOut State
	retSites := make(map[uint32]bool)

	work := []uint32{entry}
	queued := map[uint32]bool{entry: true}
	push := func(pc uint32) {
		if !queued[pc] {
			queued[pc] = true
			work = append(work, pc)
		}
	}
	// flow joins st into pc's entry state, queueing pc on change.
	flow := func(pc uint32, st State) {
		cur := a.entry[pc]
		if cur.joinInto(st) {
			a.entry[pc] = cur
			push(pc)
		}
	}
	flow(entry, EntryState())

	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		queued[pc] = false
		st := a.entry[pc]
		if !st.valid {
			continue
		}
		d, ok := fetch(pc)
		if !ok {
			continue
		}
		in, next := d.inst, pc+uint32(d.len)
		switch in.Op {
		case guest.HALT:
			// No successors.
		case guest.JMP:
			flow(next+uint32(in.Rel), step(st, in))
		case guest.JCC:
			out := step(st, in)
			flow(next, out)
			flow(next+uint32(in.Rel), out)
		case guest.CALL:
			flow(next+uint32(in.Rel), step(st, in))
			if !retSites[next] {
				retSites[next] = true
				flow(next, retOut)
			}
		case guest.RET:
			out := step(st, in)
			if retOut.joinInto(out) {
				for site := range retSites {
					flow(site, retOut)
				}
			}
		case guest.REPMOVS4:
			// Self-loop: one iteration feeds back into the instruction.
			// Fallthrough: taken when ECX reaches zero; ESI/EDI carry the
			// joined-over-iterations entry facts and ECX is exactly zero.
			flow(pc, step(st, in))
			out := st
			out.regs[guest.ECX] = factOf(0)
			flow(next, out)
		default:
			flow(next, step(st, in))
		}
	}

	a.insts = len(code)
	if a.capped {
		// The working set overflowed: partial facts may be optimistic about
		// unexplored predecessors, so publish nothing.
		a.verdicts = make(map[uint64]Verdict)
		a.sites = nil
		return a
	}

	// Classification pass over the converged states.
	for pc, d := range code {
		if !d.ok {
			continue
		}
		st := a.entry[pc]
		if !st.valid {
			continue
		}
		for _, s := range instSites(st, d.inst) {
			s.PC = pc
			a.verdicts[siteKey(pc, s.Sub)] = s.Verdict
			a.sites = append(a.sites, s)
		}
	}
	return a
}

func siteKey(pc uint32, sub int) uint64 {
	return uint64(pc)<<1 | uint64(sub)
}

// instSites classifies every non-byte access stream of one instruction
// under the entry state st.
func instSites(st State, in guest.Inst) []Site {
	switch in.Op {
	case guest.LD4, guest.LD2Z, guest.LD2S, guest.ST4, guest.ST2, guest.FLD8, guest.FST8:
		size := in.Op.MemSize()
		ea := st.evalMem(in.Mem)
		return []Site{{Sub: 0, Size: size, IsStore: in.Op.IsStore(), Verdict: classify(ea, size)}}
	case guest.PUSH, guest.CALL:
		ea := st.Reg(guest.ESP).addConst(-4)
		return []Site{{Sub: 0, Size: 4, IsStore: true, Verdict: classify(ea, 4)}}
	case guest.POP, guest.RET:
		ea := st.Reg(guest.ESP)
		return []Site{{Sub: 0, Size: 4, Verdict: classify(ea, 4)}}
	case guest.REPMOVS4:
		// The entry state is the join over every iteration (self-loop), so
		// one classification covers the whole copy.
		return []Site{
			{Sub: 0, Size: 4, Verdict: classify(st.Reg(guest.ESI), 4)},
			{Sub: 1, Size: 4, IsStore: true, Verdict: classify(st.Reg(guest.EDI), 4)},
		}
	}
	return nil
}

// Verdict returns the classification of one access stream, Unknown for
// instructions outside the analysis.
func (a *Analysis) Verdict(pc uint32, sub int) Verdict {
	if a == nil {
		return Unknown
	}
	return a.verdicts[siteKey(pc, sub)]
}

// InstVerdict folds an instruction's streams into one verdict: decisive
// only when every stream agrees. Policy-level decisions (which emission
// shape a site gets) use this; per-stream refinement uses Verdict.
func (a *Analysis) InstVerdict(pc uint32, op guest.Op) Verdict {
	v := a.Verdict(pc, 0)
	if op == guest.REPMOVS4 && a.Verdict(pc, 1) != v {
		return Unknown
	}
	return v
}

// Insts reports how many instructions the analysis visited (translation
// cost accounting).
func (a *Analysis) Insts() int { return a.insts }

// Capped reports whether the analysis hit its working-set bound and
// published no verdicts.
func (a *Analysis) Capped() bool { return a.capped }

// Sites returns every classified access stream, in unspecified order.
// Callers must not mutate the slice.
func (a *Analysis) Sites() []Site { return a.sites }

// StateAt returns the converged abstract register state at an instruction
// (valid=false for unanalyzed addresses). Exposed for tests and tooling.
func (a *Analysis) StateAt(pc uint32) State { return a.entry[pc] }
