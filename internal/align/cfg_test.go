package align

import (
	"fmt"
	"testing"

	"mdabt/internal/guest"
	"mdabt/internal/mem"
	"mdabt/internal/workload"
)

// buildCFG builds a program and recovers its CFG with the translator's
// default unit bound, returning the builder for label lookups.
func buildCFG(t *testing.T, maxBlockInsts int, build func(b *guest.Builder)) (*guest.Builder, *CFG) {
	t.Helper()
	b := guest.NewBuilder()
	build(b)
	img, err := b.Build(guest.CodeBase)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return b, RecoverCFG(decoderFor(t, guest.CodeBase, img), guest.CodeBase, maxBlockInsts)
}

func labelPC(t *testing.T, b *guest.Builder, name string) uint32 {
	t.Helper()
	off, ok := b.LabelAddr(name)
	if !ok {
		t.Fatalf("no label %q", name)
	}
	return guest.CodeBase + off
}

func TestRecoverCFGStructure(t *testing.T) {
	b, cfg := buildCFG(t, 0, func(b *guest.Builder) {
		b.MovImm(guest.EAX, 1)
		b.CmpImm(guest.EAX, 0)
		b.Jcc(guest.E, "skip")
		b.Label("call")
		b.Call("leaf")
		b.Label("skip")
		b.Halt()
		b.Label("leaf")
		b.Ret()
	})
	callPC := labelPC(t, b, "call")
	skipPC := labelPC(t, b, "skip")
	leafPC := labelPC(t, b, "leaf")

	if cfg.Escapes {
		t.Error("Escapes = true on a fully decodable program")
	}
	if len(cfg.Blocks) != 4 {
		t.Fatalf("recovered %d blocks, want 4 (entry, call, skip, leaf)", len(cfg.Blocks))
	}
	entry := cfg.Blocks[guest.CodeBase]
	if entry == nil || entry.Insts != 3 {
		t.Fatalf("entry block %+v, want 3 insts ending at the JCC", entry)
	}
	if got, want := fmt.Sprint(entry.Succs), fmt.Sprint([]uint32{callPC, skipPC}); got != want {
		t.Errorf("entry succs %s, want %s", got, want)
	}
	call := cfg.Blocks[callPC]
	if call == nil || len(call.Succs) != 1 || call.Succs[0] != leafPC {
		t.Errorf("call block %+v, want single successor %#x (the callee); the return site is not a static edge", call, leafPC)
	}
	if skip := cfg.Blocks[skipPC]; skip == nil || len(skip.Succs) != 0 || skip.Indirect {
		t.Errorf("HALT block %+v, want no successors", skip)
	}
	leaf := cfg.Blocks[leafPC]
	if leaf == nil || !leaf.Indirect || len(leaf.Succs) != 0 {
		t.Errorf("RET block %+v, want Indirect with no static successors", leaf)
	}
	if got, want := fmt.Sprint(cfg.RetTargets), fmt.Sprint([]uint32{skipPC}); got != want {
		t.Errorf("RetTargets %s, want %s (the call-return site)", got, want)
	}

	// Code-vs-data classification: instruction starts are code, the middle
	// of an encoding and the data segment are not.
	if !cfg.IsCode(guest.CodeBase) || !cfg.IsCode(leafPC) {
		t.Error("instruction starts not classified as code")
	}
	if cfg.IsCode(guest.CodeBase+1) || cfg.IsCode(guest.DataBase) {
		t.Error("non-instruction addresses classified as code")
	}

	// Coverage lint: accounting for every recovered block (the ret target
	// is itself a block) leaves nothing to report; accounting for nothing
	// reports every block.
	covered := func(pc uint32) bool { return cfg.Blocks[pc] != nil }
	if fs := cfg.VerifyCoverage(covered); len(fs) != 0 {
		t.Errorf("full coverage still reported findings: %v", fs)
	}
	if fs := cfg.VerifyCoverage(func(uint32) bool { return false }); len(fs) != len(cfg.Blocks) {
		t.Errorf("empty coverage reported %d findings, want %d", len(fs), len(cfg.Blocks))
	}
}

func TestRecoverCFGSplitRules(t *testing.T) {
	// A straight-line run longer than the unit bound splits with a
	// fallthrough edge into the continuation.
	b, cfg := buildCFG(t, 4, func(b *guest.Builder) {
		b.Nop()
		b.Nop()
		b.Nop()
		b.Nop()
		b.Label("cont")
		b.Nop()
		b.Halt()
	})
	contPC := labelPC(t, b, "cont")
	entry := cfg.Blocks[guest.CodeBase]
	if entry == nil || entry.Insts != 4 || len(entry.Succs) != 1 || entry.Succs[0] != contPC {
		t.Errorf("split block %+v, want 4 insts falling through to %#x", entry, contPC)
	}
	if cont := cfg.Blocks[contPC]; cont == nil || cont.Insts != 2 {
		t.Errorf("continuation block %+v, want 2 insts", cont)
	}

	// A flag setter at the end of a full unit is pushed into the next unit
	// so it stays with the JCC that consumes it — the translator's rule.
	b, cfg = buildCFG(t, 4, func(b *guest.Builder) {
		b.Nop()
		b.Nop()
		b.Nop()
		b.Label("cmp")
		b.CmpImm(guest.EAX, 0)
		b.Jcc(guest.E, "out")
		b.Nop()
		b.Label("out")
		b.Halt()
	})
	cmpPC := labelPC(t, b, "cmp")
	entry = cfg.Blocks[guest.CodeBase]
	if entry == nil || entry.Insts != 3 || len(entry.Succs) != 1 || entry.Succs[0] != cmpPC {
		t.Errorf("flag-split block %+v, want 3 insts stopping before the CMP at %#x", entry, cmpPC)
	}
	cmpBlk := cfg.Blocks[cmpPC]
	if cmpBlk == nil || cmpBlk.Insts != 2 || len(cmpBlk.Succs) != 2 {
		t.Errorf("CMP+JCC block %+v, want the pair together with both edges", cmpBlk)
	}
}

func TestRecoverCFGDecodeFailureEscapes(t *testing.T) {
	b := guest.NewBuilder()
	b.MovImm(guest.EBX, guest.DataBase)
	b.Halt()
	img, err := b.Build(guest.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	firstLen, err := guest.EncodedLen(guest.Inst{Op: guest.MOVri, R1: guest.EBX, Imm: guest.DataBase})
	if err != nil {
		t.Fatal(err)
	}
	dec := func(pc uint32) (guest.Inst, int, error) {
		off := int(pc - guest.CodeBase)
		if off >= firstLen {
			return guest.Inst{}, 0, fmt.Errorf("no code at %#x", pc)
		}
		return guest.Decode(img[off:])
	}
	cfg := RecoverCFG(dec, guest.CodeBase, 0)
	if !cfg.Escapes {
		t.Error("Escapes = false after a decode failure; a complete-image claim would be unsound")
	}
	entry := cfg.Blocks[guest.CodeBase]
	if entry == nil || entry.Insts != 1 || len(entry.Succs) != 0 {
		t.Errorf("partial block %+v, want the single decoded instruction and no successors", entry)
	}
}

// TestRecoverCFGFaultPrograms runs CFG recovery over the four guest-fault
// workload programs (the ones with page-protection plans and
// self-modifying code) and checks the structural soundness the AOT tier
// depends on: recovery is complete (no escapes), every static edge and
// indirect-branch target lands on a recovered block, and full accounting
// passes the coverage lint.
func TestRecoverCFGFaultPrograms(t *testing.T) {
	progs, err := workload.FaultPrograms()
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 4 {
		t.Fatalf("got %d fault programs, want 4", len(progs))
	}
	for _, p := range progs {
		t.Run(p.Name, func(t *testing.T) {
			m := mem.New()
			p.Load(m)
			dec := func(pc uint32) (guest.Inst, int, error) {
				var buf [16]byte
				for i := range buf {
					buf[i] = m.Read8(uint64(pc) + uint64(i))
				}
				return guest.Decode(buf[:])
			}
			cfg := RecoverCFG(dec, p.Entry(), 0)
			if cfg.Escapes {
				t.Error("recovery escaped to dynamic discovery")
			}
			if cfg.Blocks[p.Entry()] == nil {
				t.Fatalf("entry %#x not recovered", p.Entry())
			}
			if cfg.Insts == 0 {
				t.Error("no instructions classified as code")
			}
			for pc, blk := range cfg.Blocks {
				for _, s := range blk.Succs {
					if cfg.Blocks[s] == nil {
						t.Errorf("block %#x successor %#x not recovered", pc, s)
					}
				}
			}
			for _, rt := range cfg.RetTargets {
				if cfg.Blocks[rt] == nil {
					t.Errorf("indirect-branch target %#x not recovered", rt)
				}
			}
			covered := func(pc uint32) bool { return cfg.Blocks[pc] != nil }
			if fs := cfg.VerifyCoverage(covered); len(fs) != 0 {
				t.Errorf("coverage lint: %v", fs)
			}
		})
	}
}

// TestFactDegenerateMasks pins the AND/OR/SHL transfer functions on their
// degenerate inputs: masks that clear everything, learn nothing, or whose
// shift count wraps to zero.
func TestFactDegenerateMasks(t *testing.T) {
	if got := top.andFact(factOf(0)); got != factOf(0) {
		t.Errorf("unknown & 0 = %v, want exactly 0", got)
	}
	if got := top.andFact(factOf(7)); got != top {
		t.Errorf("unknown & all-ones = %v, want top (mask keeps every unknown bit)", got)
	}
	if got := top.orFact(factOf(7)); got != factOf(7) {
		t.Errorf("unknown | 7 = %v, want exactly 7", got)
	}
	if got := top.orFact(factOf(0)); got != top {
		t.Errorf("unknown | 0 = %v, want top (identity learns nothing)", got)
	}
	// A known-one above an unknown bit cannot be kept: the prefix cuts at
	// the first undecidable bit.
	if got := top.orFact(factOf(4)); got != top {
		t.Errorf("unknown | 4 = %v, want top", got)
	}
	// Mixed partial knowledge: odd value & ^3 clears the known bit 0 and
	// the mask's zero bit 1, then stops at the unknown bit 2.
	if got := (Fact{k: 1, r: 1}).andFact(factOf(4)); got != (Fact{k: 2, r: 0}) {
		t.Errorf("odd & 4 = %v, want 0 mod 4", got)
	}
	if got := (Fact{k: 2, r: 2}).orFact(factOf(1)); got != (Fact{k: 2, r: 3}) {
		t.Errorf("(2 mod 4) | 1 = %v, want 3 mod 4", got)
	}
	// Shifts: by zero is the identity, by >= maxKnown pins everything.
	if got := top.shiftLeft(0); got != top {
		t.Errorf("unknown << 0 = %v, want top", got)
	}
	if got := top.shiftLeft(31); got != factOf(0) {
		t.Errorf("unknown << 31 = %v, want exactly 0 mod 8", got)
	}
}

// TestDegenerateMaskPrograms drives the same degenerate idioms through
// whole programs: an unknown (loaded) pointer masked each way, then used
// as a 4-byte access base.
func TestDegenerateMaskPrograms(t *testing.T) {
	cases := []struct {
		name  string
		apply func(b *guest.Builder)
		want  Verdict
	}{
		{"and-0", func(b *guest.Builder) { b.ALUImm(guest.ANDri, guest.ESI, 0) }, Aligned},
		{"and-all-ones", func(b *guest.Builder) { b.ALUImm(guest.ANDri, guest.ESI, -1) }, Unknown},
		{"and-1", func(b *guest.Builder) { b.ALUImm(guest.ANDri, guest.ESI, 1) }, Unknown},
		{"or-7", func(b *guest.Builder) { b.ALUImm(guest.ORri, guest.ESI, 7) }, Misaligned},
		{"or-0", func(b *guest.Builder) { b.ALUImm(guest.ORri, guest.ESI, 0) }, Unknown},
		{"shl-32-wraps-to-0", func(b *guest.Builder) { b.ALUImm(guest.SHLri, guest.ESI, 32) }, Unknown},
		{"shl-31", func(b *guest.Builder) { b.ALUImm(guest.SHLri, guest.ESI, 31) }, Aligned},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := analyze(t, func(b *guest.Builder) {
				b.MovImm(guest.EBX, guest.DataBase)
				b.Load(guest.LD4, guest.ESI, guest.MemRef{Base: guest.EBX}) // esi unknown
				c.apply(b)
				b.ALU(guest.ADDrr, guest.ESI, guest.EBX)
				b.Load(guest.LD4, guest.EAX, guest.MemRef{Base: guest.ESI})
				b.Halt()
			})
			sites := sortedSites(a)
			if got := sites[len(sites)-1].Verdict; got != c.want {
				t.Errorf("masked-pointer site: %v, want %v", got, c.want)
			}
		})
	}
}

// TestRepMovsAcrossCallSummary puts a REPMOVS4 copy routine behind a CALL
// reached from two sites with different stream alignments. The callee sees
// the join over both call sites (the analysis's call/return summary), and
// the callers see the joined RET summary on the way back — so the verdicts
// must hold exactly the facts that survive both boundary crossings.
func TestRepMovsAcrossCallSummary(t *testing.T) {
	b := guest.NewBuilder()
	// Site 1: source 0 mod 8, destination 1 mod 8.
	b.MovImm(guest.ESI, guest.DataBase)
	b.MovImm(guest.EDI, guest.DataBase+65)
	b.MovImm(guest.ECX, 8)
	b.Call("copy")
	// Site 2: same residues mod 4, different mod 8 — the summary join keeps
	// exactly two bits of each stream pointer.
	b.MovImm(guest.ESI, guest.DataBase+4)
	b.MovImm(guest.EDI, guest.DataBase+129)
	b.MovImm(guest.ECX, 8)
	b.Call("copy")
	// ECX is pinned to zero by the copy's fallthrough edge in both bodies,
	// and the fact must survive the RET summary back to this load.
	b.Label("after")
	b.Load(guest.LD4, guest.EAX, guest.MemRef{Base: guest.ECX, Disp: guest.DataBase})
	b.Halt()
	b.Label("copy")
	b.Emit(guest.Inst{Op: guest.REPMOVS4})
	b.Ret()

	img, err := b.Build(guest.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	copyPC := labelPC(t, b, "copy")
	afterPC := labelPC(t, b, "after")
	a := Analyze(decoderFor(t, guest.CodeBase, img), guest.CodeBase)

	// Load stream: join(0, 4) mod 8 keeps 0 mod 4, invariant under the +4
	// self-loop — provably aligned even with mixed callers.
	if v := a.Verdict(copyPC, 0); v != Aligned {
		t.Errorf("copy load stream: %v, want aligned (0 mod 4 survives the summary join)", v)
	}
	// Store stream: join(1, 1) mod 8 = 1 mod 8, widened to 1 mod 4 by the
	// self-loop — provably misaligned across both callers.
	if v := a.Verdict(copyPC, 1); v != Misaligned {
		t.Errorf("copy store stream: %v, want misaligned (1 mod 4 survives the summary join)", v)
	}
	if v := a.Verdict(afterPC, 0); v != Aligned {
		t.Errorf("post-return ECX-based load: %v, want aligned (ECX pinned to 0 through the RET summary)", v)
	}
}
