// Page protections and guest-visible fault plumbing.
//
// Protections are page-granular and advisory: the raw accessors in mem.go
// (Read/Write/ReadBytes/...) never check them, because the machine
// simulator and the BT use those for host-side state the guest must not be
// able to fence off (code cache, IBTC, streak counters). Guest-visible
// enforcement happens at two layers above:
//
//   - The interpreter (internal/guest) consults CheckRange/CheckFetch
//     before every access and raises a typed Fault, all-or-nothing: a
//     multi-byte access that would cross into a forbidden page completes
//     zero bytes (Fault.Completed reports how many bytes *could* have
//     completed before the faulting page, for the resumable-completion
//     accounting).
//
//   - The machine simulator gates every translated load/store on
//     AccessTrap, a dense per-page trap-bit table, and hands hits to the
//     BT's access-fault handler. The table is a superset filter: it also
//     carries store "guard" bits on the page after any store-restricted or
//     watched page, so an MDA store sequence — which commits its high
//     quadword first — traps before the first byte of a page-spanning
//     store lands, never after. False positives (guard hits on an access
//     whose guest-level range is fine) are resolved by the handler via
//     CheckRange and re-executed raw.
//
// Watch bits are the self-modifying-code hook: a watched page traps stores
// like a write-protected one at the machine layer, but CheckRange ignores
// it — the store is architecturally allowed and the BT completes it after
// invalidating translations.
package mem

import "fmt"

// Prot is a page protection bit set.
type Prot uint8

// Protection bits.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec

	ProtRW  = ProtRead | ProtWrite
	ProtAll = ProtRead | ProtWrite | ProtExec
)

func (p Prot) String() string {
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Fault describes one guest-visible memory fault: an access (or fetch)
// that touched an unmapped or protection-restricted page. Addr is the
// first byte that could not be accessed — for a page-spanning access that
// is legal on its first page, Addr is the boundary of the faulting page
// and Completed counts the bytes before it that could have completed.
type Fault struct {
	Addr      uint64 // first faulting byte
	Size      int    // size of the attempted access
	Write     bool   // store (or store half of a copy)
	Exec      bool   // instruction fetch
	Unmapped  bool   // page absent rather than protection-restricted
	Completed int    // accessible bytes preceding Addr within the access
}

// Error renders the fault.
func (f *Fault) Error() string {
	kind := "load"
	switch {
	case f.Exec:
		kind = "fetch"
	case f.Write:
		kind = "store"
	}
	cause := "protection"
	if f.Unmapped {
		cause = "unmapped page"
	}
	return fmt.Sprintf("mem: %s fault at %#x (%s, size %d, %d/%d bytes completable)",
		kind, f.Addr, cause, f.Size, f.Completed, f.Size)
}

// pageProt is the protection record for one page; pages without a record
// are mapped ProtAll.
type pageProt struct {
	prot     Prot
	unmapped bool
}

// Machine-layer trap bits, one byte per page. tGuard marks the page after
// a store-trapping page (see the package comment in this file).
const (
	tLoad uint8 = 1 << iota
	tStore
	tGuard
)

// protState carries all protection machinery; embedded by value in Memory
// so the zero Memory stays ready to use.
type protState struct {
	prots map[uint64]pageProt // page index → protections; absent ⇒ rwx
	watch map[uint64]bool     // page index → store watch (SMC hook)
	trap  []uint8             // dense per-page trap bits; nil until armed
}

// Protect sets the protection of every page overlapping [addr, addr+size)
// and maps the pages if they were unmapped. Protections are limited to the
// dense low-4-GiB region; Protect panics above it.
func (m *Memory) Protect(addr, size uint64, p Prot) {
	m.eachPage("Protect", addr, size, func(i uint64) {
		if p == ProtAll {
			delete(m.prots, i)
		} else {
			if m.prots == nil {
				m.prots = make(map[uint64]pageProt)
			}
			m.prots[i] = pageProt{prot: p}
		}
	})
}

// Map restores every page overlapping [addr, addr+size) to mapped rwx.
func (m *Memory) Map(addr, size uint64) { m.Protect(addr, size, ProtAll) }

// Unmap marks every page overlapping [addr, addr+size) unmapped: any guest
// access or fetch touching them faults. The backing bytes are retained (a
// later Map exposes them again); use Reset to drop contents.
func (m *Memory) Unmap(addr, size uint64) {
	m.eachPage("Unmap", addr, size, func(i uint64) {
		if m.prots == nil {
			m.prots = make(map[uint64]pageProt)
		}
		m.prots[i] = pageProt{unmapped: true}
	})
}

// SetWatch arms (or disarms) the store watch on every page overlapping
// [addr, addr+size). Watched stores trap at the machine layer but are
// architecturally allowed; the BT uses this to detect self-modifying code.
func (m *Memory) SetWatch(addr, size uint64, on bool) {
	m.eachPage("SetWatch", addr, size, func(i uint64) {
		if on {
			if m.watch == nil {
				m.watch = make(map[uint64]bool)
			}
			m.watch[i] = true
		} else {
			delete(m.watch, i)
		}
	})
}

// eachPage applies fn to every page index overlapping [addr, addr+size)
// and refreshes the affected trap-table entries (each changed page and its
// successor, which inherits the store-guard bit).
func (m *Memory) eachPage(op string, addr, size uint64, fn func(i uint64)) {
	if size == 0 {
		return
	}
	if addr >= denseLimit || addr+size > denseLimit {
		panic(fmt.Sprintf("mem: %s range [%#x,%#x) outside the protectable low 4 GiB", op, addr, addr+size))
	}
	first, last := addr>>PageShift, (addr+size-1)>>PageShift
	for i := first; i <= last; i++ {
		fn(i)
	}
	if m.trap == nil {
		m.trap = make([]uint8, uint64(l1Entries)<<l2Bits)
	}
	for i := first; i <= last+1; i++ {
		m.refreshTrap(i)
	}
}

// ownTrapBits computes page i's own trap bits from protections and watch.
func (m *Memory) ownTrapBits(i uint64) uint8 {
	var b uint8
	if ps, ok := m.prots[i]; ok {
		switch {
		case ps.unmapped:
			b |= tLoad | tStore
		default:
			if ps.prot&ProtRead == 0 {
				b |= tLoad
			}
			if ps.prot&ProtWrite == 0 {
				b |= tStore
			}
		}
	}
	if m.watch[i] {
		b |= tStore
	}
	return b
}

// refreshTrap recomputes the trap-table entry for page i.
func (m *Memory) refreshTrap(i uint64) {
	if i >= uint64(len(m.trap)) {
		return
	}
	b := m.ownTrapBits(i)
	if i > 0 && m.ownTrapBits(i-1)&tStore != 0 {
		b |= tGuard
	}
	m.trap[i] = b
}

// Armed reports whether any protection or watch has ever been set since
// the last Reset — the machine's fast gate around AccessTrap.
func (m *Memory) Armed() bool { return m.trap != nil }

// AccessTrap reports whether a host access of size bytes at addr must trap
// to the BT's access-fault handler. It is a superset filter (guard bits
// fire on legal accesses); the handler disambiguates with CheckRange.
// Safe and false when no protections are armed.
func (m *Memory) AccessTrap(addr uint64, size int, store bool) bool {
	t := m.trap
	if t == nil {
		return false
	}
	want := tLoad
	if store {
		want = tStore | tGuard
	}
	i := addr >> PageShift
	if i < uint64(len(t)) && t[i]&want != 0 {
		return true
	}
	if j := (addr + uint64(size) - 1) >> PageShift; j != i && j < uint64(len(t)) && t[j]&want != 0 {
		return true
	}
	return false
}

// PageTrapped reports whether host accesses contained in addr's page can
// trap: load gates loads, store gates stores (protection, watch, and
// store-guard bits, exactly the predicate AccessTrap applies). Callers
// that memoize a page may use the two bits in place of per-access
// AccessTrap calls for accesses that cannot cross out of the page — valid
// only while no protection state changes, so the memo must be dropped at
// any point a protection mutation can run.
func (m *Memory) PageTrapped(addr uint64) (load, store bool) {
	t := m.trap
	if t == nil {
		return false, false
	}
	i := addr >> PageShift
	if i >= uint64(len(t)) {
		return false, false
	}
	b := t[i]
	return b&tLoad != 0, b&(tStore|tGuard) != 0
}

// Watched reports whether the page holding addr carries a store watch.
func (m *Memory) Watched(addr uint64) bool { return m.watch[addr>>PageShift] }

// WatchedRange reports whether any page overlapping [addr, addr+n) is
// watched.
func (m *Memory) WatchedRange(addr uint64, n int) bool {
	if len(m.watch) == 0 || n <= 0 {
		return false
	}
	first, last := addr>>PageShift, (addr+uint64(n)-1)>>PageShift
	for i := first; i <= last; i++ {
		if m.watch[i] {
			return true
		}
	}
	return false
}

// ProtAt returns the protection of the page holding addr and whether it is
// mapped. Pages never protected report (ProtAll, true).
func (m *Memory) ProtAt(addr uint64) (Prot, bool) {
	if ps, ok := m.prots[addr>>PageShift]; ok {
		if ps.unmapped {
			return 0, false
		}
		return ps.prot, true
	}
	return ProtAll, true
}

// CheckRange checks a guest data access of n bytes at addr against the
// page protections, all-or-nothing: the first page that refuses the access
// faults the whole access. Watch bits are ignored (watched stores are
// architecturally legal). Returns nil when the access is fully allowed.
//
// The page walk is the checked counterpart of the word-copy fast paths in
// mem.go: an access is only ever performed raw after every page it touches
// — including across page boundaries — has passed here.
func (m *Memory) CheckRange(addr uint64, n int, write bool) *Fault {
	if len(m.prots) == 0 || n <= 0 {
		return nil
	}
	first, last := addr>>PageShift, (addr+uint64(n)-1)>>PageShift
	for i := first; i <= last; i++ {
		ps, ok := m.prots[i]
		if !ok {
			continue
		}
		bad := ps.unmapped
		if !bad {
			if write {
				bad = ps.prot&ProtWrite == 0
			} else {
				bad = ps.prot&ProtRead == 0
			}
		}
		if !bad {
			continue
		}
		fa := addr
		if pb := i << PageShift; pb > fa {
			fa = pb
		}
		return &Fault{Addr: fa, Size: n, Write: write, Unmapped: ps.unmapped, Completed: int(fa - addr)}
	}
	return nil
}

// CheckFetch checks an instruction fetch of n bytes at addr (execute
// permission), with the same all-or-nothing contract as CheckRange.
func (m *Memory) CheckFetch(addr uint64, n int) *Fault {
	if len(m.prots) == 0 || n <= 0 {
		return nil
	}
	first, last := addr>>PageShift, (addr+uint64(n)-1)>>PageShift
	for i := first; i <= last; i++ {
		ps, ok := m.prots[i]
		if !ok {
			continue
		}
		if !ps.unmapped && ps.prot&ProtExec != 0 {
			continue
		}
		fa := addr
		if pb := i << PageShift; pb > fa {
			fa = pb
		}
		return &Fault{Addr: fa, Size: n, Exec: true, Unmapped: ps.unmapped, Completed: int(fa - addr)}
	}
	return nil
}

// ReadChecked reads n bytes at addr as a little-endian integer after
// checking read permission on every page the access touches.
func (m *Memory) ReadChecked(addr uint64, n int) (uint64, *Fault) {
	if f := m.CheckRange(addr, n, false); f != nil {
		return 0, f
	}
	return m.Read(addr, n), nil
}

// WriteChecked writes the n low-order bytes of v at addr after checking
// write permission on every page the access touches. On fault nothing is
// written — zero observable partial bytes.
func (m *Memory) WriteChecked(addr uint64, v uint64, n int) *Fault {
	if f := m.CheckRange(addr, n, true); f != nil {
		return f
	}
	m.Write(addr, v, n)
	return nil
}

// resetProt drops all protection, watch, and trap state (Reset hook).
func (m *Memory) resetProt() {
	m.prots = nil
	m.watch = nil
	m.trap = nil
}
