package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueReadable(t *testing.T) {
	var m Memory
	if got := m.Read64(0x1000); got != 0 {
		t.Fatalf("untouched memory = %#x, want 0", got)
	}
	m.Write32(0x1000, 0xdeadbeef)
	if got := m.Read32(0x1000); got != 0xdeadbeef {
		t.Fatalf("Read32 = %#x, want 0xdeadbeef", got)
	}
}

func TestLittleEndian(t *testing.T) {
	m := New()
	m.Write32(0x100, 0x04030201)
	for i, want := range []byte{1, 2, 3, 4} {
		if got := m.Read8(0x100 + uint64(i)); got != want {
			t.Errorf("byte %d = %d, want %d", i, got, want)
		}
	}
	m.Write64(0x200, 0x0807060504030201)
	if got := m.Read16(0x203); got != 0x0504 {
		t.Errorf("misaligned Read16 = %#x, want 0x0504", got)
	}
	if got := m.Read32(0x203); got != 0x07060504 {
		t.Errorf("misaligned Read32 = %#x, want 0x07060504", got)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3) // 8-byte access spans two pages
	m.Write64(addr, 0x1122334455667788)
	if got := m.Read64(addr); got != 0x1122334455667788 {
		t.Fatalf("cross-page Read64 = %#x", got)
	}
	if m.Pages() != 2 {
		t.Fatalf("Pages = %d, want 2", m.Pages())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	f := func(addr uint64, v uint64, szSel uint8) bool {
		addr &= 0xffffff // keep the page map small
		n := 1 << (szSel % 4)
		m.Write(addr, v, n)
		got := m.Read(addr, n)
		want := v
		if n < 8 {
			want &= 1<<(8*n) - 1
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDoesNotDisturbNeighbors(t *testing.T) {
	m := New()
	for i := uint64(0); i < 32; i++ {
		m.Write8(0x500+i, byte(i+1))
	}
	m.Write32(0x505, 0)
	for i := uint64(0); i < 32; i++ {
		want := byte(i + 1)
		if i >= 5 && i < 9 {
			want = 0
		}
		if got := m.Read8(0x500 + i); got != want {
			t.Errorf("byte %d = %d, want %d", i, got, want)
		}
	}
}

func TestBytesBulk(t *testing.T) {
	m := New()
	src := make([]byte, 3*PageSize+17)
	rnd := rand.New(rand.NewSource(1))
	rnd.Read(src)
	m.WriteBytes(PageSize-9, src)
	dst := make([]byte, len(src))
	m.ReadBytes(PageSize-9, dst)
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("bulk mismatch at %d: %d != %d", i, dst[i], src[i])
		}
	}
	// Reading an untouched region through ReadBytes must yield zeros even
	// into a dirty destination buffer.
	dirty := []byte{1, 2, 3, 4, 5}
	m.ReadBytes(1<<40, dirty)
	for i, b := range dirty {
		if b != 0 {
			t.Fatalf("untouched ReadBytes[%d] = %d, want 0", i, b)
		}
	}
}

func TestSizePanics(t *testing.T) {
	m := New()
	for _, n := range []int{0, 9, -1} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Read size %d did not panic", n)
				}
			}()
			m.Read(0, n)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Write size %d did not panic", n)
				}
			}()
			m.Write(0, 0, n)
		}()
	}
}

func BenchmarkRead32(b *testing.B) {
	m := New()
	m.Write32(0x1000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Read32(0x1000)
	}
}
