// Package mem provides the sparse, little-endian simulated memory shared by
// the guest image, the translated code cache, and the host machine simulator.
//
// Memory is organized as fixed-size pages allocated on first touch. All
// multi-byte accessors are little-endian (both the guest x86-like ISA and the
// host Alpha-like ISA are little-endian) and place no alignment restrictions;
// alignment policy is enforced by the machine simulator, not by the memory.
package mem

import "fmt"

const (
	// PageShift is log2 of the page size.
	PageShift = 13
	// PageSize is the size of one backing page (8 KiB).
	PageSize = 1 << PageShift
	pageMask = PageSize - 1
)

// Memory is a sparse byte-addressable memory. The zero value is ready to use.
// All addresses are 64-bit; untouched memory reads as zero.
type Memory struct {
	pages map[uint64]*[PageSize]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

func (m *Memory) page(addr uint64) *[PageSize]byte {
	if m.pages == nil {
		m.pages = make(map[uint64]*[PageSize]byte)
	}
	idx := addr >> PageShift
	p, ok := m.pages[idx]
	if !ok {
		p = new([PageSize]byte)
		m.pages[idx] = p
	}
	return p
}

// peek returns the page for addr if it exists, without allocating.
func (m *Memory) peek(addr uint64) *[PageSize]byte {
	if m.pages == nil {
		return nil
	}
	return m.pages[addr>>PageShift]
}

// Read8 reads one byte.
func (m *Memory) Read8(addr uint64) byte {
	p := m.peek(addr)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint64, v byte) {
	m.page(addr)[addr&pageMask] = v
}

// Read reads n bytes (n ≤ 8) starting at addr as a little-endian integer.
// It panics if n is not in 1..8.
func (m *Memory) Read(addr uint64, n int) uint64 {
	if n < 1 || n > 8 {
		panic(fmt.Sprintf("mem: Read size %d out of range", n))
	}
	// Fast path: the access is contained in one page.
	off := addr & pageMask
	if off+uint64(n) <= PageSize {
		p := m.peek(addr)
		if p == nil {
			return 0
		}
		var v uint64
		for i := n - 1; i >= 0; i-- {
			v = v<<8 | uint64(p[off+uint64(i)])
		}
		return v
	}
	var v uint64
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.Read8(addr+uint64(i)))
	}
	return v
}

// Write writes the n low-order bytes (n ≤ 8) of v little-endian at addr.
// It panics if n is not in 1..8.
func (m *Memory) Write(addr uint64, v uint64, n int) {
	if n < 1 || n > 8 {
		panic(fmt.Sprintf("mem: Write size %d out of range", n))
	}
	off := addr & pageMask
	if off+uint64(n) <= PageSize {
		p := m.page(addr)
		for i := 0; i < n; i++ {
			p[off+uint64(i)] = byte(v >> (8 * i))
		}
		return
	}
	for i := 0; i < n; i++ {
		m.Write8(addr+uint64(i), byte(v>>(8*i)))
	}
}

// Read16 reads a little-endian 16-bit value.
func (m *Memory) Read16(addr uint64) uint16 { return uint16(m.Read(addr, 2)) }

// Read32 reads a little-endian 32-bit value.
func (m *Memory) Read32(addr uint64) uint32 { return uint32(m.Read(addr, 4)) }

// Read64 reads a little-endian 64-bit value.
func (m *Memory) Read64(addr uint64) uint64 { return m.Read(addr, 8) }

// Write16 writes a little-endian 16-bit value.
func (m *Memory) Write16(addr uint64, v uint16) { m.Write(addr, uint64(v), 2) }

// Write32 writes a little-endian 32-bit value.
func (m *Memory) Write32(addr uint64, v uint32) { m.Write(addr, uint64(v), 4) }

// Write64 writes a little-endian 64-bit value.
func (m *Memory) Write64(addr uint64, v uint64) { m.Write(addr, v, 8) }

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (m *Memory) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & pageMask
		n := PageSize - off
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		if p := m.peek(addr); p != nil {
			copy(dst[:n], p[off:off+n])
		} else {
			for i := range dst[:n] {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += n
	}
}

// WriteBytes copies src into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr & pageMask
		n := PageSize - off
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		copy(m.page(addr)[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
}

// Pages reports the number of allocated pages (for footprint accounting).
func (m *Memory) Pages() int { return len(m.pages) }

// Footprint reports the allocated backing-store size in bytes.
func (m *Memory) Footprint() int { return len(m.pages) * PageSize }
