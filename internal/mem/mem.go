// Package mem provides the sparse, little-endian simulated memory shared by
// the guest image, the translated code cache, and the host machine simulator.
//
// Memory is organized as fixed-size pages allocated on first touch. All
// multi-byte accessors are little-endian (both the guest x86-like ISA and the
// host Alpha-like ISA are little-endian) and place no alignment restrictions;
// alignment policy is enforced by the machine simulator, not by the memory.
//
// Page lookup is a two-level page table rather than a hash map, because page
// resolution sits on the hottest path of the whole simulator (every guest and
// host load/store, every instruction fetch miss). The low 4 GiB of the
// address space — which holds the guest image, the BT's private tables, and
// the translated code cache — resolves through a dense directory of lazily
// allocated second-level tables; the rare page above 4 GiB falls back to a
// map. A one-entry last-page cache short-circuits the common case of
// consecutive accesses landing on the same page.
package mem

import (
	"encoding/binary"
	"fmt"
)

const (
	// PageShift is log2 of the page size.
	PageShift = 13
	// PageSize is the size of one backing page (8 KiB).
	PageSize = 1 << PageShift
	pageMask = PageSize - 1

	// Two-level table geometry: an L2 table spans l2Span pages (8 MiB of
	// address space); the dense L1 directory spans l1Entries L2 tables
	// (4 GiB). Addresses at or above denseLimit use the map fallback.
	l2Bits     = 10
	l2Span     = 1 << l2Bits
	l2Mask     = l2Span - 1
	l1Entries  = 512
	denseLimit = uint64(l1Entries) << (PageShift + l2Bits)
)

type page = [PageSize]byte

type l2table [l2Span]*page

// Memory is a sparse byte-addressable memory. The zero value is ready to use.
// All addresses are 64-bit; untouched memory reads as zero.
type Memory struct {
	// Last-page cache: the page holding the most recently resolved address.
	// lastPage is nil until the first successful resolution, so the zero
	// value of lastIdx cannot produce a false hit.
	lastIdx  uint64
	lastPage *page

	dense  [l1Entries]*l2table
	high   map[uint64]*page // pages at/above denseLimit, by page index
	npages int

	// Page protections, store watches, and the machine trap-bit table
	// (prot.go). Zero value: everything mapped rwx, nothing watched.
	protState
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{}
}

// page returns the backing page for addr, allocating it (and its L2 table)
// on first touch.
func (m *Memory) page(addr uint64) *page {
	idx := addr >> PageShift
	if idx == m.lastIdx && m.lastPage != nil {
		return m.lastPage
	}
	var p *page
	if addr < denseLimit {
		l2 := m.dense[idx>>l2Bits]
		if l2 == nil {
			l2 = new(l2table)
			m.dense[idx>>l2Bits] = l2
		}
		p = l2[idx&l2Mask]
		if p == nil {
			p = new(page)
			l2[idx&l2Mask] = p
			m.npages++
		}
	} else {
		if m.high == nil {
			m.high = make(map[uint64]*page)
		}
		p = m.high[idx]
		if p == nil {
			p = new(page)
			m.high[idx] = p
			m.npages++
		}
	}
	m.lastIdx, m.lastPage = idx, p
	return p
}

// peek returns the page for addr if it exists, without allocating.
func (m *Memory) peek(addr uint64) *page {
	idx := addr >> PageShift
	if idx == m.lastIdx && m.lastPage != nil {
		return m.lastPage
	}
	var p *page
	if addr < denseLimit {
		if l2 := m.dense[idx>>l2Bits]; l2 != nil {
			p = l2[idx&l2Mask]
		}
	} else {
		p = m.high[idx]
	}
	if p != nil {
		m.lastIdx, m.lastPage = idx, p
	}
	return p
}

// PeekPage returns the backing array of addr's page, or nil if the page
// has never been touched. The pointer is stable for the page's lifetime,
// so hot interpreters may cache it across accesses and read/write the
// page directly — provided they perform their own protection and watch
// checks first (the memory layer does none on this path) and drop the
// cached pointer when the run ends.
func (m *Memory) PeekPage(addr uint64) *[PageSize]byte {
	return m.peek(addr)
}

// Read8 reads one byte.
func (m *Memory) Read8(addr uint64) byte {
	p := m.peek(addr)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint64, v byte) {
	m.page(addr)[addr&pageMask] = v
}

// Read reads n bytes (n ≤ 8) starting at addr as a little-endian integer.
// It panics if n is not in 1..8.
func (m *Memory) Read(addr uint64, n int) uint64 {
	// Fast path: the access is contained in one page; the common power-of-
	// two sizes are single word copies.
	off := addr & pageMask
	if off+uint64(n) <= PageSize {
		p := m.peek(addr)
		switch n {
		case 1:
			if p == nil {
				return 0
			}
			return uint64(p[off])
		case 2:
			if p == nil {
				return 0
			}
			return uint64(binary.LittleEndian.Uint16(p[off : off+2]))
		case 4:
			if p == nil {
				return 0
			}
			return uint64(binary.LittleEndian.Uint32(p[off : off+4]))
		case 8:
			if p == nil {
				return 0
			}
			return binary.LittleEndian.Uint64(p[off : off+8])
		}
		checkSize("Read", n)
		if p == nil {
			return 0
		}
		var v uint64
		for i := n - 1; i >= 0; i-- {
			v = v<<8 | uint64(p[off+uint64(i)])
		}
		return v
	}
	checkSize("Read", n)
	var v uint64
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.Read8(addr+uint64(i)))
	}
	return v
}

// Write writes the n low-order bytes (n ≤ 8) of v little-endian at addr.
// It panics if n is not in 1..8.
func (m *Memory) Write(addr uint64, v uint64, n int) {
	off := addr & pageMask
	if off+uint64(n) <= PageSize {
		p := m.page(addr)
		switch n {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:off+2], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:off+4], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:off+8], v)
			return
		}
		checkSize("Write", n)
		for i := 0; i < n; i++ {
			p[off+uint64(i)] = byte(v >> (8 * i))
		}
		return
	}
	checkSize("Write", n)
	for i := 0; i < n; i++ {
		m.Write8(addr+uint64(i), byte(v>>(8*i)))
	}
}

// checkSize panics when a Read/Write size is out of range. The fast paths
// above dispatch on the valid power-of-two sizes directly, so only the odd
// sizes and genuinely bad calls reach it.
func checkSize(op string, n int) {
	if n < 1 || n > 8 {
		panic(fmt.Sprintf("mem: %s size %d out of range", op, n))
	}
}

// Read16 reads a little-endian 16-bit value.
func (m *Memory) Read16(addr uint64) uint16 {
	off := addr & pageMask
	if off+2 <= PageSize {
		if p := m.peek(addr); p != nil {
			return binary.LittleEndian.Uint16(p[off : off+2])
		}
		return 0
	}
	return uint16(m.Read(addr, 2))
}

// Read32 reads a little-endian 32-bit value.
func (m *Memory) Read32(addr uint64) uint32 {
	off := addr & pageMask
	if off+4 <= PageSize {
		if p := m.peek(addr); p != nil {
			return binary.LittleEndian.Uint32(p[off : off+4])
		}
		return 0
	}
	return uint32(m.Read(addr, 4))
}

// Read64 reads a little-endian 64-bit value.
func (m *Memory) Read64(addr uint64) uint64 {
	off := addr & pageMask
	if off+8 <= PageSize {
		if p := m.peek(addr); p != nil {
			return binary.LittleEndian.Uint64(p[off : off+8])
		}
		return 0
	}
	return m.Read(addr, 8)
}

// Write16 writes a little-endian 16-bit value.
func (m *Memory) Write16(addr uint64, v uint16) {
	off := addr & pageMask
	if off+2 <= PageSize {
		binary.LittleEndian.PutUint16(m.page(addr)[off:off+2], v)
		return
	}
	m.Write(addr, uint64(v), 2)
}

// Write32 writes a little-endian 32-bit value.
func (m *Memory) Write32(addr uint64, v uint32) {
	off := addr & pageMask
	if off+4 <= PageSize {
		binary.LittleEndian.PutUint32(m.page(addr)[off:off+4], v)
		return
	}
	m.Write(addr, uint64(v), 4)
}

// Write64 writes a little-endian 64-bit value.
func (m *Memory) Write64(addr uint64, v uint64) {
	off := addr & pageMask
	if off+8 <= PageSize {
		binary.LittleEndian.PutUint64(m.page(addr)[off:off+8], v)
		return
	}
	m.Write(addr, v, 8)
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (m *Memory) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & pageMask
		n := PageSize - off
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		if p := m.peek(addr); p != nil {
			copy(dst[:n], p[off:off+n])
		} else {
			for i := range dst[:n] {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += n
	}
}

// WriteBytes copies src into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr & pageMask
		n := PageSize - off
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		copy(m.page(addr)[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
}

// Reset zeroes every allocated page while keeping the backing arena —
// pages, L2 tables, and the high map all stay allocated — so a pooled
// engine can reuse the memory for its next program without reallocating.
// After Reset all reads return zero, exactly as from a fresh Memory.
func (m *Memory) Reset() {
	for _, l2 := range m.dense {
		if l2 == nil {
			continue
		}
		for _, p := range l2 {
			if p != nil {
				clear(p[:])
			}
		}
	}
	for _, p := range m.high {
		clear(p[:])
	}
	m.resetProt()
}

// Pages reports the number of allocated pages (for footprint accounting).
func (m *Memory) Pages() int { return m.npages }

// Footprint reports the allocated backing-store size in bytes.
func (m *Memory) Footprint() int { return m.npages * PageSize }
