package host

import "fmt"

// Disasm renders inst, assumed to be located at pc, in Alpha assembler
// syntax. Branch targets are shown as absolute addresses.
func Disasm(pc uint64, i Inst) string {
	switch FormatOf(i.Op) {
	case FormatPAL:
		return fmt.Sprintf("brkbt\t%#x", i.Payload)
	case FormatMem:
		return fmt.Sprintf("%s\t%s, %d(%s)", i.Op, i.Ra, i.Disp, i.Rb)
	case FormatOpr:
		if i.IsLit {
			return fmt.Sprintf("%s\t%s, #%d, %s", i.Op, i.Ra, i.Lit, i.Rc)
		}
		return fmt.Sprintf("%s\t%s, %s, %s", i.Op, i.Ra, i.Rb, i.Rc)
	case FormatBra:
		if i.Op == BR && i.Ra == Zero {
			return fmt.Sprintf("br\t%#x", i.BranchTarget(pc))
		}
		return fmt.Sprintf("%s\t%s, %#x", i.Op, i.Ra, i.BranchTarget(pc))
	case FormatJmp:
		return fmt.Sprintf("%s\t%s, (%s)", i.Op, i.Ra, i.Rb)
	}
	return fmt.Sprintf("?%v", i.Op)
}

// DisasmWord decodes and renders a raw instruction word at pc; undecodable
// words render as .word directives so code-cache dumps never fail.
func DisasmWord(pc uint64, w uint32) string {
	i, err := Decode(w)
	if err != nil {
		return fmt.Sprintf(".word\t%#08x", w)
	}
	return Disasm(pc, i)
}
