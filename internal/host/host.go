// Package host defines the target ISA of the binary translator: a 64-bit
// Alpha-like RISC with natural-alignment restrictions on memory accesses.
//
// The ISA follows the Alpha AXP architecture closely (the paper's target
// machine is an Alpha ES40): 32 integer registers with R31 hardwired to
// zero, fixed 32-bit instruction words in the classic Alpha memory / operate
// / branch / jump formats, and — critically for this paper — the unaligned
// access support instructions LDQ_U/STQ_U and the EXT/INS/MSK byte
// manipulation families used to build the "MDA code sequence" (paper §III-A,
// Fig. 2). Aligned loads/stores (LDW/LDL/LDQ/STW/STL/STQ) trap when their
// effective address is not a multiple of the access size; the trap semantics
// live in package machine.
//
// One extension is made for the binary translation runtime: the CALL_PAL
// slot (opcode 0x00) is repurposed as BRKBT, a "break to binary translator"
// instruction carrying a 26-bit service payload. The machine simulator
// suspends simulated execution and calls back into the (Go-level) BT runtime
// when it executes one — this models the translated code's exits to the
// DigitalBridge dynamic monitor.
package host

import "fmt"

// Reg is a host register number, R0..R31. R31 reads as zero and discards
// writes, as on Alpha.
type Reg uint8

// Register names follow Alpha conventions where the BT cares about them.
const (
	R0 Reg = iota // v0: scratch / return value
	R1            // guest EAX (paper Fig. 2 register mapping)
	R2            // guest ECX
	R3            // guest EDX
	R4            // guest EBX
	R5            // guest ESP
	R6            // guest EBP
	R7            // guest ESI
	R8            // guest EDI
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21 // BT temporary (paper: "register 21-30 of Alpha are used as temporal registers")
	R22 // BT temporary
	R23 // BT temporary
	R24 // BT temporary
	R25 // BT temporary
	R26 // BT temporary / return address
	R27 // BT temporary
	R28 // BT temporary
	R29 // BT temporary
	R30 // BT temporary / stack
	R31 // always zero
	// NumRegs is the number of architectural integer registers.
	NumRegs = 32
	// Zero is the hardwired zero register.
	Zero = R31
)

// String returns the conventional register name.
func (r Reg) String() string {
	if r == R31 {
		return "zero"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op is a semantic host opcode.
type Op uint8

// Host opcodes. The comment gives the Alpha mnemonic semantics.
const (
	// BRKBT is the runtime-callback instruction (repurposed CALL_PAL).
	BRKBT Op = iota

	// Memory format: Ra, disp(Rb).
	LDA  // Ra = Rb + sext(disp)
	LDAH // Ra = Rb + sext(disp)*65536
	LDBU // load byte, zero-extend (no alignment restriction)
	LDWU // load word (2B), zero-extend; traps if EA&1 != 0
	LDL  // load longword (4B), sign-extend; traps if EA&3 != 0
	LDQ  // load quadword (8B); traps if EA&7 != 0
	LDQU // load quadword unaligned: loads 8 bytes at EA&^7, never traps
	STB  // store byte
	STW  // store word; traps if EA&1 != 0
	STL  // store longword; traps if EA&3 != 0
	STQ  // store quadword; traps if EA&7 != 0
	STQU // store quadword unaligned: stores 8 bytes at EA&^7, never traps

	// Operate format: Ra, Rb|#lit, Rc.
	ADDL // Rc = sext32(Ra + Rb)
	SUBL // Rc = sext32(Ra - Rb)
	ADDQ // Rc = Ra + Rb
	SUBQ // Rc = Ra - Rb
	MULL // Rc = sext32(Ra * Rb)
	MULQ // Rc = Ra * Rb

	CMPEQ  // Rc = Ra == Rb
	CMPLT  // signed <
	CMPLE  // signed <=
	CMPULT // unsigned <
	CMPULE // unsigned <=

	AND   // Rc = Ra & Rb
	BIC   // Rc = Ra &^ Rb
	BIS   // Rc = Ra | Rb
	ORNOT // Rc = Ra | ^Rb
	XOR   // Rc = Ra ^ Rb
	EQV   // Rc = Ra ^ ^Rb

	SLL // Rc = Ra << (Rb & 63)
	SRL // Rc = Ra >> (Rb & 63) logical
	SRA // Rc = Ra >> (Rb & 63) arithmetic

	// Byte-manipulation family used by MDA code sequences (paper Fig. 2/5).
	EXTBL // extract byte low
	EXTWL // extract word low
	EXTLL // extract longword low
	EXTQL // extract quadword low
	EXTWH // extract word high
	EXTLH // extract longword high
	EXTQH // extract quadword high
	INSBL // insert byte low
	INSWL // insert word low
	INSLL // insert longword low
	INSQL // insert quadword low
	INSWH // insert word high
	INSLH // insert longword high
	INSQH // insert quadword high
	MSKBL // mask byte low
	MSKWL // mask word low
	MSKLL // mask longword low
	MSKQL // mask quadword low
	MSKWH // mask word high
	MSKLH // mask longword high
	MSKQH // mask quadword high

	// Branch format: Ra, disp (longword-scaled, PC-relative).
	BR   // unconditional, Ra = return address
	BSR  // branch to subroutine, Ra = return address
	BEQ  // branch if Ra == 0
	BNE  // branch if Ra != 0
	BLT  // branch if Ra < 0 (signed)
	BLE  // branch if Ra <= 0
	BGT  // branch if Ra > 0
	BGE  // branch if Ra >= 0
	BLBC // branch if low bit of Ra clear
	BLBS // branch if low bit of Ra set

	// Jump format: Ra = retaddr, target = Rb &^ 3.
	JMP
	JSR
	RET

	numOps
)

var opNames = map[Op]string{
	BRKBT: "brkbt",
	LDA:   "lda", LDAH: "ldah",
	LDBU: "ldbu", LDWU: "ldwu", LDL: "ldl", LDQ: "ldq", LDQU: "ldq_u",
	STB: "stb", STW: "stw", STL: "stl", STQ: "stq", STQU: "stq_u",
	ADDL: "addl", SUBL: "subl", ADDQ: "addq", SUBQ: "subq",
	MULL: "mull", MULQ: "mulq",
	CMPEQ: "cmpeq", CMPLT: "cmplt", CMPLE: "cmple", CMPULT: "cmpult", CMPULE: "cmpule",
	AND: "and", BIC: "bic", BIS: "bis", ORNOT: "ornot", XOR: "xor", EQV: "eqv",
	SLL: "sll", SRL: "srl", SRA: "sra",
	EXTBL: "extbl", EXTWL: "extwl", EXTLL: "extll", EXTQL: "extql",
	EXTWH: "extwh", EXTLH: "extlh", EXTQH: "extqh",
	INSBL: "insbl", INSWL: "inswl", INSLL: "insll", INSQL: "insql",
	INSWH: "inswh", INSLH: "inslh", INSQH: "insqh",
	MSKBL: "mskbl", MSKWL: "mskwl", MSKLL: "mskll", MSKQL: "mskql",
	MSKWH: "mskwh", MSKLH: "msklh", MSKQH: "mskqh",
	BR: "br", BSR: "bsr",
	BEQ: "beq", BNE: "bne", BLT: "blt", BLE: "ble", BGT: "bgt", BGE: "bge",
	BLBC: "blbc", BLBS: "blbs",
	JMP: "jmp", JSR: "jsr", RET: "ret",
}

// String returns the Alpha mnemonic for op.
func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Format classifies the encoding format of an instruction.
type Format uint8

// Encoding formats.
const (
	FormatPAL Format = iota // BRKBT: opcode + 26-bit payload
	FormatMem               // memory: Ra, disp(Rb)
	FormatOpr               // operate: Ra, Rb|#lit, Rc
	FormatBra               // branch: Ra, 21-bit longword displacement
	FormatJmp               // jump: Ra, (Rb)
)

// formatTab is the precomputed op→format table; FormatOf is on the machine
// simulator's per-instruction dispatch path, so it must be one indexed load.
var formatTab = func() [numOps]Format {
	var t [numOps]Format
	for op := Op(0); op < numOps; op++ {
		switch {
		case op == BRKBT:
			t[op] = FormatPAL
		case op >= LDA && op <= STQU:
			t[op] = FormatMem
		case op >= ADDL && op <= MSKQH:
			t[op] = FormatOpr
		case op >= BR && op <= BLBS:
			t[op] = FormatBra
		case op >= JMP && op <= RET:
			t[op] = FormatJmp
		default:
			panic(fmt.Sprintf("host: FormatOf(%d): unknown op", uint8(op)))
		}
	}
	return t
}()

// FormatOf returns the encoding format of op. It panics on an op outside the
// defined range.
func FormatOf(op Op) Format { return formatTab[op] }

// IsLoad reports whether op reads data memory.
func (op Op) IsLoad() bool { return op >= LDBU && op <= LDQU }

// IsStore reports whether op writes data memory.
func (op Op) IsStore() bool { return op >= STB && op <= STQU }

// MemSize returns the access size in bytes of a load/store, or 0.
func (op Op) MemSize() int {
	switch op {
	case LDBU, STB:
		return 1
	case LDWU, STW:
		return 2
	case LDL, STL:
		return 4
	case LDQ, STQ, LDQU, STQU:
		return 8
	}
	return 0
}

// Aligns reports whether op requires natural alignment (traps otherwise).
func (op Op) Aligns() bool {
	switch op {
	case LDWU, LDL, LDQ, STW, STL, STQ:
		return true
	}
	return false
}

// Inst is one decoded host instruction.
type Inst struct {
	Op      Op
	Ra, Rb  Reg
	Rc      Reg
	Disp    int32  // memory: byte displacement; branch: longword displacement
	Lit     uint8  // operate-format literal
	IsLit   bool   // operate format uses Lit instead of Rb
	Payload uint32 // BRKBT service payload (26 bits)
}

// InstBytes is the size of every host instruction in bytes.
const InstBytes = 4

// BranchTarget returns the target address of a branch-format instruction
// located at pc.
func (i Inst) BranchTarget(pc uint64) uint64 {
	return pc + InstBytes + uint64(int64(i.Disp))*InstBytes
}

// BrDispFor computes the branch-format displacement field value for a branch
// at pc targeting target. It reports whether the displacement fits in the
// 21-bit field.
func BrDispFor(pc, target uint64) (int32, bool) {
	delta := int64(target) - int64(pc) - InstBytes
	if delta%InstBytes != 0 {
		return 0, false
	}
	d := delta / InstBytes
	if d < -(1<<20) || d >= 1<<20 {
		return 0, false
	}
	return int32(d), true
}
