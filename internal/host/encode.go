package host

import "fmt"

// Binary encoding follows the Alpha AXP instruction formats:
//
//	PAL:     opcode<31:26> payload<25:0>
//	Memory:  opcode<31:26> ra<25:21> rb<20:16> disp<15:0>
//	Operate: opcode<31:26> ra<25:21> rb<20:16> sbz<15:13> 0<12> func<11:5> rc<4:0>
//	         opcode<31:26> ra<25:21> lit<20:13>           1<12> func<11:5> rc<4:0>
//	Branch:  opcode<31:26> ra<25:21> disp<20:0>  (longword-scaled)
//	Jump:    opcode<31:26> ra<25:21> rb<20:16> type<15:14> hint<13:0>
//
// Primary opcode and function code assignments use the real Alpha values so
// that disassemblies read like Alpha code.

type encoding struct {
	opcode uint32 // primary opcode <31:26>
	fn     uint32 // operate function <11:5>, or jump type <15:14>
}

var encodings = map[Op]encoding{
	BRKBT: {0x00, 0},
	LDA:   {0x08, 0}, LDAH: {0x09, 0},
	LDBU: {0x0A, 0}, LDQU: {0x0B, 0}, LDWU: {0x0C, 0},
	STW: {0x0D, 0}, STB: {0x0E, 0}, STQU: {0x0F, 0},
	LDL: {0x28, 0}, LDQ: {0x29, 0}, STL: {0x2C, 0}, STQ: {0x2D, 0},

	ADDL: {0x10, 0x00}, SUBL: {0x10, 0x09}, ADDQ: {0x10, 0x20}, SUBQ: {0x10, 0x29},
	CMPULT: {0x10, 0x1D}, CMPEQ: {0x10, 0x2D}, CMPULE: {0x10, 0x3D},
	CMPLT: {0x10, 0x4D}, CMPLE: {0x10, 0x6D},

	AND: {0x11, 0x00}, BIC: {0x11, 0x08}, BIS: {0x11, 0x20},
	ORNOT: {0x11, 0x28}, XOR: {0x11, 0x40}, EQV: {0x11, 0x48},

	MSKBL: {0x12, 0x02}, EXTBL: {0x12, 0x06}, INSBL: {0x12, 0x0B},
	MSKWL: {0x12, 0x12}, EXTWL: {0x12, 0x16}, INSWL: {0x12, 0x1B},
	MSKLL: {0x12, 0x22}, EXTLL: {0x12, 0x26}, INSLL: {0x12, 0x2B},
	MSKQL: {0x12, 0x32}, EXTQL: {0x12, 0x36}, INSQL: {0x12, 0x3B},
	SRL: {0x12, 0x34}, SLL: {0x12, 0x39}, SRA: {0x12, 0x3C},
	MSKWH: {0x12, 0x52}, INSWH: {0x12, 0x57}, EXTWH: {0x12, 0x5A},
	MSKLH: {0x12, 0x62}, INSLH: {0x12, 0x67}, EXTLH: {0x12, 0x6A},
	MSKQH: {0x12, 0x72}, INSQH: {0x12, 0x77}, EXTQH: {0x12, 0x7A},

	MULL: {0x13, 0x00}, MULQ: {0x13, 0x20},

	JMP: {0x1A, 0}, JSR: {0x1A, 1}, RET: {0x1A, 2},

	BR: {0x30, 0}, BSR: {0x34, 0},
	BLBC: {0x38, 0}, BEQ: {0x39, 0}, BLT: {0x3A, 0}, BLE: {0x3B, 0},
	BLBS: {0x3C, 0}, BNE: {0x3D, 0}, BGE: {0x3E, 0}, BGT: {0x3F, 0},
}

// decodeTable maps opcode (and function code for operate formats) back to Op.
var (
	memDecode = map[uint32]Op{}
	oprDecode = map[uint32]Op{} // key: opcode<<7 | fn
	braDecode = map[uint32]Op{}
	jmpDecode = map[uint32]Op{} // key: jump type
)

func init() {
	for op, e := range encodings {
		switch FormatOf(op) {
		case FormatMem:
			memDecode[e.opcode] = op
		case FormatOpr:
			oprDecode[e.opcode<<7|e.fn] = op
		case FormatBra:
			braDecode[e.opcode] = op
		case FormatJmp:
			jmpDecode[e.fn] = op
		}
	}
}

// Encode encodes one instruction into a 32-bit word. It returns an error for
// out-of-range fields so callers (the translator, the assembler) can surface
// emission bugs instead of silently corrupting code.
func Encode(i Inst) (uint32, error) {
	e, ok := encodings[i.Op]
	if !ok {
		return 0, fmt.Errorf("host: encode: unknown op %v", i.Op)
	}
	if i.Ra >= NumRegs || i.Rb >= NumRegs || i.Rc >= NumRegs {
		return 0, fmt.Errorf("host: encode %v: register out of range", i.Op)
	}
	w := e.opcode << 26
	switch FormatOf(i.Op) {
	case FormatPAL:
		if i.Payload >= 1<<26 {
			return 0, fmt.Errorf("host: encode brkbt: payload %#x exceeds 26 bits", i.Payload)
		}
		return w | i.Payload, nil
	case FormatMem:
		if i.Disp < -(1<<15) || i.Disp >= 1<<15 {
			return 0, fmt.Errorf("host: encode %v: displacement %d exceeds 16 bits", i.Op, i.Disp)
		}
		return w | uint32(i.Ra)<<21 | uint32(i.Rb)<<16 | uint32(uint16(int16(i.Disp))), nil
	case FormatOpr:
		w |= uint32(i.Ra)<<21 | e.fn<<5 | uint32(i.Rc)
		if i.IsLit {
			return w | uint32(i.Lit)<<13 | 1<<12, nil
		}
		return w | uint32(i.Rb)<<16, nil
	case FormatBra:
		if i.Disp < -(1<<20) || i.Disp >= 1<<20 {
			return 0, fmt.Errorf("host: encode %v: displacement %d exceeds 21 bits", i.Op, i.Disp)
		}
		return w | uint32(i.Ra)<<21 | uint32(i.Disp)&0x1FFFFF, nil
	case FormatJmp:
		return w | uint32(i.Ra)<<21 | uint32(i.Rb)<<16 | e.fn<<14, nil
	}
	return 0, fmt.Errorf("host: encode: unhandled format for %v", i.Op)
}

// MustEncode encodes i and panics on error. For use with
// compile-time-constant instruction shapes.
func MustEncode(i Inst) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode decodes one 32-bit instruction word.
func Decode(w uint32) (Inst, error) {
	opcode := w >> 26
	switch opcode {
	case 0x00:
		return Inst{Op: BRKBT, Payload: w & 0x03FFFFFF}, nil
	case 0x10, 0x11, 0x12, 0x13:
		fn := w >> 5 & 0x7F
		op, ok := oprDecode[opcode<<7|fn]
		if !ok {
			return Inst{}, fmt.Errorf("host: decode %#08x: unknown operate function %#x", w, fn)
		}
		i := Inst{Op: op, Ra: Reg(w >> 21 & 31), Rc: Reg(w & 31)}
		if w>>12&1 == 1 {
			i.IsLit = true
			i.Lit = uint8(w >> 13)
		} else {
			i.Rb = Reg(w >> 16 & 31)
		}
		return i, nil
	case 0x1A:
		op, ok := jmpDecode[w>>14&3]
		if !ok {
			return Inst{}, fmt.Errorf("host: decode %#08x: unknown jump type", w)
		}
		return Inst{Op: op, Ra: Reg(w >> 21 & 31), Rb: Reg(w >> 16 & 31)}, nil
	}
	if op, ok := memDecode[opcode]; ok {
		return Inst{
			Op: op, Ra: Reg(w >> 21 & 31), Rb: Reg(w >> 16 & 31),
			Disp: int32(int16(w)),
		}, nil
	}
	if op, ok := braDecode[opcode]; ok {
		d := int32(w & 0x1FFFFF)
		if d&(1<<20) != 0 {
			d -= 1 << 21 // sign-extend 21-bit field
		}
		return Inst{Op: op, Ra: Reg(w >> 21 & 31), Disp: d}, nil
	}
	return Inst{}, fmt.Errorf("host: decode %#08x: unknown opcode %#x", w, opcode)
}
