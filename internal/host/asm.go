package host

import "fmt"

// Asm is a small host-code emitter used by the binary translator and the
// tests. It assembles a contiguous run of instruction words starting at a
// base address, with label/fixup support for local branches.
//
// Errors (bad displacement, unknown label) are sticky and reported by
// Finish, so emission code can be written straight-line.
type Asm struct {
	base   uint64
	words  []uint32
	labels map[string]int // label -> word index
	fixups []fixup
	err    error
}

type fixup struct {
	index int    // word to patch
	label string // target label
}

// NewAsm returns an emitter whose first instruction lands at base. The base
// must be 4-byte aligned.
func NewAsm(base uint64) *Asm {
	a := &Asm{base: base, labels: make(map[string]int)}
	if base%InstBytes != 0 {
		a.fail(fmt.Errorf("host: asm base %#x not instruction-aligned", base))
	}
	return a
}

func (a *Asm) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

// PC returns the address of the next instruction to be emitted.
func (a *Asm) PC() uint64 { return a.base + uint64(len(a.words))*InstBytes }

// Len returns the number of instructions emitted so far.
func (a *Asm) Len() int { return len(a.words) }

// Emit appends one instruction.
func (a *Asm) Emit(i Inst) {
	w, err := Encode(i)
	if err != nil {
		a.fail(err)
	}
	a.words = append(a.words, w)
}

// Label defines name at the current PC.
func (a *Asm) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.fail(fmt.Errorf("host: asm: duplicate label %q", name))
		return
	}
	a.labels[name] = len(a.words)
}

// Mem emits a memory-format instruction: op ra, disp(rb).
func (a *Asm) Mem(op Op, ra Reg, disp int32, rb Reg) {
	a.Emit(Inst{Op: op, Ra: ra, Rb: rb, Disp: disp})
}

// Opr emits a register operate instruction: op ra, rb, rc.
func (a *Asm) Opr(op Op, ra, rb, rc Reg) {
	a.Emit(Inst{Op: op, Ra: ra, Rb: rb, Rc: rc})
}

// OprLit emits a literal operate instruction: op ra, #lit, rc.
func (a *Asm) OprLit(op Op, ra Reg, lit uint8, rc Reg) {
	a.Emit(Inst{Op: op, Ra: ra, Lit: lit, IsLit: true, Rc: rc})
}

// Mov emits a register move (BIS rs, rs, rd).
func (a *Asm) Mov(rs, rd Reg) { a.Opr(BIS, rs, rs, rd) }

// Br emits a branch-format instruction targeting a local label, fixed up at
// Finish time.
func (a *Asm) Br(op Op, ra Reg, label string) {
	a.fixups = append(a.fixups, fixup{index: len(a.words), label: label})
	a.Emit(Inst{Op: op, Ra: ra})
}

// BrTo emits a branch-format instruction targeting an absolute address.
func (a *Asm) BrTo(op Op, ra Reg, target uint64) {
	d, ok := BrDispFor(a.PC(), target)
	if !ok {
		a.fail(fmt.Errorf("host: asm: branch at %#x to %#x out of range", a.PC(), target))
	}
	a.Emit(Inst{Op: op, Ra: ra, Disp: d})
}

// Jmp emits a jump-format instruction: op ra, (rb).
func (a *Asm) Jmp(op Op, ra, rb Reg) {
	a.Emit(Inst{Op: op, Ra: ra, Rb: rb})
}

// Brk emits a BRKBT runtime callback with the given service payload.
func (a *Asm) Brk(payload uint32) {
	a.Emit(Inst{Op: BRKBT, Payload: payload})
}

// MovImm materializes a 64-bit constant into r using LDA/LDAH/SLL
// combinations (2 instructions for values representable as sext32, more for
// wider constants).
func (a *Asm) MovImm(r Reg, v int64) {
	if v == int64(int32(v)) {
		lo := int16(v)
		hi := int32((v - int64(lo)) >> 16)
		switch {
		case hi == 0:
			a.Mem(LDA, r, int32(lo), Zero)
			return
		case hi == int32(int16(hi)):
			a.Mem(LDAH, r, hi, Zero)
			if lo != 0 {
				a.Mem(LDA, r, int32(lo), r)
			}
			return
		case hi == 0x8000:
			// The LDAH carry case (v near +2^31): split the high part over
			// two LDAHs — the intermediate overflows 32 bits but not 64.
			a.Mem(LDAH, r, 0x4000, Zero)
			a.Mem(LDAH, r, 0x4000, r)
			if lo != 0 {
				a.Mem(LDA, r, int32(lo), r)
			}
			return
		}
	}
	// General case: build from 16-bit chunks, shifting as we go.
	a.Mem(LDA, r, int32(int16(v>>48)), Zero)
	for shift := 32; shift >= 0; shift -= 16 {
		a.OprLit(SLL, r, 16, r)
		chunk := int16(v >> shift)
		if chunk != 0 {
			// LDA sign-extends; compensate by adding back 0x10000 when the
			// chunk is negative (the next shift folds the borrow away only
			// when one exists, so add explicitly).
			a.Mem(LDA, r, int32(chunk), r)
			if chunk < 0 {
				a.Mem(LDAH, r, 1, r)
			}
		}
	}
}

// Finish resolves fixups and returns the assembled instruction words.
func (a *Asm) Finish() ([]uint32, error) {
	for _, f := range a.fixups {
		idx, ok := a.labels[f.label]
		if !ok {
			a.fail(fmt.Errorf("host: asm: undefined label %q", f.label))
			continue
		}
		pc := a.base + uint64(f.index)*InstBytes
		target := a.base + uint64(idx)*InstBytes
		d, ok := BrDispFor(pc, target)
		if !ok {
			a.fail(fmt.Errorf("host: asm: branch to %q out of range", f.label))
			continue
		}
		a.words[f.index] = a.words[f.index]&^0x1FFFFF | uint32(d)&0x1FFFFF
	}
	if a.err != nil {
		return nil, a.err
	}
	return a.words, nil
}

// Bytes returns the assembled code as little-endian bytes.
func (a *Asm) Bytes() ([]byte, error) {
	words, err := a.Finish()
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(words)*InstBytes)
	for i, w := range words {
		out[4*i] = byte(w)
		out[4*i+1] = byte(w >> 8)
		out[4*i+2] = byte(w >> 16)
		out[4*i+3] = byte(w >> 24)
	}
	return out, nil
}
