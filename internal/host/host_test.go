package host

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// allOps enumerates every defined opcode.
func allOps() []Op {
	ops := make([]Op, 0, int(numOps))
	for op := Op(0); op < numOps; op++ {
		ops = append(ops, op)
	}
	return ops
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for _, op := range allOps() {
		for trial := 0; trial < 200; trial++ {
			in := Inst{Op: op, Ra: Reg(rnd.Intn(32)), Rb: Reg(rnd.Intn(32)), Rc: Reg(rnd.Intn(32))}
			switch FormatOf(op) {
			case FormatPAL:
				in.Ra, in.Rb, in.Rc = 0, 0, 0
				in.Payload = rnd.Uint32() & 0x03FFFFFF
			case FormatMem:
				in.Rc = 0
				in.Disp = int32(int16(rnd.Uint32()))
			case FormatOpr:
				if rnd.Intn(2) == 0 {
					in.IsLit = true
					in.Lit = uint8(rnd.Uint32())
					in.Rb = 0
				}
			case FormatBra:
				in.Rb, in.Rc = 0, 0
				in.Disp = rnd.Int31n(1<<21) - 1<<20
			case FormatJmp:
				in.Rc = 0
			}
			w, err := Encode(in)
			if err != nil {
				t.Fatalf("Encode(%+v): %v", in, err)
			}
			out, err := Decode(w)
			if err != nil {
				t.Fatalf("Decode(Encode(%+v)) = %#08x: %v", in, w, err)
			}
			if out != in {
				t.Fatalf("round trip %v: got %+v, want %+v", op, out, in)
			}
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	cases := []Inst{
		{Op: LDL, Ra: R1, Rb: R2, Disp: 1 << 15},
		{Op: LDL, Ra: R1, Rb: R2, Disp: -(1<<15 + 1)},
		{Op: BR, Ra: Zero, Disp: 1 << 20},
		{Op: BRKBT, Payload: 1 << 26},
		{Op: ADDQ, Ra: 32},
		{Op: numOps},
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v): want error", in)
		}
	}
}

func TestDecodeUnknown(t *testing.T) {
	for _, w := range []uint32{
		0x04 << 26,         // unassigned primary opcode
		0x10<<26 | 0x7F<<5, // unknown INTA function
		0x1A<<26 | 3<<14,   // unknown jump type
	} {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x): want error", w)
		}
	}
}

// TestUnalignedLoadComposition is the core property behind the paper's MDA
// code sequence (Fig. 2): for any quadword pair and any in-quad offset,
// extL(lo,ea) | extH(hi,ea) reconstructs the datum, where lo is the quad at
// ea&^7 and hi the quad at (ea+size-1)&^7.
func TestUnalignedLoadComposition(t *testing.T) {
	mem := make([]byte, 24)
	for i := range mem {
		mem[i] = byte(0xA0 + i)
	}
	quad := func(off int) uint64 {
		var v uint64
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(mem[off+i])
		}
		return v
	}
	want := func(ea, size int) uint64 {
		var v uint64
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(mem[ea+i])
		}
		return v
	}
	for _, size := range []int{2, 4, 8} {
		for ea := 0; ea < 12; ea++ {
			lo := quad(ea &^ 7)
			hi := quad((ea + size - 1) &^ 7)
			got := ExtLow(lo, uint64(ea), size) | ExtHigh(hi, uint64(ea), size)
			if got != want(ea, size) {
				t.Errorf("size %d ea %d: got %#x, want %#x", size, ea, got, want(ea, size))
			}
		}
	}
}

// TestUnalignedStoreComposition checks the INS/MSK store sequence (paper
// §III-A footnote / Alpha handbook): masked-merge into the covering quads
// writes exactly the stored bytes and no neighbors.
func TestUnalignedStoreComposition(t *testing.T) {
	for _, size := range []int{2, 4, 8} {
		for ea := 0; ea < 12; ea++ {
			mem := make([]byte, 24)
			for i := range mem {
				mem[i] = byte(0xA0 + i)
			}
			quad := func(off int) uint64 {
				var v uint64
				for i := 7; i >= 0; i-- {
					v = v<<8 | uint64(mem[off+i])
				}
				return v
			}
			putQuad := func(off int, v uint64) {
				for i := 0; i < 8; i++ {
					mem[off+i] = byte(v >> (8 * i))
				}
			}
			val := uint64(0x1122334455667788)
			loOff, hiOff := ea&^7, (ea+size-1)&^7
			lo, hi := quad(loOff), quad(hiOff)
			newHi := MskHigh(hi, uint64(ea), size) | InsHigh(val, uint64(ea), size)
			newLo := MskLow(lo, uint64(ea), size) | InsLow(val, uint64(ea), size)
			// Alpha sequence stores high quad first, then low, so that when
			// both map to the same quadword the low (complete) merge wins.
			putQuad(hiOff, newHi)
			putQuad(loOff, newLo)
			for i := 0; i < 24; i++ {
				var want byte
				if i >= ea && i < ea+size {
					want = byte(val >> (8 * (i - ea)))
				} else {
					want = byte(0xA0 + i)
				}
				if mem[i] != want {
					t.Errorf("size %d ea %d byte %d: got %#x, want %#x", size, ea, i, mem[i], want)
				}
			}
		}
	}
}

func TestExtInsMskQuickProperties(t *testing.T) {
	// INS then EXT at the same alignment recovers the value (for sizes where
	// no bits fall off: low part only when sh+8*size <= 64).
	f := func(v, ea uint64) bool {
		for _, size := range []int{1, 2, 4} {
			sh := ea & 7
			if int(sh)+size <= 8 {
				got := ExtLow(InsLow(v, ea, size), ea, size)
				if got != v&sizeMask(size) {
					return false
				}
			}
		}
		// MskLow then reading the cleared lane gives zero.
		if ExtLow(MskLow(v, ea, 4), ea, 4)&sizeMask(4) != 0 && ea&7 <= 4 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvalOpBasics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{ADDL, 0x7FFFFFFF, 1, 0xFFFFFFFF80000000}, // 32-bit overflow sign-extends
		{ADDQ, 1, 2, 3},
		{SUBL, 0, 1, 0xFFFFFFFFFFFFFFFF},
		{SUBQ, 5, 7, ^uint64(1)},
		{MULL, 0x10000, 0x10000, 0}, // low 32 bits zero
		{MULQ, 3, 5, 15},
		{CMPEQ, 4, 4, 1},
		{CMPLT, ^uint64(0), 0, 1}, // -1 < 0 signed
		{CMPULT, ^uint64(0), 0, 0},
		{CMPLE, 3, 3, 1},
		{CMPULE, 4, 3, 0},
		{AND, 0xF0, 0x3C, 0x30},
		{BIC, 0xFF, 0x0F, 0xF0},
		{BIS, 0xF0, 0x0F, 0xFF},
		{ORNOT, 0, 0, ^uint64(0)},
		{XOR, 0xFF, 0x0F, 0xF0},
		{EQV, 0xFF, 0xFF, ^uint64(0)},
		{SLL, 1, 65, 2}, // shift counts mod 64
		{SRL, 0x8000000000000000, 63, 1},
		{SRA, 0x8000000000000000, 63, ^uint64(0)},
	}
	for _, c := range cases {
		if got := EvalOp(c.op, c.a, c.b); got != c.want {
			t.Errorf("%v(%#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalOpPanicsOnNonOperate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EvalOp(BR) did not panic")
		}
	}()
	EvalOp(BR, 0, 0)
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op   Op
		av   uint64
		want bool
	}{
		{BR, 0, true}, {BSR, 0, true},
		{BEQ, 0, true}, {BEQ, 1, false},
		{BNE, 0, false}, {BNE, 1, true},
		{BLT, ^uint64(0), true}, {BLT, 0, false},
		{BLE, 0, true}, {BLE, 1, false},
		{BGT, 1, true}, {BGT, 0, false},
		{BGE, 0, true}, {BGE, ^uint64(0), false},
		{BLBC, 2, true}, {BLBC, 3, false},
		{BLBS, 3, true}, {BLBS, 2, false},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.av); got != c.want {
			t.Errorf("BranchTaken(%v, %#x) = %v, want %v", c.op, c.av, got, c.want)
		}
	}
}

func TestBrDispFor(t *testing.T) {
	if d, ok := BrDispFor(0x1000, 0x1004); !ok || d != 0 {
		t.Errorf("fallthrough disp = %d,%v, want 0,true", d, ok)
	}
	if d, ok := BrDispFor(0x1000, 0x1000); !ok || d != -1 {
		t.Errorf("self-branch disp = %d,%v, want -1,true", d, ok)
	}
	if _, ok := BrDispFor(0x1000, 0x1002); ok {
		t.Error("unaligned target accepted")
	}
	if _, ok := BrDispFor(0, 1<<23); ok {
		t.Error("out-of-range target accepted")
	}
	// Round trip through the instruction encoding.
	d, _ := BrDispFor(0x2000, 0x1F00)
	i := Inst{Op: BR, Ra: Zero, Disp: d}
	if got := i.BranchTarget(0x2000); got != 0x1F00 {
		t.Errorf("BranchTarget = %#x, want 0x1F00", got)
	}
}

func TestOpPredicates(t *testing.T) {
	if !LDL.IsLoad() || LDL.IsStore() || LDL.MemSize() != 4 || !LDL.Aligns() {
		t.Error("LDL predicates wrong")
	}
	if !STQU.IsStore() || STQU.Aligns() || STQU.MemSize() != 8 {
		t.Error("STQU predicates wrong")
	}
	if LDBU.Aligns() || LDQU.Aligns() {
		t.Error("byte/unaligned ops must not require alignment")
	}
	if ADDQ.MemSize() != 0 || ADDQ.IsLoad() || ADDQ.IsStore() {
		t.Error("ADDQ predicates wrong")
	}
}

func TestDisasm(t *testing.T) {
	cases := []struct {
		i    Inst
		pc   uint64
		want string
	}{
		{Inst{Op: LDL, Ra: R1, Rb: R2, Disp: 2}, 0, "ldl\tr1, 2(r2)"},
		{Inst{Op: LDQU, Ra: R21, Rb: R2, Disp: 5}, 0, "ldq_u\tr21, 5(r2)"},
		{Inst{Op: ADDL, Ra: R31, Rb: R1, Rc: R1}, 0, "addl\tzero, r1, r1"},
		{Inst{Op: SLL, Ra: R3, Lit: 16, IsLit: true, Rc: R3}, 0, "sll\tr3, #16, r3"},
		{Inst{Op: BR, Ra: Zero, Disp: 1}, 0x1000, "br\t0x1008"},
		{Inst{Op: BNE, Ra: R5, Disp: -2}, 0x1000, "bne\tr5, 0xffc"},
		{Inst{Op: RET, Ra: Zero, Rb: R26}, 0, "ret\tzero, (r26)"},
		{Inst{Op: BRKBT, Payload: 7}, 0, "brkbt\t0x7"},
	}
	for _, c := range cases {
		if got := Disasm(c.pc, c.i); got != c.want {
			t.Errorf("Disasm(%+v) = %q, want %q", c.i, got, c.want)
		}
	}
	if got := DisasmWord(0, 0x04<<26); !strings.HasPrefix(got, ".word") {
		t.Errorf("DisasmWord(bad) = %q, want .word", got)
	}
	if got := DisasmWord(0, MustEncode(Inst{Op: ADDQ, Ra: R1, Rb: R2, Rc: R3})); got != "addq\tr1, r2, r3" {
		t.Errorf("DisasmWord = %q", got)
	}
}

func TestAsmLabels(t *testing.T) {
	a := NewAsm(0x10000)
	a.Label("top")
	a.OprLit(SUBQ, R1, 1, R1)
	a.Br(BNE, R1, "top")
	a.Br(BR, Zero, "out")
	a.Opr(ADDQ, R31, R31, R31) // skipped
	a.Label("out")
	words, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 4 {
		t.Fatalf("len = %d, want 4", len(words))
	}
	bne, _ := Decode(words[1])
	if got := bne.BranchTarget(0x10004); got != 0x10000 {
		t.Errorf("bne target = %#x, want 0x10000", got)
	}
	br, _ := Decode(words[2])
	if got := br.BranchTarget(0x10008); got != 0x10010 {
		t.Errorf("br target = %#x, want 0x10010", got)
	}
}

func TestAsmErrors(t *testing.T) {
	a := NewAsm(0x1000)
	a.Br(BR, Zero, "nowhere")
	if _, err := a.Finish(); err == nil {
		t.Error("undefined label: want error")
	}
	a = NewAsm(0x1000)
	a.Label("x")
	a.Label("x")
	if _, err := a.Finish(); err == nil {
		t.Error("duplicate label: want error")
	}
	a = NewAsm(0x1001)
	if _, err := a.Finish(); err == nil {
		t.Error("misaligned base: want error")
	}
	a = NewAsm(0x1000)
	a.BrTo(BR, Zero, 1<<40)
	if _, err := a.Finish(); err == nil {
		t.Error("out-of-range BrTo: want error")
	}
}

func TestAsmBytes(t *testing.T) {
	a := NewAsm(0)
	a.Opr(ADDQ, R1, R2, R3)
	b, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	w := MustEncode(Inst{Op: ADDQ, Ra: R1, Rb: R2, Rc: R3})
	want := []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, b[i], want[i])
		}
	}
}

func TestRegString(t *testing.T) {
	if R31.String() != "zero" || R4.String() != "r4" {
		t.Error("Reg.String wrong")
	}
}

func BenchmarkDecode(b *testing.B) {
	w := MustEncode(Inst{Op: LDL, Ra: R1, Rb: R2, Disp: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(w); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodeNeverPanics feeds random words to the decoder: decode or error,
// never panic; successful decodes re-encode to the identical word.
func TestDecodeNeverPanics(t *testing.T) {
	rnd := rand.New(rand.NewSource(78))
	for i := 0; i < 500000; i++ {
		w := rnd.Uint32()
		inst, err := Decode(w)
		if err != nil {
			continue
		}
		out, eerr := Encode(inst)
		if eerr != nil {
			t.Fatalf("decoded inst %+v does not re-encode: %v", inst, eerr)
		}
		// Memory/branch/PAL formats are bijective; operate formats have
		// must-be-zero bits that decode ignores, so compare semantically.
		back, derr := Decode(out)
		if derr != nil || back != inst {
			t.Fatalf("%#08x: re-encode round trip %+v != %+v", w, back, inst)
		}
	}
}

func TestMovImmInstructionBudget(t *testing.T) {
	// Immediate materialization stays within a small, predictable budget:
	// ≤2 instructions for sext32 values, ≤8 for arbitrary 64-bit ones.
	cases := []struct {
		v   int64
		max int
	}{
		{0, 1}, {1, 1}, {-1, 1}, {32767, 1}, {-32768, 1},
		{32768, 2}, {1 << 20, 1}, {1<<20 + 5, 2},
		{0x7FFFFFFF, 3}, {0x7FFF8000, 3}, {-0x80000000, 1},
		{1 << 33, 8}, {-(1 << 40), 8}, {0x0123456789ABCDEF, 10},
	}
	for _, c := range cases {
		a := NewAsm(0x1000)
		a.MovImm(R1, c.v)
		if a.Len() > c.max {
			t.Errorf("MovImm(%#x): %d insts, budget %d", c.v, a.Len(), c.max)
		}
	}
}

func TestBranchTargetRoundTripProperty(t *testing.T) {
	// For every in-range displacement, BranchTarget∘BrDispFor is identity.
	f := func(pcSel uint16, dSel int32) bool {
		pc := uint64(pcSel) * 4
		d := dSel % (1 << 20)
		target := uint64(int64(pc) + 4 + int64(d)*4)
		if int64(target) < 0 {
			return true
		}
		got, ok := BrDispFor(pc, target)
		if !ok {
			return false
		}
		i := Inst{Op: BR, Ra: Zero, Disp: got}
		return i.BranchTarget(pc) == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatOfCoversAllOps(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		// Must not panic and must agree with the encodings table.
		f := FormatOf(op)
		w, err := Encode(exampleInst(op))
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		back, err := Decode(w)
		if err != nil {
			t.Fatalf("%v: decode: %v", op, err)
		}
		if FormatOf(back.Op) != f {
			t.Fatalf("%v: format changed across round trip", op)
		}
	}
}

func exampleInst(op Op) Inst {
	switch FormatOf(op) {
	case FormatPAL:
		return Inst{Op: op, Payload: 5}
	case FormatMem:
		return Inst{Op: op, Ra: R1, Rb: R2, Disp: 4}
	case FormatOpr:
		return Inst{Op: op, Ra: R1, Rb: R2, Rc: R3}
	case FormatBra:
		return Inst{Op: op, Ra: R1, Disp: 2}
	default:
		return Inst{Op: op, Ra: R1, Rb: R2}
	}
}

func TestSizeMaskAndExtremes(t *testing.T) {
	if sizeMask(8) != ^uint64(0) || sizeMask(1) != 0xFF || sizeMask(2) != 0xFFFF || sizeMask(4) != 0xFFFFFFFF {
		t.Fatal("sizeMask wrong")
	}
	// Quadword high extraction at offset 0 must be zero so OR is safe.
	if ExtHigh(^uint64(0), 0, 8) != 0 {
		t.Fatal("ExtHigh at aligned address must be 0")
	}
	// Mask high at offset 0 must preserve the quadword.
	if MskHigh(0x1234, 0, 8) != 0x1234 {
		t.Fatal("MskHigh at aligned address must be identity")
	}
	// Insert low of a full quadword at offset 0 is identity.
	if InsLow(0xDEADBEEF, 0, 8) != 0xDEADBEEF {
		t.Fatal("InsLow at aligned address must be identity")
	}
}

func TestDisasmAllOps(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		out := Disasm(0x1000, exampleInst(op))
		if len(out) == 0 {
			t.Fatalf("%d: empty disassembly", op)
		}
		mnemonic := op.String()
		if op == BR { // special-cased plain form
			mnemonic = "br"
		}
		if !strings.HasPrefix(out, mnemonic) {
			t.Errorf("Disasm(%v) = %q, want prefix %q", op, out, mnemonic)
		}
	}
}

func TestMemSizeConsistency(t *testing.T) {
	// Loads/stores declare a size; Aligns() implies size > 1; LDA/LDAH are
	// not memory accesses.
	for op := Op(0); op < numOps; op++ {
		sz := op.MemSize()
		if (op.IsLoad() || op.IsStore()) && sz == 0 {
			t.Errorf("%v: memory op without size", op)
		}
		if op.Aligns() && sz <= 1 {
			t.Errorf("%v: aligns but size %d", op, sz)
		}
		if (op == LDA || op == LDAH) && (op.IsLoad() || op.IsStore() || sz != 0) {
			t.Errorf("%v misclassified as memory access", op)
		}
	}
}
