package host

// Pure operate-format semantics, shared by the machine simulator and the
// tests. All functions take and return 64-bit register values.

func sext32(v uint64) uint64 { return uint64(int64(int32(v))) }

// sizeMask returns the low-byte mask for an access size in bytes.
func sizeMask(size int) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return 1<<(8*size) - 1
}

// ExtLow implements EXT{B,W,L,Q}L: extract the low part of an unaligned
// datum. av is the quadword loaded by LDQ_U at the effective address; bv is
// the effective address (only bits <2:0> participate).
func ExtLow(av, bv uint64, size int) uint64 {
	return av >> (8 * (bv & 7)) & sizeMask(size)
}

// ExtHigh implements EXT{W,L,Q}H: extract the high part of an unaligned
// datum from the quadword covering its end. When the address is
// quadword-aligned the result is zero, so ORing low and high parts is
// correct for every alignment.
func ExtHigh(av, bv uint64, size int) uint64 {
	sh := 8 * (bv & 7)
	if sh == 0 {
		return 0
	}
	return av << (64 - sh) & sizeMask(size)
}

// InsLow implements INS{B,W,L,Q}L: position the low part of a value for an
// unaligned store into the quadword at the effective address.
func InsLow(av, bv uint64, size int) uint64 {
	return (av & sizeMask(size)) << (8 * (bv & 7))
}

// InsHigh implements INS{W,L,Q}H: position the high spill-over part of a
// value for an unaligned store into the following quadword.
func InsHigh(av, bv uint64, size int) uint64 {
	sh := 8 * (bv & 7)
	if sh == 0 {
		return 0
	}
	return (av & sizeMask(size)) >> (64 - sh)
}

// MskLow implements MSK{B,W,L,Q}L: clear the bytes of the low quadword that
// the unaligned store will overwrite.
func MskLow(av, bv uint64, size int) uint64 {
	return av &^ (sizeMask(size) << (8 * (bv & 7)))
}

// MskHigh implements MSK{W,L,Q}H: clear the bytes of the high quadword that
// the unaligned store will overwrite. When the address is quadword-aligned
// nothing spills, so the quadword is returned unchanged.
func MskHigh(av, bv uint64, size int) uint64 {
	sh := 8 * (bv & 7)
	if sh == 0 {
		return av
	}
	return av &^ (sizeMask(size) >> (64 - sh))
}

// EvalOp evaluates an operate-format opcode on two source values. It panics
// on non-operate opcodes; the machine's decoder guarantees it is only called
// with operate instructions.
func EvalOp(op Op, av, bv uint64) uint64 {
	switch op {
	case ADDL:
		return sext32(av + bv)
	case SUBL:
		return sext32(av - bv)
	case ADDQ:
		return av + bv
	case SUBQ:
		return av - bv
	case MULL:
		return sext32(av * bv)
	case MULQ:
		return av * bv
	case CMPEQ:
		return b2i(av == bv)
	case CMPLT:
		return b2i(int64(av) < int64(bv))
	case CMPLE:
		return b2i(int64(av) <= int64(bv))
	case CMPULT:
		return b2i(av < bv)
	case CMPULE:
		return b2i(av <= bv)
	case AND:
		return av & bv
	case BIC:
		return av &^ bv
	case BIS:
		return av | bv
	case ORNOT:
		return av | ^bv
	case XOR:
		return av ^ bv
	case EQV:
		return av ^ ^bv
	case SLL:
		return av << (bv & 63)
	case SRL:
		return av >> (bv & 63)
	case SRA:
		return uint64(int64(av) >> (bv & 63))
	case EXTBL:
		return ExtLow(av, bv, 1)
	case EXTWL:
		return ExtLow(av, bv, 2)
	case EXTLL:
		return ExtLow(av, bv, 4)
	case EXTQL:
		return ExtLow(av, bv, 8)
	case EXTWH:
		return ExtHigh(av, bv, 2)
	case EXTLH:
		return ExtHigh(av, bv, 4)
	case EXTQH:
		return ExtHigh(av, bv, 8)
	case INSBL:
		return InsLow(av, bv, 1)
	case INSWL:
		return InsLow(av, bv, 2)
	case INSLL:
		return InsLow(av, bv, 4)
	case INSQL:
		return InsLow(av, bv, 8)
	case INSWH:
		return InsHigh(av, bv, 2)
	case INSLH:
		return InsHigh(av, bv, 4)
	case INSQH:
		return InsHigh(av, bv, 8)
	case MSKBL:
		return MskLow(av, bv, 1)
	case MSKWL:
		return MskLow(av, bv, 2)
	case MSKLL:
		return MskLow(av, bv, 4)
	case MSKQL:
		return MskLow(av, bv, 8)
	case MSKWH:
		return MskHigh(av, bv, 2)
	case MSKLH:
		return MskHigh(av, bv, 4)
	case MSKQH:
		return MskHigh(av, bv, 8)
	}
	panic("host: EvalOp: " + op.String() + " is not an operate opcode")
}

func b2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BranchTaken evaluates a conditional branch predicate on Ra's value. BR and
// BSR are unconditionally taken. It panics on non-branch opcodes.
func BranchTaken(op Op, av uint64) bool {
	switch op {
	case BR, BSR:
		return true
	case BEQ:
		return av == 0
	case BNE:
		return av != 0
	case BLT:
		return int64(av) < 0
	case BLE:
		return int64(av) <= 0
	case BGT:
		return int64(av) > 0
	case BGE:
		return int64(av) >= 0
	case BLBC:
		return av&1 == 0
	case BLBS:
		return av&1 == 1
	}
	panic("host: BranchTaken: " + op.String() + " is not a branch opcode")
}
