// Package perfbench measures the simulator's hot paths layer by layer: raw
// simulated-memory access, guest decode+execute, the interpreter loop, the
// translated-code dispatch loop, and an end-to-end DBT run reported in guest
// MIPS. The same per-op closures back both the standard `go test -bench`
// entry points (perfbench_test.go) and Collect, which runs the whole suite
// programmatically and emits a JSON summary (BENCH_2.json at the repo root)
// so the engine's performance trajectory is tracked across PRs.
//
// The suite is a measurement harness, not a correctness harness: the
// chaos/co-simulation tests prove the fast paths change cost, never results.
package perfbench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"mdabt/internal/core"
	"mdabt/internal/guest"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
)

// Bench is one microbenchmark: Make builds the per-op closure (setup cost is
// excluded from timing); UnitsPerOp is how many units one op performs, under
// the name Unit ("access", "guest-inst", ...).
type Bench struct {
	Name       string
	Unit       string
	UnitsPerOp uint64
	Make       func() (op func(), err error)
}

// Result is one benchmark's measurement, JSON-shaped for BENCH_2.json.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Unit        string  `json:"unit,omitempty"`
	UnitsPerOp  uint64  `json:"units_per_op,omitempty"`
	NsPerUnit   float64 `json:"ns_per_unit,omitempty"`
	// GuestMIPS is millions of guest instructions simulated per wall-clock
	// second; only set for benchmarks whose unit is guest instructions.
	GuestMIPS float64 `json:"guest_mips,omitempty"`
}

// Summary is the whole suite's output plus environment stamps.
type Summary struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	When      string   `json:"when"`
	Note      string   `json:"note,omitempty"`
	Results   []Result `json:"results"`
	// WallClocks records before/after end-to-end timings for optimisation
	// rounds (filled in by hand when a baseline is checked in; Collect
	// leaves it empty).
	WallClocks []WallClock `json:"wall_clocks,omitempty"`
}

// WallClock is one recorded end-to-end timing comparison.
type WallClock struct {
	Name      string  `json:"name"`
	BeforeSec float64 `json:"before_sec"`
	AfterSec  float64 `json:"after_sec"`
	Speedup   float64 `json:"speedup"`
	Note      string  `json:"note,omitempty"`
}

// Suite returns the layer-by-layer benchmarks, bottom of the stack first.
func Suite() []Bench {
	return []Bench{
		MemReadWrite(),
		GuestExec(),
		InterpreterLoop(),
		DispatchLoop(),
		DispatchLoopTraced(),
		EndToEnd(),
	}
}

// Collect runs the suite via testing.Benchmark and assembles the summary.
func Collect(note string) (*Summary, error) {
	s := &Summary{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		When:      time.Now().UTC().Format(time.RFC3339),
		Note:      note,
	}
	for _, bench := range Suite() {
		op, err := bench.Make()
		if err != nil {
			return nil, fmt.Errorf("perfbench: %s: %w", bench.Name, err)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
		res := Result{
			Name:        bench.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			Unit:        bench.Unit,
			UnitsPerOp:  bench.UnitsPerOp,
		}
		if bench.UnitsPerOp > 0 {
			res.NsPerUnit = res.NsPerOp / float64(bench.UnitsPerOp)
			if bench.Unit == "guest-inst" && res.NsPerOp > 0 {
				res.GuestMIPS = float64(bench.UnitsPerOp) / res.NsPerOp * 1e3
			}
		}
		s.Results = append(s.Results, res)
	}
	return s, nil
}

// WriteFile writes the summary as indented JSON to path.
func (s *Summary) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ---------------------------------------------------------------------------
// Layer 1: simulated memory.

// memAccessesPerOp is the number of read/write pairs one MemReadWrite op
// performs, spread over a working set larger than one page so the two-level
// page walk and last-page cache are both exercised.
const memAccessesPerOp = 1024

// MemReadWrite measures internal/mem's Read/Write fast paths: mixed-size
// aligned and misaligned accesses over a multi-page working set. Steady
// state must be allocation-free (TestSteadyStateAllocs enforces it).
func MemReadWrite() Bench {
	return Bench{
		Name:       "mem-read-write",
		Unit:       "access",
		UnitsPerOp: 2 * memAccessesPerOp,
		Make: func() (func(), error) {
			m := mem.New()
			const base = uint64(guest.DataBase)
			const setMask = 2*mem.PageSize - 1 // two-page working set
			// Touch the working set (plus the page the +8/crossing accesses
			// can spill into) once so steady state allocates nothing.
			for i := uint64(0); i <= setMask+16; i += mem.PageSize {
				m.Write8(base+i, 0)
			}
			var sink uint64
			op := func() {
				addr := base
				for i := 0; i < memAccessesPerOp/2; i++ {
					// An odd stride walks both pages and keeps about half
					// the accesses misaligned (some crossing pages).
					m.Write32(addr, uint32(i))
					sink += uint64(m.Read32(addr))
					m.Write64(addr+8, sink)
					sink += m.Read64(addr + 8)
					addr = base + (addr-base+1029)&setMask
				}
			}
			return op, nil
		},
	}
}

// ---------------------------------------------------------------------------
// Layer 2: guest decode + execute.

// guestKernel builds a small self-contained guest loop: iters iterations of
// an 8-instruction body doing aligned and misaligned loads/stores plus ALU
// work, then HALT. It returns the image and the entry PC.
func guestKernel(iters int32) ([]byte, uint32, error) {
	b := guest.NewBuilder()
	b.MovImm(guest.EAX, int32(guest.DataBase))
	b.MovImm(guest.ECX, iters)
	b.Label("loop")
	b.Load(guest.LD4, guest.EBX, guest.MemRef{Base: guest.EAX, Disp: 0})
	b.ALUImm(guest.ADDri, guest.EBX, 3)
	b.Load(guest.LD4, guest.EDX, guest.MemRef{Base: guest.EAX, Disp: 1}) // misaligned
	b.ALU(guest.XORrr, guest.EBX, guest.EDX)
	b.Store(guest.ST4, guest.MemRef{Base: guest.EAX, Disp: 8}, guest.EBX)
	b.Store(guest.ST2, guest.MemRef{Base: guest.EAX, Disp: 13}, guest.EDX) // misaligned
	b.ALUImm(guest.SUBri, guest.ECX, 1)
	b.Jcc(guest.NE, "loop")
	b.Halt()
	img, err := b.Build(guest.CodeBase)
	return img, guest.CodeBase, err
}

// guestKernelInsts counts the guest instructions one full run of
// guestKernel(iters) executes (2 prologue + 8 per iteration + HALT).
func guestKernelInsts(iters uint64) uint64 { return 2 + 8*iters + 1 }

// GuestExec measures the reference CPU's decode-once/execute-many path: the
// guest kernel runs off a predecoded instruction cache, so the op cost is
// CPU.Exec plus the decode-cache probe — the interpreter's inner step
// without its profiling bookkeeping.
func GuestExec() Bench {
	const iters = 256
	return Bench{
		Name:       "guest-exec",
		Unit:       "guest-inst",
		UnitsPerOp: guestKernelInsts(iters),
		Make: func() (func(), error) {
			img, entry, err := guestKernel(iters)
			if err != nil {
				return nil, err
			}
			m := mem.New()
			m.WriteBytes(uint64(entry), img)
			cpu := &guest.CPU{}
			// Predecode the whole image once.
			type dec struct {
				inst guest.Inst
				n    int
			}
			decoded := make([]dec, len(img))
			for off := 0; off < len(img); {
				inst, n, derr := guest.Decode(img[off:])
				if derr != nil {
					return nil, derr
				}
				decoded[off] = dec{inst, n}
				off += n
			}
			op := func() {
				cpu.Reset(entry)
				for !cpu.Halted {
					d := &decoded[cpu.EIP-entry]
					if _, err := cpu.Exec(m, cpu.EIP, &d.inst, d.n); err != nil {
						panic(err)
					}
				}
			}
			return op, nil
		},
	}
}

// ---------------------------------------------------------------------------
// Layer 3: the interpreter loop (engine phase 1).

// InterpreterLoop measures the engine's interpreted path: heat threshold set
// above any reachable count, so every block execution goes through
// interpretBlock with full MDA profiling and cycle accounting.
func InterpreterLoop() Bench {
	const iters = 256
	return Bench{
		Name:       "interp-block",
		Unit:       "guest-inst",
		UnitsPerOp: guestKernelInsts(iters),
		Make: func() (func(), error) {
			img, entry, err := guestKernel(iters)
			if err != nil {
				return nil, err
			}
			m := mem.New()
			m.WriteBytes(uint64(entry), img)
			mach := machine.New(m, machine.DefaultParams())
			opt := core.DefaultOptions(core.DynamicProfile)
			opt.HeatThreshold = 1 << 62 // never translate: pure interpretation
			eng := core.NewEngine(m, mach, opt)
			op := func() {
				if err := eng.Run(entry, 1<<62); err != nil {
					panic(err)
				}
			}
			return op, nil
		},
	}
}

// ---------------------------------------------------------------------------
// Layer 4: the dispatch loop over translated code.

// DispatchLoop measures steady-state translated execution: the guest kernel
// is fully translated during a warm-up run, then each op re-enters Run and
// executes native blocks through the PC-indexed lookup table. Steady state
// must be allocation-free (TestSteadyStateAllocs enforces it).
func DispatchLoop() Bench {
	const iters = 256
	return Bench{
		Name:       "dispatch-loop",
		Unit:       "guest-inst",
		UnitsPerOp: guestKernelInsts(iters),
		Make: func() (func(), error) {
			img, entry, err := guestKernel(iters)
			if err != nil {
				return nil, err
			}
			m := mem.New()
			m.WriteBytes(uint64(entry), img)
			mach := machine.New(m, machine.DefaultParams())
			// Direct translation: no profiling phase, no trap patching, so
			// after warm-up every op is dispatch + native execution only.
			eng := core.NewEngine(m, mach, core.DefaultOptions(core.Direct))
			if err := eng.Run(entry, 1<<62); err != nil { // warm-up: translate everything
				return nil, err
			}
			op := func() {
				if err := eng.Run(entry, 1<<62); err != nil {
					panic(err)
				}
			}
			return op, nil
		},
	}
}

// DispatchLoopTraced is DispatchLoop with the direct-chaining trace tier
// (Options.Traces) enabled: after warm-up the machine has pre-resolved
// every translated block into step-list traces chained through the patched
// exits, so each op measures pure trace execution — no per-instruction
// fetch/decode, no dispatcher round trips beyond the kernel's own BRKBT
// exits. The simulated results are bit-identical to DispatchLoop; only the
// wall clock changes, and the dispatch-tax speedup is their ratio
// (recorded in BENCH_3.json by CollectTraceComparison).
func DispatchLoopTraced() Bench {
	const iters = 256
	return Bench{
		Name:       "dispatch-loop-traced",
		Unit:       "guest-inst",
		UnitsPerOp: guestKernelInsts(iters),
		Make: func() (func(), error) {
			img, entry, err := guestKernel(iters)
			if err != nil {
				return nil, err
			}
			m := mem.New()
			m.WriteBytes(uint64(entry), img)
			mach := machine.New(m, machine.DefaultParams())
			opt := core.DefaultOptions(core.Direct)
			opt.Traces = true
			eng := core.NewEngine(m, mach, opt)
			if err := eng.Run(entry, 1<<62); err != nil { // warm-up: translate + trace everything
				return nil, err
			}
			op := func() {
				if err := eng.Run(entry, 1<<62); err != nil {
					panic(err)
				}
			}
			return op, nil
		},
	}
}

// CollectTraceComparison measures the generic dispatch loop and its traced
// counterpart back to back in one process — the only apples-to-apples way
// on a shared machine — and records the speedup as a WallClock entry. This
// is the `make trace-bench` payload (BENCH_3.json).
func CollectTraceComparison(note string) (*Summary, error) {
	s := &Summary{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		When:      time.Now().UTC().Format(time.RFC3339),
		Note:      note,
	}
	measure := func(bench Bench) (Result, error) {
		op, err := bench.Make()
		if err != nil {
			return Result{}, fmt.Errorf("perfbench: %s: %w", bench.Name, err)
		}
		// Best of three testing.Benchmark rounds: the ratio is between two
		// in-process measurements, so the mins cancel shared-machine noise.
		var best *testing.BenchmarkResult
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					op()
				}
			})
			nsOp := float64(r.T.Nanoseconds()) / float64(r.N)
			if best == nil || nsOp < float64(best.T.Nanoseconds())/float64(best.N) {
				rr := r
				best = &rr
			}
		}
		res := Result{
			Name:        bench.Name,
			NsPerOp:     float64(best.T.Nanoseconds()) / float64(best.N),
			AllocsPerOp: best.AllocsPerOp(),
			Unit:        bench.Unit,
			UnitsPerOp:  bench.UnitsPerOp,
		}
		res.NsPerUnit = res.NsPerOp / float64(bench.UnitsPerOp)
		if res.NsPerOp > 0 {
			res.GuestMIPS = float64(bench.UnitsPerOp) / res.NsPerOp * 1e3
		}
		return res, nil
	}
	generic, err := measure(DispatchLoop())
	if err != nil {
		return nil, err
	}
	traced, err := measure(DispatchLoopTraced())
	if err != nil {
		return nil, err
	}
	s.Results = append(s.Results, generic, traced)
	s.WallClocks = append(s.WallClocks, WallClock{
		Name:      "dispatch-loop: generic dispatch → direct-chained traces",
		BeforeSec: generic.NsPerOp / 1e9,
		AfterSec:  traced.NsPerOp / 1e9,
		Speedup:   generic.NsPerOp / traced.NsPerOp,
		Note:      "same process, best of 3 rounds each; simulated results bit-identical",
	})
	return s, nil
}

// ---------------------------------------------------------------------------
// Layer 5: end-to-end DBT throughput.

// EndToEnd measures a full DPEH run — interpret, heat, translate, trap,
// patch — on a fresh engine each op, reported in guest MIPS. This is the
// number the experiment suite's wall clock is made of.
func EndToEnd() Bench {
	const iters = 4096
	return Bench{
		Name:       "end-to-end-dpeh",
		Unit:       "guest-inst",
		UnitsPerOp: guestKernelInsts(iters),
		Make: func() (func(), error) {
			img, entry, err := guestKernel(iters)
			if err != nil {
				return nil, err
			}
			op := func() {
				m := mem.New()
				m.WriteBytes(uint64(entry), img)
				mach := machine.New(m, machine.DefaultParams())
				eng := core.NewEngine(m, mach, core.DefaultOptions(core.DPEH))
				if err := eng.Run(entry, 1<<62); err != nil {
					panic(err)
				}
			}
			return op, nil
		},
	}
}
