package perfbench

import (
	"testing"
)

// runBench adapts a suite entry to the standard testing harness.
func runBench(b *testing.B, bench Bench) {
	b.Helper()
	op, err := bench.Make()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
	if bench.UnitsPerOp > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(bench.UnitsPerOp),
			"ns/"+bench.Unit)
	}
}

func BenchmarkMemReadWrite(b *testing.B)       { runBench(b, MemReadWrite()) }
func BenchmarkGuestExec(b *testing.B)          { runBench(b, GuestExec()) }
func BenchmarkInterpreterLoop(b *testing.B)    { runBench(b, InterpreterLoop()) }
func BenchmarkDispatchLoop(b *testing.B)       { runBench(b, DispatchLoop()) }
func BenchmarkDispatchLoopTraced(b *testing.B) { runBench(b, DispatchLoopTraced()) }
func BenchmarkEndToEnd(b *testing.B)           { runBench(b, EndToEnd()) }

// TestSteadyStateAllocs pins the PR's allocation-free guarantee: after
// warm-up, the simulated-memory fast paths and the translated-code dispatch
// loop must not allocate. (AllocsPerRun performs one untimed warm-up call,
// which absorbs lazy page/iline allocation.)
func TestSteadyStateAllocs(t *testing.T) {
	for _, bench := range []Bench{MemReadWrite(), DispatchLoop()} {
		op, err := bench.Make()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		if allocs := testing.AllocsPerRun(20, op); allocs > 0 {
			t.Errorf("%s: %v allocs per op in steady state, want 0", bench.Name, allocs)
		}
	}
}

// TestSuiteRuns smoke-tests every suite entry: one op each must complete
// without panicking (the suite's ops panic on internal errors).
func TestSuiteRuns(t *testing.T) {
	for _, bench := range Suite() {
		op, err := bench.Make()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		op()
		if bench.UnitsPerOp == 0 {
			t.Errorf("%s: UnitsPerOp not set", bench.Name)
		}
	}
}
