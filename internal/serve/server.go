package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mdabt/internal/core"
	"mdabt/internal/faultinject"
	"mdabt/internal/guest"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
	"mdabt/internal/store"
)

// Request describes one guest program execution.
type Request struct {
	// Key names the logical program for circuit breaking; requests sharing
	// a Key share a breaker. Empty opts out of circuit breaking.
	Key string

	// Image is a guest binary image, loaded at Base (default
	// guest.CodeBase); execution starts at Entry (default Base). Data, when
	// non-empty, is additionally loaded at DataBase (default
	// guest.DataBase).
	Image    []byte
	Base     uint32
	Entry    uint32
	Data     []byte
	DataBase uint32

	// Load, when non-nil, replaces the Image/Data path: it populates the
	// (freshly reset) guest address space itself and returns the entry PC.
	// It must be idempotent — a retried request calls it again on a reset
	// memory. Workload programs plug in here (Program.Load).
	Load func(m *mem.Memory) uint32

	// StoreKey names the program for the persistent artifact store
	// (ServerOptions.Store): requests sharing a StoreKey share warm-start
	// artifacts and aggregate into one trap profile. Empty derives it
	// from the Image/Data content hash; loader-hook requests without an
	// explicit StoreKey bypass the store (no stable content identity).
	StoreKey string

	// Options configures the translator for this request; nil selects the
	// server default. The fault plan inside (if any) must be private to
	// this request — use faultinject.Plan.Fork per request.
	Options *core.Options

	// Budget bounds simulated host instructions (default: server default).
	Budget uint64

	// Timeout bounds wall-clock execution; the engine aborts within one
	// budget slice of the deadline. Zero inherits ctx's deadline only.
	Timeout time.Duration
}

// Result is the outcome of one completed request. Counters and Stats are
// the same values a dedicated single-engine run would produce: pooling,
// retries, and slicing are invisible to the simulation's accounting.
type Result struct {
	CPU      guest.CPU
	Counters machine.Counters
	Stats    core.Stats
	CodeUsed uint64 // code-cache bytes at completion
	Attempts int    // 1 unless transient failures were retried
	Worker   int    // worker that produced the result
	// Traces is the host-side trace-tier telemetry this request generated
	// (all zero unless Options.Traces). Engine reuse makes the machine's
	// own counters cumulative, so this is the per-request delta.
	Traces machine.TraceStats
}

// ServerOptions configures a Server.
type ServerOptions struct {
	// Pool configures the underlying worker pool.
	Pool Options
	// Run is the default translator configuration (nil: the paper-default
	// exception-handling mechanism).
	Run *core.Options
	// Budget is the default per-request host-instruction budget
	// (default 4e9, matching the dbtrun CLI).
	Budget uint64
	// Params is the host cost model (nil: machine.DefaultParams).
	Params *machine.Params
	// Store, when non-nil, is the persistent artifact store: workers
	// warm-start from its AOT images and trap profiles, and accumulated
	// per-site trap histories are merged back on Drain/Close. Any
	// artifact problem degrades the request to cold translation — it
	// never fails it (see store.go in this package).
	Store *store.Store
}

// Server runs guest programs on a pool of reusable engines. Each worker
// owns one engine built on first use and recycled with Engine.Reset
// between requests, so the simulated address space, code-cache arena, and
// decode caches are reused rather than reallocated.
type Server struct {
	pool   *Pool
	opt    core.Options
	budget uint64
	params machine.Params

	// store is the optional persistent artifact store; profiles holds the
	// per-(program, fingerprint) trap-history deltas accumulated since
	// the last flush, under profMu.
	store    *store.Store
	profMu   sync.Mutex
	profiles map[profKey]*store.TrapProfile
}

// engineBundle is the per-worker engine state stored in Worker.State.
type engineBundle struct {
	mem  *mem.Memory
	mach *machine.Machine
	eng  *core.Engine
}

// NewServer builds the server and starts its pool.
func NewServer(opt ServerOptions) *Server {
	s := &Server{
		pool:     NewPool(opt.Pool),
		budget:   opt.Budget,
		store:    opt.Store,
		profiles: make(map[profKey]*store.TrapProfile),
	}
	if s.budget == 0 {
		s.budget = 4_000_000_000
	}
	if opt.Run != nil {
		s.opt = *opt.Run
	} else {
		s.opt = core.DefaultOptions(core.ExceptionHandling)
	}
	if opt.Params != nil {
		s.params = *opt.Params
	} else {
		s.params = machine.DefaultParams()
	}
	return s
}

// Do executes one request and returns its result. Failures carry the core
// error taxonomy: bad programs and exhausted budgets are Permanent,
// injected serving faults and shedding are Transient (retried
// automatically up to the pool's retry budget), and engine bugs or worker
// panics are Internal.
func (s *Server) Do(ctx context.Context, req Request) (*Result, error) {
	var res *Result
	err := s.pool.Do(ctx, req.Key, func(ctx context.Context, w *Worker) error {
		r, err := s.attempt(ctx, w, req)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// attempt runs req once on w's engine. It is the retry unit: every fault
// injected at the serve level fires before the engine touches any state,
// so a retried attempt replays on an engine indistinguishable from fresh.
func (s *Server) attempt(ctx context.Context, w *Worker, req Request) (*Result, error) {
	if w.Chaos.Should(faultinject.ServePanic) {
		panic(fmt.Sprintf("serve: injected panic (worker %d)", w.ID))
	}
	if w.Chaos.Should(faultinject.ServeTransient) {
		return nil, core.WithClass(core.Transient,
			fmt.Errorf("serve: injected transient fault (worker %d)", w.ID))
	}

	opt := s.opt
	if req.Options != nil {
		opt = *req.Options
	}
	// Warm-start from the persistent store: adopt a stored AOT schedule
	// and/or trap profile for this (program, options) pair. Misses and
	// corrupt artifacts (quarantined inside the store) leave opt cold.
	program := storeProgram(req)
	var fingerprint string
	if s.store != nil && program != "" {
		fingerprint = s.warmStart(&opt, program)
	}
	b, _ := w.State.(*engineBundle)
	if b == nil {
		b = &engineBundle{mem: mem.New()}
		b.mach = machine.New(b.mem, s.params)
		b.eng = core.NewEngine(b.mem, b.mach, opt)
		w.State = b
	} else {
		b.eng.Reset(opt)
	}
	// Snapshot after Reset so the delta excludes the reset's own trace
	// invalidations (they belong to the previous request's teardown).
	ts0 := b.eng.TraceStats()

	entry := req.Entry
	switch {
	case req.Load != nil:
		entry = req.Load(b.mem)
	case len(req.Image) > 0:
		base := req.Base
		if base == 0 {
			base = guest.CodeBase
		}
		if entry == 0 {
			entry = base
		}
		b.eng.LoadImage(base, req.Image)
		if len(req.Data) > 0 {
			dbase := req.DataBase
			if dbase == 0 {
				dbase = guest.DataBase
			}
			b.mem.WriteBytes(uint64(dbase), req.Data)
		}
	default:
		return nil, core.WithClass(core.Permanent, errors.New("serve: empty request: no image and no loader"))
	}

	budget := req.Budget
	if budget == 0 {
		budget = s.budget
	}
	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}
	if err := b.eng.RunContext(ctx, entry, budget); err != nil {
		return nil, err
	}
	// A completed request contributes its session's site history to the
	// pending store delta (flushed on Drain/Close).
	if s.store != nil && program != "" {
		s.accumulate(program, fingerprint, b.eng.SiteHistory())
	}
	ts1 := b.eng.TraceStats()
	return &Result{
		CPU:      b.eng.FinalCPU(),
		Counters: b.mach.Counters(),
		Stats:    b.eng.Stats(),
		CodeUsed: b.eng.CodeCacheUsed(),
		Attempts: w.Attempt,
		Worker:   w.ID,
		Traces: machine.TraceStats{
			Formed:        ts1.Formed - ts0.Formed,
			ChainFollows:  ts1.ChainFollows - ts0.ChainFollows,
			Invalidations: ts1.Invalidations - ts0.Invalidations,
			TracedInsts:   ts1.TracedInsts - ts0.TracedInsts,
		},
	}, nil
}

// Health returns the pool health snapshot.
func (s *Server) Health() Health { return s.pool.Health() }

// Drain stops admissions, waits for in-flight requests (or ctx), then
// flushes the accumulated trap-profile deltas into the persistent store —
// the point where per-worker profile knowledge stops dying with the
// worker. A failed flush requeues its delta for the next Drain/Close.
func (s *Server) Drain(ctx context.Context) error {
	return joinDrainErr(s.pool.Drain(ctx), s.flushProfiles())
}

// Close drains and stops the pool, flushing pending trap profiles.
func (s *Server) Close() error {
	return joinDrainErr(s.pool.Close(), s.flushProfiles())
}
