package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// breakerState is the classic three-state circuit.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-request-key circuit breaker. It trips to open after
// `threshold` consecutive failures; after `cooldown` it admits a single
// half-open probe, whose outcome either recloses the circuit or re-opens
// it for another cooldown. Context-caused failures (the caller's deadline
// or cancellation) are not evidence against the key and are ignored.
// A threshold < 0 disables the breaker entirely.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	failures  int
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
	threshold int
	cooldown  time.Duration
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request for this key may proceed now.
func (b *breaker) allow(now time.Time) bool {
	if b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		// Cooldown over: admit exactly one probe.
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false // one probe at a time
		}
		b.probing = true
		return true
	}
}

// record feeds a request outcome back into the circuit.
func (b *breaker) record(err error, now time.Time) {
	if b.threshold < 0 {
		return
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// The caller gave up; that says nothing about the key. A half-open
		// probe that was cancelled yields the probe slot back.
		b.mu.Lock()
		b.probing = false
		b.mu.Unlock()
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = breakerClosed
		b.failures = 0
		b.probing = false
		return
	}
	b.failures++
	b.probing = false
	if b.state == breakerHalfOpen || b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
	}
}

// isOpen reports whether the circuit currently rejects requests.
func (b *breaker) isOpen(now time.Time) bool {
	if b.threshold < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen && now.Sub(b.openedAt) < b.cooldown
}
